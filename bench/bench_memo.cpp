// Cross-launch memoization bench (DESIGN.md §10): iterative solvers
// launch the same static kernels dozens of times, and the MemoCache
// collapses every repeat after the first into a constant-time replay.
//
// Three arms per app at the analytical-memory level, all of which must
// produce bit-identical cycle counts (replay there is exact):
//   fresh      --no-memo semantics: every launch simulated, pre-pass
//              replays every launch
//   memo-cold  empty global caches: distinct kernels simulated once,
//              repeats replayed; pre-pass reaches its fixed point and
//              replays the tail
//   memo-warm  second run in the same process: profile and every launch
//              served from the caches
//
// A second section exercises the opt-in kDetailed convergence mode and
// checks the replayed total stays within the configured epsilon of the
// fully simulated run. Writes results/BENCH_memo.json unless --json= says
// otherwise; exits non-zero on any exactness or accuracy violation.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "config/presets.h"
#include "swiftsim/memo_cache.h"

namespace {

void ClearGlobalCaches() {
  swiftsim::MemoCache::Global().Clear();
  swiftsim::ProfileCache::Global().Clear();
}

double Speedup(double base, double fast) {
  return fast > 0 ? base / fast : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.35);
  // Iterative irregular apps: the launch pattern the memo layer targets.
  if (opt.apps.empty()) opt.apps = {"BFS", "PAGERANK", "SSSP"};
  if (opt.json_path.empty()) opt.json_path = "results/BENCH_memo.json";
  constexpr unsigned kIterations = 12;
  PrintHeader("Cross-launch memoization: iterative solvers", opt);
  std::printf("iterations per app: %u\n", kIterations);

  GpuConfig fresh_cfg = Rtx2080TiConfig();
  fresh_cfg.cycle_skip = opt.cycle_skip;
  ApplyRobustness(&fresh_cfg, opt);
  fresh_cfg.memo.enabled = false;
  GpuConfig memo_cfg = fresh_cfg;
  memo_cfg.memo.enabled = true;

  std::vector<JsonRun> records;
  bool ok = true;
  std::printf("%-14s %14s %10s %10s %10s %8s %8s\n", "app", "cycles",
              "fresh[s]", "cold[s]", "warm[s]", "cold-x", "warm-x");
  for (const Application& base : BuildApps(opt)) {
    const Application app = RepeatLaunches(base, kIterations);
    const AppRun fresh = RunOne(app, fresh_cfg, SimLevel::kSwiftSimMemory);
    records.push_back(ToJsonRun(fresh, "memory+fresh", /*threads=*/1));
    if (!opt.memo) continue;  // --no-memo: baseline arm only

    ClearGlobalCaches();
    const AppRun cold = RunOne(app, memo_cfg, SimLevel::kSwiftSimMemory);
    records.push_back(ToJsonRun(cold, "memory+memo-cold", /*threads=*/1));
    const AppRun warm = RunOne(app, memo_cfg, SimLevel::kSwiftSimMemory);
    records.push_back(ToJsonRun(warm, "memory+memo-warm", /*threads=*/1));

    const double cold_x = Speedup(fresh.wall_seconds, cold.wall_seconds);
    const double warm_x = Speedup(fresh.wall_seconds, warm.wall_seconds);
    std::printf("%-14s %14llu %10.4f %10.4f %10.4f %7.1fx %7.1fx\n",
                app.name.c_str(),
                static_cast<unsigned long long>(fresh.cycles),
                fresh.wall_seconds, cold.wall_seconds, warm.wall_seconds,
                cold_x, warm_x);
    if (cold.cycles != fresh.cycles || warm.cycles != fresh.cycles) {
      std::printf("ERROR: %s memoized cycles diverge (fresh=%llu cold=%llu "
                  "warm=%llu)\n",
                  app.name.c_str(),
                  static_cast<unsigned long long>(fresh.cycles),
                  static_cast<unsigned long long>(cold.cycles),
                  static_cast<unsigned long long>(warm.cycles));
      ok = false;
    }
    if (cold.memo_hits == 0 || warm.memo_misses != 0) {
      std::printf("ERROR: %s unexpected memo telemetry (cold hits=%llu "
                  "warm misses=%llu)\n",
                  app.name.c_str(),
                  static_cast<unsigned long long>(cold.memo_hits),
                  static_cast<unsigned long long>(warm.memo_misses));
      ok = false;
    }
  }

  if (opt.memo) {
    // Opt-in convergence mode at the cycle-accurate baseline: simulate
    // the first few repeats, replay the converged tail, and stay within
    // epsilon of the fully simulated total.
    GpuConfig conv_cfg = memo_cfg;
    conv_cfg.memo.detailed_convergence = true;
    const Application base = BuildApps(opt).front();
    const Application app = RepeatLaunches(base, 6);
    const AppRun fresh = RunOne(app, fresh_cfg, SimLevel::kDetailed);
    ClearGlobalCaches();
    const AppRun conv = RunOne(app, conv_cfg, SimLevel::kDetailed);
    const double dev = ErrPct(conv.cycles, fresh.cycles);
    std::printf("convergence (kDetailed, %s x6): fresh=%llu replayed=%llu "
                "dev=%.3f%% hits=%llu speedup=%.1fx\n",
                base.name.c_str(),
                static_cast<unsigned long long>(fresh.cycles),
                static_cast<unsigned long long>(conv.cycles), dev,
                static_cast<unsigned long long>(conv.memo_hits),
                Speedup(fresh.wall_seconds, conv.wall_seconds));
    records.push_back(ToJsonRun(fresh, "detailed+fresh", /*threads=*/1));
    records.push_back(ToJsonRun(conv, "detailed+converged", /*threads=*/1));
    if (dev > 100.0 * conv_cfg.memo.convergence_epsilon) {
      std::printf("ERROR: convergence deviation %.3f%% exceeds epsilon\n",
                  dev);
      ok = false;
    }
  }

  WriteRunsJson(opt.json_path, "bench_memo", opt, records);
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
