// Table I: comparison of the three modeled NVIDIA GPUs. Prints the table
// from the preset configurations and cross-checks the derived quantities.
#include <cstdio>

#include "bench_common.h"
#include "common/status.h"
#include "config/presets.h"

int main() {
  using namespace swiftsim;
  std::printf("==== Table I: comparison of three NVIDIA GPUs ====\n");
  const GpuConfig gpus[] = {Rtx2080TiConfig(), Rtx3060Config(),
                            Rtx3090Config()};
  const char* arch[] = {"Turing", "Ampere", "Ampere"};
  const char* chip[] = {"TU102", "GA106", "GA102"};

  std::printf("%-20s", "NVIDIA GPUs");
  for (const auto& g : gpus) std::printf(" %12s", g.name.c_str());
  std::printf("\n%-20s", "Architecture");
  for (const char* a : arch) std::printf(" %12s", a);
  std::printf("\n%-20s", "Graphics Processor");
  for (const char* c : chip) std::printf(" %12s", c);
  std::printf("\n%-20s", "SMs");
  for (const auto& g : gpus) std::printf(" %12u", g.num_sms);
  std::printf("\n%-20s", "CUDA Cores");
  for (const auto& g : gpus) std::printf(" %12u", g.cuda_cores());
  std::printf("\n%-20s", "L2 Cache (KiB)");
  for (const auto& g : gpus) {
    std::printf(" %12llu",
                static_cast<unsigned long long>(g.total_l2_bytes() / 1024));
  }
  std::printf("\n");

  // Paper values: 68/28/82 SMs; 4352/3584/10496 cores; 5.5/3/6 MB L2.
  SS_CHECK(gpus[0].num_sms == 68 && gpus[1].num_sms == 28 &&
               gpus[2].num_sms == 82,
           "SM counts must match Table I");
  SS_CHECK(gpus[0].cuda_cores() == 4352 && gpus[1].cuda_cores() == 3584 &&
               gpus[2].cuda_cores() == 10496,
           "CUDA core counts must match Table I");
  SS_CHECK(gpus[0].total_l2_bytes() == 5632ull * 1024 &&
               gpus[1].total_l2_bytes() == 3072ull * 1024 &&
               gpus[2].total_l2_bytes() == 6144ull * 1024,
           "L2 capacities must match Table I");
  std::printf("all Table I values verified against the paper\n");
  return 0;
}
