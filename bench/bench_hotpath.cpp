// Hot-path throughput microbench: serial kDetailed (accel-sim-baseline)
// instructions-per-second over a small memory-heavy suite. This is the
// gate for hot-path optimisation PRs — the detailed model exercises the
// full cycle-accurate stack (frontend, operand collector, LD/ST unit,
// L1/MSHR, NoC, L2, DRAM) every cycle, so any per-cycle allocation or
// cache-hostile container shows up directly in this number.
//
// Each app is run twice and the faster run is reported, to shave scheduler
// noise off short runs. Writes results/BENCH_hotpath.json unless --json=
// says otherwise.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "config/presets.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.35);
  // Mixed suite: compute-bound, streaming, and irregular so the bench
  // stresses both the core pipeline and the memory system. BFS/PAGERANK
  // are the memory-bound apps with long idle spans where the event
  // calendar (DESIGN.md §9) earns its keep.
  if (opt.apps.empty()) {
    opt.apps = {"GEMM", "SM", "BFS", "PAGERANK", "HOTSPOT"};
  }
  if (opt.json_path.empty()) opt.json_path = "results/BENCH_hotpath.json";
  PrintHeader("Hot-path throughput: serial kDetailed", opt);

  GpuConfig gpu = Rtx2080TiConfig();
  gpu.cycle_skip = opt.cycle_skip;
  ApplyRobustness(&gpu, opt);
  std::vector<JsonRun> records;
  double total_instrs = 0, total_wall = 0;
  std::printf("%-10s %12s %10s %14s %12s %8s\n", "app", "cycles", "wall[s]",
              "instrs/sec", "skipped", "jumps");
  for (const BuiltApp& built : BuildAppsTimed(opt)) {
    const Application& app = built.app;
    AppRun best = RunOne(app, gpu, SimLevel::kDetailed, opt);
    const AppRun again = RunOne(app, gpu, SimLevel::kDetailed, opt);
    if (again.wall_seconds < best.wall_seconds) best = again;
    // Trace-footprint fields (DESIGN.md §14) travel with every record so
    // the JSON tracks memory compaction alongside throughput.
    const auto stamp_trace = [&](JsonRun j) {
      j.trace_bytes = TraceBytesOf(app);
      const std::uint64_t instrs = app.TotalInstrs();
      j.bytes_per_instr = instrs > 0 ? static_cast<double>(j.trace_bytes) /
                                           static_cast<double>(instrs)
                                     : 0.0;
      j.peak_rss_kb = PeakRssKb();
      j.trace_build_seconds = built.build_seconds;
      return j;
    };
    if (best.status != "ok" && best.status != "degraded") {
      std::printf("%-10s %s: %s\n", best.app.c_str(), best.status.c_str(),
                  best.error.c_str());
      records.push_back(stamp_trace(ToJsonRun(best, "detailed", 1)));
      continue;
    }
    const double ips = best.wall_seconds > 0
                           ? static_cast<double>(best.instructions) /
                                 best.wall_seconds
                           : 0.0;
    std::printf("%-10s %12llu %10.3f %14.0f %12llu %8llu\n", best.app.c_str(),
                static_cast<unsigned long long>(best.cycles),
                best.wall_seconds, ips,
                static_cast<unsigned long long>(best.cycles_skipped),
                static_cast<unsigned long long>(best.skip_jumps));
    if (!(ips > 0)) {
      std::printf("ERROR: zero throughput for %s\n", best.app.c_str());
      return EXIT_FAILURE;
    }
    total_instrs += static_cast<double>(best.instructions);
    total_wall += best.wall_seconds;
    records.push_back(stamp_trace(ToJsonRun(best, "detailed", 1)));
  }
  // Write the JSON before the measurement gate so per-app statuses
  // (timeout/hang/error) survive for post-mortem even when every app failed.
  WriteRunsJson(opt.json_path, "bench_hotpath", opt, records);
  if (!(total_wall > 0)) {
    std::printf("ERROR: no work measured\n");
    return EXIT_FAILURE;
  }
  std::printf("%-10s %23s %14.0f\n", "SUITE", "", total_instrs / total_wall);
  return EXIT_SUCCESS;
}
