// Design-space exploration at scale (DESIGN.md §13): expands a config
// sweep, screens every point with the cheap analytical-memory estimate,
// and promotes only the Pareto frontier (cycles x area-proxy) to the
// cycle-accurate level — with one process-global MemoCache/ProfileCache
// threaded through all points and optionally persisted across sweep
// processes via --memo-file.
//
// Flags on top of the shared set (bench_common.h):
//   --points=<n>         sample the default grid down to n points (64)
//   --sweep-ini=<path>   sweep axes from an INI file ([sweep] axis.<key>)
//   --keep-fraction=<f>  successive-halving quota per rung (0.25)
//   --max-promote=<n>    cap on cycle-accurate points (8, 0 = uncapped)
//   --refine             insert the Swift-Sim-Basic middle rung
//   --no-early-stopping  reference mode: every point runs cycle-accurate
//   --smoke              CI gate: warm sweep must beat the cold per-point
//                        baseline by >= 3x; exits 77 under 4 hw threads
//   --journal=<path>     write-ahead journal of rung results + decisions
//   --resume=<path>      recover the journal, skip finished points, verify
//                        replayed pruning decisions (DESIGN.md §16)
//   --chaos-smoke        CI gate: fork the sweep, SIGKILL it mid-run,
//                        resume from its journal and require bit-identity
//                        with an uninterrupted run; exits 77 where
//                        fork/kill is unavailable
#include <cstdio>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <csignal>
#define SWIFTSIM_HAVE_FORK 1
#endif

#include "bench_common.h"
#include "common/status.h"
#include "common/strutil.h"
#include "config/presets.h"
#include "config/sweep_spec.h"
#include "swiftsim/dse_engine.h"
#include "swiftsim/memo_cache.h"

namespace {

using namespace swiftsim;
using namespace swiftsim::bench;

/// The default grid: the paper's §II-B DSE axes (scheduler policy, cache
/// geometry + replacement, chip shape, DRAM timing). 216 combinations;
/// --points samples them evenly.
SweepSpec DefaultSpec() {
  SweepSpec spec;
  spec.AddAxis("core.sched_policy", {"gto", "lrr", "two_level"});
  spec.AddAxis("l1.size_bytes", {"32768", "65536", "131072"});
  spec.AddAxis("l1.replacement", {"lru", "fifo", "random"});
  spec.AddAxis("l2.size_bytes", {"131072", "262144"});
  spec.AddAxis("gpu.num_sms", {"34", "68"});
  spec.AddAxis("dram.latency", {"160", "227"});
  return spec;
}

void WriteDseJson(const std::string& path, const BenchOptions& opt,
                  std::size_t requested_points, const dse::SweepReport& rep,
                  bool early_stopping) {
  FILE* f = std::fopen(path.c_str(), "w");
  SS_CHECK(f != nullptr, "cannot open --json path '" + path + "'");
  std::fprintf(f, "{\n  \"bench\": \"bench_dse\",\n  \"git\": \"%s\",\n",
               GitDescribeString().c_str());
  std::fprintf(f, "  \"scale\": %.4f,\n  \"threads\": %u,\n", opt.scale,
               opt.threads);
  std::fprintf(f, "  \"points\": %zu,\n  \"early_stopping\": %s,\n",
               requested_points, early_stopping ? "true" : "false");
  std::fprintf(f,
               "  \"promoted\": %zu,\n  \"retired\": %zu,\n"
               "  \"refined\": %zu,\n",
               rep.promoted, rep.retired, rep.refined);
  std::fprintf(f,
               "  \"memo_hits\": %llu,\n  \"memo_misses\": %llu,\n"
               "  \"prepass_shared\": %llu,\n  \"prepass_built\": %llu,\n",
               static_cast<unsigned long long>(rep.memo_hits),
               static_cast<unsigned long long>(rep.memo_misses),
               static_cast<unsigned long long>(rep.prepass_shared),
               static_cast<unsigned long long>(rep.prepass_built));
  std::fprintf(f, "  \"screen_sims\": %llu,\n  \"screen_deduped\": %llu,\n",
               static_cast<unsigned long long>(rep.screen_sims),
               static_cast<unsigned long long>(rep.screen_deduped));
  std::fprintf(f,
               "  \"journal_appends\": %llu,\n  \"journal_bytes\": %llu,\n"
               "  \"points_resumed\": %llu,\n",
               static_cast<unsigned long long>(rep.journal_appends),
               static_cast<unsigned long long>(rep.journal_bytes),
               static_cast<unsigned long long>(rep.points_resumed));
  std::fprintf(f,
               "  \"wall_seconds\": %.6f,\n  \"est_cold_wall\": %.6f,\n"
               "  \"speedup_vs_cold\": %.3f,\n",
               rep.wall_seconds, rep.est_cold_wall, rep.speedup_vs_cold);
  std::fprintf(f, "  \"points_per_sec\": %.3f,\n",
               rep.wall_seconds > 0
                   ? static_cast<double>(rep.points.size()) / rep.wall_seconds
                   : 0.0);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rep.points.size(); ++i) {
    const dse::PointOutcome& p = rep.points[i];
    std::fprintf(
        f,
        "    {\"index\": %zu, \"label\": \"%s\", "
        "\"cfg_hash\": \"%016llx\", \"level\": \"%s\", "
        "\"promoted\": %s, \"frontier\": %s, \"area\": %.3f, "
        "\"screen_cycles\": %llu, \"refine_cycles\": %llu, "
        "\"detailed_cycles\": %llu, \"memo_hits\": %llu, "
        "\"memo_cycles_avoided\": %llu, \"wall_seconds\": %.6f, "
        "\"retired_by\": \"%s\"}%s\n",
        p.index, p.label.c_str(),
        static_cast<unsigned long long>(p.cfg_hash),
        ToString(p.level_reached).c_str(), p.promoted ? "true" : "false",
        p.frontier ? "true" : "false", p.area,
        static_cast<unsigned long long>(p.screen_cycles),
        static_cast<unsigned long long>(p.refine_cycles),
        static_cast<unsigned long long>(p.final_cycles),
        static_cast<unsigned long long>(p.memo_hits),
        static_cast<unsigned long long>(p.memo_cycles_avoided),
        p.screen_wall + p.refine_wall + p.final_wall, p.retired_by.c_str(),
        i + 1 < rep.points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points)\n", path.c_str(), rep.points.size());
}

#if defined(SWIFTSIM_HAVE_FORK)
/// Chaos recovery gate (DESIGN.md §16): fork a journaling sweep, SIGKILL
/// it once the journal shows progress, resume from the torn journal in
/// this process, and require bit-identity (per-point cycles, rung
/// decisions, Pareto frontier) with an uninterrupted reference run.
int RunChaosSmoke(const std::vector<Application>& apps,
                  const std::vector<SweepPoint>& points,
                  const dse::DseOptions& dopt) {
  const std::string journal =
      "bench_dse_chaos." + std::to_string(::getpid()) + ".journal";
  std::remove(journal.c_str());

  // The victim forks without exec, so it must stay off the shared
  // ThreadPool (whose worker threads do not survive fork): threads=1
  // makes every ParallelFor fully inline, and the apps were already
  // built by the parent.
  const pid_t child = ::fork();
  SS_CHECK(child >= 0, "fork failed");
  if (child == 0) {
    dse::DseOptions victim = dopt;
    victim.threads = 1;
    victim.journal_path = journal;
    victim.resume = false;
    dse::RunSweep(apps, points, victim);
    ::_Exit(0);  // no atexit/destructors on inherited state
  }

  // SIGKILL once the journal holds the head plus a few rung records; the
  // poll granularity lands the kill at an arbitrary progress point.
  bool killed = false;
  int status = 0;
  pid_t done = 0;
  for (int spin = 0; spin < 120000 && !killed; ++spin) {
    done = ::waitpid(child, &status, WNOHANG);
    if (done == child) break;
    struct stat st{};
    if (::stat(journal.c_str(), &st) == 0 && st.st_size > 256) {
      ::kill(child, SIGKILL);
      killed = true;
    } else {
      ::usleep(1000);
    }
  }
  if (done != child) {
    if (!killed) ::kill(child, SIGKILL);  // watchdog: never hang the gate
    ::waitpid(child, &status, 0);
  }
  std::printf("chaos: victim %s\n", killed ? "SIGKILLed mid-sweep"
                                           : "finished before the kill");

  dse::DseOptions resume_opt = dopt;
  resume_opt.journal_path = journal;
  resume_opt.resume = true;
  const dse::SweepReport resumed = dse::RunSweep(apps, points, resume_opt);

  const dse::SweepReport fresh = dse::RunSweep(apps, points, dopt);

  std::size_t divergent = 0;
  for (std::size_t i = 0; i < fresh.points.size(); ++i) {
    const dse::PointOutcome& a = resumed.points[i];
    const dse::PointOutcome& b = fresh.points[i];
    if (a.screen_cycles != b.screen_cycles ||
        a.refine_cycles != b.refine_cycles ||
        a.final_cycles != b.final_cycles || a.promoted != b.promoted ||
        a.frontier != b.frontier || a.retired_by != b.retired_by) {
      std::printf("FAIL: point %zu diverges after resume "
                  "(cycles %llu/%llu/%llu vs %llu/%llu/%llu)\n",
                  i, static_cast<unsigned long long>(a.screen_cycles),
                  static_cast<unsigned long long>(a.refine_cycles),
                  static_cast<unsigned long long>(a.final_cycles),
                  static_cast<unsigned long long>(b.screen_cycles),
                  static_cast<unsigned long long>(b.refine_cycles),
                  static_cast<unsigned long long>(b.final_cycles));
      ++divergent;
    }
  }
  std::remove(journal.c_str());
  if (divergent > 0) return 1;
  std::printf("chaos smoke: %zu points bit-identical after SIGKILL+resume "
              "(%llu rung results replayed from the journal)\n",
              fresh.points.size(),
              static_cast<unsigned long long>(resumed.points_resumed));
  return 0;
}
#endif  // SWIFTSIM_HAVE_FORK

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_points = 64;
  std::string sweep_ini;
  dse::DseOptions dopt;
  dopt.refine_rung = false;  // --refine opts in; see DESIGN.md §13
  bool smoke = false;
  bool chaos_smoke = false;
  const std::vector<BenchFlag> extra = {
      {"--points", true,
       [&](const std::string& v) {
         num_points = ParseUint(v, "--points");
         SS_CHECK(num_points > 0, "--points must be positive");
       }},
      {"--sweep-ini", true,
       [&](const std::string& v) { sweep_ini = v; }},
      {"--keep-fraction", true,
       [&](const std::string& v) {
         dopt.keep_fraction = ParseDouble(v, "--keep-fraction");
         SS_CHECK(dopt.keep_fraction > 0 && dopt.keep_fraction <= 1,
                  "--keep-fraction must be in (0, 1]");
       }},
      {"--max-promote", true,
       [&](const std::string& v) {
         dopt.max_promote =
             static_cast<unsigned>(ParseUint(v, "--max-promote"));
       }},
      {"--refine", false,
       [&](const std::string&) { dopt.refine_rung = true; }},
      {"--no-early-stopping", false,
       [&](const std::string&) { dopt.early_stopping = false; }},
      {"--smoke", false, [&](const std::string&) { smoke = true; }},
      {"--journal", true,
       [&](const std::string& v) { dopt.journal_path = v; }},
      {"--resume", true,
       [&](const std::string& v) {
         dopt.journal_path = v;
         dopt.resume = true;
       }},
      {"--chaos-smoke", false,
       [&](const std::string&) { chaos_smoke = true; }},
  };
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.1, extra);
  if (smoke && std::thread::hardware_concurrency() < 4) {
    std::printf("SKIP: smoke gate needs >= 4 hardware threads\n");
    return 77;
  }
  if (opt.apps.empty()) opt.apps = {"BFS", "SSSP"};
  PrintHeader("DSE: warm-cache sweep with adaptive early stopping", opt);

  GpuConfig base = Rtx2080TiConfig();
  base.cycle_skip = opt.cycle_skip;
  base.memo.enabled = opt.memo;
  ApplyRobustness(&base, opt);

  const SweepSpec spec =
      sweep_ini.empty() ? DefaultSpec() : SweepSpec::FromFile(sweep_ini);
  const SweepSpec::Expansion exp = spec.ExpandCapped(base, num_points);
  SS_CHECK(!exp.points.empty(), "sweep expanded to zero valid points");
  std::printf("grid: %zu combinations -> %zu points (%zu invalid skipped)\n",
              spec.NumPoints(), exp.points.size(), exp.skipped_invalid);

  if (!opt.memo_file.empty() && LoadMemoFileIfExists(opt.memo_file)) {
    std::printf("memo-file: loaded %zu replayable launch records from %s\n",
                MemoCache::Global().size(), opt.memo_file.c_str());
  }

  dopt.threads = opt.threads;
  const auto apps = BuildApps(opt);

  if (chaos_smoke) {
#if defined(SWIFTSIM_HAVE_FORK)
    return RunChaosSmoke(apps, exp.points, dopt);
#else
    std::printf("SKIP: chaos smoke needs fork/kill\n");
    return 77;
#endif
  }

  const dse::SweepReport rep = dse::RunSweep(apps, exp.points, dopt);

  std::printf("%-4s %-11s %12s %12s %6s  %s\n", "pt", "level", "screen_cyc",
              "final_cyc", "area", "decision");
  for (const dse::PointOutcome& p : rep.points) {
    const char* decision = p.frontier    ? "frontier"
                           : p.promoted  ? "promoted"
                                         : p.retired_by.c_str();
    std::printf("%-4zu %-11s %12llu %12llu %6.0f  %.60s\n", p.index,
                ToString(p.level_reached).c_str(),
                static_cast<unsigned long long>(p.screen_cycles),
                static_cast<unsigned long long>(p.final_cycles), p.area,
                decision);
  }
  std::printf(
      "-- %zu points: %zu promoted (%zu refined, %zu retired), "
      "screen %llu sims / %llu deduped, memo %llu hits / %llu misses, "
      "prepass %llu shared / %llu built --\n",
      rep.points.size(), rep.promoted, rep.refined, rep.retired,
      static_cast<unsigned long long>(rep.screen_sims),
      static_cast<unsigned long long>(rep.screen_deduped),
      static_cast<unsigned long long>(rep.memo_hits),
      static_cast<unsigned long long>(rep.memo_misses),
      static_cast<unsigned long long>(rep.prepass_shared),
      static_cast<unsigned long long>(rep.prepass_built));
  std::printf(
      "wall %.2fs (%.2f points/s) vs cold per-point baseline %.2fs: "
      "speedup_vs_cold %.2fx\n",
      rep.wall_seconds,
      rep.wall_seconds > 0
          ? static_cast<double>(rep.points.size()) / rep.wall_seconds
          : 0.0,
      rep.est_cold_wall, rep.speedup_vs_cold);
  if (!dopt.journal_path.empty()) {
    std::printf("journal: %llu records appended (%llu bytes), "
                "%llu rung results resumed from %s\n",
                static_cast<unsigned long long>(rep.journal_appends),
                static_cast<unsigned long long>(rep.journal_bytes),
                static_cast<unsigned long long>(rep.points_resumed),
                dopt.journal_path.c_str());
  }

  // Pruning must never be silent: a retired point without a recorded
  // bound is a bug, not a report style choice.
  for (const dse::PointOutcome& p : rep.points) {
    if (!p.promoted && p.retired_by.empty()) {
      std::printf("FAIL: point %zu retired without a recorded bound\n",
                  p.index);
      return 1;
    }
  }

  if (!opt.memo_file.empty()) {
    SaveMemoFile(opt.memo_file);
    std::printf("memo-file: saved %zu replayable launch records to %s\n",
                MemoCache::Global().size(), opt.memo_file.c_str());
  }
  if (!opt.json_path.empty()) {
    WriteDseJson(opt.json_path, opt, num_points, rep, dopt.early_stopping);
  }
  if (smoke && rep.speedup_vs_cold < 3.0) {
    std::printf("FAIL: smoke gate needs speedup_vs_cold >= 3.0 (got %.2f)\n",
                rep.speedup_vs_cold);
    return 1;
  }
  return 0;
}
