// Figure 5: contribution analysis of the Swift-Sim speedup over the
// Accel-Sim-class baseline.
//
// Paper decomposition: Swift-Sim-Basic reaches 14.5x single-threaded;
// simplifying memory access adds 2.7x (39.7x total single-threaded);
// parallel simulation adds ~5x for both (with ~50 threads), reaching
// 82.6x / 211.2x. This bench reproduces the same decomposition on this
// machine; the parallel factor scales with the available cores
// (hardware_concurrency here, 50 threads on the paper's 2-socket server).
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "common/stats.h"
#include "config/presets.h"
#include "swiftsim/parallel.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  const BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.25);
  PrintHeader("Figure 5: speedup contribution analysis", opt);

  const GpuConfig gpu = Rtx2080TiConfig();
  const auto apps = BuildApps(opt);

  // Stage 1: single-thread wall times for the three serial simulators.
  double wall_detailed = 0, wall_basic = 0, wall_memory = 0;
  std::vector<double> sp_basic_1t, sp_mem_1t;
  for (const Application& app : apps) {
    const AppRun d = RunOne(app, gpu, SimLevel::kDetailed);
    const AppRun b = RunOne(app, gpu, SimLevel::kSwiftSimBasic);
    const AppRun m = RunOne(app, gpu, SimLevel::kSwiftSimMemory);
    wall_detailed += d.wall_seconds;
    wall_basic += b.wall_seconds;
    wall_memory += m.wall_seconds;
    sp_basic_1t.push_back(d.wall_seconds / b.wall_seconds);
    sp_mem_1t.push_back(d.wall_seconds / m.wall_seconds);
  }
  const double basic_1t = GeoMean(sp_basic_1t);
  const double mem_1t = GeoMean(sp_mem_1t);

  // Stage 2: parallel simulation. Application-level parallelism (the
  // paper's "simulate applications concurrently") for both simulators.
  const ParallelBatchResult pb =
      RunAppsParallel(apps, gpu, SimLevel::kSwiftSimBasic, opt.threads);
  const ParallelBatchResult pm =
      RunAppsParallel(apps, gpu, SimLevel::kSwiftSimMemory, opt.threads);
  const double par_basic = wall_basic / pb.wall_seconds;
  const double par_mem = wall_memory / pm.wall_seconds;

  // Extra: SM-level parallelism, unique to the analytical-memory design
  // (SMs share no mutable state).
  double wall_sm_par = 0;
  for (const Application& app : apps) {
    wall_sm_par += RunSmParallelMemory(app, gpu, opt.threads).wall_seconds;
  }

  std::printf("-- decomposition (geomean; paper: 14.5x -> x2.7 -> x5) --\n");
  std::printf("swift-sim-basic  single-thread speedup : %6.1fx (paper 14.5x)\n",
              basic_1t);
  std::printf("memory-model additional factor          : %6.2fx (paper 2.7x)\n",
              mem_1t / basic_1t);
  std::printf("swift-sim-memory single-thread speedup : %6.1fx (paper 39.7x)\n",
              mem_1t);
  std::printf("app-level parallel factor (%2u threads) : basic %4.2fx, "
              "memory %4.2fx (paper ~5x at 50 threads)\n",
              opt.threads, par_basic, par_mem);
  std::printf("sm-level parallel factor (memory only)  : %6.2fx\n",
              wall_memory / wall_sm_par);
  std::printf("total speedup with parallelism          : basic %5.1fx "
              "(paper 82.6x), memory %5.1fx (paper 211.2x)\n",
              basic_1t * par_basic, mem_1t * par_mem);
  return 0;
}
