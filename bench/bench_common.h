// Shared experiment harness for the table/figure reproduction benches.
//
// Every bench accepts:
//   --scale=<f>     workload scale (default per bench)
//   --apps=A,B,C    subset of workloads (default: all 18)
//   --threads=<n>   worker threads for parallel measurements
// and prints the rows/series of the corresponding paper table or figure.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "config/gpu_config.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "trace/kernel.h"
#include "workloads/workload.h"

namespace swiftsim::bench {

struct BenchOptions {
  double scale = 0.35;
  std::vector<double> sweep;      // --sweep=a,b,c: scales for scaling
                                  // benches; empty = just `scale`
  std::vector<std::string> apps;  // empty = all registered workloads
  unsigned threads = 0;           // 0 = hardware concurrency
  std::uint64_t seed = 0x5eed5eedULL;
  std::string json_path;          // --json=<path>: machine-readable records
  bool cycle_skip = true;         // --no-skip: disable event-calendar jumps
  bool memo = true;               // --no-memo: disable cross-launch caches
  std::string memo_file;          // --memo-file=<path>: persist the global
                                  // MemoCache across sweep processes
  // Resilience knobs (DESIGN.md §11); 0/empty = off.
  Cycle watchdog_cycles = 0;      // --watchdog-cycles=<n>: stall window
  double timeout_sec = 0;         // --timeout-sec=<s>: per-app wall budget
  std::string fault_plan_path;    // --fault-plan=<ini>: chaos scenario
  bool degrade_on_hang = false;   // --degrade-on-hang: analytical fallback
  std::string dump_dir;           // --dump-dir=<dir>: hang diagnostics
  // Trace generation knobs (DESIGN.md §14).
  std::string trace_cache_dir;    // --trace-cache=<dir>: on-disk compact
                                  // trace cache; empty = always generate
  bool serial_gen = false;        // --serial-gen: disable parallel per-
                                  // variant trace generation
};

/// One command-line flag a bench can register on top of the shared set.
/// Value flags are spelled `--name=<value>` (the handler receives the
/// value); switches are spelled `--name` (the handler receives ""). Every
/// flag — built-in or extra — parses through the same matcher, and an
/// unrecognized argument is an error naming the full accepted set.
struct BenchFlag {
  std::string name;       // including the leading "--", e.g. "--points"
  bool has_value = true;  // false: boolean switch
  std::function<void(const std::string& value)> handler;
};

/// Parses --scale/--sweep/--apps/--threads/--seed/--json/--no-skip/
/// --no-memo/--memo-file/--watchdog-cycles/--timeout-sec/--fault-plan/
/// --degrade-on-hang/--dump-dir plus any `extra` bench-specific flags;
/// throws SimError on unknown or malformed flags.
BenchOptions ParseOptions(int argc, char** argv, double default_scale);
BenchOptions ParseOptions(int argc, char** argv, double default_scale,
                          const std::vector<BenchFlag>& extra);

/// Loads `path` into the process-global MemoCache when the file exists;
/// returns true when entries were merged in. A missing file is not an
/// error (every sweep's first process starts cold).
bool LoadMemoFileIfExists(const std::string& path);

/// Persists the global MemoCache's replay-ready entries to `path`.
void SaveMemoFile(const std::string& path);

/// `git describe --always --dirty`, or "unknown" outside a repository.
std::string GitDescribeString();

/// Maps the resilience knobs onto the config consumed by every driver.
/// The wall budget is per fresh GpuModel, which the benches create per
/// app — so --timeout-sec bounds each application run.
void ApplyRobustness(GpuConfig* cfg, const BenchOptions& opt);

/// The measured outcome of one (app, simulator-level) run.
struct AppRun {
  std::string app;
  std::string status = "ok";  // ok | degraded | timeout | hang | error
  std::string error;          // what() when status is not ok/degraded
  std::uint64_t degrade_events = 0;
  Cycle cycles = 0;
  double wall_seconds = 0;
  std::uint64_t instructions = 0;
  std::uint64_t reservation_fails = 0;
  std::uint64_t cycles_skipped = 0;  // driver cycles elided by the calendar
  std::uint64_t skip_jumps = 0;      // wake events dispatched via jumps
  std::uint64_t memo_hits = 0;       // launches replayed from the MemoCache
  std::uint64_t memo_misses = 0;     // launches simulated (and recorded)
  std::uint64_t memo_cycles_avoided = 0;  // simulated cycles replay elided
};

/// Runs one app at one level (serial). With `opt` given, arms the fault
/// plan named by --fault-plan and converts failures into the AppRun's
/// status/error fields instead of propagating (the batch completes).
AppRun RunOne(const Application& app, const GpuConfig& cfg, SimLevel level);
AppRun RunOne(const Application& app, const GpuConfig& cfg, SimLevel level,
              const BenchOptions& opt);

/// Builds every requested workload once (they are reused across levels).
std::vector<Application> BuildApps(const BenchOptions& opt);

/// One built workload with its generation cost — the trace bench and the
/// hot-path bench report build wall time and cache behaviour per app.
struct BuiltApp {
  Application app;
  double build_seconds = 0;  // wall time inside BuildWorkloadCached
  bool cache_hit = false;    // served from the on-disk compact cache
};

/// BuildApps with per-app timing, honouring --trace-cache/--serial-gen.
std::vector<BuiltApp> BuildAppsTimed(const BenchOptions& opt);

/// Columnar trace bytes across all kernels of `app` (DESIGN.md §14).
std::uint64_t TraceBytesOf(const Application& app);

/// Peak resident-set size of this process so far, in KiB (getrusage).
std::uint64_t PeakRssKb();

/// |predicted/actual - 1| as a percentage.
double ErrPct(Cycle predicted, Cycle actual);

/// (predicted/actual - 1) as a signed percentage.
double SignedErrPct(Cycle predicted, Cycle actual);

/// Prints a standard header naming the experiment.
void PrintHeader(const std::string& experiment, const BenchOptions& opt);

/// One machine-readable record for --json output (BENCH_*.json files track
/// the perf trajectory across PRs).
struct JsonRun {
  std::string app;
  std::string level;       // simulator level or configuration label
  std::string status = "ok";
  std::uint64_t degrade_events = 0;
  Cycle cycles = 0;
  double wall_seconds = 0;
  double instrs_per_sec = 0;
  double speedup_vs_serial = 0;  // serial wall / this wall; 0 = n/a
  double scale = 0;              // per-run workload scale; 0 = opt.scale
  unsigned threads = 1;
  std::uint64_t cycles_skipped = 0;
  std::uint64_t skip_jumps = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_cycles_avoided = 0;
  // Trace-footprint fields (DESIGN.md §14); 0 = not measured.
  std::uint64_t trace_bytes = 0;      // columnar storage across kernels
  double bytes_per_instr = 0;         // trace_bytes / dynamic instrs
  std::uint64_t peak_rss_kb = 0;      // process peak RSS after the run
  double trace_build_seconds = 0;     // wall time generating the trace
};

/// Converts an AppRun measured at `level` into a JsonRun.
JsonRun ToJsonRun(const AppRun& run, const std::string& level,
                  unsigned threads);

/// Latency distribution of a set of request/run wall times — the service
/// bench's throughput story is meaningless without the tail, so the
/// summary leads with the percentiles (linear-interpolation quantiles,
/// common/stats.h).
struct LatencySummary {
  std::size_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double mean = 0;
  double max = 0;
};

/// Summarizes `seconds` (unsorted; empty input returns an all-zero
/// summary rather than throwing — benches report what they measured).
LatencySummary Summarize(const std::vector<double>& seconds);

/// Flattens `s` into `<prefix>_p50_sec`/`_p95_sec`/`_p99_sec`/`_mean_sec`/
/// `_max_sec`/`_count` extra fields for WriteRunsJson.
void AppendLatencyFields(const std::string& prefix, const LatencySummary& s,
                         std::vector<std::pair<std::string, double>>* extra);

/// Writes `{"bench":..., "git":..., "scale":..., "runs":[...]}` to `path`,
/// creating parent directories as needed. `git` is `git describe
/// --always --dirty` ("unknown" outside a repo). The `extra` overload
/// additionally emits each (name, value) pair as a top-level numeric
/// field — throughput and latency summaries ride next to the runs.
void WriteRunsJson(const std::string& path, const std::string& bench,
                   const BenchOptions& opt, const std::vector<JsonRun>& runs);
void WriteRunsJson(const std::string& path, const std::string& bench,
                   const BenchOptions& opt, const std::vector<JsonRun>& runs,
                   const std::vector<std::pair<std::string, double>>& extra);

}  // namespace swiftsim::bench
