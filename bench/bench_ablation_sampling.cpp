// Ablation: CTA sampling composed with hybrid simulation (paper §II-B:
// sampling approaches are orthogonal to Swift-Sim — "they still rely on
// cycle-accurate simulation or analytical models for the sampled
// application"). For each app: full-run cycles vs. sampled estimates at
// decreasing fractions, with the additional speedup sampling brings.
#include <cstdio>

#include "bench_common.h"
#include "config/presets.h"
#include "swiftsim/sampling.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/3.0);
  if (opt.apps.empty()) opt.apps = {"SM", "GEMM", "ADI", "PAGERANK"};
  PrintHeader("Ablation: CTA sampling on top of Swift-Sim-Basic", opt);

  const GpuConfig gpu = Rtx2080TiConfig();
  std::printf("%-10s %12s | %28s | %28s\n", "app", "full_cycles",
              "sample 25% (err, speedup)", "sample 10% (err, speedup)");
  for (const Application& app : BuildApps(opt)) {
    const AppRun full = RunOne(app, gpu, SimLevel::kSwiftSimBasic);
    std::printf("%-10s %12llu |", app.name.c_str(),
                static_cast<unsigned long long>(full.cycles));
    for (double fraction : {0.25, 0.10}) {
      const SampledResult s =
          RunSampledSimulation(app, gpu, SimLevel::kSwiftSimBasic, fraction);
      std::printf("  %10llu (%+5.1f%%, %4.1fx) |",
                  static_cast<unsigned long long>(s.estimated_cycles),
                  SignedErrPct(s.estimated_cycles, full.cycles),
                  full.wall_seconds / s.wall_seconds);
    }
    std::printf("\n");
  }
  std::printf("(sampling keeps at least one full chip wave; errors grow "
              "on grids with heterogeneous CTAs)\n");
  return 0;
}
