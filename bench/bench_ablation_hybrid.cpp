// Ablation: which per-module simplification buys what (the framework's
// central trade-off, DESIGN.md §4). Starting from the fully detailed
// model, modules are replaced one at a time:
//
//   detailed        : cycle-accurate everything (the baseline)
//   +hybrid-alu     : analytical ALU pipeline (paper §III-D1)
//   +simple-frontend: drop i-buffer/fetch modeling (Swift-Sim-Basic)
//   +analytical-mem : Eq. 1 memory model (Swift-Sim-Memory)
//
// For each step: predicted cycles, error vs. the detailed model, and
// single-thread speedup over it.
#include <chrono>
#include <cstdio>

#include "analytical/cache_prepass.h"
#include "analytical/interval_model.h"
#include "analytical/rd_profile.h"
#include "bench_common.h"
#include "common/stats.h"
#include "config/presets.h"

namespace {

using namespace swiftsim;

struct Step {
  const char* name;
  ModelSelection sel;
  bool needs_profile;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace swiftsim::bench;
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.2);
  if (opt.apps.empty()) {
    opt.apps = {"GEMM", "NW", "BFS", "ADI", "HOTSPOT", "SM"};
  }
  PrintHeader("Ablation: per-module hybridization steps", opt);

  const GpuConfig gpu = Rtx2080TiConfig();
  const Step steps[] = {
      {"detailed",
       {AluModelKind::kCycleAccurate, MemModelKind::kCycleAccurate,
        FrontendKind::kDetailed, false},
       false},
      {"+hybrid-alu",
       {AluModelKind::kHybridAnalytical, MemModelKind::kCycleAccurate,
        FrontendKind::kDetailed, false},
       false},
      {"+simple-frontend",
       {AluModelKind::kHybridAnalytical, MemModelKind::kCycleAccurate,
        FrontendKind::kSimplified, false},
       false},
      {"+analytical-mem",
       {AluModelKind::kHybridAnalytical, MemModelKind::kAnalytical,
        FrontendKind::kSimplified, false},
       true},
  };

  for (const Application& app : BuildApps(opt)) {
    const MemProfile profile = BuildMemProfile(app, gpu);
    std::printf("-- %s --\n", app.name.c_str());
    double base_wall = 0;
    Cycle base_cycles = 0;
    for (const Step& step : steps) {
      GpuModel model(gpu, step.sel,
                     step.needs_profile ? &profile : nullptr);
      const auto t0 = std::chrono::steady_clock::now();
      const SimResult r = model.RunApplication(app);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      if (base_wall == 0) {
        base_wall = wall;
        base_cycles = r.total_cycles;
      }
      std::printf("  %-22s cycles=%10llu  err_vs_detailed=%+6.1f%%  "
                  "speedup=%6.2fx\n",
                  step.name,
                  static_cast<unsigned long long>(r.total_cycles),
                  SignedErrPct(r.total_cycles, base_cycles),
                  base_wall / wall);
    }
    // Swift-Sim-Memory fed by the reuse-distance hit-rate source instead
    // of the functional cache pre-pass (the paper names both, §III-D2).
    {
      const MemProfile rd = BuildMemProfileReuseDistance(app, gpu);
      GpuModel model(gpu, steps[3].sel, &rd);
      const SimResult r = model.RunApplication(app);
      std::printf("  %-22s cycles=%10llu  err_vs_detailed=%+6.1f%%\n",
                  "+mem (reuse-distance)",
                  static_cast<unsigned long long>(r.total_cycles),
                  SignedErrPct(r.total_cycles, base_cycles));
    }
    // Pure-analytical comparator (GPUMech-style interval analysis): the
    // related-work class the paper contrasts hybrid simulation against.
    {
      const auto t0 = std::chrono::steady_clock::now();
      const IntervalEstimate est = EstimateCycles(app, gpu, profile);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      std::printf("  %-22s cycles=%10llu  err_vs_detailed=%+6.1f%%  "
                  "speedup=%6.2fx (no DSE knobs)\n",
                  "pure-analytical",
                  static_cast<unsigned long long>(est.total_cycles),
                  SignedErrPct(est.total_cycles, base_cycles),
                  base_wall / std::max(wall, 1e-6));
    }
  }
  return 0;
}
