#include "bench_common.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/journal.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strutil.h"
#include "swiftsim/memo_cache.h"
#include "swiftsim/simulator.h"
#include "workloads/gen_util.h"

namespace swiftsim::bench {

BenchOptions ParseOptions(int argc, char** argv, double default_scale) {
  return ParseOptions(argc, argv, default_scale, {});
}

BenchOptions ParseOptions(int argc, char** argv, double default_scale,
                          const std::vector<BenchFlag>& extra) {
  BenchOptions opt;
  opt.scale = default_scale;
  // The shared flag set, expressed through the same BenchFlag machinery a
  // bench uses for its own flags — one matcher, one error path.
  std::vector<BenchFlag> flags = {
      {"--scale", true,
       [&opt](const std::string& v) {
         opt.scale = ParseDouble(v, "--scale");
         SS_CHECK(opt.scale > 0, "--scale must be positive");
       }},
      {"--sweep", true,
       [&opt](const std::string& v) {
         for (const std::string& s : Split(v, ',')) {
           const double scale = ParseDouble(s, "--sweep");
           SS_CHECK(scale > 0, "--sweep scales must be positive");
           opt.sweep.push_back(scale);
         }
         SS_CHECK(!opt.sweep.empty(), "--sweep needs at least one scale");
       }},
      {"--apps", true,
       [&opt](const std::string& v) { opt.apps = Split(v, ','); }},
      {"--threads", true,
       [&opt](const std::string& v) {
         opt.threads = static_cast<unsigned>(ParseUint(v, "--threads"));
       }},
      {"--seed", true,
       [&opt](const std::string& v) { opt.seed = ParseUint(v, "--seed"); }},
      {"--json", true,
       [&opt](const std::string& v) {
         opt.json_path = v;
         SS_CHECK(!opt.json_path.empty(), "--json needs a path");
       }},
      {"--no-skip", false,
       [&opt](const std::string&) { opt.cycle_skip = false; }},
      {"--no-memo", false,
       [&opt](const std::string&) { opt.memo = false; }},
      {"--memo-file", true,
       [&opt](const std::string& v) {
         opt.memo_file = v;
         SS_CHECK(!opt.memo_file.empty(), "--memo-file needs a path");
       }},
      {"--watchdog-cycles", true,
       [&opt](const std::string& v) {
         opt.watchdog_cycles = ParseUint(v, "--watchdog-cycles");
       }},
      {"--timeout-sec", true,
       [&opt](const std::string& v) {
         opt.timeout_sec = ParseDouble(v, "--timeout-sec");
         SS_CHECK(opt.timeout_sec >= 0, "--timeout-sec must be >= 0");
       }},
      {"--fault-plan", true,
       [&opt](const std::string& v) {
         opt.fault_plan_path = v;
         SS_CHECK(!opt.fault_plan_path.empty(), "--fault-plan needs a path");
       }},
      {"--degrade-on-hang", false,
       [&opt](const std::string&) { opt.degrade_on_hang = true; }},
      {"--dump-dir", true,
       [&opt](const std::string& v) {
         opt.dump_dir = v;
         SS_CHECK(!opt.dump_dir.empty(), "--dump-dir needs a path");
       }},
      {"--trace-cache", true,
       [&opt](const std::string& v) {
         opt.trace_cache_dir = v;
         SS_CHECK(!opt.trace_cache_dir.empty(), "--trace-cache needs a dir");
       }},
      {"--serial-gen", false,
       [&opt](const std::string&) { opt.serial_gen = true; }},
  };
  flags.insert(flags.end(), extra.begin(), extra.end());

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    for (const BenchFlag& flag : flags) {
      if (flag.has_value) {
        if (StartsWith(arg, flag.name + "=")) {
          flag.handler(arg.substr(flag.name.size() + 1));
          matched = true;
          break;
        }
      } else if (arg == flag.name) {
        flag.handler("");
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::string expected;
      for (const BenchFlag& flag : flags) {
        if (!expected.empty()) expected += ", ";
        expected += flag.name + (flag.has_value ? "=" : "");
      }
      throw SimError("unknown flag '" + arg + "' (expected " + expected +
                     ")");
    }
  }
  if (opt.threads == 0) {
    opt.threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return opt;
}

bool LoadMemoFileIfExists(const std::string& path) {
  SS_CHECK(!path.empty(), "memo file path is empty");
  if (!std::filesystem::exists(path)) return false;
  try {
    MemoCache::Global().LoadFromFile(path);
  } catch (const SimError& e) {
    // Corrupt advisory cache (§16): quarantine and run cold rather than
    // failing the bench over a file we would have regenerated anyway.
    QuarantineCorruptFile(path, e.what());
    return false;
  }
  return true;
}

void SaveMemoFile(const std::string& path) {
  SS_CHECK(!path.empty(), "memo file path is empty");
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  MemoCache::Global().SaveToFile(path);
}

std::vector<Application> BuildApps(const BenchOptions& opt) {
  std::vector<Application> apps;
  for (BuiltApp& built : BuildAppsTimed(opt)) {
    apps.push_back(std::move(built.app));
  }
  return apps;
}

std::vector<BuiltApp> BuildAppsTimed(const BenchOptions& opt) {
  std::vector<std::string> names = opt.apps;
  if (names.empty()) {
    for (const auto& spec : AllWorkloads()) names.push_back(spec.name);
  }
  workloads::SetParallelTraceBuild(!opt.serial_gen);
  WorkloadScale scale;
  scale.scale = opt.scale;
  scale.seed = opt.seed;
  TraceBuildOptions trace_opts;
  trace_opts.cache_dir = opt.trace_cache_dir;
  std::vector<BuiltApp> apps;
  apps.reserve(names.size());
  for (const auto& name : names) {
    BuiltApp built;
    const auto t0 = std::chrono::steady_clock::now();
    built.app = BuildWorkloadCached(name, scale, trace_opts, &built.cache_hit);
    const auto t1 = std::chrono::steady_clock::now();
    built.build_seconds = std::chrono::duration<double>(t1 - t0).count();
    apps.push_back(std::move(built));
  }
  return apps;
}

std::uint64_t TraceBytesOf(const Application& app) {
  std::uint64_t bytes = 0;
  for (const auto& kernel : app.kernels) bytes += kernel->TraceBytes();
  return bytes;
}

std::uint64_t PeakRssKb() {
  struct rusage ru = {};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KiB on Linux
}

void ApplyRobustness(GpuConfig* cfg, const BenchOptions& opt) {
  cfg->watchdog.stall_cycles = opt.watchdog_cycles;
  cfg->watchdog.wall_seconds = opt.timeout_sec;
  if (!opt.dump_dir.empty()) cfg->watchdog.dump_dir = opt.dump_dir;
  cfg->degrade.on_hang = opt.degrade_on_hang;
}

AppRun RunOne(const Application& app, const GpuConfig& cfg, SimLevel level) {
  const ModelSelection sel = SelectionFor(level);
  // Reservation-failure counts need model internals; run through a
  // GpuModel directly for levels with a cycle-accurate memory path —
  // unless convergence-mode memoization is on, which lives in the
  // Simulator driver.
  AppRun run;
  run.app = app.name;
  const bool memo_detailed = cfg.memo.enabled && cfg.memo.detailed_convergence;
  if (sel.mem == MemModelKind::kCycleAccurate && !memo_detailed) {
    GpuModel model(cfg, sel);
    const auto t0 = std::chrono::steady_clock::now();
    SimResult r = model.RunApplication(app);
    const auto t1 = std::chrono::steady_clock::now();
    run.cycles = r.total_cycles;
    run.instructions = r.instructions;
    run.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    run.reservation_fails = model.TotalReservationFails();
    run.cycles_skipped = model.metrics().Read("driver.cycles_skipped");
    run.skip_jumps = model.metrics().Read("driver.skip_jumps");
  } else {
    const SimResult r = Simulator(app, cfg, level).Run();
    run.cycles = r.total_cycles;
    run.instructions = r.instructions;
    run.wall_seconds = r.wall_seconds;
    const auto metric = [&r](const char* name) -> std::uint64_t {
      const auto it = r.metrics.find(name);
      return it != r.metrics.end() ? it->second : 0;
    };
    run.memo_hits = metric("memo.hits");
    run.memo_misses = metric("memo.misses");
    run.memo_cycles_avoided = metric("memo.replayed_cycles");
    run.cycles_skipped = metric("driver.cycles_skipped");
    run.skip_jumps = metric("driver.skip_jumps");
  }
  return run;
}

AppRun RunOne(const Application& app, const GpuConfig& cfg, SimLevel level,
              const BenchOptions& opt) {
  AppRun run;
  run.app = app.name;
  try {
    if (opt.fault_plan_path.empty()) {
      run = RunOne(app, cfg, level);
      return run;
    }
    // Chaos path: load the plan, apply trace-axis faults at ingestion, arm
    // the runtime axes on the simulator's resilient driver.
    const FaultPlan plan = FaultPlan::FromFile(opt.fault_plan_path);
    const Application* target = &app;
    Application faulted;
    if (plan.AnyTrace()) {
      faulted = InjectTraceFaults(app, plan);
      target = &faulted;
    }
    Simulator sim(*target, cfg, level);
    sim.ArmFaultPlan(&plan);
    const SimResult r = sim.Run();
    run.cycles = r.total_cycles;
    run.instructions = r.instructions;
    run.wall_seconds = r.wall_seconds;
    run.degrade_events = r.degrades.size();
    run.status = r.degrades.empty() ? "ok" : "degraded";
    const auto metric = [&r](const char* name) -> std::uint64_t {
      const auto it = r.metrics.find(name);
      return it != r.metrics.end() ? it->second : 0;
    };
    run.cycles_skipped = metric("driver.cycles_skipped");
    run.skip_jumps = metric("driver.skip_jumps");
  } catch (const SimHangError& e) {
    run.status =
        e.kind() == SimHangError::Kind::kWallClock ? "timeout" : "hang";
    run.error = e.what();
  } catch (const SimError& e) {
    run.status = "error";
    run.error = e.what();
  }
  return run;
}

double ErrPct(Cycle predicted, Cycle actual) {
  return std::abs(SignedErrPct(predicted, actual));
}

double SignedErrPct(Cycle predicted, Cycle actual) {
  SS_CHECK(actual > 0, "ErrPct: zero actual cycles");
  return 100.0 *
         (static_cast<double>(predicted) - static_cast<double>(actual)) /
         static_cast<double>(actual);
}

void PrintHeader(const std::string& experiment, const BenchOptions& opt) {
  std::printf("==== %s ====\n", experiment.c_str());
  std::printf("scale=%.2f threads=%u apps=%zu\n", opt.scale, opt.threads,
              opt.apps.empty() ? AllWorkloads().size() : opt.apps.size());
}

namespace {

std::string GitDescribe() {
  std::string out = "unknown";
  if (FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof buf, p)) {
      out.assign(buf);
      while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
      }
    }
    ::pclose(p);
    if (out.empty()) out = "unknown";
  }
  return out;
}

}  // namespace

std::string GitDescribeString() { return GitDescribe(); }

JsonRun ToJsonRun(const AppRun& run, const std::string& level,
                  unsigned threads) {
  JsonRun j;
  j.app = run.app;
  j.level = level;
  j.status = run.status;
  j.degrade_events = run.degrade_events;
  j.cycles = run.cycles;
  j.wall_seconds = run.wall_seconds;
  j.instrs_per_sec = run.wall_seconds > 0
                         ? static_cast<double>(run.instructions) /
                               run.wall_seconds
                         : 0.0;
  j.threads = threads;
  j.cycles_skipped = run.cycles_skipped;
  j.skip_jumps = run.skip_jumps;
  j.memo_hits = run.memo_hits;
  j.memo_misses = run.memo_misses;
  j.memo_cycles_avoided = run.memo_cycles_avoided;
  return j;
}

LatencySummary Summarize(const std::vector<double>& seconds) {
  LatencySummary s;
  if (seconds.empty()) return s;
  s.count = seconds.size();
  s.p50 = Quantile(seconds, 0.50);
  s.p95 = Quantile(seconds, 0.95);
  s.p99 = Quantile(seconds, 0.99);
  s.mean = Mean(seconds);
  s.max = *std::max_element(seconds.begin(), seconds.end());
  return s;
}

void AppendLatencyFields(const std::string& prefix, const LatencySummary& s,
                         std::vector<std::pair<std::string, double>>* extra) {
  extra->emplace_back(prefix + "_p50_sec", s.p50);
  extra->emplace_back(prefix + "_p95_sec", s.p95);
  extra->emplace_back(prefix + "_p99_sec", s.p99);
  extra->emplace_back(prefix + "_mean_sec", s.mean);
  extra->emplace_back(prefix + "_max_sec", s.max);
  extra->emplace_back(prefix + "_count", static_cast<double>(s.count));
}

void WriteRunsJson(const std::string& path, const std::string& bench,
                   const BenchOptions& opt, const std::vector<JsonRun>& runs) {
  WriteRunsJson(path, bench, opt, runs, {});
}

void WriteRunsJson(const std::string& path, const std::string& bench,
                   const BenchOptions& opt, const std::vector<JsonRun>& runs,
                   const std::vector<std::pair<std::string, double>>& extra) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  FILE* f = std::fopen(path.c_str(), "w");
  SS_CHECK(f != nullptr, "cannot open --json path '" + path + "'");
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git\": \"%s\",\n",
               bench.c_str(), GitDescribe().c_str());
  for (const auto& [name, value] : extra) {
    std::fprintf(f, "  \"%s\": %.6f,\n", name.c_str(), value);
  }
  std::fprintf(f, "  \"scale\": %.4f,\n  \"runs\": [\n", opt.scale);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const JsonRun& r = runs[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"level\": \"%s\", "
                 "\"status\": \"%s\", \"degrade_events\": %llu, "
                 "\"cycles\": %llu, "
                 "\"wall_seconds\": %.6f, \"instrs_per_sec\": %.1f, "
                 "\"speedup_vs_serial\": %.3f, "
                 "\"threads\": %u, \"scale\": %.4f, "
                 "\"cycles_skipped\": %llu, \"skip_jumps\": %llu, "
                 "\"memo_hits\": %llu, \"memo_misses\": %llu, "
                 "\"memo_cycles_avoided\": %llu, "
                 "\"trace_bytes\": %llu, \"bytes_per_instr\": %.2f, "
                 "\"peak_rss_kb\": %llu, "
                 "\"trace_build_seconds\": %.6f}%s\n",
                 r.app.c_str(), r.level.c_str(), r.status.c_str(),
                 static_cast<unsigned long long>(r.degrade_events),
                 static_cast<unsigned long long>(r.cycles), r.wall_seconds,
                 r.instrs_per_sec, r.speedup_vs_serial, r.threads,
                 r.scale > 0 ? r.scale : opt.scale,
                 static_cast<unsigned long long>(r.cycles_skipped),
                 static_cast<unsigned long long>(r.skip_jumps),
                 static_cast<unsigned long long>(r.memo_hits),
                 static_cast<unsigned long long>(r.memo_misses),
                 static_cast<unsigned long long>(r.memo_cycles_avoided),
                 static_cast<unsigned long long>(r.trace_bytes),
                 r.bytes_per_instr,
                 static_cast<unsigned long long>(r.peak_rss_kb),
                 r.trace_build_seconds, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

}  // namespace swiftsim::bench
