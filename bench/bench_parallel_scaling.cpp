// Strong-scaling study of the task-graph parallel detailed simulator
// (DESIGN.md §12): apps simulated serially, then with SM clusters
// dependency-scheduled over 1/2/4/8 workers at slack=1 (exact) and
// slack=32 (bounded approximation), plus the SM-parallel
// analytical-memory runner for reference. Reports wall time, speedup over
// serial (also emitted as `speedup_vs_serial` in the JSON records), and
// cycle drift; slack=1 rows are verified cycle-identical to the serial
// run. `--sweep=a,b,c` repeats the study at several workload scales.
//
// `--smoke` runs the CI perf gate instead: one app at scale >= 0.25,
// 4 workers vs serial, requiring >= 1.2x speedup — and exits 77 (ctest
// SKIP_RETURN_CODE) on hosts without at least 4 hardware threads, where
// the measurement would be meaningless.
//
// Speedups are only meaningful on a machine with spare cores — the header
// prints what the host actually offers.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "config/presets.h"
#include "swiftsim/parallel.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"

namespace {

constexpr int kSkipExit = 77;  // ctest SKIP_RETURN_CODE

using swiftsim::Application;
using swiftsim::Cycle;
using swiftsim::GpuConfig;
using swiftsim::ParallelDetailedOptions;
using swiftsim::RunParallelDetailed;
using swiftsim::RunSimulation;
using swiftsim::SimLevel;
using swiftsim::SimResult;

/// Best-of-N wall time for one configuration (N small: the smoke gate
/// must stay cheap, but a single sample is too noisy to gate CI on).
double BestWall(const std::function<SimResult()>& run, int repeats,
                SimResult* out) {
  double best = 0;
  for (int i = 0; i < repeats; ++i) {
    SimResult r = run();
    if (i == 0 || r.wall_seconds < best) {
      best = r.wall_seconds;
      *out = std::move(r);
    }
  }
  return best;
}

int RunSmoke(swiftsim::bench::BenchOptions opt) {
  using namespace swiftsim::bench;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::printf("SKIP: smoke gate needs >= 4 hardware threads, host has %u\n",
                hw);
    return kSkipExit;
  }
  opt.scale = std::max(opt.scale, 0.25);
  if (opt.apps.empty()) opt.apps = {"SM"};
  PrintHeader("Parallel scaling smoke gate (4 workers vs serial)", opt);
  GpuConfig gpu = swiftsim::Rtx2080TiConfig();
  ApplyRobustness(&gpu, opt);
  const SimLevel level = SimLevel::kSwiftSimBasic;
  bool ok = true;
  for (const Application& app : BuildApps(opt)) {
    SimResult serial;
    const double serial_wall = BestWall(
        [&] { return RunSimulation(app, gpu, level); }, 2, &serial);
    SimResult par;
    const double par_wall = BestWall(
        [&] {
          ParallelDetailedOptions popt;
          popt.num_threads = 4;
          popt.slack = 1;
          return RunParallelDetailed(app, gpu, level, popt);
        },
        2, &par);
    const double speedup = par_wall > 0 ? serial_wall / par_wall : 0;
    std::printf("%-8s serial %.3fs, 4 workers %.3fs -> %.2fx\n",
                app.name.c_str(), serial_wall, par_wall, speedup);
    if (par.total_cycles != serial.total_cycles ||
        par.instructions != serial.instructions) {
      std::printf("  FAIL: 4-worker run diverged from serial\n");
      ok = false;
    }
    if (speedup < 1.2) {
      std::printf("  FAIL: speedup %.2fx below the 1.2x floor\n", speedup);
      ok = false;
    }
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  // --smoke is this bench's own mode switch; strip it before the shared
  // parser (which rejects flags it does not know).
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchOptions opt = ParseOptions(static_cast<int>(args.size()),
                                  args.data(), /*default_scale=*/0.25);
  if (smoke) return RunSmoke(opt);

  if (opt.apps.empty()) opt.apps = {"SM", "GEMM"};
  if (opt.json_path.empty()) opt.json_path = "results/BENCH_parallel.json";
  std::vector<double> sweep = opt.sweep;
  if (sweep.empty()) sweep = {opt.scale};
  PrintHeader("Task-graph parallel simulation: strong scaling", opt);
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  GpuConfig gpu = Rtx2080TiConfig();
  ApplyRobustness(&gpu, opt);
  const SimLevel level = SimLevel::kSwiftSimBasic;
  bool exact_everywhere = true;
  std::vector<JsonRun> records;
  const auto record = [&](const std::string& app, const std::string& label,
                          const SimResult& r, unsigned threads,
                          double scale, double serial_wall) {
    JsonRun j;
    j.app = app;
    j.level = label;
    j.cycles = r.total_cycles;
    j.wall_seconds = r.wall_seconds;
    j.instrs_per_sec = r.wall_seconds > 0
                           ? static_cast<double>(r.instructions) /
                                 r.wall_seconds
                           : 0.0;
    j.speedup_vs_serial =
        (serial_wall > 0 && r.wall_seconds > 0)
            ? serial_wall / r.wall_seconds
            : 0.0;
    j.scale = scale;
    j.threads = threads;
    records.push_back(j);
  };

  for (const double scale : sweep) {
    BenchOptions at_scale = opt;
    at_scale.scale = scale;
    std::printf("== scale %.2f ==\n", scale);
    for (const Application& app : BuildApps(at_scale)) {
      const SimResult serial = RunSimulation(app, gpu, level);
      record(app.name, "serial", serial, 1, scale, serial.wall_seconds);
      std::printf("%-8s serial: %llu cycles, %.3fs\n", app.name.c_str(),
                  static_cast<unsigned long long>(serial.total_cycles),
                  serial.wall_seconds);
      std::printf("  %-22s %10s %9s %9s\n", "configuration", "wall[s]",
                  "speedup", "drift");
      for (const Cycle slack : {Cycle{1}, Cycle{32}}) {
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
          ParallelDetailedOptions popt;
          popt.num_threads = threads;
          popt.slack = slack;
          const SimResult par = RunParallelDetailed(app, gpu, level, popt);
          record(app.name,
                 "slack=" + std::to_string(static_cast<unsigned long long>(
                                slack)),
                 par, threads, scale, serial.wall_seconds);
          const double drift = SignedErrPct(par.total_cycles,
                                            serial.total_cycles);
          if (slack == 1 && par.total_cycles != serial.total_cycles) {
            std::printf("  ERROR: slack=1 t=%u diverged from serial\n",
                        threads);
            exact_everywhere = false;
          }
          std::printf("  %2u threads, slack=%-4llu %10.3f %8.2fx %8.2f%%\n",
                      threads, static_cast<unsigned long long>(slack),
                      par.wall_seconds,
                      serial.wall_seconds / par.wall_seconds, drift);
        }
      }
      const SimResult mem = RunSmParallelMemory(app, gpu, opt.threads
                                                              ? opt.threads
                                                              : 8);
      record(app.name, "sm-parallel-memory", mem,
             opt.threads ? opt.threads : 8, scale, serial.wall_seconds);
      std::printf("  %-22s %10.3f %8.2fx   (approx level)\n",
                  "sm-parallel-memory", mem.wall_seconds,
                  serial.wall_seconds / mem.wall_seconds);
      std::printf("\n");
    }
  }
  WriteRunsJson(opt.json_path, "bench_parallel_scaling", opt, records);
  if (!exact_everywhere) return EXIT_FAILURE;
  std::printf("all slack=1 runs cycle-identical to serial\n");
  return EXIT_SUCCESS;
}
