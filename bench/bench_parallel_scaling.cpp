// Strong-scaling study of the bounded-slack parallel detailed simulator
// (DESIGN.md §7): one Swift-Sim-Basic app simulated serially, then with
// SMs sharded over 1/2/4/8 threads at slack=1 (exact) and slack=32
// (bounded approximation), plus the SM-parallel analytical-memory runner
// for reference. Reports wall time, speedup over serial, and cycle drift;
// slack=1 rows are verified cycle-identical to the serial run.
//
// Speedups are only meaningful on a machine with spare cores — the header
// prints what the host actually offers.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "config/presets.h"
#include "swiftsim/parallel.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.35);
  if (opt.apps.empty()) opt.apps = {"SM", "GEMM"};
  if (opt.json_path.empty()) opt.json_path = "results/BENCH_parallel.json";
  PrintHeader("Parallel detailed simulation: strong scaling", opt);
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  GpuConfig gpu = Rtx2080TiConfig();
  ApplyRobustness(&gpu, opt);
  const SimLevel level = SimLevel::kSwiftSimBasic;
  bool exact_everywhere = true;
  std::vector<JsonRun> records;
  const auto record = [&](const std::string& app, const std::string& label,
                          const SimResult& r, unsigned threads) {
    JsonRun j;
    j.app = app;
    j.level = label;
    j.cycles = r.total_cycles;
    j.wall_seconds = r.wall_seconds;
    j.instrs_per_sec = r.wall_seconds > 0
                           ? static_cast<double>(r.instructions) /
                                 r.wall_seconds
                           : 0.0;
    j.threads = threads;
    records.push_back(j);
  };

  for (const Application& app : BuildApps(opt)) {
    const SimResult serial = RunSimulation(app, gpu, level);
    record(app.name, "serial", serial, 1);
    std::printf("%-8s serial: %llu cycles, %.3fs\n", app.name.c_str(),
                static_cast<unsigned long long>(serial.total_cycles),
                serial.wall_seconds);
    std::printf("  %-22s %10s %9s %9s\n", "configuration", "wall[s]",
                "speedup", "drift");
    for (const Cycle slack : {Cycle{1}, Cycle{32}}) {
      for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        ParallelDetailedOptions popt;
        popt.num_threads = threads;
        popt.slack = slack;
        const SimResult par = RunParallelDetailed(app, gpu, level, popt);
        record(app.name,
               "slack=" + std::to_string(static_cast<unsigned long long>(
                              slack)),
               par, threads);
        const double drift = SignedErrPct(par.total_cycles,
                                          serial.total_cycles);
        if (slack == 1 && par.total_cycles != serial.total_cycles) {
          std::printf("  ERROR: slack=1 t=%u diverged from serial\n",
                      threads);
          exact_everywhere = false;
        }
        std::printf("  %2u threads, slack=%-4llu %10.3f %8.2fx %8.2f%%\n",
                    threads, static_cast<unsigned long long>(slack),
                    par.wall_seconds, serial.wall_seconds / par.wall_seconds,
                    drift);
      }
    }
    const SimResult mem = RunSmParallelMemory(app, gpu, opt.threads
                                                            ? opt.threads
                                                            : 8);
    record(app.name, "sm-parallel-memory", mem, opt.threads ? opt.threads : 8);
    std::printf("  %-22s %10.3f %8.2fx   (approx level)\n",
                "sm-parallel-memory", mem.wall_seconds,
                serial.wall_seconds / mem.wall_seconds);
    std::printf("\n");
  }
  WriteRunsJson(opt.json_path, "bench_parallel_scaling", opt, records);
  if (!exact_everywhere) return EXIT_FAILURE;
  std::printf("all slack=1 runs cycle-identical to serial\n");
  return EXIT_SUCCESS;
}
