// Figure 4: per-application cycle-prediction error (Swift-Sim-Basic,
// Swift-Sim-Memory and the Accel-Sim-class baseline, all vs. the silicon
// oracle standing in for the RTX 2080 Ti) and the speedup of the two
// Swift-Sim simulators over the baseline.
//
// Paper reference points: mean error 22.6% (Basic) / 24.3% (Memory) /
// 20.2% (Accel-Sim); geometric-mean speedups 82.6x / 211.2x with ~50-way
// parallelism; NW, ADI, SM, GRU exceed 1000x for Swift-Sim-Memory.
// The speedups printed here are single-thread (the "serial" component);
// the parallel contribution is measured by bench_fig5.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "config/presets.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  const BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.3);
  PrintHeader("Figure 4: prediction error and speedup (RTX 2080 Ti)", opt);

  const GpuConfig gpu = Rtx2080TiConfig();
  const auto apps = BuildApps(opt);

  std::printf("%-10s %12s %10s %10s %10s | %9s %9s\n", "app", "hw_cycles",
              "err_accel", "err_basic", "err_mem", "sp_basic", "sp_mem");

  std::vector<double> err_a, err_b, err_m, sp_b, sp_m;
  for (const Application& app : apps) {
    const AppRun hw = RunOne(app, gpu, SimLevel::kSilicon);
    const AppRun accel = RunOne(app, gpu, SimLevel::kDetailed);
    const AppRun basic = RunOne(app, gpu, SimLevel::kSwiftSimBasic);
    const AppRun mem = RunOne(app, gpu, SimLevel::kSwiftSimMemory);

    const double ea = SignedErrPct(accel.cycles, hw.cycles);
    const double eb = SignedErrPct(basic.cycles, hw.cycles);
    const double em = SignedErrPct(mem.cycles, hw.cycles);
    const double sb = accel.wall_seconds / basic.wall_seconds;
    const double sm = accel.wall_seconds / mem.wall_seconds;
    err_a.push_back(std::abs(ea));
    err_b.push_back(std::abs(eb));
    err_m.push_back(std::abs(em));
    sp_b.push_back(sb);
    sp_m.push_back(sm);
    std::printf("%-10s %12llu %+9.1f%% %+8.1f%% %+8.1f%% | %8.1fx %8.1fx\n",
                app.name.c_str(),
                static_cast<unsigned long long>(hw.cycles), ea, eb, em, sb,
                sm);
  }
  std::printf("-- summary (paper: err 20.2%% / 22.6%% / 24.3%%; serial "
              "speedup component of 82.6x / 211.2x) --\n");
  std::printf("mean error   accel-sim=%.1f%%  basic=%.1f%%  memory=%.1f%%\n",
              Mean(err_a), Mean(err_b), Mean(err_m));
  std::printf("geomean single-thread speedup  basic=%.1fx  memory=%.1fx\n",
              GeoMean(sp_b), GeoMean(sp_m));
  return 0;
}
