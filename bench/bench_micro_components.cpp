// Component microbenchmarks (google-benchmark): throughput of the hot
// simulator primitives. Useful when optimizing the framework itself.
#include <benchmark/benchmark.h>

#include "analytical/reuse_distance.h"
#include "common/rng.h"
#include "config/presets.h"
#include "core/scheduler.h"
#include "mem/cache.h"
#include "mem/coalescer.h"
#include "mem/tag_array.h"

namespace swiftsim {
namespace {

void BM_Coalesce_Coalesced(benchmark::State& state) {
  std::vector<Addr> addrs;
  for (unsigned i = 0; i < kWarpSize; ++i) addrs.push_back(0x1000 + i * 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Coalesce(addrs, 4, 128, 32));
  }
}
BENCHMARK(BM_Coalesce_Coalesced);

void BM_Coalesce_Scattered(benchmark::State& state) {
  Rng rng(7);
  std::vector<Addr> addrs;
  for (unsigned i = 0; i < kWarpSize; ++i) {
    addrs.push_back(rng.Below(1 << 24) * 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Coalesce(addrs, 4, 128, 32));
  }
}
BENCHMARK(BM_Coalesce_Scattered);

void BM_TagArrayProbe(benchmark::State& state) {
  TagArray tags(Rtx2080TiConfig().l1, 1);
  Rng rng(3);
  Cycle now = 0;
  for (auto _ : state) {
    Eviction ev;
    benchmark::DoNotOptimize(
        tags.Probe(rng.Below(1 << 16) * 128, 0xF, ++now, &ev));
  }
}
BENCHMARK(BM_TagArrayProbe);

void BM_CacheAccessHit(benchmark::State& state) {
  SectorCache cache("bm", Rtx2080TiConfig().l1, 1);
  MemRequest req;
  req.line_addr = 0x1000;
  req.sector_mask = 0xF;
  req.id = 1;
  Cycle now = 0;
  cache.BeginCycle(now);
  cache.Access(req, now);  // install via miss
  cache.Fill(MemResponse{1, 0x1000, 0xF, 0}, now);
  for (auto _ : state) {
    ++now;
    cache.BeginCycle(now);
    cache.responses().clear();
    req.id = now;
    benchmark::DoNotOptimize(cache.Access(req, now));
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_SchedulerPickGto(benchmark::State& state) {
  WarpScheduler sched(SchedPolicy::kGto, 8);
  unsigned i = 0;
  auto ready = [&](unsigned slot) { return (slot + i) % 3 == 0; };
  auto age = [](unsigned slot) { return std::uint64_t{slot}; };
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(sched.Pick(ready, age));
  }
}
BENCHMARK(BM_SchedulerPickGto);

void BM_ReuseDistanceAccess(benchmark::State& state) {
  ReuseDistanceProfiler prof;
  Rng rng(11);
  for (auto _ : state) {
    prof.Access(rng.Below(1 << 14) * 128);
  }
}
BENCHMARK(BM_ReuseDistanceAccess);

}  // namespace
}  // namespace swiftsim

BENCHMARK_MAIN();
