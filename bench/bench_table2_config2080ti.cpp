// Table II: the NVIDIA RTX 2080 Ti configuration used for the detailed
// Figure-4 comparison. Prints every row and checks it against the paper.
#include <cstdio>

#include "bench_common.h"
#include "common/status.h"
#include "config/presets.h"

int main() {
  using namespace swiftsim;
  const GpuConfig c = Rtx2080TiConfig();
  std::printf("==== Table II: NVIDIA RTX 2080 Ti GPU configuration ====\n");
  std::printf("%-24s %u\n", "# SMs", c.num_sms);
  std::printf("%-24s %u\n", "# Sub-Cores/SM", c.sub_cores_per_sm);
  std::printf("%-24s Warp Scheduler: %ux, %s\n", "Resources/Sub-core",
              c.schedulers_per_sub_core, ToString(c.sched_policy).c_str());
  std::printf("%-24s Exec Units: INT:%ux, SP:%ux, DP:1/%u, SFU:%ux\n", "",
              c.int_unit.lanes, c.sp_unit.lanes,
              c.dp_unit.issue_interval(), c.sfu_unit.lanes);
  std::printf("%-24s LD/ST Units: %ux\n", "", c.ldst_units_per_sub_core);
  std::printf("%-24s sectored%s, %s, %u banks, %uB/line, %uB/sector,\n",
              "L1 in SM", c.l1.streaming ? ", streaming" : "",
              ToString(c.l1.write_policy).c_str(), c.l1.banks,
              c.l1.line_bytes, c.l1.sector_bytes);
  std::printf("%-24s %u MSHR entries, %u max merge/MSHR, %s, %u cycles\n",
              "", c.l1.mshr_entries, c.l1.mshr_max_merge,
              ToString(c.l1.replacement).c_str(), c.l1.latency);
  std::printf("%-24s sectored, %s, %uB/line, %uB/sector,\n", "L2 Cache",
              ToString(c.l2.write_policy).c_str(), c.l2.line_bytes,
              c.l2.sector_bytes);
  std::printf("%-24s %u MSHR entries, %u max merge/MSHR, %s, %u cycles "
              "(load-to-use)\n",
              "", c.l2.mshr_entries, c.l2.mshr_max_merge,
              ToString(c.l2.replacement).c_str(), c.l1.latency + c.l2.latency);
  std::printf("%-24s %u memory partitions, %u cycles\n", "Memory",
              c.num_mem_partitions, c.dram.latency);

  SS_CHECK(c.num_sms == 68 && c.sub_cores_per_sm == 4, "Table II SM row");
  SS_CHECK(c.sched_policy == SchedPolicy::kGto &&
               c.schedulers_per_sub_core == 1,
           "Table II scheduler row");
  SS_CHECK(c.int_unit.lanes == 16 && c.sp_unit.lanes == 16 &&
               c.dp_unit.issue_interval() == 64 && c.sfu_unit.lanes == 4 &&
               c.ldst_units_per_sub_core == 4,
           "Table II exec-unit row");
  SS_CHECK(c.l1.streaming && c.l1.banks == 4 && c.l1.line_bytes == 128 &&
               c.l1.sector_bytes == 32 && c.l1.mshr_entries == 256 &&
               c.l1.mshr_max_merge == 8 && c.l1.latency == 32,
           "Table II L1 row");
  SS_CHECK(c.l2.mshr_entries == 192 && c.l2.mshr_max_merge == 4 &&
               c.l1.latency + c.l2.latency == 188,
           "Table II L2 row");
  SS_CHECK(c.num_mem_partitions == 22 && c.dram.latency == 227,
           "Table II memory row");
  std::printf("all Table II values verified against the paper\n");
  return 0;
}
