// Figure 6: performance-prediction errors of Swift-Sim-Basic and the
// Accel-Sim-class baseline across three GPUs (RTX 2080 Ti / 3060 / 3090).
//
// Paper reference: 3060 — Swift-Sim-Basic 25.14% vs Accel-Sim 23.81%;
// 3090 — 20.23% vs 27.93%, with Accel-Sim degrading on BFS/ADI/LU due to
// cache reservation failures. We report reservation-failure counts from
// the baseline's (non-streaming) L2 alongside the errors.
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "config/presets.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  const BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.2);
  PrintHeader("Figure 6: prediction error across three GPUs", opt);

  const auto apps = BuildApps(opt);
  for (const auto& name : PresetNames()) {
    const GpuConfig gpu = PresetByName(name);
    std::printf("-- %s --\n", gpu.name.c_str());
    std::printf("%-10s %12s %10s %10s %14s\n", "app", "hw_cycles",
                "err_accel", "err_basic", "rsv_fails");
    std::vector<double> err_a, err_b;
    for (const Application& app : apps) {
      const AppRun hw = RunOne(app, gpu, SimLevel::kSilicon);
      const AppRun accel = RunOne(app, gpu, SimLevel::kDetailed);
      const AppRun basic = RunOne(app, gpu, SimLevel::kSwiftSimBasic);
      const double ea = SignedErrPct(accel.cycles, hw.cycles);
      const double eb = SignedErrPct(basic.cycles, hw.cycles);
      err_a.push_back(ErrPct(accel.cycles, hw.cycles));
      err_b.push_back(ErrPct(basic.cycles, hw.cycles));
      std::printf("%-10s %12llu %+9.1f%% %+9.1f%% %14llu\n",
                  app.name.c_str(),
                  static_cast<unsigned long long>(hw.cycles), ea, eb,
                  static_cast<unsigned long long>(accel.reservation_fails));
    }
    std::printf("mean error: accel-sim=%.2f%%  swift-sim-basic=%.2f%%\n",
                Mean(err_a), Mean(err_b));
  }
  std::printf("(paper: 3060 25.14%%/23.81%%; 3090 20.23%%/27.93%%)\n");
  return 0;
}
