// Persistent-service bench (DESIGN.md §15): drives a real `swiftsimd`
// daemon end-to-end over its stdin/stdout NDJSON transport and measures
// what the warm process buys:
//
//   cold     first submission of each job to a fresh daemon — pays trace
//            generation, the pre-pass and full simulation
//   warm     the same jobs resubmitted to the same daemon — served from
//            the process-global MemoCache/ProfileCache/trace caches
//   burst    identical jobs submitted back-to-back under a never-seen
//            config — exercises request coalescing (one simulation fans
//            out to every submitter)
//   reload   a second daemon started on the first one's --memo-file —
//            warm throughput across process restarts
//
// Every daemon-reported cycle count is checked bit-identical against an
// in-process one-shot reference run of the same (workload, config,
// level), including coalesced fan-outs and post-reload replays; the
// bench exits non-zero on any mismatch. Reports cold/warm/reload
// throughput and p50/p95/p99 request latency; writes
// results/BENCH_service.json unless --json= says otherwise.
//
// --smoke: shrunk shape gating CI — warm throughput must beat cold by
// >= 10x; exits 77 (skip) on hosts without 4 hardware threads, where the
// daemon's lane shape degenerates.
//
// --supervise-smoke: crash-recovery gate (DESIGN.md §16) — runs the
// daemon under `swiftsimd --supervise`, SIGKILLs the worker mid-session
// and requires a restart, bit-identical service afterwards, restarts >= 1
// in the stats op, and a clean shutdown.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "common/status.h"
#include "swiftsim/simulator.h"

namespace {

using Clock = std::chrono::steady_clock;
using swiftsim::Application;
using swiftsim::GpuConfig;
using swiftsim::JsonValue;
using swiftsim::JsonWriter;
using swiftsim::ParseJson;
using swiftsim::SimLevel;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One response line, decoded. Unset numeric fields stay zero.
struct Reply {
  std::string id;
  bool ok = false;
  std::string status;
  std::string error;
  std::uint64_t cycles = 0;
  double wall_seconds = 0;
  bool coalesced = false;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

Reply DecodeReply(const std::string& line) {
  JsonValue v = ParseJson(line);
  Reply r;
  if (const JsonValue* f = v.Find("id")) r.id = f->AsString();
  if (const JsonValue* f = v.Find("ok")) r.ok = f->AsBool();
  if (const JsonValue* f = v.Find("status")) r.status = f->AsString();
  if (const JsonValue* f = v.Find("error")) r.error = f->AsString();
  if (const JsonValue* f = v.Find("cycles")) r.cycles = f->AsUint();
  if (const JsonValue* f = v.Find("wall_seconds")) r.wall_seconds = f->AsDouble();
  if (const JsonValue* f = v.Find("coalesced")) r.coalesced = f->AsBool();
  if (const JsonValue* f = v.Find("memo_hits")) r.memo_hits = f->AsUint();
  if (const JsonValue* f = v.Find("memo_misses")) r.memo_misses = f->AsUint();
  return r;
}

/// A swiftsimd child process driven over stdin/stdout pipes.
class Daemon {
 public:
  Daemon(const std::string& binary, const std::vector<std::string>& args) {
    int to_child[2];
    int from_child[2];
    SS_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
             "pipe() failed");
    pid_ = ::fork();
    SS_CHECK(pid_ >= 0, "fork() failed");
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary.c_str()));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      std::perror("bench_service: execv");
      std::_Exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    in_fd_ = to_child[1];
    out_fd_ = from_child[0];
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (in_fd_ >= 0) ::close(in_fd_);
    if (out_fd_ >= 0) ::close(out_fd_);
  }

  void Send(const std::string& line) {
    std::string framed = line + "\n";
    const char* p = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      ssize_t n = ::write(in_fd_, p, left);
      SS_CHECK(n > 0, "write to daemon failed");
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  /// Blocking line read; throws when the daemon closes its end early.
  std::string ReadLine() {
    for (;;) {
      std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      ssize_t n = ::read(out_fd_, chunk, sizeof chunk);
      SS_CHECK(n > 0, "daemon closed its output pipe unexpectedly");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads until `count` replies arrived, keyed by id.
  std::map<std::string, Reply> Collect(std::size_t count) {
    std::map<std::string, Reply> replies;
    while (replies.size() < count) {
      Reply r = DecodeReply(ReadLine());
      replies[r.id] = r;
    }
    return replies;
  }

  /// Sends a shutdown op, drains until the acknowledgement, reaps the
  /// child, and returns its exit status.
  int Shutdown() {
    Send(R"({"op":"shutdown","id":"__shutdown__"})");
    for (;;) {
      Reply r = DecodeReply(ReadLine());
      if (r.id == "__shutdown__") break;
    }
    ::close(in_fd_);
    in_fd_ = -1;
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128;
  }

 private:
  pid_t pid_ = -1;
  int in_fd_ = -1;
  int out_fd_ = -1;
  std::string buffer_;
};

std::string SimulateRequest(const std::string& id, const std::string& workload,
                            double scale, unsigned iterations,
                            const std::string& config_ini = "") {
  JsonWriter w;
  w.BeginObject();
  w.Key("id").String(id);
  w.Key("workload").String(workload);
  w.Key("scale").Double(scale);
  w.Key("iterations").Uint(iterations);
  if (!config_ini.empty()) w.Key("config").String(config_ini);
  w.EndObject();
  return w.str();
}

struct Phase {
  double wall_seconds = 0;
  std::map<std::string, Reply> replies;

  double throughput(std::size_t jobs) const {
    return wall_seconds > 0 ? static_cast<double>(jobs) / wall_seconds : 0;
  }
  std::vector<double> latencies() const {
    std::vector<double> out;
    out.reserve(replies.size());
    for (const auto& [id, r] : replies) out.push_back(r.wall_seconds);
    return out;
  }
};

/// Sends every request, then collects every reply. Requests are a few
/// hundred bytes each — far below the pipe buffer — so the batched write
/// cannot deadlock against the daemon's response stream.
Phase RunPhase(Daemon& d, const std::vector<std::string>& requests) {
  Phase p;
  Clock::time_point start = Clock::now();
  for (const std::string& r : requests) d.Send(r);
  p.replies = d.Collect(requests.size());
  p.wall_seconds = Seconds(start, Clock::now());
  return p;
}

/// Supervised-daemon recovery gate (DESIGN.md §16): start `swiftsimd
/// --supervise`, serve a job, SIGKILL the worker process (pid from its
/// pid file), and require the supervisor to restart it within the backoff
/// budget, serve the same job bit-identically again, report restarts >= 1
/// in the stats op, and still shut down cleanly.
int RunSuperviseSmoke(const std::string& daemon_path,
                      const swiftsim::bench::BenchOptions& opt) {
  using namespace swiftsim;
  namespace fs = std::filesystem;

  const std::string scratch =
      (fs::temp_directory_path() /
       ("swiftsim-supervise-smoke-" + std::to_string(::getpid()))).string();
  fs::create_directories(scratch);
  const std::string pid_file = scratch + "/worker.pid";
  const std::string journal = scratch + "/jobs.journal";

  const std::string app = "BFS";
  constexpr unsigned kIter = 4;
  Application ref_app =
      RepeatLaunches(BuildWorkload(app, {opt.scale, opt.seed}), kIter);
  const Cycle want =
      RunSimulation(ref_app, GpuConfig(), SimLevel::kSwiftSimMemory)
          .total_cycles;

  Daemon d(daemon_path,
           {"--supervise", "--threads", "2", "--worker-pid-file", pid_file,
            "--job-journal", journal, "--restart-backoff", "20",
            "--max-restarts", "4"});

  bool ok = true;
  auto check = [&ok](bool cond, const std::string& what) {
    if (!cond) {
      std::printf("FAIL: %s\n", what.c_str());
      ok = false;
    }
  };

  const Reply before = [&] {
    d.Send(SimulateRequest("pre", app, opt.scale, kIter));
    return DecodeReply(d.ReadLine());
  }();
  check(before.ok, "pre-crash job failed: " + before.error);
  check(!before.ok || before.cycles == want,
        "pre-crash cycles diverge from the one-shot reference");

  // Murder the worker. The pid file exists — the first response can only
  // have come from a spawned worker.
  long wpid = -1;
  if (std::FILE* f = std::fopen(pid_file.c_str(), "r")) {
    if (std::fscanf(f, "%ld", &wpid) != 1) wpid = -1;
    std::fclose(f);
  }
  check(wpid > 0, "worker pid file missing after first response");
  if (wpid > 0) ::kill(static_cast<pid_t>(wpid), SIGKILL);
  std::printf("supervise: SIGKILLed worker pid %ld\n", wpid);

  // The next job must be answered by a restarted worker — whether it was
  // queued during the backoff window or replayed off the dead incarnation.
  d.Send(SimulateRequest("post", app, opt.scale, kIter));
  const Reply after = DecodeReply(d.ReadLine());
  check(after.ok, "post-crash job failed: " + after.error);
  check(!after.ok || after.cycles == want,
        "post-crash cycles diverge (restart must not corrupt results)");

  d.Send(R"({"op":"stats","id":"s"})");
  const std::string stats_line = d.ReadLine();
  std::uint64_t restarts = 0;
  bool supervised = false;
  try {
    const JsonValue v = ParseJson(stats_line);
    if (const JsonValue* s = v.Find("stats")) {
      if (const JsonValue* f = s->Find("restarts")) restarts = f->AsUint();
      if (const JsonValue* f = s->Find("supervised"))
        supervised = f->AsBool();
    }
  } catch (const SimError&) {
  }
  check(supervised, "stats op does not report supervised=true");
  check(restarts >= 1, "stats op reports restarts=" +
                           std::to_string(restarts) + ", expected >= 1");

  const int rc = d.Shutdown();
  check(rc == 0, "supervisor exited " + std::to_string(rc) +
                     " after shutdown, expected 0");

  fs::remove_all(scratch);
  if (!ok) {
    std::printf("\nsupervise smoke: FAILURES detected\n");
    return 1;
  }
  std::printf("supervise smoke: worker crash survived, %llu restart(s), "
              "bit-identical service resumed, clean shutdown\n",
              static_cast<unsigned long long>(restarts));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;

  std::string daemon_path = "tools/swiftsimd";
  bool smoke = false;
  bool supervise_smoke = false;
  unsigned repeats = 4;
  std::vector<BenchFlag> extra = {
      {"--daemon", true, [&](const std::string& v) { daemon_path = v; }},
      {"--smoke", false, [&](const std::string&) { smoke = true; }},
      {"--supervise-smoke", false,
       [&](const std::string&) { supervise_smoke = true; }},
      {"--repeats", true,
       [&](const std::string& v) { repeats = static_cast<unsigned>(std::stoul(v)); }},
  };
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.05, extra);
  if (opt.apps.empty()) opt.apps = {"BFS", "NW", "HOTSPOT", "GEMM"};
  if (smoke) repeats = std::min(repeats, 3u);
  if (opt.json_path.empty()) opt.json_path = "results/BENCH_service.json";
  constexpr unsigned kIterations = 8;

  if (smoke && std::thread::hardware_concurrency() < 4) {
    std::printf("SKIP: %u hardware threads < 4\n",
                std::thread::hardware_concurrency());
    return 77;
  }
  if (::access(daemon_path.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "bench_service: daemon binary '%s' not executable "
                 "(pass --daemon=<path to swiftsimd>)\n", daemon_path.c_str());
    return 1;
  }
  if (supervise_smoke) return RunSuperviseSmoke(daemon_path, opt);

  PrintHeader("Persistent simulation service: cold vs warm requests", opt);
  std::printf("daemon: %s, %zu jobs x %u repeats, %u launches/job\n",
              daemon_path.c_str(), opt.apps.size(), repeats, kIterations);

  // Scratch state for the daemon pair.
  const std::string scratch =
      (std::filesystem::temp_directory_path() /
       ("swiftsim-bench-service-" + std::to_string(::getpid()))).string();
  std::filesystem::create_directories(scratch + "/traces");
  const std::string memo_file = scratch + "/service.memo";

  std::vector<std::string> daemon_args = {
      "--memo-file", memo_file, "--trace-cache", scratch + "/traces"};
  if (opt.threads != 0) {
    daemon_args.push_back("--threads");
    daemon_args.push_back(std::to_string(opt.threads));
  }

  // In-process one-shot reference runs: the bit-identity oracle for every
  // daemon-reported cycle count (same workload, config, level).
  std::map<std::string, Cycle> reference;
  for (const std::string& name : opt.apps) {
    Application app = RepeatLaunches(
        BuildWorkload(name, {opt.scale, opt.seed}), kIterations);
    reference[name] =
        RunSimulation(app, GpuConfig(), SimLevel::kSwiftSimMemory).total_cycles;
  }

  bool ok = true;
  auto check = [&ok](bool cond, const std::string& what) {
    if (!cond) {
      std::printf("FAIL: %s\n", what.c_str());
      ok = false;
    }
  };
  auto check_replies = [&](const Phase& p, const std::string& phase_name,
                           const std::map<std::string, Cycle>& want) {
    for (const auto& [id, r] : p.replies) {
      check(r.ok, phase_name + " reply " + id + " failed: " + r.error);
      if (!r.ok) continue;
      const std::string app = id.substr(0, id.find('#'));
      auto it = want.find(app);
      if (it != want.end()) {
        std::ostringstream os;
        os << phase_name << " reply " << id << " cycles " << r.cycles
           << " != one-shot reference " << it->second;
        check(r.cycles == it->second, os.str());
      }
    }
  };

  // --- Daemon A: cold then warm ------------------------------------------
  Daemon a(daemon_path, daemon_args);

  std::vector<std::string> cold_requests;
  for (const std::string& name : opt.apps) {
    cold_requests.push_back(
        SimulateRequest(name + "#cold", name, opt.scale, kIterations));
  }
  Phase cold = RunPhase(a, cold_requests);
  check_replies(cold, "cold", reference);

  std::vector<std::string> warm_requests;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    for (const std::string& name : opt.apps) {
      warm_requests.push_back(SimulateRequest(
          name + "#warm" + std::to_string(rep), name, opt.scale, kIterations));
    }
  }
  Phase warm = RunPhase(a, warm_requests);
  check_replies(warm, "warm", reference);
  for (const auto& [id, r] : warm.replies) {
    check(!r.ok || r.memo_misses == 0,
          "warm reply " + id + " simulated launches (expected pure replay)");
  }

  // --- Coalescing burst: identical jobs under a never-seen config --------
  const std::string burst_app = opt.apps.front();
  const std::string burst_cfg = "[gpu]\nnum_sms = 35\n";
  std::vector<std::string> burst_requests;
  for (unsigned i = 0; i < 8; ++i) {
    burst_requests.push_back(SimulateRequest(
        burst_app + "#burst" + std::to_string(i), burst_app, opt.scale,
        kIterations, burst_cfg));
  }
  Phase burst = RunPhase(a, burst_requests);
  std::size_t coalesced_count = 0;
  Cycle burst_cycles = 0;
  for (const auto& [id, r] : burst.replies) {
    check(r.ok, "burst reply " + id + " failed: " + r.error);
    if (!r.ok) continue;
    if (r.coalesced) ++coalesced_count;
    if (burst_cycles == 0) burst_cycles = r.cycles;
    check(r.cycles == burst_cycles,
          "burst replies disagree on cycles (coalesced fan-out must be "
          "bit-identical)");
  }
  check(coalesced_count >= 1,
        "no burst request coalesced (expected >= 1 of 8 identical jobs)");

  int exit_a = a.Shutdown();
  check(exit_a == 0, "daemon A exited with status " + std::to_string(exit_a));
  check(std::filesystem::exists(memo_file),
        "daemon A did not persist " + memo_file);

  // --- Daemon B: restart on the persisted memo file ----------------------
  Daemon b(daemon_path, daemon_args);
  std::vector<std::string> reload_requests;
  for (const std::string& name : opt.apps) {
    reload_requests.push_back(
        SimulateRequest(name + "#reload", name, opt.scale, kIterations));
  }
  Phase reload = RunPhase(b, reload_requests);
  check_replies(reload, "reload", reference);
  for (const auto& [id, r] : reload.replies) {
    check(!r.ok || r.memo_misses == 0,
          "reload reply " + id + " simulated launches (expected replay from "
          "the persisted memo file)");
  }
  int exit_b = b.Shutdown();
  check(exit_b == 0, "daemon B exited with status " + std::to_string(exit_b));

  // --- Report -------------------------------------------------------------
  const std::size_t cold_jobs = cold_requests.size();
  const std::size_t warm_jobs = warm_requests.size();
  const double cold_tp = cold.throughput(cold_jobs);
  const double warm_tp = warm.throughput(warm_jobs);
  const double reload_tp = reload.throughput(reload_requests.size());
  const double speedup = cold_tp > 0 ? warm_tp / cold_tp : 0;
  LatencySummary cold_lat = Summarize(cold.latencies());
  LatencySummary warm_lat = Summarize(warm.latencies());

  std::printf("\n%-8s %8s %14s %12s %12s %12s\n", "phase", "jobs", "jobs/s",
              "p50[s]", "p95[s]", "p99[s]");
  std::printf("%-8s %8zu %14.2f %12.4f %12.4f %12.4f\n", "cold", cold_jobs,
              cold_tp, cold_lat.p50, cold_lat.p95, cold_lat.p99);
  std::printf("%-8s %8zu %14.2f %12.4f %12.4f %12.4f\n", "warm", warm_jobs,
              warm_tp, warm_lat.p50, warm_lat.p95, warm_lat.p99);
  std::printf("%-8s %8zu %14.2f\n", "reload", reload_requests.size(),
              reload_tp);
  std::printf("warm vs cold throughput: %.1fx (coalesced %zu/8 burst jobs)\n",
              speedup, coalesced_count);

  if (smoke) {
    check(speedup >= 10.0,
          "warm throughput only " + std::to_string(speedup) +
              "x cold (smoke gate requires >= 10x)");
  }

  std::vector<JsonRun> records;
  auto record_phase = [&](const Phase& p, const std::string& level) {
    for (const auto& [id, r] : p.replies) {
      if (!r.ok) continue;
      JsonRun jr;
      jr.app = id.substr(0, id.find('#'));
      jr.level = level;
      jr.status = r.status;
      jr.cycles = r.cycles;
      jr.wall_seconds = r.wall_seconds;
      jr.memo_hits = r.memo_hits;
      jr.memo_misses = r.memo_misses;
      jr.threads = opt.threads == 0 ? std::thread::hardware_concurrency()
                                    : opt.threads;
      records.push_back(jr);
    }
  };
  record_phase(cold, "service-cold");
  record_phase(warm, "service-warm");
  record_phase(burst, "service-burst");
  record_phase(reload, "service-reload");

  std::vector<std::pair<std::string, double>> extra_fields = {
      {"cold_jobs_per_sec", cold_tp},
      {"warm_jobs_per_sec", warm_tp},
      {"reload_jobs_per_sec", reload_tp},
      {"warm_speedup_vs_cold", speedup},
      {"burst_coalesced", static_cast<double>(coalesced_count)},
  };
  AppendLatencyFields("cold_latency", cold_lat, &extra_fields);
  AppendLatencyFields("warm_latency", warm_lat, &extra_fields);
  WriteRunsJson(opt.json_path, "service", opt, records, extra_fields);

  std::filesystem::remove_all(scratch);
  if (!ok) {
    std::printf("\nbench_service: FAILURES detected\n");
    return 1;
  }
  std::printf("\nbench_service: all identity/coalescing checks passed\n");
  return 0;
}
