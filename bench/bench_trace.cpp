// Trace-footprint and streaming-generation bench (DESIGN.md §14).
//
// Per app it measures:
//   - columnar trace bytes and bytes/instr, against the AoS baseline of
//     sizeof(TraceInstr) per instruction (what the pre-columnar storage
//     paid for every record, addresses inline);
//   - cold generation wall time, serial vs parallel per-variant streaming
//     (the seed generator was serial AoS, so serial time is the cold-run
//     baseline a user upgraded from);
//   - compact on-disk cache round-trip: write, then load and fingerprint-
//     check the reloaded application against the generated one.
//
// --smoke turns the measurements into a CI gate: every app must compress
// to <= 1/3 of the AoS bytes/instr, the parallel cold run must beat the
// serial baseline by >= 1.5x in aggregate, and every cache reload must be
// bit-identical. Exits 77 (skip) on hosts without 4 hardware threads,
// where the speedup measurement is meaningless.
//
// Writes results/BENCH_trace.json unless --json= says otherwise.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench_common.h"
#include "trace/fingerprint.h"
#include "workloads/gen_util.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  bool smoke = false;
  std::vector<BenchFlag> extra = {
      {"--smoke", false, [&smoke](const std::string&) { smoke = true; }},
  };
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.35, extra);
  if (opt.json_path.empty()) opt.json_path = "results/BENCH_trace.json";
  PrintHeader("Trace footprint: columnar storage + streaming generation",
              opt);
  if (smoke && std::thread::hardware_concurrency() < 4) {
    std::printf("SKIP: need >= 4 hardware threads for the speedup gate\n");
    return 77;
  }

  std::vector<std::string> names = opt.apps;
  if (names.empty()) {
    for (const auto& spec : AllWorkloads()) names.push_back(spec.name);
  }
  WorkloadScale scale;
  scale.scale = opt.scale;
  scale.seed = opt.seed;

  const std::filesystem::path cache_dir =
      opt.trace_cache_dir.empty()
          ? std::filesystem::path("results") / "trace_cache_bench"
          : std::filesystem::path(opt.trace_cache_dir);
  TraceBuildOptions cache_opts;
  cache_opts.cache_dir = cache_dir.string();

  std::vector<JsonRun> records;
  double serial_total = 0, parallel_total = 0;
  bool gate_ok = true;
  std::printf("%-10s %12s %10s %10s %9s %9s %9s %9s\n", "app", "instrs",
              "bytes", "B/instr", "vs AoS", "serial[s]", "par[s]", "load[s]");
  for (const std::string& name : names) {
    // Cold generation: serial baseline first, then parallel streaming.
    workloads::SetParallelTraceBuild(false);
    double t0 = Now();
    const Application serial_app = BuildWorkload(name, scale);
    const double serial_s = Now() - t0;
    workloads::SetParallelTraceBuild(true);
    t0 = Now();
    const Application app = BuildWorkload(name, scale);
    const double parallel_s = Now() - t0;
    if (FingerprintApplication(serial_app) != FingerprintApplication(app)) {
      std::printf("ERROR: %s parallel generation diverged from serial\n",
                  name.c_str());
      return EXIT_FAILURE;
    }

    // On-disk cache round-trip: cold write, warm fingerprint-checked load.
    std::error_code ec;
    const Fingerprint key = WorkloadBuildKey(name, scale);
    std::filesystem::remove(cache_dir / (name + "-" + key.ToHex() + ".sstc"),
                            ec);
    bool hit = false;
    BuildWorkloadCached(name, scale, cache_opts, &hit);
    t0 = Now();
    const Application loaded =
        BuildWorkloadCached(name, scale, cache_opts, &hit);
    const double load_s = Now() - t0;
    if (!hit || FingerprintApplication(loaded) != FingerprintApplication(app)) {
      std::printf("ERROR: %s cache reload is not bit-identical\n",
                  name.c_str());
      return EXIT_FAILURE;
    }

    const std::uint64_t instrs = app.TotalInstrs();
    const std::uint64_t bytes = TraceBytesOf(app);
    const double bpi =
        instrs > 0 ? static_cast<double>(bytes) / static_cast<double>(instrs)
                   : 0.0;
    const double reduction = bpi > 0 ? sizeof(TraceInstr) / bpi : 0.0;
    std::printf("%-10s %12llu %10llu %10.2f %8.1fx %9.3f %9.3f %9.3f\n",
                name.c_str(), static_cast<unsigned long long>(instrs),
                static_cast<unsigned long long>(bytes), bpi, reduction,
                serial_s, parallel_s, load_s);
    serial_total += serial_s;
    parallel_total += parallel_s;
    if (smoke && reduction < 3.0) {
      std::printf("FAIL: %s bytes/instr reduction %.1fx < 3x\n", name.c_str(),
                  reduction);
      gate_ok = false;
    }

    JsonRun j;
    j.app = name;
    j.level = "columnar";
    j.wall_seconds = parallel_s;
    j.instrs_per_sec =
        parallel_s > 0 ? static_cast<double>(instrs) / parallel_s : 0.0;
    j.speedup_vs_serial = parallel_s > 0 ? serial_s / parallel_s : 0.0;
    j.threads = opt.threads;
    j.trace_bytes = bytes;
    j.bytes_per_instr = bpi;
    j.peak_rss_kb = PeakRssKb();
    j.trace_build_seconds = parallel_s;
    records.push_back(j);
  }
  WriteRunsJson(opt.json_path, "bench_trace", opt, records);
  std::filesystem::remove_all(cache_dir);

  const double speedup =
      parallel_total > 0 ? serial_total / parallel_total : 0.0;
  std::printf("%-10s AoS baseline %zu B/instr, cold-run speedup %.2fx\n",
              "SUITE", sizeof(TraceInstr), speedup);
  if (smoke && speedup < 1.5) {
    std::printf("FAIL: cold-run speedup %.2fx < 1.5x\n", speedup);
    gate_ok = false;
  }
  return gate_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
