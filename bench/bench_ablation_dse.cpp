// Ablation: design-space-exploration flexibility (paper §II-B's argument
// for keeping modules of interest cycle-accurate).
//
//  (a) Warp-scheduler sweep — the paper's motivating example: evaluating a
//      new scheduling algorithm requires the Warp Scheduler & Dispatch
//      module to stay cycle-accurate; everything else can stay simplified
//      (Swift-Sim-Basic is used for the sweep).
//  (b) L1 replacement-policy sweep — reuse-distance analytical cache
//      models assume LRU; the cycle-accurate cache module can model FIFO
//      and Random too. Swift-Sim-Basic keeps the cycle-accurate memory
//      path, so the sweep is possible at hybrid speed.
#include <cstdio>

#include "bench_common.h"
#include "config/presets.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.2);
  if (opt.apps.empty()) opt.apps = {"BFS", "HOTSPOT", "LU", "SM"};
  PrintHeader("Ablation: DSE sweeps on cycle-accurate modules", opt);

  const auto apps = BuildApps(opt);

  std::printf("-- (a) warp-scheduler policy sweep (Swift-Sim-Basic) --\n");
  std::printf("%-10s %12s %12s %12s\n", "app", "gto", "lrr", "two_level");
  for (const Application& app : apps) {
    std::printf("%-10s", app.name.c_str());
    for (SchedPolicy pol :
         {SchedPolicy::kGto, SchedPolicy::kLrr, SchedPolicy::kTwoLevel}) {
      GpuConfig gpu = Rtx2080TiConfig();
      gpu.sched_policy = pol;
      const AppRun r = RunOne(app, gpu, SimLevel::kSwiftSimBasic);
      std::printf(" %12llu", static_cast<unsigned long long>(r.cycles));
    }
    std::printf("\n");
  }

  std::printf("-- (b) L1 replacement-policy sweep (Swift-Sim-Basic) --\n");
  std::printf("%-10s %12s %12s %12s\n", "app", "lru", "fifo", "random");
  for (const Application& app : apps) {
    std::printf("%-10s", app.name.c_str());
    for (ReplacementPolicy pol :
         {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
          ReplacementPolicy::kRandom}) {
      GpuConfig gpu = Rtx2080TiConfig();
      gpu.l1.replacement = pol;
      gpu.l2.replacement = pol;
      const AppRun r = RunOne(app, gpu, SimLevel::kSwiftSimBasic);
      std::printf(" %12llu", static_cast<unsigned long long>(r.cycles));
    }
    std::printf("\n");
  }
  std::printf("(cycle counts shift with policy; an analytical-only cache "
              "model could not run sweep (b) at all)\n");
  return 0;
}
