// Ablation: design-space-exploration flexibility (paper §II-B's argument
// for keeping modules of interest cycle-accurate).
//
//  (a) Warp-scheduler sweep — the paper's motivating example: evaluating a
//      new scheduling algorithm requires the Warp Scheduler & Dispatch
//      module to stay cycle-accurate; everything else can stay simplified
//      (Swift-Sim-Basic is used for the sweep).
//  (b) L1 replacement-policy sweep — reuse-distance analytical cache
//      models assume LRU; the cycle-accurate cache module can model FIFO
//      and Random too. Swift-Sim-Basic keeps the cycle-accurate memory
//      path, so the sweep is possible at hybrid speed.
//  (c) Memory-timing sweep — DRAM x NoC latency at Swift-Sim-Memory. The
//      timing knobs do not change cache geometry, so every point shares
//      one pre-pass profile through the global ProfileCache: the sweep
//      pays the reuse-distance analysis once, not per point.
//
// All three sweeps share the process-global MemoCache; --memo-file loads
// it before the first sweep and saves it after the last, so a re-run (or
// a later bench_dse over overlapping configs) starts warm.
#include <cstdio>

#include "bench_common.h"
#include "config/presets.h"
#include "swiftsim/memo_cache.h"

int main(int argc, char** argv) {
  using namespace swiftsim;
  using namespace swiftsim::bench;
  BenchOptions opt = ParseOptions(argc, argv, /*default_scale=*/0.2);
  if (opt.apps.empty()) opt.apps = {"BFS", "HOTSPOT", "LU", "SM"};
  PrintHeader("Ablation: DSE sweeps on cycle-accurate modules", opt);

  if (!opt.memo_file.empty() && LoadMemoFileIfExists(opt.memo_file)) {
    std::printf("memo-file: loaded %zu replayable launch records from %s\n",
                MemoCache::Global().size(), opt.memo_file.c_str());
  }

  const auto apps = BuildApps(opt);
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  const auto run = [&](const Application& app, const GpuConfig& gpu,
                       SimLevel level) {
    GpuConfig cfg = gpu;
    cfg.memo.enabled = opt.memo;
    const AppRun r = RunOne(app, cfg, level);
    memo_hits += r.memo_hits;
    memo_misses += r.memo_misses;
    return r;
  };

  std::printf("-- (a) warp-scheduler policy sweep (Swift-Sim-Basic) --\n");
  std::printf("%-10s %12s %12s %12s\n", "app", "gto", "lrr", "two_level");
  for (const Application& app : apps) {
    std::printf("%-10s", app.name.c_str());
    for (SchedPolicy pol :
         {SchedPolicy::kGto, SchedPolicy::kLrr, SchedPolicy::kTwoLevel}) {
      GpuConfig gpu = Rtx2080TiConfig();
      gpu.sched_policy = pol;
      const AppRun r = run(app, gpu, SimLevel::kSwiftSimBasic);
      std::printf(" %12llu", static_cast<unsigned long long>(r.cycles));
    }
    std::printf("\n");
  }

  std::printf("-- (b) L1 replacement-policy sweep (Swift-Sim-Basic) --\n");
  std::printf("%-10s %12s %12s %12s\n", "app", "lru", "fifo", "random");
  for (const Application& app : apps) {
    std::printf("%-10s", app.name.c_str());
    for (ReplacementPolicy pol :
         {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
          ReplacementPolicy::kRandom}) {
      GpuConfig gpu = Rtx2080TiConfig();
      gpu.l1.replacement = pol;
      gpu.l2.replacement = pol;
      const AppRun r = run(app, gpu, SimLevel::kSwiftSimBasic);
      std::printf(" %12llu", static_cast<unsigned long long>(r.cycles));
    }
    std::printf("\n");
  }
  std::printf("(cycle counts shift with policy; an analytical-only cache "
              "model could not run sweep (b) at all)\n");

  std::printf("-- (c) memory-timing sweep (Swift-Sim-Memory, shared "
              "pre-pass) --\n");
  const std::uint64_t pc_hits0 = ProfileCache::Global().hits();
  const std::uint64_t pc_miss0 = ProfileCache::Global().misses();
  std::printf("%-10s %12s %12s %12s %12s\n", "app", "d160/n4", "d160/n16",
              "d227/n4", "d227/n16");
  for (const Application& app : apps) {
    std::printf("%-10s", app.name.c_str());
    for (const unsigned dram_lat : {160u, 227u}) {
      for (const unsigned noc_lat : {4u, 16u}) {
        GpuConfig gpu = Rtx2080TiConfig();
        gpu.dram.latency = dram_lat;
        gpu.noc.latency = noc_lat;
        const AppRun r = run(app, gpu, SimLevel::kSwiftSimMemory);
        std::printf(" %12llu", static_cast<unsigned long long>(r.cycles));
      }
    }
    std::printf("\n");
  }
  const std::uint64_t built = ProfileCache::Global().misses() - pc_miss0;
  const std::uint64_t shared = ProfileCache::Global().hits() - pc_hits0;
  std::printf("(timing knobs leave cache geometry unchanged: %llu pre-pass "
              "profiles built, %llu shared across the %zux4 grid)\n",
              static_cast<unsigned long long>(built),
              static_cast<unsigned long long>(shared), apps.size());

  std::printf("memo: %llu launches replayed, %llu simulated across all "
              "sweeps\n",
              static_cast<unsigned long long>(memo_hits),
              static_cast<unsigned long long>(memo_misses));
  if (!opt.memo_file.empty()) {
    SaveMemoFile(opt.memo_file);
    std::printf("memo-file: saved %zu replayable launch records to %s\n",
                MemoCache::Global().size(), opt.memo_file.c_str());
  }
  return 0;
}
