// The classic analytical memory model of paper §III-D2 (after GPUMech):
//
//   L_inst = L_L1 * R_L1  +  L_L2 * R_L2  +  L_DRAM * R_DRAM      (Eq. 1)
//
// gives the expected contention-free latency of each static Load, with
// per-PC hit rates from the cache pre-pass. Contention is added on top by
// MemContentionModel — a per-SM bandwidth pipe tracked cycle-accurately,
// mirroring the paper's hybrid treatment ("we add the additional latency
// due to resource contention to L_inst").
#pragma once

#include <cstdint>

#include "analytical/cache_prepass.h"
#include "common/types.h"
#include "config/gpu_config.h"

namespace swiftsim {

class AnalyticalMemModel {
 public:
  AnalyticalMemModel(const GpuConfig& cfg, const MemProfile* profile);

  /// Expected latency of the load at (kernel, pc) per Eq. 1, rounded to
  /// whole cycles.
  Cycle LoadLatency(KernelId kernel, Pc pc) const;

  /// Fraction of this PC's sectors that reach DRAM (feeds the bandwidth
  /// contention pipe).
  double DramFraction(KernelId kernel, Pc pc) const;

  /// Fraction of this PC's sectors that miss the L1 and cross the NoC.
  double L1MissFraction(KernelId kernel, Pc pc) const;

  /// Store cost at the issue point (fire-and-forget path occupancy).
  Cycle StoreLatency() const { return store_latency_; }

  Cycle l1_latency() const { return l1_lat_; }
  Cycle l2_latency() const { return l2_lat_; }
  Cycle dram_latency() const { return dram_lat_; }

 private:
  const MemProfile* profile_;
  Cycle l1_lat_;
  Cycle l2_lat_;
  Cycle dram_lat_;
  Cycle store_latency_;
};

/// Per-SM serialization pipes for the analytical memory path. Three finite
/// resources are tracked cycle-accurately:
///
///  * the SM's L1 banks — every coalesced line access probes one bank;
///  * the SM's private NoC injection port — every L1-missing sector
///    crosses it;
///  * the SM's 1/num_sms share of aggregate L2 bank throughput — every
///    L1-missing line access probes an L2 bank;
///  * the SM's 1/num_sms share of aggregate (derated) DRAM bandwidth —
///    only DRAM-bound sectors occupy it.
///
/// Later loads queue behind earlier ones; the instruction's queueing delay
/// is the worst of the pipes. Keeping all pipes per-SM preserves SM
/// independence (what makes Swift-Sim-Memory's SM-parallel mode possible).
class MemContentionModel {
 public:
  MemContentionModel(const GpuConfig& cfg);

  /// Accounts one memory instruction at `now` performing `line_accesses`
  /// coalesced accesses totalling `sectors` sectors, of which
  /// `l1_miss_fraction` leave the SM and `dram_fraction` reach DRAM.
  /// Returns the queueing delay to add on top of L_inst.
  Cycle Issue(unsigned line_accesses, unsigned sectors,
              double l1_miss_fraction, double dram_fraction, Cycle now);

  std::uint64_t total_queue_cycles() const { return queue_cycles_; }

  /// Informs the pipes how many SMs actually share the chip-level
  /// resources for the current kernel (a grid smaller than the chip leaves
  /// SMs idle). A per-kernel constant, so SM independence is preserved.
  void SetActiveSms(unsigned active);

 private:
  double chip_dram_bw_;      // bytes/cycle, whole chip, peak
  double chip_l2_rate_;      // L2 bank accesses/cycle, whole chip, peak
  double noc_port_bw_;       // bytes/cycle of the SM's NoC port
  double l1_banks_;          // line accesses serviced per cycle
  unsigned sector_bytes_;
  unsigned active_sms_;
  double dram_busy_until_ = 0;
  double noc_busy_until_ = 0;
  double l1_busy_until_ = 0;  // fractional: one access = 1/banks cycles
  double l2_busy_until_ = 0;  // fractional pipe, like the L1 one
  std::uint64_t queue_cycles_ = 0;
};

}  // namespace swiftsim
