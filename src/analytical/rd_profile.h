// Reuse-distance-based hit-rate extraction — the paper's other named
// source for Eq. 1's rates ("hit rates obtained using a reuse distance
// tool or cache simulator", §III-D2).
//
// Per-SM L1 streams and the chip-wide L1-miss stream are profiled with
// Mattson stack distances; the LRU stack property converts distances into
// hit/miss decisions at each level's capacity.
//
// Deliberate limitations (they ARE the paper's §II-B argument for hybrid
// simulation over pure analytical cache models):
//  * assumes fully-associative LRU — FIFO/Random policies, associativity
//    conflicts and sector effects are invisible;
//  * no MSHR-merge/timing correction (unlike the functional pre-pass).
#pragma once

#include "analytical/cache_prepass.h"
#include "config/gpu_config.h"
#include "trace/kernel.h"

namespace swiftsim {

/// Builds a MemProfile from reuse-distance theory instead of the
/// functional cache simulation of BuildMemProfile.
MemProfile BuildMemProfileReuseDistance(const Application& app,
                                        const GpuConfig& cfg);

}  // namespace swiftsim
