// Timing-free sectored set-associative cache used by the pre-pass that
// extracts Eq. 1's per-PC hit rates. Same geometry as the cycle-accurate
// SectorCache but no banks/MSHRs/latency — one hash-probe per access.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "config/gpu_config.h"
#include "trace/fingerprint.h"

namespace swiftsim {

class FunctionalCache {
 public:
  explicit FunctionalCache(const CacheParams& params);

  /// Probes and updates: returns true iff every requested sector was
  /// resident (LRU updated; on miss the line is installed with the
  /// requested sectors valid).
  bool AccessLoad(Addr line_addr, std::uint32_t sector_mask);

  /// Stores install/validate sectors without affecting hit statistics.
  void AccessStore(Addr line_addr, std::uint32_t sector_mask);

  /// Mixes a canonical signature of the resident state into `h`: per set,
  /// the valid lines' (tag, sectors) in LRU-rank order. Absolute LRU tick
  /// values are excluded, so two caches that would behave identically on
  /// any future access stream signature-match (cross-launch memoization's
  /// fixed-point test, DESIGN.md §10).
  void HashStateInto(FpHasher& h) const;

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t hits() const { return hits_; }
  double hit_rate() const {
    return accesses_ ? static_cast<double>(hits_) / accesses_ : 0.0;
  }

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    std::uint32_t sectors = 0;
    std::uint64_t lru = 0;
  };

 public:
  /// Resident-state snapshot for cross-launch memoization: restoring the
  /// state a recorded launch left behind makes skipping its replay exact
  /// for every subsequent access. Statistics counters are not part of the
  /// snapshot (replayed launches contribute their recorded deltas
  /// instead). Opaque outside this class — hold and pass back only.
  struct Snapshot {
    std::vector<Line> lines;
    std::uint64_t tick = 0;
  };
  void SaveState(Snapshot* out) const;
  void RestoreState(const Snapshot& s);

 private:
  Line* Touch(Addr line_addr, std::uint32_t sector_mask);

  CacheParams params_;
  unsigned sets_;
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace swiftsim
