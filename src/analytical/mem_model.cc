#include "analytical/mem_model.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace swiftsim {

AnalyticalMemModel::AnalyticalMemModel(const GpuConfig& cfg,
                                       const MemProfile* profile)
    : profile_(profile) {
  SS_CHECK(profile != nullptr, "AnalyticalMemModel needs a MemProfile");
  // Level latencies as seen by the warp: the L2 path adds two NoC
  // traversals on top of the L1 pipeline; DRAM adds the controller
  // round-trip on top of the L2 path.
  l1_lat_ = cfg.l1.latency;
  l2_lat_ = cfg.l1.latency + 2ull * cfg.noc.latency + cfg.l2.latency;
  dram_lat_ = l2_lat_ + cfg.dram.latency;
  store_latency_ = 4;  // address/egress occupancy only: fire-and-forget
}

Cycle AnalyticalMemModel::LoadLatency(KernelId kernel, Pc pc) const {
  const PcHitRates& r = profile_->Lookup(kernel, pc);
  const double expected = static_cast<double>(l1_lat_) * r.r_l1() +
                          static_cast<double>(l2_lat_) * r.r_l2() +
                          static_cast<double>(dram_lat_) * r.r_dram();
  return static_cast<Cycle>(std::llround(std::max(expected, 1.0)));
}

double AnalyticalMemModel::DramFraction(KernelId kernel, Pc pc) const {
  return profile_->Lookup(kernel, pc).r_dram();
}

double AnalyticalMemModel::L1MissFraction(KernelId kernel, Pc pc) const {
  return 1.0 - profile_->Lookup(kernel, pc).r_l1();
}

namespace {
// Peak bandwidth is never sustained; how far below peak the memory system
// runs depends on spatial locality. Full-line (4-sector) accesses stream
// efficiently (row hits, full bursts); single-sector scatters waste most
// of each DRAM burst and suffer bank head-of-line blocking. These anchors
// are the analytical model's calibration constants (GPUMech-class models
// fold the same physics into their queueing terms).
constexpr double kDramEffLow = 0.30;   // 1 sector per line access
constexpr double kDramEffHigh = 0.80;  // full-line accesses
constexpr double kL2EffLow = 0.25;
constexpr double kL2EffHigh = 1.00;

double Lerp(double lo, double hi, double t) { return lo + (hi - lo) * t; }
}  // namespace

MemContentionModel::MemContentionModel(const GpuConfig& cfg)
    : sector_bytes_(cfg.l1.sector_bytes) {
  chip_dram_bw_ = static_cast<double>(cfg.dram.bytes_per_cycle) *
                  cfg.num_mem_partitions;
  chip_l2_rate_ = static_cast<double>(cfg.num_mem_partitions) * cfg.l2.banks;
  noc_port_bw_ = std::max<double>(cfg.noc.bytes_per_cycle, 1.0);
  l1_banks_ = std::max<double>(cfg.l1.banks, 1.0);
  active_sms_ = cfg.num_sms;
}

void MemContentionModel::SetActiveSms(unsigned active) {
  active_sms_ = std::max(1u, active);
}

Cycle MemContentionModel::Issue(unsigned line_accesses, unsigned sectors,
                                double l1_miss_fraction,
                                double dram_fraction, Cycle now) {
  SS_DCHECK(line_accesses > 0);
  const double bytes = static_cast<double>(sectors) * sector_bytes_;
  const double spa =
      static_cast<double>(sectors) / static_cast<double>(line_accesses);
  const double locality = std::clamp((spa - 1.0) / 3.0, 0.0, 1.0);

  const double dram_share =
      chip_dram_bw_ * Lerp(kDramEffLow, kDramEffHigh, locality) / active_sms_;
  const double l2_share =
      chip_l2_rate_ * Lerp(kL2EffLow, kL2EffHigh, locality) / active_sms_;

  const double l1_occ = static_cast<double>(line_accesses) / l1_banks_;
  const double l2_occ =
      static_cast<double>(line_accesses) * l1_miss_fraction / l2_share;
  const double noc_occ = bytes * l1_miss_fraction / noc_port_bw_;
  const double dram_occ = bytes * dram_fraction / dram_share;

  const double dnow = static_cast<double>(now);
  const double l1_start = std::max(l1_busy_until_, dnow);
  const double l2_start = std::max(l2_busy_until_, dnow);
  const double noc_start = std::max(noc_busy_until_, dnow);
  const double dram_start = std::max(dram_busy_until_, dnow);
  l1_busy_until_ = l1_start + l1_occ;
  l2_busy_until_ = l2_start + l2_occ;
  noc_busy_until_ = noc_start + noc_occ;
  dram_busy_until_ = dram_start + dram_occ;

  // A load's fill arrives only after its own bytes cross the latency-
  // relevant downstream pipes (L2 banks, NoC port), so those charge the
  // position *after* this instruction's transfer. The L1 pipe's own
  // service time is already inside the L1 hit latency, and the DRAM pipe
  // is a pure throughput bound: both charge only the queue wait ahead of
  // the instruction.
  const double ready = std::max(
      std::max(l1_start, l2_busy_until_),
      std::max(noc_busy_until_, dram_start));
  const Cycle delay = static_cast<Cycle>(std::llround(ready - dnow));
  queue_cycles_ += delay;
  return delay;
}

}  // namespace swiftsim
