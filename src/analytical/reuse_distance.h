// LRU stack (reuse) distance profiler — the "reuse distance tool" the
// paper cites (Eq. 1's hit rates can come from either this or the
// functional cache pre-pass). Classic Mattson algorithm with a Fenwick
// tree: O(log n) per access.
//
// The stack-distance property: under LRU, an access hits in a
// fully-associative cache of capacity C lines iff its reuse distance < C,
// so one profile yields hit rates for every capacity at once.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace swiftsim {

class ReuseDistanceProfiler {
 public:
  /// Distance reported for a cold (first-touch) access.
  static constexpr std::uint64_t kColdDistance = ~std::uint64_t{0};

  /// `max_tracked_distance` caps the distance histogram; anything larger
  /// (or a cold miss) lands in the infinite bucket.
  explicit ReuseDistanceProfiler(std::size_t max_tracked_distance = 1 << 20);

  /// Records one access to a cache line address; returns its reuse
  /// distance (kColdDistance on first touch). By the LRU stack property
  /// the access hits in a fully-associative LRU cache of capacity C iff
  /// the returned distance is < C.
  std::uint64_t Access(Addr line);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t cold_misses() const { return cold_misses_; }

  /// Count of accesses with exact reuse distance d (d < cap).
  std::uint64_t DistanceCount(std::size_t d) const;

  /// Fraction of accesses that hit in a fully-associative LRU cache of
  /// `capacity_lines` lines (cold misses always miss).
  double HitRateForCapacity(std::uint64_t capacity_lines) const;

 private:
  // Fenwick tree over access-time slots; slot t holds 1 iff the address
  // whose most recent access was at time t has not been touched since.
  // Growth rebuilds the tree (Fenwick cells summarize ranges, so they
  // cannot be extended in place).
  void EnsureCapacity(std::size_t i);
  void BitAdd(std::size_t i, int delta);
  std::uint64_t BitSum(std::size_t i) const;  // prefix sum [1..i]

  std::size_t max_distance_;
  std::vector<std::int32_t> bit_;           // 1-based Fenwick array
  std::size_t cap_ = 0;                     // highest usable index
  FlatMap<Addr, std::size_t> last_time_;
  std::vector<std::uint64_t> histogram_;    // distance -> count
  std::uint64_t accesses_ = 0;
  std::uint64_t cold_misses_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace swiftsim
