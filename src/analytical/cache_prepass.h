// The memory-access pre-pass behind Swift-Sim-Memory (paper §III-D2): a
// fast functional simulation of the cache hierarchy over the whole trace
// that extracts, for every static Load/Store PC, the hit-rate triple
// (R_L1, R_L2, R_DRAM) consumed by Eq. 1.
//
// Concurrency is approximated by replaying CTAs in occupancy-sized waves
// with round-robin warp interleaving — the same order a loaded GPU
// approximately executes them in.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analytical/functional_cache.h"
#include "common/flat_map.h"
#include "config/gpu_config.h"
#include "trace/fingerprint.h"
#include "trace/kernel.h"

namespace swiftsim {

struct PcHitRates {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;

  double r_l1() const {
    return accesses ? static_cast<double>(l1_hits) / accesses : 0.0;
  }
  double r_l2() const {
    return accesses ? static_cast<double>(l2_hits) / accesses : 0.0;
  }
  double r_dram() const {
    // r_l1 + r_l2 can exceed 1.0 by an ulp when the two divisions round
    // up (l1_hits + l2_hits == accesses); a negative remainder would feed
    // a negative DRAM term into Eq. 1, so clamp to [0, 1].
    const double r = 1.0 - r_l1() - r_l2();
    return r < 0.0 ? 0.0 : (r > 1.0 ? 1.0 : r);
  }
};

class MemProfile {
 public:
  /// Rates for a static load; falls back to the kernel-wide average when
  /// the PC was never profiled, and to an all-DRAM default when nothing
  /// was profiled for the kernel at all.
  const PcHitRates& Lookup(KernelId kernel, Pc pc) const;

  PcHitRates& Mutable(KernelId kernel, Pc pc);

  /// Accumulates the kernel-wide fallback entry from the per-PC entries.
  void FinalizeKernel(KernelId kernel);

  /// Adds `other`'s counts into this profile (per-PC and per-kernel).
  /// Used to combine independently-built per-kernel shards.
  void Merge(const MemProfile& other);

  std::size_t num_pcs() const { return per_pc_.size(); }

 private:
  static std::uint64_t Key(KernelId kernel, Pc pc) {
    return (static_cast<std::uint64_t>(kernel) << 48) | pc;
  }

  FlatMap<std::uint64_t, PcHitRates> per_pc_;
  FlatMap<KernelId, PcHitRates> per_kernel_;
  PcHitRates all_dram_;  // accesses == 0 -> rates degenerate to DRAM
};

/// Functional replay engine. Caches stay warm across kernels of one
/// application (matching the persistent L2 of the timing model).
class CachePrepass {
 public:
  /// With `memoize` set, a repeated launch whose pre-launch state
  /// signature matches a recorded launch of the same kernel is replayed
  /// from the record: its profile delta is merged and the caches are
  /// restored to the recorded after-state. Same state + same access
  /// stream is fully deterministic, so the skip is bit-identical by
  /// construction; iterative apps reach a periodic cache state within a
  /// couple of iterations — LRU contents are determined by the access-
  /// stream suffix (overflowing sets) or settle into the re-touch order
  /// (resident sets) — after which every launch replays (DESIGN.md §10).
  explicit CachePrepass(const GpuConfig& cfg, bool memoize = false);

  /// Replays one kernel, accumulating per-PC hit counts into `profile`.
  void ProcessKernel(const KernelTrace& kernel, MemProfile* profile);

  std::uint64_t replayed_launches() const { return replayed_launches_; }

 private:
  struct LaunchMemo {
    Fingerprint sig_before;
    MemProfile delta;
    // Hierarchy state right after the recorded launch (l1s..., then l2);
    // restored on replay so subsequent kernels see the exact same caches
    // a fresh replay would have left.
    std::vector<FunctionalCache::Snapshot> state_after;
  };

  void ProcessKernelImpl(const KernelTrace& kernel, MemProfile* profile);

  void SaveState(std::vector<FunctionalCache::Snapshot>* out) const;
  void RestoreState(const std::vector<FunctionalCache::Snapshot>& s);

  /// Canonical signature of the warm hierarchy: per set, the valid lines'
  /// (tag, sectors) in LRU-rank order. Independent of absolute LRU ticks,
  /// so two states that behave identically signature-match.
  Fingerprint StateSignature() const;

  GpuConfig cfg_;
  bool memoize_ = false;
  std::vector<FunctionalCache> l1s_;  // one per SM
  FunctionalCache l2_;                // aggregate of all partition slices
  std::map<Fingerprint, LaunchMemo> memo_;
  std::uint64_t replayed_launches_ = 0;
};

/// Convenience: full pre-pass over every kernel of the application.
/// Launch-level memoization follows cfg.memo.enabled; the result is
/// bit-identical either way.
MemProfile BuildMemProfile(const Application& app, const GpuConfig& cfg);

/// Hash of exactly the configuration fields the pre-pass result depends
/// on: cache geometry (size/assoc/line/sector of both levels), chip shape
/// and the occupancy limits that set the replay wave size. Two configs
/// with equal geometry hashes produce bit-identical profiles for the same
/// application, so DSE sweeps over latencies/bandwidths/policies reuse
/// one cached profile across config points.
std::uint64_t MemProfileGeometryHash(const GpuConfig& cfg);

/// Pre-pass sharded across kernels on the shared thread pool: every kernel
/// is replayed against its own cold cache hierarchy and the per-kernel
/// profiles are merged. The cold-start is a documented approximation of
/// the serial pass's warm inter-kernel L2 — applied for EVERY thread count
/// (including 1), so the result never depends on `num_threads`.
MemProfile BuildMemProfileParallel(const Application& app,
                                   const GpuConfig& cfg,
                                   unsigned num_threads);

}  // namespace swiftsim
