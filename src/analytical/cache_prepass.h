// The memory-access pre-pass behind Swift-Sim-Memory (paper §III-D2): a
// fast functional simulation of the cache hierarchy over the whole trace
// that extracts, for every static Load/Store PC, the hit-rate triple
// (R_L1, R_L2, R_DRAM) consumed by Eq. 1.
//
// Concurrency is approximated by replaying CTAs in occupancy-sized waves
// with round-robin warp interleaving — the same order a loaded GPU
// approximately executes them in.
#pragma once

#include <cstdint>
#include <vector>

#include "analytical/functional_cache.h"
#include "common/flat_map.h"
#include "config/gpu_config.h"
#include "trace/kernel.h"

namespace swiftsim {

struct PcHitRates {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;

  double r_l1() const {
    return accesses ? static_cast<double>(l1_hits) / accesses : 0.0;
  }
  double r_l2() const {
    return accesses ? static_cast<double>(l2_hits) / accesses : 0.0;
  }
  double r_dram() const { return 1.0 - r_l1() - r_l2(); }
};

class MemProfile {
 public:
  /// Rates for a static load; falls back to the kernel-wide average when
  /// the PC was never profiled, and to an all-DRAM default when nothing
  /// was profiled for the kernel at all.
  const PcHitRates& Lookup(KernelId kernel, Pc pc) const;

  PcHitRates& Mutable(KernelId kernel, Pc pc);

  /// Accumulates the kernel-wide fallback entry from the per-PC entries.
  void FinalizeKernel(KernelId kernel);

  /// Adds `other`'s counts into this profile (per-PC and per-kernel).
  /// Used to combine independently-built per-kernel shards.
  void Merge(const MemProfile& other);

  std::size_t num_pcs() const { return per_pc_.size(); }

 private:
  static std::uint64_t Key(KernelId kernel, Pc pc) {
    return (static_cast<std::uint64_t>(kernel) << 48) | pc;
  }

  FlatMap<std::uint64_t, PcHitRates> per_pc_;
  FlatMap<KernelId, PcHitRates> per_kernel_;
  PcHitRates all_dram_;  // accesses == 0 -> rates degenerate to DRAM
};

/// Functional replay engine. Caches stay warm across kernels of one
/// application (matching the persistent L2 of the timing model).
class CachePrepass {
 public:
  explicit CachePrepass(const GpuConfig& cfg);

  /// Replays one kernel, accumulating per-PC hit counts into `profile`.
  void ProcessKernel(const KernelTrace& kernel, MemProfile* profile);

 private:
  GpuConfig cfg_;
  std::vector<FunctionalCache> l1s_;  // one per SM
  FunctionalCache l2_;                // aggregate of all partition slices
};

/// Convenience: full pre-pass over every kernel of the application.
MemProfile BuildMemProfile(const Application& app, const GpuConfig& cfg);

/// Pre-pass sharded across kernels on the shared thread pool: every kernel
/// is replayed against its own cold cache hierarchy and the per-kernel
/// profiles are merged. The cold-start is a documented approximation of
/// the serial pass's warm inter-kernel L2 — applied for EVERY thread count
/// (including 1), so the result never depends on `num_threads`.
MemProfile BuildMemProfileParallel(const Application& app,
                                   const GpuConfig& cfg,
                                   unsigned num_threads);

}  // namespace swiftsim
