#include "analytical/functional_cache.h"

#include <algorithm>
#include <vector>

namespace swiftsim {

FunctionalCache::FunctionalCache(const CacheParams& params)
    : params_(params), sets_(params.num_sets()),
      lines_(static_cast<std::size_t>(sets_) * params.assoc) {}

FunctionalCache::Line* FunctionalCache::Touch(Addr line_addr,
                                              std::uint32_t sector_mask) {
  // Plain modulo: aggregate caches (e.g. whole-chip L2) can have
  // non-power-of-two set counts.
  const unsigned set = static_cast<unsigned>(
      (line_addr / params_.line_bytes) % sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
  Line* lru = base;
  for (unsigned w = 0; w < params_.assoc; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == line_addr) {
      l.lru = ++tick_;
      return &l;
    }
    if (!l.valid) {
      lru = &l;
    } else if (lru->valid && l.lru < lru->lru) {
      lru = &l;
    }
  }
  // Miss: install in the LRU (or first invalid) way.
  lru->tag = line_addr;
  lru->valid = true;
  lru->sectors = sector_mask;
  lru->lru = ++tick_;
  return nullptr;
}

bool FunctionalCache::AccessLoad(Addr line_addr, std::uint32_t sector_mask) {
  ++accesses_;
  Line* l = Touch(line_addr, sector_mask);
  if (l == nullptr) return false;  // line miss (now installed)
  const bool hit = (sector_mask & ~l->sectors) == 0;
  l->sectors |= sector_mask;
  if (hit) ++hits_;
  return hit;
}

void FunctionalCache::AccessStore(Addr line_addr, std::uint32_t sector_mask) {
  Line* l = Touch(line_addr, sector_mask);
  if (l != nullptr) l->sectors |= sector_mask;
}

void FunctionalCache::SaveState(Snapshot* out) const {
  out->lines = lines_;
  out->tick = tick_;
}

void FunctionalCache::RestoreState(const Snapshot& s) {
  // Assigning into the existing vector reuses its allocation (snapshots
  // always have the same geometry as the cache they came from).
  lines_ = s.lines;
  tick_ = s.tick;
}

void FunctionalCache::HashStateInto(FpHasher& h) const {
  h.Mix(sets_);
  h.Mix(params_.assoc);
  std::vector<const Line*> order;
  order.reserve(params_.assoc);
  for (unsigned set = 0; set < sets_; ++set) {
    const Line* base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    order.clear();
    for (unsigned w = 0; w < params_.assoc; ++w) {
      if (base[w].valid) order.push_back(&base[w]);
    }
    // LRU ticks are unique, so the rank order is total and canonical.
    std::sort(order.begin(), order.end(),
              [](const Line* a, const Line* b) { return a->lru < b->lru; });
    h.Mix(order.size());
    for (const Line* l : order) {
      h.Mix(l->tag);
      h.Mix(l->sectors);
    }
  }
}

}  // namespace swiftsim
