#include "analytical/functional_cache.h"

namespace swiftsim {

FunctionalCache::FunctionalCache(const CacheParams& params)
    : params_(params), sets_(params.num_sets()),
      lines_(static_cast<std::size_t>(sets_) * params.assoc) {}

FunctionalCache::Line* FunctionalCache::Touch(Addr line_addr,
                                              std::uint32_t sector_mask) {
  // Plain modulo: aggregate caches (e.g. whole-chip L2) can have
  // non-power-of-two set counts.
  const unsigned set = static_cast<unsigned>(
      (line_addr / params_.line_bytes) % sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
  Line* lru = base;
  for (unsigned w = 0; w < params_.assoc; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == line_addr) {
      l.lru = ++tick_;
      return &l;
    }
    if (!l.valid) {
      lru = &l;
    } else if (lru->valid && l.lru < lru->lru) {
      lru = &l;
    }
  }
  // Miss: install in the LRU (or first invalid) way.
  lru->tag = line_addr;
  lru->valid = true;
  lru->sectors = sector_mask;
  lru->lru = ++tick_;
  return nullptr;
}

bool FunctionalCache::AccessLoad(Addr line_addr, std::uint32_t sector_mask) {
  ++accesses_;
  Line* l = Touch(line_addr, sector_mask);
  if (l == nullptr) return false;  // line miss (now installed)
  const bool hit = (sector_mask & ~l->sectors) == 0;
  l->sectors |= sector_mask;
  if (hit) ++hits_;
  return hit;
}

void FunctionalCache::AccessStore(Addr line_addr, std::uint32_t sector_mask) {
  Line* l = Touch(line_addr, sector_mask);
  if (l != nullptr) l->sectors |= sector_mask;
}

}  // namespace swiftsim
