#include "analytical/reuse_distance.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

ReuseDistanceProfiler::ReuseDistanceProfiler(std::size_t max_tracked_distance)
    : max_distance_(max_tracked_distance),
      histogram_(max_tracked_distance, 0) {
  last_time_.Reserve(1 << 12);
}

void ReuseDistanceProfiler::EnsureCapacity(std::size_t i) {
  if (i <= cap_) return;
  std::size_t cap = std::max<std::size_t>(cap_ * 2, 1024);
  while (cap < i) cap *= 2;
  // A Fenwick tree cannot grow in place (high cells summarize low ranges
  // that were added before they existed): rebuild from the live marks.
  bit_.assign(cap + 1, 0);
  cap_ = cap;
  for (const auto& [addr, t] : last_time_) BitAdd(t, +1);
}

void ReuseDistanceProfiler::BitAdd(std::size_t i, int delta) {
  SS_DCHECK(i >= 1 && i <= cap_);
  for (; i <= cap_; i += i & (~i + 1)) {
    bit_[i] = static_cast<std::int32_t>(bit_[i] + delta);
  }
}

std::uint64_t ReuseDistanceProfiler::BitSum(std::size_t i) const {
  std::uint64_t s = 0;
  i = std::min(i, cap_);
  for (; i >= 1; i -= i & (~i + 1)) {
    s += static_cast<std::uint64_t>(bit_[i]);
  }
  return s;
}

std::uint64_t ReuseDistanceProfiler::Access(Addr line) {
  ++accesses_;
  const std::size_t now = static_cast<std::size_t>(accesses_);  // 1-based
  EnsureCapacity(now);
  std::uint64_t result = kColdDistance;
  const std::size_t* it = last_time_.Find(line);
  if (it == nullptr) {
    ++cold_misses_;
  } else {
    const std::size_t prev = *it;
    // Marks strictly after prev == distinct lines touched since. The
    // total mark count equals the number of distinct lines seen so far.
    const std::uint64_t total = last_time_.size();
    const std::uint64_t upto_prev = BitSum(prev);
    const std::uint64_t distance = total - upto_prev;
    result = distance;
    if (distance < max_distance_) {
      ++histogram_[static_cast<std::size_t>(distance)];
    } else {
      ++overflow_;
    }
    BitAdd(prev, -1);
  }
  BitAdd(now, +1);
  last_time_[line] = now;
  return result;
}

std::uint64_t ReuseDistanceProfiler::DistanceCount(std::size_t d) const {
  SS_CHECK(d < histogram_.size(), "reuse distance out of tracked range");
  return histogram_[d];
}

double ReuseDistanceProfiler::HitRateForCapacity(
    std::uint64_t capacity_lines) const {
  if (accesses_ == 0) return 0.0;
  std::uint64_t hits = 0;
  const std::size_t cap = static_cast<std::size_t>(
      std::min<std::uint64_t>(capacity_lines, histogram_.size()));
  for (std::size_t d = 0; d < cap; ++d) hits += histogram_[d];
  return static_cast<double>(hits) / static_cast<double>(accesses_);
}

}  // namespace swiftsim
