// A GPUMech-style pure-analytical GPU performance model (interval
// analysis; Huang et al., MICRO 2014) — the class of related work the
// paper contrasts Swift-Sim against (§II-B): fast, but it supports few
// architectural parameters and cannot express module-level design changes
// (scheduler policies, replacement policies, ...).
//
// Included as a comparator: the ablation benches show where hybrid
// simulation buys accuracy/flexibility over a pure mathematical model.
//
// Model summary (per kernel):
//  * One representative warp per CTA variant is interval-analyzed:
//    issue cycles B (unit issue intervals) and exposed memory stall
//    cycles M (Eq. 1 latency of each load consumed by a dependent
//    instruction before enough independent work hides it).
//  * A scheduler with W resident warps overlaps stalls with other warps'
//    issue cycles: T_sched = max(W * B, B + M)   (latency- vs
//    throughput-bound interval scaling).
//  * A chip-level DRAM bandwidth roofline bounds the whole kernel.
//  * Kernel time = waves * T_sched, waves = ceil(CTAs / chip capacity).
#pragma once

#include <cstdint>

#include "analytical/cache_prepass.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "trace/kernel.h"

namespace swiftsim {

struct IntervalEstimate {
  Cycle total_cycles = 0;
  // Per-kernel decomposition (diagnostics; summed over kernels).
  double issue_cycles = 0;       // B, per representative scheduler
  double stall_cycles = 0;       // M, exposed memory latency
  double bandwidth_cycles = 0;   // DRAM roofline bound
  std::uint64_t waves = 0;
};

/// Pure-analytical estimate of an application's execution cycles.
/// `profile` supplies Eq. 1 hit rates (from the cache pre-pass).
IntervalEstimate EstimateCycles(const Application& app,
                                const GpuConfig& cfg,
                                const MemProfile& profile);

/// Single-kernel version (exposed for tests).
IntervalEstimate EstimateKernelCycles(const KernelTrace& kernel,
                                      const GpuConfig& cfg,
                                      const MemProfile& profile);

}  // namespace swiftsim
