#include "analytical/interval_model.h"

#include <algorithm>
#include <cmath>

#include "analytical/mem_model.h"
#include "common/bitutil.h"
#include "common/status.h"
#include "core/cta_allocator.h"
#include "mem/coalescer.h"

namespace swiftsim {

namespace {

unsigned IssueIntervalOf(const GpuConfig& cfg, const CompactInstr& ins) {
  switch (ClassOf(ins.op)) {
    case UnitClass::kInt:
      return cfg.int_unit.issue_interval();
    case UnitClass::kSp:
      return cfg.sp_unit.issue_interval();
    case UnitClass::kDp:
      return cfg.dp_unit.issue_interval();
    case UnitClass::kSfu:
      return cfg.sfu_unit.issue_interval();
    case UnitClass::kTensor:
      return cfg.tensor_unit.issue_interval();
    case UnitClass::kLdSt:
      return std::max(1u, kWarpSize / cfg.ldst_units_per_sub_core);
    case UnitClass::kControl:
      return 1;
  }
  return 1;
}

/// How soon (in dynamic instructions) register `reg` is consumed after
/// position `from`; returns distance or `horizon` if unused within it.
std::size_t ConsumerDistance(const WarpTrace& warp, std::size_t from,
                             std::uint8_t reg, std::size_t horizon) {
  for (std::size_t d = 1; d <= horizon && from + d < warp.size(); ++d) {
    const CompactInstr& ins = warp[from + d];
    for (std::uint8_t r : ins.src) {
      if (r == reg) return d;
    }
    if (ins.dst == reg) return horizon;  // overwritten before use
  }
  return horizon;
}

}  // namespace

IntervalEstimate EstimateKernelCycles(const KernelTrace& kernel,
                                      const GpuConfig& cfg,
                                      const MemProfile& profile) {
  const KernelInfo& info = kernel.info();
  const AnalyticalMemModel mem(cfg, &profile);

  // Interval-analyze one representative warp per CTA variant and average.
  double issue_b = 0;       // issue cycles per warp
  double stall_m = 0;       // exposed memory stalls per warp
  double dram_bytes = 0;    // DRAM traffic per warp
  const std::size_t horizon = 16;  // MLP window the scheduler can exploit
  for (std::size_t v = 0; v < kernel.num_variants(); ++v) {
    const WarpTrace& warp = kernel.variant(v).warps.front();
    double b = 0, m = 0, bytes = 0;
    WarpCursor walk(warp);
    LaneAddrs lane_addrs;
    for (std::size_t i = 0; i < warp.size(); ++i) {
      const CompactInstr& ins = walk.peek();
      b += IssueIntervalOf(cfg, ins);
      if (ins.op == Opcode::kLdGlobal) {
        const Cycle lat = mem.LoadLatency(info.id, ins.pc);
        // The stall is exposed only if a consumer appears before the
        // latency is hidden by in-warp work (classic interval analysis).
        const std::size_t d = ConsumerDistance(warp, i, ins.dst, horizon);
        if (d < horizon) {
          const double hidden = static_cast<double>(d) * 4.0;
          m += std::max(0.0, static_cast<double>(lat) - hidden);
        }
        walk.PeekAddrs(&lane_addrs);
        const auto accesses = Coalesce(lane_addrs, 4, cfg.l1.line_bytes,
                                       cfg.l1.sector_bytes);
        unsigned sectors = 0;
        for (const auto& a : accesses) sectors += PopCount(a.sector_mask);
        bytes += static_cast<double>(sectors) * cfg.l1.sector_bytes *
                 mem.DramFraction(info.id, ins.pc);
      }
      walk.Next();
    }
    issue_b += b;
    stall_m += m;
    dram_bytes += bytes;
  }
  const double nv = static_cast<double>(kernel.num_variants());
  issue_b /= nv;
  stall_m /= nv;
  dram_bytes /= nv;

  // Multi-warp interval scaling per scheduler.
  const CtaAllocator occupancy_probe(cfg);
  const unsigned ctas_per_sm = std::max(1u, occupancy_probe.MaxConcurrent(info));
  const unsigned warps_per_sm = ctas_per_sm * info.warps_per_cta;
  const unsigned schedulers = cfg.sub_cores_per_sm * cfg.schedulers_per_sub_core;
  const double warps_per_sched =
      std::max(1.0, static_cast<double>(warps_per_sm) / schedulers);
  const double t_sched =
      std::max(warps_per_sched * issue_b, issue_b + stall_m);

  // Chip-level DRAM bandwidth roofline over one wave.
  const unsigned active_sms = std::min<unsigned>(cfg.num_sms, info.num_ctas);
  const double wave_dram_bytes =
      dram_bytes * info.warps_per_cta * ctas_per_sm * active_sms;
  const double chip_bw =
      static_cast<double>(cfg.dram.bytes_per_cycle) * cfg.num_mem_partitions;
  const double t_bw = wave_dram_bytes / chip_bw;

  const std::uint64_t waves = CeilDiv(
      info.num_ctas, static_cast<std::uint64_t>(ctas_per_sm) * cfg.num_sms);

  IntervalEstimate est;
  est.issue_cycles = issue_b;
  est.stall_cycles = stall_m;
  est.bandwidth_cycles = t_bw;
  est.waves = waves;
  est.total_cycles = static_cast<Cycle>(
      std::llround(static_cast<double>(waves) * std::max(t_sched, t_bw)));
  est.total_cycles = std::max<Cycle>(est.total_cycles, 1);
  return est;
}

IntervalEstimate EstimateCycles(const Application& app, const GpuConfig& cfg,
                                const MemProfile& profile) {
  IntervalEstimate total;
  for (const auto& kernel : app.kernels) {
    const IntervalEstimate k = EstimateKernelCycles(*kernel, cfg, profile);
    total.total_cycles += k.total_cycles;
    total.issue_cycles += k.issue_cycles;
    total.stall_cycles += k.stall_cycles;
    total.bandwidth_cycles += k.bandwidth_cycles;
    total.waves += k.waves;
  }
  return total;
}

}  // namespace swiftsim
