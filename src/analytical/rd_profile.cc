#include "analytical/rd_profile.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "analytical/reuse_distance.h"
#include "common/status.h"
#include "core/cta_allocator.h"
#include "mem/coalescer.h"

namespace swiftsim {

MemProfile BuildMemProfileReuseDistance(const Application& app,
                                        const GpuConfig& cfg) {
  MemProfile profile;
  const std::uint64_t l1_lines = cfg.l1.size_bytes / cfg.l1.line_bytes;
  const std::uint64_t l2_lines = cfg.total_l2_bytes() / cfg.l2.line_bytes;

  // Profilers persist across kernels (warm L2, like the timing model).
  std::vector<std::unique_ptr<ReuseDistanceProfiler>> l1_prof;
  l1_prof.reserve(cfg.num_sms);
  for (unsigned s = 0; s < cfg.num_sms; ++s) {
    l1_prof.push_back(std::make_unique<ReuseDistanceProfiler>());
  }
  ReuseDistanceProfiler l2_prof;

  for (const auto& kernel : app.kernels) {
    const KernelInfo& info = kernel->info();
    const CtaAllocator occupancy_probe(cfg);
    const unsigned per_sm =
        std::max(1u, occupancy_probe.MaxConcurrent(info));
    const unsigned wave = per_sm * cfg.num_sms;

    struct Cursor {
      WarpCursor walk;
      unsigned sm;
    };
    LaneAddrs lane_addrs;  // decode scratch, reused across instructions
    for (CtaId wave_start = 0; wave_start < info.num_ctas;
         wave_start += wave) {
      const CtaId wave_end =
          std::min<CtaId>(wave_start + wave, info.num_ctas);
      std::vector<Cursor> cursors;
      for (CtaId c = wave_start; c < wave_end; ++c) {
        const CtaTrace& cta = kernel->cta(c);
        const unsigned sm = (c - wave_start) % cfg.num_sms;
        for (const WarpTrace& w : cta.warps) {
          cursors.push_back(Cursor{WarpCursor(w), sm});
        }
      }
      bool any = true;
      while (any) {
        any = false;
        for (Cursor& cur : cursors) {
          if (cur.walk.done()) continue;
          any = true;
          const CompactInstr& ins = cur.walk.peek();
          if (!IsGlobalMem(ins.op)) {
            cur.walk.Next();
            continue;
          }
          cur.walk.PeekAddrs(&lane_addrs);
          cur.walk.Next();
          const auto accesses = Coalesce(lane_addrs, 4, cfg.l1.line_bytes,
                                         cfg.l1.sector_bytes);
          if (IsStore(ins.op)) {
            // Stores only warm the stacks (write-through traffic).
            for (const auto& acc : accesses) {
              l1_prof[cur.sm]->Access(acc.line_addr);
              l2_prof.Access(acc.line_addr);
            }
            continue;
          }
          PcHitRates& rates = profile.Mutable(info.id, ins.pc);
          for (const auto& acc : accesses) {
            ++rates.accesses;
            const std::uint64_t d_l1 =
                l1_prof[cur.sm]->Access(acc.line_addr);
            if (d_l1 < l1_lines) {
              ++rates.l1_hits;
              continue;
            }
            // The L2 sees the L1 miss stream.
            const std::uint64_t d_l2 = l2_prof.Access(acc.line_addr);
            if (d_l2 < l2_lines) ++rates.l2_hits;
          }
        }
      }
    }
    profile.FinalizeKernel(info.id);
  }
  return profile;
}

}  // namespace swiftsim
