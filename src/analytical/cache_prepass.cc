#include "analytical/cache_prepass.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cta_allocator.h"
#include "mem/coalescer.h"

namespace swiftsim {

const PcHitRates& MemProfile::Lookup(KernelId kernel, Pc pc) const {
  const PcHitRates* it = per_pc_.Find(Key(kernel, pc));
  if (it != nullptr && it->accesses > 0) return *it;
  const PcHitRates* kit = per_kernel_.Find(kernel);
  if (kit != nullptr && kit->accesses > 0) return *kit;
  return all_dram_;
}

PcHitRates& MemProfile::Mutable(KernelId kernel, Pc pc) {
  return per_pc_[Key(kernel, pc)];
}

void MemProfile::FinalizeKernel(KernelId kernel) {
  PcHitRates& agg = per_kernel_[kernel];
  agg = PcHitRates{};
  for (const auto& [key, rates] : per_pc_) {
    if ((key >> 48) != kernel) continue;
    agg.accesses += rates.accesses;
    agg.l1_hits += rates.l1_hits;
    agg.l2_hits += rates.l2_hits;
  }
}

void MemProfile::Merge(const MemProfile& other) {
  for (const auto& [key, rates] : other.per_pc_) {
    PcHitRates& dst = per_pc_[key];
    dst.accesses += rates.accesses;
    dst.l1_hits += rates.l1_hits;
    dst.l2_hits += rates.l2_hits;
  }
  for (const auto& [kernel, rates] : other.per_kernel_) {
    PcHitRates& dst = per_kernel_[kernel];
    dst.accesses += rates.accesses;
    dst.l1_hits += rates.l1_hits;
    dst.l2_hits += rates.l2_hits;
  }
}

namespace {
// Aggregate L2: one functional cache with the full chip capacity.
CacheParams AggregateL2(const GpuConfig& cfg) {
  CacheParams l2 = cfg.l2;
  l2.size_bytes = cfg.total_l2_bytes();
  return l2;
}
}  // namespace

CachePrepass::CachePrepass(const GpuConfig& cfg, bool memoize)
    : cfg_(cfg), memoize_(memoize), l2_(AggregateL2(cfg)) {
  l1s_.reserve(cfg.num_sms);
  for (unsigned s = 0; s < cfg.num_sms; ++s) l1s_.emplace_back(cfg.l1);
}

Fingerprint CachePrepass::StateSignature() const {
  FpHasher h;
  for (const FunctionalCache& l1 : l1s_) l1.HashStateInto(h);
  l2_.HashStateInto(h);
  return h.Digest();
}

void CachePrepass::SaveState(
    std::vector<FunctionalCache::Snapshot>* out) const {
  out->resize(l1s_.size() + 1);
  for (std::size_t s = 0; s < l1s_.size(); ++s) {
    l1s_[s].SaveState(&(*out)[s]);
  }
  l2_.SaveState(&out->back());
}

void CachePrepass::RestoreState(
    const std::vector<FunctionalCache::Snapshot>& s) {
  for (std::size_t i = 0; i < l1s_.size(); ++i) l1s_[i].RestoreState(s[i]);
  l2_.RestoreState(s.back());
}

void CachePrepass::ProcessKernel(const KernelTrace& kernel,
                                 MemProfile* profile) {
  if (!memoize_) {
    ProcessKernelImpl(kernel, profile);
    return;
  }
  const Fingerprint fp = FingerprintKernel(kernel);
  const Fingerprint before = StateSignature();
  const auto it = memo_.find(fp);
  if (it != memo_.end() && it->second.sig_before == before) {
    // Same kernel, behaviorally identical pre-launch state: the replay is
    // fully determined, so merging the recorded delta and restoring the
    // recorded after-state is exactly what a fresh replay would produce.
    profile->Merge(it->second.delta);
    RestoreState(it->second.state_after);
    ++replayed_launches_;
    return;
  }
  // Replay into a scratch delta so the launch contribution is separable.
  // Merging the finalized delta equals finalizing the accumulated per-PC
  // counts directly: both per-kernel aggregates are plain sums.
  LaunchMemo entry;
  entry.sig_before = before;
  ProcessKernelImpl(kernel, &entry.delta);
  SaveState(&entry.state_after);
  profile->Merge(entry.delta);
  memo_[fp] = std::move(entry);
}

void CachePrepass::ProcessKernelImpl(const KernelTrace& kernel,
                                     MemProfile* profile) {
  SS_CHECK(profile != nullptr, "CachePrepass needs an output profile");
  const KernelInfo& info = kernel.info();
  const CtaAllocator occupancy_probe(cfg_);
  const unsigned per_sm = std::max(1u, occupancy_probe.MaxConcurrent(info));
  const unsigned wave = per_sm * cfg_.num_sms;

  struct Cursor {
    WarpCursor walk;
    unsigned sm;
  };
  LaneAddrs lane_addrs;  // decode scratch, reused across instructions

  // Timing-aware correction: an access whose line missed "recently" (still
  // in flight in the timing model) does not hit in the L1 — it merges into
  // the outstanding MSHR entry and observes the original miss's latency.
  // "Recently" is measured in interleaved accesses: one fill latency spans
  // roughly a few rounds of the warp interleave.
  enum class MissLevel : std::uint8_t { kL2, kDram };
  struct RecentMiss {
    std::uint64_t when = 0;
    MissLevel level = MissLevel::kL2;
  };
  FlatMap<Addr, RecentMiss> recent_miss;
  recent_miss.Reserve(4096);
  std::uint64_t access_counter = 0;

  for (CtaId wave_start = 0; wave_start < info.num_ctas;
       wave_start += wave) {
    const CtaId wave_end =
        std::min<CtaId>(wave_start + wave, info.num_ctas);
    std::vector<Cursor> cursors;
    for (CtaId c = wave_start; c < wave_end; ++c) {
      const CtaTrace& cta = kernel.cta(c);
      const unsigned sm = (c - wave_start) % cfg_.num_sms;
      for (const WarpTrace& w : cta.warps) {
        cursors.push_back(Cursor{WarpCursor(w), sm});
      }
    }
    // One fill latency covers roughly a few rounds of the interleave.
    const std::uint64_t merge_window =
        std::max<std::uint64_t>(cursors.size() * 8, 64);
    // Round-robin interleave at instruction granularity.
    bool any = true;
    while (any) {
      any = false;
      for (Cursor& cur : cursors) {
        if (cur.walk.done()) continue;
        any = true;
        const CompactInstr& ins = cur.walk.peek();
        if (!IsGlobalMem(ins.op)) {
          cur.walk.Next();
          continue;
        }
        cur.walk.PeekAddrs(&lane_addrs);
        cur.walk.Next();
        const auto accesses =
            Coalesce(lane_addrs, 4, cfg_.l1.line_bytes, cfg_.l1.sector_bytes);
        if (IsStore(ins.op)) {
          for (const auto& acc : accesses) {
            // Write-through: update both levels, no hit accounting.
            l1s_[cur.sm].AccessStore(acc.line_addr, acc.sector_mask);
            l2_.AccessStore(acc.line_addr, acc.sector_mask);
          }
          continue;
        }
        PcHitRates& rates = profile->Mutable(info.id, ins.pc);
        for (const auto& acc : accesses) {
          ++rates.accesses;
          ++access_counter;
          const RecentMiss* rm = recent_miss.Find(acc.line_addr);
          const bool merges =
              rm != nullptr && access_counter - rm->when < merge_window;
          const bool l1_hit =
              l1s_[cur.sm].AccessLoad(acc.line_addr, acc.sector_mask);
          if (merges) {
            // Piggybacks on the in-flight fill: pays that miss's latency.
            if (rm->level == MissLevel::kL2) ++rates.l2_hits;
            continue;  // (DRAM-level merges count as DRAM accesses)
          }
          if (l1_hit) {
            ++rates.l1_hits;
            continue;
          }
          const bool l2_hit =
              l2_.AccessLoad(acc.line_addr, acc.sector_mask);
          if (l2_hit) ++rates.l2_hits;
          recent_miss[acc.line_addr] =
              RecentMiss{access_counter,
                         l2_hit ? MissLevel::kL2 : MissLevel::kDram};
        }
      }
    }
    recent_miss.clear();
  }
  profile->FinalizeKernel(info.id);
}

MemProfile BuildMemProfile(const Application& app, const GpuConfig& cfg) {
  MemProfile profile;
  CachePrepass prepass(cfg, cfg.memo.enabled);
  for (const auto& kernel : app.kernels) {
    prepass.ProcessKernel(*kernel, &profile);
  }
  return profile;
}

std::uint64_t MemProfileGeometryHash(const GpuConfig& cfg) {
  FpHasher h;
  for (const CacheParams* c : {&cfg.l1, &cfg.l2}) {
    h.Mix(c->size_bytes);
    h.Mix(c->assoc);
    h.Mix(c->line_bytes);
    h.Mix(c->sector_bytes);
  }
  h.Mix(cfg.num_sms);
  h.Mix(cfg.num_mem_partitions);  // scales the aggregate L2
  // Occupancy limits set the replay wave size (and the merge window).
  h.Mix(cfg.max_ctas_per_sm);
  h.Mix(cfg.max_warps_per_sm);
  h.Mix(cfg.max_threads_per_sm);
  h.Mix(cfg.registers_per_sm);
  h.Mix(cfg.shared_mem_per_sm);
  return h.Digest().Fold();
}

MemProfile BuildMemProfileParallel(const Application& app,
                                   const GpuConfig& cfg,
                                   unsigned num_threads) {
  SS_CHECK(num_threads > 0, "need at least one worker thread");
  if (app.kernels.size() <= 1) {
    // Nothing to shard; the serial pass is already cold per kernel.
    return BuildMemProfile(app, cfg);
  }
  // One cold prepass per kernel, independent of scheduling, so the merged
  // profile is bit-identical for any num_threads. Because every shard is
  // cold, repeated launches of one kernel produce identical shards —
  // compute each distinct fingerprint once and merge it per occurrence
  // (exact dedup, gated on cfg.memo.enabled only for --no-memo A/B runs).
  std::vector<std::size_t> shard_of(app.kernels.size());
  std::vector<std::size_t> reps;  // representative kernel index per shard
  if (cfg.memo.enabled) {
    std::map<Fingerprint, std::size_t> seen;
    for (std::size_t k = 0; k < app.kernels.size(); ++k) {
      const Fingerprint fp = FingerprintKernel(*app.kernels[k]);
      const auto [it, inserted] = seen.emplace(fp, reps.size());
      if (inserted) reps.push_back(k);
      shard_of[k] = it->second;
    }
  } else {
    for (std::size_t k = 0; k < app.kernels.size(); ++k) {
      shard_of[k] = k;
      reps.push_back(k);
    }
  }
  std::vector<MemProfile> shards(reps.size());
  ThreadPool::Shared().ParallelFor(
      reps.size(), num_threads, [&](std::size_t s) {
        CachePrepass prepass(cfg);
        prepass.ProcessKernel(*app.kernels[reps[s]], &shards[s]);
      });
  MemProfile profile;
  for (std::size_t k = 0; k < app.kernels.size(); ++k) {
    profile.Merge(shards[shard_of[k]]);
  }
  return profile;
}

}  // namespace swiftsim
