#include "analytical/cache_prepass.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cta_allocator.h"
#include "mem/coalescer.h"

namespace swiftsim {

const PcHitRates& MemProfile::Lookup(KernelId kernel, Pc pc) const {
  const PcHitRates* it = per_pc_.Find(Key(kernel, pc));
  if (it != nullptr && it->accesses > 0) return *it;
  const PcHitRates* kit = per_kernel_.Find(kernel);
  if (kit != nullptr && kit->accesses > 0) return *kit;
  return all_dram_;
}

PcHitRates& MemProfile::Mutable(KernelId kernel, Pc pc) {
  return per_pc_[Key(kernel, pc)];
}

void MemProfile::FinalizeKernel(KernelId kernel) {
  PcHitRates& agg = per_kernel_[kernel];
  agg = PcHitRates{};
  for (const auto& [key, rates] : per_pc_) {
    if ((key >> 48) != kernel) continue;
    agg.accesses += rates.accesses;
    agg.l1_hits += rates.l1_hits;
    agg.l2_hits += rates.l2_hits;
  }
}

void MemProfile::Merge(const MemProfile& other) {
  for (const auto& [key, rates] : other.per_pc_) {
    PcHitRates& dst = per_pc_[key];
    dst.accesses += rates.accesses;
    dst.l1_hits += rates.l1_hits;
    dst.l2_hits += rates.l2_hits;
  }
  for (const auto& [kernel, rates] : other.per_kernel_) {
    PcHitRates& dst = per_kernel_[kernel];
    dst.accesses += rates.accesses;
    dst.l1_hits += rates.l1_hits;
    dst.l2_hits += rates.l2_hits;
  }
}

namespace {
// Aggregate L2: one functional cache with the full chip capacity.
CacheParams AggregateL2(const GpuConfig& cfg) {
  CacheParams l2 = cfg.l2;
  l2.size_bytes = cfg.total_l2_bytes();
  return l2;
}
}  // namespace

CachePrepass::CachePrepass(const GpuConfig& cfg)
    : cfg_(cfg), l2_(AggregateL2(cfg)) {
  l1s_.reserve(cfg.num_sms);
  for (unsigned s = 0; s < cfg.num_sms; ++s) l1s_.emplace_back(cfg.l1);
}

void CachePrepass::ProcessKernel(const KernelTrace& kernel,
                                 MemProfile* profile) {
  SS_CHECK(profile != nullptr, "CachePrepass needs an output profile");
  const KernelInfo& info = kernel.info();
  const CtaAllocator occupancy_probe(cfg_);
  const unsigned per_sm = std::max(1u, occupancy_probe.MaxConcurrent(info));
  const unsigned wave = per_sm * cfg_.num_sms;

  struct Cursor {
    const WarpTrace* trace;
    std::size_t next = 0;
    unsigned sm;
  };

  // Timing-aware correction: an access whose line missed "recently" (still
  // in flight in the timing model) does not hit in the L1 — it merges into
  // the outstanding MSHR entry and observes the original miss's latency.
  // "Recently" is measured in interleaved accesses: one fill latency spans
  // roughly a few rounds of the warp interleave.
  enum class MissLevel : std::uint8_t { kL2, kDram };
  struct RecentMiss {
    std::uint64_t when = 0;
    MissLevel level = MissLevel::kL2;
  };
  FlatMap<Addr, RecentMiss> recent_miss;
  recent_miss.Reserve(4096);
  std::uint64_t access_counter = 0;

  for (CtaId wave_start = 0; wave_start < info.num_ctas;
       wave_start += wave) {
    const CtaId wave_end =
        std::min<CtaId>(wave_start + wave, info.num_ctas);
    std::vector<Cursor> cursors;
    for (CtaId c = wave_start; c < wave_end; ++c) {
      const CtaTrace& cta = kernel.cta(c);
      const unsigned sm = (c - wave_start) % cfg_.num_sms;
      for (const WarpTrace& w : cta.warps) {
        cursors.push_back(Cursor{&w, 0, sm});
      }
    }
    // One fill latency covers roughly a few rounds of the interleave.
    const std::uint64_t merge_window =
        std::max<std::uint64_t>(cursors.size() * 8, 64);
    // Round-robin interleave at instruction granularity.
    bool any = true;
    while (any) {
      any = false;
      for (Cursor& cur : cursors) {
        if (cur.next >= cur.trace->size()) continue;
        const TraceInstr& ins = (*cur.trace)[cur.next++];
        any = true;
        if (!IsGlobalMem(ins.op)) continue;
        const auto accesses =
            Coalesce(ins.addrs, 4, cfg_.l1.line_bytes, cfg_.l1.sector_bytes);
        if (IsStore(ins.op)) {
          for (const auto& acc : accesses) {
            // Write-through: update both levels, no hit accounting.
            l1s_[cur.sm].AccessStore(acc.line_addr, acc.sector_mask);
            l2_.AccessStore(acc.line_addr, acc.sector_mask);
          }
          continue;
        }
        PcHitRates& rates = profile->Mutable(info.id, ins.pc);
        for (const auto& acc : accesses) {
          ++rates.accesses;
          ++access_counter;
          const RecentMiss* rm = recent_miss.Find(acc.line_addr);
          const bool merges =
              rm != nullptr && access_counter - rm->when < merge_window;
          const bool l1_hit =
              l1s_[cur.sm].AccessLoad(acc.line_addr, acc.sector_mask);
          if (merges) {
            // Piggybacks on the in-flight fill: pays that miss's latency.
            if (rm->level == MissLevel::kL2) ++rates.l2_hits;
            continue;  // (DRAM-level merges count as DRAM accesses)
          }
          if (l1_hit) {
            ++rates.l1_hits;
            continue;
          }
          const bool l2_hit =
              l2_.AccessLoad(acc.line_addr, acc.sector_mask);
          if (l2_hit) ++rates.l2_hits;
          recent_miss[acc.line_addr] =
              RecentMiss{access_counter,
                         l2_hit ? MissLevel::kL2 : MissLevel::kDram};
        }
      }
    }
    recent_miss.clear();
  }
  profile->FinalizeKernel(info.id);
}

MemProfile BuildMemProfile(const Application& app, const GpuConfig& cfg) {
  MemProfile profile;
  CachePrepass prepass(cfg);
  for (const auto& kernel : app.kernels) {
    prepass.ProcessKernel(*kernel, &profile);
  }
  return profile;
}

MemProfile BuildMemProfileParallel(const Application& app,
                                   const GpuConfig& cfg,
                                   unsigned num_threads) {
  SS_CHECK(num_threads > 0, "need at least one worker thread");
  if (app.kernels.size() <= 1) {
    // Nothing to shard; the serial pass is already cold per kernel.
    return BuildMemProfile(app, cfg);
  }
  // One cold prepass per kernel, independent of scheduling, so the merged
  // profile is bit-identical for any num_threads.
  std::vector<MemProfile> shards(app.kernels.size());
  ThreadPool::Shared().ParallelFor(
      app.kernels.size(), num_threads, [&](std::size_t k) {
        CachePrepass prepass(cfg);
        prepass.ProcessKernel(*app.kernels[k], &shards[k]);
      });
  MemProfile profile;
  for (const MemProfile& shard : shards) profile.Merge(shard);
  return profile;
}

}  // namespace swiftsim
