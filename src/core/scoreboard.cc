#include "core/scoreboard.h"

#include "common/status.h"

namespace swiftsim {

Scoreboard::Scoreboard(unsigned num_warp_slots) : pending_(num_warp_slots) {}

bool Scoreboard::CanIssue(unsigned slot, const CompactInstr& ins) const {
  SS_DCHECK(slot < pending_.size());
  const auto& p = pending_[slot];
  if (ins.has_dst() && p.test(ins.dst)) return false;  // WAW
  for (std::uint8_t r : ins.src) {
    if (r != kNoReg && p.test(r)) return false;  // RAW
  }
  return true;
}

void Scoreboard::OnIssue(unsigned slot, const CompactInstr& ins) {
  SS_DCHECK(slot < pending_.size());
  if (ins.has_dst()) pending_[slot].set(ins.dst);
}

void Scoreboard::OnWriteback(unsigned slot, std::uint8_t reg) {
  SS_DCHECK(slot < pending_.size());
  if (reg != kNoReg) pending_[slot].reset(reg);
}

void Scoreboard::Reset(unsigned slot) {
  SS_DCHECK(slot < pending_.size());
  pending_[slot].reset();
}

unsigned Scoreboard::PendingCount(unsigned slot) const {
  SS_DCHECK(slot < pending_.size());
  return static_cast<unsigned>(pending_[slot].count());
}

}  // namespace swiftsim
