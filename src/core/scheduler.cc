#include "core/scheduler.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

WarpScheduler::WarpScheduler(SchedPolicy policy, unsigned slots,
                             unsigned active_size)
    : policy_(policy), slots_(slots),
      active_size_(std::min(active_size, slots)), stall_count_(slots, 0) {
  SS_CHECK(slots > 0, "scheduler needs at least one warp slot");
  if (policy_ == SchedPolicy::kTwoLevel) {
    active_.reserve(slots);
    for (unsigned s = 0; s < active_size_; ++s) active_.push_back(s);
  }
}

void WarpScheduler::OnIssue(unsigned slot) { last_issued_ = slot; }

void WarpScheduler::OnSlotDrained(unsigned slot) {
  if (last_issued_ == slot) last_issued_ = kNoSlot;
  if (policy_ == SchedPolicy::kTwoLevel) stall_count_[slot] = 0;
}

}  // namespace swiftsim
