#include "core/scheduler.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

WarpScheduler::WarpScheduler(SchedPolicy policy, unsigned slots,
                             unsigned active_size)
    : policy_(policy), slots_(slots),
      active_size_(std::min(active_size, slots)), stall_count_(slots, 0) {
  SS_CHECK(slots > 0, "scheduler needs at least one warp slot");
  if (policy_ == SchedPolicy::kTwoLevel) {
    for (unsigned s = 0; s < active_size_; ++s) active_.push_back(s);
  }
}

unsigned WarpScheduler::Pick(
    const std::function<bool(unsigned)>& ready,
    const std::function<std::uint64_t(unsigned)>& age) {
  switch (policy_) {
    case SchedPolicy::kGto:
      return PickGto(ready, age);
    case SchedPolicy::kLrr:
      return PickLrr(ready);
    case SchedPolicy::kTwoLevel:
      return PickTwoLevel(ready, age);
  }
  return kNoSlot;
}

unsigned WarpScheduler::PickGto(
    const std::function<bool(unsigned)>& ready,
    const std::function<std::uint64_t(unsigned)>& age) const {
  // Greedy: stick with the last issued warp while it stays ready.
  if (last_issued_ != kNoSlot && ready(last_issued_)) return last_issued_;
  // Then oldest ready warp.
  unsigned best = kNoSlot;
  std::uint64_t best_age = ~std::uint64_t{0};
  for (unsigned s = 0; s < slots_; ++s) {
    if (!ready(s)) continue;
    const std::uint64_t a = age(s);
    if (a < best_age) {
      best_age = a;
      best = s;
    }
  }
  return best;
}

unsigned WarpScheduler::PickLrr(
    const std::function<bool(unsigned)>& ready) const {
  const unsigned start = last_issued_ == kNoSlot ? 0 : last_issued_ + 1;
  for (unsigned i = 0; i < slots_; ++i) {
    const unsigned s = (start + i) % slots_;
    if (ready(s)) return s;
  }
  return kNoSlot;
}

unsigned WarpScheduler::PickTwoLevel(
    const std::function<bool(unsigned)>& ready,
    const std::function<std::uint64_t(unsigned)>& age) {
  // Inner level: LRR over the active set.
  unsigned found = kNoSlot;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const unsigned s = active_[i];
    if (ready(s)) {
      found = s;
      stall_count_[s] = 0;
      break;
    }
    // Demote a warp stalled for too long; promote the oldest READY
    // pending warp (falling back to the oldest pending one) so progress
    // does not cycle among equally stalled warps.
    if (++stall_count_[s] > 32) {
      stall_count_[s] = 0;
      unsigned promote = kNoSlot;
      bool promote_ready = false;
      std::uint64_t best_age = ~std::uint64_t{0};
      for (unsigned cand = 0; cand < slots_; ++cand) {
        if (std::find(active_.begin(), active_.end(), cand) != active_.end()) {
          continue;
        }
        const bool cand_ready = ready(cand);
        if (promote_ready && !cand_ready) continue;
        const std::uint64_t a = age(cand);
        if ((cand_ready && !promote_ready) || a < best_age) {
          best_age = a;
          promote = cand;
          promote_ready = cand_ready;
        }
      }
      if (promote != kNoSlot) active_[i] = promote;
    }
  }
  if (found != kNoSlot) {
    // Rotate the active set for fairness.
    std::rotate(active_.begin(),
                std::find(active_.begin(), active_.end(), found) + 1,
                active_.end());
  }
  return found;
}

void WarpScheduler::OnIssue(unsigned slot) { last_issued_ = slot; }

void WarpScheduler::OnSlotDrained(unsigned slot) {
  if (last_issued_ == slot) last_issued_ = kNoSlot;
  if (policy_ == SchedPolicy::kTwoLevel) stall_count_[slot] = 0;
}

}  // namespace swiftsim
