// Execution-unit models (paper §III-D1, Fig. 3).
//
// Two interchangeable implementations of the same module interface
// (instructions in, completion acknowledgements out):
//
//  * ExecPipeline — cycle-accurate: explicit stage registers shifted every
//    cycle, the way Accel-Sim updates per-stage component state. This is
//    the per-cycle work the hybrid model eliminates.
//  * HybridAluModel — the paper's improved analytical model: resource
//    contention (issue-interval occupancy) is tracked cycle-accurately,
//    and the remaining execution time is the fixed instruction latency;
//    completion is delivered as a scheduled event instead of being
//    marched through pipeline registers.
//
// Both models produce identical completion cycles for identical issue
// sequences: complete = issue + latency + issue_interval - 1.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "trace/isa.h"

namespace swiftsim {

/// A finished instruction: which warp slot to wake and which destination
/// register to release.
struct Completion {
  unsigned slot = 0;
  std::uint8_t dst = 0;
};

class ExecPipeline {
 public:
  ExecPipeline(UnitClass cls, const ExecUnitConfig& cfg);

  /// Structural hazard check: the unit accepts a new warp instruction
  /// every issue_interval cycles.
  bool CanIssue(Cycle now) const { return now >= next_issue_; }

  void Issue(unsigned slot, std::uint8_t dst, Cycle now);

  /// Shifts the pipeline one stage; completions land in completions().
  void Tick(Cycle now);

  RingBuffer<Completion>& completions() { return done_; }

  bool busy() const { return in_flight_ != 0; }

  /// NextWakeCycle contract: a non-drained pipe (stages in flight OR
  /// retired completions still awaiting the writeback bus) must be ticked
  /// every cycle; a drained pipe contributes no wake event.
  bool drained() const { return in_flight_ == 0 && done_.empty(); }

  Cycle next_issue() const { return next_issue_; }
  std::uint64_t issued() const { return issued_; }
  UnitClass unit_class() const { return cls_; }
  unsigned depth() const { return static_cast<unsigned>(stages_.size()); }

 private:
  struct Stage {
    bool valid = false;
    unsigned slot = 0;
    std::uint8_t dst = 0;
  };

  UnitClass cls_;
  ExecUnitConfig cfg_;
  std::vector<Stage> stages_;  // stages_.back() is the writeback stage
  RingBuffer<Completion> done_;
  Cycle next_issue_ = 0;
  unsigned in_flight_ = 0;
  std::uint64_t issued_ = 0;
};

class HybridAluModel {
 public:
  explicit HybridAluModel(const GpuConfig& cfg);

  struct Issued {
    Cycle complete;          // when the completion ack fires
    Cycle contention_delay;  // extra cycles attributable to contention
  };

  bool CanIssue(UnitClass cls, Cycle now) const;
  Cycle NextFree(UnitClass cls) const;
  Issued Issue(UnitClass cls, Cycle now);

  std::uint64_t issued(UnitClass cls) const;
  std::uint64_t total_contention_cycles() const { return contention_; }

 private:
  struct UnitState {
    ExecUnitConfig cfg;
    Cycle next_free = 0;
    std::uint64_t issued = 0;
  };

  const UnitState& StateOf(UnitClass cls) const;
  UnitState& StateOf(UnitClass cls);

  std::array<UnitState, 5> units_;  // kInt, kSp, kDp, kSfu, kTensor
  std::uint64_t contention_ = 0;
};

}  // namespace swiftsim
