// Cycle-accurate LD/ST unit (one per sub-core). Receives warp memory
// instructions from the scheduler, coalesces global accesses into sector
// requests, injects them into the shared L1 (competing for banks with the
// other sub-cores), tracks outstanding loads, and delivers completion
// acknowledgements back to the scheduler/scoreboard — the fixed module
// interface of paper §III-B2.
//
// Shared-memory and constant accesses never leave the SM: they complete
// after a fixed latency plus serialized bank conflicts.
//
// In-flight instructions live in a fixed pool of `queue_depth` slots
// threaded onto an intrusive FIFO list (stable indices, no per-instruction
// heap allocation); request-id lookup goes through a pre-sized FlatMap.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/ring_buffer.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "mem/cache.h"
#include "mem/coalescer.h"
#include "trace/instr.h"

namespace swiftsim {

struct LdstUnitConfig {
  unsigned issue_interval = 8;   // warp_size / ldst units
  unsigned queue_depth = 8;      // outstanding memory instructions
  unsigned accesses_per_cycle = 4;
  unsigned line_bytes = 128;
  unsigned sector_bytes = 32;
  unsigned access_bytes = 4;     // per-lane access width (virtual ISA)
  unsigned smem_latency = 24;
  unsigned smem_banks = 32;
  unsigned const_latency = 10;
};

struct LdstStats {
  std::uint64_t mem_instrs = 0;
  std::uint64_t global_accesses = 0;   // coalesced sector requests issued
  std::uint64_t l1_rejections = 0;     // retried Access calls
  std::uint64_t smem_instrs = 0;
  std::uint64_t smem_bank_conflicts = 0;  // extra serialization cycles
  std::uint64_t queue_full_stalls = 0;
};

class LdstUnit {
 public:
  /// `writeback(slot, dst)` is invoked exactly once per memory instruction
  /// when it fully completes (dst == kNoReg for stores).
  using WritebackFn = std::function<void(unsigned, std::uint8_t)>;

  LdstUnit(const LdstUnitConfig& cfg, SmId sm, std::uint64_t instance,
           SectorCache* l1, WritebackFn writeback);

  /// Structural check used by the scheduler's ready predicate.
  bool CanAccept(Cycle now) const;

  /// Accepts one warp memory instruction with its decoded lane addresses
  /// (one per active lane, decoded from the columnar pool by the caller).
  /// Requires CanAccept.
  void Issue(unsigned slot, const CompactInstr& ins, const LaneAddrs& addrs,
             Cycle now);

  /// Per-cycle work: retire due shared/const completions, push the
  /// front instruction's remaining sector accesses into the L1.
  void Tick(Cycle now);

  /// L1 load response routed here by the SM (matched by request id).
  void OnL1Response(const MemResponse& resp, Cycle now);

  /// True when this unit minted request id `id`.
  bool OwnsRequest(std::uint64_t id) const {
    return (id >> 20) == instance_tag_;
  }

  bool quiescent() const {
    return live_count_ == 0 && fixed_completions_.empty();
  }

  Cycle next_issue() const { return next_issue_; }

  /// Earliest pending fixed-latency (shared/const) completion, or kNever.
  Cycle NextFixedCompletion() const {
    return fixed_completions_.empty() ? ~Cycle{0}
                                      : fixed_completions_.front().ready;
  }

  /// True while some instruction still has sector accesses to inject into
  /// the L1 (the unit must be ticked every cycle to retry).
  bool HasPendingInjections() const { return pending_inject_ > 0; }

  /// True when the last injection attempt failed on L1 capacity (MSHRs or
  /// miss-queue backpressure). Unlike bank conflicts, these rejections are
  /// stable until an external event (a fill, or a downstream drain of the
  /// miss queue), so the owning SM may sleep instead of retrying — every
  /// elided retry is provably the same failing probe.
  bool CapacityBlocked() const {
    return blocked_ == CacheReject::kMshrFull ||
           blocked_ == CacheReject::kOutFull;
  }

  /// True when the capacity block is specifically miss-queue backpressure;
  /// the SM driver re-checks the queue's fullness each cycle to wake.
  bool BlockedOnMissQueue() const {
    return blocked_ == CacheReject::kOutFull;
  }

  /// Stats catch-up for `n` elided retry cycles while capacity-blocked:
  /// the per-cycle reference would have re-attempted the head access and
  /// failed identically each cycle (cycle skipping, DESIGN.md §9).
  void AccountElidedRetries(Cycle n) {
    if (!CapacityBlocked()) return;
    stats_.l1_rejections += n;
    l1_->AccountElidedStalls(blocked_, n);
  }

  const LdstStats& stats() const { return stats_; }

  // Diagnostic-dump snapshot (DESIGN.md §11).
  CacheReject blocked_reason() const { return blocked_; }
  std::size_t live_instrs() const { return live_count_; }

 private:
  static constexpr int kNil = -1;

  struct MemInstr {
    unsigned slot = 0;
    std::uint8_t dst = kNoReg;
    bool is_store = false;
    CoalescedVec todo;         // not yet accepted by the L1
    unsigned outstanding = 0;  // accepted loads awaiting response
    int prev = kNil;           // intrusive FIFO links (indices into pool_)
    int next = kNil;
  };

  struct FixedCompletion {
    Cycle ready;
    unsigned slot;
    std::uint8_t dst;
  };

  void Complete(const MemInstr& mi);
  void PushFixed(Cycle ready, unsigned slot, std::uint8_t dst);
  int AllocSlot();
  void FreeSlot(int idx);

  LdstUnitConfig cfg_;
  SmId sm_;
  std::uint64_t instance_tag_;
  std::uint64_t next_id_ = 0;
  SectorCache* l1_;
  WritebackFn writeback_;
  SmemConflictCounter smem_conflicts_;

  Cycle next_issue_ = 0;
  std::vector<MemInstr> pool_;  // queue_depth slots, allocated once
  int head_ = kNil;             // FIFO front: injects accesses first
  int tail_ = kNil;
  int free_ = kNil;             // singly linked free list via `next`
  std::size_t live_count_ = 0;
  std::size_t pending_inject_ = 0;  // live instrs with a non-empty todo
  FlatMap<std::uint64_t, std::uint32_t> by_id_;  // request id -> pool slot
  RingBuffer<FixedCompletion> fixed_completions_;  // sorted by ready
  CacheReject blocked_ = CacheReject::kNone;  // last injection rejection
  LdstStats stats_;
};

}  // namespace swiftsim
