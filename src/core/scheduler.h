// Warp scheduler policies (paper's DSE example module — this is the
// component an architect would keep cycle-accurate while simplifying the
// rest). Three policies: GTO (greedy-then-oldest), LRR (loose round-robin)
// and a two-level active/pending scheduler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "config/gpu_config.h"
#include "core/warp.h"

namespace swiftsim {

class WarpScheduler {
 public:
  /// `slots` is the number of warp slots this scheduler arbitrates over
  /// (one sub-core's worth). For kTwoLevel, `active_size` bounds the inner
  /// active set.
  WarpScheduler(SchedPolicy policy, unsigned slots, unsigned active_size = 8);

  /// Picks the next warp slot to issue from. `ready(slot)` must be a pure
  /// predicate ("could slot issue this cycle?"); `age(slot)` returns the
  /// warp's launch sequence number (lower == older). Returns kNoSlot when
  /// nothing is ready. Templated over the callables so the per-pick call
  /// in SmCore::Tick never materializes a std::function (heap-allocating
  /// capture) on the hot path.
  template <typename ReadyFn, typename AgeFn>
  unsigned Pick(const ReadyFn& ready, const AgeFn& age) {
    switch (policy_) {
      case SchedPolicy::kGto:
        return PickGto(ready, age);
      case SchedPolicy::kLrr:
        return PickLrr(ready);
      case SchedPolicy::kTwoLevel:
        return PickTwoLevel(ready, age);
    }
    return kNoSlot;
  }

  /// Informs the policy that `slot` issued (GTO greediness, LRR rotation,
  /// two-level activity bookkeeping).
  void OnIssue(unsigned slot);

  /// Informs the policy that the warp in `slot` finished or was replaced.
  void OnSlotDrained(unsigned slot);

  /// True when Pick mutates policy state even on a failed probe (the
  /// two-level scheduler advances stall counters and demotes warps every
  /// call). An SM driving such a policy can never be put to sleep by the
  /// wake calendar: eliding a Pick would diverge from per-cycle ticking.
  bool StatefulProbe() const { return policy_ == SchedPolicy::kTwoLevel; }

  SchedPolicy policy() const { return policy_; }

 private:
  template <typename ReadyFn, typename AgeFn>
  unsigned PickGto(const ReadyFn& ready, const AgeFn& age) const {
    // Greedy: stick with the last issued warp while it stays ready.
    if (last_issued_ != kNoSlot && ready(last_issued_)) return last_issued_;
    // Then oldest ready warp.
    unsigned best = kNoSlot;
    std::uint64_t best_age = ~std::uint64_t{0};
    for (unsigned s = 0; s < slots_; ++s) {
      if (!ready(s)) continue;
      const std::uint64_t a = age(s);
      if (a < best_age) {
        best_age = a;
        best = s;
      }
    }
    return best;
  }

  template <typename ReadyFn>
  unsigned PickLrr(const ReadyFn& ready) const {
    const unsigned start = last_issued_ == kNoSlot ? 0 : last_issued_ + 1;
    for (unsigned i = 0; i < slots_; ++i) {
      const unsigned s = (start + i) % slots_;
      if (ready(s)) return s;
    }
    return kNoSlot;
  }

  template <typename ReadyFn, typename AgeFn>
  unsigned PickTwoLevel(const ReadyFn& ready, const AgeFn& age) {
    // Inner level: LRR over the active set.
    unsigned found = kNoSlot;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const unsigned s = active_[i];
      if (ready(s)) {
        found = s;
        stall_count_[s] = 0;
        break;
      }
      // Demote a warp stalled for too long; promote the oldest READY
      // pending warp (falling back to the oldest pending one) so progress
      // does not cycle among equally stalled warps.
      if (++stall_count_[s] > 32) {
        stall_count_[s] = 0;
        unsigned promote = kNoSlot;
        bool promote_ready = false;
        std::uint64_t best_age = ~std::uint64_t{0};
        for (unsigned cand = 0; cand < slots_; ++cand) {
          if (std::find(active_.begin(), active_.end(), cand) !=
              active_.end()) {
            continue;
          }
          const bool cand_ready = ready(cand);
          if (promote_ready && !cand_ready) continue;
          const std::uint64_t a = age(cand);
          if ((cand_ready && !promote_ready) || a < best_age) {
            best_age = a;
            promote = cand;
            promote_ready = cand_ready;
          }
        }
        if (promote != kNoSlot) active_[i] = promote;
      }
    }
    if (found != kNoSlot) {
      // Rotate the active set for fairness.
      std::rotate(active_.begin(),
                  std::find(active_.begin(), active_.end(), found) + 1,
                  active_.end());
    }
    return found;
  }

  SchedPolicy policy_;
  unsigned slots_;
  unsigned active_size_;
  unsigned last_issued_ = kNoSlot;  // GTO greedy target / LRR rotor
  std::vector<unsigned> active_;    // two-level active set (slot ids)
  std::vector<unsigned> stall_count_;  // two-level demotion counter
};

}  // namespace swiftsim
