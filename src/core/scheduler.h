// Warp scheduler policies (paper's DSE example module — this is the
// component an architect would keep cycle-accurate while simplifying the
// rest). Three policies: GTO (greedy-then-oldest), LRR (loose round-robin)
// and a two-level active/pending scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "config/gpu_config.h"
#include "core/warp.h"

namespace swiftsim {

class WarpScheduler {
 public:
  /// `slots` is the number of warp slots this scheduler arbitrates over
  /// (one sub-core's worth). For kTwoLevel, `active_size` bounds the inner
  /// active set.
  WarpScheduler(SchedPolicy policy, unsigned slots, unsigned active_size = 8);

  /// Picks the next warp slot to issue from. `ready(slot)` must be a pure
  /// predicate ("could slot issue this cycle?"); `age(slot)` returns the
  /// warp's launch sequence number (lower == older). Returns kNoSlot when
  /// nothing is ready.
  unsigned Pick(const std::function<bool(unsigned)>& ready,
                const std::function<std::uint64_t(unsigned)>& age);

  /// Informs the policy that `slot` issued (GTO greediness, LRR rotation,
  /// two-level activity bookkeeping).
  void OnIssue(unsigned slot);

  /// Informs the policy that the warp in `slot` finished or was replaced.
  void OnSlotDrained(unsigned slot);

  SchedPolicy policy() const { return policy_; }

 private:
  unsigned PickGto(const std::function<bool(unsigned)>& ready,
                   const std::function<std::uint64_t(unsigned)>& age) const;
  unsigned PickLrr(const std::function<bool(unsigned)>& ready) const;
  unsigned PickTwoLevel(const std::function<bool(unsigned)>& ready,
                        const std::function<std::uint64_t(unsigned)>& age);

  SchedPolicy policy_;
  unsigned slots_;
  unsigned active_size_;
  unsigned last_issued_ = kNoSlot;  // GTO greedy target / LRR rotor
  std::vector<unsigned> active_;    // two-level active set (slot ids)
  std::vector<unsigned> stall_count_;  // two-level demotion counter
};

}  // namespace swiftsim
