// Runtime state of one hardware warp slot inside an SM.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "trace/instr.h"

namespace swiftsim {

/// Sentinel for "no warp slot".
inline constexpr unsigned kNoSlot = ~0u;

struct WarpContext {
  bool valid = false;          // slot holds a live warp
  unsigned cta_slot = 0;       // resident-CTA table index within the SM
  const WarpTrace* trace = nullptr;
  std::size_t next_instr = 0;  // next trace instruction to issue
  // Memory-op rank of next_instr: count of address-carrying instructions
  // already issued. Keeps columnar address decode O(1) on the issue path;
  // advanced together with next_instr.
  std::uint32_t mem_seen = 0;
  bool at_barrier = false;
  bool done = false;           // EXIT has been issued
  std::uint64_t launch_seq = 0;  // global age for GTO "oldest" ordering

  // Detailed-frontend state: instructions sitting in the i-buffer and the
  // cycle the next fetch completes (models i-cache stalls in the oracle).
  unsigned ibuffer = 0;
  Cycle fetch_ready = 0;
  std::uint64_t fetch_count = 0;

  bool exhausted() const { return trace == nullptr || next_instr >= trace->size(); }
  const CompactInstr& current() const { return (*trace)[next_instr]; }
};

}  // namespace swiftsim
