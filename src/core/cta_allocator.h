// Per-SM CTA resource accounting: warp slots, threads, registers, shared
// memory and CTA slots all gate how many blocks an SM can host at once.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "config/gpu_config.h"
#include "trace/kernel.h"

namespace swiftsim {

class CtaAllocator {
 public:
  explicit CtaAllocator(const GpuConfig& cfg);

  /// Could a CTA of this kernel ever fit on an empty SM? (Launch-time
  /// feasibility check; throws via caller when a kernel is unrunnable.)
  bool Feasible(const KernelInfo& k) const;

  /// True iff the SM currently has resources for one more CTA of `k`.
  bool CanAllocate(const KernelInfo& k) const;

  /// Reserves resources; returns the CTA slot index. Requires CanAllocate.
  unsigned Allocate(const KernelInfo& k);

  /// Releases the slot's resources.
  void Release(unsigned cta_slot, const KernelInfo& k);

  unsigned resident_ctas() const { return resident_; }
  unsigned used_warps() const { return used_warps_; }
  unsigned max_ctas() const { return static_cast<unsigned>(in_use_.size()); }

  /// Static occupancy: how many CTAs of `k` fit on an empty SM.
  unsigned MaxConcurrent(const KernelInfo& k) const;

 private:
  GpuConfig cfg_;
  std::vector<std::uint8_t> in_use_;  // per CTA slot
  unsigned resident_ = 0;
  unsigned used_warps_ = 0;
  unsigned used_threads_ = 0;
  std::uint64_t used_regs_ = 0;
  std::uint64_t used_smem_ = 0;
};

}  // namespace swiftsim
