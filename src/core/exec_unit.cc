#include "core/exec_unit.h"

#include "common/status.h"

namespace swiftsim {

ExecPipeline::ExecPipeline(UnitClass cls, const ExecUnitConfig& cfg)
    : cls_(cls), cfg_(cfg),
      stages_(cfg.latency + cfg.issue_interval() - 1) {
  SS_CHECK(!stages_.empty(), "exec pipeline needs at least one stage");
  done_.Reserve(16);
}

void ExecPipeline::Issue(unsigned slot, std::uint8_t dst, Cycle now) {
  SS_DCHECK(CanIssue(now));
  SS_DCHECK(!stages_[0].valid);
  stages_[0] = Stage{true, slot, dst};
  next_issue_ = now + cfg_.issue_interval();
  ++in_flight_;
  ++issued_;
}

void ExecPipeline::Tick(Cycle) {
  // Empty pipeline: every stage register is invalid, so shifting is a
  // no-op. Most pipes are idle most cycles; skipping them here is the
  // single largest detailed-mode hot-path win.
  if (in_flight_ == 0) return;
  // Writeback stage retires.
  Stage& wb = stages_.back();
  if (wb.valid) {
    done_.push_back(Completion{wb.slot, wb.dst});
    wb.valid = false;
    --in_flight_;
  }
  // Shift every earlier stage forward by one.
  for (std::size_t i = stages_.size() - 1; i > 0; --i) {
    if (stages_[i - 1].valid) {
      SS_DCHECK(!stages_[i].valid);
      stages_[i] = stages_[i - 1];
      stages_[i - 1].valid = false;
    }
  }
}

HybridAluModel::HybridAluModel(const GpuConfig& cfg) {
  units_[0].cfg = cfg.int_unit;
  units_[1].cfg = cfg.sp_unit;
  units_[2].cfg = cfg.dp_unit;
  units_[3].cfg = cfg.sfu_unit;
  units_[4].cfg = cfg.tensor_unit;
}

const HybridAluModel::UnitState& HybridAluModel::StateOf(
    UnitClass cls) const {
  switch (cls) {
    case UnitClass::kInt:
      return units_[0];
    case UnitClass::kSp:
      return units_[1];
    case UnitClass::kDp:
      return units_[2];
    case UnitClass::kSfu:
      return units_[3];
    case UnitClass::kTensor:
      return units_[4];
    default:
      break;
  }
  throw SimError("HybridAluModel: not an ALU unit class");
}

HybridAluModel::UnitState& HybridAluModel::StateOf(UnitClass cls) {
  return const_cast<UnitState&>(
      static_cast<const HybridAluModel*>(this)->StateOf(cls));
}

bool HybridAluModel::CanIssue(UnitClass cls, Cycle now) const {
  return now >= StateOf(cls).next_free;
}

Cycle HybridAluModel::NextFree(UnitClass cls) const {
  return StateOf(cls).next_free;
}

HybridAluModel::Issued HybridAluModel::Issue(UnitClass cls, Cycle now) {
  UnitState& u = StateOf(cls);
  SS_DCHECK(now >= u.next_free);
  const unsigned ii = u.cfg.issue_interval();
  u.next_free = now + ii;
  ++u.issued;
  // Fixed latency (blue block of Fig. 3) on top of the cycle-accurately
  // tracked occupancy (orange block). The +1 folds in the average operand
  // -collection stage the detailed pipeline models explicitly; the
  // residual (bank-conflict jitter) is the hybrid model's accuracy cost.
  return Issued{now + u.cfg.latency + ii, 0};
}

std::uint64_t HybridAluModel::issued(UnitClass cls) const {
  return StateOf(cls).issued;
}

}  // namespace swiftsim
