#include "core/operand_collector.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

OperandCollector::OperandCollector(const OperandCollectorConfig& cfg)
    : cfg_(cfg), units_(cfg.units), free_units_(cfg.units),
      bank_used_(cfg.banks, 0) {
  SS_CHECK(cfg.units > 0, "operand collector needs at least one unit");
  SS_CHECK(cfg.banks > 0, "register file needs at least one bank");
  ready_.Reserve(cfg.units);
}

void OperandCollector::Accept(unsigned slot, const CompactInstr& ins,
                              UnitClass cls) {
  SS_DCHECK(CanAccept());
  for (Unit& u : units_) {
    if (u.valid) continue;
    u.valid = true;
    u.op = CollectedOp{slot, ins.dst, cls};
    u.pending_reads.clear();
    for (std::uint8_t r : ins.src) {
      if (r != kNoReg) u.pending_reads.push_back(r);
    }
    --free_units_;
    // Zero-operand instructions are ready after the mandatory read stage
    // (one Tick), like single-operand ones — pending_reads empty is fine.
    return;
  }
  throw SimError("OperandCollector: no free unit despite CanAccept");
}

void OperandCollector::Tick(Cycle) {
  // An empty collector's tick is a pure no-op; skip the bank-scratch reset
  // so idle sub-cores pay nothing (and elided ticks are provably inert).
  if (free_units_ == static_cast<unsigned>(units_.size())) return;
  // Per-bank port budget this cycle (member scratch: no per-cycle alloc).
  std::fill(bank_used_.begin(), bank_used_.end(), 0);
  auto& bank_used = bank_used_;
  bool any_blocked = false;
  for (Unit& u : units_) {
    if (!u.valid) continue;
    // Try to service this unit's outstanding reads.
    auto it = u.pending_reads.begin();
    while (it != u.pending_reads.end()) {
      const unsigned bank = *it % cfg_.banks;
      if (bank_used[bank] < cfg_.ports_per_bank) {
        ++bank_used[bank];
        it = u.pending_reads.erase(it);
      } else {
        any_blocked = true;
        ++it;
      }
    }
    if (u.pending_reads.empty()) {
      ready_.push_back(u.op);
      u.valid = false;
      ++free_units_;
    }
  }
  if (any_blocked) ++conflict_cycles_;
}

}  // namespace swiftsim
