#include "core/barrier.h"

#include "common/status.h"

namespace swiftsim {

BarrierManager::BarrierManager(unsigned max_cta_slots)
    : ctas_(max_cta_slots) {}

void BarrierManager::InitCta(unsigned cta_slot, unsigned num_warps) {
  SS_DCHECK(cta_slot < ctas_.size());
  ctas_[cta_slot] = CtaBarrier{num_warps, 0};
}

bool BarrierManager::Arrive(unsigned cta_slot) {
  SS_DCHECK(cta_slot < ctas_.size());
  CtaBarrier& b = ctas_[cta_slot];
  SS_DCHECK(b.live_warps > 0);
  ++b.arrived;
  if (b.arrived >= b.live_warps) {
    b.arrived = 0;
    return true;
  }
  return false;
}

bool BarrierManager::OnWarpExit(unsigned cta_slot) {
  SS_DCHECK(cta_slot < ctas_.size());
  CtaBarrier& b = ctas_[cta_slot];
  SS_DCHECK(b.live_warps > 0);
  --b.live_warps;
  if (b.live_warps > 0 && b.arrived >= b.live_warps) {
    b.arrived = 0;
    return true;
  }
  return false;
}

unsigned BarrierManager::waiting(unsigned cta_slot) const {
  SS_DCHECK(cta_slot < ctas_.size());
  return ctas_[cta_slot].arrived;
}

}  // namespace swiftsim
