#include "core/ldst_unit.h"

#include "common/status.h"

namespace swiftsim {

LdstUnit::LdstUnit(const LdstUnitConfig& cfg, SmId sm, std::uint64_t instance,
                   SectorCache* l1, WritebackFn writeback)
    : cfg_(cfg), sm_(sm), instance_tag_(instance + 1), l1_(l1),
      writeback_(std::move(writeback)), smem_conflicts_(cfg.smem_banks),
      pool_(cfg.queue_depth) {
  SS_CHECK(writeback_ != nullptr, "LdstUnit needs a writeback callback");
  SS_CHECK(cfg_.queue_depth > 0, "LdstUnit needs at least one queue slot");
  for (unsigned i = 0; i < cfg_.queue_depth; ++i) {
    pool_[i].next = i + 1 < cfg_.queue_depth ? static_cast<int>(i + 1) : kNil;
  }
  free_ = 0;
  // Worst case per live load: every coalesced access outstanding at once.
  by_id_.Reserve(static_cast<std::size_t>(cfg_.queue_depth) * 2 * kWarpSize);
  fixed_completions_.Reserve(cfg_.queue_depth);
}

int LdstUnit::AllocSlot() {
  SS_DCHECK(free_ != kNil);
  const int idx = free_;
  MemInstr& mi = pool_[idx];
  free_ = mi.next;
  mi.prev = tail_;
  mi.next = kNil;
  if (tail_ != kNil) pool_[tail_].next = idx;
  tail_ = idx;
  if (head_ == kNil) head_ = idx;
  ++live_count_;
  return idx;
}

void LdstUnit::FreeSlot(int idx) {
  MemInstr& mi = pool_[idx];
  if (mi.prev != kNil) pool_[mi.prev].next = mi.next;
  if (mi.next != kNil) pool_[mi.next].prev = mi.prev;
  if (head_ == idx) head_ = mi.next;
  if (tail_ == idx) tail_ = mi.prev;
  mi.todo.clear();  // keeps capacity
  mi.outstanding = 0;
  mi.prev = kNil;
  mi.next = free_;
  free_ = idx;
  --live_count_;
}

bool LdstUnit::CanAccept(Cycle now) const {
  if (now < next_issue_) return false;
  return live_count_ + fixed_completions_.size() < cfg_.queue_depth;
}

void LdstUnit::PushFixed(Cycle ready, unsigned slot, std::uint8_t dst) {
  std::size_t pos = fixed_completions_.size();
  while (pos > 0 && fixed_completions_[pos - 1].ready > ready) --pos;
  fixed_completions_.insert(pos, FixedCompletion{ready, slot, dst});
}

void LdstUnit::Issue(unsigned slot, const CompactInstr& ins,
                     const LaneAddrs& addrs, Cycle now) {
  SS_DCHECK(CanAccept(now));
  SS_DCHECK(IsMemory(ins.op));
  next_issue_ = now + cfg_.issue_interval;
  ++stats_.mem_instrs;

  if (IsSharedMem(ins.op)) {
    ++stats_.smem_instrs;
    const unsigned conflicts = smem_conflicts_.Conflicts(addrs);
    stats_.smem_bank_conflicts += conflicts - 1;
    const std::uint8_t dst = IsLoad(ins.op) ? ins.dst : kNoReg;
    PushFixed(now + cfg_.smem_latency + conflicts - 1, slot, dst);
    return;
  }
  if (ins.op == Opcode::kLdConst) {
    PushFixed(now + cfg_.const_latency, slot, ins.dst);
    return;
  }

  // Global memory.
  MemInstr& mi = pool_[AllocSlot()];
  mi.slot = slot;
  mi.dst = IsLoad(ins.op) ? ins.dst : kNoReg;
  mi.is_store = IsStore(ins.op);
  Coalesce(addrs.data(), addrs.size(), cfg_.access_bytes,
           cfg_.line_bytes, cfg_.sector_bytes, &mi.todo);
  SS_DCHECK(!mi.todo.empty());
  ++pending_inject_;
}

void LdstUnit::Complete(const MemInstr& mi) { writeback_(mi.slot, mi.dst); }

void LdstUnit::Tick(Cycle now) {
  // Retire fixed-latency (shared/const) completions.
  while (!fixed_completions_.empty() &&
         fixed_completions_.front().ready <= now) {
    const FixedCompletion fc = fixed_completions_.front();
    fixed_completions_.pop_front();
    writeback_(fc.slot, fc.dst);
  }

  // Find the front instruction that still has accesses to inject (skip
  // loads that are merely waiting for responses). The counter makes the
  // common nothing-to-inject cycle O(1).
  blocked_ = CacheReject::kNone;
  if (pending_inject_ == 0) return;
  int front = head_;
  while (front != kNil && pool_[front].todo.empty()) front = pool_[front].next;
  SS_DCHECK(front != kNil);

  MemInstr& fi = pool_[front];
  unsigned budget = cfg_.accesses_per_cycle;
  while (budget > 0 && !fi.todo.empty()) {
    const CoalescedAccess& acc = fi.todo.back();
    MemRequest req;
    req.line_addr = acc.line_addr;
    req.sector_mask = acc.sector_mask;
    req.type = fi.is_store ? MemAccessType::kStore : MemAccessType::kLoad;
    req.sm = sm_;
    if (!fi.is_store) {
      req.id = (instance_tag_ << 20) | (++next_id_ & 0xfffff);
    }
    if (!l1_->Access(req, now, &blocked_)) {
      ++stats_.l1_rejections;
      break;  // bank/MSHR/queue pressure: retry next cycle
    }
    ++stats_.global_accesses;
    if (!fi.is_store) {
      ++fi.outstanding;
      by_id_[req.id] = static_cast<std::uint32_t>(front);
    }
    fi.todo.pop_back();
    if (fi.todo.empty()) --pending_inject_;
    --budget;
  }

  if (fi.todo.empty() && fi.is_store) {
    // Stores are fire-and-forget once fully accepted by the L1.
    Complete(fi);
    FreeSlot(front);
  }
  // Loads stay pooled until their last response arrives.
}

void LdstUnit::OnL1Response(const MemResponse& resp, Cycle) {
  const std::uint32_t* found = by_id_.Find(resp.id);
  SS_CHECK(found != nullptr, "LdstUnit: response for unknown request id");
  const int idx = static_cast<int>(*found);
  by_id_.erase(resp.id);
  MemInstr& mi = pool_[idx];
  SS_DCHECK(mi.outstanding > 0);
  --mi.outstanding;
  if (mi.outstanding == 0 && mi.todo.empty()) {
    Complete(mi);
    FreeSlot(idx);
  }
}

}  // namespace swiftsim
