#include "core/ldst_unit.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

LdstUnit::LdstUnit(const LdstUnitConfig& cfg, SmId sm, std::uint64_t instance,
                   SectorCache* l1, WritebackFn writeback)
    : cfg_(cfg), sm_(sm), instance_tag_(instance + 1), l1_(l1),
      writeback_(std::move(writeback)) {
  SS_CHECK(writeback_ != nullptr, "LdstUnit needs a writeback callback");
}

bool LdstUnit::CanAccept(Cycle now) const {
  if (now < next_issue_) return false;
  return live_.size() + fixed_completions_.size() < cfg_.queue_depth;
}

unsigned LdstUnit::SmemConflicts(const TraceInstr& ins) const {
  // Count distinct words per shared-memory bank; the worst bank serializes.
  unsigned worst = 1;
  std::vector<std::vector<Addr>> per_bank(cfg_.smem_banks);
  for (Addr a : ins.addrs) {
    const Addr word = a / 4;
    auto& v = per_bank[word % cfg_.smem_banks];
    if (std::find(v.begin(), v.end(), word) == v.end()) v.push_back(word);
  }
  for (const auto& v : per_bank) {
    worst = std::max<unsigned>(worst,
                               std::max<std::size_t>(v.size(), 1));
  }
  return worst;
}

void LdstUnit::PushFixed(Cycle ready, unsigned slot, std::uint8_t dst) {
  FixedCompletion fc{ready, slot, dst};
  auto it = fixed_completions_.end();
  while (it != fixed_completions_.begin() && (it - 1)->ready > ready) --it;
  fixed_completions_.insert(it, fc);
}

void LdstUnit::Issue(unsigned slot, const TraceInstr& ins, Cycle now) {
  SS_DCHECK(CanAccept(now));
  SS_DCHECK(IsMemory(ins.op));
  next_issue_ = now + cfg_.issue_interval;
  ++stats_.mem_instrs;

  if (IsSharedMem(ins.op)) {
    ++stats_.smem_instrs;
    const unsigned conflicts = SmemConflicts(ins);
    stats_.smem_bank_conflicts += conflicts - 1;
    const std::uint8_t dst = IsLoad(ins.op) ? ins.dst : kNoReg;
    PushFixed(now + cfg_.smem_latency + conflicts - 1, slot, dst);
    return;
  }
  if (ins.op == Opcode::kLdConst) {
    PushFixed(now + cfg_.const_latency, slot, ins.dst);
    return;
  }

  // Global memory.
  MemInstr mi;
  mi.slot = slot;
  mi.dst = IsLoad(ins.op) ? ins.dst : kNoReg;
  mi.is_store = IsStore(ins.op);
  mi.todo = Coalesce(ins.addrs, cfg_.access_bytes, cfg_.line_bytes,
                     cfg_.sector_bytes);
  SS_DCHECK(!mi.todo.empty());
  live_.push_back(std::move(mi));
}

void LdstUnit::Complete(const MemInstr& mi) { writeback_(mi.slot, mi.dst); }

void LdstUnit::Tick(Cycle now) {
  // Retire fixed-latency (shared/const) completions.
  while (!fixed_completions_.empty() &&
         fixed_completions_.front().ready <= now) {
    const FixedCompletion fc = fixed_completions_.front();
    fixed_completions_.pop_front();
    writeback_(fc.slot, fc.dst);
  }

  // Find the front instruction that still has accesses to inject (skip
  // loads that are merely waiting for responses).
  auto front = live_.begin();
  while (front != live_.end() && front->todo.empty()) ++front;
  if (front == live_.end()) return;

  unsigned budget = cfg_.accesses_per_cycle;
  while (budget > 0 && !front->todo.empty()) {
    const CoalescedAccess& acc = front->todo.back();
    MemRequest req;
    req.line_addr = acc.line_addr;
    req.sector_mask = acc.sector_mask;
    req.type = front->is_store ? MemAccessType::kStore : MemAccessType::kLoad;
    req.sm = sm_;
    if (!front->is_store) {
      req.id = (instance_tag_ << 20) | (++next_id_ & 0xfffff);
    }
    if (!l1_->Access(req, now)) {
      ++stats_.l1_rejections;
      break;  // bank/MSHR/queue pressure: retry next cycle
    }
    ++stats_.global_accesses;
    if (!front->is_store) {
      ++front->outstanding;
      by_id_[req.id] = front;
    }
    front->todo.pop_back();
    --budget;
  }

  if (front->todo.empty()) {
    if (front->is_store) {
      // Stores are fire-and-forget once fully accepted by the L1.
      Complete(*front);
      live_.erase(front);
    }
    // Loads stay in live_ until their last response arrives.
  }
}

void LdstUnit::OnL1Response(const MemResponse& resp, Cycle) {
  auto it = by_id_.find(resp.id);
  SS_CHECK(it != by_id_.end(),
           "LdstUnit: response for unknown request id");
  auto mi = it->second;
  by_id_.erase(it);
  SS_DCHECK(mi->outstanding > 0);
  --mi->outstanding;
  if (mi->outstanding == 0 && mi->todo.empty()) {
    Complete(*mi);
    live_.erase(mi);
  }
}

}  // namespace swiftsim
