#include "core/cta_allocator.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

CtaAllocator::CtaAllocator(const GpuConfig& cfg)
    : cfg_(cfg), in_use_(cfg.max_ctas_per_sm, 0) {}

namespace {
std::uint64_t RegsOf(const KernelInfo& k) {
  return static_cast<std::uint64_t>(k.threads_per_cta) * k.regs_per_thread;
}
}  // namespace

bool CtaAllocator::Feasible(const KernelInfo& k) const {
  return k.warps_per_cta <= cfg_.max_warps_per_sm &&
         k.threads_per_cta <= cfg_.max_threads_per_sm &&
         RegsOf(k) <= cfg_.registers_per_sm &&
         k.smem_bytes_per_cta <= cfg_.shared_mem_per_sm;
}

bool CtaAllocator::CanAllocate(const KernelInfo& k) const {
  return resident_ < in_use_.size() &&
         used_warps_ + k.warps_per_cta <= cfg_.max_warps_per_sm &&
         used_threads_ + k.threads_per_cta <= cfg_.max_threads_per_sm &&
         used_regs_ + RegsOf(k) <= cfg_.registers_per_sm &&
         used_smem_ + k.smem_bytes_per_cta <= cfg_.shared_mem_per_sm;
}

unsigned CtaAllocator::Allocate(const KernelInfo& k) {
  SS_DCHECK(CanAllocate(k));
  for (unsigned slot = 0; slot < in_use_.size(); ++slot) {
    if (!in_use_[slot]) {
      in_use_[slot] = 1;
      ++resident_;
      used_warps_ += k.warps_per_cta;
      used_threads_ += k.threads_per_cta;
      used_regs_ += RegsOf(k);
      used_smem_ += k.smem_bytes_per_cta;
      return slot;
    }
  }
  throw SimError("CtaAllocator: no free CTA slot despite CanAllocate");
}

void CtaAllocator::Release(unsigned cta_slot, const KernelInfo& k) {
  SS_DCHECK(cta_slot < in_use_.size() && in_use_[cta_slot]);
  in_use_[cta_slot] = 0;
  SS_DCHECK(resident_ > 0);
  --resident_;
  used_warps_ -= k.warps_per_cta;
  used_threads_ -= k.threads_per_cta;
  used_regs_ -= RegsOf(k);
  used_smem_ -= k.smem_bytes_per_cta;
}

unsigned CtaAllocator::MaxConcurrent(const KernelInfo& k) const {
  if (!Feasible(k)) return 0;
  unsigned lim = static_cast<unsigned>(in_use_.size());
  lim = std::min(lim, cfg_.max_warps_per_sm / k.warps_per_cta);
  lim = std::min(lim, cfg_.max_threads_per_sm / k.threads_per_cta);
  if (RegsOf(k) > 0) {
    lim = std::min(lim,
                   static_cast<unsigned>(cfg_.registers_per_sm / RegsOf(k)));
  }
  if (k.smem_bytes_per_cta > 0) {
    lim = std::min(lim, static_cast<unsigned>(cfg_.shared_mem_per_sm /
                                              k.smem_bytes_per_cta));
  }
  return lim;
}

}  // namespace swiftsim
