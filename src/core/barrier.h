// CTA barrier bookkeeping: warps arriving at BAR.SYNC block until every
// live warp of the CTA has arrived, then all release together.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace swiftsim {

class BarrierManager {
 public:
  explicit BarrierManager(unsigned max_cta_slots);

  /// Initializes a CTA slot with its warp count.
  void InitCta(unsigned cta_slot, unsigned num_warps);

  /// Warp arrives at a barrier. Returns true when this arrival releases
  /// the barrier (the caller wakes all the CTA's warps, including this
  /// one). Returns false when the warp must block.
  bool Arrive(unsigned cta_slot);

  /// A warp exited; exited warps no longer participate in barriers.
  /// Returns true if the exit releases a barrier the remaining warps were
  /// waiting on.
  bool OnWarpExit(unsigned cta_slot);

  unsigned waiting(unsigned cta_slot) const;

 private:
  struct CtaBarrier {
    unsigned live_warps = 0;
    unsigned arrived = 0;
  };
  std::vector<CtaBarrier> ctas_;
};

}  // namespace swiftsim
