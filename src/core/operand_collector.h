// Operand collector + register-file bank model (detailed/cycle-accurate
// mode only). Issued ALU instructions occupy a collector unit while their
// source operands are read from the banked register file — one read per
// bank per cycle, arbitrated across collector units — then dispatch to
// their execution pipeline. This per-cycle arbitration is exactly the kind
// of detailed component state Accel-Sim updates every cycle and the hybrid
// analytical ALU model (paper Fig. 3) eliminates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_vec.h"
#include "common/ring_buffer.h"
#include "common/types.h"
#include "trace/instr.h"
#include "trace/isa.h"

namespace swiftsim {

struct OperandCollectorConfig {
  unsigned units = 4;           // collector units per sub-core
  unsigned banks = 8;           // register-file banks per sub-core
  unsigned ports_per_bank = 1;  // reads serviced per bank per cycle
};

/// An instruction whose operands are all collected, ready for dispatch.
struct CollectedOp {
  unsigned slot = 0;
  std::uint8_t dst = kNoReg;
  UnitClass cls = UnitClass::kInt;
};

class OperandCollector {
 public:
  explicit OperandCollector(const OperandCollectorConfig& cfg);

  bool CanAccept() const { return free_units_ > 0; }

  /// Parks the instruction in a collector unit; its source registers
  /// become outstanding bank reads. Requires CanAccept.
  void Accept(unsigned slot, const CompactInstr& ins, UnitClass cls);

  /// One cycle of bank arbitration: each bank services up to
  /// ports_per_bank pending reads; units whose reads all completed move to
  /// ready().
  void Tick(Cycle now);

  RingBuffer<CollectedOp>& ready() { return ready_; }

  /// NextWakeCycle contract: a busy collector arbitrates banks every
  /// cycle and must be ticked per-cycle; an idle one contributes no wake
  /// event (its Tick is a no-op).
  bool busy() const {
    return free_units_ < static_cast<unsigned>(units_.size()) ||
           !ready_.empty();
  }

  std::uint64_t bank_conflict_cycles() const { return conflict_cycles_; }

 private:
  struct Unit {
    bool valid = false;
    CollectedOp op;
    // Source registers left; an instruction has at most 3 sources, so the
    // storage is always inline. Erase order is load-bearing for bank
    // arbitration — keep it ordered.
    InlineVec<std::uint8_t, 3> pending_reads;
  };

  OperandCollectorConfig cfg_;
  std::vector<Unit> units_;
  unsigned free_units_;
  RingBuffer<CollectedOp> ready_;
  std::vector<std::uint8_t> bank_used_;  // per-cycle port budget scratch
  std::uint64_t conflict_cycles_ = 0;
};

}  // namespace swiftsim
