// Per-warp register scoreboard: a register is "pending" from issue of the
// producing instruction until its writeback. Issue of any instruction
// reading or writing a pending register is blocked (RAW and WAW).
#pragma once

#include <bitset>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "trace/instr.h"

namespace swiftsim {

class Scoreboard {
 public:
  explicit Scoreboard(unsigned num_warp_slots);

  /// True iff none of the instruction's source or destination registers is
  /// pending for warp slot `slot`.
  bool CanIssue(unsigned slot, const CompactInstr& ins) const;

  /// Marks the destination register pending (no-op for instructions
  /// without a destination).
  void OnIssue(unsigned slot, const CompactInstr& ins);

  /// Clears a pending destination at writeback.
  void OnWriteback(unsigned slot, std::uint8_t reg);

  /// Drops all pending state for a slot (warp slot reuse).
  void Reset(unsigned slot);

  unsigned PendingCount(unsigned slot) const;

 private:
  std::vector<std::bitset<256>> pending_;
};

}  // namespace swiftsim
