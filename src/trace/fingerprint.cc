#include "trace/fingerprint.h"

#include <cstdio>

#include "common/bitutil.h"

namespace swiftsim {

std::string Fingerprint::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

std::uint64_t Fingerprint::Fold() const {
  return HashMix(hi ^ HashMix(lo));
}

void FpHasher::Mix(std::uint64_t v) {
  ++count_;
  hi_ = HashMix(hi_ ^ (v + 0x9e3779b97f4a7c15ull));
  lo_ = HashMix(lo_ + v * 0xff51afd7ed558ccdull + 0x2545f4914f6cdd1dull);
}

void FpHasher::MixString(const std::string& s) {
  Mix(s.size());
  std::uint64_t word = 0;
  unsigned shift = 0;
  for (const char c : s) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << shift;
    shift += 8;
    if (shift == 64) {
      Mix(word);
      word = 0;
      shift = 0;
    }
  }
  if (shift != 0) Mix(word);
}

Fingerprint FpHasher::Digest() const {
  Fingerprint fp;
  fp.hi = HashMix(hi_ ^ count_);
  fp.lo = HashMix(lo_ + count_);
  return fp;
}

namespace {

// Mixes the same word sequence the AoS representation produced, so
// fingerprints (and everything memoized under them) survive the columnar
// refactor unchanged: pc widens losslessly from 32 bits, and the decoded
// lane addresses reproduce the original addrs vector.
void MixInstr(FpHasher& h, const CompactInstr& ins, const LaneAddrs& addrs) {
  h.Mix(ins.pc);
  h.Mix(static_cast<std::uint64_t>(ins.op) |
        (static_cast<std::uint64_t>(ins.dst) << 16) |
        (static_cast<std::uint64_t>(ins.src[0]) << 24) |
        (static_cast<std::uint64_t>(ins.src[1]) << 32) |
        (static_cast<std::uint64_t>(ins.src[2]) << 40));
  h.Mix(ins.active);
  h.Mix(addrs.size());
  for (const Addr a : addrs) h.Mix(a);
}

}  // namespace

Fingerprint FingerprintKernel(const KernelTrace& kernel) {
  FpHasher h;
  const KernelInfo& info = kernel.info();
  h.MixString(info.name);
  h.Mix(info.id);
  h.Mix(info.num_ctas);
  h.Mix(info.warps_per_cta);
  h.Mix(info.threads_per_cta);
  h.Mix(info.smem_bytes_per_cta);
  h.Mix(info.regs_per_thread);
  h.Mix(kernel.num_variants());
  for (std::size_t v = 0; v < kernel.num_variants(); ++v) {
    const CtaTrace& cta = kernel.variant(v);
    h.Mix(cta.warps.size());
    for (const WarpTrace& w : cta.warps) {
      h.Mix(w.size());
      WarpCursor cur(w);
      LaneAddrs addrs;
      while (!cur.done()) MixInstr(h, cur.Next(&addrs), addrs);
    }
  }
  return h.Digest();
}

Fingerprint FingerprintApplication(const Application& app) {
  FpHasher h;
  h.Mix(app.kernels.size());
  for (const auto& kernel : app.kernels) {
    const Fingerprint fp = FingerprintKernel(*kernel);
    h.Mix(fp.hi);
    h.Mix(fp.lo);
  }
  return h.Digest();
}

}  // namespace swiftsim
