#include "trace/trace_stats.h"

#include <sstream>
#include <unordered_set>

#include "common/bitutil.h"

namespace swiftsim {

TraceStats ComputeTraceStats(const TraceSource& src) {
  TraceStats st;
  std::unordered_set<Addr> lines;
  std::unordered_set<Pc> pcs;
  const unsigned line_bytes = 128;
  for (CtaId c = 0; c < src.info().num_ctas; ++c) {
    const CtaTrace& cta = src.cta(c);
    st.warps += cta.warps.size();
    for (const WarpTrace& warp : cta.warps) {
      WarpCursor cur(warp);
      LaneAddrs addrs;
      while (!cur.done()) {
        const CompactInstr& ins = cur.Next(&addrs);
        ++st.dynamic_instrs;
        ++st.per_opcode[static_cast<std::uint8_t>(ins.op)];
        pcs.insert(static_cast<Pc>(ins.pc));
        const unsigned lanes = ins.num_active();
        st.total_active_lanes += lanes;
        if (lanes == kWarpSize) {
          ++st.fully_active_instrs;
        } else {
          ++st.divergent_instrs;
        }
        if (IsMemory(ins.op)) {
          ++st.mem_instrs;
          if (IsGlobalMem(ins.op)) {
            ++st.global_mem_instrs;
            for (Addr a : addrs) lines.insert(AlignDown(a, line_bytes));
          }
          if (IsSharedMem(ins.op)) ++st.shared_mem_instrs;
        }
        if (IsBarrier(ins.op)) ++st.barriers;
      }
    }
  }
  st.distinct_lines_touched = lines.size();
  st.distinct_pcs = pcs.size();
  return st;
}

std::string TraceStats::ToString() const {
  std::ostringstream os;
  os << "instrs=" << dynamic_instrs << " warps=" << warps
     << " mem=" << mem_instrs << " (global=" << global_mem_instrs
     << " shared=" << shared_mem_instrs << ")"
     << " barriers=" << barriers << " divergent=" << divergent_instrs
     << " avg_lanes=" << avg_active_lanes()
     << " lines=" << distinct_lines_touched << " pcs=" << distinct_pcs;
  return os.str();
}

}  // namespace swiftsim
