// The virtual trace ISA.
//
// Traces are architecture-independent (paper §III-A): they record *what* a
// kernel did (opcode class, register dataflow, active mask, memory
// addresses), not how any particular GPU executed it. This small virtual
// ISA captures exactly the information the performance model consumes.
#pragma once

#include <cstdint>
#include <string_view>

namespace swiftsim {

enum class Opcode : std::uint8_t {
  // Integer pipeline.
  kIAdd,
  kIMul,
  kIMad,
  kISetp,   // predicate-setting compare
  kBra,     // branch; executes on the INT pipe, no destination register
  // FP32 pipeline.
  kFAdd,
  kFMul,
  kFFma,
  // FP64 pipeline.
  kDAdd,
  kDFma,
  // Special-function unit.
  kRcp,
  kRsqrt,
  kSin,
  kExp,
  // Tensor core.
  kHmma,
  // Memory.
  kLdGlobal,
  kStGlobal,
  kLdShared,
  kStShared,
  kLdConst,
  // Control.
  kBarSync,
  kExit,
};

inline constexpr std::uint8_t kNumOpcodes =
    static_cast<std::uint8_t>(Opcode::kExit) + 1;

/// The execution-unit class an opcode dispatches to.
enum class UnitClass : std::uint8_t {
  kInt,
  kSp,
  kDp,
  kSfu,
  kTensor,
  kLdSt,
  kControl,  // BAR.SYNC / EXIT: handled by the scheduler, no unit
};

UnitClass ClassOf(Opcode op);

bool IsMemory(Opcode op);       // any LD/ST/const
bool IsLoad(Opcode op);
bool IsStore(Opcode op);
bool IsGlobalMem(Opcode op);    // LDG/STG (goes through L1/L2/DRAM)
bool IsSharedMem(Opcode op);
bool IsBarrier(Opcode op);
bool IsExit(Opcode op);

/// Stable mnemonic, e.g. "FFMA", "LDG". Round-trips with OpcodeFromName.
std::string_view Name(Opcode op);

/// Parses a mnemonic; throws SimError on unknown names.
Opcode OpcodeFromName(std::string_view name);

}  // namespace swiftsim
