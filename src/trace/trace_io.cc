#include "trace/trace_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/status.h"
#include "common/strutil.h"

namespace swiftsim {

namespace {

// Plausibility bound on file-supplied element counts: large enough for any
// real trace (64M dynamic instructions per warp), small enough that a
// corrupted count is rejected before it turns into an allocation failure.
constexpr std::uint64_t kMaxWarpInstrs = 1ull << 26;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

void WriteInstr(const TraceInstr& ins, std::ostream& os) {
  os << "i " << std::hex << ins.pc << std::dec << " " << Name(ins.op);
  os << " d=";
  if (ins.has_dst()) {
    os << static_cast<unsigned>(ins.dst);
  } else {
    os << "-";
  }
  os << " s=";
  bool any = false;
  for (std::uint8_t r : ins.src) {
    if (r == kNoReg) continue;
    if (any) os << ",";
    os << static_cast<unsigned>(r);
    any = true;
  }
  if (!any) os << "-";
  os << " m=" << std::hex << ins.active << std::dec;
  if (!ins.addrs.empty()) {
    os << " a=" << std::hex;
    for (std::size_t i = 0; i < ins.addrs.size(); ++i) {
      if (i) os << ",";
      os << ins.addrs[i];
    }
    os << std::dec;
  }
  os << "\n";
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty line; returns false at EOF.
  bool Next(std::string* out) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      std::string_view t = Trim(line);
      if (t.empty() || t.front() == '#') continue;
      *out = std::string(t);
      return true;
    }
    return false;
  }

  [[noreturn]] void Fail(const std::string& msg) const {
    throw SimError("trace parse error at line " + std::to_string(line_no_) +
                   ": " + msg);
  }

  std::size_t line_no() const { return line_no_; }

 private:
  std::istream& is_;
  std::size_t line_no_ = 0;
};

/// Parses "key=value" tokens from a header line into a map-like lookup.
struct KvList {
  std::vector<std::pair<std::string, std::string>> kvs;

  std::string Get(const std::string& key, const LineReader& r) const {
    for (const auto& [k, v] : kvs) {
      if (k == key) return v;
    }
    throw SimError("trace parse error at line " + std::to_string(r.line_no()) +
                   ": missing header field '" + key + "'");
  }
};

KvList ParseKvs(const std::vector<std::string>& tokens, std::size_t first) {
  KvList out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) continue;
    out.kvs.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
  }
  return out;
}

std::uint64_t ParseHex(std::string_view s, LineReader& r) {
  std::uint64_t v = 0;
  if (s.empty()) r.Fail("empty hex field");
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      r.Fail("bad hex digit in '" + std::string(s) + "'");
    }
  }
  return v;
}

TraceInstr ParseInstr(const std::vector<std::string>& tok, LineReader& r) {
  // i <pc> <OP> d=.. s=.. m=.. [a=..]
  if (tok.size() < 6) r.Fail("instruction line has too few fields");
  TraceInstr ins;
  ins.pc = ParseHex(tok[1], r);
  ins.op = OpcodeFromName(tok[2]);
  for (std::size_t i = 3; i < tok.size(); ++i) {
    const std::string& t = tok[i];
    if (StartsWith(t, "d=")) {
      const std::string v = t.substr(2);
      ins.dst = (v == "-") ? kNoReg
                           : static_cast<std::uint8_t>(ParseUint(v, "dst reg"));
    } else if (StartsWith(t, "s=")) {
      const std::string v = t.substr(2);
      if (v != "-") {
        const auto regs = Split(v, ',');
        if (regs.size() > ins.src.size()) r.Fail("too many source registers");
        for (std::size_t j = 0; j < regs.size(); ++j) {
          ins.src[j] = static_cast<std::uint8_t>(ParseUint(regs[j], "src reg"));
        }
      }
    } else if (StartsWith(t, "m=")) {
      ins.active = static_cast<LaneMask>(ParseHex(t.substr(2), r));
    } else if (StartsWith(t, "a=")) {
      for (const auto& a : Split(t.substr(2), ',')) {
        ins.addrs.push_back(ParseHex(a, r));
      }
    } else {
      r.Fail("unknown instruction field '" + t + "'");
    }
  }
  if (ins.active == 0) r.Fail("instruction with empty active mask");
  if (IsMemory(ins.op)) {
    if (ins.addrs.size() != ins.num_active()) {
      r.Fail("memory instruction address count does not match active lanes");
    }
  } else if (!ins.addrs.empty()) {
    r.Fail("non-memory instruction carries addresses");
  }
  return ins;
}

std::shared_ptr<KernelTrace> ReadKernelBody(LineReader& r,
                                            const std::string& header) {
  const auto tok = SplitWs(header);
  if (tok.size() < 2 || tok[0] != "kernel") r.Fail("expected kernel header");
  KernelInfo info;
  info.name = tok[1];
  const KvList kv = ParseKvs(tok, 2);
  info.id = static_cast<KernelId>(ParseUint(kv.Get("id", r), "kernel id"));
  info.num_ctas =
      static_cast<std::uint32_t>(ParseUint(kv.Get("ctas", r), "ctas"));
  info.warps_per_cta = static_cast<std::uint32_t>(
      ParseUint(kv.Get("warps_per_cta", r), "warps_per_cta"));
  info.threads_per_cta = static_cast<std::uint32_t>(
      ParseUint(kv.Get("threads_per_cta", r), "threads_per_cta"));
  info.smem_bytes_per_cta =
      static_cast<std::uint32_t>(ParseUint(kv.Get("smem", r), "smem"));
  info.regs_per_thread =
      static_cast<std::uint32_t>(ParseUint(kv.Get("regs", r), "regs"));
  const auto num_variants = ParseUint(kv.Get("variants", r), "variants");

  std::vector<CtaTrace> variants;
  std::string line;
  for (std::uint64_t v = 0; v < num_variants; ++v) {
    if (!r.Next(&line)) r.Fail("unexpected EOF before variant");
    auto vt = SplitWs(line);
    if (vt.size() != 2 || vt[0] != "variant") r.Fail("expected variant header");
    CtaTrace cta;
    for (std::uint32_t w = 0; w < info.warps_per_cta; ++w) {
      if (!r.Next(&line)) r.Fail("unexpected EOF before warp");
      auto wt = SplitWs(line);
      if (wt.size() < 2 || wt[0] != "warp") r.Fail("expected warp header");
      const KvList wkv = ParseKvs(wt, 2);
      const auto n = ParseUint(wkv.Get("n", r), "warp instr count");
      // Cap before reserve: a corrupted count must fail as a parse error,
      // not as std::length_error / OOM from a 2^60-element reservation.
      if (n > kMaxWarpInstrs) {
        r.Fail("warp instr count " + std::to_string(n) +
               " exceeds the per-warp limit of " +
               std::to_string(kMaxWarpInstrs));
      }
      WarpTrace warp;
      warp.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!r.Next(&line)) r.Fail("unexpected EOF inside warp");
        auto it = SplitWs(line);
        if (it.empty() || it[0] != "i") r.Fail("expected instruction line");
        warp.push_back(ParseInstr(it, r));
      }
      if (!r.Next(&line) || line != "end_warp") r.Fail("expected end_warp");
      cta.warps.push_back(std::move(warp));
    }
    if (!r.Next(&line) || line != "end_variant") {
      r.Fail("expected end_variant");
    }
    variants.push_back(std::move(cta));
  }
  if (!r.Next(&line) || line != "end_kernel") r.Fail("expected end_kernel");
  auto trace = std::make_shared<KernelTrace>(std::move(info),
                                             std::move(variants));
  trace->ValidateTrace();
  return trace;
}

}  // namespace

void WriteKernelTrace(const KernelTrace& trace, std::ostream& os) {
  const KernelInfo& k = trace.info();
  os << "kernel " << k.name << " id=" << k.id << " ctas=" << k.num_ctas
     << " warps_per_cta=" << k.warps_per_cta
     << " threads_per_cta=" << k.threads_per_cta
     << " smem=" << k.smem_bytes_per_cta << " regs=" << k.regs_per_thread
     << " variants=" << trace.num_variants() << "\n";
  for (std::size_t v = 0; v < trace.num_variants(); ++v) {
    os << "variant " << v << "\n";
    const CtaTrace& cta = trace.variant(v);
    for (std::size_t w = 0; w < cta.warps.size(); ++w) {
      os << "warp " << w << " n=" << cta.warps[w].size() << "\n";
      for (const TraceInstr& ins : cta.warps[w]) WriteInstr(ins, os);
      os << "end_warp\n";
    }
    os << "end_variant\n";
  }
  os << "end_kernel\n";
}

void WriteKernelTraceFile(const KernelTrace& trace, const std::string& path) {
  std::ofstream out(path);
  SS_CHECK(out.good(), "cannot open '" + path + "' for writing");
  WriteKernelTrace(trace, out);
  SS_CHECK(out.good(), "write to '" + path + "' failed");
}

std::shared_ptr<KernelTrace> ReadKernelTrace(std::istream& is) {
  LineReader r(is);
  std::string header;
  SS_CHECK(r.Next(&header), "empty trace input");
  return ReadKernelBody(r, header);
}

std::shared_ptr<KernelTrace> ReadKernelTraceFile(const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot open trace file '" + path + "'");
  return ReadKernelTrace(in);
}

void WriteApplication(const Application& app, std::ostream& os) {
  os << "application " << app.name << " kernels=" << app.kernels.size()
     << "\n";
  for (const auto& k : app.kernels) WriteKernelTrace(*k, os);
}

void WriteApplicationFile(const Application& app, const std::string& path) {
  std::ofstream out(path);
  SS_CHECK(out.good(), "cannot open '" + path + "' for writing");
  WriteApplication(app, out);
  SS_CHECK(out.good(), "write to '" + path + "' failed");
}

Application ReadApplication(std::istream& is) {
  LineReader r(is);
  std::string line;
  SS_CHECK(r.Next(&line), "empty application input");
  const auto tok = SplitWs(line);
  SS_CHECK(tok.size() >= 2 && tok[0] == "application",
           "expected application header");
  Application app;
  app.name = tok[1];
  const KvList kv = ParseKvs(tok, 2);
  const auto n = ParseUint(kv.Get("kernels", r), "kernel count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string header;
    if (!r.Next(&header)) r.Fail("unexpected EOF before kernel");
    app.kernels.push_back(ReadKernelBody(r, header));
  }
  return app;
}

Application ReadApplicationFile(const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot open application file '" + path + "'");
  return ReadApplication(in);
}

}  // namespace swiftsim
