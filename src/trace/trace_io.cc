#include "trace/trace_io.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include <unistd.h>

#include "common/status.h"
#include "common/strutil.h"

namespace swiftsim {

namespace {

// Plausibility bound on file-supplied element counts: large enough for any
// real trace (64M dynamic instructions per warp), small enough that a
// corrupted count is rejected before it turns into an allocation failure.
constexpr std::uint64_t kMaxWarpInstrs = 1ull << 26;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

void WriteInstr(const TraceInstr& ins, std::ostream& os) {
  os << "i " << std::hex << ins.pc << std::dec << " " << Name(ins.op);
  os << " d=";
  if (ins.has_dst()) {
    os << static_cast<unsigned>(ins.dst);
  } else {
    os << "-";
  }
  os << " s=";
  bool any = false;
  for (std::uint8_t r : ins.src) {
    if (r == kNoReg) continue;
    if (any) os << ",";
    os << static_cast<unsigned>(r);
    any = true;
  }
  if (!any) os << "-";
  os << " m=" << std::hex << ins.active << std::dec;
  if (!ins.addrs.empty()) {
    os << " a=" << std::hex;
    for (std::size_t i = 0; i < ins.addrs.size(); ++i) {
      if (i) os << ",";
      os << ins.addrs[i];
    }
    os << std::dec;
  }
  os << "\n";
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty line; returns false at EOF.
  bool Next(std::string* out) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      std::string_view t = Trim(line);
      if (t.empty() || t.front() == '#') continue;
      *out = std::string(t);
      return true;
    }
    return false;
  }

  [[noreturn]] void Fail(const std::string& msg) const {
    throw SimError("trace parse error at line " + std::to_string(line_no_) +
                   ": " + msg);
  }

  std::size_t line_no() const { return line_no_; }

 private:
  std::istream& is_;
  std::size_t line_no_ = 0;
};

/// Parses "key=value" tokens from a header line into a map-like lookup.
struct KvList {
  std::vector<std::pair<std::string, std::string>> kvs;

  std::string Get(const std::string& key, const LineReader& r) const {
    for (const auto& [k, v] : kvs) {
      if (k == key) return v;
    }
    throw SimError("trace parse error at line " + std::to_string(r.line_no()) +
                   ": missing header field '" + key + "'");
  }
};

KvList ParseKvs(const std::vector<std::string>& tokens, std::size_t first) {
  KvList out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) continue;
    out.kvs.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
  }
  return out;
}

std::uint64_t ParseHex(std::string_view s, LineReader& r) {
  std::uint64_t v = 0;
  if (s.empty()) r.Fail("empty hex field");
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      r.Fail("bad hex digit in '" + std::string(s) + "'");
    }
  }
  return v;
}

TraceInstr ParseInstr(const std::vector<std::string>& tok, LineReader& r) {
  // i <pc> <OP> d=.. s=.. m=.. [a=..]
  if (tok.size() < 6) r.Fail("instruction line has too few fields");
  TraceInstr ins;
  ins.pc = ParseHex(tok[1], r);
  ins.op = OpcodeFromName(tok[2]);
  for (std::size_t i = 3; i < tok.size(); ++i) {
    const std::string& t = tok[i];
    if (StartsWith(t, "d=")) {
      const std::string v = t.substr(2);
      ins.dst = (v == "-") ? kNoReg
                           : static_cast<std::uint8_t>(ParseUint(v, "dst reg"));
    } else if (StartsWith(t, "s=")) {
      const std::string v = t.substr(2);
      if (v != "-") {
        const auto regs = Split(v, ',');
        if (regs.size() > ins.src.size()) r.Fail("too many source registers");
        for (std::size_t j = 0; j < regs.size(); ++j) {
          ins.src[j] = static_cast<std::uint8_t>(ParseUint(regs[j], "src reg"));
        }
      }
    } else if (StartsWith(t, "m=")) {
      ins.active = static_cast<LaneMask>(ParseHex(t.substr(2), r));
    } else if (StartsWith(t, "a=")) {
      for (const auto& a : Split(t.substr(2), ',')) {
        ins.addrs.push_back(ParseHex(a, r));
      }
    } else {
      r.Fail("unknown instruction field '" + t + "'");
    }
  }
  if (ins.active == 0) r.Fail("instruction with empty active mask");
  if (IsMemory(ins.op)) {
    if (ins.addrs.size() != ins.num_active()) {
      r.Fail("memory instruction address count does not match active lanes");
    }
  } else if (!ins.addrs.empty()) {
    r.Fail("non-memory instruction carries addresses");
  }
  return ins;
}

std::shared_ptr<KernelTrace> ReadKernelBody(LineReader& r,
                                            const std::string& header) {
  const auto tok = SplitWs(header);
  if (tok.size() < 2 || tok[0] != "kernel") r.Fail("expected kernel header");
  KernelInfo info;
  info.name = tok[1];
  const KvList kv = ParseKvs(tok, 2);
  info.id = static_cast<KernelId>(ParseUint(kv.Get("id", r), "kernel id"));
  info.num_ctas =
      static_cast<std::uint32_t>(ParseUint(kv.Get("ctas", r), "ctas"));
  info.warps_per_cta = static_cast<std::uint32_t>(
      ParseUint(kv.Get("warps_per_cta", r), "warps_per_cta"));
  info.threads_per_cta = static_cast<std::uint32_t>(
      ParseUint(kv.Get("threads_per_cta", r), "threads_per_cta"));
  info.smem_bytes_per_cta =
      static_cast<std::uint32_t>(ParseUint(kv.Get("smem", r), "smem"));
  info.regs_per_thread =
      static_cast<std::uint32_t>(ParseUint(kv.Get("regs", r), "regs"));
  const auto num_variants = ParseUint(kv.Get("variants", r), "variants");

  std::vector<CtaTrace> variants;
  std::string line;
  for (std::uint64_t v = 0; v < num_variants; ++v) {
    if (!r.Next(&line)) r.Fail("unexpected EOF before variant");
    auto vt = SplitWs(line);
    if (vt.size() != 2 || vt[0] != "variant") r.Fail("expected variant header");
    CtaTrace cta;
    for (std::uint32_t w = 0; w < info.warps_per_cta; ++w) {
      if (!r.Next(&line)) r.Fail("unexpected EOF before warp");
      auto wt = SplitWs(line);
      if (wt.size() < 2 || wt[0] != "warp") r.Fail("expected warp header");
      const KvList wkv = ParseKvs(wt, 2);
      const auto n = ParseUint(wkv.Get("n", r), "warp instr count");
      // Cap before reserve: a corrupted count must fail as a parse error,
      // not as std::length_error / OOM from a 2^60-element reservation.
      if (n > kMaxWarpInstrs) {
        r.Fail("warp instr count " + std::to_string(n) +
               " exceeds the per-warp limit of " +
               std::to_string(kMaxWarpInstrs));
      }
      WarpTrace warp;
      warp.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!r.Next(&line)) r.Fail("unexpected EOF inside warp");
        auto it = SplitWs(line);
        if (it.empty() || it[0] != "i") r.Fail("expected instruction line");
        warp.push_back(ParseInstr(it, r));
      }
      if (!r.Next(&line) || line != "end_warp") r.Fail("expected end_warp");
      cta.warps.push_back(std::move(warp));
    }
    if (!r.Next(&line) || line != "end_variant") {
      r.Fail("expected end_variant");
    }
    variants.push_back(std::move(cta));
  }
  if (!r.Next(&line) || line != "end_kernel") r.Fail("expected end_kernel");
  auto trace = std::make_shared<KernelTrace>(std::move(info),
                                             std::move(variants));
  trace->ValidateTrace();
  return trace;
}

}  // namespace

void WriteKernelTrace(const KernelTrace& trace, std::ostream& os) {
  const KernelInfo& k = trace.info();
  os << "kernel " << k.name << " id=" << k.id << " ctas=" << k.num_ctas
     << " warps_per_cta=" << k.warps_per_cta
     << " threads_per_cta=" << k.threads_per_cta
     << " smem=" << k.smem_bytes_per_cta << " regs=" << k.regs_per_thread
     << " variants=" << trace.num_variants() << "\n";
  for (std::size_t v = 0; v < trace.num_variants(); ++v) {
    os << "variant " << v << "\n";
    const CtaTrace& cta = trace.variant(v);
    for (std::size_t w = 0; w < cta.warps.size(); ++w) {
      os << "warp " << w << " n=" << cta.warps[w].size() << "\n";
      WarpCursor cur(cta.warps[w]);
      while (!cur.done()) WriteInstr(cur.NextDecoded(), os);
      os << "end_warp\n";
    }
    os << "end_variant\n";
  }
  os << "end_kernel\n";
}

void WriteKernelTraceFile(const KernelTrace& trace, const std::string& path) {
  std::ofstream out(path);
  SS_CHECK(out.good(), "cannot open '" + path + "' for writing");
  WriteKernelTrace(trace, out);
  SS_CHECK(out.good(), "write to '" + path + "' failed");
}

std::shared_ptr<KernelTrace> ReadKernelTrace(std::istream& is) {
  LineReader r(is);
  std::string header;
  SS_CHECK(r.Next(&header), "empty trace input");
  return ReadKernelBody(r, header);
}

std::shared_ptr<KernelTrace> ReadKernelTraceFile(const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot open trace file '" + path + "'");
  return ReadKernelTrace(in);
}

void WriteApplication(const Application& app, std::ostream& os) {
  os << "application " << app.name << " kernels=" << app.kernels.size()
     << "\n";
  for (const auto& k : app.kernels) WriteKernelTrace(*k, os);
}

void WriteApplicationFile(const Application& app, const std::string& path) {
  std::ofstream out(path);
  SS_CHECK(out.good(), "cannot open '" + path + "' for writing");
  WriteApplication(app, out);
  SS_CHECK(out.good(), "write to '" + path + "' failed");
}

Application ReadApplication(std::istream& is) {
  LineReader r(is);
  std::string line;
  SS_CHECK(r.Next(&line), "empty application input");
  const auto tok = SplitWs(line);
  SS_CHECK(tok.size() >= 2 && tok[0] == "application",
           "expected application header");
  Application app;
  app.name = tok[1];
  const KvList kv = ParseKvs(tok, 2);
  const auto n = ParseUint(kv.Get("kernels", r), "kernel count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string header;
    if (!r.Next(&header)) r.Fail("unexpected EOF before kernel");
    app.kernels.push_back(ReadKernelBody(r, header));
  }
  return app;
}

Application ReadApplicationFile(const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot open application file '" + path + "'");
  return ReadApplication(in);
}

// ---------------------------------------------------------------------------
// Binary compact trace cache (DESIGN.md §14)
// ---------------------------------------------------------------------------
//
// Layout (little-endian, single-machine cache — not an interchange format):
//   "SSTC" magic | u32 version | u64 key.hi | u64 key.lo
//   str app name | u32 kernel count
//   per kernel:
//     str name | u64 id | u32 ctas, warps_per_cta, threads_per_cta,
//     u32 smem, regs | u32 variant count
//     per variant: u32 warp count
//       per warp: u64 records | u32 offsets | u64 pool bytes, then the
//       three columns raw.
// Strings are u32 length + bytes.

namespace {

constexpr char kCacheMagic[4] = {'S', 'S', 'T', 'C'};
constexpr std::uint64_t kMaxCacheStr = 4096;
constexpr std::uint64_t kMaxCacheKernels = 1u << 16;
constexpr std::uint64_t kMaxCacheVariants = 1u << 20;
constexpr std::uint64_t kMaxCacheWarps = 1u << 16;
constexpr std::uint64_t kMaxCachePoolBytes = 1ull << 32;

void PutRaw(std::ostream& os, const void* p, std::size_t n) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void PutU32(std::ostream& os, std::uint32_t v) { PutRaw(os, &v, sizeof v); }
void PutU64(std::ostream& os, std::uint64_t v) { PutRaw(os, &v, sizeof v); }

void PutStr(std::ostream& os, const std::string& s) {
  PutU32(os, static_cast<std::uint32_t>(s.size()));
  PutRaw(os, s.data(), s.size());
}

class CacheReader {
 public:
  CacheReader(std::istream& is, std::string path)
      : is_(is), path_(std::move(path)) {}

  [[noreturn]] void Fail(const std::string& msg) const {
    throw TraceCacheError("compact trace cache '" + path_ + "': " + msg);
  }

  void GetRaw(void* p, std::size_t n, const char* what) {
    is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is_.gcount()) != n) {
      Fail(std::string("truncated while reading ") + what);
    }
  }

  std::uint32_t GetU32(const char* what) {
    std::uint32_t v = 0;
    GetRaw(&v, sizeof v, what);
    return v;
  }

  std::uint64_t GetU64(const char* what) {
    std::uint64_t v = 0;
    GetRaw(&v, sizeof v, what);
    return v;
  }

  std::string GetStr(const char* what) {
    const std::uint32_t n = GetU32(what);
    if (n > kMaxCacheStr) Fail(std::string(what) + " length implausible");
    std::string s(n, '\0');
    if (n != 0) GetRaw(s.data(), n, what);
    return s;
  }

 private:
  std::istream& is_;
  std::string path_;
};

void WriteCompactWarp(std::ostream& os, const WarpTrace& w) {
  PutU64(os, w.records().size());
  PutU32(os, static_cast<std::uint32_t>(w.addr_offsets().size()));
  PutU64(os, w.addr_pool().size());
  PutRaw(os, w.records().data(), w.records().size() * sizeof(CompactInstr));
  PutRaw(os, w.addr_offsets().data(),
         w.addr_offsets().size() * sizeof(std::uint32_t));
  PutRaw(os, w.addr_pool().data(), w.addr_pool().size());
}

WarpTrace ReadCompactWarp(CacheReader& r) {
  const std::uint64_t n_rec = r.GetU64("warp record count");
  const std::uint32_t n_off = r.GetU32("warp offset count");
  const std::uint64_t n_pool = r.GetU64("warp pool size");
  if (n_rec > kMaxWarpInstrs) r.Fail("warp record count implausible");
  if (n_off > n_rec) r.Fail("more address entries than records");
  if (n_pool > kMaxCachePoolBytes) r.Fail("address pool size implausible");
  std::vector<CompactInstr> records(n_rec);
  std::vector<std::uint32_t> offsets(n_off);
  std::vector<std::uint8_t> pool(n_pool);
  if (n_rec) r.GetRaw(records.data(), n_rec * sizeof(CompactInstr), "records");
  if (n_off) {
    r.GetRaw(offsets.data(), n_off * sizeof(std::uint32_t), "offsets");
  }
  if (n_pool) r.GetRaw(pool.data(), n_pool, "address pool");
  for (const CompactInstr& rec : records) {
    if (static_cast<std::uint8_t>(rec.op) >= kNumOpcodes) {
      r.Fail("record carries an unknown opcode");
    }
  }
  try {
    // FromColumns re-checks flag/offset agreement and decodes every pool
    // entry — out-of-range offsets and truncated varints surface here.
    return WarpTrace::FromColumns(std::move(records), std::move(offsets),
                                  std::move(pool));
  } catch (const SimError& e) {
    r.Fail(e.what());
  }
}

}  // namespace

void WriteCompactApplication(const Application& app, const Fingerprint& key,
                             const std::string& path) {
  // Unique per process and call: concurrent writers of the same cache
  // entry (e.g. two service workers missing on the same trace) each write
  // their own temp file, and whoever renames last installs a complete one.
  static std::atomic<std::uint64_t> write_seq{0};
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << static_cast<long>(::getpid()) << "."
           << write_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmp_name.str();
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    SS_CHECK(os.good(), "cannot open '" + tmp + "' for writing");
    PutRaw(os, kCacheMagic, sizeof kCacheMagic);
    PutU32(os, kTraceCacheVersion);
    PutU64(os, key.hi);
    PutU64(os, key.lo);
    PutStr(os, app.name);
    PutU32(os, static_cast<std::uint32_t>(app.kernels.size()));
    for (const auto& kernel : app.kernels) {
      const KernelInfo& ki = kernel->info();
      PutStr(os, ki.name);
      PutU64(os, ki.id);
      PutU32(os, ki.num_ctas);
      PutU32(os, ki.warps_per_cta);
      PutU32(os, ki.threads_per_cta);
      PutU32(os, ki.smem_bytes_per_cta);
      PutU32(os, ki.regs_per_thread);
      PutU32(os, static_cast<std::uint32_t>(kernel->num_variants()));
      for (std::size_t v = 0; v < kernel->num_variants(); ++v) {
        const CtaTrace& cta = kernel->variant(v);
        PutU32(os, static_cast<std::uint32_t>(cta.warps.size()));
        for (const WarpTrace& w : cta.warps) WriteCompactWarp(os, w);
      }
    }
    SS_CHECK(os.good(), "write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    SS_CHECK(false, "rename '" + tmp + "' -> '" + path + "' failed");
  }
}

Application ReadCompactApplication(const std::string& path,
                                   const Fingerprint& key) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    throw TraceCacheError("compact trace cache '" + path + "': cannot open");
  }
  CacheReader r(is, path);
  char magic[4] = {};
  r.GetRaw(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kCacheMagic, sizeof magic) != 0) {
    r.Fail("bad magic (not a compact trace cache)");
  }
  const std::uint32_t version = r.GetU32("version");
  if (version != kTraceCacheVersion) {
    r.Fail("format version " + std::to_string(version) + " != expected " +
           std::to_string(kTraceCacheVersion));
  }
  Fingerprint got;
  got.hi = r.GetU64("cache key");
  got.lo = r.GetU64("cache key");
  if (got.hi != key.hi || got.lo != key.lo) {
    r.Fail("cache key mismatch: file has " + got.ToHex() + ", expected " +
           key.ToHex());
  }
  Application app;
  app.name = r.GetStr("application name");
  const std::uint32_t n_kernels = r.GetU32("kernel count");
  if (n_kernels > kMaxCacheKernels) r.Fail("kernel count implausible");
  for (std::uint32_t k = 0; k < n_kernels; ++k) {
    KernelInfo ki;
    ki.name = r.GetStr("kernel name");
    ki.id = static_cast<KernelId>(r.GetU64("kernel id"));
    ki.num_ctas = r.GetU32("cta count");
    ki.warps_per_cta = r.GetU32("warps per cta");
    ki.threads_per_cta = r.GetU32("threads per cta");
    ki.smem_bytes_per_cta = r.GetU32("smem bytes");
    ki.regs_per_thread = r.GetU32("regs per thread");
    const std::uint32_t n_variants = r.GetU32("variant count");
    if (n_variants == 0 || n_variants > kMaxCacheVariants) {
      r.Fail("variant count implausible");
    }
    std::vector<CtaTrace> variants;
    variants.reserve(n_variants);
    for (std::uint32_t v = 0; v < n_variants; ++v) {
      const std::uint32_t n_warps = r.GetU32("warp count");
      if (n_warps > kMaxCacheWarps) r.Fail("warp count implausible");
      CtaTrace cta;
      cta.warps.reserve(n_warps);
      for (std::uint32_t w = 0; w < n_warps; ++w) {
        cta.warps.push_back(ReadCompactWarp(r));
      }
      variants.push_back(std::move(cta));
    }
    try {
      auto trace = std::make_shared<KernelTrace>(std::move(ki),
                                                 std::move(variants));
      trace->ValidateTrace();
      app.kernels.push_back(std::move(trace));
    } catch (const TraceCacheError&) {
      throw;
    } catch (const SimError& e) {
      r.Fail(e.what());
    }
  }
  return app;
}

}  // namespace swiftsim
