// Importer for Accel-Sim-style kernel trace files (the format produced by
// the NVBit tracer the paper's Trace Parser consumes, §III-A). Supports
// the common subset of the format:
//
//   -kernel name = vecadd
//   -kernel id = 1
//   -grid dim = (16,1,1)
//   -block dim = (128,1,1)
//   -shmem = 0
//   -nregs = 16
//
//   #BEGIN_TB
//   thread block = 0,0,0
//   warp = 0
//   insts = 3
//   0008 ffffffff 1 R4 IMAD 2 R2 R3 0
//   0010 ffffffff 1 R5 LDG.E 1 R4 4 1 0x7f4300000000 4
//   0120 ffffffff 0 EXIT 0 0
//   #END_TB
//
// Instruction line grammar:
//   <pc-hex> <mask-hex> <ndest> {Rn} <OPCODE[.mods]> <nsrc> {Rn}
//   <mem_width> [<addr-mode> <addr fields...>]
// Address modes (Accel-Sim's compressed encodings):
//   0  explicit list: one hex address per active lane
//   1  base+stride:   <base-hex> <stride-dec>
//   2  base+deltas:   <base-hex> then one signed delta per remaining lane
//
// SASS opcodes are mapped onto the virtual trace ISA by their leading
// mnemonic; unknown arithmetic opcodes conservatively map to the INT
// pipeline (a warning is logged once per mnemonic).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/kernel.h"

namespace swiftsim {

/// Parses one Accel-Sim-style kernel trace; throws SimError (with line
/// numbers) on malformed input.
std::shared_ptr<KernelTrace> ImportAccelSimKernel(std::istream& is);
std::shared_ptr<KernelTrace> ImportAccelSimKernelFile(
    const std::string& path);

/// Maps a SASS mnemonic (leading token, mods stripped) to the virtual
/// ISA; exposed for tests. Unknown mnemonics map to Opcode::kIAdd.
Opcode MapSassOpcode(const std::string& mnemonic);

}  // namespace swiftsim
