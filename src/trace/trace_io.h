// Text serialization of kernel traces (the ".sstrace" format).
//
// The format is deliberately line-oriented and human-inspectable, in the
// spirit of Accel-Sim's trace files:
//
//   kernel <name> id=<k> ctas=<n> warps_per_cta=<w> threads_per_cta=<t>
//          smem=<b> regs=<r> variants=<v>          (one physical line)
//   variant <v>
//   warp <w> n=<count>
//   i <pc-hex> <OP> d=<reg|-> s=<r0,r1,...|-> m=<mask-hex> [a=<hex,hex,...>]
//   end_warp
//   end_variant
//   end_kernel
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/kernel.h"

namespace swiftsim {

/// Writes one kernel trace.
void WriteKernelTrace(const KernelTrace& trace, std::ostream& os);
void WriteKernelTraceFile(const KernelTrace& trace, const std::string& path);

/// Parses one kernel trace; throws SimError with a line number on malformed
/// input. The stream must be positioned at a "kernel" header line.
std::shared_ptr<KernelTrace> ReadKernelTrace(std::istream& is);
std::shared_ptr<KernelTrace> ReadKernelTraceFile(const std::string& path);

/// Writes/reads a whole application (concatenated kernels, preceded by an
/// "application <name> kernels=<n>" header).
void WriteApplication(const Application& app, std::ostream& os);
void WriteApplicationFile(const Application& app, const std::string& path);
Application ReadApplication(std::istream& is);
Application ReadApplicationFile(const std::string& path);

}  // namespace swiftsim
