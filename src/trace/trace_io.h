// Text serialization of kernel traces (the ".sstrace" format).
//
// The format is deliberately line-oriented and human-inspectable, in the
// spirit of Accel-Sim's trace files:
//
//   kernel <name> id=<k> ctas=<n> warps_per_cta=<w> threads_per_cta=<t>
//          smem=<b> regs=<r> variants=<v>          (one physical line)
//   variant <v>
//   warp <w> n=<count>
//   i <pc-hex> <OP> d=<reg|-> s=<r0,r1,...|-> m=<mask-hex> [a=<hex,hex,...>]
//   end_warp
//   end_variant
//   end_kernel
// Alongside the text format lives the binary compact trace cache
// (".sstc"): the columnar warp columns written raw, keyed by a 128-bit
// fingerprint of the build request, so repeated cold runs and DSE sweeps
// skip trace generation entirely (DESIGN.md §14).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "trace/fingerprint.h"
#include "trace/kernel.h"

namespace swiftsim {

/// Writes one kernel trace.
void WriteKernelTrace(const KernelTrace& trace, std::ostream& os);
void WriteKernelTraceFile(const KernelTrace& trace, const std::string& path);

/// Parses one kernel trace; throws SimError with a line number on malformed
/// input. The stream must be positioned at a "kernel" header line.
std::shared_ptr<KernelTrace> ReadKernelTrace(std::istream& is);
std::shared_ptr<KernelTrace> ReadKernelTraceFile(const std::string& path);

/// Writes/reads a whole application (concatenated kernels, preceded by an
/// "application <name> kernels=<n>" header).
void WriteApplication(const Application& app, std::ostream& os);
void WriteApplicationFile(const Application& app, const std::string& path);
Application ReadApplication(std::istream& is);
Application ReadApplicationFile(const std::string& path);

/// Raised on any malformed, truncated, version- or key-mismatched compact
/// cache file. Callers that treat the cache as advisory catch this and
/// regenerate; everything else surfaces it as a SimError.
class TraceCacheError : public SimError {
 public:
  using SimError::SimError;
};

/// Current compact cache format version; bumped on any layout change so
/// stale files are rejected instead of misread.
inline constexpr std::uint32_t kTraceCacheVersion = 1;

/// Writes the whole application's columnar columns raw, preceded by a
/// header carrying `key` (the fingerprint of the generation request).
/// Atomic: writes to "<path>.tmp" then renames.
void WriteCompactApplication(const Application& app, const Fingerprint& key,
                             const std::string& path);

/// Reads a compact cache file, verifying magic, version and `key`. Every
/// count is bounds-checked and every address-pool entry is decoded before
/// the traces are validated; throws TraceCacheError on any mismatch.
Application ReadCompactApplication(const std::string& path,
                                   const Fingerprint& key);

}  // namespace swiftsim
