// Stable 128-bit structural fingerprints of kernel traces (DESIGN.md
// §10): the identity keys of the cross-launch memoization subsystem. Two
// kernels fingerprint equal iff their launch geometry and every variant's
// per-warp instruction stream (PCs, opcodes, registers, active masks,
// per-lane addresses) agree, so a fingerprint match licenses replaying a
// recorded simulation result. Hashing mixes only fixed-width values —
// never raw memory — so fingerprints are stable across platforms, runs
// and processes (they key the optional on-disk cache).
#pragma once

#include <cstdint>
#include <string>

#include "trace/kernel.h"

namespace swiftsim {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
  bool operator<(const Fingerprint& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 hex digits, hi lane first.
  std::string ToHex() const;

  /// Folds both lanes into one well-mixed word (map keys, salts).
  std::uint64_t Fold() const;
};

/// Incremental two-lane hasher behind every fingerprint. Order-sensitive:
/// Mix(a), Mix(b) differs from Mix(b), Mix(a).
class FpHasher {
 public:
  void Mix(std::uint64_t v);

  /// Length-prefixed, so consecutive strings cannot alias each other.
  void MixString(const std::string& s);

  Fingerprint Digest() const;

 private:
  std::uint64_t hi_ = 0x5357494654534d31ull;  // arbitrary distinct seeds
  std::uint64_t lo_ = 0x46494e4745525052ull;
  std::uint64_t count_ = 0;
};

/// Structural fingerprint of one kernel: KernelInfo (including the id the
/// pre-pass profile is keyed by) plus every CTA variant's warp streams.
/// Cost is proportional to the variant storage, not the grid size.
Fingerprint FingerprintKernel(const KernelTrace& kernel);

/// Fingerprint of a whole application: the kernel fingerprints chained in
/// launch order. Deliberately excludes the display name, so two apps with
/// identical launch sequences share pre-pass profile cache entries.
Fingerprint FingerprintApplication(const Application& app);

}  // namespace swiftsim
