// Static/dynamic trace statistics: opcode mix, divergence, memory footprint.
// Used by the trace_tool example and by workload-generator tests.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "trace/kernel.h"

namespace swiftsim {

struct TraceStats {
  std::uint64_t dynamic_instrs = 0;
  std::uint64_t warps = 0;
  std::array<std::uint64_t, kNumOpcodes> per_opcode{};
  std::uint64_t mem_instrs = 0;
  std::uint64_t global_mem_instrs = 0;
  std::uint64_t shared_mem_instrs = 0;
  std::uint64_t barriers = 0;
  std::uint64_t fully_active_instrs = 0;    // all 32 lanes on
  std::uint64_t divergent_instrs = 0;       // < 32 lanes on
  std::uint64_t total_active_lanes = 0;
  std::uint64_t distinct_lines_touched = 0; // 128B-line footprint
  std::uint64_t distinct_pcs = 0;

  double mem_fraction() const {
    return dynamic_instrs ? static_cast<double>(mem_instrs) / dynamic_instrs
                          : 0.0;
  }
  double avg_active_lanes() const {
    return dynamic_instrs
               ? static_cast<double>(total_active_lanes) / dynamic_instrs
               : 0.0;
  }

  std::string ToString() const;
};

/// Walks the entire grid of `src` (variant sharing makes this cheap).
TraceStats ComputeTraceStats(const TraceSource& src);

}  // namespace swiftsim
