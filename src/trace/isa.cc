#include "trace/isa.h"

#include <array>
#include <string>

#include "common/status.h"

namespace swiftsim {

namespace {
struct OpInfo {
  std::string_view name;
  UnitClass unit;
};

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    {"IADD", UnitClass::kInt},    {"IMUL", UnitClass::kInt},
    {"IMAD", UnitClass::kInt},    {"ISETP", UnitClass::kInt},
    {"BRA", UnitClass::kInt},     {"FADD", UnitClass::kSp},
    {"FMUL", UnitClass::kSp},     {"FFMA", UnitClass::kSp},
    {"DADD", UnitClass::kDp},     {"DFMA", UnitClass::kDp},
    {"RCP", UnitClass::kSfu},     {"RSQRT", UnitClass::kSfu},
    {"SIN", UnitClass::kSfu},     {"EXP", UnitClass::kSfu},
    {"HMMA", UnitClass::kTensor}, {"LDG", UnitClass::kLdSt},
    {"STG", UnitClass::kLdSt},    {"LDS", UnitClass::kLdSt},
    {"STS", UnitClass::kLdSt},    {"LDC", UnitClass::kLdSt},
    {"BAR", UnitClass::kControl}, {"EXIT", UnitClass::kControl},
}};
}  // namespace

UnitClass ClassOf(Opcode op) {
  return kOpTable[static_cast<std::uint8_t>(op)].unit;
}

bool IsMemory(Opcode op) { return ClassOf(op) == UnitClass::kLdSt; }

bool IsLoad(Opcode op) {
  return op == Opcode::kLdGlobal || op == Opcode::kLdShared ||
         op == Opcode::kLdConst;
}

bool IsStore(Opcode op) {
  return op == Opcode::kStGlobal || op == Opcode::kStShared;
}

bool IsGlobalMem(Opcode op) {
  return op == Opcode::kLdGlobal || op == Opcode::kStGlobal;
}

bool IsSharedMem(Opcode op) {
  return op == Opcode::kLdShared || op == Opcode::kStShared;
}

bool IsBarrier(Opcode op) { return op == Opcode::kBarSync; }

bool IsExit(Opcode op) { return op == Opcode::kExit; }

std::string_view Name(Opcode op) {
  return kOpTable[static_cast<std::uint8_t>(op)].name;
}

Opcode OpcodeFromName(std::string_view name) {
  for (std::uint8_t i = 0; i < kNumOpcodes; ++i) {
    if (kOpTable[i].name == name) return static_cast<Opcode>(i);
  }
  throw SimError("unknown opcode mnemonic '" + std::string(name) + "'");
}

}  // namespace swiftsim
