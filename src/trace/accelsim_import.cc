#include "trace/accelsim_import.h"

#include <fstream>
#include <istream>
#include <map>
#include <set>

#include "common/bitutil.h"
#include "common/log.h"
#include "common/status.h"
#include "common/strutil.h"

namespace swiftsim {

Opcode MapSassOpcode(const std::string& mnemonic) {
  static const std::map<std::string, Opcode> kMap = {
      // Integer pipe.
      {"IADD", Opcode::kIAdd},   {"IADD3", Opcode::kIAdd},
      {"IMUL", Opcode::kIMul},   {"IMAD", Opcode::kIMad},
      {"ISETP", Opcode::kISetp}, {"LOP", Opcode::kIAdd},
      {"LOP3", Opcode::kIAdd},   {"SHF", Opcode::kIAdd},
      {"SHL", Opcode::kIAdd},    {"SHR", Opcode::kIAdd},
      {"MOV", Opcode::kIAdd},    {"SEL", Opcode::kIAdd},
      {"BRA", Opcode::kBra},     {"BRX", Opcode::kBra},
      {"S2R", Opcode::kIAdd},    {"CS2R", Opcode::kIAdd},
      // FP32 pipe.
      {"FADD", Opcode::kFAdd},   {"FMUL", Opcode::kFMul},
      {"FFMA", Opcode::kFFma},   {"FSETP", Opcode::kFAdd},
      {"FSEL", Opcode::kFAdd},   {"FMNMX", Opcode::kFAdd},
      // FP64 pipe.
      {"DADD", Opcode::kDAdd},   {"DMUL", Opcode::kDFma},
      {"DFMA", Opcode::kDFma},   {"DSETP", Opcode::kDAdd},
      // SFU.
      {"MUFU", Opcode::kRsqrt},  {"RCP", Opcode::kRcp},
      {"RSQRT", Opcode::kRsqrt}, {"SIN", Opcode::kSin},
      {"EX2", Opcode::kExp},     {"LG2", Opcode::kExp},
      // Tensor.
      {"HMMA", Opcode::kHmma},   {"IMMA", Opcode::kHmma},
      {"BMMA", Opcode::kHmma},
      // Memory.
      {"LDG", Opcode::kLdGlobal}, {"LD", Opcode::kLdGlobal},
      {"STG", Opcode::kStGlobal}, {"ST", Opcode::kStGlobal},
      {"LDS", Opcode::kLdShared}, {"STS", Opcode::kStShared},
      {"LDC", Opcode::kLdConst},  {"LDL", Opcode::kLdGlobal},
      {"STL", Opcode::kStGlobal},
      // Control.
      {"BAR", Opcode::kBarSync},  {"EXIT", Opcode::kExit},
      {"RET", Opcode::kExit},
  };
  auto it = kMap.find(mnemonic);
  if (it != kMap.end()) return it->second;
  static std::set<std::string> warned;
  if (warned.insert(mnemonic).second) {
    SS_LOG(kWarning) << "accelsim import: unknown SASS mnemonic '"
                     << mnemonic << "', mapping to the INT pipeline";
  }
  return Opcode::kIAdd;
}

namespace {

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  bool Next(std::string* out) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      const std::string_view t = Trim(line);
      if (t.empty()) continue;
      *out = std::string(t);
      return true;
    }
    return false;
  }

  [[noreturn]] void Fail(const std::string& msg) const {
    throw SimError("accelsim trace parse error at line " +
                   std::to_string(line_no_) + ": " + msg);
  }

 private:
  std::istream& is_;
  std::size_t line_no_ = 0;
};

std::uint64_t ParseHexField(const std::string& s, Reader& r) {
  std::string_view t = s;
  if (StartsWith(t, "0x") || StartsWith(t, "0X")) t.remove_prefix(2);
  if (t.empty()) r.Fail("empty hex field");
  std::uint64_t v = 0;
  for (char c : t) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      r.Fail("bad hex digit in '" + s + "'");
    }
  }
  return v;
}

std::uint8_t ParseReg(const std::string& s, Reader& r) {
  if (s.size() < 2 || (s[0] != 'R' && s[0] != 'P')) {
    r.Fail("expected register, got '" + s + "'");
  }
  // Predicate registers fold onto high numbers; "RZ" is the zero register
  // (no dependency).
  if (s == "RZ" || s == "PT") return kNoReg;
  const std::uint64_t n = ParseUint(s.substr(1), "register number");
  if (n > 254) r.Fail("register number out of range in '" + s + "'");
  return static_cast<std::uint8_t>(s[0] == 'P' ? 200 + n : n);
}

/// "(x,y,z)" or "x,y,z" -> product.
std::uint64_t ParseDim3(std::string s, Reader& r) {
  std::string_view t = Trim(s);
  if (!t.empty() && t.front() == '(') t.remove_prefix(1);
  if (!t.empty() && t.back() == ')') t.remove_suffix(1);
  const auto parts = Split(t, ',');
  if (parts.empty() || parts.size() > 3) r.Fail("malformed dim3 '" + s + "'");
  std::uint64_t prod = 1;
  for (const auto& p : parts) {
    const std::uint64_t c = ParseUint(p, "dim3 component");
    if (c != 0 && prod > ~std::uint64_t{0} / c) {
      r.Fail("dim3 '" + s + "' overflows");
    }
    prod *= c;
  }
  if (prod == 0) r.Fail("zero-sized dim3 '" + s + "'");
  return prod;
}

TraceInstr ParseInstrLine(const std::vector<std::string>& tok, Reader& r) {
  // <pc> <mask> <ndest> {Rn} <OPCODE> <nsrc> {Rn} <mem_width> [mode addrs]
  std::size_t i = 0;
  auto need = [&](const char* what) -> const std::string& {
    if (i >= tok.size()) r.Fail(std::string("missing field: ") + what);
    return tok[i++];
  };
  TraceInstr ins;
  ins.pc = ParseHexField(need("pc"), r);
  ins.active = static_cast<LaneMask>(ParseHexField(need("mask"), r));
  if (ins.active == 0) r.Fail("instruction with empty active mask");
  const auto ndest = ParseUint(need("ndest"), "dest count");
  if (ndest > 1 + 3) r.Fail("too many destination registers");
  for (std::uint64_t d = 0; d < ndest; ++d) {
    const std::uint8_t reg = ParseReg(need("dest reg"), r);
    if (d == 0) ins.dst = reg;  // extra dests (wide loads) are dropped
  }
  std::string opcode = need("opcode");
  const std::size_t dot = opcode.find('.');
  if (dot != std::string::npos) opcode.resize(dot);
  ins.op = MapSassOpcode(opcode);
  const auto nsrc = ParseUint(need("nsrc"), "src count");
  for (std::uint64_t s = 0; s < nsrc; ++s) {
    const std::uint8_t reg = ParseReg(need("src reg"), r);
    if (s < ins.src.size()) ins.src[s] = reg;
  }
  const auto mem_width = ParseUint(need("mem width"), "mem width");
  if (IsMemory(ins.op)) {
    if (mem_width == 0) r.Fail("memory opcode with zero mem width");
    const unsigned lanes = ins.num_active();
    const auto mode = ParseUint(need("address mode"), "address mode");
    ins.addrs.reserve(lanes);
    if (mode == 0) {
      for (unsigned l = 0; l < lanes; ++l) {
        ins.addrs.push_back(ParseHexField(need("address"), r));
      }
    } else if (mode == 1) {
      const Addr base = ParseHexField(need("base address"), r);
      const auto stride = ParseInt(need("stride"), "address stride");
      for (unsigned l = 0; l < lanes; ++l) {
        ins.addrs.push_back(base + static_cast<Addr>(stride) * l);
      }
    } else if (mode == 2) {
      Addr prev = ParseHexField(need("base address"), r);
      ins.addrs.push_back(prev);
      for (unsigned l = 1; l < lanes; ++l) {
        const auto delta = ParseInt(need("address delta"), "address delta");
        prev = static_cast<Addr>(static_cast<std::int64_t>(prev) + delta);
        ins.addrs.push_back(prev);
      }
    } else {
      r.Fail("unknown address mode " + std::to_string(mode));
    }
  } else if (mem_width != 0) {
    // Tolerated: some tracers tag prefetches; drop the address fields.
    ins.addrs.clear();
  }
  if (IsExit(ins.op) || IsBarrier(ins.op)) ins.dst = kNoReg;
  return ins;
}

}  // namespace

std::shared_ptr<KernelTrace> ImportAccelSimKernel(std::istream& is) {
  Reader r(is);
  KernelInfo info;
  std::uint64_t grid = 0, block_threads = 0;

  std::string line;
  // Header: "-key tokens = value" lines until the first #BEGIN_TB.
  for (;;) {
    if (!r.Next(&line)) r.Fail("unexpected EOF before #BEGIN_TB");
    if (line == "#BEGIN_TB") break;
    if (!StartsWith(line, "-")) continue;  // ignore unknown directives
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = ToLower(std::string(Trim(line.substr(1, eq - 1))));
    const std::string value(Trim(line.substr(eq + 1)));
    if (key == "kernel name") {
      info.name = value;
    } else if (key == "kernel id") {
      info.id = static_cast<KernelId>(ParseUint(value, "kernel id"));
    } else if (key == "grid dim") {
      grid = ParseDim3(value, r);
    } else if (key == "block dim") {
      block_threads = ParseDim3(value, r);
    } else if (key == "shmem") {
      info.smem_bytes_per_cta =
          static_cast<std::uint32_t>(ParseUint(value, "shmem"));
    } else if (key == "nregs") {
      info.regs_per_thread =
          static_cast<std::uint32_t>(ParseUint(value, "nregs"));
    }
  }
  if (grid == 0) r.Fail("missing '-grid dim' header");
  if (block_threads == 0) r.Fail("missing '-block dim' header");
  // Plausibility bounds before the values size containers below: a
  // corrupted header must fail as a parse error, not as an allocation
  // failure. Real hardware caps CTAs at 1024 threads; 64K is generous.
  if (block_threads > (1ull << 16)) {
    r.Fail("block dim " + std::to_string(block_threads) +
           " threads is implausibly large");
  }
  if (grid > (1ull << 32)) {
    r.Fail("grid dim " + std::to_string(grid) + " CTAs is implausibly large");
  }
  info.num_ctas = static_cast<std::uint32_t>(grid);
  info.threads_per_cta = static_cast<std::uint32_t>(block_threads);
  info.warps_per_cta =
      static_cast<std::uint32_t>(CeilDiv(block_threads, kWarpSize));

  // Thread blocks. The first #BEGIN_TB was already consumed.
  std::vector<CtaTrace> ctas;
  for (;;) {
    CtaTrace cta;
    cta.warps.resize(info.warps_per_cta);
    if (!r.Next(&line) || !StartsWith(line, "thread block")) {
      r.Fail("expected 'thread block = x,y,z'");
    }
    for (;;) {
      if (!r.Next(&line)) r.Fail("unexpected EOF inside thread block");
      if (line == "#END_TB") break;
      if (!StartsWith(line, "warp")) r.Fail("expected 'warp = <n>'");
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) r.Fail("malformed warp header");
      const auto warp_id = ParseUint(Trim(line.substr(eq + 1)), "warp id");
      if (warp_id >= info.warps_per_cta) r.Fail("warp id out of range");
      if (!r.Next(&line) || !StartsWith(line, "insts")) {
        r.Fail("expected 'insts = <n>'");
      }
      const std::size_t ieq = line.find('=');
      const auto n = ParseUint(Trim(line.substr(ieq + 1)), "inst count");
      // Cap before reserve: a torn count must not become std::length_error.
      if (n > (1ull << 26)) {
        r.Fail("inst count " + std::to_string(n) +
               " exceeds the per-warp limit");
      }
      WarpTrace& warp = cta.warps[warp_id];
      warp.reserve(n);
      for (std::uint64_t k = 0; k < n; ++k) {
        if (!r.Next(&line)) r.Fail("unexpected EOF inside warp");
        warp.push_back(ParseInstrLine(SplitWs(line), r));
      }
    }
    // Ensure every warp retires even if the tracer dropped EXITs.
    for (WarpTrace& warp : cta.warps) {
      if (warp.empty() || !IsExit(warp.back().op)) {
        TraceInstr exit;
        exit.op = Opcode::kExit;
        exit.dst = kNoReg;
        exit.pc = warp.empty() ? 0 : warp.back().pc + 8;
        warp.push_back(exit);
      }
    }
    ctas.push_back(std::move(cta));
    if (!r.Next(&line)) break;           // EOF: done
    if (line != "#BEGIN_TB") break;      // trailing junk tolerated
  }
  SS_CHECK(!ctas.empty(), "accelsim trace contains no thread blocks");

  // The file carries one trace per CTA; they become the variants and the
  // grid cycles through them (exact when the file covers the whole grid).
  auto trace = std::make_shared<KernelTrace>(std::move(info),
                                             std::move(ctas));
  trace->ValidateTrace();
  return trace;
}

std::shared_ptr<KernelTrace> ImportAccelSimKernelFile(
    const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot open accelsim trace '" + path + "'");
  return ImportAccelSimKernel(in);
}

}  // namespace swiftsim
