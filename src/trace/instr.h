// One dynamic warp instruction as recorded in a trace.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitutil.h"
#include "common/inline_vec.h"
#include "common/types.h"
#include "trace/isa.h"

namespace swiftsim {

/// Register number sentinel for "no register".
inline constexpr std::uint8_t kNoReg = 0xff;

/// Per-active-lane addresses of one warp memory instruction. Bounded by
/// kWarpSize, so the storage is always inline — building one never heap
/// allocates.
using LaneAddrs = InlineVec<Addr, kWarpSize>;

/// A dynamic instruction executed by one warp. Memory instructions carry
/// one address per *active* lane, in ascending lane order (compact form —
/// inactive lanes have no entry).
struct TraceInstr {
  Pc pc = 0;
  Opcode op = Opcode::kIAdd;
  std::uint8_t dst = kNoReg;              // destination register or kNoReg
  std::array<std::uint8_t, 3> src = {kNoReg, kNoReg, kNoReg};
  LaneMask active = kFullMask;
  LaneAddrs addrs;                // memory ops only; |addrs| == popcount(active)

  unsigned num_active() const { return PopCount(active); }
  bool has_dst() const { return dst != kNoReg; }

  bool operator==(const TraceInstr& o) const {
    return pc == o.pc && op == o.op && dst == o.dst && src == o.src &&
           active == o.active && addrs == o.addrs;
  }
};

/// The dynamic instruction stream of one warp.
using WarpTrace = std::vector<TraceInstr>;

}  // namespace swiftsim
