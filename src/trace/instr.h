// One dynamic warp instruction as recorded in a trace, plus the columnar
// storage that holds whole warp streams (DESIGN.md §14).
//
// Storage is split into three columns per warp:
//   - a dense 16-byte CompactInstr record per instruction (pc, op, regs,
//     active mask) — the only thing the issue hot path touches;
//   - a byte-offset table with one entry per address-carrying instruction;
//   - a shared address pool where each entry is varint(count) followed by
//     zigzag-varint lane-address deltas.
// Only memory instructions pay for addresses, and coalescer-friendly runs
// (unit-stride, broadcast) compress to one or two bytes per lane.
// TraceInstr remains the AoS interchange form used by builders, text I/O
// and tests; WarpTrace::push_back encodes it and Decode reconstructs it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitutil.h"
#include "common/inline_vec.h"
#include "common/types.h"
#include "trace/isa.h"

namespace swiftsim {

/// Register number sentinel for "no register".
inline constexpr std::uint8_t kNoReg = 0xff;

/// Per-active-lane addresses of one warp memory instruction. Bounded by
/// kWarpSize, so the storage is always inline — building one never heap
/// allocates.
using LaneAddrs = InlineVec<Addr, kWarpSize>;

/// A dynamic instruction executed by one warp. Memory instructions carry
/// one address per *active* lane, in ascending lane order (compact form —
/// inactive lanes have no entry).
struct TraceInstr {
  Pc pc = 0;
  Opcode op = Opcode::kIAdd;
  std::uint8_t dst = kNoReg;              // destination register or kNoReg
  std::array<std::uint8_t, 3> src = {kNoReg, kNoReg, kNoReg};
  LaneMask active = kFullMask;
  LaneAddrs addrs;                // memory ops only; |addrs| == popcount(active)

  unsigned num_active() const { return PopCount(active); }
  bool has_dst() const { return dst != kNoReg; }

  bool operator==(const TraceInstr& o) const {
    return pc == o.pc && op == o.op && dst == o.dst && src == o.src &&
           active == o.active && addrs == o.addrs;
  }
};

/// Dense per-instruction record of the columnar trace core. Everything the
/// scheduler, scoreboard and operand collector read lives here; lane
/// addresses live in the warp's side pool and are decoded on demand.
/// `pc` is stored as 32 bits — trace PCs are code offsets, and the encoder
/// rejects anything wider — and widens losslessly wherever a Pc (uint64)
/// is expected, so every hash and comparison sees the same value the AoS
/// form produced.
struct CompactInstr {
  std::uint32_t pc = 0;
  LaneMask active = kFullMask;
  Opcode op = Opcode::kIAdd;
  std::uint8_t dst = kNoReg;              // destination register or kNoReg
  std::array<std::uint8_t, 3> src = {kNoReg, kNoReg, kNoReg};
  std::uint8_t flags = 0;                 // bit 0: carries a pool entry
  std::uint16_t reserved = 0;

  static constexpr std::uint8_t kHasAddrs = 1u << 0;

  unsigned num_active() const { return PopCount(active); }
  bool has_dst() const { return dst != kNoReg; }
  bool has_addrs() const { return flags & kHasAddrs; }
};

static_assert(sizeof(CompactInstr) == 16,
              "CompactInstr must stay a dense 16-byte record");
static_assert(sizeof(Opcode) == 1, "Opcode must fit the compact record");

/// The dynamic instruction stream of one warp, stored columnar. Read access
/// returns CompactInstr records; addresses are decoded per memory-op rank
/// (the count of address-carrying instructions before a given index), which
/// sequential walkers maintain incrementally — see WarpCursor.
class WarpTrace {
 public:
  using value_type = CompactInstr;
  using const_iterator = const CompactInstr*;

  WarpTrace() = default;

  /// Encodes one AoS instruction onto the end of the stream. Throws
  /// SimError if the pc does not fit 32 bits.
  void push_back(const TraceInstr& ins);

  /// Direct builder entry points — generators emit compact records without
  /// constructing a TraceInstr at all.
  void EmitScalar(Pc pc, Opcode op, std::uint8_t dst,
                  const std::array<std::uint8_t, 3>& src, LaneMask active);
  void EmitMem(Pc pc, Opcode op, std::uint8_t dst,
               const std::array<std::uint8_t, 3>& src, LaneMask active,
               const LaneAddrs& addrs);

  std::size_t size() const { return instrs_.size(); }
  bool empty() const { return instrs_.empty(); }
  const CompactInstr& operator[](std::size_t i) const { return instrs_[i]; }
  const CompactInstr& front() const { return instrs_.front(); }
  const CompactInstr& back() const { return instrs_.back(); }
  const_iterator begin() const { return instrs_.data(); }
  const_iterator end() const { return instrs_.data() + instrs_.size(); }

  void reserve(std::size_t n) { instrs_.reserve(n); }
  void clear();

  /// Number of address-carrying instructions (== mem-offset table size).
  std::uint32_t num_addr_entries() const {
    return static_cast<std::uint32_t>(mem_off_.size());
  }

  /// Decodes the addresses of the `mem_rank`-th address-carrying
  /// instruction into `out` (cleared first). Returns the lane count.
  /// Throws SimError on a malformed pool (out-of-range offset, truncated
  /// varint, oversized count) — reachable only via FromColumns input.
  unsigned DecodeAddrs(std::uint32_t mem_rank, LaneAddrs* out) const;

  /// Memory-op rank of instruction `index`: how many address-carrying
  /// instructions precede it. O(index) — cold paths only.
  std::uint32_t MemRankAt(std::size_t index) const;

  /// Reconstructs the AoS form of instruction `index`. O(index) due to the
  /// rank scan — cold paths (text I/O, fault injection, tests) only.
  TraceInstr Decode(std::size_t index) const;

  /// Bytes of backing storage across all three columns.
  std::uint64_t MemoryBytes() const {
    return instrs_.size() * sizeof(CompactInstr) +
           mem_off_.size() * sizeof(std::uint32_t) + pool_.size();
  }

  // Raw column access for the binary trace cache (trace_io).
  const std::vector<CompactInstr>& records() const { return instrs_; }
  const std::vector<std::uint32_t>& addr_offsets() const { return mem_off_; }
  const std::vector<std::uint8_t>& addr_pool() const { return pool_; }

  /// Rebuilds a warp from raw columns (trace cache load). Verifies that the
  /// flags column matches the offset table, offsets are in-range and
  /// monotonic, and every pool entry decodes within bounds with count <=
  /// kWarpSize; throws SimError otherwise.
  static WarpTrace FromColumns(std::vector<CompactInstr> records,
                               std::vector<std::uint32_t> offsets,
                               std::vector<std::uint8_t> pool);

  bool operator==(const WarpTrace& o) const;

 private:
  std::vector<CompactInstr> instrs_;
  std::vector<std::uint32_t> mem_off_;  // byte offset into pool_ per entry
  std::vector<std::uint8_t> pool_;      // varint(count) + zigzag deltas
};

/// Sequential reader over a columnar warp stream that maintains the
/// memory-op rank, so address decode is O(lanes) with no per-instruction
/// scan. The shape all linear walkers (pre-pass, reuse-distance, stats,
/// fingerprint, text writer) share.
class WarpCursor {
 public:
  explicit WarpCursor(const WarpTrace& trace) : trace_(&trace) {}

  bool done() const { return next_ >= trace_->size(); }
  std::size_t index() const { return next_; }
  const CompactInstr& peek() const { return (*trace_)[next_]; }

  /// Decodes the current record's lane addresses without advancing
  /// (cleared first; empty for non-memory ops). Returns the lane count.
  unsigned PeekAddrs(LaneAddrs* out) const {
    if (!peek().has_addrs()) {
      out->clear();
      return 0;
    }
    return trace_->DecodeAddrs(mem_rank_, out);
  }

  /// Returns the current record and steps past it. If `addrs_out` is
  /// non-null it receives the record's lane addresses (cleared first;
  /// empty for non-memory ops).
  const CompactInstr& Next(LaneAddrs* addrs_out = nullptr) {
    const CompactInstr& ins = (*trace_)[next_++];
    if (addrs_out != nullptr) {
      if (ins.has_addrs()) {
        trace_->DecodeAddrs(mem_rank_, addrs_out);
      } else {
        addrs_out->clear();
      }
    }
    if (ins.has_addrs()) ++mem_rank_;
    return ins;
  }

  /// Reconstructs the current record's AoS form and steps past it.
  TraceInstr NextDecoded() {
    TraceInstr out;
    LaneAddrs addrs;
    const CompactInstr& ins = Next(&addrs);
    out.pc = ins.pc;
    out.op = ins.op;
    out.dst = ins.dst;
    out.src = ins.src;
    out.active = ins.active;
    out.addrs = std::move(addrs);
    return out;
  }

 private:
  const WarpTrace* trace_;
  std::size_t next_ = 0;
  std::uint32_t mem_rank_ = 0;
};

}  // namespace swiftsim
