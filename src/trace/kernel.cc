#include "trace/kernel.h"

#include "common/status.h"

namespace swiftsim {

void KernelInfo::Validate() const {
  SS_CHECK(!name.empty(), "kernel name must be nonempty");
  SS_CHECK(num_ctas > 0, "kernel '" + name + "': grid must have >= 1 CTA");
  SS_CHECK(warps_per_cta > 0,
           "kernel '" + name + "': CTA must have >= 1 warp");
  SS_CHECK(threads_per_cta > 0 &&
               threads_per_cta <= warps_per_cta * kWarpSize,
           "kernel '" + name + "': threads_per_cta inconsistent with warps");
  SS_CHECK(regs_per_thread > 0,
           "kernel '" + name + "': regs_per_thread must be positive");
}

std::uint64_t TraceSource::TotalInstrs() const {
  std::uint64_t n = 0;
  for (CtaId c = 0; c < info().num_ctas; ++c) n += cta(c).dynamic_instrs();
  return n;
}

void TraceSource::ValidateCta(const KernelInfo& ki, const CtaTrace& ct,
                              CtaId label) {
  SS_CHECK(ct.warps.size() == ki.warps_per_cta,
           "kernel '" + ki.name + "' CTA " + std::to_string(label) +
               ": warp count mismatch");
  std::uint64_t first_warp_barriers = 0;
  for (std::size_t w = 0; w < ct.warps.size(); ++w) {
    const WarpTrace& wt = ct.warps[w];
    SS_CHECK(!wt.empty(), "kernel '" + ki.name + "': empty warp trace");
    std::uint64_t barriers = 0;
    WarpCursor cur(wt);
    LaneAddrs addrs;
    while (!cur.done()) {
      const bool last = cur.index() + 1 == wt.size();
      const CompactInstr& ins = cur.Next(&addrs);
      SS_CHECK(IsExit(ins.op) == last,
               "kernel '" + ki.name +
                   "': EXIT must appear exactly once, as the last "
                   "instruction of every warp");
      SS_CHECK(ins.active != 0,
               "kernel '" + ki.name + "': instruction with empty mask");
      if (IsMemory(ins.op)) {
        SS_CHECK(addrs.size() == ins.num_active(),
                 "kernel '" + ki.name +
                     "': memory op must carry one address per active lane");
      } else {
        SS_CHECK(addrs.empty(),
                 "kernel '" + ki.name +
                     "': non-memory op must carry no addresses");
      }
      if (IsBarrier(ins.op)) ++barriers;
    }
    if (w == 0) {
      first_warp_barriers = barriers;
    } else {
      SS_CHECK(barriers == first_warp_barriers,
               "kernel '" + ki.name + "' CTA " + std::to_string(label) +
                   ": warps disagree on barrier count (deadlock)");
    }
  }
}

void TraceSource::ValidateTrace() const {
  const KernelInfo& ki = info();
  ki.Validate();
  for (CtaId c = 0; c < ki.num_ctas; ++c) ValidateCta(ki, cta(c), c);
}

KernelTrace::KernelTrace(KernelInfo info, std::vector<CtaTrace> variants)
    : info_(std::move(info)), variants_(std::move(variants)) {
  SS_CHECK(!variants_.empty(), "KernelTrace needs at least one CTA variant");
  info_.Validate();
  // Per-variant counts are cached once here; with CTA i sharing variant
  // i % V the grid total is a closed form, not a grid walk.
  const std::uint64_t v_count = variants_.size();
  const std::uint64_t rounds = info_.num_ctas / v_count;
  const std::uint64_t rem = info_.num_ctas % v_count;
  total_instrs_ = 0;
  for (std::uint64_t v = 0; v < v_count; ++v) {
    const std::uint64_t n = variants_[v].dynamic_instrs();
    total_instrs_ += n * (rounds + (v < rem ? 1 : 0));
  }
}

void KernelTrace::ValidateTrace() const {
  info_.Validate();
  for (std::size_t v = 0; v < variants_.size(); ++v) {
    ValidateCta(info_, variants_[v], static_cast<CtaId>(v));
  }
}

std::uint64_t KernelTrace::TraceBytes() const {
  std::uint64_t bytes = 0;
  for (const CtaTrace& ct : variants_) {
    for (const WarpTrace& wt : ct.warps) bytes += wt.MemoryBytes();
  }
  return bytes;
}

const CtaTrace& KernelTrace::cta(CtaId id) const {
  SS_CHECK(id < info_.num_ctas,
           "CTA id " + std::to_string(id) + " out of range for kernel '" +
               info_.name + "'");
  return variants_[id % variants_.size()];
}

std::uint64_t Application::TotalInstrs() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels) n += k->TotalInstrs();
  return n;
}

}  // namespace swiftsim
