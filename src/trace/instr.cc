#include "trace/instr.h"

#include <string>

#include "common/status.h"

namespace swiftsim {
namespace {

// LEB128 varint with zigzag deltas: each pool entry is
//   varint(count) count × varint(zigzag(addr[i] - addr[i-1]))
// (the first delta is against 0). Coalesced unit-stride runs and
// broadcasts — the dominant generated patterns — cost 1–2 bytes per lane.

inline std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutVarint(std::vector<std::uint8_t>* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

// Reads one varint at `*pos`, advancing it. Throws on truncation/overflow.
std::uint64_t GetVarint(const std::vector<std::uint8_t>& pool,
                        std::size_t* pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    SS_CHECK(*pos < pool.size(), "trace address pool: truncated varint");
    const std::uint8_t b = pool[(*pos)++];
    SS_CHECK(shift < 64, "trace address pool: varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

}  // namespace

void WarpTrace::EmitScalar(Pc pc, Opcode op, std::uint8_t dst,
                           const std::array<std::uint8_t, 3>& src,
                           LaneMask active) {
  SS_CHECK(pc <= 0xffffffffull,
           "trace pc 0x" + std::to_string(pc) +
               " does not fit the 32-bit compact record");
  CompactInstr rec;
  rec.pc = static_cast<std::uint32_t>(pc);
  rec.active = active;
  rec.op = op;
  rec.dst = dst;
  rec.src = src;
  instrs_.push_back(rec);
}

void WarpTrace::EmitMem(Pc pc, Opcode op, std::uint8_t dst,
                        const std::array<std::uint8_t, 3>& src,
                        LaneMask active, const LaneAddrs& addrs) {
  if (addrs.empty()) {
    EmitScalar(pc, op, dst, src, active);
    return;
  }
  EmitScalar(pc, op, dst, src, active);
  instrs_.back().flags = CompactInstr::kHasAddrs;
  mem_off_.push_back(static_cast<std::uint32_t>(pool_.size()));
  PutVarint(&pool_, addrs.size());
  Addr prev = 0;
  for (const Addr a : addrs) {
    PutVarint(&pool_, ZigZag(static_cast<std::int64_t>(a - prev)));
    prev = a;
  }
}

void WarpTrace::push_back(const TraceInstr& ins) {
  EmitMem(ins.pc, ins.op, ins.dst, ins.src, ins.active, ins.addrs);
}

void WarpTrace::clear() {
  instrs_.clear();
  mem_off_.clear();
  pool_.clear();
}

unsigned WarpTrace::DecodeAddrs(std::uint32_t mem_rank,
                                LaneAddrs* out) const {
  out->clear();
  SS_CHECK(mem_rank < mem_off_.size(),
           "trace address decode: rank " + std::to_string(mem_rank) +
               " out of range (" + std::to_string(mem_off_.size()) +
               " entries)");
  std::size_t pos = mem_off_[mem_rank];
  SS_CHECK(pos <= pool_.size(),
           "trace address pool: entry offset out of range");
  const std::uint64_t count = GetVarint(pool_, &pos);
  SS_CHECK(count <= kWarpSize,
           "trace address pool: lane count " + std::to_string(count) +
               " exceeds warp size");
  Addr prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    prev = static_cast<Addr>(static_cast<std::int64_t>(prev) +
                             UnZigZag(GetVarint(pool_, &pos)));
    out->push_back(prev);
  }
  return static_cast<unsigned>(count);
}

std::uint32_t WarpTrace::MemRankAt(std::size_t index) const {
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < index; ++i) {
    if (instrs_[i].has_addrs()) ++rank;
  }
  return rank;
}

TraceInstr WarpTrace::Decode(std::size_t index) const {
  SS_CHECK(index < instrs_.size(), "trace decode: index out of range");
  const CompactInstr& rec = instrs_[index];
  TraceInstr out;
  out.pc = rec.pc;
  out.op = rec.op;
  out.dst = rec.dst;
  out.src = rec.src;
  out.active = rec.active;
  if (rec.has_addrs()) DecodeAddrs(MemRankAt(index), &out.addrs);
  return out;
}

WarpTrace WarpTrace::FromColumns(std::vector<CompactInstr> records,
                                 std::vector<std::uint32_t> offsets,
                                 std::vector<std::uint8_t> pool) {
  WarpTrace t;
  t.instrs_ = std::move(records);
  t.mem_off_ = std::move(offsets);
  t.pool_ = std::move(pool);
  std::size_t flagged = 0;
  for (const CompactInstr& rec : t.instrs_) {
    if (rec.has_addrs()) ++flagged;
  }
  SS_CHECK(flagged == t.mem_off_.size(),
           "trace columns: offset table has " +
               std::to_string(t.mem_off_.size()) + " entries but " +
               std::to_string(flagged) + " records carry addresses");
  std::uint32_t prev_off = 0;
  for (std::size_t r = 0; r < t.mem_off_.size(); ++r) {
    SS_CHECK(t.mem_off_[r] < t.pool_.size() || (t.mem_off_[r] == 0 && t.pool_.empty()),
             "trace columns: pool offset out of range");
    SS_CHECK(r == 0 || t.mem_off_[r] > prev_off,
             "trace columns: pool offsets must be strictly increasing");
    prev_off = t.mem_off_[r];
    LaneAddrs scratch;
    t.DecodeAddrs(static_cast<std::uint32_t>(r), &scratch);  // throws if bad
  }
  return t;
}

bool WarpTrace::operator==(const WarpTrace& o) const {
  if (instrs_.size() != o.instrs_.size() ||
      mem_off_ != o.mem_off_ || pool_ != o.pool_) {
    return false;
  }
  for (std::size_t i = 0; i < instrs_.size(); ++i) {
    const CompactInstr& a = instrs_[i];
    const CompactInstr& b = o.instrs_[i];
    if (a.pc != b.pc || a.active != b.active || a.op != b.op ||
        a.dst != b.dst || a.src != b.src || a.flags != b.flags) {
      return false;
    }
  }
  return true;
}

}  // namespace swiftsim
