// Kernel launch metadata and the TraceSource abstraction consumed by all
// simulators (paper §III-A: the Trace Parser output format).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/instr.h"

namespace swiftsim {

/// Static launch parameters of one kernel.
struct KernelInfo {
  std::string name = "kernel";
  KernelId id = 0;
  std::uint32_t num_ctas = 1;          // grid size, linearized
  std::uint32_t warps_per_cta = 1;
  std::uint32_t threads_per_cta = 32;  // == warps_per_cta * 32 unless ragged
  std::uint32_t smem_bytes_per_cta = 0;
  std::uint32_t regs_per_thread = 32;

  /// Throws SimError if internally inconsistent.
  void Validate() const;
};

/// The instruction streams of all warps of one CTA.
struct CtaTrace {
  std::vector<WarpTrace> warps;

  std::uint64_t dynamic_instrs() const {
    std::uint64_t n = 0;
    for (const auto& w : warps) n += w.size();
    return n;
  }
};

/// Streaming interface between the trace frontend and the performance
/// model. Because real GPU grids run many identical CTAs, implementations
/// may back several CTA ids with shared variant storage; callers must treat
/// the returned reference as immutable and alive as long as the source.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  virtual const KernelInfo& info() const = 0;

  /// The trace of CTA `id`; id < info().num_ctas.
  virtual const CtaTrace& cta(CtaId id) const = 0;

  /// Total dynamic instruction count across the whole grid. Implementations
  /// with shared variant storage override this with a build-time cached
  /// count instead of re-walking the grid on every call.
  virtual std::uint64_t TotalInstrs() const;

  /// Validates structural invariants of the whole trace: every warp ends
  /// with EXIT exactly once, barrier counts agree across the warps of each
  /// CTA, memory ops carry exactly one address per active lane, non-memory
  /// ops carry none. Throws SimError on the first violation.
  /// Implementations backed by shared variants override this to validate
  /// each distinct variant once instead of every CTA id.
  virtual void ValidateTrace() const;

 protected:
  /// Validates one CTA's warps against `ki` (shared by both overrides).
  static void ValidateCta(const KernelInfo& ki, const CtaTrace& ct,
                          CtaId label);
};

/// Fully materialized kernel trace with CTA-variant sharing: CTA `i` is
/// backed by variant `i % variants.size()`.
class KernelTrace : public TraceSource {
 public:
  KernelTrace(KernelInfo info, std::vector<CtaTrace> variants);

  const KernelInfo& info() const override { return info_; }
  const CtaTrace& cta(CtaId id) const override;

  /// Cached at construction: no per-call grid walk (benches, memo, reports
  /// all hit this repeatedly).
  std::uint64_t TotalInstrs() const override { return total_instrs_; }

  /// Validates each distinct variant once — O(variants), not O(grid).
  void ValidateTrace() const override;

  std::size_t num_variants() const { return variants_.size(); }
  const CtaTrace& variant(std::size_t v) const { return variants_.at(v); }

  /// Bytes of columnar trace storage across all variants.
  std::uint64_t TraceBytes() const;

 private:
  KernelInfo info_;
  std::vector<CtaTrace> variants_;
  std::uint64_t total_instrs_ = 0;  // sum over the grid, variant-shared
};

/// A named, loaded application: a sequence of kernels launched in order.
struct Application {
  std::string name;
  std::vector<std::shared_ptr<KernelTrace>> kernels;

  std::uint64_t TotalInstrs() const;
};

}  // namespace swiftsim
