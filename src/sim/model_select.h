// Per-module modeling-approach selection — the core idea of the paper
// (§III-B3): every module is simulated either cycle-accurately or with an
// analytical model, chosen independently behind fixed interfaces.
#pragma once

#include <string>

namespace swiftsim {

/// Execution-unit module implementation.
enum class AluModelKind {
  kCycleAccurate,      // explicit pipeline stages ticked every cycle
  kHybridAnalytical,   // fixed latency + cycle-accurate contention (Fig. 3)
};

/// Memory-access module implementation.
enum class MemModelKind {
  kCycleAccurate,  // full L1/NoC/L2/DRAM timing model
  kAnalytical,     // Eq. 1 expected latency + contention pipe (§III-D2)
};

/// Front-end (fetch/i-buffer, instruction & constant caches) detail.
enum class FrontendKind {
  kDetailed,    // per-warp i-buffers refilled at fetch bandwidth
  kSimplified,  // next trace instruction always available
};

struct ModelSelection {
  AluModelKind alu = AluModelKind::kCycleAccurate;
  MemModelKind mem = MemModelKind::kCycleAccurate;
  FrontendKind frontend = FrontendKind::kDetailed;
  /// Enables the second-order SiliconEffects of the GpuConfig — used only
  /// by the "silicon oracle" standing in for real-hardware cycle counts.
  bool silicon_effects = false;
};

/// The simulator configurations evaluated in the paper plus the oracle.
enum class SimLevel {
  kSilicon,         // detailed + silicon effects: the real-GPU stand-in
  kDetailed,        // Accel-Sim-class cycle-accurate baseline
  kSwiftSimBasic,   // hybrid ALU + simplified frontend, CA memory
  kSwiftSimMemory,  // Swift-Sim-Basic + analytical memory model
};

inline ModelSelection SelectionFor(SimLevel level) {
  switch (level) {
    case SimLevel::kSilicon:
      return {AluModelKind::kCycleAccurate, MemModelKind::kCycleAccurate,
              FrontendKind::kDetailed, true};
    case SimLevel::kDetailed:
      return {AluModelKind::kCycleAccurate, MemModelKind::kCycleAccurate,
              FrontendKind::kDetailed, false};
    case SimLevel::kSwiftSimBasic:
      return {AluModelKind::kHybridAnalytical, MemModelKind::kCycleAccurate,
              FrontendKind::kSimplified, false};
    case SimLevel::kSwiftSimMemory:
      return {AluModelKind::kHybridAnalytical, MemModelKind::kAnalytical,
              FrontendKind::kSimplified, false};
  }
  return {};
}

inline std::string ToString(SimLevel level) {
  switch (level) {
    case SimLevel::kSilicon:
      return "silicon";
    case SimLevel::kDetailed:
      return "accel-sim-baseline";
    case SimLevel::kSwiftSimBasic:
      return "swift-sim-basic";
    case SimLevel::kSwiftSimMemory:
      return "swift-sim-memory";
  }
  return "?";
}

}  // namespace swiftsim
