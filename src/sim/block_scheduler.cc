#include "sim/block_scheduler.h"

#include "common/status.h"

namespace swiftsim {

void BlockScheduler::StartKernel(const KernelTrace* kernel) {
  SS_CHECK(kernel != nullptr, "BlockScheduler: null kernel");
  SS_CHECK(Done(), "BlockScheduler: previous kernel still in flight");
  kernel_ = kernel;
  next_cta_ = 0;
  completed_ = 0;
}

unsigned BlockScheduler::AssignPending(
    std::vector<std::unique_ptr<SmCore>>& sms) {
  if (kernel_ == nullptr || AllLaunched()) return 0;
  const KernelInfo& info = kernel_->info();
  unsigned launched = 0;
  const unsigned n = static_cast<unsigned>(sms.size());
  // Breadth-first: one CTA per SM per pass (hardware distributes blocks
  // across SMs before stacking them), rotating the starting SM so
  // single-CTA tails spread over the chip.
  bool any = true;
  while (any && !AllLaunched()) {
    any = false;
    for (unsigned k = 0; k < n && !AllLaunched(); ++k) {
      SmCore& sm = *sms[(rr_ + k) % n];
      if (sm.CanTakeCta(info)) {
        sm.LaunchCta(*kernel_, next_cta_++);
        ++launched;
        any = true;
      }
    }
  }
  rr_ = (rr_ + 1) % n;
  return launched;
}

}  // namespace swiftsim
