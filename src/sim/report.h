// Performance-report builder on top of the Metrics Gatherer: aggregates
// the per-module counters of a SimResult into the headline quantities an
// architect reads first (paper §III-C: "evaluate overall performance and
// analyze performance bottlenecks").
#pragma once

#include <cstdint>
#include <string>

#include "sim/gpu_model.h"

namespace swiftsim {

struct PerfReport {
  double ipc = 0;                 // instructions per cycle, whole chip
  double sm_busy_fraction = 0;    // active / (active + stall) cycles
  double l1_hit_rate = 0;         // aggregated over SMs (0 if no L1 model)
  double l2_hit_rate = 0;         // aggregated over partitions
  double dram_row_hit_rate = 0;
  std::uint64_t l1_accesses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t noc_bytes = 0;
  std::uint64_t reservation_fails = 0;  // L1 + L2 (Fig. 6 discussion)
  std::uint64_t completed_ctas = 0;

  // Driver telemetry: cycle skipping and cross-launch memoization
  // (DESIGN.md §10). Zero when the feature was off or never fired.
  std::uint64_t cycles_skipped = 0;
  std::uint64_t skip_jumps = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_cycles_avoided = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Aggregates a finished run's metrics. Works for every simulator level;
/// memory-system fields are zero when the run used the analytical path.
PerfReport BuildReport(const SimResult& result);

}  // namespace swiftsim
