#include "sim/metrics.h"

#include "common/status.h"
#include "common/strutil.h"
#include "sim/sm.h"

namespace swiftsim {

void MetricsGatherer::Register(const std::string& module,
                               const std::string& counter, Source source) {
  const std::string key = module + "." + counter;
  SS_CHECK(sources_.count(key) == 0, "duplicate metric '" + key + "'");
  sources_[key] = std::move(source);
}

void MetricsGatherer::Register(const std::string& module,
                               const std::string& counter,
                               const std::uint64_t* var) {
  Register(module, counter, [var] { return *var; });
}

std::map<std::string, std::uint64_t> MetricsGatherer::Snapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, source] : sources_) out[key] = source();
  return out;
}

std::uint64_t MetricsGatherer::Read(const std::string& full_name) const {
  auto it = sources_.find(full_name);
  SS_CHECK(it != sources_.end(), "unknown metric '" + full_name + "'");
  return it->second();
}

std::uint64_t MetricsGatherer::SumAcross(const std::string& module_prefix,
                                         const std::string& counter) const {
  std::uint64_t sum = 0;
  const std::string suffix = "." + counter;
  for (const auto& [key, source] : sources_) {
    if (!StartsWith(key, module_prefix)) continue;
    if (key.size() >= suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
      sum += source();
    }
  }
  return sum;
}

void RegisterSmMetrics(MetricsGatherer& gatherer, const SmCore& sm) {
  const std::string mod = "sm" + std::to_string(sm.id());
  const SmStats* st = &sm.stats();
  gatherer.Register(mod, "issued_instrs", &st->issued_instrs);
  gatherer.Register(mod, "issued_mem", &st->issued_mem);
  gatherer.Register(mod, "active_cycles", &st->active_cycles);
  gatherer.Register(mod, "stall_cycles", &st->stall_cycles);
  gatherer.Register(mod, "completed_ctas", &st->completed_ctas);
  if (const CacheStats* l1 = sm.l1_stats()) {
    gatherer.Register(mod + ".l1", "accesses", &l1->accesses);
    gatherer.Register(mod + ".l1", "hits", &l1->hits);
    gatherer.Register(mod + ".l1", "misses", &l1->misses);
    gatherer.Register(mod + ".l1", "sector_misses", &l1->sector_misses);
    gatherer.Register(mod + ".l1", "reservation_fails",
                      &l1->reservation_fails);
    gatherer.Register(mod + ".l1", "bank_conflicts", &l1->bank_conflicts);
  }
}

}  // namespace swiftsim
