#include "sim/metrics.h"

#include "common/status.h"
#include "common/strutil.h"

namespace swiftsim {

void MetricsGatherer::Register(const std::string& module,
                               const std::string& counter, Source source) {
  const std::string key = module + "." + counter;
  SS_CHECK(sources_.count(key) == 0, "duplicate metric '" + key + "'");
  sources_[key] = std::move(source);
}

void MetricsGatherer::Register(const std::string& module,
                               const std::string& counter,
                               const std::uint64_t* var) {
  Register(module, counter, [var] { return *var; });
}

std::map<std::string, std::uint64_t> MetricsGatherer::Snapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, source] : sources_) out[key] = source();
  return out;
}

std::uint64_t MetricsGatherer::Read(const std::string& full_name) const {
  auto it = sources_.find(full_name);
  SS_CHECK(it != sources_.end(), "unknown metric '" + full_name + "'");
  return it->second();
}

std::uint64_t MetricsGatherer::SumAcross(const std::string& module_prefix,
                                         const std::string& counter) const {
  std::uint64_t sum = 0;
  const std::string suffix = "." + counter;
  for (const auto& [key, source] : sources_) {
    if (!StartsWith(key, module_prefix)) continue;
    if (key.size() >= suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
      sum += source();
    }
  }
  return sum;
}

}  // namespace swiftsim
