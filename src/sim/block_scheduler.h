// The Block Scheduler module (paper Fig. 2): dispatches the grid's CTAs
// onto SMs greedily — whenever an SM has capacity it receives the next
// pending CTA — and tracks grid completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/sm.h"
#include "trace/kernel.h"

namespace swiftsim {

class BlockScheduler {
 public:
  BlockScheduler() = default;

  void StartKernel(const KernelTrace* kernel);

  /// Launches as many pending CTAs as fit right now, rotating over SMs for
  /// load balance. Returns the number launched.
  unsigned AssignPending(std::vector<std::unique_ptr<SmCore>>& sms);

  /// Called (via the SMs' completion hook) when a CTA finishes. Safe to
  /// call concurrently from shard worker threads.
  void OnCtaComplete() {
    completed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Replays the rotor advancement of `skipped` elided AssignPending calls
  /// (cycle skipping, DESIGN.md §9). The per-cycle loop advances the
  /// starting-SM rotor once per call while CTAs are pending; capacity
  /// cannot appear during a skipped span (frees require progress), so the
  /// elided calls would have launched nothing and only rotated.
  void OnCyclesSkipped(Cycle skipped, unsigned num_sms) {
    if (kernel_ == nullptr || AllLaunched()) return;
    rr_ = static_cast<unsigned>((rr_ + skipped % num_sms) % num_sms);
  }

  bool AllLaunched() const {
    return kernel_ == nullptr || next_cta_ >= kernel_->info().num_ctas;
  }
  bool Done() const {
    return kernel_ == nullptr || completed() >= kernel_->info().num_ctas;
  }

  CtaId launched() const { return next_cta_; }
  std::uint32_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  const KernelTrace* kernel_ = nullptr;
  CtaId next_cta_ = 0;
  std::atomic<std::uint32_t> completed_{0};
  unsigned rr_ = 0;
};

}  // namespace swiftsim
