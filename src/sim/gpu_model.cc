#include "sim/gpu_model.h"

#include <algorithm>
#include <chrono>

#include "common/status.h"

namespace swiftsim {

GpuModel::GpuModel(const GpuConfig& cfg, const ModelSelection& selection,
                   const MemProfile* profile)
    : cfg_(cfg), sel_(selection) {
  cfg_.Validate();
  if (sel_.mem == MemModelKind::kAnalytical) {
    SS_CHECK(profile != nullptr,
             "analytical memory mode requires a MemProfile (run the cache "
             "pre-pass first)");
    mem_model_ = std::make_unique<AnalyticalMemModel>(cfg_, profile);
  } else {
    addrmap_ = std::make_unique<AddrMap>(cfg_.num_mem_partitions,
                                         cfg_.l2.line_bytes);
    noc_ = std::make_unique<Interconnect>(cfg_.num_sms,
                                          cfg_.num_mem_partitions, cfg_.noc,
                                          cfg_.l2.sector_bytes);
    CacheParams l2_params = cfg_.l2;
    DramConfig dram_params = cfg_.dram;
    if (sel_.silicon_effects) {
      l2_params.latency += cfg_.effects.l2_latency_extra;
      dram_params.latency += cfg_.effects.dram_latency_extra;
      dram_params.row_hit_latency += cfg_.effects.dram_latency_extra / 2;
    }
    for (unsigned p = 0; p < cfg_.num_mem_partitions; ++p) {
      l2_.push_back(std::make_unique<SectorCache>(
          "l2." + std::to_string(p), l2_params, 1000 + p));
      SiliconEffects effects = cfg_.effects;
      effects.enabled = sel_.silicon_effects;
      dram_.push_back(std::make_unique<DramChannel>(
          dram_params, cfg_.l2.sector_bytes, effects));
    }
  }
  sms_.reserve(cfg_.num_sms);
  for (unsigned s = 0; s < cfg_.num_sms; ++s) {
    sms_.push_back(std::make_unique<SmCore>(
        cfg_, sel_, s, mem_model_.get(),
        [this](SmId) { scheduler_.OnCtaComplete(); }));
  }
  RegisterMetrics();
}

void GpuModel::RegisterMetrics() {
  for (const auto& sm : sms_) {
    const std::string mod = "sm" + std::to_string(sm->id());
    const SmStats* st = &sm->stats();
    gatherer_.Register(mod, "issued_instrs", &st->issued_instrs);
    gatherer_.Register(mod, "issued_mem", &st->issued_mem);
    gatherer_.Register(mod, "active_cycles", &st->active_cycles);
    gatherer_.Register(mod, "stall_cycles", &st->stall_cycles);
    gatherer_.Register(mod, "completed_ctas", &st->completed_ctas);
    if (const CacheStats* l1 = sm->l1_stats()) {
      gatherer_.Register(mod + ".l1", "accesses", &l1->accesses);
      gatherer_.Register(mod + ".l1", "hits", &l1->hits);
      gatherer_.Register(mod + ".l1", "misses", &l1->misses);
      gatherer_.Register(mod + ".l1", "sector_misses", &l1->sector_misses);
      gatherer_.Register(mod + ".l1", "reservation_fails",
                         &l1->reservation_fails);
      gatherer_.Register(mod + ".l1", "bank_conflicts", &l1->bank_conflicts);
    }
  }
  for (std::size_t p = 0; p < l2_.size(); ++p) {
    const std::string mod = "l2." + std::to_string(p);
    const CacheStats* st = &l2_[p]->stats();
    gatherer_.Register(mod, "accesses", &st->accesses);
    gatherer_.Register(mod, "hits", &st->hits);
    gatherer_.Register(mod, "misses", &st->misses);
    gatherer_.Register(mod, "sector_misses", &st->sector_misses);
    gatherer_.Register(mod, "reservation_fails", &st->reservation_fails);
    gatherer_.Register(mod, "mshr_stalls", &st->mshr_stalls);
    gatherer_.Register(mod, "writebacks", &st->writebacks);
  }
  for (std::size_t p = 0; p < dram_.size(); ++p) {
    const std::string mod = "dram." + std::to_string(p);
    const DramStats* st = &dram_[p]->stats();
    gatherer_.Register(mod, "reads", &st->reads);
    gatherer_.Register(mod, "writes", &st->writes);
    gatherer_.Register(mod, "row_hits", &st->row_hits);
    gatherer_.Register(mod, "bytes", &st->bytes);
  }
  if (noc_) {
    gatherer_.Register("noc.req", "injected",
                       &noc_->request_stats().injected);
    gatherer_.Register("noc.req", "bytes", &noc_->request_stats().bytes);
    gatherer_.Register("noc.req", "inject_stalls",
                       &noc_->request_stats().inject_stalls);
    gatherer_.Register("noc.resp", "injected",
                       &noc_->response_stats().injected);
    gatherer_.Register("noc.resp", "bytes", &noc_->response_stats().bytes);
  }
}

bool GpuModel::MemQuiescent() const {
  if (noc_ && !noc_->quiescent()) return false;
  for (const auto& l2 : l2_) {
    if (!l2->quiescent()) return false;
  }
  for (const auto& d : dram_) {
    if (!d->quiescent()) return false;
  }
  return true;
}

bool GpuModel::AllQuiescent() const {
  for (const auto& sm : sms_) {
    if (!sm->Quiescent()) return false;
  }
  return MemQuiescent();
}

void GpuModel::TickMemorySystem() {
  // SM L1 miss queues drain into the request network.
  for (auto& sm : sms_) {
    auto& mq = sm->l1()->miss_queue();
    while (!mq.empty()) {
      const MemRequest& req = mq.front();
      const unsigned p = addrmap_->PartitionOf(req.line_addr);
      if (!noc_->InjectRequest(sm->id(), p, req)) break;
      mq.pop_front();
    }
  }
  noc_->Tick(now_);
  for (unsigned p = 0; p < cfg_.num_mem_partitions; ++p) {
    SectorCache& l2 = *l2_[p];
    l2.BeginCycle(now_);
    // Ejected requests into the L2 slice (its banks limit throughput).
    auto& rq = noc_->requests_at(p);
    unsigned attempts = cfg_.l2.banks;
    while (!rq.empty() && attempts-- > 0) {
      if (!l2.Access(rq.front(), now_)) break;
      rq.pop_front();
    }
    // L2 load responses ride the response network back.
    auto& resp = l2.responses();
    while (!resp.empty()) {
      if (!noc_->InjectResponse(p, resp.front())) break;
      resp.pop_front();
    }
    // L2 misses and writebacks go to this partition's DRAM channel.
    auto& mq = l2.miss_queue();
    while (!mq.empty()) {
      if (!dram_[p]->Enqueue(mq.front())) break;
      mq.pop_front();
    }
    dram_[p]->Tick(now_);
    auto& dresp = dram_[p]->responses();
    while (!dresp.empty()) {
      l2.Fill(dresp.front(), now_);
      dresp.pop_front();
    }
  }
}

Cycle GpuModel::RunKernel(const KernelTrace& kernel) {
  const Cycle start = now_;
  const KernelInfo& info = kernel.info();
  SS_CHECK(sms_[0]->allocator().Feasible(info),
           "kernel '" + info.name + "' cannot fit on an SM of " + cfg_.name);
  if (sel_.silicon_effects) now_ += cfg_.effects.kernel_launch_overhead;
  const unsigned active_sms =
      std::min<unsigned>(cfg_.num_sms, info.num_ctas);
  for (auto& sm : sms_) sm->OnKernelStart(active_sms);
  scheduler_.StartKernel(&kernel);

  const bool mem_ca = sel_.mem == MemModelKind::kCycleAccurate;
  const bool never_jump = sel_.alu == AluModelKind::kCycleAccurate;

  while (!scheduler_.Done() || !AllQuiescent()) {
    scheduler_.AssignPending(sms_);
    bool progressed = false;
    for (auto& sm : sms_) {
      if (mem_ca) {
        auto& resps = noc_->responses_at(sm->id());
        while (!resps.empty()) {
          sm->DeliverResponse(resps.front(), now_);
          resps.pop_front();
          progressed = true;
        }
      }
      if (!sm->Active()) continue;
      // Event-driven fast path (hybrid modes): a sleeping SM is skipped
      // until its next wake cycle; this is exact, not an approximation,
      // because nothing it owns can change state before then.
      if (!never_jump && sm->NextWake() > now_) continue;
      progressed |= sm->Tick(now_);
    }
    bool mem_busy = false;
    if (mem_ca) {
      TickMemorySystem();
      mem_busy = !MemQuiescent();
    }
    if (never_jump || progressed || mem_busy) {
      ++now_;
      continue;
    }
    // Hybrid fast-forward: nothing can change until the earliest future
    // event, so jumping there is exact, not an approximation.
    Cycle wake = kNever;
    for (const auto& sm : sms_) {
      if (sm->Active()) wake = std::min(wake, sm->NextWake());
    }
    if (wake == kNever) {
      SS_CHECK(scheduler_.Done() && AllQuiescent(),
               "simulation wedged: no progress and no future events");
      break;
    }
    now_ = std::max(now_ + 1, wake);
  }
  return now_ - start;
}

SimResult GpuModel::RunApplication(const Application& app) {
  SimResult result;
  result.app = app.name;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& kernel : app.kernels) {
    const std::uint64_t instrs_before = TotalIssuedInstrs();
    const Cycle cycles = RunKernel(*kernel);
    KernelResult kr;
    kr.name = kernel->info().name;
    kr.cycles = cycles;
    kr.instructions = TotalIssuedInstrs() - instrs_before;
    result.kernels.push_back(kr);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.total_cycles = now_;
  result.instructions = TotalIssuedInstrs();
  result.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  result.metrics = gatherer_.Snapshot();
  return result;
}

std::uint64_t GpuModel::TotalIssuedInstrs() const {
  std::uint64_t sum = 0;
  for (const auto& sm : sms_) sum += sm->stats().issued_instrs;
  return sum;
}

std::uint64_t GpuModel::TotalReservationFails() const {
  // Accel-Sim's RESERVATION_FAIL umbrella covers line-allocation failures
  // AND MSHR entry/merge failures; count both, at both levels.
  std::uint64_t sum = 0;
  for (const auto& sm : sms_) {
    if (const CacheStats* l1 = sm->l1_stats()) {
      sum += l1->reservation_fails + l1->mshr_stalls;
    }
  }
  for (const auto& l2 : l2_) {
    sum += l2->stats().reservation_fails + l2->stats().mshr_stalls;
  }
  return sum;
}

}  // namespace swiftsim
