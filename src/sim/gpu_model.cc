#include "sim/gpu_model.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <system_error>

#include "common/status.h"

namespace swiftsim {

GpuModel::GpuModel(const GpuConfig& cfg, const ModelSelection& selection,
                   const MemProfile* profile)
    : cfg_(cfg), sel_(selection) {
  cfg_.Validate();
  l2_drain_attempts_ =
      cfg_.l2_drain_attempts != 0 ? cfg_.l2_drain_attempts : cfg_.l2.banks;
  wd_enabled_ =
      cfg_.watchdog.stall_cycles != 0 || cfg_.watchdog.wall_seconds > 0;
  if (sel_.mem == MemModelKind::kAnalytical) {
    SS_CHECK(profile != nullptr,
             "analytical memory mode requires a MemProfile (run the cache "
             "pre-pass first)");
    mem_model_ = std::make_unique<AnalyticalMemModel>(cfg_, profile);
  } else {
    addrmap_ = std::make_unique<AddrMap>(cfg_.num_mem_partitions,
                                         cfg_.l2.line_bytes);
    noc_ = std::make_unique<Interconnect>(cfg_.num_sms,
                                          cfg_.num_mem_partitions, cfg_.noc,
                                          cfg_.l2.sector_bytes);
    CacheParams l2_params = cfg_.l2;
    DramConfig dram_params = cfg_.dram;
    if (sel_.silicon_effects) {
      l2_params.latency += cfg_.effects.l2_latency_extra;
      dram_params.latency += cfg_.effects.dram_latency_extra;
      dram_params.row_hit_latency += cfg_.effects.dram_latency_extra / 2;
    }
    l2_.reserve(cfg_.num_mem_partitions);
    dram_.reserve(cfg_.num_mem_partitions);
    for (unsigned p = 0; p < cfg_.num_mem_partitions; ++p) {
      l2_.push_back(std::make_unique<SectorCache>(
          "l2." + std::to_string(p), l2_params, 1000 + p));
      SiliconEffects effects = cfg_.effects;
      effects.enabled = sel_.silicon_effects;
      dram_.push_back(std::make_unique<DramChannel>(
          dram_params, cfg_.l2.sector_bytes, effects));
    }
  }
  sms_.reserve(cfg_.num_sms);
  for (unsigned s = 0; s < cfg_.num_sms; ++s) {
    sms_.push_back(std::make_unique<SmCore>(
        cfg_, sel_, s, mem_model_.get(),
        [this](SmId) { scheduler_.OnCtaComplete(); }));
  }
  if (sel_.mem == MemModelKind::kCycleAccurate) {
    // Port rings must hold more than the L1's output budget: evictions are
    // pushed past the budget (EmitEviction has no capacity check), so the
    // occupancy can transiently exceed out_capacity.
    constexpr std::size_t kPortCapacity = 64;
    sm_ports_.reserve(cfg_.num_sms);
    for (unsigned s = 0; s < cfg_.num_sms; ++s) {
      sm_ports_.push_back(std::make_unique<SmMemPort>(kPortCapacity));
      if (SectorCache* l1 = sms_[s]->l1()) {
        l1->BindPortOccupancy(&sm_ports_[s]->pending);
      }
    }
  }
  RegisterMetrics();
}

void GpuModel::RegisterMetrics() {
  for (const auto& sm : sms_) RegisterSmMetrics(gatherer_, *sm);
  for (std::size_t p = 0; p < l2_.size(); ++p) {
    const std::string mod = "l2." + std::to_string(p);
    const CacheStats* st = &l2_[p]->stats();
    gatherer_.Register(mod, "accesses", &st->accesses);
    gatherer_.Register(mod, "hits", &st->hits);
    gatherer_.Register(mod, "misses", &st->misses);
    gatherer_.Register(mod, "sector_misses", &st->sector_misses);
    gatherer_.Register(mod, "reservation_fails", &st->reservation_fails);
    gatherer_.Register(mod, "mshr_stalls", &st->mshr_stalls);
    gatherer_.Register(mod, "writebacks", &st->writebacks);
  }
  for (std::size_t p = 0; p < dram_.size(); ++p) {
    const std::string mod = "dram." + std::to_string(p);
    const DramStats* st = &dram_[p]->stats();
    gatherer_.Register(mod, "reads", &st->reads);
    gatherer_.Register(mod, "writes", &st->writes);
    gatherer_.Register(mod, "row_hits", &st->row_hits);
    gatherer_.Register(mod, "bytes", &st->bytes);
  }
  gatherer_.Register("driver", "cycles_skipped", &skip_.cycles_skipped);
  gatherer_.Register("driver", "skip_jumps", &skip_.jumps);
  gatherer_.Register("driver", "sm_ticks_saved", &skip_.sm_ticks_saved);
  for (unsigned k = 0; k < SkipStats::kHistBuckets; ++k) {
    gatherer_.Register("driver",
                       "skip_span_ge_" + std::to_string(1u << k),
                       &skip_.span_hist[k]);
  }
  if (noc_) {
    gatherer_.Register("noc.req", "injected",
                       &noc_->request_stats().injected);
    gatherer_.Register("noc.req", "bytes", &noc_->request_stats().bytes);
    gatherer_.Register("noc.req", "inject_stalls",
                       &noc_->request_stats().inject_stalls);
    gatherer_.Register("noc.resp", "injected",
                       &noc_->response_stats().injected);
    gatherer_.Register("noc.resp", "bytes", &noc_->response_stats().bytes);
  }
}

bool GpuModel::MemQuiescent() const {
  // Responses in fault-injection custody are still in flight: completion
  // and cycle skipping must both wait for (or wedge on) them.
  if (fault_ && fault_->AnyHeld()) return false;
  if (noc_ && !noc_->quiescent()) return false;
  for (const auto& l2 : l2_) {
    if (!l2->quiescent()) return false;
  }
  for (const auto& d : dram_) {
    if (!d->quiescent()) return false;
  }
  // Drained-but-uninjected requests (e.g. stores, which mint no MSHR
  // entry) live only in the ports; without this the model could report
  // quiescence while traffic is still in flight.
  for (const auto& port : sm_ports_) {
    if (port->pending.load(std::memory_order_acquire) != 0) return false;
  }
  return true;
}

bool GpuModel::AllQuiescent() const {
  for (const auto& sm : sms_) {
    if (!sm->Quiescent()) return false;
  }
  return MemQuiescent();
}

bool GpuModel::TickSmRange(unsigned first, unsigned last, Cycle now) {
  const bool mem_ca = sel_.mem == MemModelKind::kCycleAccurate;
  const bool never_jump = sel_.alu == AluModelKind::kCycleAccurate;
  // With cycle skipping enabled the wake gate applies in every mode: a
  // sleeping SM's tick would be a no-op, so eliding it is exact. With it
  // disabled, cycle-accurate ALU modes keep the per-cycle reference
  // behavior (tick every active SM) — the --no-skip A/B baseline.
  const bool tick_all = never_jump && !cfg_.cycle_skip;
  const bool account_skips = never_jump && cfg_.cycle_skip;
  bool progressed = false;
  std::vector<MemResponse> due;  // fault-injection redeliveries only
  for (unsigned i = first; i < last; ++i) {
    SmCore& sm = *sms_[i];
    ScopedSimContext::SetSm(static_cast<int>(i));
    if (mem_ca) {
      if (fault_) {
        // Held responses whose delay or retry expired re-enter here, in
        // custody order, before the cycle's fresh deliveries.
        due.clear();
        fault_->CollectDue(sm.id(), now, &due);
        for (const MemResponse& r : due) {
          sm.DeliverResponse(r, now);
          progressed = true;
        }
      }
      auto& resps = noc_->responses_at(sm.id());
      while (!resps.empty()) {
        if (fault_ != nullptr) {
          const MemResponse r = resps.front();
          resps.pop_front();
          if (fault_->OnResponse(sm.id(), r, now)) {
            sm.DeliverResponse(r, now);
          }
          // Taking custody still changed state; count it as progress so
          // the driver keeps ticking toward the redelivery cycle.
          progressed = true;
          continue;
        }
        sm.DeliverResponse(resps.front(), now);
        resps.pop_front();
        progressed = true;
      }
    }
    // Event-driven fast path: a sleeping SM is skipped until its next
    // wake cycle; this is exact, not an approximation, because nothing it
    // owns can change state before then. An SM sleeping through L1
    // miss-queue backpressure wakes as soon as the queue drains below
    // capacity (CapacityWakeDue) — the fullness it sees here is exactly
    // what its retry would have seen, since only TickSharedMemory of the
    // previous cycle changes the queue-plus-port occupancy.
    if (sm.Active()) {
      if (fault_ && fault_->FreezeIssue(sm.id(), now)) {
        // Issue frozen by the fault plan: the SM is not ticked at all.
        // Responses above were still delivered, so a thaw resumes cleanly.
      } else if (tick_all || sm.NextWake() <= now ||
                 (account_skips && sm.CapacityWakeDue())) {
        progressed |= sm.Tick(now);
      } else if (account_skips) {
        // The per-cycle reference would have ticked this SM, counted a
        // stall, and re-failed any capacity-blocked injection; keep the
        // metrics bit-identical.
        sm.AccountSkippedCycles(1);
      }
    }
    if (mem_ca) {
      // Drain the L1 miss queue into this SM's port. At slack=1 the port
      // is consumed the same cycle, so the request reaches the NoC exactly
      // when the serial loop's direct drain would have delivered it.
      SmMemPort& port = *sm_ports_[i];
      auto& mq = sm.l1()->miss_queue();
      while (!mq.empty()) {
        if (!port.q.Push({now, mq.front()})) break;
        port.pending.fetch_add(1, std::memory_order_release);
        mq.pop_front();
      }
    }
  }
  ScopedSimContext::SetSm(-1);
  return progressed;
}

void GpuModel::TickSharedMemory(Cycle now) {
  // A fault-plan backpressure storm stalls the coordinator's two drain
  // points (SM ports → NoC, NoC → L2); the queues behind them fill and
  // the resulting queue-full rejections propagate all the way up to the
  // LD/ST units, exactly like a congested interconnect.
  const bool storm = fault_ && fault_->StormActive(now);
  // SM ports drain into the request network in SM order, stopping per SM
  // on the first rejection — identical arbitration to the serial drain.
  // Entries stamped in the future (slack > 1) wait for their cycle.
  if (!storm) {
    for (unsigned s = 0; s < sm_ports_.size(); ++s) {
      SpscQueue<SmMemPort::Stamped>& q = sm_ports_[s]->q;
      while (const SmMemPort::Stamped* e = q.Front()) {
        if (e->cycle > now) break;
        const unsigned p = addrmap_->PartitionOf(e->req.line_addr);
        if (!noc_->InjectRequest(s, p, e->req)) break;
        q.Pop();
        sm_ports_[s]->pending.fetch_sub(1, std::memory_order_release);
      }
    }
  }
  noc_->Tick(now);
  for (unsigned p = 0; p < cfg_.num_mem_partitions; ++p) {
    SectorCache& l2 = *l2_[p];
    l2.BeginCycle(now);
    // Ejected requests into the L2 slice (its banks limit throughput).
    auto& rq = noc_->requests_at(p);
    unsigned attempts = storm ? 0 : l2_drain_attempts_;
    while (!rq.empty() && attempts-- > 0) {
      if (!l2.Access(rq.front(), now)) break;
      rq.pop_front();
    }
    // L2 load responses ride the response network back.
    auto& resp = l2.responses();
    while (!resp.empty()) {
      if (!noc_->InjectResponse(p, resp.front())) break;
      resp.pop_front();
    }
    // L2 misses and writebacks go to this partition's DRAM channel.
    auto& mq = l2.miss_queue();
    while (!mq.empty()) {
      if (!dram_[p]->Enqueue(mq.front())) break;
      mq.pop_front();
    }
    dram_[p]->Tick(now);
    auto& dresp = dram_[p]->responses();
    while (!dresp.empty()) {
      l2.Fill(dresp.front(), now);
      dresp.pop_front();
    }
  }
}

void GpuModel::BeginKernel(const KernelTrace& kernel) {
  const KernelInfo& info = kernel.info();
  current_kernel_ = &kernel;
  SS_CHECK(sms_[0]->allocator().Feasible(info),
           "kernel '" + info.name + "' cannot fit on an SM of " + cfg_.name);
  if (sel_.silicon_effects) now_ += cfg_.effects.kernel_launch_overhead;
  const unsigned active_sms =
      std::min<unsigned>(cfg_.num_sms, info.num_ctas);
  for (auto& sm : sms_) sm->OnKernelStart(active_sms);
  scheduler_.StartKernel(&kernel);
  if (wd_enabled_) {
    // Re-arm the stall window per kernel and start the wall budget at the
    // model's first launch (the budget covers the whole application run).
    wd_last_sig_ = ProgressSignature();
    wd_next_check_ = now_ + cfg_.watchdog.stall_cycles;
    if (!wall_armed_ && cfg_.watchdog.wall_seconds > 0) {
      wall_armed_ = true;
      wall_deadline_ = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               cfg_.watchdog.wall_seconds));
    }
  }
}

Cycle GpuModel::MinNextWake() const {
  Cycle wake = kNever;
  for (const auto& sm : sms_) {
    if (sm->Active()) wake = std::min(wake, sm->NextWake());
  }
  return wake;
}

Cycle GpuModel::MemNextEventAfter(Cycle now) const {
  if (!noc_) return kNever;
  // Port entries retry injection every cycle. Entries stamped in the
  // future (slack > 1 windows) make this conservative — waking early is
  // always exact, only waking late could diverge.
  for (const auto& port : sm_ports_) {
    if (port->pending.load(std::memory_order_acquire) != 0) return now + 1;
  }
  Cycle ev = noc_->NextEventAfter(now);
  if (fault_) {
    // Held responses redeliver at their due cycle; a never-due hold
    // contributes no event, deliberately wedging the calendar so the
    // watchdog (or the wedge check) trips instead of skipping past it.
    ev = std::min(ev, fault_->NextDueAfter(now));
  }
  for (const auto& l2 : l2_) {
    if (ev <= now + 1) return now + 1;
    ev = std::min(ev, l2->NextEventAfter(now));
  }
  for (const auto& d : dram_) {
    if (ev <= now + 1) return now + 1;
    ev = std::min(ev, d->NextEventAfter(now));
  }
  return ev;
}

void GpuModel::FastForward(Cycle skipped) {
  if (skipped == 0) return;
  // Replay exactly what the per-cycle reference loop would have done over
  // the elided span. The calendar proved every component tick is a no-op,
  // so the only state to advance is per-call (not per-event) bookkeeping:
  // the NoC arbitration rotors, the block scheduler's starting-SM rotor,
  // and per-SM stall accounting.
  if (noc_) noc_->FastForward(skipped);
  scheduler_.OnCyclesSkipped(skipped, cfg_.num_sms);
  for (const auto& sm : sms_) {
    if (sm->Active()) {
      sm->AccountSkippedCycles(skipped);
      skip_.sm_ticks_saved += skipped;
    }
  }
  skip_.cycles_skipped += skipped;
  ++skip_.jumps;
  unsigned bucket = 0;
  for (Cycle span = skipped;
       span > 1 && bucket + 1 < SkipStats::kHistBuckets; span >>= 1) {
    ++bucket;
  }
  ++skip_.span_hist[bucket];
}

Cycle GpuModel::RunKernel(const KernelTrace& kernel) {
  const Cycle start = now_;
  ScopedSimContext ctx(kernel.info().name.c_str(), &now_);
  BeginKernel(kernel);

  const bool mem_ca = sel_.mem == MemModelKind::kCycleAccurate;
  const bool never_jump = sel_.alu == AluModelKind::kCycleAccurate;
  const bool skip = never_jump && cfg_.cycle_skip;

  while (!KernelDone()) {
    AssignPendingCtas();
    const bool progressed = TickSmRange(0, cfg_.num_sms, now_);
    bool mem_busy = false;
    if (mem_ca) {
      TickSharedMemory(now_);
      mem_busy = !MemQuiescent();
    }
    if (wd_enabled_) WatchdogPoll(now_);
    if (skip) {
      // Event-calendar cycle skipping (DESIGN.md §9): on a no-progress
      // cycle, jump straight to the earliest SM or memory-system event.
      // Bit-identical to per-cycle ticking because every elided tick is
      // provably a no-op (and FastForward replays per-call rotors).
      if (!progressed) {
        if (KernelDone()) {
          // This tick reached quiescence; the per-cycle reference loop
          // still advances the clock past it before exiting. Without this
          // check a standing calendar entry (e.g. the silicon DRAM
          // refresh edge) would draw a phantom jump after completion.
          ++now_;
          break;
        }
        Cycle wake = MinNextWake();
        if (mem_ca) wake = std::min(wake, MemNextEventAfter(now_));
        if (wake == kNever) ThrowWedged(now_);
        if (wake > now_ + 1) {
          FastForward(wake - now_ - 1);
          now_ = wake;
          continue;
        }
      }
      ++now_;
      continue;
    }
    if (never_jump || progressed || mem_busy) {
      ++now_;
      continue;
    }
    // Hybrid fast-forward: nothing can change until the earliest future
    // event, so jumping there is exact, not an approximation.
    const Cycle wake = MinNextWake();
    if (wake == kNever) {
      if (!KernelDone()) ThrowWedged(now_);
      break;
    }
    now_ = std::max(now_ + 1, wake);
  }
  return now_ - start;
}

SimResult GpuModel::RunApplication(const Application& app) {
  SimResult result;
  result.app = app.name;
  result.kernels.reserve(app.kernels.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& kernel : app.kernels) {
    const std::uint64_t instrs_before = TotalIssuedInstrs();
    const Cycle cycles = RunKernel(*kernel);
    KernelResult kr;
    kr.name = kernel->info().name;
    kr.cycles = cycles;
    kr.instructions = TotalIssuedInstrs() - instrs_before;
    result.kernels.push_back(kr);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.total_cycles = now_;
  result.instructions = TotalIssuedInstrs();
  result.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  result.metrics = gatherer_.Snapshot();
  return result;
}

std::uint64_t GpuModel::TotalIssuedInstrs() const {
  std::uint64_t sum = 0;
  for (const auto& sm : sms_) sum += sm->stats().issued_instrs;
  return sum;
}

std::uint64_t GpuModel::ProgressSignature() const {
  // Any forward progress moves at least one of these monotone counters:
  // instruction retirement on an SM, traffic entering either NoC network,
  // L2 activity (accesses or fills) or DRAM service. A frozen sum across a
  // full watchdog window therefore means the machine is spinning without
  // retiring or draining anything — livelock.
  std::uint64_t sig = TotalIssuedInstrs();
  if (noc_) {
    sig += noc_->request_stats().injected + noc_->response_stats().injected;
    for (const auto& l2 : l2_) sig += l2->stats().accesses + l2->stats().fills;
    for (const auto& ch : dram_) sig += ch->stats().reads + ch->stats().writes;
  }
  return sig;
}

void GpuModel::WatchdogPoll(Cycle now) {
  if (cfg_.watchdog.stall_cycles != 0 && now >= wd_next_check_) {
    const std::uint64_t sig = ProgressSignature();
    if (sig == wd_last_sig_ && !KernelDone()) {
      const std::string dump = WriteDiagnosticDump("no_forward_progress", now);
      std::ostringstream msg;
      msg << "watchdog: no forward progress for "
          << cfg_.watchdog.stall_cycles << " cycles";
      if (current_kernel_) {
        msg << " in kernel '" << current_kernel_->info().name << "'";
      }
      msg << " at cycle " << now;
      if (!dump.empty()) msg << " (diagnostic dump: " << dump << ")";
      throw SimHangError(SimHangError::Kind::kNoProgress, msg.str(), dump);
    }
    wd_last_sig_ = sig;
    wd_next_check_ = now + cfg_.watchdog.stall_cycles;
  }
  if (wall_armed_ && (++wd_poll_count_ & 0xFFFu) == 0 &&
      std::chrono::steady_clock::now() > wall_deadline_) {
    const std::string dump = WriteDiagnosticDump("wall_clock_budget", now);
    std::ostringstream msg;
    msg << "watchdog: wall-clock budget of " << cfg_.watchdog.wall_seconds
        << "s expired";
    if (current_kernel_) {
      msg << " in kernel '" << current_kernel_->info().name << "'";
    }
    msg << " at cycle " << now;
    if (!dump.empty()) msg << " (diagnostic dump: " << dump << ")";
    throw SimHangError(SimHangError::Kind::kWallClock, msg.str(), dump);
  }
}

void GpuModel::ThrowWedged(Cycle now) {
  const std::string dump = WriteDiagnosticDump("wedged", now);
  std::ostringstream msg;
  msg << "simulation wedged: no progress and no future events";
  if (current_kernel_) {
    msg << " in kernel '" << current_kernel_->info().name << "'";
  }
  msg << " at cycle " << now;
  if (!dump.empty()) msg << " (diagnostic dump: " << dump << ")";
  throw SimHangError(SimHangError::Kind::kWedged, msg.str(), dump);
}

std::string GpuModel::WriteDiagnosticDump(const std::string& reason,
                                          Cycle now) const {
  if (cfg_.watchdog.dump_dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(cfg_.watchdog.dump_dir, ec);
  if (ec) return "";
  // One dump per (kernel, cycle) is unique within a run; the reason keeps
  // files self-describing when a directory collects several.
  std::ostringstream fname;
  fname << "hang_" << reason << "_cycle" << now << ".json";
  const std::filesystem::path path =
      std::filesystem::path(cfg_.watchdog.dump_dir) / fname.str();
  std::ofstream os(path);
  if (!os) return "";

  // Pick the first SM with a named blocking resource as the headline
  // "stalled" entry so triage starts from a concrete (sm, warp, resource).
  int stalled_sm = -1;
  SmCore::StallInfo stalled{};
  for (const auto& sm : sms_) {
    if (!sm->Active()) continue;
    const SmCore::StallInfo info = sm->DescribeStall();
    if (std::string_view(info.resource) != "none") {
      stalled_sm = static_cast<int>(sm->id());
      stalled = info;
      break;
    }
  }

  os << "{\n  \"reason\": \"" << reason << "\",\n";
  os << "  \"kernel\": \""
     << (current_kernel_ ? current_kernel_->info().name : "") << "\",\n";
  os << "  \"cycle\": " << now << ",\n";
  os << "  \"stalled\": {\"sm\": " << stalled_sm
     << ", \"warp\": " << stalled.warp << ", \"resource\": \""
     << stalled.resource << "\"},\n";

  const Cycle sm_wake = MinNextWake();
  const Cycle mem_wake = MemNextEventAfter(now);
  os << "  \"next_wake\": {\"sm\": "
     << (sm_wake == kNever ? -1 : static_cast<long long>(sm_wake))
     << ", \"mem\": "
     << (mem_wake == kNever ? -1 : static_cast<long long>(mem_wake))
     << "},\n";

  os << "  \"sms\": [";
  bool first = true;
  for (const auto& sm : sms_) {
    if (!sm->Active()) continue;
    if (!first) os << ",";
    first = false;
    os << "\n    ";
    sm->DumpState(os);
  }
  os << "\n  ],\n";

  os << "  \"mem\": {";
  if (noc_) {
    os << "\n    \"noc\": {\"request_occupancy\": "
       << noc_->request_occupancy()
       << ", \"response_occupancy\": " << noc_->response_occupancy() << "},";
    os << "\n    \"l2\": [";
    for (std::size_t i = 0; i < l2_.size(); ++i) {
      if (i) os << ", ";
      os << "{\"mshr\": " << l2_[i]->mshr_occupancy()
         << ", \"miss_queue\": " << l2_[i]->miss_queue_size()
         << ", \"pending_responses\": " << l2_[i]->pending_response_count()
         << ", \"ready_responses\": " << l2_[i]->ready_response_count()
         << "}";
    }
    os << "],";
    os << "\n    \"dram\": [";
    for (std::size_t i = 0; i < dram_.size(); ++i) {
      if (i) os << ", ";
      os << "{\"queued\": " << dram_[i]->queue_size()
         << ", \"in_service\": " << dram_[i]->in_service_size()
         << ", \"ready\": " << dram_[i]->ready_size() << "}";
    }
    os << "],";
    os << "\n    \"sm_ports_pending\": [";
    for (std::size_t i = 0; i < sm_ports_.size(); ++i) {
      if (i) os << ", ";
      os << sm_ports_[i]->pending.load(std::memory_order_acquire);
    }
    os << "]\n  ";
  }
  os << "},\n";
  os << "  \"faults_held\": " << (fault_ && fault_->AnyHeld() ? "true" : "false")
     << "\n}\n";
  return path.string();
}

std::uint64_t GpuModel::TotalReservationFails() const {
  // Accel-Sim's RESERVATION_FAIL umbrella covers line-allocation failures
  // AND MSHR entry/merge failures; count both, at both levels.
  std::uint64_t sum = 0;
  for (const auto& sm : sms_) {
    if (const CacheStats* l1 = sm->l1_stats()) {
      sum += l1->reservation_fails + l1->mshr_stalls;
    }
  }
  for (const auto& l2 : l2_) {
    sum += l2->stats().reservation_fails + l2->stats().mshr_stalls;
  }
  return sum;
}

}  // namespace swiftsim
