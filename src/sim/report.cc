#include "sim/report.h"

#include <sstream>

#include "common/strutil.h"

namespace swiftsim {

namespace {

/// Sums metrics named "<prefix>*<suffix>" (module wildcards).
std::uint64_t SumMetric(const std::map<std::string, std::uint64_t>& m,
                        const std::string& prefix,
                        const std::string& suffix) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : m) {
    if (!StartsWith(key, prefix)) continue;
    if (key.size() >= suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      sum += value;
    }
  }
  return sum;
}

double Ratio(std::uint64_t num, std::uint64_t den) {
  return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

}  // namespace

PerfReport BuildReport(const SimResult& result) {
  const auto& m = result.metrics;
  PerfReport r;
  r.ipc = Ratio(result.instructions, result.total_cycles);
  const std::uint64_t active = SumMetric(m, "sm", ".active_cycles");
  const std::uint64_t stall = SumMetric(m, "sm", ".stall_cycles");
  r.sm_busy_fraction = Ratio(active, active + stall);
  r.completed_ctas = SumMetric(m, "sm", ".completed_ctas");

  r.l1_accesses = SumMetric(m, "sm", ".l1.accesses");
  r.l1_hit_rate = Ratio(SumMetric(m, "sm", ".l1.hits"), r.l1_accesses);
  r.l2_accesses = SumMetric(m, "l2.", ".accesses");
  r.l2_hit_rate = Ratio(SumMetric(m, "l2.", ".hits"), r.l2_accesses);

  r.dram_reads = SumMetric(m, "dram.", ".reads");
  r.dram_writes = SumMetric(m, "dram.", ".writes");
  r.dram_bytes = SumMetric(m, "dram.", ".bytes");
  const std::uint64_t row_hits = SumMetric(m, "dram.", ".row_hits");
  r.dram_row_hit_rate = Ratio(row_hits, r.dram_reads + r.dram_writes);

  r.noc_bytes = SumMetric(m, "noc.", ".bytes");
  r.reservation_fails = SumMetric(m, "sm", ".l1.reservation_fails") +
                        SumMetric(m, "l2.", ".reservation_fails");

  r.cycles_skipped = SumMetric(m, "driver.", "cycles_skipped");
  r.skip_jumps = SumMetric(m, "driver.", "skip_jumps");
  r.memo_hits = SumMetric(m, "memo.", "hits");
  r.memo_misses = SumMetric(m, "memo.", "misses");
  r.memo_cycles_avoided = SumMetric(m, "memo.", "replayed_cycles");
  return r;
}

std::string PerfReport::ToString() const {
  std::ostringstream os;
  os << "ipc=" << ipc << " sm_busy=" << sm_busy_fraction
     << " ctas=" << completed_ctas << "\n"
     << "l1: accesses=" << l1_accesses << " hit_rate=" << l1_hit_rate
     << "\n"
     << "l2: accesses=" << l2_accesses << " hit_rate=" << l2_hit_rate
     << "\n"
     << "dram: reads=" << dram_reads << " writes=" << dram_writes
     << " bytes=" << dram_bytes << " row_hit=" << dram_row_hit_rate << "\n"
     << "noc bytes=" << noc_bytes
     << " reservation_fails=" << reservation_fails << "\n"
     << "driver: cycles_skipped=" << cycles_skipped
     << " jumps=" << skip_jumps << " | memo: hits=" << memo_hits
     << " misses=" << memo_misses
     << " cycles_avoided=" << memo_cycles_avoided;
  return os.str();
}

}  // namespace swiftsim
