// The Metrics Gatherer (paper §III-C): modules register named counters;
// the gatherer snapshots them all after simulation so architects can read
// overall performance and per-component bottleneck metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace swiftsim {

class MetricsGatherer {
 public:
  using Source = std::function<std::uint64_t()>;

  /// Registers a counter under "module.counter".
  void Register(const std::string& module, const std::string& counter,
                Source source);

  /// Convenience: register a live counter variable (must outlive this).
  void Register(const std::string& module, const std::string& counter,
                const std::uint64_t* var);

  /// Reads every registered counter.
  std::map<std::string, std::uint64_t> Snapshot() const;

  /// Single counter by full name; throws SimError if unknown.
  std::uint64_t Read(const std::string& full_name) const;

  /// Sums "<anything>.counter" across modules matching `module_prefix`.
  std::uint64_t SumAcross(const std::string& module_prefix,
                          const std::string& counter) const;

  std::size_t size() const { return sources_.size(); }

 private:
  std::map<std::string, Source> sources_;
};

class SmCore;

/// Registers one SM's standard counters (and its L1's, when the SM owns a
/// cycle-accurate L1) under "sm<id>[.l1]". Shared by the serial GpuModel
/// and the SM-parallel runners so both report comparable snapshots.
void RegisterSmMetrics(MetricsGatherer& gatherer, const SmCore& sm);

}  // namespace swiftsim
