// Fault-injection seam for the cycle-accurate driver (DESIGN.md §11).
//
// GpuModel consults an armed FaultHooks instance at the module hand-off
// points the resilience tests target: NoC→SM response delivery, SM issue,
// and the coordinator's shared-memory drain. The hooks are pure observers
// plus a response-holding station — they never mutate model state, so
// conservation invariants (every request eventually answered or loudly
// dropped) are the implementation's to keep.
//
// When no hooks are armed (the default) the driver's only cost is one
// null-pointer test per guarded site, keeping injection-off runs
// bit-identical to the pre-injection driver.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "mem/request.h"

namespace swiftsim {

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Response about to be delivered to `sm` at `now`. Return true to
  /// deliver immediately; false means the hooks took custody (delay or
  /// drop-then-retry) and will surface it via CollectDue — or never, for
  /// a deliberate livelock plan.
  virtual bool OnResponse(SmId sm, const MemResponse& resp, Cycle now) = 0;

  /// Appends held responses for `sm` that are due at or before `now`,
  /// removing them from custody. Called by the shard that owns `sm`.
  virtual void CollectDue(SmId sm, Cycle now,
                          std::vector<MemResponse>* out) = 0;

  /// True when warp issue on `sm` is frozen this cycle (the SM is not
  /// ticked; response delivery still happens).
  virtual bool FreezeIssue(SmId sm, Cycle now) = 0;

  /// True while a backpressure storm blocks the coordinator's SM-port and
  /// L2 drains this cycle (queue-full conditions propagate upward).
  virtual bool StormActive(Cycle now) = 0;

  /// True while any response is in custody; folded into MemQuiescent so
  /// neither kernel completion nor cycle skipping can run past a held
  /// response.
  virtual bool AnyHeld() const = 0;

  /// Earliest cycle > `now` at which a held response becomes due; kNever
  /// (~Cycle{0}) when none ever will — the watchdog's livelock fixture.
  virtual Cycle NextDueAfter(Cycle now) const = 0;
};

}  // namespace swiftsim
