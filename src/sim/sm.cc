#include "sim/sm.h"

#include <algorithm>
#include <ostream>
#include <string_view>

#include "common/bitutil.h"
#include "common/status.h"
#include "mem/coalescer.h"

namespace swiftsim {

namespace {
/// Deterministic Bernoulli draw keyed on arbitrary simulation state — the
/// silicon oracle's second-order effects must be reproducible.
bool HashBernoulli(std::uint64_t key, double p) {
  return (HashMix(key) & 0xffff) < static_cast<std::uint64_t>(p * 65536.0);
}
}  // namespace

SmCore::SmCore(const GpuConfig& cfg, const ModelSelection& selection, SmId id,
               const AnalyticalMemModel* mem_model,
               CtaCompleteFn on_cta_complete)
    : cfg_(cfg), sel_(selection), id_(id), mem_model_(mem_model),
      on_cta_complete_(std::move(on_cta_complete)),
      warps_(cfg.max_warps_per_sm),
      conflict_paid_(cfg.max_warps_per_sm, 0),
      sb_blocked_(cfg.max_warps_per_sm, 0),
      ctas_(cfg.max_ctas_per_sm),
      scoreboard_(cfg.max_warps_per_sm),
      barriers_(cfg.max_ctas_per_sm),
      allocator_(cfg),
      smem_conflicts_(cfg.shared_mem_banks),
      events_(std::greater<Event>(), [&cfg] {
        // One-time reservation: completion events are bounded by in-flight
        // instructions (a few per resident warp).
        std::vector<Event> v;
        v.reserve(static_cast<std::size_t>(cfg.max_warps_per_sm) * 4);
        return v;
      }()) {
  SS_CHECK(on_cta_complete_ != nullptr, "SmCore needs a CTA-complete hook");
  if (sel_.mem == MemModelKind::kAnalytical) {
    SS_CHECK(mem_model_ != nullptr,
             "analytical memory mode needs an AnalyticalMemModel");
    contention_ = std::make_unique<MemContentionModel>(cfg);
  } else {
    l1_ = std::make_unique<SectorCache>("sm" + std::to_string(id) + ".l1",
                                        cfg.l1, id);
  }

  subcores_.resize(cfg.sub_cores_per_sm);
  const unsigned warps_per_sc = cfg.warps_per_sub_core();
  for (unsigned sc = 0; sc < cfg.sub_cores_per_sm; ++sc) {
    SubCore& s = subcores_[sc];
    s.scheduler = std::make_unique<WarpScheduler>(cfg.sched_policy,
                                                  warps_per_sc);
    if (sel_.alu == AluModelKind::kCycleAccurate) {
      s.pipelines.emplace_back(UnitClass::kInt, cfg.int_unit);
      s.pipelines.emplace_back(UnitClass::kSp, cfg.sp_unit);
      s.pipelines.emplace_back(UnitClass::kDp, cfg.dp_unit);
      s.pipelines.emplace_back(UnitClass::kSfu, cfg.sfu_unit);
      s.pipelines.emplace_back(UnitClass::kTensor, cfg.tensor_unit);
      s.collector = std::make_unique<OperandCollector>(
          OperandCollectorConfig{});
    } else {
      s.hybrid_alu = std::make_unique<HybridAluModel>(cfg);
    }
    if (sel_.mem == MemModelKind::kCycleAccurate) {
      LdstUnitConfig lc;
      lc.issue_interval =
          std::max(1u, kWarpSize / cfg.ldst_units_per_sub_core);
      lc.queue_depth = cfg.ldst_queue_depth;
      lc.accesses_per_cycle = cfg.ldst_units_per_sub_core;
      lc.line_bytes = cfg.l1.line_bytes;
      lc.sector_bytes = cfg.l1.sector_bytes;
      lc.smem_latency = cfg.shared_mem_latency;
      lc.smem_banks = cfg.shared_mem_banks;
      s.ldst = std::make_unique<LdstUnit>(
          lc, id_, sc, l1_.get(),
          [this](unsigned slot, std::uint8_t dst) { Writeback(slot, dst); });
    }
  }
}

ExecPipeline& SmCore::PipelineFor(SubCore& sc, UnitClass cls) {
  switch (cls) {
    case UnitClass::kInt:
      return sc.pipelines[0];
    case UnitClass::kSp:
      return sc.pipelines[1];
    case UnitClass::kDp:
      return sc.pipelines[2];
    case UnitClass::kSfu:
      return sc.pipelines[3];
    case UnitClass::kTensor:
      return sc.pipelines[4];
    default:
      break;
  }
  throw SimError("PipelineFor: not an ALU class");
}

void SmCore::NoteWake(Cycle when) {
  if (when < next_struct_wake_) next_struct_wake_ = when;
}

bool SmCore::CanTakeCta(const KernelInfo& info) const {
  if (!allocator_.CanAllocate(info)) return false;
  // Also need contiguous-free warp slots balanced over sub-cores; since
  // slot i belongs to sub-core i % N, any set of free slots works.
  unsigned free_slots = 0;
  for (const WarpContext& w : warps_) {
    if (!w.valid) ++free_slots;
  }
  return free_slots >= info.warps_per_cta;
}

void SmCore::LaunchCta(const KernelTrace& kernel, CtaId cta_id) {
  const KernelInfo& info = kernel.info();
  SS_CHECK(CanTakeCta(info),
           "LaunchCta without capacity on SM " + std::to_string(id_));
  const unsigned cta_slot = allocator_.Allocate(info);
  ResidentCta& rc = ctas_[cta_slot];
  rc.valid = true;
  rc.kernel = &kernel;
  rc.kernel_id = info.id;
  rc.cta_id = cta_id;
  rc.live_warps = info.warps_per_cta;
  barriers_.InitCta(cta_slot, info.warps_per_cta);

  const CtaTrace& trace = kernel.cta(cta_id);
  unsigned assigned = 0;
  for (unsigned slot = 0; slot < warps_.size() && assigned < info.warps_per_cta;
       ++slot) {
    if (warps_[slot].valid) continue;
    WarpContext& w = warps_[slot];
    w = WarpContext{};
    w.valid = true;
    w.cta_slot = cta_slot;
    w.trace = &trace.warps[assigned];
    w.launch_seq = ++launch_seq_;
    scoreboard_.Reset(slot);
    conflict_paid_[slot] = 0;
    sb_blocked_[slot] = 0;
    if (sel_.frontend == FrontendKind::kDetailed && !w.exhausted()) {
      ++fetchable_;  // fresh warp: empty i-buffer
    }
    ++assigned;
    ++resident_warps_;
  }
  SS_ASSERT(assigned == info.warps_per_cta);
  idle_cached_ = false;
  ForceWake();
}

void SmCore::OnKernelStart(unsigned active_sms) {
  if (contention_) contention_->SetActiveSms(active_sms);
}

void SmCore::Writeback(unsigned slot, std::uint8_t dst) {
  scoreboard_.OnWriteback(slot, dst);
  // The slot's pending set shrank: a cached scoreboard block may no
  // longer hold, so the next readiness scan must re-evaluate it.
  sb_blocked_[slot] = 0;
}

bool SmCore::WarpReady(unsigned slot, Cycle now) {
  WarpContext& w = warps_[slot];
  if (!w.valid || w.done || w.at_barrier || w.exhausted()) return false;
  if (sel_.frontend == FrontendKind::kDetailed) {
    if (w.ibuffer == 0) return false;
    if (now < w.fetch_ready) {
      // I-cache miss in flight; nothing else can unblock this warp sooner.
      NoteWake(w.fetch_ready);
      return false;
    }
  }
  const CompactInstr& ins = w.current();
  // A warp blocked on the scoreboard stays blocked until a writeback to
  // its slot (nothing else shrinks its pending set, and its current
  // instruction cannot advance while unissuable), so the cached verdict
  // short-circuits re-evaluation; Writeback clears it.
  if (sb_blocked_[slot]) return false;
  if (!scoreboard_.CanIssue(slot, ins)) {
    sb_blocked_[slot] = 1;
    return false;
  }
  if (IsExit(ins.op)) {
    // A warp only retires once all its loads wrote back.
    if (scoreboard_.PendingCount(slot) != 0) {
      sb_blocked_[slot] = 1;
      return false;
    }
    return true;
  }
  SubCore& sc = subcores_[slot % subcores_.size()];
  const UnitClass cls = ClassOf(ins.op);
  switch (cls) {
    case UnitClass::kControl:
      return true;
    case UnitClass::kLdSt:
      if (sel_.mem == MemModelKind::kCycleAccurate) {
        if (!sc.ldst->CanAccept(now)) {
          NoteWake(std::max(now + 1, sc.ldst->next_issue()));
          return false;
        }
        return true;
      }
      if (now < sc.ana_ldst_next_issue) {
        NoteWake(sc.ana_ldst_next_issue);
        return false;
      }
      if (sc.ana_ldst_inflight >= cfg_.ldst_queue_depth) return false;
      return true;
    default:
      if (sel_.alu == AluModelKind::kCycleAccurate) {
        // Issue targets a collector unit; execution-pipe structural
        // hazards are resolved at the collector-to-pipe dispatch stage.
        if (!sc.collector->CanAccept()) {
          NoteWake(now + 1);
          return false;
        }
        return true;
      }
      if (!sc.hybrid_alu->CanIssue(cls, now)) {
        NoteWake(std::max(now + 1, sc.hybrid_alu->NextFree(cls)));
        return false;
      }
      return true;
  }
}

void SmCore::WakeCtaWarps(unsigned cta_slot) {
  for (WarpContext& w : warps_) {
    if (w.valid && w.cta_slot == cta_slot && w.at_barrier) {
      w.at_barrier = false;
    }
  }
}

void SmCore::FinishCta(unsigned cta_slot) {
  ResidentCta& rc = ctas_[cta_slot];
  SS_ASSERT(rc.valid && rc.live_warps == 0);
  allocator_.Release(cta_slot, rc.kernel->info());
  rc.valid = false;
  ++stats_.completed_ctas;
  on_cta_complete_(id_);
}

void SmCore::IssueControl(unsigned slot, const CompactInstr& ins) {
  WarpContext& w = warps_[slot];
  ++stats_.issued_control;
  if (IsBarrier(ins.op)) {
    if (barriers_.Arrive(w.cta_slot)) {
      WakeCtaWarps(w.cta_slot);
    } else {
      w.at_barrier = true;
      ++stats_.barrier_waits;
    }
    return;
  }
  SS_DCHECK(IsExit(ins.op));
  w.done = true;
  w.valid = false;
  SS_ASSERT(resident_warps_ > 0);
  --resident_warps_;
  subcores_[slot % subcores_.size()].scheduler->OnSlotDrained(
      slot / static_cast<unsigned>(subcores_.size()));
  ResidentCta& rc = ctas_[w.cta_slot];
  SS_ASSERT(rc.live_warps > 0);
  --rc.live_warps;
  if (barriers_.OnWarpExit(w.cta_slot)) WakeCtaWarps(w.cta_slot);
  if (rc.live_warps == 0) FinishCta(w.cta_slot);
}

void SmCore::IssueAlu(unsigned slot, const CompactInstr& ins, Cycle now) {
  SubCore& sc = subcores_[slot % subcores_.size()];
  const UnitClass cls = ClassOf(ins.op);
  ++stats_.issued_alu;
  if (sel_.alu == AluModelKind::kCycleAccurate) {
    sc.collector->Accept(slot, ins, cls);
    return;
  }
  const auto res = sc.hybrid_alu->Issue(cls, now);
  events_.push(Event{res.complete, slot, ins.dst,
                     static_cast<std::uint8_t>(slot % subcores_.size()),
                     false});
}

void SmCore::IssueMem(unsigned slot, const CompactInstr& ins, Cycle now) {
  SubCore& sc = subcores_[slot % subcores_.size()];
  ++stats_.issued_mem;
  // Lane addresses live in the warp's columnar pool; the per-slot rank
  // counter makes this an O(lanes) decode with no scan (DESIGN.md §14).
  const WarpContext& w = warps_[slot];
  if (ins.has_addrs()) {
    w.trace->DecodeAddrs(w.mem_seen, &mem_addrs_);
  } else {
    mem_addrs_.clear();
  }
  if (sel_.mem == MemModelKind::kCycleAccurate) {
    sc.ldst->Issue(slot, ins, mem_addrs_, now);
    return;
  }
  // Analytical memory path (paper §III-D2).
  const std::uint8_t sc_idx =
      static_cast<std::uint8_t>(slot % subcores_.size());
  sc.ana_ldst_next_issue =
      now + std::max(1u, kWarpSize / cfg_.ldst_units_per_sub_core);
  const std::uint8_t dst = IsLoad(ins.op) ? ins.dst : kNoReg;
  if (IsSharedMem(ins.op)) {
    const unsigned conflicts = smem_conflicts_.Conflicts(mem_addrs_);
    ++sc.ana_ldst_inflight;
    events_.push(Event{now + cfg_.shared_mem_latency + conflicts - 1, slot,
                       dst, sc_idx, true});
    return;
  }
  if (ins.op == Opcode::kLdConst) {
    ++sc.ana_ldst_inflight;
    events_.push(Event{now + 10, slot, dst, sc_idx, true});
    return;
  }
  const auto accesses = Coalesce(mem_addrs_, 4, cfg_.l1.line_bytes,
                                 cfg_.l1.sector_bytes);
  unsigned sectors = 0;
  for (const auto& a : accesses) sectors += PopCount(a.sector_mask);
  // Uncoalesced instructions inject one request per line; the LD/ST unit
  // serializes that injection — cycle-accurately tracked occupancy, like
  // the ALU hybrid's issue-interval term.
  const Cycle inject = CeilDiv(static_cast<unsigned>(accesses.size()),
                               cfg_.ldst_units_per_sub_core);
  sc.ana_ldst_next_issue = std::max<Cycle>(sc.ana_ldst_next_issue,
                                           now + inject);
  const KernelId kid = ctas_[warps_[slot].cta_slot].kernel_id;
  const double dram_frac = mem_model_->DramFraction(kid, ins.pc);
  const double l1_miss_frac = mem_model_->L1MissFraction(kid, ins.pc);
  const Cycle delay = contention_->Issue(
      static_cast<unsigned>(accesses.size()), sectors, l1_miss_frac,
      dram_frac, now);
  const Cycle base = IsLoad(ins.op)
                         ? mem_model_->LoadLatency(kid, ins.pc)
                         : mem_model_->StoreLatency();
  ++sc.ana_ldst_inflight;
  events_.push(Event{now + inject + delay + base, slot, dst, sc_idx, true});
}

void SmCore::IssueInstr(unsigned slot, Cycle now) {
  WarpContext& w = warps_[slot];
  const CompactInstr& ins = w.current();
  scoreboard_.OnIssue(slot, ins);
  const bool detailed_fe = sel_.frontend == FrontendKind::kDetailed;
  // An issuing warp is valid, unfinished and unexhausted; whether it
  // occupies the fetchable set depends only on its i-buffer fill.
  const bool was_fetchable = detailed_fe && w.ibuffer < 2;
  if (detailed_fe) {
    SS_DCHECK(w.ibuffer > 0);
    --w.ibuffer;
  }
  ++stats_.issued_instrs;
  conflict_paid_[slot] = 0;
  const UnitClass cls = ClassOf(ins.op);
  if (cls == UnitClass::kControl) {
    IssueControl(slot, ins);
  } else if (cls == UnitClass::kLdSt) {
    IssueMem(slot, ins, now);
  } else {
    IssueAlu(slot, ins, now);
  }
  if (ins.has_addrs()) ++w.mem_seen;
  ++w.next_instr;
  if (detailed_fe) {
    const bool now_fetchable =
        w.valid && !w.done && !w.exhausted() && w.ibuffer < 2;
    if (now_fetchable && !was_fetchable) ++fetchable_;
    if (!now_fetchable && was_fetchable) --fetchable_;
  }
}

void SmCore::FrontendTick(SubCore& sc, unsigned sc_idx, Cycle now) {
  const unsigned warps_per_sc = cfg_.warps_per_sub_core();
  const unsigned n_sc = static_cast<unsigned>(subcores_.size());
  unsigned local = sc.fetch_rr;
  for (unsigned i = 0; i < warps_per_sc;
       ++i, local = local + 1 == warps_per_sc ? 0 : local + 1) {
    const unsigned slot = local * n_sc + sc_idx;
    WarpContext& w = warps_[slot];
    if (!w.valid || w.done || w.exhausted() || w.ibuffer >= 2) continue;
    if (now < w.fetch_ready) {
      continue;  // i-cache miss in flight for this warp
    }
    w.ibuffer++;
    w.fetch_count++;
    if (w.ibuffer >= 2) {
      SS_DCHECK(fetchable_ > 0);
      --fetchable_;  // i-buffer now full; refetchable after an issue
    }
    if (sel_.silicon_effects &&
        HashBernoulli(w.current().pc ^ (slot * 0x9e3779b97f4a7c15ull) ^
                          w.fetch_count,
                      cfg_.effects.icache_miss_rate)) {
      w.fetch_ready = now + cfg_.effects.icache_miss_penalty;
      stats_.icache_stall_cycles += cfg_.effects.icache_miss_penalty;
    }
    sc.fetch_rr = (local + 1) % warps_per_sc;
    break;  // one fetch per sub-core per cycle
  }
}

Cycle SmCore::FrontendNextWake(Cycle now) const {
  // Earliest cycle any sub-core can fetch: the gating mirrors FrontendTick
  // exactly — a warp is fetchable once valid, unfinished, with i-buffer
  // room, and past its i-cache stall. Until then FrontendTick is a no-op
  // (the fetch rotor only advances on an actual fetch), so the SM may
  // sleep through it without diverging from per-cycle ticking.
  if (fetchable_ == 0) return kNever;
  Cycle wake = kNever;
  for (const WarpContext& w : warps_) {
    if (!w.valid || w.done || w.exhausted() || w.ibuffer >= 2) continue;
    wake = std::min(wake, std::max(w.fetch_ready, now + 1));
    if (wake == now + 1) break;
  }
  return wake;
}

bool SmCore::Tick(Cycle now) {
  next_struct_wake_ = kNever;
  bool progressed = false;

  // 1. Retire due completion events (hybrid ALU / analytical memory).
  while (!events_.empty() && events_.top().cycle <= now) {
    const Event e = events_.top();
    events_.pop();
    Writeback(e.slot, e.dst);
    if (e.is_mem) {
      SubCore& sc = subcores_[e.subcore];
      SS_DCHECK(sc.ana_ldst_inflight > 0);
      --sc.ana_ldst_inflight;
    }
    progressed = true;
  }
  if (!events_.empty()) NoteWake(events_.top().cycle);

  // 2. Cycle-accurate memory path: L1 pipeline and LD/ST units.
  if (l1_) {
    l1_->BeginCycle(now);
    auto& resp = l1_->responses();
    while (!resp.empty()) {
      const MemResponse r = resp.front();
      resp.pop_front();
      bool routed = false;
      for (SubCore& sc : subcores_) {
        if (sc.ldst->OwnsRequest(r.id)) {
          sc.ldst->OnL1Response(r, now);
          routed = true;
          progressed = true;
          break;
        }
      }
      SS_CHECK(routed, "L1 response with no owning LD/ST unit");
    }
    for (SubCore& sc : subcores_) {
      sc.ldst->Tick(now);
      NoteWake(sc.ldst->NextFixedCompletion());
    }
  }

  // 3. Execution pipelines (cycle-accurate ALU mode): shift stages and
  // retire writebacks, optionally gated by the silicon writeback bus.
  if (sel_.alu == AluModelKind::kCycleAccurate) {
    for (SubCore& sc : subcores_) {
      unsigned bus = sel_.silicon_effects ? cfg_.effects.writeback_bus_width
                                          : ~0u;
      for (ExecPipeline& pipe : sc.pipelines) {
        if (pipe.busy()) pipe.Tick(now);  // empty pipes have nothing to shift
        while (bus > 0 && !pipe.completions().empty()) {
          const Completion c = pipe.completions().front();
          pipe.completions().pop_front();
          Writeback(c.slot, c.dst);
          progressed = true;
          --bus;
        }
      }
      // Operand collection: bank arbitration, then dispatch collected ops
      // into their (free) execution pipelines.
      sc.collector->Tick(now);
      auto& ready = sc.collector->ready();
      for (std::size_t i = 0; i < ready.size();) {
        ExecPipeline& pipe = PipelineFor(sc, ready[i].cls);
        if (pipe.CanIssue(now)) {
          pipe.Issue(ready[i].slot, ready[i].dst, now);
          ready.erase(i);  // order-preserving
        } else {
          ++i;
        }
      }
    }
  }

  // 4. Front-end fetch (detailed mode). With every live warp's i-buffer
  // full the scan cannot fetch anything — the fetchable counter makes
  // that common stalled-SM case free.
  if (sel_.frontend == FrontendKind::kDetailed && fetchable_ > 0) {
    for (unsigned sc = 0; sc < subcores_.size(); ++sc) {
      FrontendTick(subcores_[sc], sc, now);
    }
  }

  // 5. Issue: each sub-core's scheduler picks one warp per scheduler.
  const unsigned n_sc = static_cast<unsigned>(subcores_.size());
  bool issued_any = false;
  for (unsigned sc_idx = 0; sc_idx < n_sc; ++sc_idx) {
    SubCore& sc = subcores_[sc_idx];
    for (unsigned s = 0; s < cfg_.schedulers_per_sub_core; ++s) {
      auto ready = [&](unsigned local) {
        return WarpReady(local * n_sc + sc_idx, now);
      };
      auto age = [&](unsigned local) -> std::uint64_t {
        const WarpContext& w = warps_[local * n_sc + sc_idx];
        return w.valid ? w.launch_seq : ~std::uint64_t{0};
      };
      const unsigned pick = sc.scheduler->Pick(ready, age);
      if (pick == kNoSlot) continue;
      const unsigned slot = pick * n_sc + sc_idx;
      // Silicon effect: operand-collector register-bank conflict costs an
      // extra cycle before issue, deterministically keyed on (pc, warp).
      if (sel_.silicon_effects && !conflict_paid_[slot] &&
          HashBernoulli(warps_[slot].current().pc ^ slot ^
                            (warps_[slot].next_instr * 0x2545f4914f6cdd1dull),
                        cfg_.effects.regbank_conflict_rate)) {
        conflict_paid_[slot] = 1;
        ++stats_.regbank_conflicts;
        NoteWake(now + 1);
        continue;
      }
      sc.scheduler->OnIssue(pick);
      IssueInstr(slot, now);
      issued_any = true;
      progressed = true;
    }
  }

  if (issued_any) {
    ++stats_.active_cycles;
  } else if (resident_warps_ > 0) {
    ++stats_.stall_cycles;
  }

  // Compute when this SM next needs a Tick (the NextWakeCycle contract,
  // DESIGN.md §9). An issue pins the next cycle: the issued warp's
  // successor instruction may be ready immediately, and warps behind the
  // pick in rotor order were never evaluated, so their wake hints are
  // missing. Progress WITHOUT an issue (responses routed, writebacks
  // retired) is different: every scheduler's Pick scanned every warp to
  // conclude nothing was issuable — after all state changes of this tick
  // had already landed — so the hint set is complete and the computed
  // wake below is exact, letting the SM sleep right after servicing.
  if (issued_any) {
    next_wake_ = now + 1;
    return true;
  }
  Cycle wake = next_struct_wake_;
  if (!events_.empty()) wake = std::min(wake, events_.top().cycle);
  // Capacity-blocked LD/ST retries are provably the same failing probe
  // until a fill or a miss-queue drain; in skip mode the driver re-checks
  // CapacityWakeDue each cycle and fills force a wake, so the per-cycle
  // retry pin is unnecessary and the SM may sleep through backpressure.
  // Hybrid-ALU drivers never run those checks, so they keep the pin.
  const bool capacity_sleep =
      sel_.alu == AluModelKind::kCycleAccurate && cfg_.cycle_skip;
  if (l1_) {
    wake = std::min(wake, std::max(l1_->NextResponseReady(), now + 1));
    for (SubCore& sc : subcores_) {
      if (sc.ldst->HasPendingInjections() &&
          !(capacity_sleep && sc.ldst->CapacityBlocked())) {
        wake = now + 1;  // must retry L1 accesses every cycle
        break;
      }
      wake = std::min(wake, sc.ldst->NextFixedCompletion());
    }
  }
  if (sel_.alu == AluModelKind::kCycleAccurate && wake > now + 1) {
    if (subcores_[0].scheduler->StatefulProbe()) {
      // Two-level scheduling mutates stall counters on every probe; an
      // elided Pick would diverge from the per-cycle reference loop.
      wake = now + 1;
    } else {
      // In-flight ALU work marches through pipeline registers and the
      // operand collector's bank arbitration every cycle.
      for (SubCore& sc : subcores_) {
        bool alu_busy = sc.collector->busy();
        for (const ExecPipeline& pipe : sc.pipelines) {
          if (alu_busy) break;
          alu_busy = !pipe.drained();
        }
        if (alu_busy) {
          wake = now + 1;
          break;
        }
      }
    }
  }
  if (sel_.frontend == FrontendKind::kDetailed && wake > now + 1) {
    wake = std::min(wake, FrontendNextWake(now));
  }
  next_wake_ = std::max(wake, now + 1);
  return progressed;
}

bool SmCore::Quiescent() const {
  if (!events_.empty()) return false;
  if (l1_ && !l1_->quiescent()) return false;
  for (const SubCore& sc : subcores_) {
    if (sc.ldst && !sc.ldst->quiescent()) return false;
    if (sc.ana_ldst_inflight != 0) return false;
  }
  return true;
}

bool SmCore::Idle() const { return resident_warps_ == 0 && Quiescent(); }

void SmCore::DeliverResponse(const MemResponse& resp, Cycle now) {
  SS_CHECK(l1_ != nullptr,
           "DeliverResponse in analytical memory mode");
  l1_->Fill(resp, now);
  // The fill frees MSHR entries and updates tags, which can change the
  // outcome of a capacity-blocked LD/ST retry on THIS cycle — the
  // per-cycle reference delivers before ticking, so wake immediately
  // rather than when the fill's latency-pipe responses land.
  ForceWake();
}

namespace {

const char* RejectName(CacheReject r) {
  switch (r) {
    case CacheReject::kNone:
      return "none";
    case CacheReject::kBank:
      return "l1.bank";
    case CacheReject::kResFail:
      return "l1.reservation";
    case CacheReject::kMshrFull:
      return "l1.mshr";
    case CacheReject::kOutFull:
      return "l1.miss_queue";
  }
  return "?";
}

// kNever would print as 2^64-1; dumps use -1 for "no scheduled wake".
long long JsonWake(Cycle wake) {
  return wake == kNever ? -1 : static_cast<long long>(wake);
}

}  // namespace

SmCore::StallInfo SmCore::DescribeStall() const {
  StallInfo info;
  // A capacity-blocked LD/ST unit gates every memory instruction behind
  // it; name it first.
  for (const SubCore& sc : subcores_) {
    if (sc.ldst && sc.ldst->CapacityBlocked()) {
      info.resource = RejectName(sc.ldst->blocked_reason());
      break;
    }
  }
  for (unsigned slot = 0; slot < warps_.size(); ++slot) {
    const WarpContext& w = warps_[slot];
    if (!w.valid || w.done) continue;
    if (info.warp < 0) info.warp = static_cast<int>(slot);
    const char* blocker = nullptr;
    if (w.at_barrier) {
      blocker = "barrier";
    } else if (scoreboard_.PendingCount(slot) > 0) {
      // Typically an outstanding memory response that never arrived.
      blocker = "scoreboard";
    }
    if (blocker != nullptr) {
      info.warp = static_cast<int>(slot);
      if (std::string_view(info.resource) == "none") info.resource = blocker;
      break;
    }
  }
  if (info.warp >= 0 && std::string_view(info.resource) == "none") {
    info.resource = "issue";
  }
  return info;
}

void SmCore::DumpState(std::ostream& os) const {
  const StallInfo stall = DescribeStall();
  os << "{\"sm\": " << id_ << ", \"resident_warps\": " << resident_warps_
     << ", \"next_wake\": " << JsonWake(next_wake_)
     << ", \"stall\": {\"warp\": " << stall.warp << ", \"resource\": \""
     << stall.resource << "\"}, \"warps\": [";
  bool first = true;
  for (unsigned slot = 0; slot < warps_.size(); ++slot) {
    const WarpContext& w = warps_[slot];
    if (!w.valid) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"slot\": " << slot << ", \"cta\": " << w.cta_slot
       << ", \"next_instr\": " << w.next_instr << ", \"trace_len\": "
       << (w.trace ? w.trace->size() : 0)
       << ", \"at_barrier\": " << (w.at_barrier ? "true" : "false")
       << ", \"done\": " << (w.done ? "true" : "false")
       << ", \"sb_pending\": " << scoreboard_.PendingCount(slot) << "}";
  }
  os << "], \"ldst\": [";
  first = true;
  for (const SubCore& sc : subcores_) {
    if (!sc.ldst) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"blocked\": \"" << RejectName(sc.ldst->blocked_reason())
       << "\", \"live\": " << sc.ldst->live_instrs() << "}";
  }
  os << "]";
  if (l1_) {
    os << ", \"l1\": {\"mshr\": " << l1_->mshr_occupancy()
       << ", \"miss_queue\": " << l1_->miss_queue_size()
       << ", \"pending_responses\": " << l1_->pending_response_count()
       << ", \"ready_responses\": " << l1_->ready_response_count() << "}";
  }
  os << "}";
}

}  // namespace swiftsim
