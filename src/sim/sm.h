// One streaming multiprocessor assembled from the core-substrate modules
// (paper Fig. 1 / §III-B): sub-cores with warp schedulers, execution units
// (cycle-accurate or hybrid-analytical), LD/ST units (cycle-accurate L1
// path or Eq. 1 analytical path), barrier manager and CTA allocator. The
// modeling approach of each module is a constructor-time choice
// (ModelSelection) behind fixed interfaces — the framework's core idea.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "analytical/mem_model.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "core/barrier.h"
#include "core/cta_allocator.h"
#include "core/exec_unit.h"
#include "core/ldst_unit.h"
#include "core/operand_collector.h"
#include "core/scheduler.h"
#include "core/scoreboard.h"
#include "core/warp.h"
#include "mem/cache.h"
#include "mem/coalescer.h"
#include "sim/model_select.h"

namespace swiftsim {

inline constexpr Cycle kNever = ~Cycle{0};

struct SmStats {
  std::uint64_t issued_instrs = 0;
  std::uint64_t issued_alu = 0;
  std::uint64_t issued_mem = 0;
  std::uint64_t issued_control = 0;
  std::uint64_t active_cycles = 0;     // cycles with >=1 issue
  std::uint64_t stall_cycles = 0;      // resident warps but nothing issued
  std::uint64_t completed_ctas = 0;
  std::uint64_t icache_stall_cycles = 0;
  std::uint64_t regbank_conflicts = 0;
  std::uint64_t barrier_waits = 0;
};

class SmCore {
 public:
  using CtaCompleteFn = std::function<void(SmId)>;

  /// `mem_model` must be non-null iff selection.mem == kAnalytical and must
  /// outlive the SM.
  SmCore(const GpuConfig& cfg, const ModelSelection& selection, SmId id,
         const AnalyticalMemModel* mem_model, CtaCompleteFn on_cta_complete);

  // --- Block-scheduler interface -----------------------------------------
  bool CanTakeCta(const KernelInfo& info) const;
  void LaunchCta(const KernelTrace& kernel, CtaId cta_id);

  /// Called once per kernel launch: how many SMs will share chip-level
  /// bandwidth (analytical contention pipes only; no-op otherwise).
  void OnKernelStart(unsigned active_sms);

  // --- Clock interface -----------------------------------------------------
  /// Advances one cycle; returns true if any instruction issued or any
  /// completion retired (progress).
  bool Tick(Cycle now);

  /// Earliest future cycle at which this SM can make progress again
  /// (completion events, structural-hazard releases, latency-pipe
  /// deliveries); kNever when nothing is scheduled. Updated by Tick; the
  /// GPU model may skip ticking this SM until the returned cycle — the
  /// event-driven fast path that gives the hybrid simulators their speed.
  Cycle NextWake() const { return next_wake_; }

  /// Invalidates the cached wake time (new CTA, delivered response, …).
  void ForceWake() { next_wake_ = 0; }

  /// Stats catch-up for cycles the driver proved would be no-op ticks and
  /// elided (cycle skipping, DESIGN.md §9). The per-cycle reference loop
  /// would have counted each of them as a stall cycle whenever warps are
  /// resident, and capacity-blocked LD/ST units would have re-attempted
  /// (and re-failed) their head access, so skip-mode runs report identical
  /// stall and rejection metrics.
  void AccountSkippedCycles(Cycle n) {
    if (resident_warps_ > 0) stats_.stall_cycles += n;
    for (SubCore& sc : subcores_) {
      if (sc.ldst) sc.ldst->AccountElidedRetries(n);
    }
  }

  /// True when a capacity-blocked LD/ST unit could make progress this
  /// cycle even though the cached wake lies in the future: the L1 miss
  /// queue it was blocked on has drained below capacity. MSHR blocks wake
  /// through DeliverResponse (the freeing fill) instead. The driver checks
  /// this each ticked cycle before eliding a sleeping SM.
  bool CapacityWakeDue() const {
    if (l1_ == nullptr || l1_->miss_queue_full()) return false;
    for (const SubCore& sc : subcores_) {
      if (sc.ldst->BlockedOnMissQueue()) return true;
    }
    return false;
  }

  /// True when the SM holds no resident CTAs and all machinery drained.
  bool Idle() const;

  /// Anything resident or in flight (cheap check for the GPU model's
  /// active-SM filter). A drained SM stays drained until the next
  /// LaunchCta — nothing else can make it active — so the full Quiescent
  /// walk runs once per drain instead of once per cycle.
  bool Active() const {
    if (resident_warps_ > 0) return true;
    if (idle_cached_) return false;
    if (!Quiescent()) return true;
    idle_cached_ = true;
    return false;
  }

  /// All LD/ST units, the L1 and the event queue drained.
  bool Quiescent() const;

  // --- Memory-side interface (cycle-accurate memory mode only) ------------
  SectorCache* l1() { return l1_.get(); }
  void DeliverResponse(const MemResponse& resp, Cycle now);

  const SmStats& stats() const { return stats_; }
  const CacheStats* l1_stats() const {
    return l1_ ? &l1_->stats() : nullptr;
  }
  const CtaAllocator& allocator() const { return allocator_; }
  SmId id() const { return id_; }

  // --- Diagnostics (DESIGN.md §11) ----------------------------------------
  /// Why this SM is not retiring work, as a (warp, resource) pair for the
  /// hang diagnostic dump. Capacity-blocked LD/ST units take precedence
  /// (they gate the whole memory pipe); otherwise the first live warp's
  /// blocker is named: barrier wait, scoreboard hazard (typically an
  /// outstanding memory response), or plain issue contention.
  struct StallInfo {
    int warp = -1;                  // stalled warp slot, -1 when idle
    const char* resource = "none";  // blocking-resource heuristic
  };
  StallInfo DescribeStall() const;

  /// Writes this SM's state as one JSON object: per-warp positions and
  /// hazards, LD/ST occupancy and block reasons, L1 MSHR/queue occupancy,
  /// and the wake-calendar entry.
  void DumpState(std::ostream& os) const;

 private:
  struct ResidentCta {
    bool valid = false;
    const KernelTrace* kernel = nullptr;
    KernelId kernel_id = 0;
    CtaId cta_id = 0;
    unsigned live_warps = 0;
  };

  struct Event {
    Cycle cycle;
    unsigned slot;
    std::uint8_t dst;
    std::uint8_t subcore;
    bool is_mem;
    bool operator>(const Event& o) const { return cycle > o.cycle; }
  };

  struct SubCore {
    std::unique_ptr<WarpScheduler> scheduler;
    std::vector<ExecPipeline> pipelines;        // cycle-accurate ALU mode
    std::unique_ptr<OperandCollector> collector;  // cycle-accurate ALU mode
    std::unique_ptr<HybridAluModel> hybrid_alu; // hybrid ALU mode
    std::unique_ptr<LdstUnit> ldst;             // cycle-accurate mem mode
    // Analytical memory mode state (paper §III-D2).
    Cycle ana_ldst_next_issue = 0;
    unsigned ana_ldst_inflight = 0;
    unsigned fetch_rr = 0;  // detailed-frontend fetch rotor
  };

  void Writeback(unsigned slot, std::uint8_t dst);
  bool WarpReady(unsigned slot, Cycle now);
  void IssueInstr(unsigned slot, Cycle now);
  void IssueControl(unsigned slot, const CompactInstr& ins);
  void IssueAlu(unsigned slot, const CompactInstr& ins, Cycle now);
  void IssueMem(unsigned slot, const CompactInstr& ins, Cycle now);
  // Scratch for per-issue columnar address decode (allocation-free).
  LaneAddrs mem_addrs_;
  void FinishCta(unsigned cta_slot);
  void WakeCtaWarps(unsigned cta_slot);
  void FrontendTick(SubCore& sc, unsigned sc_idx, Cycle now);
  Cycle FrontendNextWake(Cycle now) const;
  ExecPipeline& PipelineFor(SubCore& sc, UnitClass cls);
  void NoteWake(Cycle when);

  GpuConfig cfg_;
  ModelSelection sel_;
  SmId id_;
  const AnalyticalMemModel* mem_model_;
  CtaCompleteFn on_cta_complete_;

  std::vector<WarpContext> warps_;
  std::vector<std::uint8_t> conflict_paid_;  // silicon regbank effect
  // Scan-avoidance caches, maintained incrementally and invalidated at
  // the exact events that can change the cached answer:
  mutable bool idle_cached_ = false;    // cleared by LaunchCta
  unsigned fetchable_ = 0;              // warps with i-buffer room (detailed)
  std::vector<std::uint8_t> sb_blocked_;  // cleared per slot by Writeback
  std::vector<ResidentCta> ctas_;
  unsigned resident_warps_ = 0;
  std::uint64_t launch_seq_ = 0;

  Scoreboard scoreboard_;
  BarrierManager barriers_;
  CtaAllocator allocator_;
  SmemConflictCounter smem_conflicts_;  // analytical-path bank conflicts
  std::vector<SubCore> subcores_;
  std::unique_ptr<SectorCache> l1_;  // cycle-accurate memory mode only
  std::unique_ptr<MemContentionModel> contention_;  // analytical mode

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events_;
  Cycle next_struct_wake_ = kNever;
  Cycle next_wake_ = 0;

  SmStats stats_;
};

}  // namespace swiftsim
