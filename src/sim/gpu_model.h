// The assembled GPU performance model: SMs + interconnect + L2 partitions
// + DRAM channels + block scheduler, with per-module modeling approaches
// chosen by ModelSelection (paper Fig. 2, "Modular and Hybrid GPU
// Modeling").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytical/mem_model.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "mem/addrmap.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/noc.h"
#include "sim/block_scheduler.h"
#include "sim/metrics.h"
#include "sim/model_select.h"
#include "sim/sm.h"
#include "trace/kernel.h"

namespace swiftsim {

struct KernelResult {
  std::string name;
  Cycle cycles = 0;           // this kernel's contribution
  std::uint64_t instructions = 0;
};

struct SimResult {
  std::string app;
  std::string simulator;
  Cycle total_cycles = 0;
  std::uint64_t instructions = 0;
  double wall_seconds = 0;
  std::vector<KernelResult> kernels;
  std::map<std::string, std::uint64_t> metrics;
};

class GpuModel {
 public:
  /// `profile` must be non-null iff selection.mem == kAnalytical; it must
  /// outlive the model.
  GpuModel(const GpuConfig& cfg, const ModelSelection& selection,
           const MemProfile* profile = nullptr);

  /// Runs one kernel to completion (including memory drain); returns the
  /// cycles it consumed. State (caches, clock) persists across kernels.
  Cycle RunKernel(const KernelTrace& kernel);

  /// Runs all kernels of an application in launch order.
  SimResult RunApplication(const Application& app);

  Cycle now() const { return now_; }
  const MetricsGatherer& metrics() const { return gatherer_; }
  const std::vector<std::unique_ptr<SmCore>>& sms() const { return sms_; }

  /// Aggregated convenience stats (summed over components).
  std::uint64_t TotalIssuedInstrs() const;
  std::uint64_t TotalReservationFails() const;

 private:
  void TickMemorySystem();
  bool MemQuiescent() const;
  bool AllQuiescent() const;
  void RegisterMetrics();

  GpuConfig cfg_;
  ModelSelection sel_;
  std::unique_ptr<AnalyticalMemModel> mem_model_;

  std::vector<std::unique_ptr<SmCore>> sms_;
  std::unique_ptr<Interconnect> noc_;
  std::vector<std::unique_ptr<SectorCache>> l2_;
  std::vector<std::unique_ptr<DramChannel>> dram_;
  std::unique_ptr<AddrMap> addrmap_;
  BlockScheduler scheduler_;
  MetricsGatherer gatherer_;

  Cycle now_ = 0;
};

}  // namespace swiftsim
