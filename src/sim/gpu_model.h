// The assembled GPU performance model: SMs + interconnect + L2 partitions
// + DRAM channels + block scheduler, with per-module modeling approaches
// chosen by ModelSelection (paper Fig. 2, "Modular and Hybrid GPU
// Modeling").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytical/mem_model.h"
#include "common/spsc_queue.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "mem/addrmap.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/noc.h"
#include "sim/block_scheduler.h"
#include "sim/fault_hooks.h"
#include "sim/metrics.h"
#include "sim/model_select.h"
#include "sim/sm.h"
#include "trace/kernel.h"

namespace swiftsim {

struct KernelResult {
  std::string name;
  Cycle cycles = 0;           // this kernel's contribution
  std::uint64_t instructions = 0;
};

/// One graceful-degradation fallback (DESIGN.md §11): a kernel that hung or
/// failed under the detailed model and was re-run analytically.
struct DegradeEvent {
  std::string kernel;
  std::string reason;     // what() of the error that triggered the fallback
  std::string dump_path;  // diagnostic dump, "" when none was written
};

struct SimResult {
  std::string app;
  std::string simulator;
  Cycle total_cycles = 0;
  std::uint64_t instructions = 0;
  double wall_seconds = 0;
  std::vector<KernelResult> kernels;
  std::vector<DegradeEvent> degrades;
  std::map<std::string, std::uint64_t> metrics;
};

class GpuModel {
 public:
  /// `profile` must be non-null iff selection.mem == kAnalytical; it must
  /// outlive the model.
  GpuModel(const GpuConfig& cfg, const ModelSelection& selection,
           const MemProfile* profile = nullptr);

  /// Runs one kernel to completion (including memory drain); returns the
  /// cycles it consumed. State (caches, clock) persists across kernels.
  Cycle RunKernel(const KernelTrace& kernel);

  /// Runs all kernels of an application in launch order.
  SimResult RunApplication(const Application& app);

  Cycle now() const { return now_; }
  const MetricsGatherer& metrics() const { return gatherer_; }
  /// Non-const overload: external drivers (e.g. the memoization driver)
  /// register their own counters so snapshots include them.
  MetricsGatherer& metrics() { return gatherer_; }
  const std::vector<std::unique_ptr<SmCore>>& sms() const { return sms_; }

  /// Aggregated convenience stats (summed over components).
  std::uint64_t TotalIssuedInstrs() const;
  std::uint64_t TotalReservationFails() const;

  // --- Shard-driver interface (bounded-slack parallel simulation) ---------
  // RunKernel is built on these primitives; a parallel driver (see
  // swiftsim/parallel_detailed.cc) may instead advance disjoint SM ranges
  // concurrently between barriers and tick the shared L2/NoC/DRAM from a
  // single coordinator thread. SM→memory traffic crosses threads through
  // the per-SM bounded SPSC ports below, so slack=1 parallel runs are
  // cycle-identical to the serial loop.

  /// Feasibility check, launch overhead, per-SM kernel-start hooks and
  /// block-scheduler arming — everything RunKernel does before its loop.
  void BeginKernel(const KernelTrace& kernel);

  /// True once the grid completed and every component drained.
  bool KernelDone() const {
    return scheduler_.Done() && AllQuiescent();
  }

  /// Greedy CTA dispatch over all SMs; single-threaded (coordinator only).
  unsigned AssignPendingCtas() { return scheduler_.AssignPending(sms_); }

  /// Advances SMs [first, last) by one cycle: delivers pending NoC
  /// responses, ticks each active SM, and drains its L1 miss queue into
  /// the SM's memory port (stamped with `now`). Returns true if any SM
  /// progressed. Disjoint ranges are safe to run concurrently.
  bool TickSmRange(unsigned first, unsigned last, Cycle now);

  /// Ticks the shared memory system one cycle: injects port requests with
  /// stamp <= now into the request network (SM order, backpressure-exact),
  /// then ticks NoC, L2 slices and DRAM channels. Coordinator only.
  void TickSharedMemory(Cycle now);

  /// NoC + L2 + DRAM + all SM memory ports drained.
  bool MemQuiescent() const;

  /// Earliest future wake cycle over all active SMs; kNever when none.
  Cycle MinNextWake() const;

  /// The shared memory system's side of the wake calendar: the earliest
  /// cycle > `now` at which the NoC, any L2 slice, any DRAM channel, or a
  /// pending SM port entry can change state. kNever when drained (or in
  /// analytical-memory mode, which has no shared memory system).
  Cycle MemNextEventAfter(Cycle now) const;

  /// Fast-forwards over `skipped` cycles the calendar proved are no-op
  /// ticks: replays per-call rotors (NoC arbitration, block-scheduler
  /// starting SM), catches up per-SM stall accounting, and records skip
  /// statistics. Call only from the driver thread (serial loop or the
  /// parallel window completion step).
  void FastForward(Cycle skipped);

  /// Parallel drivers own the clock between kernels; resync the model so
  /// state that persists across kernels (launch overhead, totals) agrees.
  void SyncClock(Cycle now) { now_ = now; }

  // --- Resilience (DESIGN.md §11) -----------------------------------------

  /// Arms fault injection at the module hand-off seams (response delivery,
  /// issue, shared-memory drain). `hooks` must outlive the model; nullptr
  /// disarms. Unarmed runs take exactly one null test per guarded site.
  void ArmFaults(FaultHooks* hooks) { fault_ = hooks; }

  /// True when any watchdog dimension (stall window or wall budget) is on.
  bool WatchdogEnabled() const { return wd_enabled_; }

  /// One watchdog observation at simulated cycle `now`. Call after the
  /// cycle's ticks so a jump landing's progress is already visible. Throws
  /// SimHangError (after writing a diagnostic dump) when the progress
  /// signature froze for a full window or the wall budget expired. Pure
  /// observation otherwise — never perturbs simulated state.
  void WatchdogPoll(Cycle now);

  /// Raises the typed wedge error (no progress and no future calendar
  /// events) with a diagnostic dump; replaces the old bare SS_CHECK so
  /// hung drivers fail with actionable state.
  [[noreturn]] void ThrowWedged(Cycle now);

  /// Writes the JSON diagnostic dump (per-SM warp/scoreboard/LD-ST state,
  /// memory occupancies, wake calendar) to cfg.watchdog.dump_dir. Returns
  /// the file path, or "" when no dump directory is configured or the
  /// write failed.
  std::string WriteDiagnosticDump(const std::string& reason, Cycle now) const;

  /// Monotone counter folding issued instructions and memory-system
  /// traffic; frozen signature across a watchdog window means livelock.
  std::uint64_t ProgressSignature() const;

 private:
  /// One SM's outbound memory port: requests stamped with their issue
  /// cycle, produced by the SM's shard thread and consumed by the memory
  /// coordinator. `pending` mirrors the queue size so the L1's output
  /// backpressure still sees drained-but-uninjected requests.
  struct SmMemPort {
    struct Stamped {
      Cycle cycle = 0;
      MemRequest req;
    };
    explicit SmMemPort(std::size_t capacity) : q(capacity) {}
    SpscQueue<Stamped> q;
    std::atomic<std::size_t> pending{0};
  };

  /// Skip statistics (registered under "driver.*"). span_hist[k] counts
  /// jumps whose span lies in [2^k, 2^(k+1)) cycles; the last bucket is
  /// open-ended.
  struct SkipStats {
    static constexpr unsigned kHistBuckets = 8;
    std::uint64_t cycles_skipped = 0;  // driver cycles elided by jumps
    std::uint64_t jumps = 0;           // wake events dispatched via jumps
    std::uint64_t sm_ticks_saved = 0;  // active-SM ticks elided by jumps
    std::uint64_t span_hist[kHistBuckets] = {};
  };

  bool AllQuiescent() const;
  void RegisterMetrics();

  GpuConfig cfg_;
  ModelSelection sel_;
  std::unique_ptr<AnalyticalMemModel> mem_model_;

  std::vector<std::unique_ptr<SmCore>> sms_;
  std::unique_ptr<Interconnect> noc_;
  std::vector<std::unique_ptr<SectorCache>> l2_;
  std::vector<std::unique_ptr<DramChannel>> dram_;
  std::unique_ptr<AddrMap> addrmap_;
  std::vector<std::unique_ptr<SmMemPort>> sm_ports_;
  BlockScheduler scheduler_;
  MetricsGatherer gatherer_;
  SkipStats skip_;
  unsigned l2_drain_attempts_ = 0;  // resolved from cfg (0 = l2.banks)

  // Resilience state (DESIGN.md §11). All driver-thread-only.
  FaultHooks* fault_ = nullptr;              // non-owning; nullptr = off
  const KernelTrace* current_kernel_ = nullptr;
  bool wd_enabled_ = false;
  Cycle wd_next_check_ = 0;
  std::uint64_t wd_last_sig_ = 0;
  unsigned wd_poll_count_ = 0;               // amortizes wall-clock reads
  bool wall_armed_ = false;
  std::chrono::steady_clock::time_point wall_deadline_{};

  Cycle now_ = 0;
};

}  // namespace swiftsim
