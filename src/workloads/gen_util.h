// Internal boilerplate shared by the suite generator .cc files.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "trace/kernel.h"
#include "workloads/patterns.h"
#include "workloads/workload.h"

namespace swiftsim::workloads {

/// Static shape of one synthesized kernel.
struct KernelShape {
  std::string name;
  KernelId id = 0;
  std::uint32_t ctas = 64;
  std::uint32_t warps_per_cta = 8;
  std::uint32_t smem_bytes = 0;
  std::uint32_t regs_per_thread = 32;
  std::uint32_t variants = 4;  // distinct CTA traces (shared mod variants)
};

/// Process-wide toggle for per-variant parallel trace generation inside
/// MakeKernel (on by default). Generation is deterministic either way —
/// every variant owns an independent Rng — so this exists for serial
/// baselines in benches and the build-determinism tests.
void SetParallelTraceBuild(bool enabled);
bool ParallelTraceBuild();

/// Builds a kernel by invoking `fill(cta, variant_index, rng)` once per
/// variant; the Rng is seeded deterministically from (seed, kernel id,
/// variant). Variants are filled in parallel on the shared ThreadPool when
/// ParallelTraceBuild() is on. The resulting trace is validated before
/// return.
std::shared_ptr<KernelTrace> MakeKernel(
    const KernelShape& shape, std::uint64_t seed,
    const std::function<void(CtaTrace*, std::size_t, Rng&)>& fill);

/// Disjoint 64MB global-memory regions for a kernel's arrays.
inline Addr Region(unsigned idx) {
  return 0x1000'0000ull + static_cast<Addr>(idx) * 0x0400'0000ull;
}

/// Per-variant slice inside a region so different CTA variants stream
/// disjoint data (controls aggregate footprint vs. L2 capacity).
inline Addr VariantSlice(unsigned region, std::size_t variant,
                         std::uint64_t slice_bytes) {
  return Region(region) + static_cast<Addr>(variant) * slice_bytes;
}

}  // namespace swiftsim::workloads
