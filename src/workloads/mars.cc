// Mars (MapReduce-on-GPU) synthetic generators: SM (StringMatch) and
// II (InvertedIndex).
#include "workloads/gen_util.h"
#include "workloads/workload_suites.h"

namespace swiftsim::workloads {

namespace {
constexpr std::uint8_t kRA = 2, kRB = 3;
constexpr std::uint8_t kRd0 = 8, kRd1 = 9;
constexpr std::uint8_t kAcc0 = 16;
constexpr std::uint8_t kTmp = 24;
}  // namespace

// ---------------------------------------------------------------------------
// SM (StringMatch): the map phase scans the input corpus once — a pure
// streaming-read workload with two integer compares per chunk and very rare
// divergent match emission. One of the paper's >1000x Swift-Sim-Memory
// applications: almost every cycle of the cycle-accurate run is DRAM wait.
// ---------------------------------------------------------------------------
Application BuildStringMatch(const WorkloadScale& s) {
  Application app;
  app.name = "SM";
  KernelShape shape;
  shape.name = "string_match_map";
  shape.ctas = Scaled(s.scale, 144, 2);
  shape.warps_per_cta = 8;
  shape.regs_per_thread = 18;
  shape.variants = 32;  // stream far more data than L2 holds
  const std::uint32_t chunks = 36;
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng& rng) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_ld = pa.Next(), pc_c0 = pa.Next(), pc_c1 = pa.Next(),
                   pc_emit = pa.Next(), pc_exit = pa.Next();
          const std::uint64_t span = chunks * 256ull;  // 8B per lane
          const Addr corpus = VariantSlice(0, variant,
                                           shape.warps_per_cta * span) +
                              w * span;
          const Addr matches = VariantSlice(1, variant, 1 << 16) + w * 2048;
          for (std::uint32_t c = 0; c < chunks; ++c) {
            e.Mem(pc_ld, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  CoalescedAddrs(corpus + c * 256, 8));
            e.Alu(pc_c0, Opcode::kISetp, kTmp, {kRd0, kRB});
            e.Alu(pc_c1, Opcode::kISetp, kAcc0, {kRd0, kTmp});
            if (c % 12 == 11) {
              const LaneMask hit = RandomMask(rng, 0.08);
              e.Mem(pc_emit, Opcode::kStGlobal, kNoReg, {kAcc0}, hit,
                    CoalescedAddrs(matches + (c / 12) * 128, 4, hit));
            }
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

// ---------------------------------------------------------------------------
// II (InvertedIndex): streaming reads of the document corpus, an integer
// hash per word, and scattered writes into the index buckets.
// ---------------------------------------------------------------------------
Application BuildInvertedIndex(const WorkloadScale& s) {
  Application app;
  app.name = "II";
  KernelShape shape;
  shape.name = "inverted_index_map";
  shape.ctas = Scaled(s.scale, 120, 2);
  shape.warps_per_cta = 8;
  shape.regs_per_thread = 24;
  shape.variants = 16;
  const std::uint32_t words = 22;
  const std::uint64_t index_bytes = 16ull << 20;
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng& rng) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_ld = pa.Next(), pc_h0 = pa.Next(), pc_h1 = pa.Next(),
                   pc_h2 = pa.Next(), pc_bucket = pa.Next(),
                   pc_st = pa.Next(), pc_exit = pa.Next();
          const std::uint64_t span = words * 128ull;
          const Addr docs = VariantSlice(0, variant,
                                         shape.warps_per_cta * span) +
                            w * span;
          for (std::uint32_t i = 0; i < words; ++i) {
            e.Mem(pc_ld, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  CoalescedAddrs(docs + i * 128, 4));
            e.Alu(pc_h0, Opcode::kIMad, kTmp, {kRd0, kRB});
            e.Alu(pc_h1, Opcode::kIMul, kTmp, {kTmp});
            e.Alu(pc_h2, Opcode::kIAdd, kAcc0, {kTmp, kRd0});
            // Bucket head read-modify-write: random gather + scatter.
            e.Mem(pc_bucket, Opcode::kLdGlobal, kRd1, {kAcc0}, kFullMask,
                  RandomAddrs(rng, Region(2), index_bytes, 8));
            e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kRd1}, kFullMask,
                  RandomAddrs(rng, Region(2), index_bytes, 8));
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

}  // namespace swiftsim::workloads
