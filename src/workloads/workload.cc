#include "workloads/workload.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>

#include "common/journal.h"
#include "common/status.h"
#include "trace/trace_io.h"
#include "workloads/workload_suites.h"

namespace swiftsim {

const std::vector<WorkloadSpec>& AllWorkloads() {
  static const std::vector<WorkloadSpec> kSpecs = {
      // Rodinia.
      {"BFS", "rodinia", WorkloadKind::kIrregular,
       "level-synchronous breadth-first search, divergent frontier"},
      {"NW", "rodinia", WorkloadKind::kMemoryStreaming,
       "Needleman-Wunsch wavefront DP, shared-memory tiles, memory-bound"},
      {"HOTSPOT", "rodinia", WorkloadKind::kComputeBound,
       "thermal 5-point stencil with deep FP chains"},
      {"PATHFINDER", "rodinia", WorkloadKind::kMixed,
       "row-by-row dynamic programming with per-row barriers"},
      {"GAUSSIAN", "rodinia", WorkloadKind::kMixed,
       "Gaussian elimination, broadcast pivot row"},
      {"SRAD", "rodinia", WorkloadKind::kMixed,
       "speckle-reducing anisotropic diffusion, SFU-heavy stencil"},
      // Polybench.
      {"ADI", "polybench", WorkloadKind::kMemoryStreaming,
       "alternating-direction implicit sweeps, column-strided accesses"},
      {"LU", "polybench", WorkloadKind::kMixed,
       "LU decomposition, triangular updates, cache-sensitive"},
      {"2MM", "polybench", WorkloadKind::kComputeBound,
       "two chained matrix multiplications, shared-memory tiled"},
      {"GEMM", "polybench", WorkloadKind::kComputeBound,
       "single tiled matrix multiplication"},
      {"ATAX", "polybench", WorkloadKind::kMixed,
       "A^T*A*x: two GEMV passes with tree reductions"},
      {"MVT", "polybench", WorkloadKind::kMixed,
       "matrix-vector product and transposed product"},
      // Mars.
      {"SM", "mars", WorkloadKind::kMemoryStreaming,
       "MapReduce StringMatch: pure streaming scan, minimal compute"},
      {"II", "mars", WorkloadKind::kIrregular,
       "MapReduce InvertedIndex: streaming reads, scattered writes"},
      // Tango.
      {"GRU", "tango", WorkloadKind::kMemoryStreaming,
       "GRU inference: weight-streaming GEMV chains, memory-bound"},
      {"LSTM", "tango", WorkloadKind::kComputeBound,
       "LSTM inference: four-gate tiled GEMV, compute-heavy"},
      // Pannotia.
      {"PAGERANK", "pannotia", WorkloadKind::kIrregular,
       "push-style PageRank over a power-law graph"},
      {"SSSP", "pannotia", WorkloadKind::kIrregular,
       "Bellman-Ford SSSP with divergent relaxations"},
  };
  return kSpecs;
}

const WorkloadSpec& WorkloadByName(const std::string& name) {
  for (const auto& spec : AllWorkloads()) {
    if (spec.name == name) return spec;
  }
  throw SimError("unknown workload '" + name + "'");
}

Application BuildWorkload(const std::string& name, const WorkloadScale& s) {
  SS_CHECK(s.scale > 0, "workload scale must be positive");
  using namespace workloads;
  if (name == "BFS") return BuildBfs(s);
  if (name == "NW") return BuildNw(s);
  if (name == "HOTSPOT") return BuildHotspot(s);
  if (name == "PATHFINDER") return BuildPathfinder(s);
  if (name == "GAUSSIAN") return BuildGaussian(s);
  if (name == "SRAD") return BuildSrad(s);
  if (name == "ADI") return BuildAdi(s);
  if (name == "LU") return BuildLu(s);
  if (name == "2MM") return Build2mm(s);
  if (name == "GEMM") return BuildGemm(s);
  if (name == "ATAX") return BuildAtax(s);
  if (name == "MVT") return BuildMvt(s);
  if (name == "SM") return BuildStringMatch(s);
  if (name == "II") return BuildInvertedIndex(s);
  if (name == "GRU") return BuildGru(s);
  if (name == "LSTM") return BuildLstm(s);
  if (name == "PAGERANK") return BuildPagerank(s);
  if (name == "SSSP") return BuildSssp(s);
  throw SimError("unknown workload '" + name + "'");
}

Fingerprint WorkloadBuildKey(const std::string& name,
                             const WorkloadScale& s) {
  FpHasher h;
  h.Mix(kTraceCacheVersion);
  h.MixString(name);
  std::uint64_t scale_bits = 0;
  static_assert(sizeof s.scale == sizeof scale_bits);
  std::memcpy(&scale_bits, &s.scale, sizeof scale_bits);
  h.Mix(scale_bits);
  h.Mix(s.seed);
  return h.Digest();
}

Application BuildWorkloadCached(const std::string& name,
                                const WorkloadScale& s,
                                const TraceBuildOptions& opts,
                                bool* hit_out) {
  if (hit_out != nullptr) *hit_out = false;
  if (opts.cache_dir.empty()) return BuildWorkload(name, s);
  const Fingerprint key = WorkloadBuildKey(name, s);
  const std::filesystem::path path =
      std::filesystem::path(opts.cache_dir) / (name + "-" + key.ToHex() +
                                               ".sstc");
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      Application app = ReadCompactApplication(path.string(), key);
      if (hit_out != nullptr) *hit_out = true;
      return app;
    } catch (const TraceCacheError& e) {
      // Corrupt or torn entry (§16): quarantine it with a structured log
      // line and regenerate — a cache problem is a cold miss, never an
      // error surfaced to the caller.
      QuarantineCorruptFile(path.string(), e.what());
    }
  }
  Application app = BuildWorkload(name, s);
  std::filesystem::create_directories(opts.cache_dir, ec);
  WriteCompactApplication(app, key, path.string());
  return app;
}

std::uint32_t Scaled(double scale, std::uint32_t value, std::uint32_t lo) {
  const double v = std::round(static_cast<double>(value) * scale);
  return std::max(lo, static_cast<std::uint32_t>(std::max(0.0, v)));
}

Application RepeatLaunches(const Application& app, unsigned iterations) {
  SS_CHECK(iterations >= 1, "need at least one iteration");
  Application out;
  out.name = app.name + "x" + std::to_string(iterations);
  out.kernels.reserve(app.kernels.size() * iterations);
  for (unsigned i = 0; i < iterations; ++i) {
    for (const auto& kernel : app.kernels) out.kernels.push_back(kernel);
  }
  return out;
}

}  // namespace swiftsim
