// Building blocks for the procedural workload generators: lane-address
// pattern helpers and a small emission DSL over WarpTrace.
//
// These generators replace the NVBit-captured hardware traces of the paper
// (DESIGN.md §2): each benchmark is synthesized with the instruction mix,
// register dataflow, divergence and memory-locality structure of the real
// application's dominant kernels.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/instr.h"

namespace swiftsim {

// ---------------------------------------------------------------------------
// Address patterns. All return one address per ACTIVE lane of `mask`, in
// ascending lane order (the compact trace form).
// ---------------------------------------------------------------------------

/// Fully coalesced: lane i reads base + i*elem_bytes.
LaneAddrs CoalescedAddrs(Addr base, unsigned elem_bytes,
                                 LaneMask mask = kFullMask);

/// Strided: lane i reads base + i*stride_bytes (stride >= line size gives
/// one sector/line per lane — the uncoalesced worst case).
LaneAddrs StridedAddrs(Addr base, std::uint64_t stride_bytes,
                               LaneMask mask = kFullMask);

/// Broadcast: all active lanes read the same address.
LaneAddrs BroadcastAddrs(Addr addr, LaneMask mask = kFullMask);

/// Uniform-random addresses inside [region_base, region_base+region_bytes),
/// aligned to `align` bytes.
LaneAddrs RandomAddrs(Rng& rng, Addr region_base,
                              std::uint64_t region_bytes, unsigned align,
                              LaneMask mask = kFullMask);

/// A mask with the lowest `n` lanes active (n in [1, 32]).
LaneMask LowLanes(unsigned n);

/// A random mask with roughly `density` fraction of lanes active; never
/// empty (lane 0 forced on if the draw comes up empty).
LaneMask RandomMask(Rng& rng, double density);

// ---------------------------------------------------------------------------
// Emission DSL
// ---------------------------------------------------------------------------

/// Appends instructions to one warp's trace. PCs are supplied by the
/// caller so that the *same static instruction* carries the same PC in
/// every warp/CTA — the property the per-PC analytical memory model
/// (paper Eq. 1) relies on.
class WarpEmitter {
 public:
  explicit WarpEmitter(WarpTrace* out) : out_(out) {}

  /// Arithmetic/control-flow instruction.
  void Alu(Pc pc, Opcode op, std::uint8_t dst,
           std::initializer_list<std::uint8_t> srcs,
           LaneMask mask = kFullMask);

  /// Memory instruction; addrs must be compact over active lanes.
  void Mem(Pc pc, Opcode op, std::uint8_t dst,
           std::initializer_list<std::uint8_t> srcs, LaneMask mask,
           LaneAddrs addrs);

  void Bar(Pc pc);
  void Exit(Pc pc);

  /// Emits `n` dependent FFMA instructions dst = f(dst) — a latency-bound
  /// compute chain (each depends on the previous).
  void FmaChain(Pc base_pc, unsigned n, std::uint8_t dst, std::uint8_t a,
                std::uint8_t b, LaneMask mask = kFullMask);

  /// Emits `n` independent integer ops cycling over `dst_regs` — a
  /// throughput-bound integer block.
  void IntBlock(Pc base_pc, unsigned n,
                std::initializer_list<std::uint8_t> dst_regs,
                LaneMask mask = kFullMask);

 private:
  WarpTrace* out_;
};

/// PC layout helper: gives each generator a distinct PC region per kernel
/// and hands out consecutive instruction slots (8 bytes apart, mimicking
/// fixed-width SASS encoding).
class PcAlloc {
 public:
  explicit PcAlloc(Pc base) : next_(base) {}
  Pc Next() {
    Pc p = next_;
    next_ += 8;
    return p;
  }

 private:
  Pc next_;
};

}  // namespace swiftsim
