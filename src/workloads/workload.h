// Workload registry: the 18 benchmark applications used in the paper's
// evaluation (Rodinia, Polybench, Mars, Tango, Pannotia — §IV-A2), each
// synthesized procedurally (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/fingerprint.h"
#include "trace/kernel.h"

namespace swiftsim {

/// Scale/seed knobs shared by every generator. `scale` multiplies grid
/// sizes and loop trip counts (1.0 = bench size; tests use ~0.05).
struct WorkloadScale {
  double scale = 1.0;
  std::uint64_t seed = 0x5eed5eedULL;
};

/// Broad behavioural category; used by tests and the experiment harness to
/// sanity-check that the speedup/error structure lands where expected.
enum class WorkloadKind {
  kMemoryStreaming,  // NW, ADI, SM, GRU: >1000x Swift-Sim-Memory candidates
  kComputeBound,     // GEMM-family, LSTM, HOTSPOT
  kIrregular,        // BFS, PAGERANK, SSSP, II
  kMixed,            // the rest
};

struct WorkloadSpec {
  std::string name;    // e.g. "BFS"
  std::string suite;   // e.g. "rodinia"
  WorkloadKind kind;
  std::string description;
};

/// All registered workloads in Figure-4 display order.
const std::vector<WorkloadSpec>& AllWorkloads();

/// Spec lookup; throws SimError on unknown names (case-sensitive).
const WorkloadSpec& WorkloadByName(const std::string& name);

/// Builds the synthetic application; throws SimError on unknown names.
/// Deterministic: same (name, scale, seed) -> identical trace.
Application BuildWorkload(const std::string& name, const WorkloadScale& s);

/// On-disk compact trace cache knobs (DESIGN.md §14).
struct TraceBuildOptions {
  std::string cache_dir;  // empty disables the on-disk cache
};

/// 128-bit key of a generation request: cache format version, workload
/// name, scale bits and seed. Generation is deterministic, so this fully
/// identifies the resulting trace without building it.
Fingerprint WorkloadBuildKey(const std::string& name, const WorkloadScale& s);

/// BuildWorkload behind the compact on-disk cache: a hit loads the
/// columnar columns straight from "<cache_dir>/<name>-<key>.sstc"; a miss
/// (or any malformed/stale file) regenerates and rewrites the entry
/// atomically. With an empty cache_dir this is exactly BuildWorkload.
/// `hit_out`, if non-null, reports whether the cache served the trace.
Application BuildWorkloadCached(const std::string& name,
                                const WorkloadScale& s,
                                const TraceBuildOptions& opts,
                                bool* hit_out = nullptr);

/// Convenience: scaled integer >= lo.
std::uint32_t Scaled(double scale, std::uint32_t value, std::uint32_t lo = 1);

/// Iterative-solver launch pattern: the application's kernel sequence
/// repeated `iterations` times (kernels are shared, not copied). This is
/// the memoization stress shape — every repeat after the first replays
/// from the MemoCache at the analytical levels (DESIGN.md §10).
Application RepeatLaunches(const Application& app, unsigned iterations);

}  // namespace swiftsim
