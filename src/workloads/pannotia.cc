// Pannotia (irregular graph) synthetic generators: PAGERANK and SSSP.
#include "workloads/gen_util.h"
#include "workloads/workload_suites.h"

namespace swiftsim::workloads {

namespace {
constexpr std::uint8_t kRA = 2, kRB = 3;
constexpr std::uint8_t kRd0 = 8, kRd1 = 9, kRd2 = 10;
constexpr std::uint8_t kAcc0 = 16, kAcc1 = 17;
constexpr std::uint8_t kTmp = 24;

/// Power-law-ish degree: most warps see small degrees, a few see large.
std::uint32_t DrawDegree(Rng& rng, std::uint32_t max_deg) {
  const double u = rng.NextDouble();
  const auto d = static_cast<std::uint32_t>(1.0 + (max_deg - 1) * u * u * u);
  return d;
}
}  // namespace

// ---------------------------------------------------------------------------
// PAGERANK: CSR traversal; per-vertex degree drawn from a heavy-tailed
// distribution (divergence), random gathers of neighbour ranks.
// ---------------------------------------------------------------------------
Application BuildPagerank(const WorkloadScale& s) {
  Application app;
  app.name = "PAGERANK";
  const std::uint64_t rank_bytes = 12ull << 20;
  for (std::uint32_t k = 0; k < 2; ++k) {  // push phase + normalize phase
    const bool push = k == 0;
    KernelShape shape;
    shape.name = push ? "pagerank_push" : "pagerank_norm";
    shape.id = k;
    shape.ctas = Scaled(s.scale, push ? 112 : 48, 2);
    shape.warps_per_cta = 8;
    shape.regs_per_thread = 28;
    shape.variants = 8;
    const std::uint32_t vertices = push ? 10 : 24;
    app.kernels.push_back(MakeKernel(
        shape, s.seed, [&, push](CtaTrace* cta, std::size_t variant,
                                 Rng& rng) {
          for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
            WarpEmitter e(&cta->warps[w]);
            PcAlloc pa(0x1000 + k * 0x10000);
            const Pc pc_row = pa.Next(), pc_col = pa.Next(),
                     pc_rank = pa.Next(), pc_fma = pa.Next(),
                     pc_div = pa.Next(), pc_st = pa.Next(),
                     pc_exit = pa.Next();
            const Addr rows = VariantSlice(0, variant, 1 << 16) + w * 4096;
            const Addr cols = VariantSlice(1, variant, 1 << 18) + w * 16384;
            for (std::uint32_t v = 0; v < vertices; ++v) {
              e.Mem(pc_row, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                    CoalescedAddrs(rows + v * 128, 4));
              if (push) {
                const std::uint32_t deg = DrawDegree(rng, 6);
                for (std::uint32_t d = 0; d < deg; ++d) {
                  const LaneMask m = RandomMask(rng, 0.7);
                  e.Mem(pc_col, Opcode::kLdGlobal, kRd1, {kRd0}, m,
                        CoalescedAddrs(cols + (v * 6 + d) * 128, 4, m));
                  e.Mem(pc_rank, Opcode::kLdGlobal, kRd2, {kRd1}, m,
                        RandomAddrs(rng, Region(2), rank_bytes, 4, m));
                  e.Alu(pc_fma, Opcode::kFFma, kAcc0, {kRd2, kRB, kAcc0}, m);
                }
                e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc0}, kFullMask,
                      RandomAddrs(rng, Region(3), rank_bytes, 4));
              } else {
                e.Alu(pc_div, Opcode::kRcp, kAcc1, {kRd0});
                e.Alu(pc_fma, Opcode::kFMul, kAcc0, {kAcc1, kRd0});
                e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc0}, kFullMask,
                      CoalescedAddrs(Region(3) + (variant * 24 + v) * 128 +
                                         w * 4096,
                                     4));
              }
            }
            e.Exit(pc_exit);
          }
        }));
  }
  return app;
}

// ---------------------------------------------------------------------------
// SSSP: Bellman-Ford relaxations; divergent compare-and-update pattern on
// random tentative-distance reads.
// ---------------------------------------------------------------------------
Application BuildSssp(const WorkloadScale& s) {
  Application app;
  app.name = "SSSP";
  const std::uint64_t dist_bytes = 12ull << 20;
  KernelShape shape;
  shape.name = "sssp_relax";
  shape.ctas = Scaled(s.scale, 120, 2);
  shape.warps_per_cta = 8;
  shape.regs_per_thread = 26;
  shape.variants = 8;
  const std::uint32_t edges_per_warp = 26;
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng& rng) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_edge = pa.Next(), pc_wt = pa.Next(),
                   pc_src = pa.Next(), pc_add = pa.Next(),
                   pc_dst = pa.Next(), pc_cmp = pa.Next(),
                   pc_upd = pa.Next(), pc_exit = pa.Next();
          const std::uint64_t span = edges_per_warp * 256ull;
          const Addr edges = VariantSlice(0, variant,
                                          shape.warps_per_cta * span) +
                             w * span;
          for (std::uint32_t i = 0; i < edges_per_warp; ++i) {
            e.Mem(pc_edge, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  CoalescedAddrs(edges + i * 256, 8));
            e.Mem(pc_wt, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                  CoalescedAddrs(edges + i * 256 + 128, 4));
            e.Mem(pc_src, Opcode::kLdGlobal, kRd2, {kRd0}, kFullMask,
                  RandomAddrs(rng, Region(1), dist_bytes, 4));
            e.Alu(pc_add, Opcode::kIAdd, kAcc0, {kRd2, kRd1});
            e.Mem(pc_dst, Opcode::kLdGlobal, kAcc1, {kRd0}, kFullMask,
                  RandomAddrs(rng, Region(1), dist_bytes, 4));
            e.Alu(pc_cmp, Opcode::kISetp, kTmp, {kAcc0, kAcc1});
            // Only lanes whose relaxation improved write back (~35%).
            const LaneMask upd = RandomMask(rng, 0.35);
            e.Mem(pc_upd, Opcode::kStGlobal, kNoReg, {kAcc0}, upd,
                  RandomAddrs(rng, Region(1), dist_bytes, 4, upd));
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

}  // namespace swiftsim::workloads
