// Internal: per-suite generator entry points (implemented in the
// corresponding .cc files; dispatched by workload.cc).
#pragma once

#include "trace/kernel.h"
#include "workloads/workload.h"

namespace swiftsim::workloads {

// Rodinia.
Application BuildBfs(const WorkloadScale& s);
Application BuildNw(const WorkloadScale& s);
Application BuildHotspot(const WorkloadScale& s);
Application BuildPathfinder(const WorkloadScale& s);
Application BuildGaussian(const WorkloadScale& s);
Application BuildSrad(const WorkloadScale& s);

// Polybench.
Application BuildAdi(const WorkloadScale& s);
Application BuildLu(const WorkloadScale& s);
Application Build2mm(const WorkloadScale& s);
Application BuildGemm(const WorkloadScale& s);
Application BuildAtax(const WorkloadScale& s);
Application BuildMvt(const WorkloadScale& s);

// Mars.
Application BuildStringMatch(const WorkloadScale& s);  // "SM"
Application BuildInvertedIndex(const WorkloadScale& s);  // "II"

// Tango.
Application BuildGru(const WorkloadScale& s);
Application BuildLstm(const WorkloadScale& s);

// Pannotia.
Application BuildPagerank(const WorkloadScale& s);
Application BuildSssp(const WorkloadScale& s);

}  // namespace swiftsim::workloads
