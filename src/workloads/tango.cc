// Tango (DNN benchmark suite) synthetic generators: GRU and LSTM inference.
#include "workloads/gen_util.h"
#include "workloads/workload_suites.h"

namespace swiftsim::workloads {

namespace {
constexpr std::uint8_t kRA = 2, kRB = 3;
constexpr std::uint8_t kRd0 = 8, kRd1 = 9, kRd2 = 10;
constexpr std::uint8_t kAcc0 = 16, kAcc1 = 17, kAcc2 = 18;
}  // namespace

// ---------------------------------------------------------------------------
// GRU: per-timestep gate GEMVs stream the (large, never-reused) weight
// matrices; each loaded weight line feeds only one FFMA, so the kernel is
// dominated by DRAM streaming — a >1000x Swift-Sim-Memory case.
// ---------------------------------------------------------------------------
Application BuildGru(const WorkloadScale& s) {
  Application app;
  app.name = "GRU";
  KernelShape shape;
  shape.name = "gru_cell";
  shape.ctas = Scaled(s.scale, 128, 2);
  shape.warps_per_cta = 8;
  shape.smem_bytes = 8 * 1024;
  shape.regs_per_thread = 36;
  shape.variants = 24;
  const std::uint32_t timesteps = 5;
  const std::uint32_t gates = 3;  // update, reset, candidate
  const std::uint32_t rows_per_gate = 4;
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_ldw = pa.Next(), pc_ldu = pa.Next(),
                   pc_ldh = pa.Next();
          const Pc pc_f0 = pa.Next(), pc_f1 = pa.Next();
          const Pc pc_act = pa.Next(), pc_mix = pa.Next();
          const Pc pc_sth = pa.Next(), pc_bar = pa.Next(),
                   pc_exit = pa.Next();
          const std::uint64_t gate_span =
              timesteps * gates * rows_per_gate * 128ull;
          const Addr wmat = VariantSlice(0, variant,
                                         shape.warps_per_cta * gate_span) +
                            w * gate_span;
          const Addr umat = VariantSlice(1, variant,
                                         shape.warps_per_cta * gate_span) +
                            w * gate_span;
          const Addr hidden = VariantSlice(2, variant, 1 << 14);
          std::uint64_t row = 0;
          for (std::uint32_t t = 0; t < timesteps; ++t) {
            for (std::uint32_t g = 0; g < gates; ++g) {
              for (std::uint32_t r = 0; r < rows_per_gate; ++r, ++row) {
                e.Mem(pc_ldw, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                      CoalescedAddrs(wmat + row * 128, 4));
                e.Mem(pc_ldu, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                      CoalescedAddrs(umat + row * 128, 4));
                e.Mem(pc_ldh, Opcode::kLdGlobal, kRd2, {kRB}, kFullMask,
                      CoalescedAddrs(hidden + (row % 16) * 128, 4));
                e.Alu(pc_f0, Opcode::kFFma, kAcc0, {kRd0, kRd2, kAcc0});
                e.Alu(pc_f1, Opcode::kFFma, kAcc1, {kRd1, kRd2, kAcc1});
              }
              e.Alu(pc_act, Opcode::kExp, kAcc2, {kAcc0});  // sigmoid proxy
              e.Alu(pc_mix, Opcode::kFFma, kAcc2, {kAcc2, kAcc1, kAcc0});
            }
            e.Mem(pc_sth, Opcode::kStGlobal, kNoReg, {kAcc2}, kFullMask,
                  CoalescedAddrs(hidden + (t % 16) * 128, 4));
            e.Bar(pc_bar);
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

// ---------------------------------------------------------------------------
// LSTM: four-gate cell with shared-memory-tiled weights — each loaded line
// feeds a deep FFMA chain, so unlike GRU the kernel is compute-bound.
// ---------------------------------------------------------------------------
Application BuildLstm(const WorkloadScale& s) {
  Application app;
  app.name = "LSTM";
  KernelShape shape;
  shape.name = "lstm_cell";
  shape.ctas = Scaled(s.scale, 120, 2);
  shape.warps_per_cta = 8;
  shape.smem_bytes = 24 * 1024;
  shape.regs_per_thread = 48;
  shape.variants = 6;
  const std::uint32_t timesteps = 4;
  const std::uint32_t gates = 4;  // input, forget, cell, output
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_ldw = pa.Next(), pc_sts = pa.Next(),
                   pc_bar = pa.Next(), pc_lds = pa.Next();
          const Pc pc_fma = pa.Next();  // chain of 12
          for (int i = 0; i < 11; ++i) pa.Next();
          const Pc pc_act0 = pa.Next(), pc_act1 = pa.Next(),
                   pc_mul = pa.Next();
          const Pc pc_st = pa.Next(), pc_bar2 = pa.Next(),
                   pc_exit = pa.Next();
          const std::uint64_t span = timesteps * gates * 128ull;
          const Addr wmat = VariantSlice(0, variant,
                                         shape.warps_per_cta * span) +
                            w * span;
          const Addr state = VariantSlice(1, variant, 1 << 14);
          std::uint64_t row = 0;
          for (std::uint32_t t = 0; t < timesteps; ++t) {
            for (std::uint32_t g = 0; g < gates; ++g, ++row) {
              e.Mem(pc_ldw, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                    CoalescedAddrs(wmat + row * 128, 4));
              e.Mem(pc_sts, Opcode::kStShared, kNoReg, {kRd0}, kFullMask,
                    CoalescedAddrs(w * 512, 4));
              e.Bar(pc_bar);
              e.Mem(pc_lds, Opcode::kLdShared, kRd1, {}, kFullMask,
                    CoalescedAddrs(((w + g) % shape.warps_per_cta) * 512, 4));
              e.FmaChain(pc_fma, 12, kAcc0, kRd1, kRd0);
              e.Alu(pc_act0, Opcode::kExp, kAcc1, {kAcc0});
              e.Alu(pc_act1, Opcode::kRcp, kAcc1, {kAcc1});
              e.Alu(pc_mul, Opcode::kFMul, kAcc2, {kAcc1, kAcc0});
            }
            e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc2}, kFullMask,
                  CoalescedAddrs(state + (t % 16) * 128, 4));
            e.Bar(pc_bar2);
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

}  // namespace swiftsim::workloads
