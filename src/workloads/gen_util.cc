#include "workloads/gen_util.h"

#include <atomic>

#include "common/bitutil.h"
#include "common/thread_pool.h"

namespace swiftsim::workloads {

namespace {
std::atomic<bool> g_parallel_build{true};
}  // namespace

void SetParallelTraceBuild(bool enabled) {
  g_parallel_build.store(enabled, std::memory_order_relaxed);
}

bool ParallelTraceBuild() {
  return g_parallel_build.load(std::memory_order_relaxed);
}

std::shared_ptr<KernelTrace> MakeKernel(
    const KernelShape& shape, std::uint64_t seed,
    const std::function<void(CtaTrace*, std::size_t, Rng&)>& fill) {
  KernelInfo info;
  info.name = shape.name;
  info.id = shape.id;
  info.num_ctas = shape.ctas;
  info.warps_per_cta = shape.warps_per_cta;
  info.threads_per_cta = shape.warps_per_cta * kWarpSize;
  info.smem_bytes_per_cta = shape.smem_bytes;
  info.regs_per_thread = shape.regs_per_thread;

  const std::size_t num_variants =
      std::min<std::size_t>(shape.variants, shape.ctas);
  std::vector<CtaTrace> variants(num_variants);
  // Each variant has its own deterministic Rng seeded from (seed, kernel
  // id, variant) and writes only its own CtaTrace, so variants can be
  // filled in parallel on the shared pool with identical results to the
  // serial loop (the columnar encoders touch only per-warp state).
  const auto fill_variant = [&](std::size_t v) {
    Rng rng(HashMix(seed ^ (static_cast<std::uint64_t>(shape.id) << 32) ^
                    (v * 0x9e3779b97f4a7c15ull)));
    variants[v].warps.resize(shape.warps_per_cta);
    fill(&variants[v], v, rng);
  };
  if (ParallelTraceBuild() && num_variants > 1) {
    ThreadPool::Shared().ParallelFor(num_variants, 0, fill_variant);
  } else {
    for (std::size_t v = 0; v < num_variants; ++v) fill_variant(v);
  }
  auto trace =
      std::make_shared<KernelTrace>(std::move(info), std::move(variants));
  trace->ValidateTrace();
  return trace;
}

}  // namespace swiftsim::workloads
