// Polybench-suite synthetic generators: ADI, LU, 2MM, GEMM, ATAX, MVT.
#include "workloads/gen_util.h"
#include "workloads/workload_suites.h"

namespace swiftsim::workloads {

namespace {
constexpr std::uint8_t kRA = 2, kRB = 3;
constexpr std::uint8_t kRd0 = 8, kRd1 = 9, kRd2 = 10, kRd3 = 11;
constexpr std::uint8_t kAcc0 = 16, kAcc1 = 17;
constexpr std::uint8_t kTmp = 24;

/// Emits one tiled-GEMM-style kernel: streaming tile loads into shared
/// memory, a barrier, then an unrolled FFMA block on shared operands.
std::shared_ptr<KernelTrace> TiledMatmulKernel(const std::string& name,
                                               KernelId id,
                                               const WorkloadScale& s,
                                               std::uint32_t k_tiles,
                                               std::uint32_t inner) {
  KernelShape shape;
  shape.name = name;
  shape.id = id;
  shape.ctas = Scaled(s.scale, 128, 2);
  shape.warps_per_cta = 8;
  shape.smem_bytes = 32 * 1024;
  shape.regs_per_thread = 48;
  shape.variants = 4;  // tiles are reused heavily -> cache-friendly
  return MakeKernel(
      shape, s.seed, [&, k_tiles, inner](CtaTrace* cta, std::size_t variant,
                                         Rng&) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000 + id * 0x10000);
          const Pc pc_lda = pa.Next(), pc_ldb = pa.Next(),
                   pc_stsa = pa.Next(), pc_stsb = pa.Next(),
                   pc_bar = pa.Next();
          const Pc pc_ldsa = pa.Next(), pc_ldsb = pa.Next(),
                   pc_fma0 = pa.Next(), pc_fma1 = pa.Next();
          const Pc pc_bar2 = pa.Next(), pc_stc = pa.Next(),
                   pc_exit = pa.Next();
          const std::uint64_t span = k_tiles * 128;
          const Addr a = VariantSlice(0, variant,
                                      shape.warps_per_cta * span) + w * span;
          const Addr b = VariantSlice(1, variant,
                                      shape.warps_per_cta * span) + w * span;
          const Addr c = VariantSlice(2, variant, 1 << 16) + w * 512;
          for (std::uint32_t t = 0; t < k_tiles; ++t) {
            e.Mem(pc_lda, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  CoalescedAddrs(a + t * 128, 4));
            e.Mem(pc_ldb, Opcode::kLdGlobal, kRd1, {kRB}, kFullMask,
                  CoalescedAddrs(b + t * 128, 4));
            e.Mem(pc_stsa, Opcode::kStShared, kNoReg, {kRd0}, kFullMask,
                  CoalescedAddrs(w * 512, 4));
            e.Mem(pc_stsb, Opcode::kStShared, kNoReg, {kRd1}, kFullMask,
                  CoalescedAddrs(4096 + w * 512, 4));
            e.Bar(pc_bar);
            for (std::uint32_t i = 0; i < inner; ++i) {
              e.Mem(pc_ldsa, Opcode::kLdShared, kRd2, {}, kFullMask,
                    CoalescedAddrs((i % shape.warps_per_cta) * 512, 4));
              e.Mem(pc_ldsb, Opcode::kLdShared, kRd3, {}, kFullMask,
                    CoalescedAddrs(4096 + (i % shape.warps_per_cta) * 512, 4));
              e.Alu(pc_fma0, Opcode::kFFma, kAcc0, {kRd2, kRd3, kAcc0});
              e.Alu(pc_fma1, Opcode::kFFma, kAcc1, {kRd2, kRd3, kAcc1});
            }
            e.Bar(pc_bar2);
          }
          e.Mem(pc_stc, Opcode::kStGlobal, kNoReg, {kAcc0}, kFullMask,
                CoalescedAddrs(c, 4));
          e.Exit(pc_exit);
        }
      });
}

/// Emits one GEMV kernel: streaming row loads, an FFMA accumulate, and a
/// shared-memory tree reduction. `strided` selects transposed (column,
/// uncoalesced) access for the matrix.
std::shared_ptr<KernelTrace> GemvKernel(const std::string& name, KernelId id,
                                        const WorkloadScale& s,
                                        std::uint32_t rows, bool strided) {
  KernelShape shape;
  shape.name = name;
  shape.id = id;
  shape.ctas = Scaled(s.scale, 112, 2);
  shape.warps_per_cta = 8;
  shape.smem_bytes = 4 * 1024;
  shape.regs_per_thread = 30;
  shape.variants = strided ? 12 : 8;
  return MakeKernel(
      shape, s.seed, [&, rows, strided](CtaTrace* cta, std::size_t variant,
                                        Rng&) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000 + id * 0x10000);
          const Pc pc_lda = pa.Next(), pc_ldx = pa.Next(),
                   pc_fma = pa.Next();
          const Pc pc_sts = pa.Next(), pc_bar = pa.Next(),
                   pc_lds = pa.Next(), pc_red = pa.Next();
          const Pc pc_st = pa.Next(), pc_exit = pa.Next();
          const std::uint64_t span =
              rows * (strided ? 512ull * kWarpSize : 128ull);
          const Addr a = VariantSlice(0, variant,
                                      shape.warps_per_cta * span) + w * span;
          const Addr x = VariantSlice(1, variant, 1 << 14);
          const Addr y = VariantSlice(2, variant, 1 << 16) + w * 512;
          for (std::uint32_t r = 0; r < rows; ++r) {
            if (strided) {
              e.Mem(pc_lda, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                    StridedAddrs(a + r * 512ull * kWarpSize, 512));
            } else {
              e.Mem(pc_lda, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                    CoalescedAddrs(a + r * 128, 4));
            }
            e.Mem(pc_ldx, Opcode::kLdGlobal, kRd1, {kRB}, kFullMask,
                  CoalescedAddrs(x + (r % 32) * 128, 4));
            e.Alu(pc_fma, Opcode::kFFma, kAcc0, {kRd0, kRd1, kAcc0});
          }
          // Tree reduction across the CTA.
          for (unsigned step = 0; step < 3; ++step) {
            e.Mem(pc_sts, Opcode::kStShared, kNoReg, {kAcc0}, kFullMask,
                  CoalescedAddrs(w * 128, 4));
            e.Bar(pc_bar);
            e.Mem(pc_lds, Opcode::kLdShared, kRd2, {}, kFullMask,
                  CoalescedAddrs(((w + (1u << step)) % shape.warps_per_cta) *
                                     128,
                                 4));
            e.Alu(pc_red, Opcode::kFAdd, kAcc0, {kAcc0, kRd2});
          }
          e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc0}, kFullMask,
                CoalescedAddrs(y, 4));
          e.Exit(pc_exit);
        }
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// ADI: alternating-direction implicit solver. The column sweep is fully
// uncoalesced (one cache line per lane per access) which makes the
// application intensely memory-bound — a headline >1000x Swift-Sim-Memory
// case in the paper.
// ---------------------------------------------------------------------------
Application BuildAdi(const WorkloadScale& s) {
  Application app;
  app.name = "ADI";
  const std::uint32_t iters = 10;
  for (std::uint32_t k = 0; k < 2; ++k) {
    const bool column_sweep = k == 1;
    KernelShape shape;
    shape.name = column_sweep ? "adi_column_sweep" : "adi_row_sweep";
    shape.id = k;
    shape.ctas = Scaled(s.scale, 96, 2);
    shape.warps_per_cta = 8;
    shape.regs_per_thread = 32;
    shape.variants = 16;
    app.kernels.push_back(MakeKernel(
        shape, s.seed, [&, column_sweep](CtaTrace* cta, std::size_t variant,
                                         Rng&) {
          for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
            WarpEmitter e(&cta->warps[w]);
            PcAlloc pa(0x1000 + k * 0x10000);
            const Pc pc_ld0 = pa.Next(), pc_ld1 = pa.Next(),
                     pc_f0 = pa.Next(), pc_f1 = pa.Next(), pc_f2 = pa.Next(),
                     pc_st = pa.Next(), pc_exit = pa.Next();
            const std::uint64_t stride = 2048;  // matrix row pitch
            const std::uint64_t span =
                column_sweep ? iters * stride * kWarpSize : iters * 256ull;
            const Addr a = VariantSlice(0, variant,
                                        shape.warps_per_cta * span) +
                           w * span;
            const Addr b = VariantSlice(1, variant,
                                        shape.warps_per_cta * span) +
                           w * span;
            for (std::uint32_t i = 0; i < iters; ++i) {
              if (column_sweep) {
                e.Mem(pc_ld0, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                      StridedAddrs(a + i * stride * kWarpSize, stride));
                e.Mem(pc_ld1, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                      StridedAddrs(b + i * stride * kWarpSize, stride));
              } else {
                e.Mem(pc_ld0, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                      CoalescedAddrs(a + i * 256, 4));
                e.Mem(pc_ld1, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                      CoalescedAddrs(b + i * 256, 4));
              }
              e.Alu(pc_f0, Opcode::kFMul, kAcc0, {kRd0, kRd1});
              e.Alu(pc_f1, Opcode::kFFma, kAcc0, {kAcc0, kRd0, kRd1});
              e.Alu(pc_f2, Opcode::kFAdd, kAcc1, {kAcc0, kRd1});
              if (column_sweep) {
                e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc1}, kFullMask,
                      StridedAddrs(a + i * stride * kWarpSize, stride));
              } else {
                e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc1}, kFullMask,
                      CoalescedAddrs(a + i * 256, 4));
              }
            }
            e.Exit(pc_exit);
          }
        }));
  }
  return app;
}

// ---------------------------------------------------------------------------
// LU: triangular updates; the active mask shrinks with the elimination
// step, and the pivot region is re-read every iteration (cache-sensitive —
// the application where the paper observed Accel-Sim cache-reservation
// pathologies on the RTX 3090).
// ---------------------------------------------------------------------------
Application BuildLu(const WorkloadScale& s) {
  Application app;
  app.name = "LU";
  KernelShape shape;
  shape.name = "lud_perimeter";
  shape.ctas = Scaled(s.scale, 112, 2);
  shape.warps_per_cta = 8;
  shape.smem_bytes = 16 * 1024;
  shape.regs_per_thread = 34;
  shape.variants = 6;
  const std::uint32_t steps = 16;
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_piv = pa.Next(), pc_row = pa.Next(),
                   pc_rcp = pa.Next(), pc_mul = pa.Next(),
                   pc_fma = pa.Next(), pc_st = pa.Next(), pc_exit = pa.Next();
          const Addr mat = VariantSlice(0, variant, 192 * 1024) + w * 16384;
          const Addr piv = VariantSlice(1, variant, 8192);
          for (std::uint32_t i = 0; i < steps; ++i) {
            // Triangular shrink: later steps touch fewer lanes.
            const LaneMask m = LowLanes(kWarpSize - (i * 3) / 2
                                                        % (kWarpSize - 1));
            e.Mem(pc_piv, Opcode::kLdGlobal, kRd0, {kRA}, m,
                  BroadcastAddrs(piv + (i % 8) * 64, m));
            e.Mem(pc_row, Opcode::kLdGlobal, kRd1, {kRA}, m,
                  CoalescedAddrs(mat + (i % 8) * 128, 4, m));
            e.Alu(pc_rcp, Opcode::kRcp, kTmp, {kRd0}, m);
            e.Alu(pc_mul, Opcode::kFMul, kAcc0, {kRd1, kTmp}, m);
            e.Alu(pc_fma, Opcode::kFFma, kAcc1, {kAcc0, kRd0, kRd1}, m);
            e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc1}, m,
                  CoalescedAddrs(mat + (i % 8) * 128, 4, m));
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

Application Build2mm(const WorkloadScale& s) {
  Application app;
  app.name = "2MM";
  app.kernels.push_back(TiledMatmulKernel("mm2_kernel1", 0, s, 8, 6));
  app.kernels.push_back(TiledMatmulKernel("mm2_kernel2", 1, s, 8, 6));
  return app;
}

Application BuildGemm(const WorkloadScale& s) {
  Application app;
  app.name = "GEMM";
  app.kernels.push_back(TiledMatmulKernel("gemm_kernel", 0, s, 12, 6));
  return app;
}

Application BuildAtax(const WorkloadScale& s) {
  Application app;
  app.name = "ATAX";
  app.kernels.push_back(GemvKernel("atax_ax", 0, s, 14, /*strided=*/false));
  app.kernels.push_back(GemvKernel("atax_aty", 1, s, 14, /*strided=*/true));
  return app;
}

Application BuildMvt(const WorkloadScale& s) {
  Application app;
  app.name = "MVT";
  app.kernels.push_back(GemvKernel("mvt_x1", 0, s, 12, /*strided=*/false));
  app.kernels.push_back(GemvKernel("mvt_x2", 1, s, 12, /*strided=*/false));
  return app;
}

}  // namespace swiftsim::workloads
