// Rodinia-suite synthetic generators: BFS, NW, HOTSPOT, PATHFINDER,
// GAUSSIAN, SRAD. Each reproduces the dominant kernel structure of the real
// application (instruction mix, divergence, locality); see DESIGN.md §2.
#include "workloads/gen_util.h"
#include "workloads/workload_suites.h"

namespace swiftsim::workloads {

namespace {
// Register conventions used by all generators in this file: r2..r5 address
// bases, r8..r15 loaded data, r16..r23 accumulators, r24+ scratch.
constexpr std::uint8_t kRA = 2, kRB = 3, kRC = 4;
constexpr std::uint8_t kRd0 = 8, kRd1 = 9, kRd2 = 10, kRd3 = 11, kRd4 = 12;
constexpr std::uint8_t kAcc0 = 16, kAcc1 = 17, kAcc2 = 18;
constexpr std::uint8_t kTmp = 24;
}  // namespace

// ---------------------------------------------------------------------------
// BFS: level-synchronous traversal. Two kernel launches (two BFS levels).
// Structure per warp: scan frontier flags (coalesced), divergent node body,
// per-edge random reads of the distance array and sparse scattered updates.
// ---------------------------------------------------------------------------
Application BuildBfs(const WorkloadScale& s) {
  Application app;
  app.name = "BFS";
  const std::uint32_t levels = 2;
  const std::uint32_t nodes_per_warp = 8;
  const std::uint32_t degree = 3;
  const std::uint64_t dist_bytes = 8ull << 20;  // distance array, 8MB

  for (std::uint32_t level = 0; level < levels; ++level) {
    KernelShape shape;
    shape.name = "bfs_level" + std::to_string(level);
    shape.id = level;
    shape.ctas = Scaled(s.scale, 112, 2);
    shape.warps_per_cta = 8;
    shape.regs_per_thread = 32;
    shape.variants = 8;
    app.kernels.push_back(MakeKernel(
        shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng& rng) {
          for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
            WarpEmitter e(&cta->warps[w]);
            PcAlloc pa(0x1000 + level * 0x10000);
            const Pc pc_tid0 = pa.Next(), pc_tid1 = pa.Next();
            const Pc pc_ldf = pa.Next(), pc_setp = pa.Next(),
                     pc_bra = pa.Next();
            const Pc pc_row0 = pa.Next(), pc_row1 = pa.Next(),
                     pc_deg = pa.Next();
            const Pc pc_col = pa.Next(), pc_dist = pa.Next(),
                     pc_add = pa.Next(), pc_cmp = pa.Next(),
                     pc_upd = pa.Next();
            const Pc pc_exit = pa.Next();

            e.Alu(pc_tid0, Opcode::kIMad, kRA, {kRA, kRB});
            e.Alu(pc_tid1, Opcode::kIAdd, kRB, {kRA});
            const Addr frontier =
                VariantSlice(0, variant, 1 << 16) + w * 4096;
            const Addr rows = VariantSlice(1, variant, 1 << 16) + w * 4096;
            const Addr edges = VariantSlice(2, variant, 1 << 18) + w * 8192;
            for (std::uint32_t n = 0; n < nodes_per_warp; ++n) {
              e.Mem(pc_ldf, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                    CoalescedAddrs(frontier + n * 128, 4));
              e.Alu(pc_setp, Opcode::kISetp, kTmp, {kRd0});
              // Divergent frontier: roughly half the lanes take the body.
              const LaneMask body = RandomMask(rng, 0.5);
              e.Alu(pc_bra, Opcode::kBra, kNoReg, {kTmp});
              e.Mem(pc_row0, Opcode::kLdGlobal, kRd1, {kRA}, body,
                    CoalescedAddrs(rows + n * 128, 4, body));
              e.Mem(pc_row1, Opcode::kLdGlobal, kRd2, {kRA}, body,
                    CoalescedAddrs(rows + n * 128 + 4, 4, body));
              e.Alu(pc_deg, Opcode::kIAdd, kAcc0, {kRd1, kRd2}, body);
              for (std::uint32_t d = 0; d < degree; ++d) {
                e.Mem(pc_col, Opcode::kLdGlobal, kRd3, {kAcc0}, body,
                      CoalescedAddrs(edges + (n * degree + d) * 128, 4, body));
                e.Mem(pc_dist, Opcode::kLdGlobal, kRd4, {kRd3}, body,
                      RandomAddrs(rng, Region(3), dist_bytes, 4, body));
                e.Alu(pc_add, Opcode::kIAdd, kAcc1, {kRd4}, body);
                e.Alu(pc_cmp, Opcode::kISetp, kTmp, {kAcc1, kRd4}, body);
                LaneMask upd = RandomMask(rng, 0.25) & body;
                if (upd == 0) upd = body;  // sparse scattered update
                e.Mem(pc_upd, Opcode::kStGlobal, kNoReg, {kAcc1}, upd,
                      RandomAddrs(rng, Region(3), dist_bytes, 4, upd));
              }
            }
            e.Exit(pc_exit);
          }
        }));
  }
  return app;
}

// ---------------------------------------------------------------------------
// NW: Needleman-Wunsch wavefront DP. Memory-bound: two streaming input
// loads + shared-memory tile per step, four integer max-ops, one store.
// Two kernels model the upper-left and lower-right diagonal sweeps.
// ---------------------------------------------------------------------------
Application BuildNw(const WorkloadScale& s) {
  Application app;
  app.name = "NW";
  const std::uint32_t tiles = 16;
  for (std::uint32_t k = 0; k < 2; ++k) {
    KernelShape shape;
    shape.name = k == 0 ? "nw_sweep_ul" : "nw_sweep_lr";
    shape.id = k;
    shape.ctas = Scaled(s.scale, 128, 2);
    shape.warps_per_cta = 8;
    shape.smem_bytes = 16 * 1024;
    shape.regs_per_thread = 28;
    shape.variants = 24;  // aggregate footprint exceeds L2 -> streaming
    app.kernels.push_back(MakeKernel(
        shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
          for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
            WarpEmitter e(&cta->warps[w]);
            PcAlloc pa(0x1000 + k * 0x10000);
            const Pc pc_setup = pa.Next();
            const Pc pc_ldr = pa.Next(), pc_ldi = pa.Next(),
                     pc_sts = pa.Next(), pc_bar = pa.Next(),
                     pc_lds = pa.Next();
            const Pc pc_m0 = pa.Next(), pc_m1 = pa.Next(), pc_m2 = pa.Next(),
                     pc_m3 = pa.Next();
            const Pc pc_st = pa.Next(), pc_exit = pa.Next();

            e.Alu(pc_setup, Opcode::kIMad, kRA, {kRA, kRB});
            const std::uint64_t warp_span = tiles * 256;
            const Addr ref = VariantSlice(0, variant,
                                          shape.warps_per_cta * warp_span) +
                             w * warp_span;
            const Addr in = VariantSlice(1, variant,
                                         shape.warps_per_cta * warp_span) +
                            w * warp_span;
            const Addr out = VariantSlice(2, variant,
                                          shape.warps_per_cta * warp_span) +
                             w * warp_span;
            for (std::uint32_t t = 0; t < tiles; ++t) {
              e.Mem(pc_ldr, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                    CoalescedAddrs(ref + t * 256, 4));
              e.Mem(pc_ldi, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                    CoalescedAddrs(in + t * 256, 4));
              e.Mem(pc_sts, Opcode::kStShared, kNoReg, {kRd1}, kFullMask,
                    CoalescedAddrs(w * 512, 4));
              e.Bar(pc_bar);
              e.Mem(pc_lds, Opcode::kLdShared, kRd2, {}, kFullMask,
                    CoalescedAddrs(((w + 1) % shape.warps_per_cta) * 512, 4));
              e.Alu(pc_m0, Opcode::kIAdd, kAcc0, {kRd0, kRd2});
              e.Alu(pc_m1, Opcode::kISetp, kTmp, {kAcc0, kRd1});
              e.Alu(pc_m2, Opcode::kIAdd, kAcc1, {kAcc0, kTmp});
              e.Alu(pc_m3, Opcode::kISetp, kAcc2, {kAcc1});
              e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc1}, kFullMask,
                    CoalescedAddrs(out + t * 256, 4));
            }
            e.Exit(pc_exit);
          }
        }));
  }
  return app;
}

// ---------------------------------------------------------------------------
// HOTSPOT: 5-point thermal stencil, compute-bound (deep FFMA chains per
// loaded neighborhood), shared-memory tiling with barriers.
// ---------------------------------------------------------------------------
Application BuildHotspot(const WorkloadScale& s) {
  Application app;
  app.name = "HOTSPOT";
  KernelShape shape;
  shape.name = "hotspot_kernel";
  shape.ctas = Scaled(s.scale, 120, 2);
  shape.warps_per_cta = 8;
  shape.smem_bytes = 24 * 1024;
  shape.regs_per_thread = 40;
  shape.variants = 6;
  const std::uint32_t steps = 10;
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_setup = pa.Next();
          const Pc pc_c = pa.Next(), pc_n = pa.Next(), pc_sq = pa.Next(),
                   pc_e = pa.Next(), pc_w2 = pa.Next(), pc_pow = pa.Next();
          const Pc pc_fma = pa.Next();  // chain base; occupies 18 slots
          for (int i = 0; i < 17; ++i) pa.Next();
          const Pc pc_sts = pa.Next(), pc_bar = pa.Next(),
                   pc_st = pa.Next(), pc_exit = pa.Next();

          e.Alu(pc_setup, Opcode::kIMad, kRA, {kRA, kRB});
          const std::uint64_t row = 4096;
          const Addr temp = VariantSlice(0, variant, 1 << 20) + w * row * 2;
          const Addr power = VariantSlice(1, variant, 1 << 20) + w * row * 2;
          const Addr out = VariantSlice(2, variant, 1 << 20) + w * row * 2;
          for (std::uint32_t t = 0; t < steps; ++t) {
            const Addr base = temp + t * 128;
            e.Mem(pc_c, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  CoalescedAddrs(base, 4));
            e.Mem(pc_n, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                  CoalescedAddrs(base + row, 4));
            e.Mem(pc_sq, Opcode::kLdGlobal, kRd2, {kRA}, kFullMask,
                  CoalescedAddrs(base + 2 * row, 4));
            e.Mem(pc_e, Opcode::kLdGlobal, kRd3, {kRA}, kFullMask,
                  CoalescedAddrs(base + 4, 4));
            e.Mem(pc_w2, Opcode::kLdGlobal, kRd4, {kRA}, kFullMask,
                  CoalescedAddrs(base + 8, 4));
            e.Mem(pc_pow, Opcode::kLdGlobal, kAcc2, {kRA}, kFullMask,
                  CoalescedAddrs(power + t * 128, 4));
            e.FmaChain(pc_fma, 18, kAcc0, kRd1, kRd2);
            e.Mem(pc_sts, Opcode::kStShared, kNoReg, {kAcc0}, kFullMask,
                  CoalescedAddrs(w * 256, 4));
            e.Bar(pc_bar);
            e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc0}, kFullMask,
                  CoalescedAddrs(out + t * 128, 4));
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

// ---------------------------------------------------------------------------
// PATHFINDER: row-wise DP with a barrier per row; small integer compute on
// shared-memory rows, one coalesced row load per iteration.
// ---------------------------------------------------------------------------
Application BuildPathfinder(const WorkloadScale& s) {
  Application app;
  app.name = "PATHFINDER";
  KernelShape shape;
  shape.name = "dynproc_kernel";
  shape.ctas = Scaled(s.scale, 128, 2);
  shape.warps_per_cta = 8;
  shape.smem_bytes = 8 * 1024;
  shape.regs_per_thread = 24;
  shape.variants = 8;
  const std::uint32_t rows = 20;
  app.kernels.push_back(MakeKernel(
      shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
        for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_setup = pa.Next();
          const Pc pc_ld = pa.Next(), pc_lds0 = pa.Next(),
                   pc_lds1 = pa.Next();
          const Pc pc_min0 = pa.Next(), pc_min1 = pa.Next(),
                   pc_min2 = pa.Next(), pc_add = pa.Next();
          const Pc pc_sts = pa.Next(), pc_bar = pa.Next(),
                   pc_st = pa.Next(), pc_exit = pa.Next();

          e.Alu(pc_setup, Opcode::kIMad, kRA, {kRA, kRB});
          const std::uint64_t warp_span = rows * 128;
          const Addr wall = VariantSlice(0, variant,
                                         shape.warps_per_cta * warp_span) +
                            w * warp_span;
          const Addr result = VariantSlice(1, variant, 1 << 16) + w * 1024;
          for (std::uint32_t r = 0; r < rows; ++r) {
            e.Mem(pc_ld, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  CoalescedAddrs(wall + r * 128, 4));
            e.Mem(pc_lds0, Opcode::kLdShared, kRd1, {}, kFullMask,
                  CoalescedAddrs(w * 256, 4));
            e.Mem(pc_lds1, Opcode::kLdShared, kRd2, {}, kFullMask,
                  CoalescedAddrs(w * 256 + 4, 4));
            e.Alu(pc_min0, Opcode::kISetp, kTmp, {kRd1, kRd2});
            e.Alu(pc_min1, Opcode::kIAdd, kAcc0, {kRd1, kTmp});
            e.Alu(pc_min2, Opcode::kISetp, kTmp, {kAcc0, kRd0});
            e.Alu(pc_add, Opcode::kIAdd, kAcc1, {kAcc0, kRd0});
            e.Mem(pc_sts, Opcode::kStShared, kNoReg, {kAcc1}, kFullMask,
                  CoalescedAddrs(w * 256, 4));
            e.Bar(pc_bar);
            if (r + 1 == rows) {
              e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc1}, kFullMask,
                    CoalescedAddrs(result, 4));
            }
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

// ---------------------------------------------------------------------------
// GAUSSIAN: elimination with a broadcast pivot row (Fan1 computes
// multipliers with an SFU reciprocal; Fan2 streams the trailing submatrix).
// ---------------------------------------------------------------------------
Application BuildGaussian(const WorkloadScale& s) {
  Application app;
  app.name = "GAUSSIAN";

  KernelShape fan1;
  fan1.name = "fan1";
  fan1.id = 0;
  fan1.ctas = Scaled(s.scale, 32, 1);
  fan1.warps_per_cta = 4;
  fan1.regs_per_thread = 20;
  fan1.variants = 4;
  const std::uint32_t f1_iters = 8;
  app.kernels.push_back(MakeKernel(
      fan1, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
        for (std::uint32_t w = 0; w < fan1.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x1000);
          const Pc pc_piv = pa.Next(), pc_col = pa.Next(),
                   pc_rcp = pa.Next(), pc_mul = pa.Next(), pc_st = pa.Next(),
                   pc_exit = pa.Next();
          const Addr mat = VariantSlice(0, variant, 1 << 18) + w * 8192;
          for (std::uint32_t i = 0; i < f1_iters; ++i) {
            e.Mem(pc_piv, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  BroadcastAddrs(mat + i * 2048));
            e.Mem(pc_col, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                  CoalescedAddrs(mat + i * 2048 + 128, 4));
            e.Alu(pc_rcp, Opcode::kRcp, kAcc0, {kRd0});
            e.Alu(pc_mul, Opcode::kFMul, kAcc1, {kRd1, kAcc0});
            e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc1}, kFullMask,
                  CoalescedAddrs(mat + i * 2048 + 1024, 4));
          }
          e.Exit(pc_exit);
        }
      }));

  KernelShape fan2;
  fan2.name = "fan2";
  fan2.id = 1;
  fan2.ctas = Scaled(s.scale, 128, 2);
  fan2.warps_per_cta = 8;
  fan2.regs_per_thread = 26;
  fan2.variants = 8;
  const std::uint32_t f2_iters = 14;
  app.kernels.push_back(MakeKernel(
      fan2, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
        for (std::uint32_t w = 0; w < fan2.warps_per_cta; ++w) {
          WarpEmitter e(&cta->warps[w]);
          PcAlloc pa(0x20000);
          const Pc pc_m = pa.Next(), pc_row = pa.Next(), pc_idx0 = pa.Next(),
                   pc_idx1 = pa.Next(), pc_fma = pa.Next(),
                   pc_st = pa.Next(), pc_exit = pa.Next();
          const std::uint64_t warp_span = f2_iters * 128;
          const Addr mul = VariantSlice(1, variant, 1 << 16) + w * 2048;
          const Addr mat = VariantSlice(2, variant,
                                        fan2.warps_per_cta * warp_span) +
                           w * warp_span;
          for (std::uint32_t i = 0; i < f2_iters; ++i) {
            e.Mem(pc_m, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                  BroadcastAddrs(mul + i * 64));
            e.Mem(pc_row, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                  CoalescedAddrs(mat + i * 128, 4));
            e.Alu(pc_idx0, Opcode::kIMad, kTmp, {kRA, kRB});
            e.Alu(pc_idx1, Opcode::kIAdd, kRC, {kTmp});
            e.Alu(pc_fma, Opcode::kFFma, kAcc0, {kRd1, kRd0, kAcc0});
            e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc0}, kFullMask,
                  CoalescedAddrs(mat + i * 128, 4));
          }
          e.Exit(pc_exit);
        }
      }));
  return app;
}

// ---------------------------------------------------------------------------
// SRAD: anisotropic diffusion, two SFU-heavy stencil kernels.
// ---------------------------------------------------------------------------
Application BuildSrad(const WorkloadScale& s) {
  Application app;
  app.name = "SRAD";
  const std::uint32_t steps = 9;
  for (std::uint32_t k = 0; k < 2; ++k) {
    KernelShape shape;
    shape.name = k == 0 ? "srad1" : "srad2";
    shape.id = k;
    shape.ctas = Scaled(s.scale, 112, 2);
    shape.warps_per_cta = 8;
    shape.regs_per_thread = 36;
    shape.variants = 6;
    app.kernels.push_back(MakeKernel(
        shape, s.seed, [&](CtaTrace* cta, std::size_t variant, Rng&) {
          for (std::uint32_t w = 0; w < shape.warps_per_cta; ++w) {
            WarpEmitter e(&cta->warps[w]);
            PcAlloc pa(0x1000 + k * 0x10000);
            const Pc pc_c = pa.Next(), pc_n = pa.Next(), pc_s = pa.Next(),
                     pc_e2 = pa.Next(), pc_w2 = pa.Next();
            const Pc pc_f0 = pa.Next(), pc_f1 = pa.Next(), pc_f2 = pa.Next(),
                     pc_f3 = pa.Next();
            const Pc pc_sfu0 = pa.Next(), pc_sfu1 = pa.Next();
            const Pc pc_st = pa.Next(), pc_exit = pa.Next();
            const std::uint64_t row = 2048;
            const Addr img = VariantSlice(0, variant, 1 << 20) + w * row * 2;
            const Addr out = VariantSlice(1, variant, 1 << 20) + w * row * 2;
            for (std::uint32_t t = 0; t < steps; ++t) {
              const Addr base = img + t * 128;
              e.Mem(pc_c, Opcode::kLdGlobal, kRd0, {kRA}, kFullMask,
                    CoalescedAddrs(base, 4));
              e.Mem(pc_n, Opcode::kLdGlobal, kRd1, {kRA}, kFullMask,
                    CoalescedAddrs(base + row, 4));
              e.Mem(pc_s, Opcode::kLdGlobal, kRd2, {kRA}, kFullMask,
                    CoalescedAddrs(base + 2 * row, 4));
              e.Mem(pc_e2, Opcode::kLdGlobal, kRd3, {kRA}, kFullMask,
                    CoalescedAddrs(base + 4, 4));
              e.Mem(pc_w2, Opcode::kLdGlobal, kRd4, {kRA}, kFullMask,
                    CoalescedAddrs(base + 8, 4));
              e.Alu(pc_f0, Opcode::kFAdd, kAcc0, {kRd1, kRd2});
              e.Alu(pc_f1, Opcode::kFAdd, kAcc1, {kRd3, kRd4});
              e.Alu(pc_f2, Opcode::kFFma, kAcc0, {kAcc0, kAcc1, kRd0});
              e.Alu(pc_f3, Opcode::kFMul, kAcc1, {kAcc0, kAcc0});
              e.Alu(pc_sfu0, Opcode::kRsqrt, kAcc2, {kAcc1});
              e.Alu(pc_sfu1, Opcode::kExp, kAcc2, {kAcc2});
              e.Mem(pc_st, Opcode::kStGlobal, kNoReg, {kAcc2}, kFullMask,
                    CoalescedAddrs(out + t * 128, 4));
            }
            e.Exit(pc_exit);
          }
        }));
  }
  return app;
}

}  // namespace swiftsim::workloads
