#include "workloads/patterns.h"

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {

namespace {
template <typename Fn>
LaneAddrs PerActiveLane(LaneMask mask, Fn&& addr_of_lane) {
  LaneAddrs out;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if (mask & (LaneMask{1} << lane)) out.push_back(addr_of_lane(lane));
  }
  return out;
}
}  // namespace

LaneAddrs CoalescedAddrs(Addr base, unsigned elem_bytes,
                                 LaneMask mask) {
  return PerActiveLane(mask, [&](unsigned lane) {
    return base + static_cast<Addr>(lane) * elem_bytes;
  });
}

LaneAddrs StridedAddrs(Addr base, std::uint64_t stride_bytes,
                               LaneMask mask) {
  return PerActiveLane(mask, [&](unsigned lane) {
    return base + static_cast<Addr>(lane) * stride_bytes;
  });
}

LaneAddrs BroadcastAddrs(Addr addr, LaneMask mask) {
  return PerActiveLane(mask, [&](unsigned) { return addr; });
}

LaneAddrs RandomAddrs(Rng& rng, Addr region_base,
                              std::uint64_t region_bytes, unsigned align,
                              LaneMask mask) {
  SS_CHECK(region_bytes >= align, "RandomAddrs: region smaller than align");
  const std::uint64_t slots = region_bytes / align;
  return PerActiveLane(mask, [&](unsigned) {
    return region_base + rng.Below(slots) * align;
  });
}

LaneMask LowLanes(unsigned n) {
  SS_CHECK(n >= 1 && n <= kWarpSize, "LowLanes: n out of [1,32]");
  return n == kWarpSize ? kFullMask : ((LaneMask{1} << n) - 1);
}

LaneMask RandomMask(Rng& rng, double density) {
  LaneMask m = 0;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if (rng.Bernoulli(density)) m |= LaneMask{1} << lane;
  }
  if (m == 0) m = 1;
  return m;
}

namespace {
std::array<std::uint8_t, 3> SrcArray(std::initializer_list<std::uint8_t> srcs) {
  std::array<std::uint8_t, 3> out = {kNoReg, kNoReg, kNoReg};
  unsigned i = 0;
  for (std::uint8_t r : srcs) {
    SS_DCHECK(i < out.size());
    out[i++] = r;
  }
  return out;
}
}  // namespace

void WarpEmitter::Alu(Pc pc, Opcode op, std::uint8_t dst,
                      std::initializer_list<std::uint8_t> srcs,
                      LaneMask mask) {
  SS_DCHECK(!IsMemory(op) && !IsBarrier(op) && !IsExit(op));
  out_->EmitScalar(pc, op, dst, SrcArray(srcs), mask);
}

void WarpEmitter::Mem(Pc pc, Opcode op, std::uint8_t dst,
                      std::initializer_list<std::uint8_t> srcs, LaneMask mask,
                      LaneAddrs addrs) {
  SS_DCHECK(IsMemory(op));
  SS_DCHECK(addrs.size() == PopCount(mask));
  out_->EmitMem(pc, op, dst, SrcArray(srcs), mask, addrs);
}

void WarpEmitter::Bar(Pc pc) {
  out_->EmitScalar(pc, Opcode::kBarSync, kNoReg,
                   {kNoReg, kNoReg, kNoReg}, kFullMask);
}

void WarpEmitter::Exit(Pc pc) {
  out_->EmitScalar(pc, Opcode::kExit, kNoReg,
                   {kNoReg, kNoReg, kNoReg}, kFullMask);
}

void WarpEmitter::FmaChain(Pc base_pc, unsigned n, std::uint8_t dst,
                           std::uint8_t a, std::uint8_t b, LaneMask mask) {
  for (unsigned i = 0; i < n; ++i) {
    Alu(base_pc + 8 * i, Opcode::kFFma, dst, {dst, a, b}, mask);
  }
}

void WarpEmitter::IntBlock(Pc base_pc, unsigned n,
                           std::initializer_list<std::uint8_t> dst_regs,
                           LaneMask mask) {
  SS_DCHECK(dst_regs.size() > 0);
  std::vector<std::uint8_t> regs(dst_regs);
  for (unsigned i = 0; i < n; ++i) {
    const std::uint8_t d = regs[i % regs.size()];
    Alu(base_pc + 8 * i, Opcode::kIAdd, d, {d}, mask);
  }
}

}  // namespace swiftsim
