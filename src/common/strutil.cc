#include "common/strutil.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/status.h"

namespace swiftsim {

namespace {
bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWs(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpace(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !IsSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {
template <typename T>
T ParseIntegral(std::string_view s, std::string_view context) {
  std::string_view t = Trim(s);
  SS_CHECK(!t.empty(), std::string("empty integer for ") + std::string(context));
  int base = 10;
  bool negative = false;
  if (!t.empty() && (t[0] == '+' || t[0] == '-')) {
    negative = t[0] == '-';
    t.remove_prefix(1);
  }
  if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    base = 16;
    t.remove_prefix(2);
  }
  T value{};
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value, base);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    detail::ThrowSimError(__FILE__, __LINE__,
                          "malformed integer '" + std::string(s) + "' for " +
                              std::string(context));
  }
  if (negative) {
    if constexpr (std::is_signed_v<T>) {
      return static_cast<T>(-value);
    } else {
      detail::ThrowSimError(__FILE__, __LINE__,
                            "negative value '" + std::string(s) +
                                "' for unsigned " + std::string(context));
    }
  }
  return value;
}
}  // namespace

std::int64_t ParseInt(std::string_view s, std::string_view context) {
  return ParseIntegral<std::int64_t>(s, context);
}

std::uint64_t ParseUint(std::string_view s, std::string_view context) {
  return ParseIntegral<std::uint64_t>(s, context);
}

double ParseDouble(std::string_view s, std::string_view context) {
  std::string t(Trim(s));
  SS_CHECK(!t.empty(), std::string("empty double for ") + std::string(context));
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) {
    detail::ThrowSimError(__FILE__, __LINE__,
                          "malformed double '" + t + "' for " +
                              std::string(context));
  }
  return v;
}

bool ParseBool(std::string_view s, std::string_view context) {
  const std::string t = ToLower(Trim(s));
  if (t == "1" || t == "true") return true;
  if (t == "0" || t == "false") return false;
  detail::ThrowSimError(__FILE__, __LINE__,
                        "malformed boolean '" + std::string(s) + "' for " +
                            std::string(context));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace swiftsim
