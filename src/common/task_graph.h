// Dependency-driven cyclic task scheduler (DESIGN.md §12), in the style of
// SWIFT's task/scheduler/runner split: simulation work becomes tasks with
// explicit unlock (dependency) edges, workers own deques of ready tasks,
// and idle workers steal from victims instead of parking on a barrier.
//
// The graph is *cyclic over rounds*: one round executes every task once,
// respecting the edges; when the last task of a round completes, the graph
// automatically re-arms (wait counters reset, root tasks redistributed)
// and the next round begins — until a task calls Finish(). This shape fits
// discrete-event simulation loops: per-round tasks are "advance this
// SM cluster through the window" and "drain the shared memory system",
// and the sink task decides whether another round (cycle window) is
// needed.
//
// Synchronization contract: task A's writes happen-before task B's reads
// whenever B is reachable from A through edges (wait counters are
// release/acquire, deque hand-offs are mutex-protected), and every task of
// round r happens-before every task of round r+1 (the re-arm runs on the
// worker that completed the round's last task). A graph whose per-round
// data flow follows its edges is therefore data-race-free by construction
// for any worker count — including workers that never get scheduled: any
// participant can finish a round alone by stealing, so progress never
// depends on the pool actually delivering concurrency.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace swiftsim {

class ThreadPool;

class TaskGraph {
 public:
  /// Worker-count cap, far above any real machine; keeps per-worker state
  /// in a fixed-size vector workers can index without synchronization.
  static constexpr unsigned kMaxWorkers = 256;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task; returns its id. `fn` runs once per round. The name is
  /// for diagnostics only.
  int AddTask(std::string name, std::function<void()> fn);

  /// Declares that `to` cannot start a round until `from` completed in the
  /// same round ("from unlocks to", SWIFT's task->unlock edge).
  void AddEdge(int from, int to);

  /// Requests that the current round be the last; call from inside a task
  /// (normally the sink). Workers drain and Run() returns after the round.
  void Finish() { finish_.store(true, std::memory_order_release); }

  /// Executes rounds until Finish() — the caller participates as worker 0
  /// and up to `workers - 1` pool workers join via fire-and-forget
  /// submissions. Rethrows the first exception any task threw (the round
  /// in flight is drained without executing further task bodies).
  ///
  /// Requirements: at least one task; every task reachable from the roots;
  /// a sink that eventually calls Finish() (or a task that throws) —
  /// otherwise Run spins forever, exactly like a serial driver loop with a
  /// broken termination condition.
  void Run(ThreadPool& pool, unsigned workers);

  // --- Scheduler telemetry (valid after Run returns) ----------------------
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t steals() const { return steals_; }

 private:
  struct Task {
    std::string name;
    std::function<void()> fn;
    std::vector<int> unlocks;   // edges out: tasks this one unlocks
    int wait_init = 0;          // edges in
    std::atomic<int> wait{0};   // remaining unfinished dependencies
  };

  /// One worker's ready-deque. Own pops come from the front (LIFO relative
  /// to own pushes — a task a worker just unlocked runs next, keeping the
  /// cluster → mem-drain → coordinator chain on one warm cache); steals
  /// come from the back. A mutex per deque is cheap at simulation-task
  /// granularity: contention exists only while someone is actually
  /// stealing.
  struct alignas(64) WorkerDeque {
    std::mutex mu;
    std::deque<int> q;
  };

  void WorkerLoop(unsigned me, unsigned nworkers);
  bool RunOne(unsigned me, unsigned nworkers);
  void Execute(int id, unsigned me);
  void PushLocal(unsigned me, int id);
  void Rearm(unsigned nworkers);
  void CaptureError() noexcept;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<int> roots_;  // wait_init == 0
  std::vector<std::unique_ptr<WorkerDeque>> deques_;

  std::atomic<int> remaining_{0};  // tasks left in the current round
  std::atomic<bool> finish_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> errored_{false};
  std::mutex err_mu_;
  std::exception_ptr error_;

  std::uint64_t rounds_ = 0;  // written by the (serialized) re-arm step
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace swiftsim
