// Persistent work-stealing thread pool shared by every parallel entry
// point in the framework (app-level batches, SM-parallel runs, the cache
// pre-pass and the bounded-slack parallel simulator). Workers are spawned
// once and reused across submissions — no parallel path spawns a
// std::thread per batch or per kernel.
//
// Exceptions thrown inside a worker are captured and rethrown on the
// thread that joins the batch (TaskGroup::Wait / ParallelFor), so an
// SS_CHECK failure in a worker surfaces as a normal SimError instead of
// std::terminate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace swiftsim {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const {
    return num_workers_.load(std::memory_order_acquire);
  }

  /// Grows the pool to at least `n` workers (never shrinks). Needed before
  /// submitting `n` tasks that block on a common barrier: each such task
  /// occupies one worker until the whole team finishes.
  void EnsureWorkers(unsigned n);

  /// Fire-and-forget submission; prefer TaskGroup/ParallelFor, which also
  /// propagate exceptions.
  void Submit(std::function<void()> fn);

  /// A batch of tasks that can be awaited together. The first exception
  /// thrown by any task is captured and rethrown from Wait().
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup();
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Submits one task to the pool.
    void Run(std::function<void()> fn);

    /// Executes `fn` on the calling thread with the same exception capture
    /// (used so the caller can work alongside the pool).
    void RunInline(const std::function<void()>& fn);

    /// Blocks until every task finished; rethrows the first captured
    /// exception.
    void Wait();

   private:
    void Capture();

    ThreadPool& pool_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t outstanding_ = 0;
    std::exception_ptr error_;
  };

  /// Runs fn(i) for every i in [0, n) using at most `max_workers`
  /// concurrent threads (0 = pool size + caller). The calling thread
  /// participates, so max_workers == 1 executes entirely inline. Blocks
  /// until done; rethrows the first exception.
  void ParallelFor(std::size_t n, unsigned max_workers,
                   const std::function<void(std::size_t)>& fn);

  /// The process-wide shared pool (created on first use, sized to the
  /// hardware; grow with EnsureWorkers).
  static ThreadPool& Shared();

 private:
  // Hard cap on growth — far above any real machine, keeps the queue
  // vector's reserved storage stable so workers can index it lock-free.
  static constexpr unsigned kMaxWorkers = 256;

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  void SpawnLocked(unsigned count);
  void WorkerLoop(unsigned me);
  bool TryRunOne(unsigned home);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<unsigned> num_workers_{0};
  std::atomic<unsigned> rr_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::mutex grow_mu_;
};

}  // namespace swiftsim
