// Error handling used across Swift-Sim.
//
// Configuration / input errors (bad config file, malformed trace) throw
// SimError with a descriptive message; internal invariant violations use
// SS_ASSERT which also throws so tests can observe them. Hot simulation
// paths use plain asserts via SS_DCHECK (compiled out in release).
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace swiftsim {

/// Exception type for all user-visible Swift-Sim failures.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void ThrowSimError(const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw SimError(os.str());
}
}  // namespace detail

}  // namespace swiftsim

/// Throws SimError with message `msg` if `cond` is false. Always evaluated.
#define SS_CHECK(cond, msg)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::swiftsim::detail::ThrowSimError(__FILE__, __LINE__,        \
                                        std::string("check failed: " #cond \
                                                    " — ") +       \
                                            (msg));                \
    }                                                              \
  } while (0)

/// Internal invariant; throws so unit tests can exercise failure paths.
#define SS_ASSERT(cond)                                            \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::swiftsim::detail::ThrowSimError(__FILE__, __LINE__,        \
                                        "invariant violated: " #cond); \
    }                                                              \
  } while (0)

/// Debug-only check for hot paths.
#define SS_DCHECK(cond) assert(cond)
