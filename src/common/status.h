// Error handling used across Swift-Sim.
//
// Configuration / input errors (bad config file, malformed trace) throw
// SimError with a descriptive message; internal invariant violations use
// SS_ASSERT which also throws so tests can observe them. Hot simulation
// paths use plain asserts via SS_DCHECK (compiled out in release).
//
// Failures raised while a simulation driver is running carry the driver's
// position (kernel name, SM id, cycle) via the thread-local ScopedSimContext
// so that a check buried deep inside a module names the simulated location,
// not just the source line. Forward-progress failures (watchdog trips,
// wedged drivers) raise the SimHangError subtype, which additionally names
// the diagnostic dump written for the hang (DESIGN.md §11).
#pragma once

#include <cassert>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace swiftsim {

/// Exception type for all user-visible Swift-Sim failures.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// A simulation that stopped making forward progress: the watchdog saw no
/// retired instructions or drained requests for a full window, the wall
/// clock budget expired, or the driver wedged with no future events. The
/// `dump_path` names the JSON diagnostic dump, empty when no dump
/// directory was configured.
class SimHangError : public SimError {
 public:
  enum class Kind {
    kNoProgress,  // watchdog window elapsed with a frozen progress signature
    kWallClock,   // per-app wall-clock budget expired
    kWedged,      // no progress and no future calendar events
  };

  SimHangError(Kind kind, const std::string& what, std::string dump_path)
      : SimError(what), kind_(kind), dump_path_(std::move(dump_path)) {}

  Kind kind() const { return kind_; }
  const std::string& dump_path() const { return dump_path_; }

 private:
  Kind kind_;
  std::string dump_path_;
};

namespace detail {

/// One frame of driver position, published thread-locally by the active
/// driver so ThrowSimError can enrich any failure raised beneath it. The
/// cycle is read through a pointer at throw time — the driver updates its
/// clock for free instead of re-publishing every cycle.
struct SimContextFrame {
  const char* kernel = nullptr;       // nullptr = no driver context
  int sm = -1;                        // -1 = not inside an SM tick
  const std::uint64_t* cycle = nullptr;
};

inline thread_local SimContextFrame g_sim_context;

inline void AppendSimContext(std::ostringstream& os) {
  const SimContextFrame& c = g_sim_context;
  if (c.kernel == nullptr) return;
  os << " [kernel=" << c.kernel;
  if (c.sm >= 0) os << " sm=" << c.sm;
  if (c.cycle != nullptr) os << " cycle=" << *c.cycle;
  os << "]";
}

[[noreturn]] inline void ThrowSimError(const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  AppendSimContext(os);
  throw SimError(os.str());
}

}  // namespace detail

/// RAII publisher of the driver position for the current thread. The
/// kernel name must outlive the scope; nesting restores the outer frame.
class ScopedSimContext {
 public:
  ScopedSimContext(const char* kernel, const std::uint64_t* cycle)
      : prev_(detail::g_sim_context) {
    detail::g_sim_context = {kernel, -1, cycle};
  }
  ~ScopedSimContext() { detail::g_sim_context = prev_; }

  ScopedSimContext(const ScopedSimContext&) = delete;
  ScopedSimContext& operator=(const ScopedSimContext&) = delete;

  /// Marks which SM the current thread is ticking (-1 = none). Cheap
  /// enough for per-SM granularity in the tick loop.
  static void SetSm(int sm) { detail::g_sim_context.sm = sm; }

 private:
  detail::SimContextFrame prev_;
};

}  // namespace swiftsim

/// Throws SimError with message `msg` if `cond` is false. Always evaluated.
#define SS_CHECK(cond, msg)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::swiftsim::detail::ThrowSimError(__FILE__, __LINE__,        \
                                        std::string("check failed: " #cond \
                                                    " — ") +       \
                                            (msg));                \
    }                                                              \
  } while (0)

/// Internal invariant; throws so unit tests can exercise failure paths.
#define SS_ASSERT(cond)                                            \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::swiftsim::detail::ThrowSimError(__FILE__, __LINE__,        \
                                        "invariant violated: " #cond); \
    }                                                              \
  } while (0)

/// Debug-only check for hot paths.
#define SS_DCHECK(cond) assert(cond)
