#include "common/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/log.h"
#include "common/status.h"

namespace swiftsim {
namespace {

// 8-byte file head: format name + version + newline, so `head -c8` on a
// journal is self-describing and a version bump invalidates old segments.
constexpr char kFileMagic[8] = {'S', 'S', 'J', 'R', 'N', 'L', '1', '\n'};
constexpr std::uint32_t kRecordMagic = 0x4C4E524Au;  // "JRNL" little-endian
// Frames larger than this are garbage lengths from a torn/overwritten
// region, not real records — recovery truncates there.
constexpr std::uint32_t kMaxRecordBytes = 1u << 26;

struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};
static_assert(sizeof(FrameHeader) == 12, "frame header must be packed");

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void WriteAll(int fd, const void* data, std::size_t n, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      SS_CHECK(false, "write to journal '" + path + "' failed: " +
                          std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    SS_CHECK(false, "fsync of journal '" + path + "' failed: " +
                        std::strerror(errno));
  }
}

/// Best-effort directory fsync so a rename/creat is durable, not just the
/// file contents. Some filesystems reject O_RDONLY on directories; a
/// failure here narrows the durability window, it does not break recovery.
void FsyncParentDir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Scans `data` (the file bytes past the head magic) for the longest valid
/// record prefix. Returns the byte offset where the valid prefix ends.
std::size_t ScanRecords(const char* data, std::size_t size,
                        std::vector<std::string>* out) {
  std::size_t off = 0;
  for (;;) {
    if (size - off < sizeof(FrameHeader)) break;
    FrameHeader h;
    std::memcpy(&h, data + off, sizeof h);
    if (h.magic != kRecordMagic || h.length > kMaxRecordBytes) break;
    if (size - off - sizeof h < h.length) break;  // torn payload
    const char* payload = data + off + sizeof h;
    if (Crc32(payload, h.length) != h.crc) break;
    if (out != nullptr) out->emplace_back(payload, h.length);
    off += sizeof h + h.length;
  }
  return off;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SS_CHECK(f != nullptr, "cannot read journal '" + path + "'");
  std::string data;
  char chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    data.append(chunk, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  SS_CHECK(!bad, "error reading journal '" + path + "'");
  return data;
}

JournalRecovery RecoverBytes(const std::string& data, const std::string& path) {
  JournalRecovery rec;
  SS_CHECK(data.size() >= sizeof kFileMagic &&
               std::memcmp(data.data(), kFileMagic, sizeof kFileMagic) == 0,
           "'" + path + "' is not a Swift-Sim journal (bad or missing head)");
  const std::size_t valid =
      sizeof kFileMagic + ScanRecords(data.data() + sizeof kFileMagic,
                                      data.size() - sizeof kFileMagic,
                                      &rec.records);
  rec.valid_bytes = valid;
  rec.truncated_bytes = data.size() - valid;
  return rec;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& table = CrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

JournalRecovery ReadJournal(const std::string& path) {
  return RecoverBytes(ReadWholeFile(path), path);
}

Journal::~Journal() {
  try {
    Close();
  } catch (...) {
    // Destruction must not throw; the segment is already durable up to the
    // last acknowledged Append.
  }
}

void Journal::Open(const std::string& path, bool truncate, Options opt,
                   JournalRecovery* recovered) {
  std::lock_guard<std::mutex> lock(mu_);
  SS_CHECK(fd_ < 0, "journal is already open ('" + path_ + "')");
  SS_CHECK(!path.empty(), "journal path is empty");
  path_ = path;
  opt_ = opt;
  appended_ = 0;

  bool fresh = truncate;
  if (!truncate) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || st.st_size == 0) {
      fresh = true;  // missing or empty file: start a new segment
    }
  }

  if (fresh) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    SS_CHECK(fd_ >= 0, "cannot create journal '" + path + "': " +
                           std::strerror(errno));
    WriteAll(fd_, kFileMagic, sizeof kFileMagic, path_);
    if (opt_.fsync_each) {
      FsyncFd(fd_, path_);
      FsyncParentDir(path_);
    }
    bytes_ = sizeof kFileMagic;
    if (recovered != nullptr) *recovered = JournalRecovery{};
    return;
  }

  // Recovery: find the longest valid prefix, hand its records back, and
  // physically truncate the torn tail so appends extend valid framing.
  JournalRecovery rec = RecoverBytes(ReadWholeFile(path), path);
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  SS_CHECK(fd_ >= 0, "cannot open journal '" + path + "' for append: " +
                         std::strerror(errno));
  if (rec.truncated_bytes > 0) {
    SS_CHECK(::ftruncate(fd_, static_cast<off_t>(rec.valid_bytes)) == 0,
             "cannot truncate torn tail of journal '" + path + "': " +
                 std::strerror(errno));
    if (opt_.fsync_each) FsyncFd(fd_, path_);
    SS_LOG(kWarning) << "journal: recovered path=" << path
                    << " records=" << rec.records.size()
                    << " torn_tail_bytes=" << rec.truncated_bytes;
  }
  SS_CHECK(::lseek(fd_, static_cast<off_t>(rec.valid_bytes), SEEK_SET) >= 0,
           "cannot seek journal '" + path + "'");
  bytes_ = rec.valid_bytes;
  if (recovered != nullptr) *recovered = std::move(rec);
}

void Journal::AppendLocked(std::string_view payload) {
  SS_CHECK(fd_ >= 0, "journal is not open");
  SS_CHECK(payload.size() <= kMaxRecordBytes, "journal record too large");
  FrameHeader h;
  h.magic = kRecordMagic;
  h.length = static_cast<std::uint32_t>(payload.size());
  h.crc = Crc32(payload.data(), payload.size());
  // One buffered write per record keeps a crash tear inside a single
  // frame: recovery drops at most the record being written.
  std::string frame;
  frame.reserve(sizeof h + payload.size());
  frame.append(reinterpret_cast<const char*>(&h), sizeof h);
  frame.append(payload.data(), payload.size());
  WriteAll(fd_, frame.data(), frame.size(), path_);
  if (opt_.fsync_each) FsyncFd(fd_, path_);
  bytes_ += frame.size();
  ++appended_;
}

void Journal::Append(std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(payload);
}

void Journal::Rotate(const std::vector<std::string>& keep) {
  std::lock_guard<std::mutex> lock(mu_);
  SS_CHECK(fd_ >= 0, "journal is not open");
  // Unique temp name per process and rotation, as in MemoCache::SaveToFile.
  std::ostringstream tmp_name;
  tmp_name << path_ << ".tmp." << static_cast<long>(::getpid()) << "."
           << rotations_;
  const std::string tmp = tmp_name.str();
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  SS_CHECK(tfd >= 0, "cannot create journal temp '" + tmp + "': " +
                         std::strerror(errno));
  std::uint64_t new_bytes = sizeof kFileMagic;
  try {
    WriteAll(tfd, kFileMagic, sizeof kFileMagic, tmp);
    for (const std::string& payload : keep) {
      FrameHeader h;
      h.magic = kRecordMagic;
      h.length = static_cast<std::uint32_t>(payload.size());
      h.crc = Crc32(payload.data(), payload.size());
      WriteAll(tfd, &h, sizeof h, tmp);
      WriteAll(tfd, payload.data(), payload.size(), tmp);
      new_bytes += sizeof h + payload.size();
    }
    FsyncFd(tfd, tmp);
  } catch (...) {
    ::close(tfd);
    std::remove(tmp.c_str());
    throw;
  }
  ::close(tfd);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    SS_CHECK(false, "rename '" + tmp + "' -> '" + path_ + "' failed");
  }
  FsyncParentDir(path_);
  // The old fd now names the unlinked previous segment; reopen the path.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  SS_CHECK(fd_ >= 0, "cannot reopen rotated journal '" + path_ + "'");
  bytes_ = new_bytes;
  ++rotations_;
}

bool Journal::NeedsRotation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opt_.rotate_bytes != 0 && bytes_ > opt_.rotate_bytes;
}

void Journal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  if (opt_.fsync_each) FsyncFd(fd_, path_);
  ::close(fd_);
  fd_ = -1;
}

bool Journal::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

std::uint64_t Journal::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::uint64_t Journal::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

void QuarantineCorruptFile(const std::string& path, const std::string& reason) {
  const std::string dest = path + ".corrupt";
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  std::string disposition = "quarantined";
  if (std::rename(path.c_str(), dest.c_str()) != 0) {
    disposition = std::remove(path.c_str()) == 0 ? "removed" : "rename_failed";
  }
  SS_LOG(kWarning) << "corrupt-cache: " << disposition << " path=" << path
                  << " dest=" << dest << " bytes=" << (ec ? 0 : size)
                  << " reason=\"" << reason << "\"";
}

}  // namespace swiftsim
