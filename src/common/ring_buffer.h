// Growable circular FIFO with a deque-like interface, backing every
// hot-path queue (cache pending/ready/miss, DRAM, NoC, pipelines). One
// contiguous power-of-two array; push/pop never allocate once the queue
// has reached its high-water capacity — unlike std::deque, whose block map
// churns allocations as elements cross block boundaries (DESIGN.md §8).
//
// Positional insert/erase are order-preserving and shift the cheaper side,
// matching the two hot uses: sorted insert near the back (latency pipes)
// and FR-FCFS picks near the front (DRAM scheduler).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"

namespace swiftsim {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  /// Pre-sizes capacity to at least `n` elements (rounded to a power of
  /// two) so steady-state traffic below that bound never allocates.
  void Reserve(std::size_t n) {
    if (n > buf_.size()) Regrow(CapacityFor(n));
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return buf_.size(); }

  /// Drops all elements; keeps capacity.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }
  T& operator[](std::size_t i) { return buf_[(head_ + i) & mask()]; }
  const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) & mask()];
  }

  void push_back(const T& v) {
    if (size_ == buf_.size()) Regrow(CapacityFor(size_ + 1));
    buf_[(head_ + size_) & mask()] = v;
    ++size_;
  }
  void push_back(T&& v) {
    if (size_ == buf_.size()) Regrow(CapacityFor(size_ + 1));
    buf_[(head_ + size_) & mask()] = std::move(v);
    ++size_;
  }

  void pop_front() {
    SS_DCHECK(size_ > 0);
    head_ = (head_ + 1) & mask();
    --size_;
  }
  void pop_back() {
    SS_DCHECK(size_ > 0);
    --size_;
  }

  /// Order-preserving insert before position `pos` (0 = front).
  void insert(std::size_t pos, const T& v) {
    SS_DCHECK(pos <= size_);
    push_back(v);  // grows if needed; value parked at the new back slot
    for (std::size_t i = size_ - 1; i > pos; --i) {
      (*this)[i] = std::move((*this)[i - 1]);
    }
    (*this)[pos] = v;
  }

  /// Order-preserving erase of position `pos`, shifting whichever side is
  /// shorter.
  void erase(std::size_t pos) {
    SS_DCHECK(pos < size_);
    if (pos < size_ - pos) {
      for (std::size_t i = pos; i > 0; --i) (*this)[i] = std::move((*this)[i - 1]);
      pop_front();
    } else {
      for (std::size_t i = pos; i + 1 < size_; ++i) {
        (*this)[i] = std::move((*this)[i + 1]);
      }
      pop_back();
    }
  }

 private:
  std::size_t mask() const { return buf_.size() - 1; }

  static std::size_t CapacityFor(std::size_t n) {
    std::size_t cap = 16;
    while (cap < n) cap *= 2;
    return cap;
  }

  /// Re-lays the live window out from index 0 of a fresh power-of-two
  /// array (FIFO order preserved).
  void Regrow(std::size_t new_cap) {
    std::vector<T> fresh(new_cap);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = std::move((*this)[i]);
    buf_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> buf_;  // size() is the power-of-two capacity
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace swiftsim
