// Small vector with inline storage: the first N elements live inside the
// object; pushing past N spills to a single heap block. clear() keeps the
// current capacity, so a reused InlineVec is allocation-free in steady
// state. Hot-path containers size N at a hard architectural bound
// (e.g. kWarpSize lanes) so the heap path never triggers (DESIGN.md §8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace swiftsim {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0, "InlineVec needs inline capacity");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() noexcept : data_(InlineData()) {}
  InlineVec(std::initializer_list<T> init) : InlineVec() { Assign(init); }
  InlineVec(const InlineVec& o) : InlineVec() {
    reserve(o.size_);
    for (std::uint32_t i = 0; i < o.size_; ++i) new (data_ + i) T(o.data_[i]);
    size_ = o.size_;
  }
  InlineVec(InlineVec&& o) noexcept : InlineVec() { StealOrMove(o); }

  InlineVec& operator=(const InlineVec& o) {
    if (this == &o) return *this;
    clear();
    reserve(o.size_);
    for (std::uint32_t i = 0; i < o.size_; ++i) new (data_ + i) T(o.data_[i]);
    size_ = o.size_;
    return *this;
  }
  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this == &o) return *this;
    clear();
    StealOrMove(o);
    return *this;
  }
  InlineVec& operator=(std::initializer_list<T> init) {
    Assign(init);
    return *this;
  }

  ~InlineVec() {
    clear();
    ReleaseHeap();
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  bool on_heap() const { return data_ != InlineData(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  /// Destroys all elements; keeps the current (possibly heap) capacity.
  void clear() {
    for (std::uint32_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > cap_) Grow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) Grow(cap_ * 2);
    new (data_ + size_) T(v);
    ++size_;
  }
  void push_back(T&& v) {
    if (size_ == cap_) Grow(cap_ * 2);
    new (data_ + size_) T(std::move(v));
    ++size_;
  }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) Grow(cap_ * 2);
    T* p = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() {
    data_[--size_].~T();
  }

  /// Order-preserving erase; returns an iterator to the next element.
  iterator erase(iterator pos) {
    for (T* p = pos; p + 1 != end(); ++p) *p = std::move(p[1]);
    pop_back();
    return pos;
  }

  void resize(std::size_t n) {
    reserve(n);
    while (size_ > n) pop_back();
    while (size_ < n) new (data_ + size_++) T();
  }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::uint32_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const InlineVec& a, const InlineVec& b) {
    return !(a == b);
  }

 private:
  T* InlineData() noexcept { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const noexcept {
    return reinterpret_cast<const T*>(inline_);
  }

  void Assign(std::initializer_list<T> init) {
    clear();
    reserve(init.size());
    for (const T& v : init) new (data_ + size_++) T(v);
  }

  /// Move-assign helper: steal the heap block when there is one, otherwise
  /// move the inline elements. `o` is left empty (capacity reset to inline).
  void StealOrMove(InlineVec& o) noexcept {
    if (o.on_heap()) {
      ReleaseHeap();
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.InlineData();
      o.cap_ = N;
      o.size_ = 0;
    } else {
      reserve(o.size_);
      for (std::uint32_t i = 0; i < o.size_; ++i) {
        new (data_ + i) T(std::move(o.data_[i]));
      }
      size_ = o.size_;
      o.clear();
    }
  }

  void Grow(std::size_t want) {
    std::size_t new_cap = cap_;
    while (new_cap < want) new_cap *= 2;
    T* heap = static_cast<T*>(::operator new(
        new_cap * sizeof(T), std::align_val_t(alignof(T))));
    for (std::uint32_t i = 0; i < size_; ++i) {
      new (heap + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    ReleaseHeap();
    data_ = heap;
    cap_ = static_cast<std::uint32_t>(new_cap);
  }

  void ReleaseHeap() noexcept {
    if (on_heap()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
      data_ = InlineData();
      cap_ = N;
    }
  }

  T* data_;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace swiftsim
