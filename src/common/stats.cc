#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/status.h"

namespace swiftsim {

void Summary::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

double Summary::min() const {
  SS_CHECK(count_ > 0, "min() of empty Summary");
  return min_;
}

double Summary::max() const {
  SS_CHECK(count_ > 0, "max() of empty Summary");
  return max_;
}

double Summary::mean() const {
  SS_CHECK(count_ > 0, "mean() of empty Summary");
  return sum_ / static_cast<double>(count_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return std::max(var, 0.0);  // guard FP cancellation
}

double Summary::stddev() const { return std::sqrt(variance()); }

double GeoMean(const std::vector<double>& values) {
  SS_CHECK(!values.empty(), "GeoMean of empty vector");
  double log_sum = 0;
  for (double v : values) {
    SS_CHECK(v > 0, "GeoMean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Mean(const std::vector<double>& values) {
  SS_CHECK(!values.empty(), "Mean of empty vector");
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double RelError(double predicted, double actual) {
  SS_CHECK(actual != 0, "RelError with zero actual value");
  return std::abs(predicted - actual) / std::abs(actual);
}

double MeanAbsRelError(const std::vector<double>& predicted,
                       const std::vector<double>& actual) {
  SS_CHECK(predicted.size() == actual.size(),
           "MeanAbsRelError: size mismatch");
  SS_CHECK(!predicted.empty(), "MeanAbsRelError: empty input");
  double sum = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    sum += RelError(predicted[i], actual[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

double Quantile(std::vector<double> values, double q) {
  SS_CHECK(!values.empty(), "Quantile of empty vector");
  SS_CHECK(q >= 0.0 && q <= 1.0, "Quantile q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  SS_CHECK(hi > lo, "Histogram: hi must exceed lo");
  SS_CHECK(bins > 0, "Histogram: need at least one bin");
}

void Histogram::Add(double v) {
  ++total_;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // FP edge
    ++counts_[idx];
  }
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  SS_CHECK(i < counts_.size(), "Histogram bin index out of range");
  return counts_[i];
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "hist[" << lo_ << "," << hi_ << ") total=" << total_
     << " under=" << underflow_ << " over=" << overflow_ << " bins=";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i) os << ",";
    os << counts_[i];
  }
  return os.str();
}

}  // namespace swiftsim
