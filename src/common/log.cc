#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace swiftsim {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* Tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[swiftsim %s] %s\n", Tag(level), msg.c_str());
}

}  // namespace swiftsim
