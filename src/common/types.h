// Fundamental scalar types shared across the Swift-Sim libraries.
#pragma once

#include <cstdint>

namespace swiftsim {

/// Simulation time in core clock cycles.
using Cycle = std::uint64_t;

/// Byte address in the simulated GPU's global address space.
using Addr = std::uint64_t;

/// Program counter of a (virtual) SASS instruction, in bytes.
using Pc = std::uint64_t;

/// Identifier types. Plain integers; strong typing is provided by context
/// (ids never cross component boundaries without their owning object).
using SmId = std::uint32_t;
using SubCoreId = std::uint32_t;
using WarpId = std::uint32_t;   // hardware warp slot within an SM
using CtaId = std::uint32_t;    // linearized CTA index within a grid
using KernelId = std::uint32_t;

/// Number of threads in a warp. Fixed for all modeled NVIDIA parts.
inline constexpr unsigned kWarpSize = 32;

/// Active-thread mask of a warp (bit i == lane i active).
using LaneMask = std::uint32_t;

inline constexpr LaneMask kFullMask = 0xffffffffu;

}  // namespace swiftsim
