// Small statistics toolkit: running summaries, relative-error metrics and
// the geometric means used throughout the paper's evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swiftsim {

/// Streaming summary of a sequence of doubles.
class Summary {
 public:
  void Add(double v);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Geometric mean of strictly positive values. Throws SimError on empty
/// input or non-positive entries.
double GeoMean(const std::vector<double>& values);

/// Arithmetic mean. Throws SimError on empty input.
double Mean(const std::vector<double>& values);

/// |predicted - actual| / actual, as used for the paper's cycle-prediction
/// error. Throws SimError if actual == 0.
double RelError(double predicted, double actual);

/// Mean absolute relative error over paired vectors (same length, nonempty).
double MeanAbsRelError(const std::vector<double>& predicted,
                       const std::vector<double>& actual);

/// Quantile via linear interpolation on a copy of `values`; q in [0,1].
double Quantile(std::vector<double> values, double q);

/// Histogram with fixed-width bins, used by the reuse-distance profiler
/// and metric reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double v);
  std::uint64_t bin_count(std::size_t i) const;
  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace swiftsim
