#include "common/thread_pool.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(kMaxWorkers);
  threads_.reserve(kMaxWorkers);
  std::lock_guard<std::mutex> lk(grow_mu_);
  SpawnLocked(std::min(num_threads, kMaxWorkers));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::SpawnLocked(unsigned count) {
  SS_CHECK(num_workers_.load() + count <= kMaxWorkers,
           "ThreadPool cannot grow beyond " + std::to_string(kMaxWorkers) +
               " workers");
  for (unsigned i = 0; i < count; ++i) {
    const unsigned id = num_workers_.load(std::memory_order_relaxed);
    queues_.push_back(std::make_unique<WorkerQueue>());
    // Publish the queue before the worker count so TryRunOne never indexes
    // past the constructed range.
    num_workers_.store(id + 1, std::memory_order_release);
    threads_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

void ThreadPool::EnsureWorkers(unsigned n) {
  std::lock_guard<std::mutex> lk(grow_mu_);
  const unsigned have = num_workers_.load(std::memory_order_relaxed);
  if (n > have) SpawnLocked(std::min(n, kMaxWorkers) - have);
}

void ThreadPool::Submit(std::function<void()> fn) {
  const unsigned n = size();
  const unsigned w = rr_.fetch_add(1, std::memory_order_relaxed) % n;
  {
    std::lock_guard<std::mutex> lk(queues_[w]->mu);
    queues_[w]->q.push_back(std::move(fn));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::TryRunOne(unsigned home) {
  const unsigned n = size();
  for (unsigned k = 0; k < n; ++k) {
    WorkerQueue& wq = *queues_[(home + k) % n];
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lk(wq.mu);
      if (wq.q.empty()) continue;
      if (k == 0) {
        // Own queue: FIFO.
        task = std::move(wq.q.front());
        wq.q.pop_front();
      } else {
        // Steal from the opposite end of a victim's queue.
        task = std::move(wq.q.back());
        wq.q.pop_back();
      }
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    task();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned me) {
  for (;;) {
    if (TryRunOne(me)) continue;
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleep_cv_.wait(lk, [this] {
      return shutdown_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

ThreadPool::TaskGroup::~TaskGroup() {
  // Tasks reference the group; never destroy it while any are in flight.
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return outstanding_ == 0; });
}

void ThreadPool::TaskGroup::Capture() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!error_) error_ = std::current_exception();
}

void ThreadPool::TaskGroup::Run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++outstanding_;
  }
  pool_.Submit([this, task = std::move(fn)] {
    try {
      task();
    } catch (...) {
      Capture();
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (--outstanding_ == 0) cv_.notify_all();
  });
}

void ThreadPool::TaskGroup::RunInline(const std::function<void()>& fn) {
  try {
    fn();
  } catch (...) {
    Capture();
  }
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return outstanding_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::ParallelFor(std::size_t n, unsigned max_workers,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t workers = max_workers == 0 ? size() + 1 : max_workers;
  workers = std::min<std::size_t>(workers, n);
  std::atomic<std::size_t> next{0};
  auto body = [&next, n, &fn] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  TaskGroup group(*this);
  for (std::size_t t = 1; t < workers; ++t) group.Run(body);
  group.RunInline(body);
  group.Wait();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: parallel runs may still be draining during
  // static destruction in odd embeddings; a leak is safer than a join.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace swiftsim
