// Crash-consistency toolkit (DESIGN.md §16): a write-ahead journal plus
// the quarantine helper for corrupt advisory caches.
//
// The journal is an append-only file of CRC32-framed records. Each record
// is `[magic u32][payload length u32][payload crc32 u32][payload bytes]`;
// the file opens with an 8-byte format magic so a journal is never
// confused with another file kind. Appends are optionally fsync'd per
// record — a record that Append() returned from survives SIGKILL of the
// writer. Recovery reads the longest valid prefix and truncates a torn
// tail (a record cut mid-write by a crash) instead of failing: everything
// before the tear is intact by construction, everything after it was
// never acknowledged. A corrupt head, by contrast, means the file is not
// a journal at all and raises SimError — recovery never silently empties
// a file it does not recognize.
//
// Segment rotation reuses the repo's atomic temp+rename idiom (memo-cache
// and compact-trace saves): the retained records are written to a unique
// temp file, fsync'd, and renamed over the journal, so a crash during
// rotation leaves the previous segment intact.
//
// Consumers: the resumable DSE sweep engine (dse_engine.h) journals point
// completions and rung decisions; the daemon supervisor (supervisor.h)
// journals in-flight jobs so a restarted worker can replay them.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace swiftsim {

/// Plain CRC-32 (IEEE 802.3 polynomial, the zlib one). `seed` chains
/// incremental computations; pass the previous return value.
std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// What recovery found in an existing journal file.
struct JournalRecovery {
  std::vector<std::string> records;  // valid payloads, append order
  std::uint64_t valid_bytes = 0;     // file prefix the records occupy
  std::uint64_t truncated_bytes = 0; // torn tail dropped past the prefix
};

/// Reads every valid record of `path` without modifying the file. Throws
/// SimError when the file is missing/unreadable or its head is not a
/// journal; a torn tail is reported, not raised.
JournalRecovery ReadJournal(const std::string& path);

class Journal {
 public:
  struct Options {
    /// fsync after every Append — the durability contract above. Tests
    /// that hammer thousands of records may turn it off.
    bool fsync_each = true;
    /// Advisory segment size: NeedsRotation() turns true past it so the
    /// owner can compact via Rotate(). 0 = never.
    std::uint64_t rotate_bytes = 0;
  };

  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending. `truncate` starts a fresh segment
  /// (dropping any previous content); otherwise an existing file is
  /// recovered — valid records land in `*recovered` (may be null) and a
  /// torn tail is physically truncated off so appends extend a valid
  /// prefix. A missing file starts empty in both modes.
  void Open(const std::string& path, bool truncate, Options opt,
            JournalRecovery* recovered = nullptr);

  /// Appends one framed record (thread-safe) and, per Options, fsyncs.
  /// The payload may hold any bytes, newlines included.
  void Append(std::string_view payload);

  /// Atomically replaces the journal's contents with `keep` (temp file +
  /// fsync + rename), then continues appending to the new segment.
  void Rotate(const std::vector<std::string>& keep);

  bool NeedsRotation() const;
  void Close();

  bool is_open() const;
  std::uint64_t bytes() const;     // current segment size on disk
  std::uint64_t appended() const;  // records appended since Open
  std::uint64_t rotations() const;
  const std::string& path() const { return path_; }

 private:
  void AppendLocked(std::string_view payload);

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  Options opt_;
  std::uint64_t bytes_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t rotations_ = 0;
};

/// Moves a corrupt advisory file (memo cache, compact trace cache, stale
/// journal) aside to "<path>.corrupt" — replacing any previous quarantine
/// of the same name, falling back to plain removal — and logs one
/// structured warning line naming the path, destination and reason. The
/// caller then proceeds as a cold miss; nothing is raised.
void QuarantineCorruptFile(const std::string& path, const std::string& reason);

}  // namespace swiftsim
