// Open-addressing hash map for the simulator hot path: one flat
// power-of-two array, linear probing, and tombstone-free backward-shift
// deletion, replacing node-based std::unordered_map in the MSHR, the
// cache pre-pass per-PC tables, and the reuse-distance profiler. With
// Reserve() sized from config (MSHR entries, cache lines) lookups touch
// one cache line and steady-state insert/erase never allocate
// (DESIGN.md §8).
//
// Iteration order is the probe-array order — deterministic for a fixed
// insert/erase history but unlike std::unordered_map's; only
// order-insensitive aggregations may iterate (the bit-identity suites
// gate this).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {

/// Default hasher: splitmix64 finalizer over the integral key. Line
/// addresses and packed ids are low-entropy in the low bits, so the mix
/// matters for linear probing.
template <typename K>
struct FlatHash {
  static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                "FlatHash needs an integral key; supply a custom hasher");
  std::uint64_t operator()(const K& k) const {
    return HashMix(static_cast<std::uint64_t>(k));
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
 public:
  /// Public aggregate so `for (auto& [key, value] : map)` keeps working at
  /// call sites converted from std::unordered_map.
  struct Item {
    K key{};
    V value{};
  };

  template <bool Const>
  class Iter {
   public:
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using ItemT = std::conditional_t<Const, const Item, Item>;
    Iter(MapT* m, std::size_t i) : m_(m), i_(i) { SkipEmpty(); }
    ItemT& operator*() const { return m_->slots_[i_]; }
    ItemT* operator->() const { return &m_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      SkipEmpty();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.i_ != b.i_;
    }

   private:
    void SkipEmpty() {
      while (i_ < m_->used_.size() && !m_->used_[i_]) ++i_;
    }
    MapT* m_;
    std::size_t i_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes so `n` live entries never trigger a rehash.
  void Reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap *= 2;  // keep load factor <= 0.75
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Drops all entries; keeps capacity.
  void clear() {
    if constexpr (!std::is_trivially_destructible_v<V>) {
      for (std::size_t i = 0; i < used_.size(); ++i) {
        if (used_[i]) slots_[i] = Item{};
      }
    }
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  V* Find(const K& k) {
    const std::size_t i = FindSlot(k);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  const V* Find(const K& k) const {
    const std::size_t i = FindSlot(k);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  bool contains(const K& k) const { return FindSlot(k) != kNpos; }

  /// Inserts a default value if absent (like std::unordered_map).
  V& operator[](const K& k) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = hash_(k) & mask();
    while (used_[i]) {
      if (slots_[i].key == k) return slots_[i].value;
      i = (i + 1) & mask();
    }
    used_[i] = 1;
    slots_[i].key = k;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  /// Backward-shift deletion: no tombstones, probe chains stay minimal
  /// under churn. Returns true iff the key was present.
  bool erase(const K& k) {
    std::size_t i = FindSlot(k);
    if (i == kNpos) return false;
    for (;;) {
      std::size_t j = i;
      for (;;) {
        j = (j + 1) & mask();
        if (!used_[j]) {
          used_[i] = 0;
          slots_[i] = Item{};  // release any resources held by the value
          --size_;
          return true;
        }
        // Element at j may move back to the hole at i iff its ideal slot
        // is cyclically at-or-before i, i.e. its probe distance covers
        // the gap.
        const std::size_t ideal = hash_(slots_[j].key) & mask();
        if (((j - ideal) & mask()) >= ((j - i) & mask())) {
          slots_[i] = std::move(slots_[j]);
          i = j;
          break;
        }
      }
    }
  }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, used_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, used_.size()); }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNpos = ~std::size_t{0};

  std::size_t mask() const { return slots_.size() - 1; }

  std::size_t FindSlot(const K& k) const {
    if (slots_.empty()) return kNpos;
    std::size_t i = hash_(k) & mask();
    while (used_[i]) {
      if (slots_[i].key == k) return i;
      i = (i + 1) & mask();
    }
    return kNpos;
  }

  void Rehash(std::size_t new_cap) {
    SS_DCHECK(IsPow2(new_cap));
    std::vector<Item> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_cap, Item{});
    used_.assign(new_cap, 0);
    for (std::size_t i = 0; i < old_used.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = hash_(old_slots[i].key) & mask();
      while (used_[j]) j = (j + 1) & mask();
      used_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Item> slots_;           // power-of-two capacity
  std::vector<std::uint8_t> used_;    // 1 = slot holds a live entry
  std::size_t size_ = 0;
  [[no_unique_address]] Hash hash_;
};

}  // namespace swiftsim
