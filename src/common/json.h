// Minimal JSON support for the simulation service protocol (DESIGN.md
// §15). The daemon speaks NDJSON — one JSON object per line — so the
// parser targets small, flat request records, not document trees:
//
//   * hard caps on input size and nesting depth (hostile clients must not
//     drive unbounded allocation — same stance as the trace readers);
//   * integers are preserved exactly (a 64-bit seed must round-trip, so a
//     number keeps its unsigned/signed view alongside the double one);
//   * every error is a typed SimError naming the byte offset.
//
// Writing goes through JsonWriter, an append-only object/scalar builder
// that handles escaping; responses are flat, so no tree type is needed on
// the way out.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace swiftsim {

/// One parsed JSON value. Object members keep source order (requests are
/// validated field-by-field with unknown-field errors, and error messages
/// should name the first offender the client wrote).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw SimError naming the expected kind.
  bool AsBool() const;
  double AsDouble() const;
  /// Exact integer views: throw unless the number was written as an
  /// integer literal that fits the requested type (no silent rounding of
  /// 64-bit seeds through double).
  std::uint64_t AsUint() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;

  /// Object member list in source order.
  const std::vector<std::pair<std::string, JsonValue>>& Members() const;
  /// First member named `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  // Exact integer views of a number literal (see AsUint/AsInt).
  std::uint64_t unum_ = 0;
  std::int64_t inum_ = 0;
  bool has_unum_ = false;
  bool has_inum_ = false;
  std::string str_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonLimits {
  std::size_t max_bytes = 1 << 20;  // whole-input cap
  unsigned max_depth = 16;          // nesting cap (requests are flat)
};

/// Parses one complete JSON value (trailing whitespace allowed, anything
/// else is an error). Throws SimError with the byte offset on malformed
/// input or violated limits.
JsonValue ParseJson(std::string_view text, const JsonLimits& limits = {});

/// Escapes `s` for inclusion in a JSON string literal (no surrounding
/// quotes added).
std::string JsonEscape(std::string_view s);

/// Flat append-only JSON writer: the response/record serializer. Values
/// are written in call order; object/array nesting via Begin/End pairs.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts a named member inside an object (call before a value or
  /// Begin*). Outside an object, keys are invalid.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view v);
  JsonWriter& Bool(bool v);
  JsonWriter& Uint(std::uint64_t v);
  JsonWriter& Int(std::int64_t v);
  /// Doubles print with enough precision to round-trip; NaN/Inf (invalid
  /// JSON) serialize as 0 with no error — response fields are wall-clock
  /// seconds and ratios, where 0 is the honest degenerate value.
  JsonWriter& Double(double v);
  JsonWriter& Null();

  /// Splices an already-serialized JSON fragment as one value.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void Comma();

  std::string out_;
  std::vector<bool> first_;  // per open scope: no value written yet
};

}  // namespace swiftsim
