#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/status.h"

namespace swiftsim {

bool JsonValue::AsBool() const {
  SS_CHECK(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::AsDouble() const {
  SS_CHECK(kind_ == Kind::kNumber, "JSON value is not a number");
  return num_;
}

std::uint64_t JsonValue::AsUint() const {
  SS_CHECK(kind_ == Kind::kNumber && has_unum_,
           "JSON value is not an unsigned integer");
  return unum_;
}

std::int64_t JsonValue::AsInt() const {
  SS_CHECK(kind_ == Kind::kNumber && has_inum_,
           "JSON value is not an integer");
  return inum_;
}

const std::string& JsonValue::AsString() const {
  SS_CHECK(kind_ == Kind::kString, "JSON value is not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  SS_CHECK(kind_ == Kind::kArray, "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::Members()
    const {
  SS_CHECK(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : Members()) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// Recursive-descent parser over a bounded input. Depth is checked on
/// every container entry, so hostile nesting fails before recursion can
/// exhaust the stack.
class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue Parse() {
    JsonValue v = ParseValue(0);
    SkipWs();
    Check(pos_ == text_.size(), "trailing bytes after JSON value");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) const {
    throw SimError("JSON parse error at byte " + std::to_string(pos_) +
                   ": " + msg);
  }
  void Check(bool ok, const char* msg) const {
    if (!ok) Fail(msg);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Next() {
    Check(!AtEnd(), "unexpected end of input");
    return text_[pos_++];
  }
  void SkipWs() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  void Expect(char c, const char* what) {
    SkipWs();
    if (AtEnd() || Peek() != c) Fail(std::string("expected ") + what);
    ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  void ExpectLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (AtEnd() || Peek() != *p) Fail(std::string("bad literal, expected '") + lit + "'");
      ++pos_;
    }
  }

  JsonValue ParseValue(unsigned depth) {
    Check(depth <= limits_.max_depth, "nesting depth limit exceeded");
    SkipWs();
    Check(!AtEnd(), "unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return ParseString();
      case 't': {
        ExpectLiteral("true");
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        ExpectLiteral("false");
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        ExpectLiteral("null");
        return JsonValue();
      }
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject(unsigned depth) {
    Expect('{', "'{'");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return v;
    for (;;) {
      SkipWs();
      Check(!AtEnd() && Peek() == '"', "expected member name string");
      JsonValue key = ParseString();
      Expect(':', "':'");
      v.members_.emplace_back(std::move(key.str_), ParseValue(depth + 1));
      if (Consume(',')) continue;
      Expect('}', "',' or '}'");
      return v;
    }
  }

  JsonValue ParseArray(unsigned depth) {
    Expect('[', "'['");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return v;
    for (;;) {
      v.array_.push_back(ParseValue(depth + 1));
      if (Consume(',')) continue;
      Expect(']', "',' or ']'");
      return v;
    }
  }

  void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned ParseHex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = Next();
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else Fail("bad \\u escape digit");
    }
    return cp;
  }

  JsonValue ParseString() {
    Expect('"', "'\"'");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    for (;;) {
      const char c = Next();
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20) Fail("raw control character in string");
      if (c != '\\') {
        v.str_.push_back(c);
        continue;
      }
      const char e = Next();
      switch (e) {
        case '"': v.str_.push_back('"'); break;
        case '\\': v.str_.push_back('\\'); break;
        case '/': v.str_.push_back('/'); break;
        case 'b': v.str_.push_back('\b'); break;
        case 'f': v.str_.push_back('\f'); break;
        case 'n': v.str_.push_back('\n'); break;
        case 'r': v.str_.push_back('\r'); break;
        case 't': v.str_.push_back('\t'); break;
        case 'u': {
          unsigned cp = ParseHex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need pair
            Check(!AtEnd() && Peek() == '\\', "unpaired surrogate");
            ++pos_;
            Check(Next() == 'u', "unpaired surrogate");
            const unsigned lo = ParseHex4();
            Check(lo >= 0xDC00 && lo <= 0xDFFF, "bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            Check(!(cp >= 0xDC00 && cp <= 0xDFFF), "unpaired surrogate");
          }
          AppendUtf8(&v.str_, cp);
          break;
        }
        default: Fail("bad escape character");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    bool digits = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
      digits = true;
    }
    Check(digits, "expected a value");
    bool fractional = false;
    if (!AtEnd() && Peek() == '.') {
      fractional = true;
      ++pos_;
      bool frac_digits = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        frac_digits = true;
      }
      Check(frac_digits, "bad fraction");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      fractional = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      bool exp_digits = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        exp_digits = true;
      }
      Check(exp_digits, "bad exponent");
    }
    const std::string lit(text_.substr(start, pos_ - start));
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.num_ = std::strtod(lit.c_str(), nullptr);
    if (!fractional) {
      // Preserve exact 64-bit views for integer literals (seeds, counts).
      errno = 0;
      if (lit[0] != '-') {
        char* end = nullptr;
        const unsigned long long u = std::strtoull(lit.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          v.unum_ = u;
          v.has_unum_ = true;
          if (u <= static_cast<unsigned long long>(
                       std::numeric_limits<std::int64_t>::max())) {
            v.inum_ = static_cast<std::int64_t>(u);
            v.has_inum_ = true;
          }
        }
      } else {
        char* end = nullptr;
        const long long i = std::strtoll(lit.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          v.inum_ = i;
          v.has_inum_ = true;
        }
      }
      Check(v.has_unum_ || v.has_inum_, "integer literal out of range");
    }
    return v;
  }

  std::string_view text_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
};

JsonValue ParseJson(std::string_view text, const JsonLimits& limits) {
  SS_CHECK(text.size() <= limits.max_bytes,
           "JSON input of " + std::to_string(text.size()) +
               " bytes exceeds the " + std::to_string(limits.max_bytes) +
               "-byte limit");
  return JsonParser(text, limits).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  SS_ASSERT(!first_.empty());
  first_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  SS_ASSERT(!first_.empty());
  first_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Comma();
  out_.push_back('"');
  out_ += JsonEscape(key);
  out_ += "\":";
  // The upcoming value must not emit its own comma.
  if (!first_.empty()) first_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  Comma();
  out_.push_back('"');
  out_ += JsonEscape(v);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Uint(std::uint64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Comma();
  if (!std::isfinite(v)) v = 0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  Comma();
  out_ += json;
  return *this;
}

}  // namespace swiftsim
