// Bit-manipulation helpers used by caches, coalescers and address mappers.
#pragma once

#include <bit>
#include <cstdint>

namespace swiftsim {

/// True iff v is a power of two (0 is not).
constexpr bool IsPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned Log2(std::uint64_t v) {
  return static_cast<unsigned>(std::bit_width(v) - 1);
}

/// Rounds v up to the next multiple of `align` (align must be pow2).
constexpr std::uint64_t AlignUp(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Rounds v down to a multiple of `align` (align must be pow2).
constexpr std::uint64_t AlignDown(std::uint64_t v, std::uint64_t align) {
  return v & ~(align - 1);
}

/// Number of set bits.
constexpr unsigned PopCount(std::uint64_t v) {
  return static_cast<unsigned>(std::popcount(v));
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Mixes the bits of a 64-bit value (finalizer of splitmix64). Used for
/// deterministic pseudo-random decisions keyed on addresses/PCs.
constexpr std::uint64_t HashMix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace swiftsim
