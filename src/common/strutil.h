// String helpers shared by the config and trace parsers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swiftsim {

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on arbitrary whitespace runs; empty pieces are dropped.
std::vector<std::string> SplitWs(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses an integer (decimal, or hex with 0x prefix). Throws SimError with
/// `context` in the message on malformed input.
std::int64_t ParseInt(std::string_view s, std::string_view context);
std::uint64_t ParseUint(std::string_view s, std::string_view context);

/// Parses a double. Throws SimError on malformed input.
double ParseDouble(std::string_view s, std::string_view context);

/// Parses a boolean: accepts 0/1/true/false (case-insensitive).
bool ParseBool(std::string_view s, std::string_view context);

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);

}  // namespace swiftsim
