// Bounded single-producer/single-consumer ring buffer used to hand
// simulation traffic between shard threads (e.g. SM→memory requests in the
// bounded-slack parallel simulator, DESIGN.md §7). One thread may push,
// one thread may pop; the two sides never block each other. Capacity is
// fixed at construction: Push fails (returns false) when the ring is full,
// which callers use as backpressure.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace swiftsim {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : buf_(capacity + 1) {}

  std::size_t capacity() const { return buf_.size() - 1; }

  // --- Producer side -------------------------------------------------------
  bool Push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = Advance(tail);
    if (next == head_.load(std::memory_order_acquire)) return false;  // full
    buf_[tail] = v;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  // --- Consumer side -------------------------------------------------------
  /// Oldest element, or nullptr when empty. Valid until the next Pop.
  const T* Front() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return nullptr;
    return &buf_[head];
  }

  void Pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    head_.store(Advance(head), std::memory_order_release);
  }

  // --- Either side (conservative snapshot) ---------------------------------
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : tail + buf_.size() - head;
  }
  bool empty() const { return size() == 0; }

 private:
  std::size_t Advance(std::size_t i) const {
    return i + 1 == buf_.size() ? 0 : i + 1;
  }

  std::vector<T> buf_;
  std::atomic<std::size_t> head_{0};  // consumer-owned
  std::atomic<std::size_t> tail_{0};  // producer-owned
};

}  // namespace swiftsim
