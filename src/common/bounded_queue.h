// Bounded multi-producer/multi-consumer queue — the admission-control
// primitive of the simulation service (DESIGN.md §15). Producers never
// block: a full queue rejects immediately (TryPush) so the caller can
// return a typed "queue full" response instead of stalling a client.
// Consumers block until work arrives or the queue is closed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace swiftsim {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity == 0` is treated as 1 (a zero-slot queue rejects
  /// everything, which is never what a service wants).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: false when the queue is full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// drained (false). Closed-but-nonempty queues keep delivering, so a
  /// graceful shutdown finishes every admitted job.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admission and wakes every blocked consumer. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace swiftsim
