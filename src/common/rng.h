// Deterministic, fast PRNG (xoshiro256**) used by workload generators and
// the Random cache-replacement policy. std::mt19937 is avoided because its
// state is large and its distributions are not reproducible across standard
// library implementations; everything here is bit-exact everywhere.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace swiftsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  /// Re-seeds via splitmix64 so that nearby seeds give unrelated streams.
  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    SS_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free-enough reduction; bias is
    // negligible for the bounds used in workload generation (< 2^40).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    SS_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace swiftsim
