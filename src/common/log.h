// Minimal leveled logger. Thread-safe; default level Warning so simulation
// hot loops stay silent unless the user opts in.
#pragma once

#include <sstream>
#include <string>

namespace swiftsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one line to stderr, prefixed with the level tag. Thread-safe.
void LogLine(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace swiftsim

#define SS_LOG(level)                                       \
  if (static_cast<int>(::swiftsim::LogLevel::level) <       \
      static_cast<int>(::swiftsim::GetLogLevel())) {        \
  } else                                                    \
    ::swiftsim::detail::LogMessage(::swiftsim::LogLevel::level)
