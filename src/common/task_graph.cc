#include "common/task_graph.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"

namespace swiftsim {

int TaskGraph::AddTask(std::string name, std::function<void()> fn) {
  SS_CHECK(fn != nullptr, "TaskGraph task needs a body");
  auto t = std::make_unique<Task>();
  t->name = std::move(name);
  t->fn = std::move(fn);
  tasks_.push_back(std::move(t));
  return static_cast<int>(tasks_.size()) - 1;
}

void TaskGraph::AddEdge(int from, int to) {
  SS_CHECK(from >= 0 && to >= 0 &&
               from < static_cast<int>(tasks_.size()) &&
               to < static_cast<int>(tasks_.size()) && from != to,
           "TaskGraph edge endpoints must be distinct existing tasks");
  tasks_[from]->unlocks.push_back(to);
  ++tasks_[to]->wait_init;
}

void TaskGraph::PushLocal(unsigned me, int id) {
  WorkerDeque& d = *deques_[me];
  std::lock_guard<std::mutex> lk(d.mu);
  d.q.push_front(id);
}

void TaskGraph::CaptureError() noexcept {
  std::lock_guard<std::mutex> lk(err_mu_);
  if (!error_) error_ = std::current_exception();
  errored_.store(true, std::memory_order_release);
}

void TaskGraph::Execute(int id, unsigned me) {
  Task& t = *tasks_[id];
  // After a failure the round is still drained structurally (wait counts,
  // remaining) so every worker observes a consistent final state, but no
  // further task bodies run.
  if (!errored_.load(std::memory_order_acquire)) {
    try {
      t.fn();
    } catch (...) {
      CaptureError();
    }
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  for (const int next : t.unlocks) {
    // The last completed dependency publishes the task; acq_rel makes the
    // publisher see every earlier dependency's writes through the counter's
    // release sequence.
    if (tasks_[next]->wait.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      PushLocal(me, next);
    }
  }
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Round complete. Exactly one worker gets here per round, after every
    // task's effects — the serialization point between rounds.
    if (finish_.load(std::memory_order_acquire) ||
        errored_.load(std::memory_order_acquire)) {
      done_.store(true, std::memory_order_release);
    } else {
      Rearm(static_cast<unsigned>(deques_.size()));
    }
  }
}

void TaskGraph::Rearm(unsigned nworkers) {
  ++rounds_;
  for (const auto& t : tasks_) {
    t->wait.store(t->wait_init, std::memory_order_relaxed);
  }
  remaining_.store(static_cast<int>(tasks_.size()),
                   std::memory_order_release);
  // Roots keep a stable home worker across rounds (cluster → worker
  // affinity: the same SM state stays in the same cache). The deque
  // mutexes publish the counter resets above to whoever pops.
  for (std::size_t r = 0; r < roots_.size(); ++r) {
    const unsigned home = static_cast<unsigned>(r % nworkers);
    std::lock_guard<std::mutex> lk(deques_[home]->mu);
    deques_[home]->q.push_back(roots_[r]);
  }
}

bool TaskGraph::RunOne(unsigned me, unsigned nworkers) {
  {
    WorkerDeque& own = *deques_[me];
    int id = -1;
    {
      std::lock_guard<std::mutex> lk(own.mu);
      if (!own.q.empty()) {
        id = own.q.front();
        own.q.pop_front();
      }
    }
    if (id >= 0) {
      Execute(id, me);
      return true;
    }
  }
  for (unsigned k = 1; k < nworkers; ++k) {
    WorkerDeque& victim = *deques_[(me + k) % nworkers];
    int id = -1;
    {
      std::lock_guard<std::mutex> lk(victim.mu);
      if (victim.q.empty()) continue;
      id = victim.q.back();
      victim.q.pop_back();
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    Execute(id, me);
    return true;
  }
  return false;
}

void TaskGraph::WorkerLoop(unsigned me, unsigned nworkers) {
  unsigned idle = 0;
  while (!done_.load(std::memory_order_acquire)) {
    if (RunOne(me, nworkers)) {
      idle = 0;
      continue;
    }
    // Out of work: the round's remaining tasks are running elsewhere, or
    // the re-arm hasn't pushed the next round yet. Yield first (cheap, and
    // on an oversubscribed host it hands the core to whoever holds the
    // work), then back off to short sleeps so parked workers don't burn
    // the cores other simulation lanes are using.
    ++idle;
    if (idle <= 32) {
      std::this_thread::yield();
    } else {
      const unsigned exp = std::min(idle - 32u, 96u) / 32u;
      std::this_thread::sleep_for(
          std::chrono::microseconds(25u << exp));  // 25–100 µs
    }
  }
}

void TaskGraph::Run(ThreadPool& pool, unsigned workers) {
  SS_CHECK(!tasks_.empty(), "TaskGraph has no tasks");
  const unsigned nworkers =
      std::max(1u, std::min(workers, kMaxWorkers));
  deques_.clear();
  for (unsigned w = 0; w < nworkers; ++w) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  roots_.clear();
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i]->wait_init == 0) roots_.push_back(static_cast<int>(i));
  }
  SS_CHECK(!roots_.empty(), "TaskGraph is fully cyclic: no root tasks");
  rounds_ = 0;
  executed_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  finish_.store(false, std::memory_order_relaxed);
  done_.store(false, std::memory_order_relaxed);
  errored_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  Rearm(nworkers);

  // Joiners are fire-and-forget: they help while rounds remain and leave
  // when the graph drains. None of them is required for progress — worker
  // 0 (the caller) can steal every task — so an under-provisioned or busy
  // pool degrades concurrency, never liveness.
  std::atomic<unsigned> joiners{0};
  for (unsigned w = 1; w < nworkers; ++w) {
    joiners.fetch_add(1, std::memory_order_relaxed);
    pool.Submit([this, w, nworkers, &joiners] {
      WorkerLoop(w, nworkers);
      joiners.fetch_sub(1, std::memory_order_release);
    });
  }
  WorkerLoop(0, nworkers);
  // The graph (and the joiners counter) lives on the caller's stack: wait
  // for every joiner to leave before returning. They exit on their own —
  // done_ is set — so this wait is bounded by pool dispatch latency.
  unsigned idle = 0;
  while (joiners.load(std::memory_order_acquire) != 0) {
    if (++idle <= 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  if (error_) std::rethrow_exception(error_);
}

}  // namespace swiftsim
