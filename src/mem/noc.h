// On-chip interconnect between the SMs and the L2/memory partitions,
// modeled as two crossbar channels (request and response direction). Each
// channel has bounded per-input injection queues, per-output serialization
// (a packet occupies its output port for ceil(bytes / bytes_per_cycle)
// cycles), a fixed traversal latency, and bounded ejection queues with
// backpressure. Arbitration across inputs is rotating round-robin.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitutil.h"
#include "common/ring_buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "mem/request.h"

namespace swiftsim {

struct NocStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  std::uint64_t inject_stalls = 0;   // rejected injections (queue full)
  std::uint64_t output_stalls = 0;   // head blocked on busy port / full queue
};

/// One direction of the crossbar, carrying packets of type T.
template <typename T>
class XbarChannel {
 public:
  /// `bytes_of` gives the wire size of a packet for serialization.
  XbarChannel(unsigned num_inputs, unsigned num_outputs,
              const NocConfig& cfg, std::function<unsigned(const T&)> bytes_of)
      : cfg_(cfg), bytes_of_(std::move(bytes_of)), inputs_(num_inputs),
        outputs_(num_outputs), eject_(num_outputs), rr_start_(0) {
    SS_CHECK(num_inputs > 0 && num_outputs > 0,
             "XbarChannel needs ports on both sides");
    // Queue depths are config bounds; reserving them up front keeps the
    // per-cycle path allocation-free.
    for (Input& in : inputs_) in.q.Reserve(cfg_.input_queue_depth);
    for (Output& out : outputs_) out.in_flight.Reserve(cfg_.output_queue_depth);
    for (auto& e : eject_) e.Reserve(cfg_.output_queue_depth);
  }

  /// Queues a packet at input port `in` destined for output `out`.
  /// Returns false (no state change) when the injection queue is full.
  bool Inject(unsigned in, unsigned out, const T& pkt) {
    SS_DCHECK(in < inputs_.size() && out < outputs_.size());
    if (inputs_[in].q.size() >= cfg_.input_queue_depth) {
      ++stats_.inject_stalls;
      return false;
    }
    inputs_[in].q.push_back(Flit{pkt, out});
    ++queued_;
    ++stats_.injected;
    return true;
  }

  /// Advances arbitration, serialization and delivery by one cycle.
  void Tick(Cycle now) {
    // Deliver in-flight packets whose traversal completed. Skipped
    // entirely when nothing is on the wire (occupancy counter) — the
    // common idle-channel cycle does no per-output work.
    if (in_flight_total_ > 0) {
      for (unsigned o = 0; o < outputs_.size(); ++o) {
        Output& out = outputs_[o];
        while (!out.in_flight.empty() &&
               out.in_flight.front().ready <= now &&
               eject_[o].size() < cfg_.output_queue_depth) {
          eject_[o].push_back(out.in_flight.front().pkt);
          out.in_flight.pop_front();
          --in_flight_total_;
          ++stats_.delivered;
        }
      }
    }
    // Arbitrate: rotating priority over inputs; each output accepts one
    // packet per cycle and serializes it on the port. Skipped when every
    // injection queue is empty; no grants would be made and no stats
    // would change, and the rotor below advances either way.
    const unsigned n = static_cast<unsigned>(inputs_.size());
    if (queued_ > 0) {
      unsigned idx = rr_start_;
      for (unsigned k = 0; k < n;
           ++k, idx = idx + 1 == n ? 0 : idx + 1) {
        Input& in = inputs_[idx];
        if (in.q.empty()) continue;
        Flit& head = in.q.front();
        Output& out = outputs_[head.out];
        if (out.busy_until > now || out.granted_this_cycle) {
          ++stats_.output_stalls;
          continue;
        }
        // Do not overrun the ejection side: bound total queued+in-flight.
        if (out.in_flight.size() + eject_[head.out].size() >=
            cfg_.output_queue_depth) {
          ++stats_.output_stalls;
          continue;
        }
        const unsigned bytes = bytes_of_(head.pkt);
        const Cycle ser = CeilDiv(bytes, cfg_.bytes_per_cycle);
        out.busy_until = now + ser;
        out.granted_this_cycle = true;
        out.in_flight.push_back(
            InFlight{head.pkt, now + ser + cfg_.latency});
        ++in_flight_total_;
        stats_.bytes += bytes;
        in.q.pop_front();
        --queued_;
      }
      for (Output& out : outputs_) out.granted_this_cycle = false;
    }
    rr_start_ = (rr_start_ + 1) % n;
  }

  /// Delivered packets at output `out`; consumer pops from the front.
  RingBuffer<T>& ejected(unsigned out) { return eject_[out]; }

  /// NextWakeCycle contract: the earliest cycle > `now` at which a Tick
  /// can change observable state. Queued flits arbitrate and ejected
  /// packets await their consumer every cycle (now + 1); otherwise the
  /// only future event is the head in-flight packet per output (the
  /// in-flight ring is ready-ordered per output, so heads suffice).
  /// Returns kNever (~Cycle{0}) when the channel is fully drained.
  Cycle NextEventAfter(Cycle now) const {
    if (queued_ > 0) return now + 1;
    for (const auto& e : eject_) {
      if (!e.empty()) return now + 1;
    }
    Cycle ev = ~Cycle{0};
    if (in_flight_total_ > 0) {
      for (const Output& out : outputs_) {
        if (!out.in_flight.empty()) {
          ev = std::min(ev, std::max(out.in_flight.front().ready, now + 1));
        }
      }
    }
    return ev;
  }

  /// Replays the rotor advancement of `cycles` elided Tick calls. Only
  /// valid while NextEventAfter proves those Ticks would have been pure
  /// rotor rotations (no queued flits, no deliverable in-flight packets),
  /// which keeps skip-mode arbitration bit-identical to per-cycle ticking.
  void FastForward(Cycle cycles) {
    const unsigned n = static_cast<unsigned>(inputs_.size());
    rr_start_ = static_cast<unsigned>((rr_start_ + cycles % n) % n);
  }

  bool quiescent() const {
    for (const Input& in : inputs_) {
      if (!in.q.empty()) return false;
    }
    for (const Output& out : outputs_) {
      if (!out.in_flight.empty()) return false;
    }
    for (const auto& e : eject_) {
      if (!e.empty()) return false;
    }
    return true;
  }

  const NocStats& stats() const { return stats_; }

  /// Total packets resident in the channel (input queues + wires +
  /// ejection queues); occupancy snapshot for diagnostic dumps.
  std::size_t occupancy() const {
    std::size_t n = queued_ + in_flight_total_;
    for (const auto& e : eject_) n += e.size();
    return n;
  }

 private:
  struct Flit {
    T pkt{};
    unsigned out = 0;
  };
  struct InFlight {
    T pkt{};
    Cycle ready = 0;
  };
  struct Input {
    RingBuffer<Flit> q;
  };
  struct Output {
    RingBuffer<InFlight> in_flight;
    Cycle busy_until = 0;
    bool granted_this_cycle = false;
  };

  NocConfig cfg_;
  std::function<unsigned(const T&)> bytes_of_;
  std::vector<Input> inputs_;
  std::vector<Output> outputs_;
  std::vector<RingBuffer<T>> eject_;
  unsigned rr_start_;
  std::size_t queued_ = 0;           // total flits across input queues
  std::size_t in_flight_total_ = 0;  // total packets on output wires
  NocStats stats_;
};

/// The full interconnect: SMs -> partitions (requests) and partitions ->
/// SMs (responses).
class Interconnect {
 public:
  Interconnect(unsigned num_sms, unsigned num_partitions,
               const NocConfig& cfg, unsigned sector_bytes);

  bool InjectRequest(SmId sm, unsigned partition, const MemRequest& req) {
    return req_net_.Inject(sm, partition, req);
  }
  bool InjectResponse(unsigned partition, const MemResponse& resp) {
    return resp_net_.Inject(partition, resp.sm, resp);
  }

  void Tick(Cycle now) {
    req_net_.Tick(now);
    resp_net_.Tick(now);
  }

  RingBuffer<MemRequest>& requests_at(unsigned partition) {
    return req_net_.ejected(partition);
  }
  RingBuffer<MemResponse>& responses_at(SmId sm) {
    return resp_net_.ejected(sm);
  }

  bool quiescent() const {
    return req_net_.quiescent() && resp_net_.quiescent();
  }

  /// Earliest cycle > `now` at which either direction has work.
  Cycle NextEventAfter(Cycle now) const {
    return std::min(req_net_.NextEventAfter(now),
                    resp_net_.NextEventAfter(now));
  }

  /// Replays the arbitration rotors of `cycles` elided Tick calls.
  void FastForward(Cycle cycles) {
    req_net_.FastForward(cycles);
    resp_net_.FastForward(cycles);
  }

  const NocStats& request_stats() const { return req_net_.stats(); }
  const NocStats& response_stats() const { return resp_net_.stats(); }

  // Occupancy snapshot for diagnostic dumps (DESIGN.md §11).
  std::size_t request_occupancy() const { return req_net_.occupancy(); }
  std::size_t response_occupancy() const { return resp_net_.occupancy(); }

 private:
  XbarChannel<MemRequest> req_net_;
  XbarChannel<MemResponse> resp_net_;
};

}  // namespace swiftsim
