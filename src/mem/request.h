// Memory request/response packets exchanged between the LD/ST units, the
// two cache levels, the interconnect and DRAM. All global-memory traffic is
// carried at sector granularity within 128B lines (Accel-Sim's protocol).
#pragma once

#include <cstdint>

#include "common/bitutil.h"
#include "common/types.h"

namespace swiftsim {

enum class MemAccessType : std::uint8_t { kLoad, kStore };

/// One line-granular request with a sector mask. `id` is unique per load
/// request within a simulation; stores are fire-and-forget (id == 0 means
/// "no response expected").
struct MemRequest {
  Addr line_addr = 0;            // aligned to the cache line size
  std::uint32_t sector_mask = 0; // bit i == sector i of the line requested
  MemAccessType type = MemAccessType::kLoad;
  SmId sm = 0;                   // originating SM (NoC return routing)
  std::uint64_t id = 0;          // load-response matching token

  unsigned num_sectors() const { return PopCount(sector_mask); }
  unsigned bytes(unsigned sector_bytes) const {
    return num_sectors() * sector_bytes;
  }
  bool is_store() const { return type == MemAccessType::kStore; }
};

/// Response to a load request (stores produce none).
struct MemResponse {
  std::uint64_t id = 0;
  Addr line_addr = 0;
  std::uint32_t sector_mask = 0;
  SmId sm = 0;
};

}  // namespace swiftsim
