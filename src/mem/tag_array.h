// Sectored set-associative tag array with pluggable replacement policy and
// line reservation (Accel-Sim-style: a miss reserves a way until its fill
// arrives; if every way of a set is reserved the access fails with a
// "reservation failure" — the pathology the paper observes in Accel-Sim's
// RTX 3090 results).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "config/gpu_config.h"

namespace swiftsim {

enum class TagOutcome {
  kHit,             // line present, all requested sectors valid
  kSectorMiss,      // line present but some requested sectors not yet valid
  kMiss,            // line absent; a way was reserved for it
  kReservationFail, // line absent and no way can be victimized right now
};

/// Information about a line evicted by ReserveOnMiss (for dirty writeback).
struct Eviction {
  bool valid = false;       // an allocated line was displaced
  bool dirty = false;
  Addr line_addr = 0;
  std::uint32_t dirty_sectors = 0;
};

class TagArray {
 public:
  TagArray(const CacheParams& params, std::uint64_t rng_seed);

  /// Probes for `line_addr`. On kMiss, reserves a victim way (recording the
  /// eviction in *ev) and marks the requested sectors as pending-fill. On
  /// kSectorMiss, marks the missing sectors pending (line stays allocated).
  /// On kReservationFail nothing changes. `now` drives LRU/FIFO ordering.
  TagOutcome Probe(Addr line_addr, std::uint32_t sector_mask, Cycle now,
                   Eviction* ev);

  /// Read-only lookup: true iff all requested sectors are valid now.
  bool IsHit(Addr line_addr, std::uint32_t sector_mask) const;

  /// Installs fill data for a previously reserved/pending line. Unknown
  /// lines are ignored (the line may have been victimized meanwhile —
  /// possible for sector fills racing with evictions).
  void Fill(Addr line_addr, std::uint32_t sector_mask, Cycle now);

  /// Marks sectors dirty (write-back caches); the line must be present.
  /// Returns false if the line is not resident (caller decides policy).
  bool MarkDirty(Addr line_addr, std::uint32_t sector_mask, Cycle now);

  /// Installs a complete, valid, dirty line for write-validate stores
  /// (no fetch). Returns eviction info like Probe.
  TagOutcome WriteValidate(Addr line_addr, std::uint32_t sector_mask,
                           Cycle now, Eviction* ev);

  /// Streaming-cache fill: allocates (or extends) the line at fill time —
  /// misses never reserved a way, so this always succeeds (reserved ways
  /// cannot exist in a streaming cache). Used by "sectored, streaming" L1s.
  void FillAllocate(Addr line_addr, std::uint32_t sector_mask, Cycle now,
                    Eviction* ev);

  unsigned num_sets() const { return sets_; }

 private:
  struct Line {
    Addr tag = 0;                    // full line address
    bool allocated = false;          // way holds/reserves a line
    std::uint32_t valid_sectors = 0; // filled sectors
    std::uint32_t pending_sectors = 0;  // requested from next level
    std::uint32_t dirty_sectors = 0;
    Cycle last_use = 0;
    Cycle alloc_time = 0;

    bool reserved() const { return pending_sectors != 0; }
  };

  Line* FindLine(Addr line_addr);
  const Line* FindLine(Addr line_addr) const;
  /// Chooses a victim way in `set`; returns nullptr if all ways reserved.
  Line* PickVictim(unsigned set);

  unsigned SetOf(Addr line_addr) const;

  CacheParams params_;
  unsigned sets_;
  std::vector<Line> lines_;  // sets_ x assoc, row-major
  Rng rng_;
};

}  // namespace swiftsim
