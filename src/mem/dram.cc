#include "mem/dram.h"

#include <algorithm>

#include "common/bitutil.h"

namespace swiftsim {

DramChannel::DramChannel(const DramConfig& cfg, unsigned sector_bytes,
                         const SiliconEffects& effects)
    : cfg_(cfg), sector_bytes_(sector_bytes), effects_(effects),
      next_refresh_(effects.enabled ? effects.dram_refresh_interval
                                    : ~Cycle{0}) {
  queue_.Reserve(cfg.queue_depth);
  in_service_.Reserve(cfg.queue_depth);
  ready_.Reserve(cfg.queue_depth);
}

bool DramChannel::Enqueue(const MemRequest& req) {
  if (queue_.size() >= cfg_.queue_depth) {
    ++stats_.enqueue_stalls;
    return false;
  }
  queue_.push_back(req);
  return true;
}

Cycle DramChannel::NextEventAfter(Cycle now) const {
  if (!ready_.empty()) return now + 1;
  Cycle ev = ~Cycle{0};
  if (!in_service_.empty()) {
    ev = std::min(ev, std::max(in_service_.front().ready, now + 1));
  }
  if (!queue_.empty()) {
    // The controller services one request per cycle once the channel is
    // free; busy_until_ is the next service opportunity.
    ev = std::min(ev, std::max(busy_until_, now + 1));
  }
  if (effects_.enabled) {
    // Refresh edges mutate channel state even when no traffic is queued;
    // the skip driver must land on each edge to stay bit-identical.
    ev = std::min(ev, std::max(next_refresh_, now + 1));
  }
  return ev;
}

void DramChannel::Tick(Cycle now) {
  // Periodic refresh blocks the channel (silicon oracle only).
  if (now >= next_refresh_) {
    busy_until_ = std::max(busy_until_, now) + effects_.dram_refresh_penalty;
    next_refresh_ += effects_.dram_refresh_interval;
    ++stats_.refreshes;
  }

  // Retire completed services.
  while (!in_service_.empty() && in_service_.front().ready <= now) {
    if (in_service_.front().is_load) {
      ready_.push_back(in_service_.front().resp);
    }
    in_service_.pop_front();
  }

  if (busy_until_ > now || queue_.empty()) return;

  // FR-FCFS within a small window: prefer the oldest row-buffer hit.
  std::size_t pick = 0;
  bool hit = false;
  const std::size_t window = std::min<std::size_t>(kFrfcfsWindow,
                                                   queue_.size());
  for (std::size_t i = 0; i < window; ++i) {
    if (queue_[i].line_addr / cfg_.row_bytes == open_row_) {
      pick = i;
      hit = true;
      break;
    }
  }
  const MemRequest req = queue_[pick];
  queue_.erase(pick);

  const Addr row = req.line_addr / cfg_.row_bytes;
  if (hit) {
    ++stats_.row_hits;
  } else {
    ++stats_.row_misses;
  }
  open_row_ = row;

  const unsigned bytes = req.bytes(sector_bytes_);
  const Cycle transfer = CeilDiv(bytes, cfg_.bytes_per_cycle);
  const Cycle access = hit ? cfg_.row_hit_latency : cfg_.latency;
  busy_until_ = now + transfer;
  stats_.bytes += bytes;

  const auto push_sorted = [this](const InService& svc) {
    std::size_t pos = in_service_.size();
    while (pos > 0 && in_service_[pos - 1].ready > svc.ready) --pos;
    in_service_.insert(pos, svc);
  };
  if (req.is_store()) {
    ++stats_.writes;
    // Stores complete silently once transferred.
    push_sorted(InService{now + transfer, MemResponse{}, false});
  } else {
    ++stats_.reads;
    push_sorted(InService{
        now + access + transfer,
        MemResponse{req.id, req.line_addr, req.sector_mask, req.sm}, true});
  }
}

}  // namespace swiftsim
