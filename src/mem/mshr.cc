#include "mem/mshr.h"

#include "common/status.h"

namespace swiftsim {

Mshr::Mshr(unsigned entries, unsigned max_merge)
    : max_entries_(entries), max_merge_(max_merge), pool_(entries) {
  for (unsigned i = 0; i < entries; ++i) {
    pool_[i].next_free = i + 1 < entries ? i + 1 : kNil;
  }
  free_head_ = entries > 0 ? 0 : kNil;
  index_.Reserve(entries);
}

bool Mshr::CanAllocate(Addr line_addr) const {
  const std::uint32_t* slot = index_.Find(line_addr);
  if (slot == nullptr) return size_ < max_entries_;
  return pool_[*slot].merged < max_merge_;
}

void Mshr::Allocate(Addr line_addr, const MemRequest& requester) {
  SS_DCHECK(CanAllocate(line_addr));
  std::uint32_t slot;
  if (const std::uint32_t* found = index_.Find(line_addr)) {
    slot = *found;
  } else {
    SS_DCHECK(free_head_ != kNil);
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
    pool_[slot].requested_sectors = 0;
    pool_[slot].arrived_sectors = 0;
    pool_[slot].merged = 0;
    index_[line_addr] = slot;
    ++size_;
  }
  Entry& e = pool_[slot];
  ++e.merged;
  e.requested_sectors |= requester.sector_mask;
  if (requester.id != 0) e.waiters.push_back(requester);
}

bool Mshr::HasEntry(Addr line_addr) const {
  return index_.contains(line_addr);
}

std::uint32_t Mshr::RequestedSectors(Addr line_addr) const {
  const std::uint32_t* slot = index_.Find(line_addr);
  return slot == nullptr ? 0u : pool_[*slot].requested_sectors;
}

void Mshr::AddRequestedSectors(Addr line_addr, std::uint32_t sector_mask) {
  std::uint32_t* slot = index_.Find(line_addr);
  SS_DCHECK(slot != nullptr);
  pool_[*slot].requested_sectors |= sector_mask;
}

void Mshr::Fill(Addr line_addr, std::uint32_t sector_mask,
                MshrWaiters* satisfied) {
  satisfied->clear();
  std::uint32_t* found = index_.Find(line_addr);
  if (found == nullptr) return;
  const std::uint32_t slot = *found;
  Entry& e = pool_[slot];
  e.arrived_sectors |= sector_mask;
  // Stable in-place partition: waiters still missing sectors keep their
  // relative order at the front, satisfied ones move to `satisfied` in
  // order. (std::stable_partition allocates a temporary buffer, which
  // would put a heap allocation on every fill.)
  auto& w = e.waiters;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if ((w[i].sector_mask & ~e.arrived_sectors) != 0) {
      if (keep != i) w[keep] = std::move(w[i]);
      ++keep;
    } else {
      satisfied->push_back(std::move(w[i]));
    }
  }
  w.resize(keep);
  if (w.empty() && (e.requested_sectors & ~e.arrived_sectors) == 0) {
    index_.erase(line_addr);
    e.waiters.clear();
    e.next_free = free_head_;
    free_head_ = slot;
    --size_;
  }
}

}  // namespace swiftsim
