#include "mem/mshr.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

bool Mshr::CanAllocate(Addr line_addr) const {
  auto it = entries_.find(line_addr);
  if (it == entries_.end()) return entries_.size() < max_entries_;
  return it->second.merged < max_merge_;
}

void Mshr::Allocate(Addr line_addr, const MemRequest& requester) {
  SS_DCHECK(CanAllocate(line_addr));
  Entry& e = entries_[line_addr];
  ++e.merged;
  e.requested_sectors |= requester.sector_mask;
  if (requester.id != 0) e.waiters.push_back(requester);
}

bool Mshr::HasEntry(Addr line_addr) const {
  return entries_.count(line_addr) != 0;
}

std::uint32_t Mshr::RequestedSectors(Addr line_addr) const {
  auto it = entries_.find(line_addr);
  return it == entries_.end() ? 0u : it->second.requested_sectors;
}

void Mshr::AddRequestedSectors(Addr line_addr, std::uint32_t sector_mask) {
  auto it = entries_.find(line_addr);
  SS_DCHECK(it != entries_.end());
  it->second.requested_sectors |= sector_mask;
}

std::vector<MemRequest> Mshr::Fill(Addr line_addr,
                                   std::uint32_t sector_mask) {
  auto it = entries_.find(line_addr);
  if (it == entries_.end()) return {};
  Entry& e = it->second;
  e.arrived_sectors |= sector_mask;
  std::vector<MemRequest> satisfied;
  auto& w = e.waiters;
  auto mid = std::stable_partition(w.begin(), w.end(),
                                   [&](const MemRequest& r) {
                                     return (r.sector_mask &
                                             ~e.arrived_sectors) != 0;
                                   });
  satisfied.assign(std::make_move_iterator(mid),
                   std::make_move_iterator(w.end()));
  w.erase(mid, w.end());
  if (w.empty() && (e.requested_sectors & ~e.arrived_sectors) == 0) {
    entries_.erase(it);
  }
  return satisfied;
}

}  // namespace swiftsim
