#include "mem/mshr.h"

#include <algorithm>

#include "common/status.h"

namespace swiftsim {

bool Mshr::CanAllocate(Addr line_addr) const {
  const Entry* e = entries_.Find(line_addr);
  if (e == nullptr) return entries_.size() < max_entries_;
  return e->merged < max_merge_;
}

void Mshr::Allocate(Addr line_addr, const MemRequest& requester) {
  SS_DCHECK(CanAllocate(line_addr));
  Entry& e = entries_[line_addr];
  ++e.merged;
  e.requested_sectors |= requester.sector_mask;
  if (requester.id != 0) e.waiters.push_back(requester);
}

bool Mshr::HasEntry(Addr line_addr) const {
  return entries_.contains(line_addr);
}

std::uint32_t Mshr::RequestedSectors(Addr line_addr) const {
  const Entry* e = entries_.Find(line_addr);
  return e == nullptr ? 0u : e->requested_sectors;
}

void Mshr::AddRequestedSectors(Addr line_addr, std::uint32_t sector_mask) {
  Entry* e = entries_.Find(line_addr);
  SS_DCHECK(e != nullptr);
  e->requested_sectors |= sector_mask;
}

void Mshr::Fill(Addr line_addr, std::uint32_t sector_mask,
                MshrWaiters* satisfied) {
  satisfied->clear();
  Entry* found = entries_.Find(line_addr);
  if (found == nullptr) return;
  Entry& e = *found;
  e.arrived_sectors |= sector_mask;
  // Stable in-place partition: waiters still missing sectors keep their
  // relative order at the front, satisfied ones move to `satisfied` in
  // order. (std::stable_partition allocates a temporary buffer, which
  // would put a heap allocation on every fill.)
  auto& w = e.waiters;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if ((w[i].sector_mask & ~e.arrived_sectors) != 0) {
      if (keep != i) w[keep] = std::move(w[i]);
      ++keep;
    } else {
      satisfied->push_back(std::move(w[i]));
    }
  }
  w.resize(keep);
  if (w.empty() && (e.requested_sectors & ~e.arrived_sectors) == 0) {
    entries_.erase(line_addr);
  }
}

}  // namespace swiftsim
