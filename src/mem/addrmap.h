// Address-to-memory-partition mapping. A mixed hash decorrelates partition
// choice from power-of-two strides (as Accel-Sim's xor hashes do), so
// strided workloads don't camp on one partition.
#pragma once

#include "common/types.h"

namespace swiftsim {

class AddrMap {
 public:
  AddrMap(unsigned num_partitions, unsigned line_bytes);

  /// Memory partition that owns this cache line.
  unsigned PartitionOf(Addr line_addr) const;

  unsigned num_partitions() const { return num_partitions_; }

 private:
  unsigned num_partitions_;
  unsigned line_shift_;
};

}  // namespace swiftsim
