#include "mem/cache.h"

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {

SectorCache::SectorCache(std::string name, const CacheParams& params,
                         std::uint64_t instance, unsigned out_capacity)
    : name_(std::move(name)), params_(params),
      tags_(params, HashMix(instance * 0x9e37 + 17)),
      mshr_(params.mshr_entries, params.mshr_max_merge),
      out_capacity_(out_capacity),
      next_req_id_((instance + 1) << 40),
      bank_used_(params.banks, 0) {
  // Steady-state bounds: the latency pipe holds at most `banks` pushes per
  // cycle for `latency` cycles (plus fill wakeups); the miss queue is
  // capped at out_capacity for misses, with eviction writebacks on top.
  pending_responses_.Reserve(static_cast<std::size_t>(params.banks) *
                             (params.latency + 2));
  ready_responses_.Reserve(64);
  miss_out_.Reserve(static_cast<std::size_t>(out_capacity) * 2);
}

void SectorCache::BeginCycle(Cycle now) {
  cycle_ = now;
  if (banks_dirty_) {
    std::fill(bank_used_.begin(), bank_used_.end(), 0);
    banks_dirty_ = false;
  }
  while (!pending_responses_.empty() &&
         pending_responses_.front().ready <= now) {
    ready_responses_.push_back(pending_responses_.front().resp);
    pending_responses_.pop_front();
  }
}

bool SectorCache::TakeBank(Addr line_addr) {
  const unsigned bank =
      static_cast<unsigned>((line_addr / params_.line_bytes) &
                            (params_.banks - 1));
  if (bank_used_[bank]) {
    ++stats_.bank_conflicts;
    return false;
  }
  bank_used_[bank] = 1;
  banks_dirty_ = true;
  return true;
}

void SectorCache::PushResponse(const MemResponse& resp, Cycle ready) {
  // The latency pipe is FIFO; constant latency keeps it sorted except for
  // fill-driven responses, which use ready=now+1 and thus must be placed
  // at the position keeping order. Cheap scan from the back suffices.
  std::size_t pos = pending_responses_.size();
  while (pos > 0 && pending_responses_[pos - 1].ready > ready) --pos;
  pending_responses_.insert(pos, TimedResponse{ready, resp});
}

void SectorCache::EmitEviction(const Eviction& ev) {
  if (!ev.valid || !ev.dirty) return;
  MemRequest wb;
  wb.line_addr = ev.line_addr;
  wb.sector_mask = ev.dirty_sectors;
  wb.type = MemAccessType::kStore;
  wb.id = 0;
  miss_out_.push_back(wb);
  ++stats_.writebacks;
}

bool SectorCache::Access(const MemRequest& req, Cycle now, CacheReject* why) {
  SS_DCHECK(req.sector_mask != 0);
  SS_DCHECK(AlignDown(req.line_addr, params_.line_bytes) == req.line_addr);
  CacheReject local = CacheReject::kNone;
  CacheReject& reason = why != nullptr ? *why : local;
  reason = CacheReject::kNone;
  return req.is_store() ? AccessStore(req, now, reason)
                        : AccessLoad(req, now, reason);
}

bool SectorCache::AccessLoad(const MemRequest& req, Cycle now,
                             CacheReject& why) {
  if (tags_.IsHit(req.line_addr, req.sector_mask)) {
    if (!TakeBank(req.line_addr)) {
      why = CacheReject::kBank;
      return false;
    }
    Eviction ev;
    const TagOutcome out = tags_.Probe(req.line_addr, req.sector_mask, now,
                                       &ev);
    SS_DCHECK(out == TagOutcome::kHit);
    (void)out;
    ++stats_.accesses;
    ++stats_.load_accesses;
    ++stats_.hits;
    MemResponse resp{req.id, req.line_addr, req.sector_mask, req.sm};
    PushResponse(resp, now + params_.latency);
    return true;
  }

  // Miss path: check every resource before mutating anything.
  if (!mshr_.CanAllocate(req.line_addr)) {
    ++stats_.mshr_stalls;
    why = CacheReject::kMshrFull;
    return false;
  }
  if (miss_queue_full()) {
    ++stats_.out_stalls;
    why = CacheReject::kOutFull;
    return false;
  }
  if (!TakeBank(req.line_addr)) {
    why = CacheReject::kBank;
    return false;
  }

  bool line_was_present;
  if (params_.streaming) {
    // Streaming cache: the miss does NOT reserve a way — the line is
    // allocated when the fill arrives (FillAllocate). Reservation
    // failures are impossible; the MSHRs alone bound in-flight misses.
    line_was_present = tags_.MarkDirty(req.line_addr, 0, now);
  } else {
    Eviction ev;
    const TagOutcome out = tags_.Probe(req.line_addr, req.sector_mask, now,
                                       &ev);
    if (out == TagOutcome::kReservationFail) {
      ++stats_.reservation_fails;
      why = CacheReject::kResFail;
      return false;
    }
    EmitEviction(ev);
    line_was_present = out == TagOutcome::kSectorMiss;
  }
  ++stats_.accesses;
  ++stats_.load_accesses;

  const bool had_entry = mshr_.HasEntry(req.line_addr);
  const std::uint32_t already = mshr_.RequestedSectors(req.line_addr);
  mshr_.Allocate(req.line_addr, req);
  if (had_entry) ++stats_.mshr_merges;
  if (line_was_present) {
    ++stats_.sector_misses;
  } else {
    ++stats_.misses;
  }
  const std::uint32_t need = req.sector_mask & ~already;
  if (need != 0) {
    if (had_entry) mshr_.AddRequestedSectors(req.line_addr, need);
    MemRequest down;
    down.line_addr = req.line_addr;
    down.sector_mask = need;
    down.type = MemAccessType::kLoad;
    down.sm = req.sm;
    down.id = ++next_req_id_;
    miss_out_.push_back(down);
  }
  return true;
}

bool SectorCache::AccessStore(const MemRequest& req, Cycle now,
                              CacheReject& why) {
  if (params_.write_policy == WritePolicy::kWriteThrough) {
    if (miss_queue_full()) {
      ++stats_.out_stalls;
      why = CacheReject::kOutFull;
      return false;
    }
    if (!TakeBank(req.line_addr)) {
      why = CacheReject::kBank;
      return false;
    }
    ++stats_.accesses;
    // Update resident sectors in place (write-through, write-no-allocate).
    tags_.MarkDirty(req.line_addr, 0u, now);  // touch recency only if resident
    MemRequest down = req;
    down.id = 0;
    miss_out_.push_back(down);
    ++stats_.write_through;
    return true;
  }

  // Write-back with write-validate sectors: no fetch on store miss.
  if (!TakeBank(req.line_addr)) {
    why = CacheReject::kBank;
    return false;
  }
  Eviction ev;
  const TagOutcome out = tags_.WriteValidate(req.line_addr, req.sector_mask,
                                             now, &ev);
  if (out == TagOutcome::kReservationFail) {
    ++stats_.reservation_fails;
    why = CacheReject::kResFail;
    // The bank slot is consumed (the probe happened); the caller retries.
    return false;
  }
  ++stats_.accesses;
  EmitEviction(ev);
  return true;
}

void SectorCache::Fill(const MemResponse& resp, Cycle now) {
  ++stats_.fills;
  if (params_.streaming) {
    Eviction ev;
    tags_.FillAllocate(resp.line_addr, resp.sector_mask, now, &ev);
    EmitEviction(ev);  // write-through streaming L1s never evict dirty
  } else {
    tags_.Fill(resp.line_addr, resp.sector_mask, now);
  }
  mshr_.Fill(resp.line_addr, resp.sector_mask, &fill_scratch_);
  for (const MemRequest& waiter : fill_scratch_) {
    MemResponse r{waiter.id, waiter.line_addr, waiter.sector_mask, waiter.sm};
    PushResponse(r, now + 1);
  }
}

}  // namespace swiftsim
