// Miss-status holding registers: track outstanding line fills and merge
// subsequent misses to the same line, up to a per-entry merge limit.
// Fills may arrive in several sector batches; waiters are woken as soon as
// the sectors they asked for have all arrived.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/request.h"

namespace swiftsim {

class Mshr {
 public:
  Mshr(unsigned entries, unsigned max_merge)
      : max_entries_(entries), max_merge_(max_merge) {}

  /// Can a new miss to `line_addr` be tracked this cycle? (Entry available,
  /// or an existing entry with merge headroom.)
  bool CanAllocate(Addr line_addr) const;

  /// Records a miss. `requester` waits for its sector mask (stores pass
  /// id==0 and are counted against the merge limit but never woken).
  /// Requires CanAllocate(line_addr).
  void Allocate(Addr line_addr, const MemRequest& requester);

  /// True iff a fill for this line is already outstanding.
  bool HasEntry(Addr line_addr) const;

  /// Sectors already requested from the next level for this line (union
  /// over merged requests); 0 if no entry.
  std::uint32_t RequestedSectors(Addr line_addr) const;

  /// Extends the requested set (a sector miss piggybacking an additional
  /// next-level request onto the existing entry).
  void AddRequestedSectors(Addr line_addr, std::uint32_t sector_mask);

  /// Registers arrival of `sector_mask` for the line and returns every
  /// waiter whose full sector set has now arrived. The entry is removed
  /// once all requested sectors arrived and no waiters remain.
  std::vector<MemRequest> Fill(Addr line_addr, std::uint32_t sector_mask);

  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= max_entries_; }

 private:
  struct Entry {
    std::vector<MemRequest> waiters;
    std::uint32_t requested_sectors = 0;
    std::uint32_t arrived_sectors = 0;
    unsigned merged = 0;
  };

  unsigned max_entries_;
  unsigned max_merge_;
  std::unordered_map<Addr, Entry> entries_;
};

}  // namespace swiftsim
