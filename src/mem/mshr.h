// Miss-status holding registers: track outstanding line fills and merge
// subsequent misses to the same line, up to a per-entry merge limit.
// Fills may arrive in several sector batches; waiters are woken as soon as
// the sectors they asked for have all arrived.
//
// MSHRs are passive under the wake-calendar contract (DESIGN.md §9): an
// outstanding entry matures only when its fill arrives from downstream, so
// its wake time is whatever the NoC/DRAM calendars report — the MSHR never
// contributes an event of its own.
//
// Entries live in a fixed pool sized to the entry limit and are looked up
// through a slim line->index map. Keeping the fat waiter lists out of the
// hash slots matters on the hot path: probes stride over 16-byte items
// instead of multi-hundred-byte entries, and the map's backward-shift
// deletion moves indices, never waiter vectors.
#pragma once

#include <cstdint>

#include "common/flat_map.h"
#include "common/inline_vec.h"
#include "common/types.h"
#include "mem/request.h"

namespace swiftsim {

/// Waiters woken by one fill. Inline capacity covers the default
/// mshr_max_merge (8); larger configured merge limits spill once and the
/// scratch buffer then keeps its capacity.
using MshrWaiters = InlineVec<MemRequest, 8>;

class Mshr {
 public:
  Mshr(unsigned entries, unsigned max_merge);

  /// Can a new miss to `line_addr` be tracked this cycle? (Entry available,
  /// or an existing entry with merge headroom.)
  bool CanAllocate(Addr line_addr) const;

  /// Records a miss. `requester` waits for its sector mask (stores pass
  /// id==0 and are counted against the merge limit but never woken).
  /// Requires CanAllocate(line_addr).
  void Allocate(Addr line_addr, const MemRequest& requester);

  /// True iff a fill for this line is already outstanding.
  bool HasEntry(Addr line_addr) const;

  /// Sectors already requested from the next level for this line (union
  /// over merged requests); 0 if no entry.
  std::uint32_t RequestedSectors(Addr line_addr) const;

  /// Extends the requested set (a sector miss piggybacking an additional
  /// next-level request onto the existing entry).
  void AddRequestedSectors(Addr line_addr, std::uint32_t sector_mask);

  /// Registers arrival of `sector_mask` for the line and writes every
  /// waiter whose full sector set has now arrived into `*satisfied`
  /// (cleared first; caller owns the scratch so steady-state fills do not
  /// allocate). The entry is removed once all requested sectors arrived
  /// and no waiters remain.
  void Fill(Addr line_addr, std::uint32_t sector_mask,
            MshrWaiters* satisfied);

  /// Convenience wrapper (tests).
  MshrWaiters Fill(Addr line_addr, std::uint32_t sector_mask) {
    MshrWaiters satisfied;
    Fill(line_addr, sector_mask, &satisfied);
    return satisfied;
  }

  std::size_t size() const { return size_; }
  bool full() const { return size_ >= max_entries_; }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Entry {
    MshrWaiters waiters;
    std::uint32_t requested_sectors = 0;
    std::uint32_t arrived_sectors = 0;
    unsigned merged = 0;
    std::uint32_t next_free = kNil;  // free-list link while unallocated
  };

  unsigned max_entries_;
  unsigned max_merge_;
  std::vector<Entry> pool_;                   // max_entries slots, fixed
  std::uint32_t free_head_ = kNil;            // LIFO free list
  std::size_t size_ = 0;                      // live entries
  FlatMap<Addr, std::uint32_t> index_;        // line addr -> pool slot
};

}  // namespace swiftsim
