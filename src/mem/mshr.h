// Miss-status holding registers: track outstanding line fills and merge
// subsequent misses to the same line, up to a per-entry merge limit.
// Fills may arrive in several sector batches; waiters are woken as soon as
// the sectors they asked for have all arrived.
//
// Entries live in a flat open-addressing map pre-sized to the entry limit
// (no rehash, no per-entry node allocation); waiter lists are inline up to
// the default merge limit.
#pragma once

#include <cstdint>

#include "common/flat_map.h"
#include "common/inline_vec.h"
#include "common/types.h"
#include "mem/request.h"

namespace swiftsim {

/// Waiters woken by one fill. Inline capacity covers the default
/// mshr_max_merge (8); larger configured merge limits spill once and the
/// scratch buffer then keeps its capacity.
using MshrWaiters = InlineVec<MemRequest, 8>;

class Mshr {
 public:
  Mshr(unsigned entries, unsigned max_merge)
      : max_entries_(entries), max_merge_(max_merge) {
    entries_.Reserve(entries);
  }

  /// Can a new miss to `line_addr` be tracked this cycle? (Entry available,
  /// or an existing entry with merge headroom.)
  bool CanAllocate(Addr line_addr) const;

  /// Records a miss. `requester` waits for its sector mask (stores pass
  /// id==0 and are counted against the merge limit but never woken).
  /// Requires CanAllocate(line_addr).
  void Allocate(Addr line_addr, const MemRequest& requester);

  /// True iff a fill for this line is already outstanding.
  bool HasEntry(Addr line_addr) const;

  /// Sectors already requested from the next level for this line (union
  /// over merged requests); 0 if no entry.
  std::uint32_t RequestedSectors(Addr line_addr) const;

  /// Extends the requested set (a sector miss piggybacking an additional
  /// next-level request onto the existing entry).
  void AddRequestedSectors(Addr line_addr, std::uint32_t sector_mask);

  /// Registers arrival of `sector_mask` for the line and writes every
  /// waiter whose full sector set has now arrived into `*satisfied`
  /// (cleared first; caller owns the scratch so steady-state fills do not
  /// allocate). The entry is removed once all requested sectors arrived
  /// and no waiters remain.
  void Fill(Addr line_addr, std::uint32_t sector_mask,
            MshrWaiters* satisfied);

  /// Convenience wrapper (tests).
  MshrWaiters Fill(Addr line_addr, std::uint32_t sector_mask) {
    MshrWaiters satisfied;
    Fill(line_addr, sector_mask, &satisfied);
    return satisfied;
  }

  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= max_entries_; }

 private:
  struct Entry {
    MshrWaiters waiters;
    std::uint32_t requested_sectors = 0;
    std::uint32_t arrived_sectors = 0;
    unsigned merged = 0;
  };

  unsigned max_entries_;
  unsigned max_merge_;
  FlatMap<Addr, Entry> entries_;
};

}  // namespace swiftsim
