#include "mem/tag_array.h"

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {

TagArray::TagArray(const CacheParams& params, std::uint64_t rng_seed)
    : params_(params), sets_(params.num_sets()),
      lines_(static_cast<std::size_t>(sets_) * params.assoc),
      rng_(rng_seed) {}

unsigned TagArray::SetOf(Addr line_addr) const {
  return static_cast<unsigned>((line_addr / params_.line_bytes) &
                               (sets_ - 1));
}

TagArray::Line* TagArray::FindLine(Addr line_addr) {
  const unsigned set = SetOf(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
  for (unsigned w = 0; w < params_.assoc; ++w) {
    if (base[w].allocated && base[w].tag == line_addr) return &base[w];
  }
  return nullptr;
}

const TagArray::Line* TagArray::FindLine(Addr line_addr) const {
  return const_cast<TagArray*>(this)->FindLine(line_addr);
}

TagArray::Line* TagArray::PickVictim(unsigned set) {
  Line* base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
  // Prefer an unallocated way.
  for (unsigned w = 0; w < params_.assoc; ++w) {
    if (!base[w].allocated) return &base[w];
  }
  // Otherwise evict per policy among non-reserved ways.
  Line* victim = nullptr;
  switch (params_.replacement) {
    case ReplacementPolicy::kLru:
      for (unsigned w = 0; w < params_.assoc; ++w) {
        Line& l = base[w];
        if (l.reserved()) continue;
        if (victim == nullptr || l.last_use < victim->last_use) victim = &l;
      }
      break;
    case ReplacementPolicy::kFifo:
      for (unsigned w = 0; w < params_.assoc; ++w) {
        Line& l = base[w];
        if (l.reserved()) continue;
        if (victim == nullptr || l.alloc_time < victim->alloc_time) {
          victim = &l;
        }
      }
      break;
    case ReplacementPolicy::kRandom: {
      // Scan from a random start to find the first evictable way.
      const unsigned start = static_cast<unsigned>(rng_.Below(params_.assoc));
      for (unsigned i = 0; i < params_.assoc; ++i) {
        Line& l = base[(start + i) % params_.assoc];
        if (!l.reserved()) {
          victim = &l;
          break;
        }
      }
      break;
    }
  }
  return victim;  // nullptr => every way reserved => reservation failure
}

TagOutcome TagArray::Probe(Addr line_addr, std::uint32_t sector_mask,
                           Cycle now, Eviction* ev) {
  SS_DCHECK(ev != nullptr);
  *ev = Eviction{};
  if (Line* l = FindLine(line_addr)) {
    l->last_use = now;
    const std::uint32_t missing =
        sector_mask & ~(l->valid_sectors | l->pending_sectors);
    if ((sector_mask & ~l->valid_sectors) == 0) return TagOutcome::kHit;
    l->pending_sectors |= missing;
    return TagOutcome::kSectorMiss;
  }
  const unsigned set = SetOf(line_addr);
  Line* victim = PickVictim(set);
  if (victim == nullptr) return TagOutcome::kReservationFail;
  if (victim->allocated) {
    ev->valid = true;
    ev->dirty = victim->dirty_sectors != 0;
    ev->line_addr = victim->tag;
    ev->dirty_sectors = victim->dirty_sectors;
  }
  victim->tag = line_addr;
  victim->allocated = true;
  victim->valid_sectors = 0;
  victim->pending_sectors = sector_mask;
  victim->dirty_sectors = 0;
  victim->last_use = now;
  victim->alloc_time = now;
  return TagOutcome::kMiss;
}

bool TagArray::IsHit(Addr line_addr, std::uint32_t sector_mask) const {
  const Line* l = FindLine(line_addr);
  return l != nullptr && (sector_mask & ~l->valid_sectors) == 0;
}

void TagArray::Fill(Addr line_addr, std::uint32_t sector_mask, Cycle now) {
  if (Line* l = FindLine(line_addr)) {
    l->valid_sectors |= sector_mask;
    l->pending_sectors &= ~sector_mask;
    l->last_use = now;
  }
}

bool TagArray::MarkDirty(Addr line_addr, std::uint32_t sector_mask,
                         Cycle now) {
  if (Line* l = FindLine(line_addr)) {
    l->dirty_sectors |= sector_mask;
    l->valid_sectors |= sector_mask;  // full-sector writes validate
    l->last_use = now;
    return true;
  }
  return false;
}

void TagArray::FillAllocate(Addr line_addr, std::uint32_t sector_mask,
                            Cycle now, Eviction* ev) {
  SS_DCHECK(ev != nullptr);
  *ev = Eviction{};
  if (Line* l = FindLine(line_addr)) {
    l->valid_sectors |= sector_mask;
    l->pending_sectors &= ~sector_mask;
    l->last_use = now;
    return;
  }
  const unsigned set = SetOf(line_addr);
  Line* victim = PickVictim(set);
  SS_ASSERT(victim != nullptr);  // streaming caches never reserve ways
  if (victim->allocated) {
    ev->valid = true;
    ev->dirty = victim->dirty_sectors != 0;
    ev->line_addr = victim->tag;
    ev->dirty_sectors = victim->dirty_sectors;
  }
  victim->tag = line_addr;
  victim->allocated = true;
  victim->valid_sectors = sector_mask;
  victim->pending_sectors = 0;
  victim->dirty_sectors = 0;
  victim->last_use = now;
  victim->alloc_time = now;
}

TagOutcome TagArray::WriteValidate(Addr line_addr, std::uint32_t sector_mask,
                                   Cycle now, Eviction* ev) {
  SS_DCHECK(ev != nullptr);
  *ev = Eviction{};
  if (Line* l = FindLine(line_addr)) {
    l->valid_sectors |= sector_mask;
    l->dirty_sectors |= sector_mask;
    l->last_use = now;
    return TagOutcome::kHit;
  }
  const unsigned set = SetOf(line_addr);
  Line* victim = PickVictim(set);
  if (victim == nullptr) return TagOutcome::kReservationFail;
  if (victim->allocated) {
    ev->valid = true;
    ev->dirty = victim->dirty_sectors != 0;
    ev->line_addr = victim->tag;
    ev->dirty_sectors = victim->dirty_sectors;
  }
  victim->tag = line_addr;
  victim->allocated = true;
  victim->valid_sectors = sector_mask;
  victim->pending_sectors = 0;
  victim->dirty_sectors = sector_mask;
  victim->last_use = now;
  victim->alloc_time = now;
  return TagOutcome::kMiss;
}

}  // namespace swiftsim
