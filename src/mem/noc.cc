#include "mem/noc.h"

namespace swiftsim {

namespace {
// Wire sizes: requests carry a header plus store payload; responses carry
// the filled sectors. Header flits are 8 bytes.
unsigned RequestBytes(const MemRequest& req, unsigned sector_bytes) {
  return 8 + (req.is_store() ? req.bytes(sector_bytes) : 0);
}
unsigned ResponseBytes(const MemResponse& resp, unsigned sector_bytes) {
  return 8 + PopCount(resp.sector_mask) * sector_bytes;
}
}  // namespace

Interconnect::Interconnect(unsigned num_sms, unsigned num_partitions,
                           const NocConfig& cfg, unsigned sector_bytes)
    : req_net_(num_sms, num_partitions, cfg,
               [sector_bytes](const MemRequest& r) {
                 return RequestBytes(r, sector_bytes);
               }),
      resp_net_(num_partitions, num_sms, cfg,
                [sector_bytes](const MemResponse& r) {
                  return ResponseBytes(r, sector_bytes);
                }) {}

}  // namespace swiftsim
