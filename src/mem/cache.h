// Clocked sectored cache model used for both the per-SM L1 and the
// per-partition L2 slice. Models banks (per-cycle access budget), MSHRs
// with merge limits, line reservation with reservation failures, LRU/FIFO/
// Random replacement, write-through (L1, streaming) and write-back with
// write-validate sectors (L2).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "mem/mshr.h"
#include "mem/request.h"
#include "mem/tag_array.h"

namespace swiftsim {

struct CacheStats {
  std::uint64_t accesses = 0;        // accepted accesses (loads + stores)
  std::uint64_t load_accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t sector_misses = 0;   // line resident, sectors missing
  std::uint64_t misses = 0;          // full line misses
  std::uint64_t mshr_merges = 0;     // misses merged into an existing entry
  std::uint64_t reservation_fails = 0;
  std::uint64_t mshr_stalls = 0;
  std::uint64_t bank_conflicts = 0;
  std::uint64_t out_stalls = 0;      // miss-queue backpressure rejections
  std::uint64_t writebacks = 0;      // dirty evictions forwarded down
  std::uint64_t write_through = 0;   // stores forwarded down (WT)
  std::uint64_t fills = 0;

  /// Load miss rate (full + sector misses over accepted loads).
  double load_miss_rate() const {
    return load_accesses
               ? static_cast<double>(misses + sector_misses) / load_accesses
               : 0.0;
  }
};

/// Why an Access was rejected. Capacity rejections (kMshrFull, kOutFull)
/// are stable until a fill or a downstream drain clears them, which lets
/// an event-driven owner sleep instead of retrying every cycle; bank and
/// reservation rejections can clear on the very next cycle.
enum class CacheReject : std::uint8_t {
  kNone,
  kBank,      // per-cycle bank budget exhausted
  kResFail,   // no line reservation available
  kMshrFull,  // MSHR entries or merge budget exhausted
  kOutFull,   // miss-queue backpressure
};

class SectorCache {
 public:
  /// `instance` disambiguates minted miss-request ids across cache
  /// instances; `out_capacity` bounds the queue toward the next level.
  SectorCache(std::string name, const CacheParams& params,
              std::uint64_t instance, unsigned out_capacity = 16);

  /// Must be called once per cycle before Access/Fill: resets the per-bank
  /// budget and releases latency-pipe responses that are due.
  void BeginCycle(Cycle now);

  /// Attempts one access. Returns false (with NO state change) if the
  /// access cannot be accepted this cycle: bank busy, MSHR full/merge
  /// limit, reservation failure, or output backpressure. The caller
  /// retries on a later cycle; `why` (optional) reports the first check
  /// that failed, letting the caller sleep through stable rejections.
  bool Access(const MemRequest& req, Cycle now, CacheReject* why = nullptr);

  /// Stats catch-up for retries the owner proved would have failed with
  /// `why` on each of `n` elided cycles (cycle skipping, DESIGN.md §9).
  void AccountElidedStalls(CacheReject why, Cycle n) {
    if (why == CacheReject::kMshrFull) {
      stats_.mshr_stalls += n;
    } else if (why == CacheReject::kOutFull) {
      stats_.out_stalls += n;
    }
  }

  /// Fill from the next level (response to a minted miss request).
  void Fill(const MemResponse& resp, Cycle now);

  /// Ready load responses for the cache's requester side.
  RingBuffer<MemResponse>& responses() { return ready_responses_; }

  /// Requests toward the next level: misses, write-throughs, writebacks.
  RingBuffer<MemRequest>& miss_queue() { return miss_out_; }

  bool miss_queue_full() const {
    const std::size_t ext =
        port_occupancy_ == nullptr
            ? 0
            : port_occupancy_->load(std::memory_order_relaxed);
    return miss_out_.size() + ext >= out_capacity_;
  }

  /// Parallel shard drivers drain miss_queue() into a cross-thread port
  /// (see GpuModel); requests drained but not yet injected downstream must
  /// still occupy this cache's output budget so backpressure timing matches
  /// the serial drain exactly. `occupancy` must outlive the cache.
  void BindPortOccupancy(const std::atomic<std::size_t>* occupancy) {
    port_occupancy_ = occupancy;
  }

  /// True when no latency-pipe entries or MSHR entries remain.
  bool quiescent() const {
    return pending_responses_.empty() && mshr_.size() == 0 &&
           miss_out_.empty() && ready_responses_.empty();
  }

  /// Earliest cycle a latency-pipe response becomes ready (~0ull if none).
  /// Lets an event-driven owner sleep until this cache needs service.
  Cycle NextResponseReady() const {
    if (!ready_responses_.empty()) return 0;
    return pending_responses_.empty() ? ~Cycle{0}
                                      : pending_responses_.front().ready;
  }

  /// NextWakeCycle contract: the earliest cycle > `now` at which this
  /// cache needs its owner's per-cycle service loop. Ready responses and
  /// queued miss-requests need forwarding every cycle; otherwise the only
  /// future event is the head of the latency pipe. MSHR entries carry no
  /// event of their own — their fills arrive from downstream (DRAM/NoC),
  /// whose calendars bound the wake. Returns ~Cycle{0} when drained.
  Cycle NextEventAfter(Cycle now) const {
    if (!ready_responses_.empty() || !miss_out_.empty()) return now + 1;
    if (pending_responses_.empty()) return ~Cycle{0};
    const Cycle ready = pending_responses_.front().ready;
    return ready > now ? ready : now + 1;
  }

  const CacheStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  const CacheParams& params() const { return params_; }

  // Occupancy snapshot for diagnostic dumps (DESIGN.md §11).
  std::size_t mshr_occupancy() const { return mshr_.size(); }
  std::size_t miss_queue_size() const { return miss_out_.size(); }
  std::size_t pending_response_count() const {
    return pending_responses_.size();
  }
  std::size_t ready_response_count() const { return ready_responses_.size(); }

 private:
  bool AccessLoad(const MemRequest& req, Cycle now, CacheReject& why);
  bool AccessStore(const MemRequest& req, Cycle now, CacheReject& why);
  bool TakeBank(Addr line_addr);
  void PushResponse(const MemResponse& resp, Cycle ready);
  void EmitEviction(const Eviction& ev);

  struct TimedResponse {
    Cycle ready = 0;
    MemResponse resp;
  };

  std::string name_;
  CacheParams params_;
  TagArray tags_;
  Mshr mshr_;
  unsigned out_capacity_;
  const std::atomic<std::size_t>* port_occupancy_ = nullptr;
  std::uint64_t next_req_id_;

  Cycle cycle_ = 0;
  std::vector<std::uint8_t> bank_used_;
  bool banks_dirty_ = false;  // any bank_used_ bit set since last reset
  RingBuffer<TimedResponse> pending_responses_;  // latency pipe (FIFO)
  RingBuffer<MemResponse> ready_responses_;
  RingBuffer<MemRequest> miss_out_;
  MshrWaiters fill_scratch_;  // reused by Fill: woken waiters
  CacheStats stats_;
};

}  // namespace swiftsim
