#include "mem/coalescer.h"

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {

void Coalesce(const Addr* lane_addrs, std::size_t n, unsigned access_bytes,
              unsigned line_bytes, unsigned sector_bytes, CoalescedVec* out) {
  SS_DCHECK(IsPow2(line_bytes) && IsPow2(sector_bytes));
  SS_DCHECK(access_bytes >= 1);
  out->clear();
  auto add = [&](Addr byte_addr) {
    const Addr line = AlignDown(byte_addr, line_bytes);
    const unsigned sector =
        static_cast<unsigned>((byte_addr - line) / sector_bytes);
    for (auto& acc : *out) {
      if (acc.line_addr == line) {
        acc.sector_mask |= 1u << sector;
        return;
      }
    }
    out->push_back({line, 1u << sector});
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Addr a = lane_addrs[i];
    // Cover [a, a+access_bytes): typically one sector, possibly two.
    for (Addr b = AlignDown(a, sector_bytes); b < a + access_bytes;
         b += sector_bytes) {
      add(b);
    }
  }
}

SmemConflictCounter::SmemConflictCounter(unsigned banks)
    : banks_(banks), bank_count_(banks, 0) {
  SS_CHECK(banks > 0, "shared memory needs at least one bank");
}

unsigned SmemConflictCounter::Conflicts(const Addr* addrs, std::size_t n) {
  SS_DCHECK(n <= kWarpSize);
  // A duplicate word can only hide behind a bank that already has a word,
  // so a touched-bank bitmask skips the dedup scan entirely on the common
  // conflict-free pattern (each lane on its own bank).
  const bool bitmask_ok = banks_ <= 64;
  std::uint64_t touched = 0;
  unsigned worst = 1;
  std::size_t nw = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Addr word = addrs[i] / 4;
    const unsigned bank = static_cast<unsigned>(word % banks_);
    if (!bitmask_ok || (touched >> bank) & 1) {
      bool dup = false;
      for (std::size_t j = 0; j < nw; ++j) {
        if (words_[j] == word) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
    }
    if (bitmask_ok) touched |= std::uint64_t{1} << bank;
    words_[nw++] = word;
    const std::uint8_t c = ++bank_count_[bank];
    if (c > worst) worst = c;
  }
  for (std::size_t j = 0; j < nw; ++j) {
    bank_count_[words_[j] % banks_] = 0;
  }
  return worst;
}

}  // namespace swiftsim
