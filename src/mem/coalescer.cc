#include "mem/coalescer.h"

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {

std::vector<CoalescedAccess> Coalesce(const std::vector<Addr>& lane_addrs,
                                      unsigned access_bytes,
                                      unsigned line_bytes,
                                      unsigned sector_bytes) {
  SS_DCHECK(IsPow2(line_bytes) && IsPow2(sector_bytes));
  SS_DCHECK(access_bytes >= 1);
  std::vector<CoalescedAccess> out;
  auto add = [&](Addr byte_addr) {
    const Addr line = AlignDown(byte_addr, line_bytes);
    const unsigned sector =
        static_cast<unsigned>((byte_addr - line) / sector_bytes);
    for (auto& acc : out) {
      if (acc.line_addr == line) {
        acc.sector_mask |= 1u << sector;
        return;
      }
    }
    out.push_back({line, 1u << sector});
  };
  for (Addr a : lane_addrs) {
    // Cover [a, a+access_bytes): typically one sector, possibly two.
    for (Addr b = AlignDown(a, sector_bytes); b < a + access_bytes;
         b += sector_bytes) {
      add(b);
    }
  }
  return out;
}

}  // namespace swiftsim
