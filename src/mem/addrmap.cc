#include "mem/addrmap.h"

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {

AddrMap::AddrMap(unsigned num_partitions, unsigned line_bytes)
    : num_partitions_(num_partitions), line_shift_(Log2(line_bytes)) {
  SS_CHECK(num_partitions > 0, "AddrMap: need at least one partition");
  SS_CHECK(IsPow2(line_bytes), "AddrMap: line size must be a power of two");
}

unsigned AddrMap::PartitionOf(Addr line_addr) const {
  return static_cast<unsigned>(HashMix(line_addr >> line_shift_) %
                               num_partitions_);
}

}  // namespace swiftsim
