// DRAM channel model behind one memory partition: bounded controller
// queue, FR-FCFS-style scheduling (row hits first within a lookahead
// window), row-buffer latency, per-channel bandwidth serialization, and an
// optional periodic-refresh effect (silicon oracle only).
#pragma once

#include <cstdint>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "config/gpu_config.h"
#include "mem/request.h"

namespace swiftsim {

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t bytes = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t enqueue_stalls = 0;

  double row_hit_rate() const {
    const std::uint64_t total = row_hits + row_misses;
    return total ? static_cast<double>(row_hits) / total : 0.0;
  }
};

class DramChannel {
 public:
  DramChannel(const DramConfig& cfg, unsigned sector_bytes,
              const SiliconEffects& effects);

  /// Returns false (no state change) when the controller queue is full.
  bool Enqueue(const MemRequest& req);

  void Tick(Cycle now);

  /// Completed load responses, ready for the L2 fill path.
  RingBuffer<MemResponse>& responses() { return ready_; }

  bool quiescent() const {
    return queue_.empty() && in_service_.empty() && ready_.empty();
  }

  /// NextWakeCycle contract: the earliest cycle > `now` at which a Tick
  /// can change observable state — the head in-service burst maturing
  /// (in_service_ is ready-sorted), the channel freeing up for a queued
  /// request, the next refresh edge (silicon oracle only), or a completed
  /// response awaiting its consumer. Returns ~Cycle{0} when idle.
  Cycle NextEventAfter(Cycle now) const;

  const DramStats& stats() const { return stats_; }

  // Occupancy snapshot for diagnostic dumps (DESIGN.md §11).
  std::size_t queue_size() const { return queue_.size(); }
  std::size_t in_service_size() const { return in_service_.size(); }
  std::size_t ready_size() const { return ready_.size(); }

 private:
  struct InService {
    Cycle ready = 0;
    MemResponse resp;
    bool is_load = false;
  };

  static constexpr unsigned kFrfcfsWindow = 8;

  DramConfig cfg_;
  unsigned sector_bytes_;
  SiliconEffects effects_;

  RingBuffer<MemRequest> queue_;
  RingBuffer<InService> in_service_;  // sorted by ready
  RingBuffer<MemResponse> ready_;
  Cycle busy_until_ = 0;
  Cycle next_refresh_;
  Addr open_row_ = ~Addr{0};
  DramStats stats_;
};

}  // namespace swiftsim
