// The memory coalescer: collapses the per-lane addresses of one warp
// memory instruction into the minimal set of line+sector requests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/inline_vec.h"
#include "common/types.h"
#include "mem/request.h"

namespace swiftsim {

struct CoalescedAccess {
  Addr line_addr = 0;
  std::uint32_t sector_mask = 0;
};

/// Coalesced accesses of one warp instruction. With access_bytes <=
/// sector_bytes each of the <=32 lanes touches at most two sector-aligned
/// chunks, so 64 inline slots make return-by-value allocation-free.
using CoalescedVec = InlineVec<CoalescedAccess, 2 * kWarpSize>;

/// Coalesces per-active-lane addresses (compact form, `access_bytes` read or
/// written per lane) into unique (line, sector-mask) accesses, ordered by
/// first-touching lane. A lane access spanning a sector boundary sets both
/// sector bits; spanning a line boundary produces entries for both lines.
/// Clears and fills `*out`.
void Coalesce(const Addr* lane_addrs, std::size_t n, unsigned access_bytes,
              unsigned line_bytes, unsigned sector_bytes, CoalescedVec* out);

/// Convenience overload for any contiguous address container
/// (LaneAddrs, std::vector in tests).
template <typename Addrs>
CoalescedVec Coalesce(const Addrs& lane_addrs, unsigned access_bytes,
                      unsigned line_bytes, unsigned sector_bytes) {
  CoalescedVec out;
  Coalesce(lane_addrs.data(), lane_addrs.size(), access_bytes, line_bytes,
           sector_bytes, &out);
  return out;
}

/// Braced-list convenience (tests): Coalesce({0x1000, 0x1004}, ...).
inline CoalescedVec Coalesce(std::initializer_list<Addr> lane_addrs,
                             unsigned access_bytes, unsigned line_bytes,
                             unsigned sector_bytes) {
  CoalescedVec out;
  Coalesce(lane_addrs.begin(), lane_addrs.size(), access_bytes, line_bytes,
           sector_bytes, &out);
  return out;
}

/// Shared-memory bank-conflict calculator with reusable scratch (one per
/// owning unit; calls are allocation-free). Duplicate word addresses
/// within the warp are broadcast and count once.
class SmemConflictCounter {
 public:
  explicit SmemConflictCounter(unsigned banks);

  /// Worst-case distinct-word count on one bank == serialized smem cycles.
  unsigned Conflicts(const Addr* addrs, std::size_t n);

  template <typename Addrs>
  unsigned Conflicts(const Addrs& addrs) {
    return Conflicts(addrs.data(), addrs.size());
  }

 private:
  unsigned banks_;
  std::vector<std::uint8_t> bank_count_;  // per-bank distinct-word counts
  Addr words_[kWarpSize];                 // distinct words seen this call
};

}  // namespace swiftsim
