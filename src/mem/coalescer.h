// The memory coalescer: collapses the per-lane addresses of one warp
// memory instruction into the minimal set of line+sector requests.
#pragma once

#include <vector>

#include "common/types.h"
#include "mem/request.h"

namespace swiftsim {

struct CoalescedAccess {
  Addr line_addr = 0;
  std::uint32_t sector_mask = 0;
};

/// Coalesces per-active-lane addresses (compact form, `access_bytes` read or
/// written per lane) into unique (line, sector-mask) accesses, ordered by
/// first-touching lane. A lane access spanning a sector boundary sets both
/// sector bits; spanning a line boundary produces entries for both lines.
std::vector<CoalescedAccess> Coalesce(const std::vector<Addr>& lane_addrs,
                                      unsigned access_bytes,
                                      unsigned line_bytes,
                                      unsigned sector_bytes);

}  // namespace swiftsim
