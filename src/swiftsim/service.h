// Persistent simulation service (DESIGN.md §15): the engine behind the
// `swiftsimd` daemon. Repeated-launch workloads pay process cold start —
// trace generation, pre-passes, cache warming — on every CLI invocation,
// while the warm MemoCache path is 46–123× faster than cold simulation
// (results/BENCH_memo.json). This module keeps one process alive and
// shares the warm state across requests:
//
//   * an NDJSON request protocol (one JSON object per line; unix-socket
//     and stdin/stdout transports) accepting simulation jobs — workload,
//     scale/seed, launch iterations, SimLevel, preset + sparse INI
//     overrides;
//   * a worker-lane fleet on the shared ThreadPool, shaped once by the
//     two-mode PlanParallelBatch policy (DESIGN.md §12): spare budget
//     inside lanes runs cycle-accurate jobs on the task-graph driver;
//   * process-global warm state — MemoCache, ProfileCache and a
//     fingerprint-keyed built-trace cache (in-memory LRU over the on-disk
//     compact cache) — shared by all requests, with --memo-file
//     persistence on shutdown;
//   * request coalescing: concurrent jobs with an identical coalescing
//     key (trace fingerprint, iterations, canonical config hash,
//     SimLevel) attach to the one in-flight simulation and fan out its
//     result;
//   * admission control: a bounded queue rejects overload with a typed
//     `queue_full` error instead of stalling clients;
//   * per-request isolation reusing the §11 outcome classification: a
//     hung job trips the wall-clock watchdog and returns a typed
//     `timeout`, a faulted job returns `sim_failed` — the daemon stays up.
//
// Results are bit-identical to one-shot CLI runs of the same (workload,
// config, SimLevel), including under coalescing and after memo-file
// reload: replay is exact at the analytical-memory level and the
// slack=1 task-graph driver is bit-identical to serial.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/thread_pool.h"
#include "config/gpu_config.h"
#include "sim/model_select.h"
#include "swiftsim/parallel.h"
#include "trace/fingerprint.h"

namespace swiftsim::service {

/// Typed protocol errors. Everything a client can cause has its own code
/// so callers can branch without string matching; `sim_timeout` and
/// `sim_failed` classify jobs that were admitted but did not complete at
/// the requested level (the §11 AppOutcome taxonomy over the wire).
enum class ErrorCode {
  kBadJson,          // line is not a JSON object
  kBadRequest,       // wrong/missing/unknown fields
  kUnknownOp,        // unrecognized "op"
  kUnknownWorkload,  // workload name not in the registry
  kBadConfig,        // unknown preset, unknown INI key, or bad value
  kOversized,        // line, scale or iterations beyond the limits
  kQueueFull,        // admission control rejected the job
  kShuttingDown,     // submitted after shutdown began
  kSimTimeout,       // watchdog tripped (wall clock or stall window)
  kSimFailed,        // simulation raised after exhausting retries
  kWorkerCrashed,    // supervised worker died with the job in flight and
                     // the per-job crash-retry budget is exhausted (§16)
};

const char* ToString(ErrorCode code);

/// Request-side resource caps (admission control against hostile or
/// runaway jobs; `oversized` rejections name the violated limit).
struct Limits {
  std::size_t max_line_bytes = 1 << 20;
  double max_scale = 2.0;
  unsigned max_iterations = 1024;
};

enum class Op { kSimulate, kPing, kStats, kShutdown };

/// One simulation job as carried by a `simulate` request.
struct JobRequest {
  std::string id;        // client correlation id, echoed in the response
  std::string workload;  // registry name, e.g. "BFS"
  double scale = 0.05;
  std::uint64_t seed = 0x5eed5eedULL;
  unsigned iterations = 1;  // RepeatLaunches count (iterative-solver shape)
  SimLevel level = SimLevel::kSwiftSimMemory;
  std::string preset;      // "" = generic GpuConfig; else presets.h name
  std::string config_ini;  // sparse INI overrides on top of the preset
  double timeout_sec = -1;  // per-request wall budget; <0 = daemon default
};

struct Request {
  Op op = Op::kSimulate;
  std::string id;  // for non-simulate ops (simulate carries job.id)
  JobRequest job;
};

/// One NDJSON response record. For `simulate`, `ok` means the job
/// completed at the requested level (possibly `degraded`); watchdog trips
/// and simulation failures come back with ok=false and a typed error, and
/// the daemon keeps serving.
struct Response {
  std::string id;
  bool ok = false;
  ErrorCode error = ErrorCode::kBadRequest;  // meaningful when !ok
  std::string error_message;
  std::string status;  // ok|degraded|timeout|failed|pong|stats|shutting_down
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  double sim_seconds = 0;    // wall time inside the simulator
  double wall_seconds = 0;   // submit → response (queue + run)
  double queue_seconds = 0;  // submit → job start
  bool coalesced = false;    // served by fanning out another job's result
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_cycles_avoided = 0;
  std::uint64_t degrade_events = 0;
  std::string extra_json;  // pre-serialized payload ("stats" op); "" = none
};

/// Parses one NDJSON request line. Returns false and fills `error` /
/// `error_message` (and `id` when the line carried a usable one) on any
/// malformed input; never throws on client data.
bool ParseRequestLine(const std::string& line, const Limits& limits,
                      Request* out, ErrorCode* error,
                      std::string* error_message, std::string* id);

/// Serializes a response as one JSON line (no trailing newline).
std::string EncodeResponse(const Response& r);

/// Accepted SimLevel spellings: "silicon", "detailed", "basic", "memory"
/// plus the canonical ToString(SimLevel) forms. Throws SimError.
SimLevel SimLevelFromString(const std::string& s);

struct ServiceOptions {
  unsigned threads = 0;         // worker budget; 0 = hardware concurrency
  ParallelMode mode = ParallelMode::kAuto;  // PlanParallelBatch input
  /// Expected concurrent jobs — the `num_apps` lane-shape input to
  /// PlanParallelBatch. 0 = the thread budget (pure app-parallel lanes).
  unsigned max_concurrent = 0;
  unsigned queue_capacity = 64;  // admitted-but-unstarted job bound
  Limits limits;
  std::string memo_file;        // load on start, save (atomic) on Stop
  std::string trace_cache_dir;  // on-disk compact trace cache; "" = off
  std::uint64_t app_cache_entries = 64;  // in-memory built-trace LRU cap
  double default_timeout_sec = 0;  // per-request wall watchdog; 0 = off
  Cycle watchdog_cycles = 0;       // stall-window watchdog; 0 = off
  bool degrade_on_hang = false;    // analytical fallback via RunResilient
  std::uint64_t memo_max_entries = 0;  // global cache caps; 0 = unbounded
  std::uint64_t memo_max_bytes = 0;
  /// Supervision telemetry snapshot (DESIGN.md §16): filled in by the
  /// supervisor when it spawns this worker so the `stats` op can report
  /// restart/replay/journal counters. Snapshots are as of worker start —
  /// the worker cannot observe the live supervisor across the process
  /// boundary.
  bool supervised = false;
  std::uint64_t sup_restarts = 0;
  std::uint64_t sup_jobs_replayed = 0;
  std::uint64_t sup_retries = 0;
  std::uint64_t sup_journal_bytes = 0;
};

/// Monotonic service counters (a snapshot; `stats` op serializes these
/// plus latency percentiles over the recent completion window).
struct ServiceStats {
  std::uint64_t accepted = 0;    // jobs admitted to the queue
  std::uint64_t coalesced = 0;   // jobs attached to an in-flight twin
  std::uint64_t rejected = 0;    // typed rejections (full/oversized/...)
  std::uint64_t completed = 0;   // ok or degraded
  std::uint64_t degraded = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  std::uint64_t app_cache_hits = 0;    // in-memory built-trace cache
  std::uint64_t app_cache_misses = 0;
  std::uint64_t disk_trace_hits = 0;   // misses served by the on-disk cache
  std::uint64_t memo_hits = 0;         // accumulated from job results
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_cycles_avoided = 0;
};

class SimulationService {
 public:
  /// Invoked exactly once per admitted job, from a worker lane (followers
  /// of a coalesced job are all invoked by the lane that ran it).
  using Callback = std::function<void(const Response&)>;

  explicit SimulationService(ServiceOptions opt);
  ~SimulationService();  // Stop()s if still running
  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Admission: on acceptance (true) `done` fires later from a worker
  /// lane; on rejection (false) `*rejection` carries the typed error and
  /// `done` is never invoked.
  bool Submit(const JobRequest& job, Callback done, Response* rejection);

  /// Blocking convenience for tools and tests.
  Response SubmitAndWait(const JobRequest& job);

  /// Stops admission, drains every queued job, joins the lanes and — when
  /// configured — persists the global MemoCache to `memo_file` via an
  /// atomic temp-file rename. Idempotent.
  void Stop();

  ServiceStats stats() const;
  /// The `stats` op payload: counters, lane shape, global cache sizes and
  /// p50/p95/p99 wall latency over the recent completion window.
  std::string StatsJson() const;

  const BatchPlan& plan() const { return plan_; }
  const Limits& limits() const { return opt_.limits; }
  const ServiceOptions& options() const { return opt_; }

 private:
  struct PendingJob;
  struct CoalesceKey {
    Fingerprint trace_key;  // WorkloadBuildKey(workload, scale, seed)
    std::uint64_t cfg_hash = 0;
    std::uint32_t iterations = 1;
    std::uint8_t level = 0;

    bool operator<(const CoalesceKey& o) const {
      if (trace_key != o.trace_key) return trace_key < o.trace_key;
      if (cfg_hash != o.cfg_hash) return cfg_hash < o.cfg_hash;
      if (iterations != o.iterations) return iterations < o.iterations;
      return level < o.level;
    }
  };

  // Percentile window: enough samples that p99 is meaningful, bounded so
  // a long-lived daemon's stats stay O(1).
  static constexpr std::size_t kLatencyWindow = 4096;

  /// One worker lane: pops admitted jobs and runs them to completion.
  /// Lanes are dedicated threads, NOT tasks on the shared pool — a lane
  /// parked in Pop (or blocked in a nested TaskGroup::Wait) would occupy
  /// a pool worker and starve the parallelism running jobs submit to
  /// that same pool (trace builds, the pre-pass, the task-graph driver).
  /// The pool carries the parallel work; lanes only carry the waiting.
  void LaneLoop();
  void ProcessJob(const std::shared_ptr<PendingJob>& job);
  void RunJob(PendingJob& job, Response* out);
  /// Fetches the built application for (workload, scale, seed) through
  /// the in-memory LRU and, beneath it, the on-disk compact trace cache.
  std::shared_ptr<const Application> GetApp(const JobRequest& job);
  void RecordLatency(double seconds);

  ServiceOptions opt_;
  BatchPlan plan_;
  GpuConfig base_generic_;  // preset-free request base
  std::unique_ptr<BoundedQueue<std::shared_ptr<PendingJob>>> queue_;
  std::vector<std::thread> lanes_;

  std::mutex stop_mu_;  // serializes Stop() callers (drain + persist once)
  mutable std::mutex mu_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::map<CoalesceKey, std::shared_ptr<PendingJob>> inflight_;
  ServiceStats stats_;
  // Recent wall latencies (ring) for the percentile report.
  std::vector<double> latencies_;
  std::size_t latency_next_ = 0;

  // In-memory built-trace cache: fingerprint-keyed, LRU-capped.
  struct AppSlot {
    std::shared_ptr<const Application> app;
    std::uint64_t last_use = 0;
  };
  mutable std::mutex app_mu_;
  std::map<Fingerprint, AppSlot> app_cache_;
  std::uint64_t app_clock_ = 0;
};

/// One serve loop over a line transport: reads NDJSON requests until EOF
/// or a `shutdown` op, submits jobs, and streams responses in completion
/// order (correlate by `id`). `write_line` is called under an internal
/// mutex — transports only need a raw line sink. Returns after every
/// admitted job's response has been written; on `shutdown` the service is
/// Stop()ed (drained + persisted) before the acknowledgement is written.
struct ServeResult {
  std::uint64_t handled = 0;  // request lines consumed
  bool shutdown = false;      // a shutdown op ended the loop
};

ServeResult ServeTransport(
    const std::function<bool(std::string*)>& read_line,
    const std::function<void(const std::string&)>& write_line,
    SimulationService& svc, bool stop_on_shutdown = true);

/// NDJSON loop over iostreams (the stdin/stdout daemon mode and tests).
ServeResult ServeLines(std::istream& in, std::ostream& out,
                       SimulationService& svc);

}  // namespace swiftsim::service
