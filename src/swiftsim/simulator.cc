#include "swiftsim/simulator.h"

#include <chrono>
#include <map>
#include <string>
#include <utility>

#include "analytical/cache_prepass.h"
#include "common/status.h"
#include "swiftsim/memo_cache.h"

namespace swiftsim {

Simulator::Simulator(const Application& app, const GpuConfig& cfg,
                     SimLevel level)
    : app_(app), cfg_(cfg), level_(level) {
  if (SelectionFor(level).mem == MemModelKind::kAnalytical) {
    if (cfg_.memo.enabled) {
      // Cache-geometry-equal configs and repeated constructions share one
      // profile; the fetch time (hit or build) is the run's pre-pass cost.
      ProfileCache::Global().SetMaxEntries(cfg_.memo.max_entries);
      const ProfileCache::Fetch fetch =
          ProfileCache::Global().GetOrBuild(app, cfg_);
      profile_ = fetch.profile;
      prepass_seconds_ = fetch.seconds;
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      profile_ =
          std::make_shared<const MemProfile>(BuildMemProfile(app, cfg_));
      const auto t1 = std::chrono::steady_clock::now();
      prepass_seconds_ = std::chrono::duration<double>(t1 - t0).count();
    }
  }
}

SimResult Simulator::Run() {
  SimResult result;
  const bool resilient = (fault_plan_ != nullptr && fault_plan_->AnyRuntime()) ||
                         cfg_.degrade.on_hang || cfg_.degrade.max_retries > 0;
  if (resilient) {
    result = RunResilient();
    result.simulator = ToString(level_);
    result.wall_seconds += prepass_seconds_;
    return result;
  }
  if (cfg_.memo.enabled && MemoReplayApplicable(cfg_, level_)) {
    result = RunApplicationMemo(app_, cfg_, level_, profile_.get(),
                                MemoCache::Global());
  } else {
    GpuModel model(cfg_, SelectionFor(level_), profile_.get());
    result = model.RunApplication(app_);
  }
  result.simulator = ToString(level_);
  // The pre-pass is part of Swift-Sim-Memory's cost; charge it to the run.
  result.wall_seconds += prepass_seconds_;
  return result;
}

SimResult Simulator::RunResilient() {
  SimResult result;
  result.app = app_.name;
  result.kernels.reserve(app_.kernels.size());
  const auto t0 = std::chrono::steady_clock::now();

  const ModelSelection sel = SelectionFor(level_);
  std::unique_ptr<FaultInjector> injector;
  if (fault_plan_ != nullptr && fault_plan_->AnyRuntime()) {
    injector = std::make_unique<FaultInjector>(*fault_plan_, cfg_.num_sms);
  }
  auto make_model = [&]() {
    auto m = std::make_unique<GpuModel>(cfg_, sel, profile_.get());
    if (injector) m->ArmFaults(injector.get());
    return m;
  };
  // Metrics accumulate across replacement models so a run that degraded
  // still reports its full counter totals.
  std::map<std::string, std::uint64_t> metrics;
  auto fold_metrics = [&](const GpuModel& m) {
    for (const auto& [key, value] : m.metrics().Snapshot()) {
      metrics[key] += value;
    }
  };

  auto model = make_model();
  Cycle clock = 0;  // clock at the last completed-kernel boundary
  for (const auto& kernel : app_.kernels) {
    unsigned attempts = 0;
    for (;;) {
      const std::uint64_t before = model->TotalIssuedInstrs();
      try {
        const Cycle cycles = model->RunKernel(*kernel);
        result.kernels.push_back(
            {kernel->info().name, cycles,
             model->TotalIssuedInstrs() - before});
        clock = model->now();
        break;
      } catch (const SimError& e) {
        std::string dump;
        if (const auto* hang = dynamic_cast<const SimHangError*>(&e)) {
          dump = hang->dump_path();
        }
        fold_metrics(*model);
        if (attempts++ < cfg_.degrade.max_retries) {
          // Bounded retry on a fresh model resumed at the kernel boundary;
          // deterministic faults will recur, transient model-state damage
          // will not.
          model = make_model();
          model->SyncClock(clock);
          continue;
        }
        if (!cfg_.degrade.on_hang) throw;
        // Graceful degradation: finish this kernel analytically (clean
        // model, no injection — the point is to recover a usable estimate),
        // record the event, and resume detailed simulation after it.
        Application one;
        one.name = app_.name;
        one.kernels.push_back(kernel);
        const MemProfile fallback_profile = BuildMemProfile(one, cfg_);
        GpuModel ana(cfg_, SelectionFor(SimLevel::kSwiftSimMemory),
                     &fallback_profile);
        ana.SyncClock(clock);
        const std::uint64_t ana_before = ana.TotalIssuedInstrs();
        const Cycle cycles = ana.RunKernel(*kernel);
        result.kernels.push_back(
            {kernel->info().name, cycles,
             ana.TotalIssuedInstrs() - ana_before});
        clock = ana.now();
        fold_metrics(ana);
        result.degrades.push_back({kernel->info().name, e.what(), dump});
        model = make_model();
        model->SyncClock(clock);
        break;
      }
    }
  }
  fold_metrics(*model);

  const auto t1 = std::chrono::steady_clock::now();
  result.total_cycles = clock;
  for (const auto& kr : result.kernels) result.instructions += kr.instructions;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  metrics["driver.degrade_events"] = result.degrades.size();
  if (injector) {
    metrics["fault.responses_delayed"] = injector->delayed();
    metrics["fault.responses_dropped"] = injector->dropped();
    metrics["fault.responses_redelivered"] = injector->redelivered();
    metrics["fault.issue_freezes"] = injector->freezes();
  }
  result.metrics = std::move(metrics);
  return result;
}

SimResult RunSimulation(const Application& app, const GpuConfig& cfg,
                        SimLevel level) {
  return Simulator(app, cfg, level).Run();
}

}  // namespace swiftsim
