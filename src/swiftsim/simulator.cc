#include "swiftsim/simulator.h"

#include <chrono>

#include "analytical/cache_prepass.h"

namespace swiftsim {

Simulator::Simulator(const Application& app, const GpuConfig& cfg,
                     SimLevel level)
    : app_(app), cfg_(cfg), level_(level) {
  if (SelectionFor(level).mem == MemModelKind::kAnalytical) {
    const auto t0 = std::chrono::steady_clock::now();
    profile_ = std::make_unique<MemProfile>(BuildMemProfile(app, cfg_));
    const auto t1 = std::chrono::steady_clock::now();
    prepass_seconds_ = std::chrono::duration<double>(t1 - t0).count();
  }
}

SimResult Simulator::Run() {
  GpuModel model(cfg_, SelectionFor(level_), profile_.get());
  SimResult result = model.RunApplication(app_);
  result.simulator = ToString(level_);
  // The pre-pass is part of Swift-Sim-Memory's cost; charge it to the run.
  result.wall_seconds += prepass_seconds_;
  return result;
}

SimResult RunSimulation(const Application& app, const GpuConfig& cfg,
                        SimLevel level) {
  return Simulator(app, cfg, level).Run();
}

}  // namespace swiftsim
