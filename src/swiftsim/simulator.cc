#include "swiftsim/simulator.h"

#include <chrono>

#include "analytical/cache_prepass.h"
#include "swiftsim/memo_cache.h"

namespace swiftsim {

Simulator::Simulator(const Application& app, const GpuConfig& cfg,
                     SimLevel level)
    : app_(app), cfg_(cfg), level_(level) {
  if (SelectionFor(level).mem == MemModelKind::kAnalytical) {
    if (cfg_.memo.enabled) {
      // Cache-geometry-equal configs and repeated constructions share one
      // profile; the fetch time (hit or build) is the run's pre-pass cost.
      const ProfileCache::Fetch fetch =
          ProfileCache::Global().GetOrBuild(app, cfg_);
      profile_ = fetch.profile;
      prepass_seconds_ = fetch.seconds;
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      profile_ =
          std::make_shared<const MemProfile>(BuildMemProfile(app, cfg_));
      const auto t1 = std::chrono::steady_clock::now();
      prepass_seconds_ = std::chrono::duration<double>(t1 - t0).count();
    }
  }
}

SimResult Simulator::Run() {
  SimResult result;
  if (cfg_.memo.enabled && MemoReplayApplicable(cfg_, level_)) {
    result = RunApplicationMemo(app_, cfg_, level_, profile_.get(),
                                MemoCache::Global());
  } else {
    GpuModel model(cfg_, SelectionFor(level_), profile_.get());
    result = model.RunApplication(app_);
  }
  result.simulator = ToString(level_);
  // The pre-pass is part of Swift-Sim-Memory's cost; charge it to the run.
  result.wall_seconds += prepass_seconds_;
  return result;
}

SimResult RunSimulation(const Application& app, const GpuConfig& cfg,
                        SimLevel level) {
  return Simulator(app, cfg, level).Run();
}

}  // namespace swiftsim
