#include "swiftsim/parallel.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "analytical/cache_prepass.h"
#include "common/status.h"
#include "swiftsim/simulator.h"

namespace swiftsim {

ParallelBatchResult RunAppsParallel(const std::vector<Application>& apps,
                                    const GpuConfig& cfg, SimLevel level,
                                    unsigned num_threads) {
  SS_CHECK(num_threads > 0, "need at least one worker thread");
  ParallelBatchResult batch;
  batch.results.resize(apps.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= apps.size()) return;
      batch.results[i] = RunSimulation(apps[i], cfg, level);
    }
  };
  std::vector<std::thread> pool;
  const unsigned n = std::min<unsigned>(num_threads,
                                        std::max<std::size_t>(apps.size(), 1));
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  batch.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return batch;
}

namespace {

/// Simulates one SM's statically assigned share of a kernel to completion,
/// starting at `start`; returns the SM's local finish time.
Cycle RunSmShare(SmCore& sm, const KernelTrace& kernel,
                 std::deque<CtaId>& pending, Cycle start) {
  const KernelInfo& info = kernel.info();
  Cycle now = start;
  while (!pending.empty() || !sm.Idle()) {
    while (!pending.empty() && sm.CanTakeCta(info)) {
      sm.LaunchCta(kernel, pending.front());
      pending.pop_front();
    }
    const bool progressed = sm.Tick(now);
    if (progressed) {
      ++now;
      continue;
    }
    const Cycle wake = sm.NextWake();
    if (wake == kNever) {
      SS_CHECK(pending.empty() && sm.Idle(),
               "SM-parallel simulation wedged on kernel '" + info.name + "'");
      break;
    }
    now = std::max(now + 1, wake);
  }
  return now;
}

}  // namespace

SimResult RunSmParallelMemory(const Application& app, const GpuConfig& cfg,
                              unsigned num_threads) {
  SS_CHECK(num_threads > 0, "need at least one worker thread");
  const auto t0 = std::chrono::steady_clock::now();
  const MemProfile profile = BuildMemProfile(app, cfg);
  const ModelSelection sel = SelectionFor(SimLevel::kSwiftSimMemory);
  AnalyticalMemModel mem_model(cfg, &profile);

  // Independent SMs: the analytical memory path shares no mutable state.
  std::vector<std::unique_ptr<SmCore>> sms;
  sms.reserve(cfg.num_sms);
  for (unsigned s = 0; s < cfg.num_sms; ++s) {
    sms.push_back(
        std::make_unique<SmCore>(cfg, sel, s, &mem_model, [](SmId) {}));
  }

  SimResult result;
  result.app = app.name;
  result.simulator = ToString(SimLevel::kSwiftSimMemory) + "+sm-parallel";
  Cycle clock = 0;
  for (const auto& kernel : app.kernels) {
    const KernelInfo& info = kernel->info();
    // Static round-robin pre-assignment (documented approximation of the
    // greedy dispatcher; required for SM independence).
    std::vector<std::deque<CtaId>> assignment(cfg.num_sms);
    for (CtaId c = 0; c < info.num_ctas; ++c) {
      assignment[c % cfg.num_sms].push_back(c);
    }
    const unsigned active_sms =
        std::min<unsigned>(cfg.num_sms, info.num_ctas);
    for (auto& sm : sms) sm->OnKernelStart(active_sms);
    std::vector<Cycle> finish(cfg.num_sms, clock);
    std::atomic<unsigned> next{0};
    auto worker = [&] {
      for (;;) {
        const unsigned s = next.fetch_add(1);
        if (s >= cfg.num_sms) return;
        if (assignment[s].empty()) continue;
        finish[s] = RunSmShare(*sms[s], *kernel, assignment[s], clock);
      }
    };
    std::vector<std::thread> pool;
    const unsigned n = std::min(num_threads, cfg.num_sms);
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();

    Cycle kernel_end = clock;
    for (Cycle f : finish) kernel_end = std::max(kernel_end, f);
    KernelResult kr;
    kr.name = info.name;
    kr.cycles = kernel_end - clock;
    result.kernels.push_back(kr);
    clock = kernel_end;  // kernel boundary = global barrier
  }
  result.total_cycles = clock;
  for (const auto& sm : sms) {
    result.instructions += sm->stats().issued_instrs;
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

}  // namespace swiftsim
