#include "swiftsim/parallel.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "analytical/cache_prepass.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "sim/metrics.h"
#include "swiftsim/memo_cache.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"

namespace swiftsim {

const char* ToString(AppStatus status) {
  switch (status) {
    case AppStatus::kOk: return "ok";
    case AppStatus::kDegraded: return "degraded";
    case AppStatus::kTimedOut: return "timeout";
    case AppStatus::kFailed: return "failed";
  }
  return "unknown";
}

BatchPlan PlanParallelBatch(std::size_t num_apps, unsigned num_threads,
                            bool cycle_accurate_mem, ParallelMode mode) {
  BatchPlan plan;
  const unsigned budget = std::max(1u, num_threads);
  const unsigned apps =
      static_cast<unsigned>(std::min<std::size_t>(num_apps, budget));
  if (num_apps == 0) return plan;
  // Intra-app sharding is only a drop-in at cycle-accurate-memory levels
  // (the task-graph driver is bit-identical to the serial simulator
  // there); analytical-memory levels stay app-parallel.
  if (!cycle_accurate_mem) mode = ParallelMode::kApp;
  const bool auto_mode = mode == ParallelMode::kAuto;
  if (auto_mode) {
    // MAGPIE-style two-mode selection: enough apps to fill the budget →
    // app-parallel (perfect scaling, zero sync); fewer apps → a mix that
    // spreads the spare threads inside each app.
    mode = num_apps >= budget ? ParallelMode::kApp : ParallelMode::kIntra;
  }
  plan.chosen = mode;
  if (mode == ParallelMode::kApp) {
    plan.app_lanes = apps;
    plan.threads_per_app = 1;
  } else if (auto_mode) {
    // Mix shape: one lane per app, spare budget inside each lane. Never
    // double-partition the pool — lanes × per-app workers stays within
    // the budget, so intra-app clusters don't oversubscribe the hardware
    // the app lanes already claimed.
    plan.app_lanes = apps;
    plan.threads_per_app = std::max(1u, budget / plan.app_lanes);
  } else {
    // Explicit intra: apps run one at a time, each on the full budget.
    plan.app_lanes = 1;
    plan.threads_per_app = budget;
  }
  return plan;
}

namespace {

/// True when the resolved plan can shard inside apps for this batch:
/// fault injection and degradation need the resilient serial driver.
bool IntraEligible(const BatchOptions* options, const GpuConfig& cfg) {
  const bool resilient =
      (options != nullptr && options->fault_plan != nullptr) ||
      cfg.degrade.on_hang || cfg.degrade.max_retries > 0;
  return !resilient;
}

}  // namespace

ParallelBatchResult RunAppsParallel(const std::vector<Application>& apps,
                                    const GpuConfig& cfg, SimLevel level,
                                    unsigned num_threads) {
  SS_CHECK(num_threads > 0, "need at least one worker thread");
  const bool ca_mem =
      SelectionFor(level).mem == MemModelKind::kCycleAccurate;
  const BatchPlan plan = PlanParallelBatch(
      apps.size(), num_threads,
      ca_mem && IntraEligible(nullptr, cfg), cfg.parallel.mode);
  ParallelBatchResult batch;
  batch.results.resize(apps.size());
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool& pool = ThreadPool::Shared();
  if (plan.threads_per_app > 1) {
    // Joiners are spread across lanes; grow the pool once, up front, so
    // every lane's task-graph workers can actually run concurrently.
    pool.EnsureWorkers(plan.app_lanes * plan.threads_per_app - 1);
  }
  pool.ParallelFor(apps.size(), plan.app_lanes, [&](std::size_t i) {
    if (plan.threads_per_app > 1) {
      ParallelDetailedOptions popt;
      popt.num_threads = plan.threads_per_app;
      popt.slack = 1;  // deterministic mode: bit-identical to serial
      batch.results[i] = RunParallelDetailed(apps[i], cfg, level, popt);
    } else {
      batch.results[i] = RunSimulation(apps[i], cfg, level);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  batch.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return batch;
}

namespace {

/// One isolated app run: injection arming, bounded retry, failure→outcome
/// classification. Never throws when isolation is on.
void RunOneIsolated(const Application& app, const GpuConfig& cfg,
                    SimLevel level, const BatchOptions& options,
                    unsigned intra_threads, SimResult* result,
                    AppOutcome* outcome) {
  for (unsigned attempt = 0; ; ++attempt) {
    outcome->attempts = attempt + 1;
    try {
      // Trace-ingestion faults apply per attempt so a corrupt plan fails
      // loudly here, inside the isolation boundary.
      const Application* target = &app;
      Application faulted;
      if (options.fault_plan != nullptr && options.fault_plan->AnyTrace()) {
        faulted = InjectTraceFaults(app, *options.fault_plan);
        target = &faulted;
      }
      if (intra_threads > 1) {
        // Only planned when IntraEligible (no fault plan, no degradation),
        // so skipping the resilient Simulator wrapper drops nothing.
        ParallelDetailedOptions popt;
        popt.num_threads = intra_threads;
        popt.slack = 1;  // deterministic mode: bit-identical to serial
        *result = RunParallelDetailed(*target, cfg, level, popt);
      } else {
        Simulator sim(*target, cfg, level);
        sim.ArmFaultPlan(options.fault_plan);
        *result = sim.Run();
      }
      outcome->status = result->degrades.empty() ? AppStatus::kOk
                                                 : AppStatus::kDegraded;
      outcome->error.clear();
      return;
    } catch (const SimError& e) {
      outcome->error = e.what();
      outcome->status = AppStatus::kFailed;
      if (const auto* hang = dynamic_cast<const SimHangError*>(&e)) {
        outcome->dump_path = hang->dump_path();
        if (hang->kind() == SimHangError::Kind::kWallClock) {
          outcome->status = AppStatus::kTimedOut;
          // A wall budget is spent; retrying would only burn another one.
          return;
        }
      }
      if (attempt >= options.max_retries) return;
    }
  }
}

}  // namespace

ParallelBatchResult RunAppsParallel(const std::vector<Application>& apps,
                                    const GpuConfig& cfg, SimLevel level,
                                    unsigned num_threads,
                                    const BatchOptions& options) {
  SS_CHECK(num_threads > 0, "need at least one worker thread");
  if (!options.isolate_failures) {
    SS_CHECK(options.fault_plan == nullptr && options.max_retries == 0,
             "batch fault injection and retry require isolate_failures");
    return RunAppsParallel(apps, cfg, level, num_threads);
  }
  const bool ca_mem =
      SelectionFor(level).mem == MemModelKind::kCycleAccurate;
  const BatchPlan plan = PlanParallelBatch(
      apps.size(), num_threads,
      ca_mem && IntraEligible(&options, cfg), cfg.parallel.mode);
  ParallelBatchResult batch;
  batch.results.resize(apps.size());
  batch.statuses.resize(apps.size());
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool& pool = ThreadPool::Shared();
  if (plan.threads_per_app > 1) {
    pool.EnsureWorkers(plan.app_lanes * plan.threads_per_app - 1);
  }
  pool.ParallelFor(apps.size(), plan.app_lanes, [&](std::size_t i) {
    // Name the result even when the first kernel never completes, so
    // failed entries are attributable in reports.
    batch.results[i].app = apps[i].name;
    batch.results[i].simulator = ToString(level);
    RunOneIsolated(apps[i], cfg, level, options, plan.threads_per_app,
                   &batch.results[i], &batch.statuses[i]);
  });
  const auto t1 = std::chrono::steady_clock::now();
  batch.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return batch;
}

namespace {

/// Simulates one SM's statically assigned share of a kernel to completion,
/// starting at `start`; returns the SM's local finish time.
Cycle RunSmShare(SmCore& sm, const KernelTrace& kernel,
                 std::deque<CtaId>& pending, Cycle start) {
  const KernelInfo& info = kernel.info();
  Cycle now = start;
  while (!pending.empty() || !sm.Idle()) {
    while (!pending.empty() && sm.CanTakeCta(info)) {
      sm.LaunchCta(kernel, pending.front());
      pending.pop_front();
    }
    const bool progressed = sm.Tick(now);
    if (progressed) {
      ++now;
      continue;
    }
    const Cycle wake = sm.NextWake();
    if (wake == kNever) {
      SS_CHECK(pending.empty() && sm.Idle(),
               "SM-parallel simulation wedged on kernel '" + info.name + "'");
      break;
    }
    now = std::max(now + 1, wake);
  }
  return now;
}

}  // namespace

SimResult RunSmParallelMemory(const Application& app, const GpuConfig& cfg,
                              unsigned num_threads) {
  SS_CHECK(num_threads > 0, "need at least one worker thread");
  const auto t0 = std::chrono::steady_clock::now();
  // The cold-sharded profile is thread-count independent, so caching it is
  // exact; memo-off runs rebuild from scratch for honest A/B timing.
  if (cfg.memo.enabled) {
    ProfileCache::Global().SetMaxEntries(cfg.memo.max_entries);
  }
  std::shared_ptr<const MemProfile> profile =
      cfg.memo.enabled
          ? ProfileCache::Global()
                .GetOrBuild(app, cfg, /*parallel_builder=*/true, num_threads)
                .profile
          : std::make_shared<const MemProfile>(
                BuildMemProfileParallel(app, cfg, num_threads));
  const ModelSelection sel = SelectionFor(SimLevel::kSwiftSimMemory);
  AnalyticalMemModel mem_model(cfg, profile.get());

  // Independent SMs: the analytical memory path shares no mutable state.
  std::vector<std::unique_ptr<SmCore>> sms;
  sms.reserve(cfg.num_sms);
  for (unsigned s = 0; s < cfg.num_sms; ++s) {
    sms.push_back(
        std::make_unique<SmCore>(cfg, sel, s, &mem_model, [](SmId) {}));
  }
  MetricsGatherer gatherer;
  for (const auto& sm : sms) RegisterSmMetrics(gatherer, *sm);

  SimResult result;
  result.app = app.name;
  result.simulator = ToString(SimLevel::kSwiftSimMemory) + "+sm-parallel";
  Cycle clock = 0;
  ThreadPool& pool = ThreadPool::Shared();
  for (const auto& kernel : app.kernels) {
    const KernelInfo& info = kernel->info();
    // Static round-robin pre-assignment (documented approximation of the
    // greedy dispatcher; required for SM independence).
    std::vector<std::deque<CtaId>> assignment(cfg.num_sms);
    for (CtaId c = 0; c < info.num_ctas; ++c) {
      assignment[c % cfg.num_sms].push_back(c);
    }
    const unsigned active_sms =
        std::min<unsigned>(cfg.num_sms, info.num_ctas);
    for (auto& sm : sms) sm->OnKernelStart(active_sms);
    std::uint64_t instrs_before = 0;
    for (const auto& sm : sms) instrs_before += sm->stats().issued_instrs;
    std::vector<Cycle> finish(cfg.num_sms, clock);
    pool.ParallelFor(cfg.num_sms, num_threads, [&](std::size_t s) {
      if (assignment[s].empty()) return;
      finish[s] = RunSmShare(*sms[s], *kernel, assignment[s], clock);
    });

    Cycle kernel_end = clock;
    for (Cycle f : finish) kernel_end = std::max(kernel_end, f);
    KernelResult kr;
    kr.name = info.name;
    kr.cycles = kernel_end - clock;
    for (const auto& sm : sms) kr.instructions += sm->stats().issued_instrs;
    kr.instructions -= instrs_before;
    result.kernels.push_back(kr);
    clock = kernel_end;  // kernel boundary = global barrier
  }
  result.total_cycles = clock;
  for (const auto& sm : sms) {
    result.instructions += sm->stats().issued_instrs;
  }
  result.metrics = gatherer.Snapshot();
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

}  // namespace swiftsim
