#include "swiftsim/memo_cache.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/status.h"

namespace swiftsim {

std::optional<LaunchRecord> MemoCache::TryReplay(const MemoKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return std::nullopt;
  return it->second.rec;
}

void MemoCache::RecordLaunch(const MemoKey& key, LaunchRecord rec,
                             bool exact, unsigned min_repeats,
                             double epsilon) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[key];
  if (e.ready) return;  // already promoted (e.g. a racing driver)
  ++e.simulated;
  if (exact) {
    e.rec = std::move(rec);
    e.ready = true;
    return;
  }
  // Convergence mode: promote once the last two simulated launches agree
  // within epsilon relative cycles (and at least min_repeats ran). The
  // promoted record is the latest launch — the converged steady state.
  const bool converged =
      e.simulated >= min_repeats && e.prev_cycles > 0 &&
      std::fabs(static_cast<double>(rec.cycles) -
                static_cast<double>(e.prev_cycles)) <=
          epsilon * static_cast<double>(e.prev_cycles);
  e.prev_cycles = rec.cycles;
  if (converged) {
    e.rec = std::move(rec);
    e.ready = true;
  }
}

std::size_t MemoCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MemoCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

namespace {
constexpr char kMemoFileMagic[] = "swiftsim-memo-v1";
}  // namespace

void MemoCache::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  SS_CHECK(out.good(), "cannot open memo cache file '" + path + "'");
  out << kMemoFileMagic << "\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    if (!entry.ready) continue;
    out << key.kernel_fp.hi << " " << key.kernel_fp.lo << " "
        << key.cfg_hash << " " << key.context << " "
        << static_cast<unsigned>(key.level) << " " << entry.rec.cycles
        << " " << entry.rec.instructions << " "
        << entry.rec.metric_deltas.size() << "\n";
    for (const auto& [name, value] : entry.rec.metric_deltas) {
      out << name << " " << value << "\n";
    }
  }
  SS_CHECK(out.good(), "error writing memo cache file '" + path + "'");
}

void MemoCache::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot read memo cache file '" + path + "'");
  std::string magic;
  std::getline(in, magic);
  SS_CHECK(magic == kMemoFileMagic,
           "memo cache file '" + path + "' has unknown format '" + magic +
               "'");
  std::lock_guard<std::mutex> lock(mu_);
  MemoKey key;
  unsigned level = 0;
  std::size_t ndeltas = 0;
  while (in >> key.kernel_fp.hi >> key.kernel_fp.lo >> key.cfg_hash >>
         key.context >> level) {
    Entry entry;
    entry.ready = true;
    SS_CHECK(in >> entry.rec.cycles >> entry.rec.instructions >> ndeltas,
             "truncated memo cache file '" + path + "'");
    key.level = static_cast<std::uint8_t>(level);
    entry.rec.metric_deltas.reserve(ndeltas);
    for (std::size_t i = 0; i < ndeltas; ++i) {
      std::string name;
      std::uint64_t value = 0;
      SS_CHECK(in >> name >> value,
               "truncated memo cache file '" + path + "'");
      entry.rec.metric_deltas.emplace_back(std::move(name), value);
    }
    entries_.emplace(key, std::move(entry));  // existing entries win
  }
}

MemoCache& MemoCache::Global() {
  static MemoCache* cache = new MemoCache();
  return *cache;
}

ProfileCache::Fetch ProfileCache::GetOrBuild(const Application& app,
                                             const GpuConfig& cfg,
                                             bool parallel_builder,
                                             unsigned num_threads) {
  const auto t0 = std::chrono::steady_clock::now();
  Key key;
  key.app_fp = FingerprintApplication(app);
  key.geometry = MemProfileGeometryHash(cfg);
  key.parallel = parallel_builder;
  Fetch fetch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      fetch.profile = it->second;
      fetch.hit = true;
    }
  }
  if (!fetch.profile) {
    // Build outside the lock: concurrent batch drivers (RunAppsParallel)
    // must not serialize distinct apps' pre-passes. Racing builders of
    // the same key waste work but stay correct — first insert wins.
    auto built = std::make_shared<const MemProfile>(
        parallel_builder ? BuildMemProfileParallel(app, cfg, num_threads)
                         : BuildMemProfile(app, cfg));
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = entries_.emplace(key, std::move(built));
    ++misses_;
    fetch.profile = it->second;
  }
  const auto t1 = std::chrono::steady_clock::now();
  fetch.seconds = std::chrono::duration<double>(t1 - t0).count();
  return fetch;
}

std::size_t ProfileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t ProfileCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ProfileCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void ProfileCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

ProfileCache& ProfileCache::Global() {
  static ProfileCache* cache = new ProfileCache();
  return *cache;
}

bool MemoReplayApplicable(const GpuConfig& cfg, SimLevel level) {
  if (SelectionFor(level).mem == MemModelKind::kAnalytical) return true;
  return cfg.memo.detailed_convergence;
}

SimResult RunApplicationMemo(const Application& app, const GpuConfig& cfg,
                             SimLevel level, const MemProfile* profile,
                             MemoCache& cache) {
  GpuModel model(cfg, SelectionFor(level), profile);

  struct {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t replayed_cycles = 0;
    std::uint64_t replayed_instrs = 0;
  } stats;
  model.metrics().Register("memo", "hits", &stats.hits);
  model.metrics().Register("memo", "misses", &stats.misses);
  model.metrics().Register("memo", "replayed_cycles",
                           &stats.replayed_cycles);
  model.metrics().Register("memo", "replayed_instrs",
                           &stats.replayed_instrs);

  const bool exact = SelectionFor(level).mem == MemModelKind::kAnalytical;
  MemoKey key;
  key.cfg_hash = cfg.CanonicalHash();
  key.context = FingerprintApplication(app).Fold();
  key.level = static_cast<std::uint8_t>(level);

  // Repeated launches share the KernelTrace object; fingerprint each
  // distinct object once.
  std::map<const KernelTrace*, Fingerprint> fp_of;

  SimResult result;
  result.app = app.name;
  result.kernels.reserve(app.kernels.size());
  std::map<std::string, std::uint64_t> replayed_deltas;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& kernel : app.kernels) {
    const auto [fit, inserted] = fp_of.emplace(kernel.get(), Fingerprint{});
    if (inserted) fit->second = FingerprintKernel(*kernel);
    key.kernel_fp = fit->second;

    if (auto rec = cache.TryReplay(key)) {
      model.SyncClock(model.now() + rec->cycles);
      KernelResult kr;
      kr.name = kernel->info().name;
      kr.cycles = rec->cycles;
      kr.instructions = rec->instructions;
      result.kernels.push_back(kr);
      for (const auto& [name, value] : rec->metric_deltas) {
        replayed_deltas[name] += value;
      }
      ++stats.hits;
      stats.replayed_cycles += rec->cycles;
      stats.replayed_instrs += rec->instructions;
      continue;
    }
    ++stats.misses;
    const auto before = model.metrics().Snapshot();
    const std::uint64_t instrs_before = model.TotalIssuedInstrs();
    const Cycle cycles = model.RunKernel(*kernel);
    KernelResult kr;
    kr.name = kernel->info().name;
    kr.cycles = cycles;
    kr.instructions = model.TotalIssuedInstrs() - instrs_before;
    result.kernels.push_back(kr);

    LaunchRecord rec;
    rec.cycles = cycles;
    rec.instructions = kr.instructions;
    const auto after = model.metrics().Snapshot();
    for (const auto& [name, value] : after) {
      if (name.rfind("memo.", 0) == 0) continue;  // driver, not launch
      const auto bit = before.find(name);
      const std::uint64_t delta =
          value - (bit != before.end() ? bit->second : 0);
      if (delta != 0) rec.metric_deltas.emplace_back(name, delta);
    }
    cache.RecordLaunch(key, std::move(rec), exact,
                       cfg.memo.convergence_min_repeats,
                       cfg.memo.convergence_epsilon);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.total_cycles = model.now();
  result.instructions = model.TotalIssuedInstrs() + stats.replayed_instrs;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.metrics = model.metrics().Snapshot();
  for (const auto& [name, value] : replayed_deltas) {
    result.metrics[name] += value;
  }
  return result;
}

}  // namespace swiftsim
