#include "swiftsim/memo_cache.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include <unistd.h>

#include "common/status.h"

namespace swiftsim {

std::uint64_t MemoCache::ApproxBytes(const MemoKey& /*key*/,
                                     const Entry& entry) {
  std::uint64_t bytes = sizeof(MemoKey) + sizeof(Entry);
  for (const auto& [name, value] : entry.rec.metric_deltas) {
    bytes += name.size() + sizeof(value) + sizeof(std::string);
  }
  return bytes;
}

void MemoCache::EnforceLimitsLocked() {
  const auto over = [&] {
    return (max_entries_ != 0 && entries_.size() > max_entries_) ||
           (max_bytes_ != 0 && total_bytes_ > max_bytes_);
  };
  while (over() && !entries_.empty()) {
    // Victim: fewest replays, then least recently used. A frequently
    // replayed entry saves a full simulation every hit; a never-hit entry
    // only occupies memory.
    auto victim = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.replays < victim->second.replays ||
          (it->second.replays == victim->second.replays &&
           it->second.last_use < victim->second.last_use)) {
        victim = it;
      }
    }
    total_bytes_ -= victim->second.approx_bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

std::optional<LaunchRecord> MemoCache::TryReplay(const MemoKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return std::nullopt;
  ++it->second.replays;
  it->second.last_use = ++use_clock_;
  return it->second.rec;
}

void MemoCache::RecordLaunch(const MemoKey& key, LaunchRecord rec,
                             bool exact, unsigned min_repeats,
                             double epsilon) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[key];
  total_bytes_ -= e.approx_bytes;
  e.last_use = ++use_clock_;
  const auto finish = [&] {
    e.approx_bytes = ApproxBytes(key, e);
    total_bytes_ += e.approx_bytes;
    EnforceLimitsLocked();
  };
  if (e.ready) {  // already promoted (e.g. a racing driver)
    finish();
    return;
  }
  ++e.simulated;
  if (exact) {
    e.rec = std::move(rec);
    e.ready = true;
    finish();
    return;
  }
  // Convergence mode: promote once the last two simulated launches agree
  // within epsilon relative cycles (and at least min_repeats ran). The
  // promoted record is the latest launch — the converged steady state.
  const bool converged =
      e.simulated >= min_repeats && e.prev_cycles > 0 &&
      std::fabs(static_cast<double>(rec.cycles) -
                static_cast<double>(e.prev_cycles)) <=
          epsilon * static_cast<double>(e.prev_cycles);
  e.prev_cycles = rec.cycles;
  if (converged) {
    e.rec = std::move(rec);
    e.ready = true;
  }
  finish();
}

void MemoCache::SetLimits(std::uint64_t max_entries, std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = max_entries;
  max_bytes_ = max_bytes;
  EnforceLimitsLocked();
}

std::size_t MemoCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t MemoCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

std::uint64_t MemoCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void MemoCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  total_bytes_ = 0;
}

namespace {
constexpr char kMemoFileMagic[] = "swiftsim-memo-v1";
}  // namespace

void MemoCache::SaveToFile(const std::string& path) const {
  // Write-temp-then-rename, like the compact trace cache: a reader (or a
  // daemon loading on startup) never sees a torn file, and a crashed save
  // leaves the previous snapshot intact. The temp name is made unique per
  // process and call so concurrent savers cannot clobber each other's
  // in-progress file — last rename wins with a complete snapshot.
  static std::atomic<std::uint64_t> save_seq{0};
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << static_cast<long>(::getpid()) << "."
           << save_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    SS_CHECK(out.good(), "cannot open memo cache file '" + tmp + "'");
    out << kMemoFileMagic << "\n";
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [key, entry] : entries_) {
        if (!entry.ready) continue;
        out << key.kernel_fp.hi << " " << key.kernel_fp.lo << " "
            << key.cfg_hash << " " << key.context << " "
            << static_cast<unsigned>(key.level) << " " << entry.rec.cycles
            << " " << entry.rec.instructions << " "
            << entry.rec.metric_deltas.size() << "\n";
        for (const auto& [name, value] : entry.rec.metric_deltas) {
          out << name << " " << value << "\n";
        }
      }
    }
    SS_CHECK(out.good(), "error writing memo cache file '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    SS_CHECK(false, "rename '" + tmp + "' -> '" + path + "' failed");
  }
}

void MemoCache::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot read memo cache file '" + path + "'");
  std::string magic;
  std::getline(in, magic);
  SS_CHECK(magic == kMemoFileMagic,
           "memo cache file '" + path + "' has unknown format '" + magic +
               "'");
  std::lock_guard<std::mutex> lock(mu_);
  MemoKey key;
  unsigned level = 0;
  std::size_t ndeltas = 0;
  while (in >> key.kernel_fp.hi >> key.kernel_fp.lo >> key.cfg_hash >>
         key.context >> level) {
    Entry entry;
    entry.ready = true;
    SS_CHECK(in >> entry.rec.cycles >> entry.rec.instructions >> ndeltas,
             "truncated memo cache file '" + path + "'");
    key.level = static_cast<std::uint8_t>(level);
    entry.rec.metric_deltas.reserve(ndeltas);
    for (std::size_t i = 0; i < ndeltas; ++i) {
      std::string name;
      std::uint64_t value = 0;
      SS_CHECK(in >> name >> value,
               "truncated memo cache file '" + path + "'");
      entry.rec.metric_deltas.emplace_back(std::move(name), value);
    }
    entry.approx_bytes = ApproxBytes(key, entry);
    const auto [it, inserted] =
        entries_.emplace(key, std::move(entry));  // existing entries win
    if (inserted) total_bytes_ += it->second.approx_bytes;
  }
  EnforceLimitsLocked();
}

MemoCache& MemoCache::Global() {
  static MemoCache* cache = new MemoCache();
  return *cache;
}

ProfileCache::Fetch ProfileCache::GetOrBuild(const Application& app,
                                             const GpuConfig& cfg,
                                             bool parallel_builder,
                                             unsigned num_threads) {
  const auto t0 = std::chrono::steady_clock::now();
  Key key;
  key.app_fp = FingerprintApplication(app);
  key.geometry = MemProfileGeometryHash(cfg);
  key.parallel = parallel_builder;
  Fetch fetch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_use = ++use_clock_;
      fetch.profile = it->second.profile;
      fetch.hit = true;
    }
  }
  if (!fetch.profile) {
    // Build outside the lock: concurrent batch drivers (RunAppsParallel)
    // must not serialize distinct apps' pre-passes. Racing builders of
    // the same key waste work but stay correct — first insert wins.
    auto built = std::make_shared<const MemProfile>(
        parallel_builder ? BuildMemProfileParallel(app, cfg, num_threads)
                         : BuildMemProfile(app, cfg));
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = entries_.emplace(key, Slot{});
    if (inserted) it->second.profile = std::move(built);
    it->second.last_use = ++use_clock_;
    ++misses_;
    fetch.profile = it->second.profile;
    EnforceLimitLocked();
  }
  const auto t1 = std::chrono::steady_clock::now();
  fetch.seconds = std::chrono::duration<double>(t1 - t0).count();
  return fetch;
}

std::size_t ProfileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t ProfileCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ProfileCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ProfileCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void ProfileCache::SetMaxEntries(std::uint64_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = max_entries;
  EnforceLimitLocked();
}

void ProfileCache::EnforceLimitLocked() {
  while (max_entries_ != 0 && entries_.size() > max_entries_) {
    auto victim = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);  // shared_ptr keeps in-use profiles alive
    ++evictions_;
  }
}

void ProfileCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

ProfileCache& ProfileCache::Global() {
  static ProfileCache* cache = new ProfileCache();
  return *cache;
}

bool MemoReplayApplicable(const GpuConfig& cfg, SimLevel level) {
  if (SelectionFor(level).mem == MemModelKind::kAnalytical) return true;
  return cfg.memo.detailed_convergence;
}

SimResult RunApplicationMemo(const Application& app, const GpuConfig& cfg,
                             SimLevel level, const MemProfile* profile,
                             MemoCache& cache) {
  cache.SetLimits(cfg.memo.max_entries, cfg.memo.max_bytes);
  const std::uint64_t evictions_before = cache.evictions();
  GpuModel model(cfg, SelectionFor(level), profile);

  struct {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t replayed_cycles = 0;
    std::uint64_t replayed_instrs = 0;
  } stats;
  model.metrics().Register("memo", "hits", &stats.hits);
  model.metrics().Register("memo", "misses", &stats.misses);
  model.metrics().Register("memo", "replayed_cycles",
                           &stats.replayed_cycles);
  model.metrics().Register("memo", "replayed_instrs",
                           &stats.replayed_instrs);

  const bool exact = SelectionFor(level).mem == MemModelKind::kAnalytical;
  MemoKey key;
  key.cfg_hash = cfg.CanonicalHash();
  key.context = FingerprintApplication(app).Fold();
  key.level = static_cast<std::uint8_t>(level);

  // Repeated launches share the KernelTrace object; fingerprint each
  // distinct object once.
  std::map<const KernelTrace*, Fingerprint> fp_of;

  SimResult result;
  result.app = app.name;
  result.kernels.reserve(app.kernels.size());
  std::map<std::string, std::uint64_t> replayed_deltas;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& kernel : app.kernels) {
    const auto [fit, inserted] = fp_of.emplace(kernel.get(), Fingerprint{});
    if (inserted) fit->second = FingerprintKernel(*kernel);
    key.kernel_fp = fit->second;

    if (auto rec = cache.TryReplay(key)) {
      model.SyncClock(model.now() + rec->cycles);
      KernelResult kr;
      kr.name = kernel->info().name;
      kr.cycles = rec->cycles;
      kr.instructions = rec->instructions;
      result.kernels.push_back(kr);
      for (const auto& [name, value] : rec->metric_deltas) {
        replayed_deltas[name] += value;
      }
      ++stats.hits;
      stats.replayed_cycles += rec->cycles;
      stats.replayed_instrs += rec->instructions;
      continue;
    }
    ++stats.misses;
    const auto before = model.metrics().Snapshot();
    const std::uint64_t instrs_before = model.TotalIssuedInstrs();
    const Cycle cycles = model.RunKernel(*kernel);
    KernelResult kr;
    kr.name = kernel->info().name;
    kr.cycles = cycles;
    kr.instructions = model.TotalIssuedInstrs() - instrs_before;
    result.kernels.push_back(kr);

    LaunchRecord rec;
    rec.cycles = cycles;
    rec.instructions = kr.instructions;
    const auto after = model.metrics().Snapshot();
    for (const auto& [name, value] : after) {
      if (name.rfind("memo.", 0) == 0) continue;  // driver, not launch
      const auto bit = before.find(name);
      const std::uint64_t delta =
          value - (bit != before.end() ? bit->second : 0);
      if (delta != 0) rec.metric_deltas.emplace_back(name, delta);
    }
    cache.RecordLaunch(key, std::move(rec), exact,
                       cfg.memo.convergence_min_repeats,
                       cfg.memo.convergence_epsilon);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.total_cycles = model.now();
  result.instructions = model.TotalIssuedInstrs() + stats.replayed_instrs;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.metrics = model.metrics().Snapshot();
  for (const auto& [name, value] : replayed_deltas) {
    result.metrics[name] += value;
  }
  // Eviction telemetry as a per-run delta: the cache is process-global,
  // so absolute counts would leak earlier runs into this result.
  result.metrics["memo.evictions"] = cache.evictions() - evictions_before;
  return result;
}

}  // namespace swiftsim
