// Task-graph parallel cycle-accurate simulation (DESIGN.md §12): the SMs
// of one GpuModel are partitioned into per-worker *clusters* (contention
// domains — each owns its SMs' L1s, coalescers and SPSC memory ports), and
// each simulated window becomes one round of a dependency task graph:
//
//   cluster[0..C) tick span  ──unlock──▶  memory drain  ──▶  coordinator
//
// executed by a work-stealing scheduler (common/task_graph.h) instead of a
// per-window std::barrier. Workers that finish their cluster steal other
// clusters' work; the last finisher runs the memory drain and the
// coordinator (clock advance, cycle-skip jumps, kernel transitions, CTA
// dispatch) inline and re-arms the next round — no futex parking on the
// per-cycle path, which is what collapsed the old slack-window protocol's
// throughput as threads grew.
//
// At slack == 1 (the default) every round is one cycle and the mutation
// schedule is exactly the serial loop's: results are bit-identical to
// RunSimulation for any worker and cluster count. At slack > 1 memory
// responses are delivered up to slack-1 cycles late and CTA dispatch
// happens only at window boundaries — a bounded, documented approximation
// bought for fewer synchronization rounds.
#pragma once

#include "config/gpu_config.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "trace/kernel.h"

namespace swiftsim {

struct ParallelDetailedOptions {
  unsigned num_threads = 0;  // 0 = hardware concurrency
  Cycle slack = 1;           // window length in cycles; 1 = exact
  /// SM clusters (contention domains). 0 derives the count from the thread
  /// and SM counts: one cluster per worker, capped at the SM count. More
  /// clusters than workers improves steal-balancing at slightly more
  /// scheduling work per round; results are identical either way.
  unsigned clusters = 0;
  /// Chaos scenario armed on the sharded model (DESIGN.md §11); must
  /// outlive the run. Arming one disables memo replay for the run —
  /// replayed launches would dodge injection.
  FaultHooks* fault = nullptr;
};

/// Runs `app` through a cycle-accurate-memory level (kSilicon, kDetailed
/// or kSwiftSimBasic) with SMs sharded across the shared thread pool.
/// Rejects analytical-memory levels and slack == 0.
SimResult RunParallelDetailed(const Application& app, const GpuConfig& cfg,
                              SimLevel level,
                              const ParallelDetailedOptions& opt = {});

}  // namespace swiftsim
