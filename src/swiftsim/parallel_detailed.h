// Bounded-slack parallel cycle-accurate simulation (DESIGN.md §7): the SMs
// of one GpuModel are partitioned across shard threads that advance their
// local clocks up to `slack` cycles between barriers, while the shared
// L2/NoC/DRAM is ticked by a single coordinator (the barrier's completion
// step). SM→memory traffic crosses threads through bounded per-SM SPSC
// ports stamped with the issue cycle.
//
// At slack == 1 (the default) every window is one cycle and the schedule
// is exactly the serial loop's: results are bit-identical to RunSimulation
// for any thread count. At slack > 1 memory responses are delivered up to
// slack-1 cycles late and CTA dispatch happens only at window boundaries —
// a bounded, documented approximation bought for fewer barriers.
#pragma once

#include "config/gpu_config.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "trace/kernel.h"

namespace swiftsim {

struct ParallelDetailedOptions {
  unsigned num_threads = 0;  // 0 = hardware concurrency
  Cycle slack = 1;           // window length in cycles; 1 = exact
  /// Chaos scenario armed on the sharded model (DESIGN.md §11); must
  /// outlive the run. Arming one disables memo replay for the run —
  /// replayed launches would dodge injection.
  FaultHooks* fault = nullptr;
};

/// Runs `app` through a cycle-accurate-memory level (kSilicon, kDetailed
/// or kSwiftSimBasic) with SMs sharded across the shared thread pool.
/// Rejects analytical-memory levels and slack == 0.
SimResult RunParallelDetailed(const Application& app, const GpuConfig& cfg,
                              SimLevel level,
                              const ParallelDetailedOptions& opt = {});

}  // namespace swiftsim
