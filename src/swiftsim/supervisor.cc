#include "swiftsim/supervisor.h"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <set>
#include <sstream>
#include <thread>

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/status.h"

namespace swiftsim::service {
namespace {

// Current supervised worker pid for the daemon's signal forwarder (a
// handler may only touch async-signal-safe state).
std::atomic<long> g_worker_pid{-1};

bool ReadLineFd(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buffer, 0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (buffer->empty()) return false;
      line->swap(*buffer);  // final unterminated line
      buffer->clear();
      return true;
    }
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
}

bool WriteAllFd(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // dead pipe — the entry stays pending for replay
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Responses come from EncodeResponse and are always well-formed JSON; a
/// parse failure just means "no usable id".
std::string ResponseLineId(const std::string& line) {
  try {
    const JsonValue v = ParseJson(line);
    const JsonValue* id = v.Find("id");
    if (id != nullptr && id->is_string()) return id->AsString();
  } catch (const SimError&) {
  }
  return "";
}

}  // namespace

std::string RequestLineId(const std::string& line, const Limits& limits) {
  Request req;
  ErrorCode err = ErrorCode::kBadRequest;
  std::string msg;
  std::string id;
  if (ParseRequestLine(line, limits, &req, &err, &msg, &id)) {
    return req.op == Op::kSimulate ? req.job.id : req.id;
  }
  return id;  // whatever id the malformed line carried — the worker echoes it
}

long SupervisedWorkerPid() { return g_worker_pid.load(); }

Supervisor::Supervisor(SupervisorOptions opt, WorkerMain worker_main)
    : opt_(std::move(opt)), worker_main_(std::move(worker_main)) {}

void Supervisor::OpenJournal() {
  if (opt_.job_journal.empty()) return;
  journal_ = std::make_unique<Journal>();
  JournalRecovery rec;
  try {
    journal_->Open(opt_.job_journal, /*truncate=*/false, Journal::Options{},
                   &rec);
  } catch (const SimError& e) {
    // Not a journal (or unreadable): quarantine and start fresh — the
    // journal is advisory, losing it never blocks serving.
    QuarantineCorruptFile(opt_.job_journal, e.what());
    journal_ = std::make_unique<Journal>();
    journal_->Open(opt_.job_journal, /*truncate=*/true, Journal::Options{});
    return;
  }
  // Orphan disposition: A-records without a matching D are jobs a dead
  // supervisor process had in flight. Their clients went down with that
  // process's transport, so replaying them would answer nobody — count
  // and log them, then rotate the segment empty.
  std::set<std::uint64_t> open;
  for (const std::string& r : rec.records) {
    std::istringstream in(r);
    std::string tag;
    std::uint64_t seq = 0;
    in >> tag >> seq;
    if (in.fail()) continue;
    if (tag == "A") {
      open.insert(seq);
    } else if (tag == "D") {
      open.erase(seq);
    }  // "R" marks a consumed crash retry; no state to rebuild here
  }
  stats_.orphaned = open.size();
  if (!rec.records.empty()) {
    if (!open.empty()) {
      SS_LOG(kWarning) << "supervisor: dropping " << open.size()
                       << " orphaned in-flight jobs journaled by a dead "
                          "supervisor in "
                       << opt_.job_journal;
    }
    journal_->Rotate({});
  }
}

void Supervisor::OnClientLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  Pending p;
  p.seq = next_seq_++;
  p.id = RequestLineId(line, opt_.worker.limits);
  p.line = line;
  if (journal_) journal_->Append("A " + std::to_string(p.seq) + " " + line);
  pending_.push_back(std::move(p));
  SendToWorkerLocked(&pending_.back());
}

bool Supervisor::SendToWorkerLocked(Pending* p) {
  if (worker_in_fd_ < 0) return false;  // between incarnations
  if (!WriteAllFd(worker_in_fd_, p->line + "\n")) return false;
  p->sent_incarnation = incarnation_;
  return true;
}

void Supervisor::SpawnWorker() {
  int req[2];
  int resp[2];
  SS_CHECK(::pipe(req) == 0 && ::pipe(resp) == 0, "supervisor: pipe failed");
  ServiceOptions wopt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    wopt = opt_.worker;
    wopt.supervised = true;
    wopt.sup_restarts = stats_.restarts;
    wopt.sup_jobs_replayed = stats_.jobs_replayed;
    wopt.sup_retries = stats_.retries;
    wopt.sup_journal_bytes = journal_ ? journal_->bytes() : 0;
  }
  const pid_t pid = ::fork();
  SS_CHECK(pid >= 0, "supervisor: fork failed");
  if (pid == 0) {
    ::close(req[1]);
    ::close(resp[0]);
    int rc = 1;
    try {
      rc = worker_main_(req[0], resp[1], wopt);
    } catch (...) {
      rc = 1;
    }
    ::_Exit(rc);  // never unwind into supervisor state from the child
  }
  ::close(req[0]);
  ::close(resp[1]);
  if (!opt_.worker_pid_file.empty()) {
    std::FILE* f = std::fopen(opt_.worker_pid_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%ld\n", static_cast<long>(pid));
      std::fclose(f);
    }
  }
  g_worker_pid.store(static_cast<long>(pid));

  std::lock_guard<std::mutex> lock(mu_);
  ++incarnation_;
  worker_pid_ = static_cast<long>(pid);
  worker_in_fd_ = req[1];
  worker_out_fd_ = resp[0];
  // Replay in arrival order. Lines a dead incarnation had in flight count
  // as replays (their crash budget was charged in HandleCrash); lines that
  // never reached a worker resend free.
  for (Pending& p : pending_) {
    const bool was_sent = p.sent_incarnation != 0;
    if (SendToWorkerLocked(&p) && was_sent) ++stats_.jobs_replayed;
  }
  if (client_eof_ && worker_in_fd_ >= 0) {
    ::close(worker_in_fd_);  // propagate the EOF so the worker drains
    worker_in_fd_ = -1;
  }
}

void Supervisor::HandleCrash(
    const std::function<void(const std::string&)>& write_line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Pending> keep;
  keep.reserve(pending_.size());
  for (Pending& p : pending_) {
    if (p.sent_incarnation != incarnation_) {
      keep.push_back(std::move(p));  // never reached the dead worker
      continue;
    }
    ++p.crash_retries;
    if (p.crash_retries > opt_.max_job_retries) {
      Response r;
      r.id = p.id;
      r.ok = false;
      r.error = ErrorCode::kWorkerCrashed;
      r.error_message =
          "worker process died while this job was in flight (" +
          std::to_string(p.crash_retries) + " attempts); retry budget " +
          std::to_string(opt_.max_job_retries) + " exhausted";
      r.status = "worker_crashed";
      write_line(EncodeResponse(r));
      if (journal_) journal_->Append("D " + std::to_string(p.seq));
      ++stats_.crashed_jobs;
    } else {
      if (journal_) journal_->Append("R " + std::to_string(p.seq));
      ++stats_.retries;
      keep.push_back(std::move(p));
    }
  }
  pending_ = std::move(keep);
}

void Supervisor::FailPending(
    const std::function<void(const std::string&)>& write_line,
    const std::string& why) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Pending& p : pending_) {
    Response r;
    r.id = p.id;
    r.ok = false;
    r.error = ErrorCode::kWorkerCrashed;
    r.error_message = why;
    r.status = "worker_crashed";
    write_line(EncodeResponse(r));
    if (journal_) journal_->Append("D " + std::to_string(p.seq));
    ++stats_.crashed_jobs;
  }
  pending_.clear();
}

int Supervisor::Serve(
    const std::function<bool(std::string*)>& read_line,
    const std::function<void(const std::string&)>& write_line) {
  std::signal(SIGPIPE, SIG_IGN);  // worker death mid-write must not kill us
  OpenJournal();

  // The reader lives until the client closes its end of the transport;
  // lines arriving between incarnations park in pending_ for replay.
  std::thread reader([this, &read_line] {
    std::string line;
    while (read_line(&line)) OnClientLine(line);
    std::lock_guard<std::mutex> lock(mu_);
    client_eof_ = true;
    if (worker_in_fd_ >= 0) {
      ::close(worker_in_fd_);
      worker_in_fd_ = -1;
    }
  });

  int exit_code = 0;
  Rng rng(opt_.backoff_seed);
  for (;;) {
    SpawnWorker();
    int out_fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out_fd = worker_out_fd_;
    }
    // Pump worker responses until its pipe closes (clean exit or crash).
    std::string buffer;
    std::string line;
    while (ReadLineFd(out_fd, &buffer, &line)) {
      const std::string id = ResponseLineId(line);
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
          if (it->sent_incarnation == incarnation_ && it->id == id) {
            if (journal_) journal_->Append("D " + std::to_string(it->seq));
            pending_.erase(it);
            break;
          }
        }
      }
      write_line(line);
    }

    long pid = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pid = worker_pid_;
      worker_pid_ = -1;
      ::close(worker_out_fd_);
      worker_out_fd_ = -1;
      if (worker_in_fd_ >= 0) {
        ::close(worker_in_fd_);
        worker_in_fd_ = -1;
      }
    }
    g_worker_pid.store(-1);
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid), &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // Shutdown op or client-EOF drain: the worker answered everything it
      // admitted before exiting; anything still pending can never be.
      FailPending(write_line, "worker exited while the job was pending");
      break;
    }
    std::size_t in_flight = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight = pending_.size();
    }
    SS_LOG(kWarning) << "supervisor: worker pid " << pid << " died ("
                     << (WIFSIGNALED(status)
                             ? "signal " + std::to_string(WTERMSIG(status))
                             : "exit " +
                                   std::to_string(WIFEXITED(status)
                                                      ? WEXITSTATUS(status)
                                                      : -1))
                     << "), pending=" << in_flight;
    HandleCrash(write_line);
    std::uint64_t restarts = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      restarts = ++stats_.restarts;
    }
    if (restarts > opt_.max_restarts) {
      FailPending(write_line, "supervisor restart budget (" +
                                  std::to_string(opt_.max_restarts) +
                                  ") exhausted");
      exit_code = 1;
      break;
    }
    // Jittered exponential backoff: full-jitter halves thundering-herd
    // alignment while the deterministic seed keeps tests repeatable.
    const double base =
        std::min(opt_.backoff_max_ms,
                 opt_.backoff_initial_ms *
                     std::pow(2.0, static_cast<double>(restarts - 1)));
    const double ms = base * (0.5 + 0.5 * rng.NextDouble());
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.journal_bytes = journal_ ? journal_->bytes() : 0;
  }
  // The reader returns when the client closes the transport — for the
  // stdin daemon that is the session's natural end.
  reader.join();
  return exit_code;
}

SupervisorStats Supervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SupervisorStats s = stats_;
  if (journal_) s.journal_bytes = journal_->bytes();
  return s;
}

}  // namespace swiftsim::service
