// Daemon supervision (DESIGN.md §16): keeps `swiftsimd` serving across
// worker-process death.
//
// The supervisor owns the client transport (one NDJSON line in, one line
// out) and runs the actual SimulationService in a forked worker process
// connected by two pipes. Every client line is journaled and tracked as a
// pending entry until its response comes back; when the worker dies —
// SIGKILL, OOM, a crash bug — the supervisor:
//
//   1. restarts it under a bounded restart budget with jittered
//      exponential backoff (deterministically seeded, so tests can pin
//      the schedule);
//   2. replays every pending line to the fresh worker: lines that were
//      never sent resend free, lines that were in flight on the dead
//      incarnation consume one unit of their per-job crash-retry budget
//      (a job that keeps killing workers is the likely murder weapon);
//   3. answers jobs whose budget is exhausted with the typed
//      `worker_crashed` error instead of silence.
//
// State machine per incarnation:  spawn → replay pending → pump
// (client lines forwarded as they arrive, worker responses matched to
// pending by id and forwarded) → worker exit. A clean exit (status 0 —
// shutdown op or client EOF drain) ends the session; anything else is a
// crash and loops back to spawn until the restart budget runs out, at
// which point every pending job is answered `worker_crashed` and the
// supervisor exits non-zero.
//
// Fork safety: the parent never constructs a SimulationService, a
// ThreadPool or any simulation state — workers must be able to fork at
// any moment, and inherited pool threads do not survive fork. All
// simulation happens in `worker_main` inside the child.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/journal.h"
#include "swiftsim/service.h"

namespace swiftsim::service {

struct SupervisorOptions {
  /// Worker restarts allowed per supervisor lifetime; exceeding it fails
  /// all pending jobs and exits non-zero.
  unsigned max_restarts = 5;
  /// Crash-retry budget per job: how many worker deaths one in-flight
  /// job may survive before it is answered `worker_crashed`.
  unsigned max_job_retries = 1;
  /// Jittered exponential backoff between restarts:
  /// min(initial * 2^k, max) * uniform[0.5, 1.0). Deterministic per seed.
  double backoff_initial_ms = 50;
  double backoff_max_ms = 2000;
  std::uint64_t backoff_seed = 0x5eed;
  /// Write-ahead journal of in-flight jobs ("" = in-memory tracking
  /// only). Entries found at startup are orphans of a dead supervisor:
  /// their clients are gone, so they are counted, logged and rotated
  /// away — never replayed to a client that cannot hear the answer.
  std::string job_journal;
  /// Current worker pid, rewritten on every spawn ("" = none). Chaos
  /// tests and the supervise smoke read it to aim their SIGKILL.
  std::string worker_pid_file;
  /// Copied into the worker's ServiceOptions snapshot fields at spawn.
  ServiceOptions worker;
};

struct SupervisorStats {
  std::uint64_t restarts = 0;       // worker respawns after a crash
  std::uint64_t jobs_replayed = 0;  // pending lines resent to a new worker
  std::uint64_t retries = 0;        // replays that consumed crash budget
  std::uint64_t crashed_jobs = 0;   // answered with `worker_crashed`
  std::uint64_t orphaned = 0;       // journal entries from a dead supervisor
  std::uint64_t journal_bytes = 0;
};

class Supervisor {
 public:
  /// Runs in the forked child with the request/response pipe ends and the
  /// worker ServiceOptions (supervision snapshot fields already filled).
  /// Its return value is the worker exit status; it must not return
  /// control to supervisor code paths (the implementation _Exit()s).
  using WorkerMain = std::function<int(int in_fd, int out_fd,
                                       const ServiceOptions& opt)>;

  Supervisor(SupervisorOptions opt, WorkerMain worker_main);

  /// Serves one client session over a line transport until clean worker
  /// exit or restart-budget exhaustion. Returns the process exit code.
  /// `read_line` is consumed from an internal thread that lives until the
  /// client closes its end of the transport.
  int Serve(const std::function<bool(std::string*)>& read_line,
            const std::function<void(const std::string&)>& write_line);

  SupervisorStats stats() const;

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::string id;          // as the worker will echo it
    std::string line;        // raw client line, replayed verbatim
    unsigned crash_retries = 0;
    /// Incarnation the line was last written to; 0 = never sent.
    std::uint64_t sent_incarnation = 0;
  };

  void OpenJournal();
  void OnClientLine(const std::string& line);
  bool SendToWorkerLocked(Pending* p);
  void SpawnWorker();
  /// Crash disposition for every line in flight on the dead incarnation:
  /// retry (stays pending, budget--) or `worker_crashed` to the client.
  void HandleCrash(const std::function<void(const std::string&)>& write_line);
  void FailPending(const std::function<void(const std::string&)>& write_line,
                   const std::string& why);

  SupervisorOptions opt_;
  WorkerMain worker_main_;
  std::unique_ptr<Journal> journal_;

  mutable std::mutex mu_;
  std::vector<Pending> pending_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t incarnation_ = 0;
  bool client_eof_ = false;
  int worker_in_fd_ = -1;   // supervisor → worker requests
  int worker_out_fd_ = -1;  // worker → supervisor responses
  long worker_pid_ = -1;
  SupervisorStats stats_;
};

/// Extracts the `id` a response/request line will correlate by: the
/// request's id field as the service itself would parse it ("" when the
/// line is malformed beyond an id). Exposed for tests.
std::string RequestLineId(const std::string& line, const Limits& limits);

/// Pid of the currently running supervised worker, -1 between
/// incarnations. Async-signal-safe to read — the daemon's SIGTERM/SIGINT
/// forwarder uses it from a signal handler.
long SupervisedWorkerPid();

}  // namespace swiftsim::service
