#include "swiftsim/parallel_detailed.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "swiftsim/memo_cache.h"
#include "trace/fingerprint.h"

namespace swiftsim {

SimResult RunParallelDetailed(const Application& app, const GpuConfig& cfg,
                              SimLevel level,
                              const ParallelDetailedOptions& opt) {
  const ModelSelection sel = SelectionFor(level);
  SS_CHECK(sel.mem == MemModelKind::kCycleAccurate,
           "parallel detailed mode shards the cycle-accurate memory path; "
           "use RunSmParallelMemory for analytical-memory levels");
  SS_CHECK(opt.slack >= 1, "slack window must be at least one cycle");
  const bool never_jump = sel.alu == AluModelKind::kCycleAccurate;
  const bool skip = never_jump && cfg.cycle_skip;
  const Cycle slack = opt.slack;

  const auto t0 = std::chrono::steady_clock::now();
  GpuModel model(cfg, sel);
  if (opt.fault != nullptr) model.ArmFaults(opt.fault);

  // Cross-launch memoization (DESIGN.md §10). This driver is cycle-
  // accurate, so replay is only ever approximate and requires the
  // convergence-mode opt-in on top of memo.enabled. Fault injection
  // disables replay: a replayed launch would dodge the armed plan.
  const bool memo_on = cfg.memo.enabled && cfg.memo.detailed_convergence &&
                       opt.fault == nullptr;
  MemoCache& memo_cache = MemoCache::Global();
  if (memo_on) memo_cache.SetLimits(cfg.memo.max_entries, cfg.memo.max_bytes);
  const std::uint64_t evictions_before = memo_cache.evictions();
  struct {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t replayed_cycles = 0;
    std::uint64_t replayed_instrs = 0;
  } memo_stats;
  if (memo_on) {
    model.metrics().Register("memo", "hits", &memo_stats.hits);
    model.metrics().Register("memo", "misses", &memo_stats.misses);
    model.metrics().Register("memo", "replayed_cycles",
                             &memo_stats.replayed_cycles);
    model.metrics().Register("memo", "replayed_instrs",
                             &memo_stats.replayed_instrs);
  }
  MemoKey memo_key;
  memo_key.cfg_hash = cfg.CanonicalHash();
  memo_key.context = FingerprintApplication(app).Fold();
  memo_key.level = static_cast<std::uint8_t>(level);
  std::map<const KernelTrace*, Fingerprint> fp_of;
  std::map<std::string, std::uint64_t> launch_before;
  std::map<std::string, std::uint64_t> replayed_deltas;

  SimResult result;
  result.app = app.name;
  result.simulator = ToString(level) + "+taskgraph";

  // Builds and stores the launch record for the kernel that just
  // completed, from the metric snapshot taken when it began.
  auto record_launch = [&](Cycle cycles, std::uint64_t instrs) {
    ++memo_stats.misses;
    LaunchRecord rec;
    rec.cycles = cycles;
    rec.instructions = instrs;
    const auto after = model.metrics().Snapshot();
    for (const auto& [name, value] : after) {
      if (name.rfind("memo.", 0) == 0) continue;  // driver, not launch
      const auto bit = launch_before.find(name);
      const std::uint64_t delta =
          value - (bit != launch_before.end() ? bit->second : 0);
      if (delta != 0) rec.metric_deltas.emplace_back(name, delta);
    }
    memo_cache.RecordLaunch(memo_key, std::move(rec), /*exact=*/false,
                            cfg.memo.convergence_min_repeats,
                            cfg.memo.convergence_epsilon);
  };

  unsigned threads = opt.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, cfg.num_sms);
  // Cluster count from thread and SM counts: one contention domain per
  // worker by default, never more clusters than SMs.
  const unsigned clusters =
      opt.clusters != 0 ? std::min(opt.clusters, cfg.num_sms) : threads;

  // Shared driver state. All of it is either written only by the
  // coordinator task (the sink of each round) or by exactly one cluster
  // task per round; the task graph's dependency edges order every access
  // (DESIGN.md §12).
  Cycle now = 0;
  Cycle kernel_start = 0;
  std::uint64_t instrs_before = 0;
  std::size_t kidx = 0;
  bool done = false;
  std::vector<unsigned char> cluster_progress(clusters, 0);

  // Begins kernels starting at kidx until one has work to simulate.
  // Degenerate kernels (e.g. zero CTAs) complete instantly and are
  // recorded without running a window. Launch overhead lands inside the
  // kernel's own cycle count, as in the serial driver.
  auto begin_kernels_until_work = [&] {
    while (kidx < app.kernels.size()) {
      const KernelTrace& kernel = *app.kernels[kidx];
      if (memo_on) {
        const auto [fit, inserted] =
            fp_of.emplace(&kernel, Fingerprint{});
        if (inserted) fit->second = FingerprintKernel(kernel);
        memo_key.kernel_fp = fit->second;
        if (auto rec = memo_cache.TryReplay(memo_key)) {
          // Converged launch: advance the clock past it without touching
          // the model, exactly as the serial memo driver does.
          now += rec->cycles;
          KernelResult kr;
          kr.name = kernel.info().name;
          kr.cycles = rec->cycles;
          kr.instructions = rec->instructions;
          result.kernels.push_back(kr);
          for (const auto& [name, value] : rec->metric_deltas) {
            replayed_deltas[name] += value;
          }
          ++memo_stats.hits;
          memo_stats.replayed_cycles += rec->cycles;
          memo_stats.replayed_instrs += rec->instructions;
          ++kidx;
          continue;
        }
        launch_before = model.metrics().Snapshot();
      }
      model.SyncClock(now);
      kernel_start = now;
      instrs_before = model.TotalIssuedInstrs();
      model.BeginKernel(kernel);
      now = model.now();
      model.AssignPendingCtas();
      if (!model.KernelDone()) return;
      KernelResult kr;
      kr.name = kernel.info().name;
      kr.cycles = now - kernel_start;
      result.kernels.push_back(kr);
      if (memo_on) {
        record_launch(kr.cycles, model.TotalIssuedInstrs() - instrs_before);
      }
      ++kidx;
    }
    done = true;
  };
  begin_kernels_until_work();

  // --- The per-round task graph (DESIGN.md §12) ---------------------------
  //
  //   cluster[k] tick span ──▶ memory drain ──▶ coordinator
  //
  // One round simulates one slack window. Cluster tasks advance disjoint
  // SM ranges through the window's cycles; the memory-drain task injects
  // their port traffic (SM order, backpressure-exact) and ticks NoC, L2
  // and DRAM; the coordinator advances the clock (including cycle-skip
  // jumps), handles kernel transitions and CTA dispatch, then the round
  // re-arms — or Finish() ends the run. At slack=1 the resulting mutation
  // schedule is exactly the serial loop's, so results stay bit-identical
  // for any worker/cluster count.
  TaskGraph graph;

  // Contiguous, balanced SM ranges — one per cluster (contention domain).
  std::vector<int> cluster_tasks;
  cluster_tasks.reserve(clusters);
  for (unsigned k = 0; k < clusters; ++k) {
    const unsigned base = cfg.num_sms / clusters;
    const unsigned extra = cfg.num_sms % clusters;
    const unsigned first = k * base + std::min(k, extra);
    const unsigned last = first + base + (k < extra ? 1 : 0);
    cluster_tasks.push_back(graph.AddTask(
        "cluster" + std::to_string(k), [&, k, first, last] {
          bool progressed = false;
          for (Cycle w = 0; w < slack; ++w) {
            progressed |= model.TickSmRange(first, last, now + w);
          }
          cluster_progress[k] = progressed ? 1 : 0;
        }));
  }

  const int mem_task = graph.AddTask("mem-drain", [&] {
    for (Cycle w = 0; w < slack; ++w) model.TickSharedMemory(now + w);
  });
  for (const int c : cluster_tasks) graph.AddEdge(c, mem_task);

  const int coord_task = graph.AddTask("coordinator", [&] {
    bool progressed = false;
    for (unsigned char p : cluster_progress) progressed |= p != 0;
    const bool mem_busy = !model.MemQuiescent();
    // Watchdog observation once per window, after the ticks (so a jump
    // landing's progress is already visible). A throw here (or in any
    // task) drains the round and rethrows from graph.Run().
    if (model.WatchdogEnabled()) model.WatchdogPoll(now + slack - 1);
    if (skip && !progressed) {
      // Event-calendar cycle skipping, exactly as in the serial loop:
      // jump over the no-op span beyond this window. The last ticked
      // memory cycle is now + slack - 1, so the calendar starts there;
      // at slack=1 the jump condition and span match the serial driver
      // cycle-for-cycle, preserving bit-identity. A completed kernel
      // must not draw a jump from a standing calendar entry (e.g. the
      // silicon DRAM refresh edge) — the window that reached
      // quiescence just advances past itself, as serially.
      if (model.KernelDone()) {
        now += slack;
      } else {
        Cycle wake = model.MinNextWake();
        wake = std::min(wake, model.MemNextEventAfter(now + slack - 1));
        if (wake == kNever) model.ThrowWedged(now + slack - 1);
        if (wake > now + slack) {
          model.FastForward(wake - (now + slack));
          now = wake;
        } else {
          now += slack;
        }
      }
    } else if (never_jump || progressed || mem_busy) {
      now += slack;
    } else {
      // Hybrid fast-forward, exactly as in the serial loop: nothing can
      // change before the earliest future SM event.
      const Cycle wake = model.MinNextWake();
      if (wake == kNever) {
        if (!model.KernelDone()) model.ThrowWedged(now + slack - 1);
      } else {
        now = std::max(now + slack, wake);
      }
    }
    if (model.KernelDone()) {
      KernelResult kr;
      kr.name = app.kernels[kidx]->info().name;
      kr.cycles = now - kernel_start;
      kr.instructions = model.TotalIssuedInstrs() - instrs_before;
      result.kernels.push_back(kr);
      if (memo_on) record_launch(kr.cycles, kr.instructions);
      ++kidx;
      begin_kernels_until_work();
      if (done) graph.Finish();
      return;
    }
    model.AssignPendingCtas();
  });
  graph.AddEdge(mem_task, coord_task);

  if (!done) {
    ThreadPool& pool = ThreadPool::Shared();
    // Workers beyond the caller join from the pool; they are a concurrency
    // hint, not a requirement (any participant can finish a round alone by
    // stealing), so growing the pool only buys parallelism.
    if (threads > 1) pool.EnsureWorkers(threads - 1);
    graph.Run(pool, threads);
  }

  model.SyncClock(now);
  result.total_cycles = now;
  result.instructions = model.TotalIssuedInstrs() +
                        memo_stats.replayed_instrs;
  result.metrics = model.metrics().Snapshot();
  // Scheduler telemetry rides the driver.* namespace, which bit-identity
  // suites exclude (like the skip counters, it describes how the run was
  // executed, not what was simulated).
  result.metrics["driver.tg_rounds"] = graph.rounds();
  result.metrics["driver.tg_tasks_executed"] = graph.executed();
  result.metrics["driver.tg_steals"] = graph.steals();
  result.metrics["driver.tg_clusters"] = clusters;
  for (const auto& [name, value] : replayed_deltas) {
    result.metrics[name] += value;
  }
  if (memo_on) {
    // Per-run delta: the cache is process-global, so absolute state would
    // leak earlier runs into this result.
    result.metrics["memo.evictions"] =
        memo_cache.evictions() - evictions_before;
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

}  // namespace swiftsim
