// Config-driven fault-injection harness (DESIGN.md §11).
//
// A FaultPlan describes a deterministic chaos scenario: response delays,
// drop-then-retry (or drop-forever, the livelock fixture), warp-issue
// freezes, backpressure storms at the coordinator drains, and trace-record
// truncation/corruption at ingestion. FaultInjector implements the
// FaultHooks seam the cycle-accurate driver consults; every decision is a
// stateless hash of (seed, site, position), so the same plan produces the
// same faults regardless of thread count, tick order or wall clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "config/ini.h"
#include "mem/request.h"
#include "sim/fault_hooks.h"
#include "trace/kernel.h"

namespace swiftsim {

/// One chaos scenario. All probabilities in [0, 1]; a field left at its
/// default disables that fault axis.
struct FaultPlan {
  std::string name = "none";
  std::uint64_t seed = 1;

  // Memory-response delay: hold a delivered response for `resp_delay_cycles`.
  double resp_delay_p = 0;
  Cycle resp_delay_cycles = 0;

  // Drop-then-retry: swallow a response, redeliver after `resp_retry_cycles`,
  // re-rolling the drop up to `resp_max_drops` times. max_drops == 0 with
  // drop_p > 0 means drop forever — the deliberate-livelock fixture the
  // watchdog must catch.
  double resp_drop_p = 0;
  Cycle resp_retry_cycles = 0;
  unsigned resp_max_drops = 0;

  // Warp-issue freeze: whole windows of `issue_stall_cycles` during which an
  // SM is not ticked (responses still deliver).
  double issue_stall_p = 0;
  Cycle issue_stall_cycles = 0;

  // Backpressure storm: whole windows of `storm_cycles` during which the
  // coordinator's SM-port and L2 drains are blocked (queue-full upward).
  double storm_p = 0;
  Cycle storm_cycles = 0;

  // Trace-ingestion faults (InjectTraceFaults): per-kernel probability of
  // dropping non-barrier body instructions (stays valid, completes) or of
  // structurally corrupting the trace (must fail loudly at validation).
  double trace_truncate_p = 0;
  double trace_corrupt_p = 0;

  /// Any driver-side axis armed? (Trace faults act at ingestion instead.)
  bool AnyRuntime() const {
    return resp_delay_p > 0 || resp_drop_p > 0 || issue_stall_p > 0 ||
           storm_p > 0;
  }
  bool AnyTrace() const { return trace_truncate_p > 0 || trace_corrupt_p > 0; }
  bool Any() const { return AnyRuntime() || AnyTrace(); }

  /// Throws SimError on out-of-range probabilities or missing cycle spans.
  void Validate() const;

  /// Keys are read from the [fault] section (fault.seed, fault.resp_drop_p,
  /// ...); absent keys keep their defaults.
  static FaultPlan FromIni(const IniFile& ini);
  static FaultPlan FromFile(const std::string& path);
};

/// FaultHooks implementation over a FaultPlan. Per-SM custody lists are
/// owned by the shard that ticks the SM; the cross-thread surface is one
/// atomic count (AnyHeld) — NextDueAfter is only called while shards are
/// parked at the window barrier.
class FaultInjector : public FaultHooks {
 public:
  FaultInjector(const FaultPlan& plan, unsigned num_sms);

  bool OnResponse(SmId sm, const MemResponse& resp, Cycle now) override;
  void CollectDue(SmId sm, Cycle now, std::vector<MemResponse>* out) override;
  bool FreezeIssue(SmId sm, Cycle now) override;
  bool StormActive(Cycle now) override;
  bool AnyHeld() const override {
    return held_count_.load(std::memory_order_acquire) != 0;
  }
  Cycle NextDueAfter(Cycle now) const override;

  const FaultPlan& plan() const { return plan_; }

  // Telemetry (relaxed atomics; exact totals once the run has joined).
  std::uint64_t delayed() const { return delayed_.load(); }
  std::uint64_t dropped() const { return dropped_.load(); }
  std::uint64_t redelivered() const { return redelivered_.load(); }
  std::uint64_t freezes() const { return freezes_.load(); }

 private:
  struct Held {
    Cycle due = 0;  // kNever = drop-forever custody
    unsigned drops = 0;
    MemResponse resp;
  };

  /// Uniform [0,1) decision for (site, a, b) — stateless, so independent of
  /// evaluation order across threads.
  double Roll(std::uint64_t site, std::uint64_t a, std::uint64_t b) const;

  FaultPlan plan_;
  std::vector<std::vector<Held>> held_;  // indexed by SM, shard-owned
  std::atomic<std::size_t> held_count_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> redelivered_{0};
  std::atomic<std::uint64_t> freezes_{0};
};

/// Applies the plan's trace-fault axes to `app`, returning a rebuilt
/// application. Truncation drops non-barrier body instructions (the result
/// revalidates and still completes); corruption breaks a structural
/// invariant and therefore throws SimError here, at ingestion — loudly,
/// with the kernel named — rather than crashing the model later.
Application InjectTraceFaults(const Application& app, const FaultPlan& plan);

}  // namespace swiftsim
