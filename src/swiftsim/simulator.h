// Top-level entry points: run an application through any of the four
// simulator configurations (paper §IV-A3 plus the silicon oracle).
//
//   kSilicon         — detailed model + second-order effects; stands in
//                      for real-hardware cycles (DESIGN.md §2)
//   kDetailed        — the Accel-Sim-class cycle-accurate baseline
//   kSwiftSimBasic   — hybrid ALU model, simplified front-end
//   kSwiftSimMemory  — Basic + analytical memory model (runs the cache
//                      pre-pass automatically; its cost is included in the
//                      reported wall time)
#pragma once

#include <memory>

#include "config/gpu_config.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "swiftsim/fault_inject.h"
#include "trace/kernel.h"

namespace swiftsim {

/// One-shot simulation of an application. Deterministic for fixed inputs.
SimResult RunSimulation(const Application& app, const GpuConfig& cfg,
                        SimLevel level);

/// Reusable simulator handle (keeps the pre-pass profile so repeated runs
/// of the same application don't re-profile). With cfg.memo.enabled the
/// profile comes from the global ProfileCache and launches are replayed
/// from the global MemoCache where exact (DESIGN.md §10).
class Simulator {
 public:
  Simulator(const Application& app, const GpuConfig& cfg, SimLevel level);

  /// Runs a fresh GpuModel over the application. When a fault plan with
  /// runtime axes is armed, or cfg.degrade asks for retry/fallback, the
  /// resilient kernel-by-kernel driver is used instead of the memoized
  /// fast path (replayed launches would dodge injection entirely).
  SimResult Run();

  /// Arms a chaos scenario for subsequent Run() calls. `plan` must outlive
  /// the simulator; nullptr disarms. Trace axes are applied by the caller
  /// via InjectTraceFaults before construction.
  void ArmFaultPlan(const FaultPlan* plan) { fault_plan_ = plan; }

  SimLevel level() const { return level_; }
  const MemProfile* profile() const { return profile_.get(); }

 private:
  /// Kernel-by-kernel driver with bounded retry and optional analytical
  /// fallback (DESIGN.md §11): a kernel that keeps hanging or failing is
  /// re-run at analytical-memory level when cfg.degrade.on_hang is set,
  /// recorded as a DegradeEvent, and the detailed model resumes fresh for
  /// the remaining kernels. Rethrows when degradation is off or the
  /// fallback itself fails.
  SimResult RunResilient();

  const Application& app_;
  GpuConfig cfg_;
  SimLevel level_;
  const FaultPlan* fault_plan_ = nullptr;  // non-owning; nullptr = off
  // Analytical memory mode only; shared when the ProfileCache served it.
  std::shared_ptr<const MemProfile> profile_;
  double prepass_seconds_ = 0;
};

}  // namespace swiftsim
