#include "swiftsim/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/journal.h"
#include "common/json.h"
#include "common/status.h"
#include "common/stats.h"
#include "config/ini.h"
#include "config/presets.h"
#include "swiftsim/memo_cache.h"
#include "swiftsim/parallel_detailed.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim::service {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// The set of INI keys GpuConfig round-trips — FromIni silently ignores
/// unknown keys (sparse overrides), so the service must reject them itself
/// or a client typo becomes a silently-default simulation.
const std::set<std::string>& KnownConfigKeys() {
  static const std::set<std::string>* keys = [] {
    IniFile ini = IniFile::ParseString(GpuConfig().ToIniString());
    auto* s = new std::set<std::string>();
    for (const std::string& k : ini.Keys()) s->insert(k);
    return s;
  }();
  return *keys;
}

std::uint64_t MetricOrZero(const SimResult& res, const std::string& name) {
  auto it = res.metrics.find(name);
  return it == res.metrics.end() ? 0 : it->second;
}

bool CycleAccurateMemory(SimLevel level) {
  return SelectionFor(level).mem == MemModelKind::kCycleAccurate;
}

}  // namespace

const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadJson:
      return "bad_json";
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kUnknownOp:
      return "unknown_op";
    case ErrorCode::kUnknownWorkload:
      return "unknown_workload";
    case ErrorCode::kBadConfig:
      return "bad_config";
    case ErrorCode::kOversized:
      return "oversized";
    case ErrorCode::kQueueFull:
      return "queue_full";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kSimTimeout:
      return "timeout";
    case ErrorCode::kSimFailed:
      return "sim_failed";
    case ErrorCode::kWorkerCrashed:
      return "worker_crashed";
  }
  return "?";
}

SimLevel SimLevelFromString(const std::string& s) {
  if (s == "memory" || s == "swift-sim-memory") return SimLevel::kSwiftSimMemory;
  if (s == "basic" || s == "swift-sim-basic") return SimLevel::kSwiftSimBasic;
  if (s == "detailed" || s == "accel-sim-baseline") return SimLevel::kDetailed;
  if (s == "silicon") return SimLevel::kSilicon;
  throw SimError("unknown simulation level '" + s +
                 "' (expected memory|basic|detailed|silicon)");
}

bool ParseRequestLine(const std::string& line, const Limits& limits,
                      Request* out, ErrorCode* error,
                      std::string* error_message, std::string* id) {
  *out = Request{};
  id->clear();
  error_message->clear();

  if (line.size() > limits.max_line_bytes) {
    *error = ErrorCode::kOversized;
    std::ostringstream os;
    os << "request line of " << line.size() << " bytes exceeds the "
       << limits.max_line_bytes << "-byte limit";
    *error_message = os.str();
    return false;
  }

  JsonValue root;
  try {
    JsonLimits jl;
    jl.max_bytes = limits.max_line_bytes;
    root = ParseJson(line, jl);
  } catch (const SimError& e) {
    *error = ErrorCode::kBadJson;
    *error_message = e.what();
    return false;
  }
  if (!root.is_object()) {
    *error = ErrorCode::kBadJson;
    *error_message = "request must be a JSON object";
    return false;
  }

  // Recover the correlation id first so every later error can echo it.
  if (const JsonValue* v = root.Find("id"); v != nullptr && v->is_string()) {
    *id = v->AsString();
  }

  auto fail = [&](ErrorCode code, const std::string& msg) {
    *error = code;
    *error_message = msg;
    return false;
  };

  Request req;
  bool have_workload = false;
  try {
    for (const auto& [key, value] : root.Members()) {
      if (key == "op") {
        const std::string& op = value.AsString();
        if (op == "simulate") {
          req.op = Op::kSimulate;
        } else if (op == "ping") {
          req.op = Op::kPing;
        } else if (op == "stats") {
          req.op = Op::kStats;
        } else if (op == "shutdown") {
          req.op = Op::kShutdown;
        } else {
          return fail(ErrorCode::kUnknownOp, "unknown op '" + op + "'");
        }
      } else if (key == "id") {
        req.id = value.AsString();
        req.job.id = req.id;
      } else if (key == "workload") {
        req.job.workload = value.AsString();
        have_workload = true;
      } else if (key == "scale") {
        req.job.scale = value.AsDouble();
      } else if (key == "seed") {
        req.job.seed = value.AsUint();
      } else if (key == "iterations") {
        std::uint64_t it = value.AsUint();
        if (it == 0) return fail(ErrorCode::kBadRequest, "iterations must be >= 1");
        if (it > limits.max_iterations) {
          std::ostringstream os;
          os << "iterations " << it << " exceeds the limit of "
             << limits.max_iterations;
          return fail(ErrorCode::kOversized, os.str());
        }
        req.job.iterations = static_cast<unsigned>(it);
      } else if (key == "level") {
        req.job.level = SimLevelFromString(value.AsString());
      } else if (key == "preset") {
        req.job.preset = value.AsString();
      } else if (key == "config") {
        req.job.config_ini = value.AsString();
      } else if (key == "timeout_sec") {
        double t = value.AsDouble();
        if (t < 0) return fail(ErrorCode::kBadRequest, "timeout_sec must be >= 0");
        req.job.timeout_sec = t;
      } else {
        return fail(ErrorCode::kBadRequest, "unknown field '" + key + "'");
      }
    }
  } catch (const SimError& e) {
    // A typed-accessor mismatch (string where a number belongs, a level
    // name outside the vocabulary) is the client's malformed request.
    return fail(ErrorCode::kBadRequest, e.what());
  }

  if (req.op == Op::kSimulate) {
    if (!have_workload || req.job.workload.empty()) {
      return fail(ErrorCode::kBadRequest, "simulate requires a 'workload'");
    }
    if (!(req.job.scale > 0)) {
      return fail(ErrorCode::kBadRequest, "scale must be > 0");
    }
    if (req.job.scale > limits.max_scale) {
      std::ostringstream os;
      os << "scale " << req.job.scale << " exceeds the limit of "
         << limits.max_scale;
      return fail(ErrorCode::kOversized, os.str());
    }
  }

  *out = std::move(req);
  return true;
}

std::string EncodeResponse(const Response& r) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id").String(r.id);
  w.Key("ok").Bool(r.ok);
  if (!r.ok) {
    w.Key("error").String(ToString(r.error));
    w.Key("message").String(r.error_message);
    if (!r.status.empty()) w.Key("status").String(r.status);
    if (r.wall_seconds > 0) w.Key("wall_seconds").Double(r.wall_seconds);
  } else {
    w.Key("status").String(r.status);
    if (r.status == "ok" || r.status == "degraded") {
      w.Key("cycles").Uint(r.cycles);
      w.Key("instructions").Uint(r.instructions);
      w.Key("sim_seconds").Double(r.sim_seconds);
      w.Key("wall_seconds").Double(r.wall_seconds);
      w.Key("queue_seconds").Double(r.queue_seconds);
      w.Key("coalesced").Bool(r.coalesced);
      w.Key("memo_hits").Uint(r.memo_hits);
      w.Key("memo_misses").Uint(r.memo_misses);
      w.Key("memo_cycles_avoided").Uint(r.memo_cycles_avoided);
      w.Key("degrade_events").Uint(r.degrade_events);
    }
    if (!r.extra_json.empty()) w.Key("stats").Raw(r.extra_json);
  }
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// SimulationService
// ---------------------------------------------------------------------------

struct SimulationService::PendingJob {
  struct Waiter {
    Callback done;
    std::string id;
    Clock::time_point submit;
  };

  JobRequest job;
  GpuConfig cfg;
  CoalesceKey key;
  std::vector<Waiter> waiters;  // [0] = the job that started the simulation
};

SimulationService::SimulationService(ServiceOptions opt) : opt_(std::move(opt)) {
  unsigned threads = opt_.threads != 0 ? opt_.threads
                                       : std::max(1u, std::thread::hardware_concurrency());
  unsigned lanes_wanted = opt_.max_concurrent != 0 ? opt_.max_concurrent : threads;
  // Lanes are shaped once, for the cycle-accurate case (the expensive
  // shape); analytical-memory jobs simply run serially inside their lane.
  plan_ = PlanParallelBatch(lanes_wanted, threads, /*cycle_accurate_mem=*/true,
                            opt_.mode);
  queue_ = std::make_unique<BoundedQueue<std::shared_ptr<PendingJob>>>(
      opt_.queue_capacity);
  latencies_.reserve(kLatencyWindow);

  if (opt_.memo_max_entries != 0 || opt_.memo_max_bytes != 0) {
    MemoCache::Global().SetLimits(opt_.memo_max_entries, opt_.memo_max_bytes);
    if (opt_.memo_max_entries != 0) {
      ProfileCache::Global().SetMaxEntries(opt_.memo_max_entries);
    }
  }
  if (!opt_.memo_file.empty()) {
    std::ifstream probe(opt_.memo_file);
    if (probe.good()) {
      try {
        MemoCache::Global().LoadFromFile(opt_.memo_file);
      } catch (const SimError& e) {
        // A corrupt advisory cache is a cold start, not a startup failure:
        // quarantine it and serve from an empty cache (§16).
        QuarantineCorruptFile(opt_.memo_file, e.what());
      }
    }
  }

  // Lanes are dedicated threads that only wait and drive; the worker
  // budget lives on the shared pool, where every lane's nested parallel
  // work (trace builds, pre-passes, the task-graph driver) executes.
  ThreadPool::Shared().EnsureWorkers(plan_.app_lanes * plan_.threads_per_app);
  lanes_.reserve(plan_.app_lanes);
  for (unsigned i = 0; i < plan_.app_lanes; ++i) {
    lanes_.emplace_back([this] { LaneLoop(); });
  }
}

SimulationService::~SimulationService() {
  try {
    Stop();
  } catch (...) {
    // Destruction must not throw; a failed memo-file save is lost cache
    // warmth, not lost results.
  }
}

bool SimulationService::Submit(const JobRequest& job, Callback done,
                               Response* rejection) {
  auto reject = [&](ErrorCode code, const std::string& msg) {
    rejection->id = job.id;
    rejection->ok = false;
    rejection->error = code;
    rejection->error_message = msg;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return false;
  };

  // Limits apply to direct API callers too, not just the NDJSON path.
  if (!(job.scale > 0) || job.scale > opt_.limits.max_scale) {
    return reject(ErrorCode::kOversized, "scale out of range");
  }
  if (job.iterations == 0 || job.iterations > opt_.limits.max_iterations) {
    return reject(ErrorCode::kOversized, "iterations out of range");
  }
  try {
    WorkloadByName(job.workload);
  } catch (const SimError& e) {
    return reject(ErrorCode::kUnknownWorkload, e.what());
  }

  // Resolve preset + sparse INI overrides + service knobs into the full
  // config this job will simulate under; its canonical hash is the config
  // lane of the coalescing key, so jobs coalesce exactly when they would
  // simulate identically.
  GpuConfig cfg;
  try {
    cfg = job.preset.empty() ? GpuConfig() : PresetByName(job.preset);
    if (!job.config_ini.empty()) {
      IniFile ini = IniFile::ParseString(job.config_ini);
      const std::set<std::string>& known = KnownConfigKeys();
      for (const std::string& key : ini.Keys()) {
        if (known.find(key) == known.end()) {
          throw SimError("unknown config key '" + key + "'");
        }
      }
      cfg = GpuConfig::FromIni(ini, cfg);
    }
    if (!opt_.trace_cache_dir.empty()) cfg.trace.cache_dir = opt_.trace_cache_dir;
    cfg.watchdog.wall_seconds =
        job.timeout_sec >= 0 ? job.timeout_sec : opt_.default_timeout_sec;
    if (opt_.watchdog_cycles != 0) cfg.watchdog.stall_cycles = opt_.watchdog_cycles;
    // Degradation routes through the resilient driver, which bypasses the
    // memoized fast path — keep it an explicit opt-in.
    cfg.degrade.on_hang = opt_.degrade_on_hang;
    cfg.Validate();
  } catch (const SimError& e) {
    return reject(ErrorCode::kBadConfig, e.what());
  }

  CoalesceKey key;
  key.trace_key = WorkloadBuildKey(job.workload, {job.scale, job.seed});
  key.cfg_hash = cfg.CanonicalHash();
  key.iterations = job.iterations;
  key.level = static_cast<std::uint8_t>(job.level);

  PendingJob::Waiter waiter{std::move(done), job.id, Clock::now()};

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    rejection->id = job.id;
    rejection->ok = false;
    rejection->error = ErrorCode::kShuttingDown;
    rejection->error_message = "service is shutting down";
    ++stats_.rejected;
    return false;
  }
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    it->second->waiters.push_back(std::move(waiter));
    ++stats_.accepted;
    ++stats_.coalesced;
    return true;
  }
  auto pending = std::make_shared<PendingJob>();
  pending->job = job;
  pending->cfg = std::move(cfg);
  pending->key = key;
  pending->waiters.push_back(std::move(waiter));
  if (!queue_->TryPush(pending)) {
    rejection->id = job.id;
    rejection->ok = false;
    rejection->error = ErrorCode::kQueueFull;
    std::ostringstream os;
    os << "admission queue full (" << queue_->capacity() << " jobs)";
    rejection->error_message = os.str();
    ++stats_.rejected;
    return false;
  }
  inflight_.emplace(key, std::move(pending));
  ++stats_.accepted;
  return true;
}

Response SimulationService::SubmitAndWait(const JobRequest& job) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Response result;
  Response rejection;
  bool admitted = Submit(
      job,
      [&](const Response& r) {
        std::lock_guard<std::mutex> lock(mu);
        result = r;
        done = true;
        cv.notify_all();
      },
      &rejection);
  if (!admitted) return rejection;
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return result;
}

void SimulationService::LaneLoop() {
  std::shared_ptr<PendingJob> job;
  while (queue_->Pop(&job)) {
    ProcessJob(job);
    job.reset();
  }
}

void SimulationService::ProcessJob(const std::shared_ptr<PendingJob>& job) {
  {
    Clock::time_point start = Clock::now();
    Response base;
    RunJob(*job, &base);
    Clock::time_point end = Clock::now();

    std::vector<PendingJob::Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(job->key);
      waiters = std::move(job->waiters);
      if (base.ok) {
        ++stats_.completed;
        if (base.status == "degraded") ++stats_.degraded;
      } else if (base.error == ErrorCode::kSimTimeout) {
        ++stats_.timeouts;
      } else {
        ++stats_.failures;
      }
      stats_.memo_hits += base.memo_hits;
      stats_.memo_misses += base.memo_misses;
      stats_.memo_cycles_avoided += base.memo_cycles_avoided;
    }

    for (std::size_t i = 0; i < waiters.size(); ++i) {
      Response r = base;
      r.id = waiters[i].id;
      r.coalesced = i > 0;
      r.wall_seconds = SecondsBetween(waiters[i].submit, end);
      // A follower that attached mid-run spent no time queued.
      r.queue_seconds =
          std::max(0.0, SecondsBetween(waiters[i].submit, start));
      {
        std::lock_guard<std::mutex> lock(mu_);
        RecordLatency(r.wall_seconds);
      }
      try {
        waiters[i].done(r);
      } catch (...) {
        // A client callback failure must not take down the lane.
      }
    }
  }
}

void SimulationService::RunJob(PendingJob& job, Response* out) {
  try {
    std::shared_ptr<const Application> app = GetApp(job.job);
    Application repeated = job.job.iterations > 1
                               ? RepeatLaunches(*app, job.job.iterations)
                               : *app;

    SimResult res;
    if (plan_.threads_per_app > 1 && CycleAccurateMemory(job.job.level) &&
        !job.cfg.degrade.on_hang) {
      // Spare budget inside the lane: the slack=1 task-graph driver is
      // bit-identical to the serial simulator (DESIGN.md §12).
      ParallelDetailedOptions pd;
      pd.num_threads = plan_.threads_per_app;
      pd.slack = 1;
      res = RunParallelDetailed(repeated, job.cfg, job.job.level, pd);
    } else {
      Simulator sim(repeated, job.cfg, job.job.level);
      res = sim.Run();
    }

    out->ok = true;
    out->status = res.degrades.empty() ? "ok" : "degraded";
    out->cycles = res.total_cycles;
    out->instructions = res.instructions;
    out->sim_seconds = res.wall_seconds;
    out->memo_hits = MetricOrZero(res, "memo.hits");
    out->memo_misses = MetricOrZero(res, "memo.misses");
    out->memo_cycles_avoided = MetricOrZero(res, "memo.replayed_cycles");
    out->degrade_events = res.degrades.size();
  } catch (const SimHangError& e) {
    out->ok = false;
    out->error = ErrorCode::kSimTimeout;
    out->error_message = e.what();
    out->status = "timeout";
  } catch (const std::exception& e) {
    out->ok = false;
    out->error = ErrorCode::kSimFailed;
    out->error_message = e.what();
    out->status = "failed";
  }
}

std::shared_ptr<const Application> SimulationService::GetApp(
    const JobRequest& job) {
  Fingerprint key = WorkloadBuildKey(job.workload, {job.scale, job.seed});
  {
    std::lock_guard<std::mutex> lock(app_mu_);
    if (auto it = app_cache_.find(key); it != app_cache_.end()) {
      it->second.last_use = ++app_clock_;
      std::shared_ptr<const Application> app = it->second.app;
      std::lock_guard<std::mutex> slock(mu_);
      ++stats_.app_cache_hits;
      return app;
    }
  }

  bool disk_hit = false;
  TraceBuildOptions build;
  build.cache_dir = opt_.trace_cache_dir;
  Application built = BuildWorkloadCached(job.workload, {job.scale, job.seed},
                                          build, &disk_hit);
  auto app = std::make_shared<const Application>(std::move(built));
  {
    std::lock_guard<std::mutex> lock(app_mu_);
    AppSlot& slot = app_cache_[key];
    slot.app = app;
    slot.last_use = ++app_clock_;
    while (opt_.app_cache_entries != 0 &&
           app_cache_.size() > opt_.app_cache_entries) {
      auto victim = app_cache_.begin();
      for (auto it = app_cache_.begin(); it != app_cache_.end(); ++it) {
        if (it->second.last_use < victim->second.last_use) victim = it;
      }
      app_cache_.erase(victim);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.app_cache_misses;
    if (disk_hit) ++stats_.disk_trace_hits;
  }
  return app;
}

void SimulationService::RecordLatency(double seconds) {
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(seconds);
  } else {
    latencies_[latency_next_] = seconds;
  }
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

void SimulationService::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  queue_->Close();
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  if (!opt_.memo_file.empty()) {
    MemoCache::Global().SaveToFile(opt_.memo_file);
  }
}

ServiceStats SimulationService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string SimulationService::StatsJson() const {
  ServiceStats s;
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    lat = latencies_;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("accepted").Uint(s.accepted);
  w.Key("coalesced").Uint(s.coalesced);
  w.Key("rejected").Uint(s.rejected);
  w.Key("completed").Uint(s.completed);
  w.Key("degraded").Uint(s.degraded);
  w.Key("timeouts").Uint(s.timeouts);
  w.Key("failures").Uint(s.failures);
  w.Key("app_cache_hits").Uint(s.app_cache_hits);
  w.Key("app_cache_misses").Uint(s.app_cache_misses);
  w.Key("disk_trace_hits").Uint(s.disk_trace_hits);
  w.Key("memo_hits").Uint(s.memo_hits);
  w.Key("memo_misses").Uint(s.memo_misses);
  w.Key("memo_cycles_avoided").Uint(s.memo_cycles_avoided);
  // Supervision counters (§16): snapshots injected at worker spawn; all
  // zero when the daemon runs unsupervised.
  w.Key("supervised").Bool(opt_.supervised);
  w.Key("restarts").Uint(opt_.sup_restarts);
  w.Key("jobs_replayed").Uint(opt_.sup_jobs_replayed);
  w.Key("retries").Uint(opt_.sup_retries);
  w.Key("journal_bytes").Uint(opt_.sup_journal_bytes);
  w.Key("app_lanes").Uint(plan_.app_lanes);
  w.Key("threads_per_app").Uint(plan_.threads_per_app);
  w.Key("mode").String(swiftsim::ToString(plan_.chosen));
  w.Key("queue_capacity").Uint(queue_->capacity());
  w.Key("queue_depth").Uint(queue_->size());
  w.Key("memo_cache_entries").Uint(MemoCache::Global().size());
  w.Key("memo_cache_bytes").Uint(MemoCache::Global().bytes());
  w.Key("profile_cache_entries").Uint(ProfileCache::Global().size());
  w.Key("latency_samples").Uint(lat.size());
  if (!lat.empty()) {
    w.Key("latency_p50_sec").Double(Quantile(lat, 0.50));
    w.Key("latency_p95_sec").Double(Quantile(lat, 0.95));
    w.Key("latency_p99_sec").Double(Quantile(lat, 0.99));
  }
  w.EndObject();
  return w.str();
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

ServeResult ServeTransport(
    const std::function<bool(std::string*)>& read_line,
    const std::function<void(const std::string&)>& write_line,
    SimulationService& svc, bool stop_on_shutdown) {
  // Completion callbacks fire on worker lanes; the shared block serializes
  // writes and lets the loop drain every outstanding response before it
  // returns (the transport's streams outlive the loop, nothing else).
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::function<void(const std::string&)> write;
    std::uint64_t outstanding = 0;

    void Emit(const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      write(line);
    }
    void Done() {
      {
        std::lock_guard<std::mutex> lock(mu);
        --outstanding;
      }
      cv.notify_all();
    }
    void Drain() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return outstanding == 0; });
    }
  };
  auto sh = std::make_shared<Shared>();
  sh->write = write_line;

  ServeResult result;
  std::string line;
  while (read_line(&line)) {
    ++result.handled;
    if (line.empty()) continue;

    Request req;
    ErrorCode err;
    std::string msg;
    std::string id;
    if (!ParseRequestLine(line, svc.limits(), &req, &err, &msg, &id)) {
      Response r;
      r.id = id;
      r.ok = false;
      r.error = err;
      r.error_message = msg;
      sh->Emit(EncodeResponse(r));
      continue;
    }

    if (req.op == Op::kPing) {
      Response r;
      r.id = req.id;
      r.ok = true;
      r.status = "pong";
      sh->Emit(EncodeResponse(r));
      continue;
    }
    if (req.op == Op::kStats) {
      Response r;
      r.id = req.id;
      r.ok = true;
      r.status = "stats";
      r.extra_json = svc.StatsJson();
      sh->Emit(EncodeResponse(r));
      continue;
    }
    if (req.op == Op::kShutdown) {
      // Stop() drains every admitted job (their responses stream out while
      // it runs); the acknowledgement is written last so a client reading
      // until "shutting_down" sees every result.
      if (stop_on_shutdown) svc.Stop();
      sh->Drain();
      Response r;
      r.id = req.id;
      r.ok = true;
      r.status = "shutting_down";
      sh->Emit(EncodeResponse(r));
      result.shutdown = true;
      return result;
    }

    {
      std::lock_guard<std::mutex> lock(sh->mu);
      ++sh->outstanding;
    }
    Response rejection;
    bool admitted = svc.Submit(
        req.job,
        [sh](const Response& r) {
          sh->Emit(EncodeResponse(r));
          sh->Done();
        },
        &rejection);
    if (!admitted) {
      sh->Done();
      sh->Emit(EncodeResponse(rejection));
    }
  }
  sh->Drain();
  return result;
}

ServeResult ServeLines(std::istream& in, std::ostream& out,
                       SimulationService& svc) {
  return ServeTransport(
      [&in](std::string* line) {
        return static_cast<bool>(std::getline(in, *line));
      },
      [&out](const std::string& line) {
        out << line << '\n';
        out.flush();
      },
      svc);
}

}  // namespace swiftsim::service
