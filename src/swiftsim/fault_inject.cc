#include "swiftsim/fault_inject.h"

#include <algorithm>

#include "common/rng.h"
#include "common/status.h"
#include "sim/sm.h"  // kNever

namespace swiftsim {
namespace {

// Site tags keep the decision streams of different fault axes unrelated
// even when they hash the same (sm, position) pair.
constexpr std::uint64_t kSiteDelay = 0xde1a1ull;
constexpr std::uint64_t kSiteDrop = 0xd20bull;
constexpr std::uint64_t kSiteFreeze = 0xf2ee2eull;
constexpr std::uint64_t kSiteStorm = 0x5702ull;
constexpr std::uint64_t kSiteTruncate = 0x7241cull;
constexpr std::uint64_t kSiteCorrupt = 0xc0221ull;

std::uint64_t Mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  // splitmix-style avalanche over the packed key; Rng's own seeding adds a
  // second round, so nearby (a, b, c) triples give unrelated streams.
  std::uint64_t x = a * 0x9e3779b97f4a7c15ull + b;
  x ^= x >> 31;
  x = x * 0xbf58476d1ce4e5b9ull + c;
  return x ^ (x >> 29);
}

double PlanRoll(std::uint64_t seed, std::uint64_t site, std::uint64_t a,
                std::uint64_t b) {
  return Rng(seed ^ Mix(site, a, b)).NextDouble();
}

void CheckProb(double p, const char* name) {
  SS_CHECK(p >= 0 && p <= 1,
           std::string("fault plan: ") + name + " must be in [0, 1]");
}

}  // namespace

void FaultPlan::Validate() const {
  CheckProb(resp_delay_p, "resp_delay_p");
  CheckProb(resp_drop_p, "resp_drop_p");
  CheckProb(issue_stall_p, "issue_stall_p");
  CheckProb(storm_p, "storm_p");
  CheckProb(trace_truncate_p, "trace_truncate_p");
  CheckProb(trace_corrupt_p, "trace_corrupt_p");
  SS_CHECK(resp_delay_p == 0 || resp_delay_cycles > 0,
           "fault plan: resp_delay_p needs resp_delay_cycles > 0");
  SS_CHECK(issue_stall_p == 0 || issue_stall_cycles > 0,
           "fault plan: issue_stall_p needs issue_stall_cycles > 0");
  SS_CHECK(storm_p == 0 || storm_cycles > 0,
           "fault plan: storm_p needs storm_cycles > 0");
  SS_CHECK(resp_drop_p == 0 || resp_max_drops == 0 || resp_retry_cycles > 0,
           "fault plan: bounded resp_drop_p needs resp_retry_cycles > 0");
}

FaultPlan FaultPlan::FromIni(const IniFile& ini) {
  FaultPlan plan;
  plan.name = ini.GetString("fault.name", plan.name);
  plan.seed = ini.GetUint("fault.seed", plan.seed);
  plan.resp_delay_p = ini.GetDouble("fault.resp_delay_p", plan.resp_delay_p);
  plan.resp_delay_cycles =
      ini.GetUint("fault.resp_delay_cycles", plan.resp_delay_cycles);
  plan.resp_drop_p = ini.GetDouble("fault.resp_drop_p", plan.resp_drop_p);
  plan.resp_retry_cycles =
      ini.GetUint("fault.resp_retry_cycles", plan.resp_retry_cycles);
  plan.resp_max_drops = static_cast<unsigned>(
      ini.GetUint("fault.resp_max_drops", plan.resp_max_drops));
  plan.issue_stall_p = ini.GetDouble("fault.issue_stall_p", plan.issue_stall_p);
  plan.issue_stall_cycles =
      ini.GetUint("fault.issue_stall_cycles", plan.issue_stall_cycles);
  plan.storm_p = ini.GetDouble("fault.storm_p", plan.storm_p);
  plan.storm_cycles = ini.GetUint("fault.storm_cycles", plan.storm_cycles);
  plan.trace_truncate_p =
      ini.GetDouble("fault.trace_truncate_p", plan.trace_truncate_p);
  plan.trace_corrupt_p =
      ini.GetDouble("fault.trace_corrupt_p", plan.trace_corrupt_p);
  plan.Validate();
  return plan;
}

FaultPlan FaultPlan::FromFile(const std::string& path) {
  return FromIni(IniFile::ParseFile(path));
}

FaultInjector::FaultInjector(const FaultPlan& plan, unsigned num_sms)
    : plan_(plan), held_(num_sms) {
  plan_.Validate();
}

double FaultInjector::Roll(std::uint64_t site, std::uint64_t a,
                           std::uint64_t b) const {
  return PlanRoll(plan_.seed, site, a, b);
}

bool FaultInjector::OnResponse(SmId sm, const MemResponse& resp, Cycle now) {
  // Drop takes precedence over delay: a response can only be in one kind of
  // custody, and drops are the harsher fault.
  if (plan_.resp_drop_p > 0 &&
      Roll(kSiteDrop, sm, resp.id) < plan_.resp_drop_p) {
    Held h;
    h.resp = resp;
    h.drops = 1;
    h.due = plan_.resp_max_drops == 0 ? kNever : now + plan_.resp_retry_cycles;
    held_[sm].push_back(h);
    held_count_.fetch_add(1, std::memory_order_acq_rel);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (plan_.resp_delay_p > 0 &&
      Roll(kSiteDelay, sm, resp.id) < plan_.resp_delay_p) {
    Held h;
    h.resp = resp;
    h.due = now + plan_.resp_delay_cycles;
    held_[sm].push_back(h);
    held_count_.fetch_add(1, std::memory_order_acq_rel);
    delayed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void FaultInjector::CollectDue(SmId sm, Cycle now,
                               std::vector<MemResponse>* out) {
  auto& list = held_[sm];
  if (list.empty()) return;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    Held& h = list[i];
    if (h.due > now) {
      list[kept++] = h;
      continue;
    }
    // Due. A dropped response re-rolls the drop (attempt-indexed so the
    // stream differs per retry) until the bound is exhausted.
    if (h.drops > 0 && h.drops < plan_.resp_max_drops &&
        Roll(kSiteDrop, sm, h.resp.id + (std::uint64_t{h.drops} << 48)) <
            plan_.resp_drop_p) {
      ++h.drops;
      h.due = now + plan_.resp_retry_cycles;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      list[kept++] = h;
      continue;
    }
    out->push_back(h.resp);
    redelivered_.fetch_add(1, std::memory_order_relaxed);
    held_count_.fetch_sub(1, std::memory_order_acq_rel);
  }
  list.resize(kept);
}

bool FaultInjector::FreezeIssue(SmId sm, Cycle now) {
  if (plan_.issue_stall_p <= 0) return false;
  const Cycle window = now / plan_.issue_stall_cycles;
  if (Roll(kSiteFreeze, sm, window) < plan_.issue_stall_p) {
    freezes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::StormActive(Cycle now) {
  if (plan_.storm_p <= 0) return false;
  const Cycle window = now / plan_.storm_cycles;
  return Roll(kSiteStorm, 0, window) < plan_.storm_p;
}

Cycle FaultInjector::NextDueAfter(Cycle now) const {
  Cycle earliest = kNever;
  for (const auto& list : held_) {
    for (const Held& h : list) {
      if (h.due == kNever) continue;
      // An already-due entry is collected on the next tick — the calendar
      // must not jump past it.
      earliest = std::min(earliest, h.due <= now ? now + 1 : h.due);
    }
  }
  return earliest;
}

namespace {

/// Drops non-barrier, non-exit body instructions from `warp`, keeping every
/// other survivor (deterministic, no RNG state threaded through).
WarpTrace TruncateWarp(const WarpTrace& warp) {
  WarpTrace out;
  out.reserve(warp.size() / 2 + 2);
  std::size_t body_idx = 0;
  WarpCursor cur(warp);
  while (!cur.done()) {
    TraceInstr ins = cur.NextDecoded();
    if (IsBarrier(ins.op) || IsExit(ins.op)) {
      out.push_back(std::move(ins));
      continue;
    }
    if ((body_idx++ & 1) == 0) out.push_back(std::move(ins));
  }
  return out;
}

}  // namespace

Application InjectTraceFaults(const Application& app, const FaultPlan& plan) {
  if (!plan.AnyTrace()) return app;
  Application out;
  out.name = app.name;
  out.kernels.reserve(app.kernels.size());
  for (std::size_t k = 0; k < app.kernels.size(); ++k) {
    const KernelTrace& kernel = *app.kernels[k];
    const bool truncate =
        plan.trace_truncate_p > 0 &&
        PlanRoll(plan.seed, kSiteTruncate, k, 0) < plan.trace_truncate_p;
    const bool corrupt =
        plan.trace_corrupt_p > 0 &&
        PlanRoll(plan.seed, kSiteCorrupt, k, 0) < plan.trace_corrupt_p;
    if (!truncate && !corrupt) {
      out.kernels.push_back(app.kernels[k]);
      continue;
    }
    std::vector<CtaTrace> variants;
    variants.reserve(kernel.num_variants());
    for (std::size_t v = 0; v < kernel.num_variants(); ++v) {
      CtaTrace cta;
      cta.warps.reserve(kernel.variant(v).warps.size());
      for (const WarpTrace& warp : kernel.variant(v).warps) {
        cta.warps.push_back(truncate ? TruncateWarp(warp) : warp);
      }
      variants.push_back(std::move(cta));
    }
    if (corrupt && !variants.empty() && !variants[0].warps.empty()) {
      // Structural corruption: an instruction after the final EXIT breaks
      // the "ends with EXIT exactly once" invariant, so validation below
      // rejects the record the way a torn trace file would be rejected.
      variants[0].warps[0].push_back(TraceInstr{});
    }
    auto rebuilt =
        std::make_shared<KernelTrace>(kernel.info(), std::move(variants));
    try {
      rebuilt->ValidateTrace();
    } catch (const SimError& e) {
      throw SimError("fault plan '" + plan.name + "': corrupted trace for "
                     "kernel '" + kernel.info().name + "' rejected at "
                     "ingestion: " + e.what());
    }
    out.kernels.push_back(std::move(rebuilt));
  }
  return out;
}

}  // namespace swiftsim
