// Sampling-based simulation (paper §II-B's third category — TUPOINT/PKA-
// style CTA sampling). The paper notes sampling is orthogonal to hybrid
// modeling: "they still rely on cycle-accurate simulation or analytical
// models for the sampled application". This module composes the two: any
// simulator level can run on a sampled prefix of each grid, with the
// cycle count extrapolated by the sampled-CTA ratio.
//
// The sample always covers at least one full chip wave so that the
// steady-state contention the full grid would exhibit is represented.
#pragma once

#include "config/gpu_config.h"
#include "sim/model_select.h"
#include "trace/kernel.h"

namespace swiftsim {

struct SampledResult {
  Cycle estimated_cycles = 0;   // extrapolated full-grid estimate
  Cycle simulated_cycles = 0;   // cycles actually simulated
  std::uint64_t total_ctas = 0;
  std::uint64_t sampled_ctas = 0;
  double wall_seconds = 0;

  double sample_fraction() const {
    return total_ctas ? static_cast<double>(sampled_ctas) / total_ctas
                      : 0.0;
  }
};

/// Runs `level` on a sampled prefix of each kernel's grid (at least one
/// full chip wave, at least ceil(cta_fraction * grid) CTAs) and
/// extrapolates per kernel. cta_fraction in (0, 1].
SampledResult RunSampledSimulation(const Application& app,
                                   const GpuConfig& cfg, SimLevel level,
                                   double cta_fraction);

}  // namespace swiftsim
