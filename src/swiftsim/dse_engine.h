// Warm-cache design-space-exploration engine (DESIGN.md §13).
//
// Turns an expanded SweepSpec into a scheduled, cache-warm, adaptively
// pruned search instead of a cold serial loop:
//
//   * points run as app-lanes on the shared ThreadPool, shaped by
//     PlanParallelBatch (points are independent applications as far as
//     the batch policy is concerned);
//   * one process-global MemoCache/ProfileCache is threaded through all
//     points: repeated launches inside iterative apps replay, and points
//     that differ only in timing parameters share one pre-pass profile
//     (geometry-equal dedup);
//   * adaptive early stopping: every point is screened with the cheap
//     analytical-memory estimate, survivors optionally refined at
//     Swift-Sim-Basic, and only the empirical Pareto frontier
//     (cycles x area-proxy) plus a successive-halving quota is promoted
//     to the cycle-accurate final level. Arms retire as soon as their
//     confidence bounds separate from a dominating point's, and every
//     retirement records the bound that caused it — pruning is never
//     silent.
//
// Decisions are pure functions of per-point simulation results, which
// are themselves deterministic, so promote/retire sets are bit-identical
// across worker counts and independent of point enumeration order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/sweep_spec.h"
#include "sim/model_select.h"
#include "swiftsim/parallel.h"
#include "trace/kernel.h"

namespace swiftsim::dse {

/// Silicon-cost proxy for the second objective of the Pareto search, in
/// arbitrary-but-stable units: SM array (scaled by sub-core ALU lanes) +
/// on-chip SRAM + memory partitions. Exact (no confidence band) — it is
/// computed, not simulated.
double AreaProxy(const GpuConfig& cfg);

/// One candidate in objective space (lower is better on both).
struct Objective {
  double cycles = 0;
  double area = 0;
};

/// frontier[i] is true when no other candidate weakly dominates i with at
/// least one strict improvement. Ties (exactly equal on both objectives)
/// all stay on the frontier, so the result is a set property independent
/// of input order.
std::vector<bool> ParetoFrontier(const std::vector<Objective>& candidates);

struct DseOptions {
  unsigned threads = 1;                     // worker budget for point lanes
  ParallelMode mode = ParallelMode::kAuto;  // batch policy input
  /// false = reference mode: every point runs to final_level, no pruning
  /// (the ground truth an early-stopped sweep must match on its promoted
  /// points).
  bool early_stopping = true;
  /// Middle Swift-Sim-Basic rung between screening and the final level;
  /// skipped when the screening survivors already fit the final quota.
  bool refine_rung = true;
  /// Successive-halving quota: each pruning step keeps
  /// max(min_keep, ceil(survivors * keep_fraction)) points. The empirical
  /// Pareto frontier survives past the quota, but max_promote is a hard
  /// ceiling on the final cycle-accurate rung — an oversized frontier is
  /// trimmed in estimated-cycles order (each trimmed point records it).
  double keep_fraction = 0.25;
  unsigned min_keep = 2;
  unsigned max_promote = 8;  // 0 = uncapped
  /// Relative model-error band of the cycles estimate per rung: a point
  /// retires on bounds when another survivor's upper bound is below its
  /// lower bound at no larger area.
  double screen_delta = 0.15;
  double refine_delta = 0.05;
  /// Screen-rung dedup: the analytical memory model is invariant under
  /// the cycle-accurate-only knobs (warp scheduler policy, cache
  /// replacement policy — see interval_model.h), so points differing only
  /// in those fields share one screening simulation. Only applies when
  /// screen_level is the analytical-memory level.
  bool dedup_screen = true;
  SimLevel screen_level = SimLevel::kSwiftSimMemory;
  SimLevel refine_level = SimLevel::kSwiftSimBasic;
  SimLevel final_level = SimLevel::kDetailed;
  /// Crash consistency (DESIGN.md §16). When set, every rung result and
  /// pruning decision is appended to a write-ahead journal at this path
  /// before the sweep moves on, so a SIGKILLed sweep loses at most the
  /// simulations in flight. With `resume` the journal is recovered first:
  /// journaled rung results are replayed instead of re-simulated and each
  /// recomputed pruning decision is checked against its journaled record —
  /// rung decisions are pure functions of deterministic per-point results,
  /// so the resumed sweep is bit-identical (cycles, promote/retire sets,
  /// Pareto frontier) to an uninterrupted one. The journal head pins a
  /// sweep identity (apps, points, decision-affecting options); resuming
  /// against a different sweep raises SimError.
  std::string journal_path;
  bool resume = false;
};

struct PointOutcome {
  std::size_t index = 0;  // position in the input vector
  std::string label;
  std::uint64_t cfg_hash = 0;
  double area = 0;
  Cycle screen_cycles = 0;   // 0 = rung not run
  Cycle refine_cycles = 0;
  Cycle final_cycles = 0;
  double screen_wall = 0;
  double refine_wall = 0;
  double final_wall = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_cycles_avoided = 0;
  SimLevel level_reached = SimLevel::kSwiftSimMemory;
  bool promoted = false;  // reached final_level
  bool frontier = false;  // on the final Pareto frontier (promoted only)
  std::string retired_by;  // the bound that retired it; "" iff promoted
};

struct SweepReport {
  std::vector<PointOutcome> points;  // input order
  std::size_t promoted = 0;
  std::size_t retired = 0;
  std::size_t refined = 0;       // points that ran the middle rung
  double wall_seconds = 0;       // whole-sweep wall time
  /// Cold per-point baseline estimate: mean fresh final-level wall across
  /// the promoted points, times the point count — what the old serial
  /// harness would pay running every point cycle-accurately from cold.
  double est_cold_wall = 0;
  double speedup_vs_cold = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// ProfileCache deltas across the sweep: shared = pre-passes served
  /// from the geometry-equal cache instead of rebuilt.
  std::uint64_t prepass_built = 0;
  std::uint64_t prepass_shared = 0;
  /// Screen-rung dedup: sims actually run vs points that copied the
  /// result of an analytically-equivalent representative.
  std::uint64_t screen_sims = 0;
  std::uint64_t screen_deduped = 0;
  unsigned screen_lanes = 1;  // resolved batch shape per rung
  unsigned final_lanes = 1;
  /// Crash-consistency telemetry (zero unless journal_path was set):
  /// records appended + on-disk segment size this run, and rung
  /// simulations skipped because a resumed journal already held their
  /// results.
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t points_resumed = 0;
};

/// Runs the sweep: every point evaluates `apps` (cycles are summed across
/// apps — one scalar timing objective per point). Throws SimError on an
/// empty sweep or app list.
SweepReport RunSweep(const std::vector<Application>& apps,
                     const std::vector<SweepPoint>& points,
                     const DseOptions& opt);

}  // namespace swiftsim::dse
