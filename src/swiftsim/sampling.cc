#include "swiftsim/sampling.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "analytical/cache_prepass.h"
#include "common/bitutil.h"
#include "common/status.h"
#include "core/cta_allocator.h"
#include "sim/gpu_model.h"
#include "swiftsim/memo_cache.h"

namespace swiftsim {

namespace {

/// Builds the sampled kernel: the same variants, a truncated grid.
std::shared_ptr<KernelTrace> SamplePrefix(const KernelTrace& kernel,
                                          std::uint32_t sampled_ctas) {
  KernelInfo info = kernel.info();
  info.num_ctas = sampled_ctas;
  std::vector<CtaTrace> variants;
  variants.reserve(kernel.num_variants());
  for (std::size_t v = 0; v < kernel.num_variants(); ++v) {
    variants.push_back(kernel.variant(v));
  }
  return std::make_shared<KernelTrace>(std::move(info),
                                       std::move(variants));
}

}  // namespace

SampledResult RunSampledSimulation(const Application& app,
                                   const GpuConfig& cfg, SimLevel level,
                                   double cta_fraction) {
  SS_CHECK(cta_fraction > 0.0 && cta_fraction <= 1.0,
           "cta_fraction must be in (0, 1]");
  const ModelSelection sel = SelectionFor(level);
  const auto t0 = std::chrono::steady_clock::now();

  // Build the sampled application first (the pre-pass for analytical
  // memory mode must profile exactly what will be simulated).
  Application sampled;
  sampled.name = app.name + "+sampled";
  SampledResult result;
  std::vector<double> scale_factors;
  const CtaAllocator occupancy_probe(cfg);
  for (const auto& kernel : app.kernels) {
    const KernelInfo& info = kernel->info();
    const unsigned per_sm =
        std::max(1u, occupancy_probe.MaxConcurrent(info));
    const std::uint32_t wave =
        std::min<std::uint32_t>(info.num_ctas, per_sm * cfg.num_sms);
    const auto want = static_cast<std::uint32_t>(
        std::ceil(cta_fraction * info.num_ctas));
    const std::uint32_t take =
        std::min<std::uint32_t>(info.num_ctas, std::max(wave, want));
    sampled.kernels.push_back(SamplePrefix(*kernel, take));
    scale_factors.push_back(static_cast<double>(info.num_ctas) / take);
    result.total_ctas += info.num_ctas;
    result.sampled_ctas += take;
  }

  std::shared_ptr<const MemProfile> profile;
  if (sel.mem == MemModelKind::kAnalytical) {
    // The sampled prefix is itself a stable application: sweeps that
    // re-sample the same workload reuse its pre-pass profile.
    profile = cfg.memo.enabled
                  ? ProfileCache::Global().GetOrBuild(sampled, cfg).profile
                  : std::make_shared<const MemProfile>(
                        BuildMemProfile(sampled, cfg));
  }
  GpuModel model(cfg, sel, profile.get());
  Cycle estimated = 0;
  for (std::size_t k = 0; k < sampled.kernels.size(); ++k) {
    const Cycle cycles = model.RunKernel(*sampled.kernels[k]);
    estimated += static_cast<Cycle>(
        std::llround(static_cast<double>(cycles) * scale_factors[k]));
  }
  result.simulated_cycles = model.now();
  result.estimated_cycles = estimated;
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

}  // namespace swiftsim
