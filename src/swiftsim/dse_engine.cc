#include "swiftsim/dse_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/journal.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "swiftsim/memo_cache.h"
#include "swiftsim/simulator.h"
#include "trace/fingerprint.h"

namespace swiftsim::dse {

double AreaProxy(const GpuConfig& cfg) {
  // Stable-unit silicon proxy: an SM costs 1 plus its sub-core ALU lanes
  // and L1 SRAM; a memory partition costs 1 plus its L2 slice. The exact
  // coefficients only need to rank configurations consistently.
  const double alu_lanes =
      static_cast<double>(cfg.sub_cores_per_sm) *
      (cfg.sp_unit.lanes + cfg.int_unit.lanes + cfg.sfu_unit.lanes +
       cfg.tensor_unit.lanes);
  const double sm_cost =
      cfg.num_sms * (1.0 + alu_lanes / 128.0 +
                     static_cast<double>(cfg.l1.size_bytes) / (64.0 * 1024));
  const double mem_cost =
      cfg.num_mem_partitions *
      (1.0 + static_cast<double>(cfg.l2.size_bytes) / (256.0 * 1024));
  return sm_cost + mem_cost;
}

std::vector<bool> ParetoFrontier(const std::vector<Objective>& candidates) {
  std::vector<bool> front(candidates.size(), true);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (i == j) continue;
      const Objective& a = candidates[j];
      const Objective& b = candidates[i];
      if (a.cycles <= b.cycles && a.area <= b.area &&
          (a.cycles < b.cycles || a.area < b.area)) {
        front[i] = false;
        break;
      }
    }
  }
  return front;
}

namespace {

struct RungStats {
  Cycle cycles = 0;
  double wall = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_cycles_avoided = 0;
};

RungStats RunPoint(const std::vector<Application>& apps, const GpuConfig& cfg,
                   SimLevel level) {
  RungStats s;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Application& app : apps) {
    const SimResult r = Simulator(app, cfg, level).Run();
    s.cycles += r.total_cycles;
    const auto metric = [&r](const char* name) -> std::uint64_t {
      const auto it = r.metrics.find(name);
      return it != r.metrics.end() ? it->second : 0;
    };
    s.memo_hits += metric("memo.hits");
    s.memo_misses += metric("memo.misses");
    s.memo_cycles_avoided += metric("memo.replayed_cycles");
  }
  const auto t1 = std::chrono::steady_clock::now();
  s.wall = std::chrono::duration<double>(t1 - t0).count();
  return s;
}

/// Canonical hash of the config with the cycle-accurate-only knobs
/// normalized away. The analytical memory model never reads the warp
/// scheduler policy or the cache replacement policies (interval_model.h
/// abstracts them), so two configs with equal signatures produce
/// bit-identical analytical-memory results and can share one screening
/// simulation. test_dse pins this invariance.
std::uint64_t ScreenSignature(const GpuConfig& cfg) {
  GpuConfig c = cfg;
  c.sched_policy = SchedPolicy::kGto;
  c.l1.replacement = ReplacementPolicy::kLru;
  c.l2.replacement = ReplacementPolicy::kLru;
  return c.CanonicalHash();
}

std::string ShortHash(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%012llx",
                static_cast<unsigned long long>(h & 0xffffffffffffull));
  return buf;
}

/// One successive-halving pruning step over the surviving points at one
/// rung. Operates on a canonical order (cfg_hash, then input index), so
/// the promote/retire partition is a set property: independent of point
/// enumeration order and of how the rung's simulations were scheduled.
void PruneRung(const char* rung, double delta, std::size_t target,
               std::size_t hard_cap, Cycle PointOutcome::* cycles_of,
               std::vector<std::size_t>* alive,
               std::vector<PointOutcome>* pts) {
  std::vector<std::size_t> canon = *alive;
  std::sort(canon.begin(), canon.end(), [&](std::size_t a, std::size_t b) {
    const PointOutcome& pa = (*pts)[a];
    const PointOutcome& pb = (*pts)[b];
    if (pa.cfg_hash != pb.cfg_hash) return pa.cfg_hash < pb.cfg_hash;
    return pa.index < pb.index;
  });

  // Step 1 — confidence-bound separation: retire any point whose cycles
  // lower bound clears another survivor's upper bound at no larger area.
  // delta is the rung's relative model-error band.
  std::vector<std::size_t> remaining;
  remaining.reserve(canon.size());
  for (const std::size_t i : canon) {
    PointOutcome& p = (*pts)[i];
    const double c_p = static_cast<double>(p.*cycles_of);
    const double lb_p = c_p * (1.0 - delta);
    const std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t dominator = kNone;
    double best_ub = 0;
    for (const std::size_t j : canon) {
      if (j == i) continue;
      const PointOutcome& q = (*pts)[j];
      const double ub_q = static_cast<double>(q.*cycles_of) * (1.0 + delta);
      if (ub_q < lb_p && q.area <= p.area &&
          (dominator == kNone || ub_q < best_ub ||
           (ub_q == best_ub && q.cfg_hash < (*pts)[dominator].cfg_hash))) {
        dominator = j;
        best_ub = ub_q;
      }
    }
    if (dominator != kNone) {
      const PointOutcome& q = (*pts)[dominator];
      char buf[192];
      std::snprintf(buf, sizeof buf,
                    "%s bound: cycles lb %.0f (est %.0f -%d%%) > ub %.0f of "
                    "cfg %s at area %.2f <= %.2f",
                    rung, lb_p, c_p, static_cast<int>(delta * 100), best_ub,
                    ShortHash(q.cfg_hash).c_str(), q.area, p.area);
      p.retired_by = buf;
    } else {
      remaining.push_back(i);
    }
  }

  // Step 2 — halving quota: keep the empirical Pareto frontier, then the
  // best remaining points by estimated cycles until `target` is reached.
  std::vector<Objective> objs;
  objs.reserve(remaining.size());
  for (const std::size_t i : remaining) {
    objs.push_back({static_cast<double>((*pts)[i].*cycles_of),
                    (*pts)[i].area});
  }
  const std::vector<bool> front = ParetoFrontier(objs);
  std::vector<std::size_t> kept;
  std::vector<std::size_t> rest;
  for (std::size_t k = 0; k < remaining.size(); ++k) {
    (front[k] ? kept : rest).push_back(remaining[k]);
  }
  std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
    const PointOutcome& pa = (*pts)[a];
    const PointOutcome& pb = (*pts)[b];
    if (pa.*cycles_of != pb.*cycles_of) {
      return pa.*cycles_of < pb.*cycles_of;
    }
    if (pa.cfg_hash != pb.cfg_hash) return pa.cfg_hash < pb.cfg_hash;
    return pa.index < pb.index;
  });
  std::size_t fill = 0;
  while (kept.size() < target && fill < rest.size()) {
    kept.push_back(rest[fill++]);
  }
  const Cycle cutoff =
      fill < rest.size() ? (*pts)[rest[fill]].*cycles_of
                         : (kept.empty() ? 0 : (*pts)[kept.back()].*cycles_of);
  for (std::size_t k = fill; k < rest.size(); ++k) {
    PointOutcome& p = (*pts)[rest[k]];
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s halving: est cycles %llu at quota cutoff %llu "
                  "(kept %zu of %zu, off-frontier)",
                  rung,
                  static_cast<unsigned long long>(p.*cycles_of),
                  static_cast<unsigned long long>(cutoff), kept.size(),
                  remaining.size());
    p.retired_by = buf;
  }

  // Step 3 — hard promote cap: the frontier survives the quota, but the
  // final cycle-accurate rung has a budget. An oversized survivor set is
  // trimmed in (estimated cycles, cfg_hash) order; trimmed points record
  // the cap, so this pruning is as loud as the other two.
  if (hard_cap > 0 && kept.size() > hard_cap) {
    std::sort(kept.begin(), kept.end(), [&](std::size_t a, std::size_t b) {
      const PointOutcome& pa = (*pts)[a];
      const PointOutcome& pb = (*pts)[b];
      if (pa.*cycles_of != pb.*cycles_of) {
        return pa.*cycles_of < pb.*cycles_of;
      }
      if (pa.cfg_hash != pb.cfg_hash) return pa.cfg_hash < pb.cfg_hash;
      return pa.index < pb.index;
    });
    for (std::size_t k = hard_cap; k < kept.size(); ++k) {
      PointOutcome& p = (*pts)[kept[k]];
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s promote cap: est cycles %llu ranked %zu of %zu "
                    "survivors, cap %zu",
                    rung, static_cast<unsigned long long>(p.*cycles_of),
                    k + 1, kept.size(), hard_cap);
      p.retired_by = buf;
    }
    kept.resize(hard_cap);
  }

  std::sort(kept.begin(), kept.end());  // back to input order
  *alive = std::move(kept);
}

/// 128-bit identity of everything a resumed sweep must agree on: the
/// applications, the point list (hashes, in order) and every option that
/// feeds a rung or pruning decision. threads/mode are deliberately
/// excluded — rung results are worker-count independent by construction,
/// so a sweep may legally resume with a different parallel shape.
std::string SweepIdentity(const std::vector<Application>& apps,
                          const std::vector<SweepPoint>& points,
                          const DseOptions& opt) {
  FpHasher h;
  h.MixString("dse-sweep-journal-v1");
  h.Mix(apps.size());
  for (const Application& app : apps) {
    const Fingerprint fp = FingerprintApplication(app);
    h.Mix(fp.hi);
    h.Mix(fp.lo);
  }
  h.Mix(points.size());
  for (const SweepPoint& p : points) h.Mix(p.cfg_hash);
  const auto mix_double = [&h](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    h.Mix(bits);
  };
  h.Mix(opt.early_stopping ? 1 : 0);
  h.Mix(opt.refine_rung ? 1 : 0);
  h.Mix(opt.dedup_screen ? 1 : 0);
  mix_double(opt.keep_fraction);
  h.Mix(opt.min_keep);
  h.Mix(opt.max_promote);
  mix_double(opt.screen_delta);
  mix_double(opt.refine_delta);
  h.Mix(static_cast<std::uint64_t>(opt.screen_level));
  h.Mix(static_cast<std::uint64_t>(opt.refine_level));
  h.Mix(static_cast<std::uint64_t>(opt.final_level));
  return h.Digest().ToHex();
}

struct ReplayedRung {
  Cycle cycles = 0;
  double wall = 0;
};

/// Write-ahead journal of one sweep (DESIGN.md §16). Record payloads are
/// single text lines:
///   sweep <identity-hex>                 — head, pins the sweep identity
///   rung <name> <index> <cycles> <wall>  — one point finished one rung
///   prune <name> <n> <i0> ... <i(n-1)>   — alive set after one pruning
/// Rung results are appended from worker lanes as points complete
/// (Journal::Append is thread-safe); prune records only after the rung's
/// barrier, so a journal always describes a prefix of the sweep's
/// deterministic execution. On resume, rung records short-circuit the
/// simulations and prune records are verified against the recomputed
/// decisions — a mismatch means the journal belongs to a different
/// execution and is a hard error, never a silent divergence.
class SweepJournal {
 public:
  void Open(const std::string& path, bool resume,
            const std::string& identity) {
    JournalRecovery rec;
    journal_.Open(path, /*truncate=*/!resume, Journal::Options{}, &rec);
    bool have_head = false;
    for (const std::string& r : rec.records) {
      std::istringstream in(r);
      std::string tag;
      in >> tag;
      if (tag == "sweep") {
        std::string hex;
        in >> hex;
        SS_CHECK(!have_head, "journal '" + path + "' has two sweep heads");
        SS_CHECK(hex == identity,
                 "journal '" + path + "' belongs to a different sweep (head " +
                     hex + ", this sweep " + identity +
                     "): apps, points or decision options changed");
        have_head = true;
      } else if (tag == "rung") {
        SS_CHECK(have_head, "journal '" + path + "' rung record before head");
        std::string name;
        std::size_t idx = 0;
        ReplayedRung rr;
        in >> name >> idx >> rr.cycles >> rr.wall;
        SS_CHECK(!in.fail(), "journal '" + path + "' has a malformed rung "
                             "record: '" + r + "'");
        rungs_[name][idx] = rr;
      } else if (tag == "prune") {
        SS_CHECK(have_head, "journal '" + path + "' prune record before head");
        std::string name;
        std::size_t n = 0;
        in >> name >> n;
        std::vector<std::size_t> alive(n);
        for (std::size_t k = 0; k < n; ++k) in >> alive[k];
        SS_CHECK(!in.fail(), "journal '" + path + "' has a malformed prune "
                             "record: '" + r + "'");
        prunes_[name] = std::move(alive);
      } else {
        SS_CHECK(false, "journal '" + path + "' has an unknown record kind '" +
                            tag + "' (newer format?)");
      }
    }
    // Fresh segment, or a resume that found nothing (killed before the
    // head landed): pin the identity now.
    if (!have_head) journal_.Append("sweep " + identity);
  }

  const std::unordered_map<std::size_t, ReplayedRung>* Replay(
      const char* rung) const {
    const auto it = rungs_.find(rung);
    return it == rungs_.end() ? nullptr : &it->second;
  }

  void AppendRung(const char* rung, std::size_t idx, Cycle cycles,
                  double wall) {
    char buf[128];
    // %.17g round-trips the double exactly, so replayed walls equal the
    // originals bit for bit.
    std::snprintf(buf, sizeof buf, "rung %s %zu %llu %.17g", rung, idx,
                  static_cast<unsigned long long>(cycles), wall);
    journal_.Append(buf);
  }

  /// Journals the post-prune alive set — or, when the journal already
  /// holds this rung's decision, verifies the recomputed one against it.
  void CommitPrune(const char* rung, const std::vector<std::size_t>& alive) {
    const auto it = prunes_.find(rung);
    if (it != prunes_.end()) {
      SS_CHECK(it->second == alive,
               std::string("resumed ") + rung + " pruning decision diverges "
               "from the journaled one — journal does not match this sweep");
      return;
    }
    std::ostringstream out;
    out << "prune " << rung << ' ' << alive.size();
    for (const std::size_t i : alive) out << ' ' << i;
    journal_.Append(out.str());
  }

  std::uint64_t appended() const { return journal_.appended(); }
  std::uint64_t bytes() const { return journal_.bytes(); }

 private:
  Journal journal_;
  std::map<std::string, std::unordered_map<std::size_t, ReplayedRung>> rungs_;
  std::map<std::string, std::vector<std::size_t>> prunes_;
};

}  // namespace

SweepReport RunSweep(const std::vector<Application>& apps,
                     const std::vector<SweepPoint>& points,
                     const DseOptions& opt) {
  SS_CHECK(!points.empty(), "DSE sweep needs at least one point");
  SS_CHECK(!apps.empty(), "DSE sweep needs at least one application");
  SS_CHECK(opt.keep_fraction > 0 && opt.keep_fraction <= 1,
           "keep_fraction must be in (0, 1]");
  SS_CHECK(opt.screen_delta >= 0 && opt.refine_delta >= 0,
           "confidence deltas must be non-negative");

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t pc_hits0 = ProfileCache::Global().hits();
  const std::uint64_t pc_miss0 = ProfileCache::Global().misses();

  SweepReport report;
  report.points.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointOutcome& po = report.points[i];
    po.index = i;
    po.label = points[i].label;
    po.cfg_hash = points[i].cfg_hash;
    po.area = AreaProxy(points[i].cfg);
  }

  // Crash consistency (§16): open/recover the write-ahead journal before
  // any simulation, so even the first point's completion is durable.
  std::unique_ptr<SweepJournal> journal;
  if (!opt.journal_path.empty()) {
    journal = std::make_unique<SweepJournal>();
    journal->Open(opt.journal_path, opt.resume,
                  SweepIdentity(apps, points, opt));
  }

  ThreadPool& pool = ThreadPool::Shared();
  const auto run_rung = [&](const char* rung,
                            const std::vector<std::size_t>& idxs,
                            SimLevel level, Cycle PointOutcome::* cyc,
                            double PointOutcome::* wall) -> unsigned {
    // Resume replay: points the journal already holds at this rung take
    // their journaled cycles/wall (memo counters stay 0 — nothing was
    // simulated) and drop out of the batch.
    std::vector<std::size_t> todo;
    todo.reserve(idxs.size());
    const auto* replay = journal ? journal->Replay(rung) : nullptr;
    for (const std::size_t i : idxs) {
      if (replay != nullptr) {
        const auto it = replay->find(i);
        if (it != replay->end()) {
          PointOutcome& po = report.points[i];
          po.*cyc = it->second.cycles;
          po.*wall = it->second.wall;
          po.level_reached = level;
          ++report.points_resumed;
          continue;
        }
      }
      todo.push_back(i);
    }
    if (todo.empty()) return 1;
    // Points are independent app-lanes; the batch policy resolves the
    // lane count (analytical flag false: each point runs serially inside
    // its lane, which keeps rung results worker-count independent by
    // construction).
    const BatchPlan plan = PlanParallelBatch(
        todo.size(), opt.threads, /*cycle_accurate_mem=*/false, opt.mode);
    pool.ParallelFor(todo.size(), plan.app_lanes, [&](std::size_t k) {
      PointOutcome& po = report.points[todo[k]];
      const RungStats s = RunPoint(apps, points[todo[k]].cfg, level);
      po.*cyc = s.cycles;
      po.*wall = s.wall;
      po.memo_hits += s.memo_hits;
      po.memo_misses += s.memo_misses;
      po.memo_cycles_avoided += s.memo_cycles_avoided;
      po.level_reached = level;
      if (journal) journal->AppendRung(rung, todo[k], s.cycles, s.wall);
    });
    return plan.app_lanes;
  };

  std::vector<std::size_t> alive(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) alive[i] = i;

  // Rung 1 — screen everything with the cheap analytical-memory estimate.
  // Points that are analytically equivalent (equal ScreenSignature: they
  // differ only in cycle-accurate-only knobs) share one simulation; the
  // canonical representative — min (cfg_hash, index) — runs, the rest
  // copy its result, so dedup cannot change any downstream decision.
  if (opt.dedup_screen && opt.screen_level == SimLevel::kSwiftSimMemory) {
    std::map<std::uint64_t, std::vector<std::size_t>> groups;
    for (const std::size_t i : alive) {
      groups[ScreenSignature(points[i].cfg)].push_back(i);
    }
    std::vector<std::size_t> reps;
    reps.reserve(groups.size());
    for (auto& [sig, members] : groups) {
      std::sort(members.begin(), members.end(),
                [&](std::size_t a, std::size_t b) {
                  if (points[a].cfg_hash != points[b].cfg_hash) {
                    return points[a].cfg_hash < points[b].cfg_hash;
                  }
                  return a < b;
                });
      reps.push_back(members.front());
    }
    report.screen_lanes =
        run_rung("screen", reps, opt.screen_level,
                 &PointOutcome::screen_cycles, &PointOutcome::screen_wall);
    for (const auto& [sig, members] : groups) {
      const PointOutcome& rep = report.points[members.front()];
      for (std::size_t k = 1; k < members.size(); ++k) {
        PointOutcome& po = report.points[members[k]];
        po.screen_cycles = rep.screen_cycles;
        po.level_reached = opt.screen_level;
        ++report.screen_deduped;
      }
    }
    report.screen_sims = reps.size();
  } else {
    report.screen_lanes =
        run_rung("screen", alive, opt.screen_level,
                 &PointOutcome::screen_cycles, &PointOutcome::screen_wall);
    report.screen_sims = alive.size();
  }

  const auto target_for = [&](std::size_t n, bool apply_cap) {
    std::size_t t = std::max<std::size_t>(
        opt.min_keep,
        static_cast<std::size_t>(std::ceil(n * opt.keep_fraction)));
    if (apply_cap && opt.max_promote > 0 && t > opt.max_promote) {
      t = opt.max_promote;
    }
    return std::max<std::size_t>(1, std::min(t, n));
  };

  if (opt.early_stopping) {
    std::size_t t1 = target_for(alive.size(), /*apply_cap=*/false);
    // The middle rung only pays off when screening leaves more survivors
    // than the final rung would accept anyway.
    const bool will_refine =
        opt.refine_rung &&
        (opt.max_promote == 0 || t1 > opt.max_promote);
    if (!will_refine) t1 = target_for(alive.size(), /*apply_cap=*/true);
    PruneRung("screen", opt.screen_delta, t1,
              /*hard_cap=*/will_refine ? 0 : opt.max_promote,
              &PointOutcome::screen_cycles, &alive, &report.points);
    if (journal) journal->CommitPrune("screen", alive);
    if (will_refine && alive.size() > 1) {
      report.refined = alive.size();
      run_rung("refine", alive, opt.refine_level,
               &PointOutcome::refine_cycles, &PointOutcome::refine_wall);
      PruneRung("refine", opt.refine_delta,
                target_for(alive.size(), /*apply_cap=*/true),
                /*hard_cap=*/opt.max_promote, &PointOutcome::refine_cycles,
                &alive, &report.points);
      if (journal) journal->CommitPrune("refine", alive);
    }
  }

  // Final rung — promote the survivors to the cycle-accurate level.
  report.final_lanes =
      run_rung("final", alive, opt.final_level, &PointOutcome::final_cycles,
               &PointOutcome::final_wall);
  double final_wall_sum = 0;
  std::vector<Objective> objs;
  objs.reserve(alive.size());
  for (const std::size_t i : alive) {
    report.points[i].promoted = true;
    final_wall_sum += report.points[i].final_wall;
    objs.push_back({static_cast<double>(report.points[i].final_cycles),
                    report.points[i].area});
  }
  const std::vector<bool> front = ParetoFrontier(objs);
  for (std::size_t k = 0; k < alive.size(); ++k) {
    report.points[alive[k]].frontier = front[k];
  }

  report.promoted = alive.size();
  for (const PointOutcome& po : report.points) {
    if (!po.promoted) ++report.retired;
    report.memo_hits += po.memo_hits;
    report.memo_misses += po.memo_misses;
  }
  report.prepass_shared = ProfileCache::Global().hits() - pc_hits0;
  report.prepass_built = ProfileCache::Global().misses() - pc_miss0;
  if (journal) {
    report.journal_appends = journal->appended();
    report.journal_bytes = journal->bytes();
  }

  const auto t1 = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (report.promoted > 0) {
    report.est_cold_wall = final_wall_sum /
                           static_cast<double>(report.promoted) *
                           static_cast<double>(points.size());
    if (report.wall_seconds > 0) {
      report.speedup_vs_cold = report.est_cold_wall / report.wall_seconds;
    }
  }
  return report;
}

}  // namespace swiftsim::dse
