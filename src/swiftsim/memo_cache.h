// Cross-launch and cross-run memoization (DESIGN.md §10).
//
// Iterative applications launch the same static kernel dozens of times,
// and DSE sweeps re-simulate identical traces across config points. Two
// caches remove that redundancy:
//
//   MemoCache    — per-launch simulation results keyed by (kernel
//                  fingerprint, canonical config hash, application
//                  context, SimLevel). At the analytical-memory level a
//                  launch's cycles depend only on that key (the
//                  contention pipes drain by kernel end and the block
//                  scheduler's rotor only permutes homogeneous SMs), so
//                  replay is exact: bit-identical totals, per-kernel
//                  results and aggregated metrics. At cycle-accurate-
//                  memory levels the persistent L2 makes launches
//                  genuinely differ, so replay needs the opt-in
//                  convergence mode: simulate the first K repeats, replay
//                  once consecutive launches agree within epsilon.
//   ProfileCache — pre-pass MemProfiles keyed by (application
//                  fingerprint, cache-geometry hash), shared across
//                  repeated Simulator constructions and across config
//                  points that differ only in timing parameters.
//
// Both caches are process-global, mutex-protected and exact-by-default;
// cfg.memo.enabled = false (--no-memo) bypasses every layer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analytical/cache_prepass.h"
#include "config/gpu_config.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "trace/fingerprint.h"
#include "trace/kernel.h"

namespace swiftsim {

struct MemoKey {
  Fingerprint kernel_fp;
  std::uint64_t cfg_hash = 0;  // GpuConfig::CanonicalHash
  std::uint64_t context = 0;   // application fingerprint fold (profile scope)
  std::uint8_t level = 0;      // SimLevel

  bool operator<(const MemoKey& o) const {
    if (kernel_fp != o.kernel_fp) return kernel_fp < o.kernel_fp;
    if (cfg_hash != o.cfg_hash) return cfg_hash < o.cfg_hash;
    if (context != o.context) return context < o.context;
    return level < o.level;
  }
};

/// Everything one launch contributes to a SimResult: its cycles, issued
/// instructions, and the per-counter metric deltas it produced (the
/// "memo.*" telemetry counters excluded — they describe the driver, not
/// the launch). Replayed per-SM deltas are the first simulated launch's;
/// fresh repeats rotate CTA placement across homogeneous SMs, so replayed
/// per-SM maps are SM-permutation-equivalent and all aggregates match.
struct LaunchRecord {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::vector<std::pair<std::string, std::uint64_t>> metric_deltas;
};

class MemoCache {
 public:
  /// Returns the recorded launch if the entry is replay-ready. Bumps the
  /// entry's replay count and recency (eviction inputs).
  std::optional<LaunchRecord> TryReplay(const MemoKey& key);

  /// Records one simulated launch. `exact` entries become replayable
  /// immediately; otherwise convergence bookkeeping promotes the entry
  /// after at least `min_repeats` simulated launches whose last two cycle
  /// counts agree within `epsilon` relative.
  void RecordLaunch(const MemoKey& key, LaunchRecord rec, bool exact,
                    unsigned min_repeats, double epsilon);

  /// Caps the cache (cfg.memo.max_entries / max_bytes; 0 = unbounded).
  /// When either cap is exceeded after an insert, entries are evicted
  /// least-replayed first (ties: least recently used) — an entry that
  /// replays often keeps paying for its slot, a recorded-but-never-hit
  /// entry is the first to go. Applies immediately to current contents.
  void SetLimits(std::uint64_t max_entries, std::uint64_t max_bytes);

  std::size_t size() const;
  std::uint64_t bytes() const;
  std::uint64_t evictions() const;
  void Clear();

  /// Versioned plain-text persistence for cross-run reuse (DSE sweeps
  /// spanning processes). Save writes replay-ready entries; Load merges
  /// them in (existing entries win). Load throws SimError on unreadable
  /// files or format mismatches.
  void SaveToFile(const std::string& path) const;
  void LoadFromFile(const std::string& path);

  /// The process-wide cache every driver consults by default.
  static MemoCache& Global();

 private:
  struct Entry {
    LaunchRecord rec;
    std::uint64_t simulated = 0;
    Cycle prev_cycles = 0;
    bool ready = false;
    // Eviction inputs (SetLimits): replay frequency, recency, footprint.
    std::uint64_t replays = 0;
    std::uint64_t last_use = 0;
    std::uint64_t approx_bytes = 0;
  };

  static std::uint64_t ApproxBytes(const MemoKey& key, const Entry& entry);
  /// Evicts until both caps hold. Caller holds mu_.
  void EnforceLimitsLocked();

  mutable std::mutex mu_;
  std::map<MemoKey, Entry> entries_;
  std::uint64_t max_entries_ = 0;  // 0 = unbounded
  std::uint64_t max_bytes_ = 0;    // 0 = unbounded
  std::uint64_t total_bytes_ = 0;
  std::uint64_t use_clock_ = 0;
  std::uint64_t evictions_ = 0;
};

class ProfileCache {
 public:
  struct Fetch {
    std::shared_ptr<const MemProfile> profile;
    bool hit = false;
    double seconds = 0;  // wall time spent (fingerprinting + build)
  };

  /// Returns the cached profile for (app fingerprint, geometry hash) or
  /// builds and caches it. `parallel_builder` selects the cold-sharded
  /// BuildMemProfileParallel semantics, cached under a separate key (its
  /// result differs from the serial warm pass by construction).
  Fetch GetOrBuild(const Application& app, const GpuConfig& cfg,
                   bool parallel_builder = false, unsigned num_threads = 1);

  /// Caps the number of cached profiles (0 = unbounded); evicts least
  /// recently used. Shared pointers keep in-use profiles alive regardless.
  void SetMaxEntries(std::uint64_t max_entries);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  void Clear();

  static ProfileCache& Global();

 private:
  struct Key {
    Fingerprint app_fp;
    std::uint64_t geometry = 0;
    bool parallel = false;

    bool operator<(const Key& o) const {
      if (app_fp != o.app_fp) return app_fp < o.app_fp;
      if (geometry != o.geometry) return geometry < o.geometry;
      return parallel < o.parallel;
    }
  };

  struct Slot {
    std::shared_ptr<const MemProfile> profile;
    std::uint64_t last_use = 0;
  };

  void EnforceLimitLocked();

  mutable std::mutex mu_;
  std::map<Key, Slot> entries_;
  std::uint64_t max_entries_ = 0;  // 0 = unbounded
  std::uint64_t use_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// True when launch replay may be consulted at `level` under `cfg`:
/// always exact at the analytical-memory level; cycle-accurate-memory
/// levels additionally require the convergence-mode opt-in.
bool MemoReplayApplicable(const GpuConfig& cfg, SimLevel level);

/// Serial memoizing application driver: GpuModel::RunApplication with a
/// per-launch cache consultation. Cache hits advance the model clock by
/// the recorded cycles instead of simulating; misses simulate and record.
/// Registers replay telemetry under "memo.*" in the model's gatherer:
/// hits, misses, replayed_cycles (cycles of simulation avoided) and
/// replayed_instrs. `profile` as in GpuModel's constructor.
SimResult RunApplicationMemo(const Application& app, const GpuConfig& cfg,
                             SimLevel level, const MemProfile* profile,
                             MemoCache& cache);

}  // namespace swiftsim
