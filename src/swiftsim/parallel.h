// Parallel simulation (paper §III-B2 / §IV-B2): the modular design makes
// two levels of parallelism available:
//
//  * application-level — independent GpuModels for different applications
//    run on a thread pool (any simulator level);
//  * SM-level — in Swift-Sim-Memory the analytical memory path removes all
//    shared mutable state between SMs, so one application's SMs can be
//    simulated concurrently. CTAs are pre-assigned round-robin (a
//    documented approximation of the greedy dispatcher; see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "config/gpu_config.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "swiftsim/fault_inject.h"
#include "trace/kernel.h"

namespace swiftsim {

/// Per-application outcome classification for batch isolation
/// (DESIGN.md §11).
enum class AppStatus {
  kOk,        // completed on the requested level
  kDegraded,  // completed, but one or more kernels fell back analytically
  kTimedOut,  // wall-clock watchdog budget expired
  kFailed,    // SimError after exhausting retries (error holds what())
};

const char* ToString(AppStatus status);

struct AppOutcome {
  AppStatus status = AppStatus::kOk;
  std::string error;      // what() of the final failure, "" when ok
  std::string dump_path;  // hang diagnostic dump, "" when none
  unsigned attempts = 1;  // 1 = first try succeeded
};

struct ParallelBatchResult {
  std::vector<SimResult> results;   // same order as the input apps
  std::vector<AppOutcome> statuses; // same order; empty = legacy callers
  double wall_seconds = 0;          // whole-batch wall time
};

/// Batch options for RunAppsParallel. Defaults reproduce the historical
/// fail-fast behaviour (first failing app rethrows from the batch call).
struct BatchOptions {
  /// Convert per-app failures into AppOutcome entries instead of
  /// rethrowing; the rest of the batch always completes. A failed app's
  /// SimResult keeps whatever partial data was gathered (zeroed on a
  /// first-kernel failure).
  bool isolate_failures = false;
  /// Re-run a failed app from scratch up to this many extra times before
  /// declaring it failed (deterministic faults recur; state damage from a
  /// prior app on the pool does not).
  unsigned max_retries = 0;
  /// Chaos scenario armed on every app's simulator; must outlive the call.
  const FaultPlan* fault_plan = nullptr;
};

/// How a batch shape maps onto the shared thread pool (DESIGN.md §12):
/// `app_lanes` applications run concurrently, each on `threads_per_app`
/// task-graph workers. The invariant app_lanes * threads_per_app <=
/// max(num_threads, 1) prevents double-partitioning the pool (apps ×
/// clusters must never oversubscribe the requested worker budget).
struct BatchPlan {
  unsigned app_lanes = 1;
  unsigned threads_per_app = 1;
  ParallelMode chosen = ParallelMode::kApp;  // resolved mode, never kAuto
};

/// Resolves the two-mode policy for a batch shape. `cycle_accurate_mem`
/// says whether the level shards exactly under the task-graph driver
/// (analytical-memory levels fall back to app-parallel: their intra-app
/// runner is a documented approximation, not a drop-in). Decision table in
/// DESIGN.md §12.
BatchPlan PlanParallelBatch(std::size_t num_apps, unsigned num_threads,
                            bool cycle_accurate_mem, ParallelMode mode);

/// Runs each application through its own simulator concurrently. With
/// cfg.parallel.mode = auto (default) a batch smaller than the thread
/// budget spreads the spare threads inside apps via the task-graph driver
/// (cycle-accurate-memory levels only; bit-identical to the serial
/// simulator), capped so apps × per-app workers never exceeds the budget.
ParallelBatchResult RunAppsParallel(const std::vector<Application>& apps,
                                    const GpuConfig& cfg, SimLevel level,
                                    unsigned num_threads);

/// Batch isolation overload: per-app statuses, bounded retry and optional
/// fault injection.
ParallelBatchResult RunAppsParallel(const std::vector<Application>& apps,
                                    const GpuConfig& cfg, SimLevel level,
                                    unsigned num_threads,
                                    const BatchOptions& options);

/// SM-parallel Swift-Sim-Memory run of one application. Deterministic for
/// any thread count (SMs are independent). Kernel boundaries are global
/// barriers; a kernel's cycle count is the slowest SM's local clock.
SimResult RunSmParallelMemory(const Application& app, const GpuConfig& cfg,
                              unsigned num_threads);

}  // namespace swiftsim
