// Parallel simulation (paper §III-B2 / §IV-B2): the modular design makes
// two levels of parallelism available:
//
//  * application-level — independent GpuModels for different applications
//    run on a thread pool (any simulator level);
//  * SM-level — in Swift-Sim-Memory the analytical memory path removes all
//    shared mutable state between SMs, so one application's SMs can be
//    simulated concurrently. CTAs are pre-assigned round-robin (a
//    documented approximation of the greedy dispatcher; see DESIGN.md).
#pragma once

#include <vector>

#include "config/gpu_config.h"
#include "sim/gpu_model.h"
#include "sim/model_select.h"
#include "trace/kernel.h"

namespace swiftsim {

struct ParallelBatchResult {
  std::vector<SimResult> results;  // same order as the input apps
  double wall_seconds = 0;         // whole-batch wall time
};

/// Runs each application through its own simulator concurrently.
ParallelBatchResult RunAppsParallel(const std::vector<Application>& apps,
                                    const GpuConfig& cfg, SimLevel level,
                                    unsigned num_threads);

/// SM-parallel Swift-Sim-Memory run of one application. Deterministic for
/// any thread count (SMs are independent). Kernel boundaries are global
/// barriers; a kernel's cycle count is the slowest SM's local clock.
SimResult RunSmParallelMemory(const Application& app, const GpuConfig& cfg,
                              unsigned num_threads);

}  // namespace swiftsim
