#include "config/presets.h"

#include "common/status.h"
#include "common/strutil.h"

namespace swiftsim {

GpuConfig Rtx2080TiConfig() {
  GpuConfig c;
  c.name = "rtx2080ti";
  // Table I / Table II: TU102, 68 SMs, 4352 CUDA cores (68*4*16), 5.5MB L2.
  c.num_sms = 68;
  c.sub_cores_per_sm = 4;
  c.max_warps_per_sm = 32;        // 1024 threads/SM on Turing
  c.max_ctas_per_sm = 16;
  c.max_threads_per_sm = 1024;
  c.registers_per_sm = 65536;
  c.shared_mem_per_sm = 64 * 1024;

  c.sched_policy = SchedPolicy::kGto;  // Table II: "Warp Scheduler: 1x, GTO"
  c.schedulers_per_sub_core = 1;
  c.int_unit = {16, 4, 0};             // INT:16x
  c.sp_unit = {16, 4, 0};              // SP:16x
  c.dp_unit = {1, 8, 64};              // DP:0.5x -> one warp per 64 cycles
  c.sfu_unit = {4, 21, 0};             // SFU:4x
  c.tensor_unit = {8, 16, 0};
  c.ldst_units_per_sub_core = 4;       // LD/ST Units: 4x
  c.ldst_queue_depth = 8;

  // Table II L1: sectored, streaming, write-through, 4 banks, 128B line,
  // 32B sector, 256 MSHR entries, 8 max merge, LRU, 32 cycles.
  c.l1.size_bytes = 64 * 1024;
  c.l1.assoc = 4;
  c.l1.line_bytes = 128;
  c.l1.sector_bytes = 32;
  c.l1.banks = 4;
  c.l1.mshr_entries = 256;
  c.l1.mshr_max_merge = 8;
  c.l1.replacement = ReplacementPolicy::kLru;
  c.l1.write_policy = WritePolicy::kWriteThrough;
  c.l1.latency = 32;

  // Table II L2: sectored, write-back, 128B line, 32B sector, 192 MSHR,
  // 4 max merge, LRU, 188 cycles. 5.5MB total over 22 partitions = 256KB
  // per slice.
  c.l2.size_bytes = 256 * 1024;
  c.l2.assoc = 16;
  c.l2.line_bytes = 128;
  c.l2.sector_bytes = 32;
  c.l2.banks = 2;
  c.l2.mshr_entries = 192;
  c.l2.mshr_max_merge = 4;
  c.l2.replacement = ReplacementPolicy::kLru;
  c.l2.write_policy = WritePolicy::kWriteBack;
  c.l2.streaming = false;
  c.l2.latency = 188 - 32;  // Table II 188 is load-to-use; L1 part is 32

  c.shared_mem_latency = 24;
  c.shared_mem_banks = 32;

  // Table II: 22 memory partitions, 227 cycles.
  c.num_mem_partitions = 22;
  c.noc.latency = 8;
  c.noc.bytes_per_cycle = 32;
  c.dram.latency = 227;  // Table II "Memory: 227 cycles" (controller round-trip)
  c.dram.row_hit_latency = 115;
  c.dram.row_bytes = 2048;
  c.dram.bytes_per_cycle = 32;
  c.dram.queue_depth = 32;
  c.Validate();
  return c;
}

GpuConfig Rtx3060Config() {
  GpuConfig c = Rtx2080TiConfig();
  c.name = "rtx3060";
  // Table I: GA106, 28 SMs, 3584 CUDA cores, 3MB L2.
  c.num_sms = 28;
  // Ampere doubles FP32 throughput per sub-core (128 cores/SM = 28*4*32).
  c.sp_unit = {32, 4, 0};
  c.max_warps_per_sm = 48;       // 1536 threads/SM on Ampere
  c.max_threads_per_sm = 1536;
  c.shared_mem_per_sm = 100 * 1024;
  c.l1.size_bytes = 128 * 1024;  // 128KB combined L1/shared on GA10x
  // 3MB L2 across 12 partitions (192-bit GDDR6 bus) = 256KB per slice.
  c.num_mem_partitions = 12;
  c.l2.size_bytes = 256 * 1024;
  c.l2.latency = 170 - 32;
  c.dram.latency = 210;
  c.dram.row_hit_latency = 105;
  c.Validate();
  return c;
}

GpuConfig Rtx3090Config() {
  GpuConfig c = Rtx2080TiConfig();
  c.name = "rtx3090";
  // Table I: GA102, 82 SMs, 10496 CUDA cores, 6MB L2.
  c.num_sms = 82;
  c.sp_unit = {32, 4, 0};
  c.max_warps_per_sm = 48;
  c.max_threads_per_sm = 1536;
  c.shared_mem_per_sm = 100 * 1024;
  c.l1.size_bytes = 128 * 1024;
  // 6MB L2 across 24 partitions (384-bit GDDR6X bus) = 256KB per slice.
  c.num_mem_partitions = 24;
  c.l2.size_bytes = 256 * 1024;
  c.l2.latency = 180 - 32;
  c.dram.latency = 220;
  c.dram.row_hit_latency = 110;
  c.Validate();
  return c;
}

GpuConfig PresetByName(const std::string& name) {
  const std::string t = ToLower(name);
  if (t == "rtx2080ti") return Rtx2080TiConfig();
  if (t == "rtx3060") return Rtx3060Config();
  if (t == "rtx3090") return Rtx3090Config();
  throw SimError("unknown GPU preset '" + name +
                 "' (expected rtx2080ti, rtx3060 or rtx3090)");
}

std::vector<std::string> PresetNames() {
  return {"rtx2080ti", "rtx3060", "rtx3090"};
}

}  // namespace swiftsim
