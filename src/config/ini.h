// INI-style configuration file support for the Hardware Configuration
// Collector (paper §III-A). Syntax:
//
//   # comment, ; comment
//   [section]
//   key = value        # keys are looked up as "section.key"
//   top_level_key = v  # before any section header: looked up as "key"
//
// Duplicate keys: the last assignment wins (so users can layer overrides on
// top of a preset dump).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace swiftsim {

class IniFile {
 public:
  IniFile() = default;

  /// Parses INI text. Throws SimError with a line number on syntax errors.
  static IniFile ParseString(std::string_view text);

  /// Reads and parses a file. Throws SimError if unreadable.
  static IniFile ParseFile(const std::string& path);

  bool Has(const std::string& key) const;

  /// Typed getters; throw SimError naming the key when missing or malformed.
  std::string GetString(const std::string& key) const;
  std::int64_t GetInt(const std::string& key) const;
  std::uint64_t GetUint(const std::string& key) const;
  double GetDouble(const std::string& key) const;
  bool GetBool(const std::string& key) const;

  /// Getters with defaults; only throw on malformed values.
  std::string GetString(const std::string& key, const std::string& dflt) const;
  std::int64_t GetInt(const std::string& key, std::int64_t dflt) const;
  std::uint64_t GetUint(const std::string& key, std::uint64_t dflt) const;
  double GetDouble(const std::string& key, double dflt) const;
  bool GetBool(const std::string& key, bool dflt) const;

  /// Sets/overrides a key programmatically.
  void Set(const std::string& key, const std::string& value);

  /// All keys in sorted order (for dumping/round-tripping).
  std::vector<std::string> Keys() const;

  /// Serializes to a flat "key = value" listing (sections inlined in keys).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace swiftsim
