#include "config/sweep_spec.h"

#include <algorithm>

#include "common/status.h"
#include "common/strutil.h"
#include "config/ini.h"

namespace swiftsim {

void SweepSpec::AddAxis(const std::string& key,
                        std::vector<std::string> values) {
  SS_CHECK(!key.empty(), "sweep axis needs a config key");
  SS_CHECK(!values.empty(), "sweep axis '" + key + "' needs at least one value");
  for (const auto& v : values) {
    SS_CHECK(!v.empty(), "sweep axis '" + key + "' has an empty value");
  }
  const auto pos = std::lower_bound(
      axes_.begin(), axes_.end(), key,
      [](const SweepAxis& a, const std::string& k) { return a.key < k; });
  SS_CHECK(pos == axes_.end() || pos->key != key,
           "duplicate sweep axis '" + key + "'");
  axes_.insert(pos, SweepAxis{key, std::move(values)});
}

SweepSpec SweepSpec::FromIni(const IniFile& ini) {
  static constexpr std::string_view kPrefix = "sweep.axis.";
  SweepSpec spec;
  for (const std::string& key : ini.Keys()) {
    if (!StartsWith(key, kPrefix)) continue;
    const std::string cfg_key = key.substr(kPrefix.size());
    spec.AddAxis(cfg_key, Split(ini.GetString(key), ','));
  }
  SS_CHECK(!spec.axes_.empty(),
           "sweep spec declares no axes (expected sweep.axis.<key> entries)");
  return spec;
}

SweepSpec SweepSpec::FromFile(const std::string& path) {
  return FromIni(IniFile::ParseFile(path));
}

std::size_t SweepSpec::NumPoints() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.values.size();
  return n;
}

SweepSpec::Expansion SweepSpec::Expand(const GpuConfig& base,
                                       bool skip_invalid) const {
  SS_CHECK(!axes_.empty(), "cannot expand a sweep spec with no axes");
  // Unknown axis keys would silently no-op through FromIni (it reads only
  // the keys it knows); reject them against the base dump instead.
  const IniFile known = IniFile::ParseString(base.ToIniString());
  for (const auto& axis : axes_) {
    SS_CHECK(known.Has(axis.key),
             "sweep axis '" + axis.key + "' is not a GpuConfig key");
  }

  Expansion out;
  out.points.reserve(NumPoints());
  std::vector<std::size_t> odometer(axes_.size(), 0);
  for (;;) {
    IniFile overrides;
    std::string label;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const std::string& value = axes_[a].values[odometer[a]];
      overrides.Set(axes_[a].key, value);
      if (!label.empty()) label += ' ';
      label += axes_[a].key + '=' + value;
    }
    try {
      SweepPoint pt;
      pt.index = out.points.size();
      pt.label = std::move(label);
      pt.cfg = GpuConfig::FromIni(overrides, base);
      pt.cfg_hash = pt.cfg.CanonicalHash();
      out.points.push_back(std::move(pt));
    } catch (const SimError& e) {
      if (!skip_invalid) {
        throw SimError("sweep point '" + label + "': " + e.what());
      }
      ++out.skipped_invalid;
    }
    // Odometer step, last axis fastest.
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++odometer[a] < axes_[a].values.size()) break;
      odometer[a] = 0;
      if (a == 0) return out;
    }
  }
}

SweepSpec::Expansion SweepSpec::ExpandCapped(const GpuConfig& base,
                                             std::size_t max_points,
                                             bool skip_invalid) const {
  Expansion full = Expand(base, skip_invalid);
  if (max_points == 0 || full.points.size() <= max_points) return full;
  Expansion out;
  out.skipped_invalid = full.skipped_invalid;
  out.points.reserve(max_points);
  // Even stride over canonical order: point i samples position
  // floor(i * total / max_points), touching every axis region instead of
  // truncating to a prefix of the product.
  const std::size_t total = full.points.size();
  for (std::size_t i = 0; i < max_points; ++i) {
    SweepPoint pt = std::move(full.points[i * total / max_points]);
    pt.index = i;
    out.points.push_back(std::move(pt));
  }
  return out;
}

}  // namespace swiftsim
