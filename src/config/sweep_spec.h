// Design-space sweep specification (DESIGN.md §13).
//
// A SweepSpec is a set of axes, each pairing one GpuConfig INI key (the
// same "section.key" names GpuConfig::FromIni consumes) with the values
// it sweeps over. Expansion takes the Cartesian product over a base
// configuration and yields one SweepPoint per combination, carrying the
// fully-validated GpuConfig and its canonical hash — the identity the
// DSE engine, the MemoCache and the JSON reports all key on.
//
// Axes can be declared programmatically (AddAxis) or parsed from an INI
// file:
//
//   [sweep]
//   axis.core.sched_policy = gto, lrr, two_level
//   axis.l1.size_bytes     = 32768, 65536, 131072
//
// Every "sweep.axis.<config-key>" key contributes one axis; the value is
// a comma-separated list applied verbatim through GpuConfig::FromIni.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/gpu_config.h"

namespace swiftsim {

class IniFile;

struct SweepAxis {
  std::string key;                  // full INI key, e.g. "l1.size_bytes"
  std::vector<std::string> values;  // swept values, in declaration order
};

/// One expanded configuration point. `index` is the position in canonical
/// expansion order (axes sorted by key, last axis fastest); `cfg_hash` is
/// GpuConfig::CanonicalHash() — equal configs collide by construction, so
/// decisions keyed on it are independent of how the point was enumerated.
struct SweepPoint {
  std::size_t index = 0;
  std::string label;  // "key=value key=value" in axis order
  GpuConfig cfg;
  std::uint64_t cfg_hash = 0;
};

class SweepSpec {
 public:
  /// Adds one axis. Throws SimError on an empty value list or a key that
  /// was already added. Axes are kept sorted by key, so the expansion
  /// order does not depend on declaration order.
  void AddAxis(const std::string& key, std::vector<std::string> values);

  /// Collects every "sweep.axis.<key>" entry of `ini` into axes.
  /// Throws SimError when the file declares none.
  static SweepSpec FromIni(const IniFile& ini);
  static SweepSpec FromFile(const std::string& path);

  const std::vector<SweepAxis>& axes() const { return axes_; }

  /// Size of the full Cartesian product (before invalid-combo skipping).
  std::size_t NumPoints() const;

  struct Expansion {
    std::vector<SweepPoint> points;
    /// Combinations whose GpuConfig failed Validate() (e.g. a cache size
    /// that is not a multiple of line*assoc). Never silently dropped:
    /// callers report this count.
    std::size_t skipped_invalid = 0;
  };

  /// Expands the product over `base`. Each point's config is produced by
  /// GpuConfig::FromIni on the axis overrides, so it is validated and its
  /// hash canonical. Axis keys that `base` does not serialize (unknown
  /// config keys) throw SimError up front. With `skip_invalid` false an
  /// invalid combination throws instead of being counted.
  Expansion Expand(const GpuConfig& base, bool skip_invalid = true) const;

  /// Expands, then thins the product to at most `max_points` points with
  /// a deterministic even stride over the canonical order — the way a
  /// --points=N budget samples a larger grid without biasing toward any
  /// one axis prefix. `max_points` 0 means no cap. Indices are rewritten
  /// to be contiguous; labels and hashes are unchanged.
  Expansion ExpandCapped(const GpuConfig& base, std::size_t max_points,
                         bool skip_invalid = true) const;

 private:
  std::vector<SweepAxis> axes_;  // sorted by key
};

}  // namespace swiftsim
