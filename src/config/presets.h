// Real-GPU configuration presets used in the paper's evaluation
// (Table I: RTX 2080 Ti / RTX 3060 / RTX 3090; Table II: 2080 Ti detail).
#pragma once

#include <string>
#include <vector>

#include "config/gpu_config.h"

namespace swiftsim {

/// NVIDIA RTX 2080 Ti (Turing TU102) — Table II of the paper.
GpuConfig Rtx2080TiConfig();

/// NVIDIA RTX 3060 (Ampere GA106) — Table I column 2.
GpuConfig Rtx3060Config();

/// NVIDIA RTX 3090 (Ampere GA102) — Table I column 3.
GpuConfig Rtx3090Config();

/// Lookup by name ("rtx2080ti", "rtx3060", "rtx3090"); throws SimError on
/// unknown names.
GpuConfig PresetByName(const std::string& name);

/// All preset names, in Table I order.
std::vector<std::string> PresetNames();

}  // namespace swiftsim
