#include "config/ini.h"

#include <fstream>
#include <sstream>

#include "common/status.h"
#include "common/strutil.h"

namespace swiftsim {

namespace {
// Strips an unquoted trailing comment beginning with '#' or ';'.
std::string_view StripComment(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' || line[i] == ';') return line.substr(0, i);
  }
  return line;
}
}  // namespace

IniFile IniFile::ParseString(std::string_view text) {
  IniFile ini;
  std::string section;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    std::string_view line = Trim(StripComment(raw));
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line.front() == '[') {
      SS_CHECK(line.back() == ']',
               "unterminated section header at line " + std::to_string(line_no));
      section = std::string(Trim(line.substr(1, line.size() - 2)));
      SS_CHECK(!section.empty(),
               "empty section name at line " + std::to_string(line_no));
      continue;
    }
    const std::size_t eq = line.find('=');
    SS_CHECK(eq != std::string_view::npos,
             "expected 'key = value' at line " + std::to_string(line_no));
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    SS_CHECK(!key.empty(), "empty key at line " + std::to_string(line_no));
    if (!section.empty()) key = section + "." + key;
    ini.values_[key] = value;
    if (pos > text.size()) break;
  }
  return ini;
}

IniFile IniFile::ParseFile(const std::string& path) {
  std::ifstream in(path);
  SS_CHECK(in.good(), "cannot open config file '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return ParseString(os.str());
}

bool IniFile::Has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string IniFile::GetString(const std::string& key) const {
  auto it = values_.find(key);
  SS_CHECK(it != values_.end(), "missing config key '" + key + "'");
  return it->second;
}

std::int64_t IniFile::GetInt(const std::string& key) const {
  return ParseInt(GetString(key), key);
}

std::uint64_t IniFile::GetUint(const std::string& key) const {
  return ParseUint(GetString(key), key);
}

double IniFile::GetDouble(const std::string& key) const {
  return ParseDouble(GetString(key), key);
}

bool IniFile::GetBool(const std::string& key) const {
  return ParseBool(GetString(key), key);
}

std::string IniFile::GetString(const std::string& key,
                               const std::string& dflt) const {
  return Has(key) ? GetString(key) : dflt;
}

std::int64_t IniFile::GetInt(const std::string& key, std::int64_t dflt) const {
  return Has(key) ? GetInt(key) : dflt;
}

std::uint64_t IniFile::GetUint(const std::string& key,
                               std::uint64_t dflt) const {
  return Has(key) ? GetUint(key) : dflt;
}

double IniFile::GetDouble(const std::string& key, double dflt) const {
  return Has(key) ? GetDouble(key) : dflt;
}

bool IniFile::GetBool(const std::string& key, bool dflt) const {
  return Has(key) ? GetBool(key) : dflt;
}

void IniFile::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> IniFile::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, v] : values_) keys.push_back(k);
  return keys;
}

std::string IniFile::ToString() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace swiftsim
