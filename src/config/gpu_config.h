// Hardware configuration model (paper §III-A, Tables I & II).
//
// A GpuConfig fully describes the simulated GPU: SM/sub-core organization,
// execution-unit throughput and latency, the two cache levels, interconnect
// and DRAM. Configurations are loadable from INI files (Accel-Sim-flavored
// key names) and three real-GPU presets are provided (presets.h).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace swiftsim {

class IniFile;

/// Warp scheduler policy (cycle-accurate module; paper's DSE example).
enum class SchedPolicy {
  kGto,       // greedy-then-oldest (default on modeled parts)
  kLrr,       // loose round-robin
  kTwoLevel,  // two-level active/pending warp scheduler
};

std::string ToString(SchedPolicy p);
SchedPolicy SchedPolicyFromString(const std::string& s);

/// Cache replacement policy. The DSE flexibility argument of §II-B: unlike
/// reuse-distance analytical models, the cycle-accurate cache can model
/// non-LRU policies.
enum class ReplacementPolicy { kLru, kFifo, kRandom };

std::string ToString(ReplacementPolicy p);
ReplacementPolicy ReplacementPolicyFromString(const std::string& s);

/// Write policy for a cache level.
enum class WritePolicy {
  kWriteThrough,  // L1 on modeled NVIDIA parts (streaming)
  kWriteBack,     // L2
};

std::string ToString(WritePolicy p);
WritePolicy WritePolicyFromString(const std::string& s);

/// One execution-unit class inside a sub-core (INT/SP/DP/SFU).
struct ExecUnitConfig {
  // Number of lanes per sub-core; a warp (32 threads) occupies the unit for
  // ceil(32 / lanes) issue cycles. Fractional provisioning (DP "0.5x" in
  // Table II) is expressed via lanes < 1 being disallowed — use lanes=1 and
  // a longer explicit issue interval instead, or set lanes and the interval
  // is derived. `issue_interval_override` (0 = derive) covers the 0.5x case.
  unsigned lanes = 16;
  unsigned latency = 4;                  // result latency in cycles
  unsigned issue_interval_override = 0;  // 0: derive ceil(32/lanes)

  unsigned issue_interval() const {
    if (issue_interval_override != 0) return issue_interval_override;
    return (kWarpSize + lanes - 1) / lanes;
  }
};

/// Parameters for one cache level (sectored, banked, MSHR-backed).
struct CacheParams {
  std::uint64_t size_bytes = 64 * 1024;
  unsigned assoc = 4;
  unsigned line_bytes = 128;
  unsigned sector_bytes = 32;
  unsigned banks = 4;
  unsigned mshr_entries = 256;
  unsigned mshr_max_merge = 8;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  WritePolicy write_policy = WritePolicy::kWriteThrough;
  unsigned latency = 32;  // hit latency in cycles
  // Streaming cache (Table II: the L1 is "sectored, streaming"): misses do
  // not reserve a way — the line is allocated when the fill returns, so
  // misses never fail on reservation and arbitrarily many can be in
  // flight (bounded only by the MSHRs).
  bool streaming = true;

  unsigned num_sets() const {
    return static_cast<unsigned>(size_bytes / (line_bytes * assoc));
  }
  unsigned sectors_per_line() const { return line_bytes / sector_bytes; }
};

/// On-chip interconnect between SMs and L2 partitions.
struct NocConfig {
  unsigned latency = 8;              // traversal latency, cycles
  unsigned bytes_per_cycle = 32;     // per-port injection/ejection bandwidth
  unsigned input_queue_depth = 8;    // per-SM injection queue (packets)
  unsigned output_queue_depth = 8;   // per-partition ejection queue
};

/// DRAM channel behind each memory partition.
struct DramConfig {
  unsigned latency = 227;          // closed-row access latency, cycles
  unsigned row_hit_latency = 115;  // row-buffer hit latency, cycles
  unsigned row_bytes = 2048;       // row-buffer size
  unsigned bytes_per_cycle = 32;   // sustained bandwidth per partition
  unsigned queue_depth = 32;       // controller request queue
};

/// Second-order effects only the "silicon" oracle models (DESIGN.md §2):
/// real hardware differs from any simulator by effects like these, so the
/// oracle enables them to act as a deterministic stand-in for real-GPU
/// cycle counts collected with Nsight Compute in the paper.
struct SiliconEffects {
  bool enabled = false;
  double icache_miss_rate = 0.06;        // fetch stall probability per instr
  unsigned icache_miss_penalty = 20;     // cycles
  double regbank_conflict_rate = 0.20;   // extra operand-read cycle prob.
  unsigned writeback_bus_width = 2;      // results retired per cycle/subcore
  unsigned dram_refresh_interval = 2200; // cycles between refreshes
  unsigned dram_refresh_penalty = 160;   // cycles the channel is blocked
  unsigned kernel_launch_overhead = 400; // fixed cycles per kernel launch
  // Real-hardware effective memory latencies exceed the nominal
  // (microbenchmarked) figures under TLB/ECC/clock-crossing effects.
  unsigned l2_latency_extra = 18;        // cycles added to each L2 slice
  unsigned dram_latency_extra = 45;      // cycles added to each channel
};

/// Cross-launch memoization knobs (DESIGN.md §10). `enabled` gates only
/// the exact reuse layers: launch replay at the analytical-memory level
/// and the pre-pass profile caches, both of which reproduce fresh results
/// bit-identically. Replay at the cycle-accurate-memory levels is an
/// approximation (the persistent L2 makes repeated launches genuinely
/// differ) and therefore needs the separate `detailed_convergence` opt-in:
/// the first `convergence_min_repeats` launches of a kernel are simulated,
/// and replay starts only once consecutive launches agree within
/// `convergence_epsilon` relative cycles.
/// Columnar trace frontend knobs (DESIGN.md §14).
struct TraceConfig {
  std::string cache_dir;       // on-disk compact trace cache; "" = off
  bool parallel_build = true;  // per-variant generation on the shared pool
};

struct MemoConfig {
  bool enabled = true;
  bool detailed_convergence = false;
  unsigned convergence_min_repeats = 3;
  double convergence_epsilon = 0.01;
  // Eviction caps for the process-global caches (DESIGN.md §10/§11): 0 =
  // unbounded. `max_entries` bounds both the launch-record cache and the
  // profile cache by entry count; `max_bytes` additionally bounds the
  // launch-record cache by its estimated footprint. Eviction prefers the
  // least-replayed, then least-recently-used entry, so hot launch records
  // of long sweeps survive.
  std::uint64_t max_entries = 0;
  std::uint64_t max_bytes = 0;
};

/// Batch parallelization policy (DESIGN.md §12): how RunAppsParallel maps
/// a batch shape (apps × threads × per-app SM count) onto the shared
/// thread pool.
enum class ParallelMode {
  kAuto,   // app-parallel when apps >= threads, else a capped mix
  kApp,    // one serial simulator per app (historical behavior)
  kIntra,  // apps sequential, each on the intra-app task-graph driver
};

std::string ToString(ParallelMode m);
ParallelMode ParallelModeFromString(const std::string& s);

/// Knobs for the task-graph parallel driver and the two-mode batch policy
/// (DESIGN.md §12).
struct ParallelConfig {
  ParallelMode mode = ParallelMode::kAuto;
};

/// Forward-progress watchdog over the cycle-accurate drivers (DESIGN.md
/// §11). Disabled by default; stall_cycles = 0 keeps the hot loop free of
/// any watchdog work, preserving bit-identical pre-watchdog behavior.
struct WatchdogConfig {
  /// Trip when the progress signature (issued instructions + NoC/L2/DRAM
  /// traffic counters) is unchanged for this many simulated cycles.
  /// 0 disables the cycle watchdog. Set comfortably above the longest
  /// legitimate silent span (a few times the DRAM latency).
  Cycle stall_cycles = 0;
  /// Wall-clock budget per application run in seconds; 0 disables.
  double wall_seconds = 0;
  /// Directory for JSON diagnostic dumps on a trip; empty = no dump file
  /// (the typed SimHangError is raised either way).
  std::string dump_dir;
};

/// Graceful degradation on mid-kernel failures (DESIGN.md §11).
struct DegradeConfig {
  /// Re-run a kernel that hung or failed at the analytical-memory level
  /// on a fresh model, record a DegradeEvent, and continue the app.
  bool on_hang = false;
  /// Fresh-model retries at the original level before degrading (or
  /// failing, when on_hang is false).
  unsigned max_retries = 0;
};

/// Complete GPU description.
struct GpuConfig {
  GpuConfig();  // sets L2-appropriate defaults on the l2 member

  std::string name = "generic-gpu";

  // --- SM organization -----------------------------------------------------
  unsigned num_sms = 68;
  unsigned sub_cores_per_sm = 4;
  unsigned max_warps_per_sm = 32;
  unsigned max_ctas_per_sm = 16;
  unsigned max_threads_per_sm = 1024;
  std::uint64_t registers_per_sm = 65536;
  std::uint64_t shared_mem_per_sm = 64 * 1024;

  // --- Sub-core resources (Table II "Resources/Sub-core") ------------------
  SchedPolicy sched_policy = SchedPolicy::kGto;
  unsigned schedulers_per_sub_core = 1;
  ExecUnitConfig int_unit{16, 4, 0};
  ExecUnitConfig sp_unit{16, 4, 0};
  ExecUnitConfig dp_unit{1, 8, 64};   // "DP:0.5x" -> 64-cycle issue interval
  ExecUnitConfig sfu_unit{4, 21, 0};
  ExecUnitConfig tensor_unit{8, 16, 0};
  unsigned ldst_units_per_sub_core = 4;  // memory-instr issue rate 32/4 = 8cy
  unsigned ldst_queue_depth = 8;         // in-flight memory instrs/sub-core

  // --- Memory hierarchy -----------------------------------------------------
  CacheParams l1;   // per-SM, shared by sub-cores
  CacheParams l2;   // per-partition slice
  unsigned shared_mem_latency = 24;
  unsigned shared_mem_banks = 32;
  unsigned num_mem_partitions = 22;
  NocConfig noc;
  DramConfig dram;

  /// L2 request-drain budget: how many NoC-ejected requests each L2 slice
  /// attempts to accept per cycle. 0 (default) derives the budget from
  /// l2.banks, the slice's natural per-cycle throughput.
  unsigned l2_drain_attempts = 0;

  // --- Oracle-only second-order effects -------------------------------------
  SiliconEffects effects;

  // --- Simulation-driver knobs ----------------------------------------------
  /// Event-calendar cycle skipping (DESIGN.md §9): lets the cycle-accurate
  /// driver fast-forward over spans it proves are no-op ticks. Cycle counts
  /// are bit-identical either way; disable only for A/B validation runs.
  bool cycle_skip = true;

  /// Cross-launch memoization (DESIGN.md §10).
  MemoConfig memo;

  /// Columnar trace frontend (DESIGN.md §14). `cache_dir` points the
  /// on-disk compact trace cache at a directory (empty disables it);
  /// `parallel_build` toggles per-variant generation on the shared pool.
  TraceConfig trace;

  /// Batch/intra-app parallelization policy (DESIGN.md §12).
  ParallelConfig parallel;

  /// Forward-progress watchdog (DESIGN.md §11).
  WatchdogConfig watchdog;

  /// Graceful degradation on mid-kernel failures (DESIGN.md §11).
  DegradeConfig degrade;

  // Derived -------------------------------------------------------------
  unsigned warps_per_sub_core() const {
    return max_warps_per_sm / sub_cores_per_sm;
  }
  std::uint64_t total_l2_bytes() const {
    return static_cast<std::uint64_t>(l2.size_bytes) * num_mem_partitions;
  }
  unsigned cuda_cores() const {
    return num_sms * sub_cores_per_sm * sp_unit.lanes;
  }

  /// Throws SimError describing the first inconsistency found.
  void Validate() const;

  /// Loads from an INI file; unspecified keys keep the values of `base`
  /// (so users can write sparse override files on top of a preset).
  static GpuConfig FromIni(const IniFile& ini, GpuConfig base);
  static GpuConfig FromIni(const IniFile& ini);

  /// Serializes every field to INI text that FromIni round-trips.
  std::string ToIniString() const;

  /// Stable hash of the canonical INI serialization — the config lane of
  /// the memoization cache key. Equal configurations hash equal; any field
  /// change (including future fields, which must be serialized to
  /// round-trip) changes the hash.
  std::uint64_t CanonicalHash() const;
};

}  // namespace swiftsim
