#include "config/gpu_config.h"

#include <sstream>

#include "common/bitutil.h"
#include "common/status.h"
#include "common/strutil.h"
#include "config/ini.h"

namespace swiftsim {

std::string ToString(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kGto:
      return "gto";
    case SchedPolicy::kLrr:
      return "lrr";
    case SchedPolicy::kTwoLevel:
      return "two_level";
  }
  return "?";
}

SchedPolicy SchedPolicyFromString(const std::string& s) {
  const std::string t = ToLower(s);
  if (t == "gto") return SchedPolicy::kGto;
  if (t == "lrr") return SchedPolicy::kLrr;
  if (t == "two_level") return SchedPolicy::kTwoLevel;
  throw SimError("unknown scheduler policy '" + s + "'");
}

std::string ToString(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kFifo:
      return "fifo";
    case ReplacementPolicy::kRandom:
      return "random";
  }
  return "?";
}

ReplacementPolicy ReplacementPolicyFromString(const std::string& s) {
  const std::string t = ToLower(s);
  if (t == "lru") return ReplacementPolicy::kLru;
  if (t == "fifo") return ReplacementPolicy::kFifo;
  if (t == "random") return ReplacementPolicy::kRandom;
  throw SimError("unknown replacement policy '" + s + "'");
}

std::string ToString(WritePolicy p) {
  switch (p) {
    case WritePolicy::kWriteThrough:
      return "write_through";
    case WritePolicy::kWriteBack:
      return "write_back";
  }
  return "?";
}

WritePolicy WritePolicyFromString(const std::string& s) {
  const std::string t = ToLower(s);
  if (t == "write_through") return WritePolicy::kWriteThrough;
  if (t == "write_back") return WritePolicy::kWriteBack;
  throw SimError("unknown write policy '" + s + "'");
}

std::string ToString(ParallelMode m) {
  switch (m) {
    case ParallelMode::kAuto:
      return "auto";
    case ParallelMode::kApp:
      return "app";
    case ParallelMode::kIntra:
      return "intra";
  }
  return "?";
}

ParallelMode ParallelModeFromString(const std::string& s) {
  const std::string t = ToLower(s);
  if (t == "auto") return ParallelMode::kAuto;
  if (t == "app") return ParallelMode::kApp;
  if (t == "intra") return ParallelMode::kIntra;
  throw SimError("unknown parallel mode '" + s + "'");
}

GpuConfig::GpuConfig() {
  // The l1 member's defaults describe an L1; adjust the l2 member to a
  // write-back, non-streaming slice with L2-class parameters.
  l2.size_bytes = 256 * 1024;
  l2.assoc = 16;
  l2.banks = 2;
  l2.mshr_entries = 192;
  l2.mshr_max_merge = 4;
  l2.write_policy = WritePolicy::kWriteBack;
  l2.streaming = false;
  l2.latency = 156;
}

namespace {

void ValidateCache(const CacheParams& c, const std::string& which) {
  SS_CHECK(IsPow2(c.line_bytes), which + ": line size must be a power of two");
  SS_CHECK(IsPow2(c.sector_bytes),
           which + ": sector size must be a power of two");
  SS_CHECK(c.sector_bytes <= c.line_bytes && c.line_bytes % c.sector_bytes == 0,
           which + ": line must be a whole number of sectors");
  SS_CHECK(c.assoc > 0, which + ": associativity must be positive");
  SS_CHECK(c.size_bytes % (static_cast<std::uint64_t>(c.line_bytes) * c.assoc)
               == 0,
           which + ": size must be a multiple of line*assoc");
  SS_CHECK(IsPow2(c.num_sets()), which + ": set count must be a power of two");
  SS_CHECK(c.banks > 0 && IsPow2(c.banks),
           which + ": bank count must be a positive power of two");
  SS_CHECK(c.mshr_entries > 0, which + ": need at least one MSHR entry");
  SS_CHECK(c.mshr_max_merge > 0, which + ": MSHR merge limit must be positive");
  SS_CHECK(c.latency > 0, which + ": latency must be positive");
}

void ValidateExecUnit(const ExecUnitConfig& u, const std::string& which) {
  SS_CHECK(u.lanes > 0, which + ": lanes must be positive");
  SS_CHECK(u.latency > 0, which + ": latency must be positive");
}

}  // namespace

void GpuConfig::Validate() const {
  SS_CHECK(num_sms > 0, "num_sms must be positive");
  SS_CHECK(sub_cores_per_sm > 0, "sub_cores_per_sm must be positive");
  SS_CHECK(max_warps_per_sm > 0, "max_warps_per_sm must be positive");
  SS_CHECK(max_warps_per_sm % sub_cores_per_sm == 0,
           "max_warps_per_sm must divide evenly across sub-cores");
  SS_CHECK(max_ctas_per_sm > 0, "max_ctas_per_sm must be positive");
  SS_CHECK(max_threads_per_sm >= kWarpSize,
           "max_threads_per_sm must hold at least one warp");
  SS_CHECK(max_threads_per_sm / kWarpSize >= 1 &&
               max_warps_per_sm <= max_threads_per_sm / kWarpSize,
           "max_warps_per_sm exceeds thread capacity");
  SS_CHECK(registers_per_sm > 0, "registers_per_sm must be positive");
  SS_CHECK(schedulers_per_sub_core > 0,
           "schedulers_per_sub_core must be positive");
  ValidateExecUnit(int_unit, "int_unit");
  ValidateExecUnit(sp_unit, "sp_unit");
  ValidateExecUnit(dp_unit, "dp_unit");
  ValidateExecUnit(sfu_unit, "sfu_unit");
  ValidateExecUnit(tensor_unit, "tensor_unit");
  SS_CHECK(ldst_units_per_sub_core > 0,
           "ldst_units_per_sub_core must be positive");
  SS_CHECK(ldst_queue_depth > 0, "ldst_queue_depth must be positive");
  ValidateCache(l1, "l1");
  ValidateCache(l2, "l2");
  SS_CHECK(l1.line_bytes == l2.line_bytes,
           "L1 and L2 line sizes must match (sector-request protocol)");
  SS_CHECK(l1.sector_bytes == l2.sector_bytes,
           "L1 and L2 sector sizes must match");
  SS_CHECK(num_mem_partitions > 0, "num_mem_partitions must be positive");
  SS_CHECK(noc.bytes_per_cycle > 0, "noc bandwidth must be positive");
  SS_CHECK(noc.input_queue_depth > 0 && noc.output_queue_depth > 0,
           "noc queue depths must be positive");
  SS_CHECK(dram.bytes_per_cycle > 0, "dram bandwidth must be positive");
  SS_CHECK(dram.latency >= dram.row_hit_latency,
           "dram closed-row latency must be >= row-hit latency");
  SS_CHECK(dram.queue_depth > 0, "dram queue depth must be positive");
  SS_CHECK(shared_mem_banks > 0, "shared_mem_banks must be positive");
  SS_CHECK(memo.convergence_min_repeats >= 2,
           "memo.convergence_min_repeats must be at least 2 (convergence "
           "compares consecutive launches)");
  SS_CHECK(memo.convergence_epsilon >= 0,
           "memo.convergence_epsilon must be non-negative");
  SS_CHECK(watchdog.wall_seconds >= 0,
           "watchdog.wall_seconds must be non-negative");
}

namespace {

void LoadCache(const IniFile& ini, const std::string& sec, CacheParams* c) {
  c->size_bytes = ini.GetUint(sec + ".size_bytes", c->size_bytes);
  c->assoc = static_cast<unsigned>(ini.GetUint(sec + ".assoc", c->assoc));
  c->line_bytes =
      static_cast<unsigned>(ini.GetUint(sec + ".line_bytes", c->line_bytes));
  c->sector_bytes = static_cast<unsigned>(
      ini.GetUint(sec + ".sector_bytes", c->sector_bytes));
  c->banks = static_cast<unsigned>(ini.GetUint(sec + ".banks", c->banks));
  c->mshr_entries = static_cast<unsigned>(
      ini.GetUint(sec + ".mshr_entries", c->mshr_entries));
  c->mshr_max_merge = static_cast<unsigned>(
      ini.GetUint(sec + ".mshr_max_merge", c->mshr_max_merge));
  if (ini.Has(sec + ".replacement")) {
    c->replacement =
        ReplacementPolicyFromString(ini.GetString(sec + ".replacement"));
  }
  if (ini.Has(sec + ".write_policy")) {
    c->write_policy = WritePolicyFromString(ini.GetString(sec + ".write_policy"));
  }
  c->latency = static_cast<unsigned>(ini.GetUint(sec + ".latency", c->latency));
  c->streaming = ini.GetBool(sec + ".streaming", c->streaming);
}

void LoadExecUnit(const IniFile& ini, const std::string& sec,
                  ExecUnitConfig* u) {
  u->lanes = static_cast<unsigned>(ini.GetUint(sec + ".lanes", u->lanes));
  u->latency = static_cast<unsigned>(ini.GetUint(sec + ".latency", u->latency));
  u->issue_interval_override = static_cast<unsigned>(
      ini.GetUint(sec + ".issue_interval", u->issue_interval_override));
}

void DumpCache(std::ostringstream& os, const std::string& sec,
               const CacheParams& c) {
  os << "[" << sec << "]\n"
     << "size_bytes = " << c.size_bytes << "\n"
     << "assoc = " << c.assoc << "\n"
     << "line_bytes = " << c.line_bytes << "\n"
     << "sector_bytes = " << c.sector_bytes << "\n"
     << "banks = " << c.banks << "\n"
     << "mshr_entries = " << c.mshr_entries << "\n"
     << "mshr_max_merge = " << c.mshr_max_merge << "\n"
     << "replacement = " << ToString(c.replacement) << "\n"
     << "write_policy = " << ToString(c.write_policy) << "\n"
     << "latency = " << c.latency << "\n"
     << "streaming = " << (c.streaming ? "true" : "false") << "\n";
}

void DumpExecUnit(std::ostringstream& os, const std::string& sec,
                  const ExecUnitConfig& u) {
  os << "[" << sec << "]\n"
     << "lanes = " << u.lanes << "\n"
     << "latency = " << u.latency << "\n"
     << "issue_interval = " << u.issue_interval_override << "\n";
}

}  // namespace

GpuConfig GpuConfig::FromIni(const IniFile& ini) {
  return FromIni(ini, GpuConfig());
}

GpuConfig GpuConfig::FromIni(const IniFile& ini, GpuConfig base) {
  GpuConfig c = std::move(base);
  c.name = ini.GetString("gpu.name", c.name);
  c.num_sms = static_cast<unsigned>(ini.GetUint("gpu.num_sms", c.num_sms));
  c.sub_cores_per_sm = static_cast<unsigned>(
      ini.GetUint("gpu.sub_cores_per_sm", c.sub_cores_per_sm));
  c.max_warps_per_sm = static_cast<unsigned>(
      ini.GetUint("gpu.max_warps_per_sm", c.max_warps_per_sm));
  c.max_ctas_per_sm = static_cast<unsigned>(
      ini.GetUint("gpu.max_ctas_per_sm", c.max_ctas_per_sm));
  c.max_threads_per_sm = static_cast<unsigned>(
      ini.GetUint("gpu.max_threads_per_sm", c.max_threads_per_sm));
  c.registers_per_sm = ini.GetUint("gpu.registers_per_sm", c.registers_per_sm);
  c.shared_mem_per_sm =
      ini.GetUint("gpu.shared_mem_per_sm", c.shared_mem_per_sm);
  if (ini.Has("core.sched_policy")) {
    c.sched_policy = SchedPolicyFromString(ini.GetString("core.sched_policy"));
  }
  c.schedulers_per_sub_core = static_cast<unsigned>(
      ini.GetUint("core.schedulers_per_sub_core", c.schedulers_per_sub_core));
  LoadExecUnit(ini, "int_unit", &c.int_unit);
  LoadExecUnit(ini, "sp_unit", &c.sp_unit);
  LoadExecUnit(ini, "dp_unit", &c.dp_unit);
  LoadExecUnit(ini, "sfu_unit", &c.sfu_unit);
  LoadExecUnit(ini, "tensor_unit", &c.tensor_unit);
  c.ldst_units_per_sub_core = static_cast<unsigned>(
      ini.GetUint("core.ldst_units_per_sub_core", c.ldst_units_per_sub_core));
  c.ldst_queue_depth = static_cast<unsigned>(
      ini.GetUint("core.ldst_queue_depth", c.ldst_queue_depth));
  LoadCache(ini, "l1", &c.l1);
  LoadCache(ini, "l2", &c.l2);
  c.shared_mem_latency = static_cast<unsigned>(
      ini.GetUint("core.shared_mem_latency", c.shared_mem_latency));
  c.shared_mem_banks = static_cast<unsigned>(
      ini.GetUint("core.shared_mem_banks", c.shared_mem_banks));
  c.num_mem_partitions = static_cast<unsigned>(
      ini.GetUint("mem.num_partitions", c.num_mem_partitions));
  c.l2_drain_attempts = static_cast<unsigned>(
      ini.GetUint("mem.l2_drain_attempts", c.l2_drain_attempts));
  c.noc.latency =
      static_cast<unsigned>(ini.GetUint("noc.latency", c.noc.latency));
  c.noc.bytes_per_cycle = static_cast<unsigned>(
      ini.GetUint("noc.bytes_per_cycle", c.noc.bytes_per_cycle));
  c.noc.input_queue_depth = static_cast<unsigned>(
      ini.GetUint("noc.input_queue_depth", c.noc.input_queue_depth));
  c.noc.output_queue_depth = static_cast<unsigned>(
      ini.GetUint("noc.output_queue_depth", c.noc.output_queue_depth));
  c.dram.latency =
      static_cast<unsigned>(ini.GetUint("dram.latency", c.dram.latency));
  c.dram.row_hit_latency = static_cast<unsigned>(
      ini.GetUint("dram.row_hit_latency", c.dram.row_hit_latency));
  c.dram.row_bytes =
      static_cast<unsigned>(ini.GetUint("dram.row_bytes", c.dram.row_bytes));
  c.dram.bytes_per_cycle = static_cast<unsigned>(
      ini.GetUint("dram.bytes_per_cycle", c.dram.bytes_per_cycle));
  c.dram.queue_depth = static_cast<unsigned>(
      ini.GetUint("dram.queue_depth", c.dram.queue_depth));
  c.effects.enabled = ini.GetBool("effects.enabled", c.effects.enabled);
  c.effects.icache_miss_rate =
      ini.GetDouble("effects.icache_miss_rate", c.effects.icache_miss_rate);
  c.effects.icache_miss_penalty = static_cast<unsigned>(ini.GetUint(
      "effects.icache_miss_penalty", c.effects.icache_miss_penalty));
  c.effects.regbank_conflict_rate = ini.GetDouble(
      "effects.regbank_conflict_rate", c.effects.regbank_conflict_rate);
  c.effects.writeback_bus_width = static_cast<unsigned>(ini.GetUint(
      "effects.writeback_bus_width", c.effects.writeback_bus_width));
  c.effects.dram_refresh_interval = static_cast<unsigned>(ini.GetUint(
      "effects.dram_refresh_interval", c.effects.dram_refresh_interval));
  c.effects.dram_refresh_penalty = static_cast<unsigned>(ini.GetUint(
      "effects.dram_refresh_penalty", c.effects.dram_refresh_penalty));
  c.effects.kernel_launch_overhead = static_cast<unsigned>(ini.GetUint(
      "effects.kernel_launch_overhead", c.effects.kernel_launch_overhead));
  c.effects.l2_latency_extra = static_cast<unsigned>(ini.GetUint(
      "effects.l2_latency_extra", c.effects.l2_latency_extra));
  c.effects.dram_latency_extra = static_cast<unsigned>(ini.GetUint(
      "effects.dram_latency_extra", c.effects.dram_latency_extra));
  c.cycle_skip = ini.GetBool("sim.cycle_skip", c.cycle_skip);
  c.memo.enabled = ini.GetBool("memo.enabled", c.memo.enabled);
  c.memo.detailed_convergence =
      ini.GetBool("memo.detailed_convergence", c.memo.detailed_convergence);
  c.memo.convergence_min_repeats = static_cast<unsigned>(ini.GetUint(
      "memo.convergence_min_repeats", c.memo.convergence_min_repeats));
  c.memo.convergence_epsilon =
      ini.GetDouble("memo.convergence_epsilon", c.memo.convergence_epsilon);
  c.memo.max_entries = ini.GetUint("memo.max_entries", c.memo.max_entries);
  c.memo.max_bytes = ini.GetUint("memo.max_bytes", c.memo.max_bytes);
  c.trace.cache_dir = ini.GetString("trace.cache_dir", c.trace.cache_dir);
  c.trace.parallel_build =
      ini.GetBool("trace.parallel_build", c.trace.parallel_build);
  if (ini.Has("parallel.mode")) {
    c.parallel.mode = ParallelModeFromString(ini.GetString("parallel.mode"));
  }
  c.watchdog.stall_cycles =
      ini.GetUint("watchdog.stall_cycles", c.watchdog.stall_cycles);
  c.watchdog.wall_seconds =
      ini.GetDouble("watchdog.wall_seconds", c.watchdog.wall_seconds);
  c.watchdog.dump_dir = ini.GetString("watchdog.dump_dir", c.watchdog.dump_dir);
  c.degrade.on_hang = ini.GetBool("degrade.on_hang", c.degrade.on_hang);
  c.degrade.max_retries = static_cast<unsigned>(
      ini.GetUint("degrade.max_retries", c.degrade.max_retries));
  c.Validate();
  return c;
}

std::string GpuConfig::ToIniString() const {
  std::ostringstream os;
  os << "[gpu]\n"
     << "name = " << name << "\n"
     << "num_sms = " << num_sms << "\n"
     << "sub_cores_per_sm = " << sub_cores_per_sm << "\n"
     << "max_warps_per_sm = " << max_warps_per_sm << "\n"
     << "max_ctas_per_sm = " << max_ctas_per_sm << "\n"
     << "max_threads_per_sm = " << max_threads_per_sm << "\n"
     << "registers_per_sm = " << registers_per_sm << "\n"
     << "shared_mem_per_sm = " << shared_mem_per_sm << "\n";
  os << "[core]\n"
     << "sched_policy = " << ToString(sched_policy) << "\n"
     << "schedulers_per_sub_core = " << schedulers_per_sub_core << "\n"
     << "ldst_units_per_sub_core = " << ldst_units_per_sub_core << "\n"
     << "ldst_queue_depth = " << ldst_queue_depth << "\n"
     << "shared_mem_latency = " << shared_mem_latency << "\n"
     << "shared_mem_banks = " << shared_mem_banks << "\n";
  DumpExecUnit(os, "int_unit", int_unit);
  DumpExecUnit(os, "sp_unit", sp_unit);
  DumpExecUnit(os, "dp_unit", dp_unit);
  DumpExecUnit(os, "sfu_unit", sfu_unit);
  DumpExecUnit(os, "tensor_unit", tensor_unit);
  DumpCache(os, "l1", l1);
  DumpCache(os, "l2", l2);
  os << "[mem]\n"
     << "num_partitions = " << num_mem_partitions << "\n"
     << "l2_drain_attempts = " << l2_drain_attempts << "\n";
  os << "[noc]\n"
     << "latency = " << noc.latency << "\n"
     << "bytes_per_cycle = " << noc.bytes_per_cycle << "\n"
     << "input_queue_depth = " << noc.input_queue_depth << "\n"
     << "output_queue_depth = " << noc.output_queue_depth << "\n";
  os << "[dram]\n"
     << "latency = " << dram.latency << "\n"
     << "row_hit_latency = " << dram.row_hit_latency << "\n"
     << "row_bytes = " << dram.row_bytes << "\n"
     << "bytes_per_cycle = " << dram.bytes_per_cycle << "\n"
     << "queue_depth = " << dram.queue_depth << "\n";
  os << "[effects]\n"
     << "enabled = " << (effects.enabled ? "true" : "false") << "\n"
     << "icache_miss_rate = " << effects.icache_miss_rate << "\n"
     << "icache_miss_penalty = " << effects.icache_miss_penalty << "\n"
     << "regbank_conflict_rate = " << effects.regbank_conflict_rate << "\n"
     << "writeback_bus_width = " << effects.writeback_bus_width << "\n"
     << "dram_refresh_interval = " << effects.dram_refresh_interval << "\n"
     << "dram_refresh_penalty = " << effects.dram_refresh_penalty << "\n"
     << "kernel_launch_overhead = " << effects.kernel_launch_overhead << "\n"
     << "l2_latency_extra = " << effects.l2_latency_extra << "\n"
     << "dram_latency_extra = " << effects.dram_latency_extra << "\n";
  os << "[sim]\n"
     << "cycle_skip = " << (cycle_skip ? "true" : "false") << "\n";
  os << "[memo]\n"
     << "enabled = " << (memo.enabled ? "true" : "false") << "\n"
     << "detailed_convergence = "
     << (memo.detailed_convergence ? "true" : "false") << "\n"
     << "convergence_min_repeats = " << memo.convergence_min_repeats << "\n"
     << "convergence_epsilon = " << memo.convergence_epsilon << "\n"
     << "max_entries = " << memo.max_entries << "\n"
     << "max_bytes = " << memo.max_bytes << "\n";
  os << "[trace]\n"
     << "cache_dir = " << trace.cache_dir << "\n"
     << "parallel_build = " << (trace.parallel_build ? "true" : "false")
     << "\n";
  os << "[parallel]\n"
     << "mode = " << ToString(parallel.mode) << "\n";
  os << "[watchdog]\n"
     << "stall_cycles = " << watchdog.stall_cycles << "\n"
     << "wall_seconds = " << watchdog.wall_seconds << "\n"
     << "dump_dir = " << watchdog.dump_dir << "\n";
  os << "[degrade]\n"
     << "on_hang = " << (degrade.on_hang ? "true" : "false") << "\n"
     << "max_retries = " << degrade.max_retries << "\n";
  return os.str();
}

std::uint64_t GpuConfig::CanonicalHash() const {
  const std::string ini = ToIniString();
  // Chained splitmix over length-prefixed 8-byte chunks; byte-order
  // independent, so the hash is stable across platforms.
  std::uint64_t h = HashMix(ini.size() + 0x636f6e666968ull);
  std::uint64_t word = 0;
  unsigned shift = 0;
  for (const char c : ini) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << shift;
    shift += 8;
    if (shift == 64) {
      h = HashMix(h ^ word);
      word = 0;
      shift = 0;
    }
  }
  if (shift != 0) h = HashMix(h ^ word);
  return h;
}

}  // namespace swiftsim
