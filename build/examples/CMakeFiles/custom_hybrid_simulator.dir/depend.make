# Empty dependencies file for custom_hybrid_simulator.
# This may be replaced when dependencies are built.
