file(REMOVE_RECURSE
  "CMakeFiles/custom_hybrid_simulator.dir/custom_hybrid_simulator.cpp.o"
  "CMakeFiles/custom_hybrid_simulator.dir/custom_hybrid_simulator.cpp.o.d"
  "custom_hybrid_simulator"
  "custom_hybrid_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_hybrid_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
