
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/accelsim_import.cc" "src/trace/CMakeFiles/swiftsim_trace.dir/accelsim_import.cc.o" "gcc" "src/trace/CMakeFiles/swiftsim_trace.dir/accelsim_import.cc.o.d"
  "/root/repo/src/trace/isa.cc" "src/trace/CMakeFiles/swiftsim_trace.dir/isa.cc.o" "gcc" "src/trace/CMakeFiles/swiftsim_trace.dir/isa.cc.o.d"
  "/root/repo/src/trace/kernel.cc" "src/trace/CMakeFiles/swiftsim_trace.dir/kernel.cc.o" "gcc" "src/trace/CMakeFiles/swiftsim_trace.dir/kernel.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/swiftsim_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/swiftsim_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/trace/CMakeFiles/swiftsim_trace.dir/trace_stats.cc.o" "gcc" "src/trace/CMakeFiles/swiftsim_trace.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
