file(REMOVE_RECURSE
  "libswiftsim_trace.a"
)
