# Empty dependencies file for swiftsim_trace.
# This may be replaced when dependencies are built.
