file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_trace.dir/accelsim_import.cc.o"
  "CMakeFiles/swiftsim_trace.dir/accelsim_import.cc.o.d"
  "CMakeFiles/swiftsim_trace.dir/isa.cc.o"
  "CMakeFiles/swiftsim_trace.dir/isa.cc.o.d"
  "CMakeFiles/swiftsim_trace.dir/kernel.cc.o"
  "CMakeFiles/swiftsim_trace.dir/kernel.cc.o.d"
  "CMakeFiles/swiftsim_trace.dir/trace_io.cc.o"
  "CMakeFiles/swiftsim_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/swiftsim_trace.dir/trace_stats.cc.o"
  "CMakeFiles/swiftsim_trace.dir/trace_stats.cc.o.d"
  "libswiftsim_trace.a"
  "libswiftsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
