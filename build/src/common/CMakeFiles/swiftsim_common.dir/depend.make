# Empty dependencies file for swiftsim_common.
# This may be replaced when dependencies are built.
