file(REMOVE_RECURSE
  "libswiftsim_common.a"
)
