file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_common.dir/log.cc.o"
  "CMakeFiles/swiftsim_common.dir/log.cc.o.d"
  "CMakeFiles/swiftsim_common.dir/stats.cc.o"
  "CMakeFiles/swiftsim_common.dir/stats.cc.o.d"
  "CMakeFiles/swiftsim_common.dir/strutil.cc.o"
  "CMakeFiles/swiftsim_common.dir/strutil.cc.o.d"
  "libswiftsim_common.a"
  "libswiftsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
