# Empty compiler generated dependencies file for swiftsim_swiftsim.
# This may be replaced when dependencies are built.
