file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_swiftsim.dir/parallel.cc.o"
  "CMakeFiles/swiftsim_swiftsim.dir/parallel.cc.o.d"
  "CMakeFiles/swiftsim_swiftsim.dir/sampling.cc.o"
  "CMakeFiles/swiftsim_swiftsim.dir/sampling.cc.o.d"
  "CMakeFiles/swiftsim_swiftsim.dir/simulator.cc.o"
  "CMakeFiles/swiftsim_swiftsim.dir/simulator.cc.o.d"
  "libswiftsim_swiftsim.a"
  "libswiftsim_swiftsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_swiftsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
