file(REMOVE_RECURSE
  "libswiftsim_swiftsim.a"
)
