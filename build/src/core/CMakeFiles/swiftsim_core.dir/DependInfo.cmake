
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/barrier.cc" "src/core/CMakeFiles/swiftsim_core.dir/barrier.cc.o" "gcc" "src/core/CMakeFiles/swiftsim_core.dir/barrier.cc.o.d"
  "/root/repo/src/core/cta_allocator.cc" "src/core/CMakeFiles/swiftsim_core.dir/cta_allocator.cc.o" "gcc" "src/core/CMakeFiles/swiftsim_core.dir/cta_allocator.cc.o.d"
  "/root/repo/src/core/exec_unit.cc" "src/core/CMakeFiles/swiftsim_core.dir/exec_unit.cc.o" "gcc" "src/core/CMakeFiles/swiftsim_core.dir/exec_unit.cc.o.d"
  "/root/repo/src/core/ldst_unit.cc" "src/core/CMakeFiles/swiftsim_core.dir/ldst_unit.cc.o" "gcc" "src/core/CMakeFiles/swiftsim_core.dir/ldst_unit.cc.o.d"
  "/root/repo/src/core/operand_collector.cc" "src/core/CMakeFiles/swiftsim_core.dir/operand_collector.cc.o" "gcc" "src/core/CMakeFiles/swiftsim_core.dir/operand_collector.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/swiftsim_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/swiftsim_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/scoreboard.cc" "src/core/CMakeFiles/swiftsim_core.dir/scoreboard.cc.o" "gcc" "src/core/CMakeFiles/swiftsim_core.dir/scoreboard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/swiftsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
