file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_core.dir/barrier.cc.o"
  "CMakeFiles/swiftsim_core.dir/barrier.cc.o.d"
  "CMakeFiles/swiftsim_core.dir/cta_allocator.cc.o"
  "CMakeFiles/swiftsim_core.dir/cta_allocator.cc.o.d"
  "CMakeFiles/swiftsim_core.dir/exec_unit.cc.o"
  "CMakeFiles/swiftsim_core.dir/exec_unit.cc.o.d"
  "CMakeFiles/swiftsim_core.dir/ldst_unit.cc.o"
  "CMakeFiles/swiftsim_core.dir/ldst_unit.cc.o.d"
  "CMakeFiles/swiftsim_core.dir/operand_collector.cc.o"
  "CMakeFiles/swiftsim_core.dir/operand_collector.cc.o.d"
  "CMakeFiles/swiftsim_core.dir/scheduler.cc.o"
  "CMakeFiles/swiftsim_core.dir/scheduler.cc.o.d"
  "CMakeFiles/swiftsim_core.dir/scoreboard.cc.o"
  "CMakeFiles/swiftsim_core.dir/scoreboard.cc.o.d"
  "libswiftsim_core.a"
  "libswiftsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
