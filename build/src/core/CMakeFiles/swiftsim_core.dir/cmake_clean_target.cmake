file(REMOVE_RECURSE
  "libswiftsim_core.a"
)
