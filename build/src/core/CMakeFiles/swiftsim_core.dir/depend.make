# Empty dependencies file for swiftsim_core.
# This may be replaced when dependencies are built.
