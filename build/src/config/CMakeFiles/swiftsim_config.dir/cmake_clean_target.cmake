file(REMOVE_RECURSE
  "libswiftsim_config.a"
)
