
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/gpu_config.cc" "src/config/CMakeFiles/swiftsim_config.dir/gpu_config.cc.o" "gcc" "src/config/CMakeFiles/swiftsim_config.dir/gpu_config.cc.o.d"
  "/root/repo/src/config/ini.cc" "src/config/CMakeFiles/swiftsim_config.dir/ini.cc.o" "gcc" "src/config/CMakeFiles/swiftsim_config.dir/ini.cc.o.d"
  "/root/repo/src/config/presets.cc" "src/config/CMakeFiles/swiftsim_config.dir/presets.cc.o" "gcc" "src/config/CMakeFiles/swiftsim_config.dir/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
