# Empty dependencies file for swiftsim_config.
# This may be replaced when dependencies are built.
