file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_config.dir/gpu_config.cc.o"
  "CMakeFiles/swiftsim_config.dir/gpu_config.cc.o.d"
  "CMakeFiles/swiftsim_config.dir/ini.cc.o"
  "CMakeFiles/swiftsim_config.dir/ini.cc.o.d"
  "CMakeFiles/swiftsim_config.dir/presets.cc.o"
  "CMakeFiles/swiftsim_config.dir/presets.cc.o.d"
  "libswiftsim_config.a"
  "libswiftsim_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
