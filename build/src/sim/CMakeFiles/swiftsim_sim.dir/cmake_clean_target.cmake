file(REMOVE_RECURSE
  "libswiftsim_sim.a"
)
