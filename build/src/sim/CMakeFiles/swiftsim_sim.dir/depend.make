# Empty dependencies file for swiftsim_sim.
# This may be replaced when dependencies are built.
