
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block_scheduler.cc" "src/sim/CMakeFiles/swiftsim_sim.dir/block_scheduler.cc.o" "gcc" "src/sim/CMakeFiles/swiftsim_sim.dir/block_scheduler.cc.o.d"
  "/root/repo/src/sim/gpu_model.cc" "src/sim/CMakeFiles/swiftsim_sim.dir/gpu_model.cc.o" "gcc" "src/sim/CMakeFiles/swiftsim_sim.dir/gpu_model.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/swiftsim_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/swiftsim_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/swiftsim_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/swiftsim_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/sim/CMakeFiles/swiftsim_sim.dir/sm.cc.o" "gcc" "src/sim/CMakeFiles/swiftsim_sim.dir/sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytical/CMakeFiles/swiftsim_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swiftsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/swiftsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
