file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_sim.dir/block_scheduler.cc.o"
  "CMakeFiles/swiftsim_sim.dir/block_scheduler.cc.o.d"
  "CMakeFiles/swiftsim_sim.dir/gpu_model.cc.o"
  "CMakeFiles/swiftsim_sim.dir/gpu_model.cc.o.d"
  "CMakeFiles/swiftsim_sim.dir/metrics.cc.o"
  "CMakeFiles/swiftsim_sim.dir/metrics.cc.o.d"
  "CMakeFiles/swiftsim_sim.dir/report.cc.o"
  "CMakeFiles/swiftsim_sim.dir/report.cc.o.d"
  "CMakeFiles/swiftsim_sim.dir/sm.cc.o"
  "CMakeFiles/swiftsim_sim.dir/sm.cc.o.d"
  "libswiftsim_sim.a"
  "libswiftsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
