# Empty compiler generated dependencies file for swiftsim_workloads.
# This may be replaced when dependencies are built.
