file(REMOVE_RECURSE
  "libswiftsim_workloads.a"
)
