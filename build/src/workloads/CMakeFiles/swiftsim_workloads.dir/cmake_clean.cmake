file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_workloads.dir/gen_util.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/gen_util.cc.o.d"
  "CMakeFiles/swiftsim_workloads.dir/mars.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/mars.cc.o.d"
  "CMakeFiles/swiftsim_workloads.dir/pannotia.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/pannotia.cc.o.d"
  "CMakeFiles/swiftsim_workloads.dir/patterns.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/patterns.cc.o.d"
  "CMakeFiles/swiftsim_workloads.dir/polybench.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/polybench.cc.o.d"
  "CMakeFiles/swiftsim_workloads.dir/rodinia.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/rodinia.cc.o.d"
  "CMakeFiles/swiftsim_workloads.dir/tango.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/tango.cc.o.d"
  "CMakeFiles/swiftsim_workloads.dir/workload.cc.o"
  "CMakeFiles/swiftsim_workloads.dir/workload.cc.o.d"
  "libswiftsim_workloads.a"
  "libswiftsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
