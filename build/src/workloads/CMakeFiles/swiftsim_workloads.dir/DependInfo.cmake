
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/gen_util.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/gen_util.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/gen_util.cc.o.d"
  "/root/repo/src/workloads/mars.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/mars.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/mars.cc.o.d"
  "/root/repo/src/workloads/pannotia.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/pannotia.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/pannotia.cc.o.d"
  "/root/repo/src/workloads/patterns.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/patterns.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/patterns.cc.o.d"
  "/root/repo/src/workloads/polybench.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/polybench.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/polybench.cc.o.d"
  "/root/repo/src/workloads/rodinia.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/rodinia.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/rodinia.cc.o.d"
  "/root/repo/src/workloads/tango.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/tango.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/tango.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/swiftsim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
