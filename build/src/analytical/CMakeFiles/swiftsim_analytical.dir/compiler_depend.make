# Empty compiler generated dependencies file for swiftsim_analytical.
# This may be replaced when dependencies are built.
