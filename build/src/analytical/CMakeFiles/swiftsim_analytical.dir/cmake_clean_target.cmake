file(REMOVE_RECURSE
  "libswiftsim_analytical.a"
)
