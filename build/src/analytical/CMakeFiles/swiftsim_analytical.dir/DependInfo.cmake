
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytical/cache_prepass.cc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/cache_prepass.cc.o" "gcc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/cache_prepass.cc.o.d"
  "/root/repo/src/analytical/functional_cache.cc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/functional_cache.cc.o" "gcc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/functional_cache.cc.o.d"
  "/root/repo/src/analytical/interval_model.cc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/interval_model.cc.o" "gcc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/interval_model.cc.o.d"
  "/root/repo/src/analytical/mem_model.cc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/mem_model.cc.o" "gcc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/mem_model.cc.o.d"
  "/root/repo/src/analytical/rd_profile.cc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/rd_profile.cc.o" "gcc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/rd_profile.cc.o.d"
  "/root/repo/src/analytical/reuse_distance.cc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/reuse_distance.cc.o" "gcc" "src/analytical/CMakeFiles/swiftsim_analytical.dir/reuse_distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/swiftsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/swiftsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
