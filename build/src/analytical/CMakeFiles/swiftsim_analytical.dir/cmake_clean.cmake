file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_analytical.dir/cache_prepass.cc.o"
  "CMakeFiles/swiftsim_analytical.dir/cache_prepass.cc.o.d"
  "CMakeFiles/swiftsim_analytical.dir/functional_cache.cc.o"
  "CMakeFiles/swiftsim_analytical.dir/functional_cache.cc.o.d"
  "CMakeFiles/swiftsim_analytical.dir/interval_model.cc.o"
  "CMakeFiles/swiftsim_analytical.dir/interval_model.cc.o.d"
  "CMakeFiles/swiftsim_analytical.dir/mem_model.cc.o"
  "CMakeFiles/swiftsim_analytical.dir/mem_model.cc.o.d"
  "CMakeFiles/swiftsim_analytical.dir/rd_profile.cc.o"
  "CMakeFiles/swiftsim_analytical.dir/rd_profile.cc.o.d"
  "CMakeFiles/swiftsim_analytical.dir/reuse_distance.cc.o"
  "CMakeFiles/swiftsim_analytical.dir/reuse_distance.cc.o.d"
  "libswiftsim_analytical.a"
  "libswiftsim_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
