
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/addrmap.cc" "src/mem/CMakeFiles/swiftsim_mem.dir/addrmap.cc.o" "gcc" "src/mem/CMakeFiles/swiftsim_mem.dir/addrmap.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/swiftsim_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/swiftsim_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/coalescer.cc" "src/mem/CMakeFiles/swiftsim_mem.dir/coalescer.cc.o" "gcc" "src/mem/CMakeFiles/swiftsim_mem.dir/coalescer.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/swiftsim_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/swiftsim_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/mshr.cc" "src/mem/CMakeFiles/swiftsim_mem.dir/mshr.cc.o" "gcc" "src/mem/CMakeFiles/swiftsim_mem.dir/mshr.cc.o.d"
  "/root/repo/src/mem/noc.cc" "src/mem/CMakeFiles/swiftsim_mem.dir/noc.cc.o" "gcc" "src/mem/CMakeFiles/swiftsim_mem.dir/noc.cc.o.d"
  "/root/repo/src/mem/tag_array.cc" "src/mem/CMakeFiles/swiftsim_mem.dir/tag_array.cc.o" "gcc" "src/mem/CMakeFiles/swiftsim_mem.dir/tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
