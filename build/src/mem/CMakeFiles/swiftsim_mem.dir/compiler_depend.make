# Empty compiler generated dependencies file for swiftsim_mem.
# This may be replaced when dependencies are built.
