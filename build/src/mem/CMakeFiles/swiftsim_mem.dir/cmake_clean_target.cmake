file(REMOVE_RECURSE
  "libswiftsim_mem.a"
)
