file(REMOVE_RECURSE
  "CMakeFiles/swiftsim_mem.dir/addrmap.cc.o"
  "CMakeFiles/swiftsim_mem.dir/addrmap.cc.o.d"
  "CMakeFiles/swiftsim_mem.dir/cache.cc.o"
  "CMakeFiles/swiftsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/swiftsim_mem.dir/coalescer.cc.o"
  "CMakeFiles/swiftsim_mem.dir/coalescer.cc.o.d"
  "CMakeFiles/swiftsim_mem.dir/dram.cc.o"
  "CMakeFiles/swiftsim_mem.dir/dram.cc.o.d"
  "CMakeFiles/swiftsim_mem.dir/mshr.cc.o"
  "CMakeFiles/swiftsim_mem.dir/mshr.cc.o.d"
  "CMakeFiles/swiftsim_mem.dir/noc.cc.o"
  "CMakeFiles/swiftsim_mem.dir/noc.cc.o.d"
  "CMakeFiles/swiftsim_mem.dir/tag_array.cc.o"
  "CMakeFiles/swiftsim_mem.dir/tag_array.cc.o.d"
  "libswiftsim_mem.a"
  "libswiftsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
