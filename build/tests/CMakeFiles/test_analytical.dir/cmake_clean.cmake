file(REMOVE_RECURSE
  "CMakeFiles/test_analytical.dir/test_functional_cache.cc.o"
  "CMakeFiles/test_analytical.dir/test_functional_cache.cc.o.d"
  "CMakeFiles/test_analytical.dir/test_interval_model.cc.o"
  "CMakeFiles/test_analytical.dir/test_interval_model.cc.o.d"
  "CMakeFiles/test_analytical.dir/test_mem_model.cc.o"
  "CMakeFiles/test_analytical.dir/test_mem_model.cc.o.d"
  "CMakeFiles/test_analytical.dir/test_prepass.cc.o"
  "CMakeFiles/test_analytical.dir/test_prepass.cc.o.d"
  "CMakeFiles/test_analytical.dir/test_rd_profile.cc.o"
  "CMakeFiles/test_analytical.dir/test_rd_profile.cc.o.d"
  "CMakeFiles/test_analytical.dir/test_reuse_distance.cc.o"
  "CMakeFiles/test_analytical.dir/test_reuse_distance.cc.o.d"
  "test_analytical"
  "test_analytical.pdb"
  "test_analytical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
