file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/test_accelsim_import.cc.o"
  "CMakeFiles/test_trace.dir/test_accelsim_import.cc.o.d"
  "CMakeFiles/test_trace.dir/test_isa.cc.o"
  "CMakeFiles/test_trace.dir/test_isa.cc.o.d"
  "CMakeFiles/test_trace.dir/test_kernel.cc.o"
  "CMakeFiles/test_trace.dir/test_kernel.cc.o.d"
  "CMakeFiles/test_trace.dir/test_trace_io.cc.o"
  "CMakeFiles/test_trace.dir/test_trace_io.cc.o.d"
  "CMakeFiles/test_trace.dir/test_trace_stats.cc.o"
  "CMakeFiles/test_trace.dir/test_trace_stats.cc.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
