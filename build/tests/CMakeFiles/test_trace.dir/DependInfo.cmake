
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accelsim_import.cc" "tests/CMakeFiles/test_trace.dir/test_accelsim_import.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_accelsim_import.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/test_trace.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/test_trace.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/test_trace.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace_io.cc.o.d"
  "/root/repo/tests/test_trace_stats.cc" "tests/CMakeFiles/test_trace.dir/test_trace_stats.cc.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swiftsim/CMakeFiles/swiftsim_swiftsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swiftsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/swiftsim_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swiftsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/swiftsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/swiftsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
