file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_block_scheduler.cc.o"
  "CMakeFiles/test_sim.dir/test_block_scheduler.cc.o.d"
  "CMakeFiles/test_sim.dir/test_conservation.cc.o"
  "CMakeFiles/test_sim.dir/test_conservation.cc.o.d"
  "CMakeFiles/test_sim.dir/test_gpu_model.cc.o"
  "CMakeFiles/test_sim.dir/test_gpu_model.cc.o.d"
  "CMakeFiles/test_sim.dir/test_metrics.cc.o"
  "CMakeFiles/test_sim.dir/test_metrics.cc.o.d"
  "CMakeFiles/test_sim.dir/test_report.cc.o"
  "CMakeFiles/test_sim.dir/test_report.cc.o.d"
  "CMakeFiles/test_sim.dir/test_sampling.cc.o"
  "CMakeFiles/test_sim.dir/test_sampling.cc.o.d"
  "CMakeFiles/test_sim.dir/test_simulator.cc.o"
  "CMakeFiles/test_sim.dir/test_simulator.cc.o.d"
  "CMakeFiles/test_sim.dir/test_sm.cc.o"
  "CMakeFiles/test_sim.dir/test_sm.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
