
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_block_scheduler.cc" "tests/CMakeFiles/test_sim.dir/test_block_scheduler.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_block_scheduler.cc.o.d"
  "/root/repo/tests/test_conservation.cc" "tests/CMakeFiles/test_sim.dir/test_conservation.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_conservation.cc.o.d"
  "/root/repo/tests/test_gpu_model.cc" "tests/CMakeFiles/test_sim.dir/test_gpu_model.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_gpu_model.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/test_sim.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/test_sim.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_report.cc.o.d"
  "/root/repo/tests/test_sampling.cc" "tests/CMakeFiles/test_sim.dir/test_sampling.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sampling.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/test_sim.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_sm.cc" "tests/CMakeFiles/test_sim.dir/test_sm.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swiftsim/CMakeFiles/swiftsim_swiftsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swiftsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/swiftsim_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swiftsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/swiftsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/swiftsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
