
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_addrmap.cc" "tests/CMakeFiles/test_mem.dir/test_addrmap.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_addrmap.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/test_mem.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_properties.cc" "tests/CMakeFiles/test_mem.dir/test_cache_properties.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_cache_properties.cc.o.d"
  "/root/repo/tests/test_coalescer.cc" "tests/CMakeFiles/test_mem.dir/test_coalescer.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_coalescer.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/test_mem.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_mshr.cc" "tests/CMakeFiles/test_mem.dir/test_mshr.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_mshr.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/test_mem.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_tag_array.cc" "tests/CMakeFiles/test_mem.dir/test_tag_array.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/test_tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swiftsim/CMakeFiles/swiftsim_swiftsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swiftsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/swiftsim_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swiftsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/swiftsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/swiftsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
