file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/test_addrmap.cc.o"
  "CMakeFiles/test_mem.dir/test_addrmap.cc.o.d"
  "CMakeFiles/test_mem.dir/test_cache.cc.o"
  "CMakeFiles/test_mem.dir/test_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/test_cache_properties.cc.o"
  "CMakeFiles/test_mem.dir/test_cache_properties.cc.o.d"
  "CMakeFiles/test_mem.dir/test_coalescer.cc.o"
  "CMakeFiles/test_mem.dir/test_coalescer.cc.o.d"
  "CMakeFiles/test_mem.dir/test_dram.cc.o"
  "CMakeFiles/test_mem.dir/test_dram.cc.o.d"
  "CMakeFiles/test_mem.dir/test_mshr.cc.o"
  "CMakeFiles/test_mem.dir/test_mshr.cc.o.d"
  "CMakeFiles/test_mem.dir/test_noc.cc.o"
  "CMakeFiles/test_mem.dir/test_noc.cc.o.d"
  "CMakeFiles/test_mem.dir/test_tag_array.cc.o"
  "CMakeFiles/test_mem.dir/test_tag_array.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
