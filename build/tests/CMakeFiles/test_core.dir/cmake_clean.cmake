file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_barrier.cc.o"
  "CMakeFiles/test_core.dir/test_barrier.cc.o.d"
  "CMakeFiles/test_core.dir/test_cta_allocator.cc.o"
  "CMakeFiles/test_core.dir/test_cta_allocator.cc.o.d"
  "CMakeFiles/test_core.dir/test_exec_unit.cc.o"
  "CMakeFiles/test_core.dir/test_exec_unit.cc.o.d"
  "CMakeFiles/test_core.dir/test_ldst_unit.cc.o"
  "CMakeFiles/test_core.dir/test_ldst_unit.cc.o.d"
  "CMakeFiles/test_core.dir/test_operand_collector.cc.o"
  "CMakeFiles/test_core.dir/test_operand_collector.cc.o.d"
  "CMakeFiles/test_core.dir/test_scheduler.cc.o"
  "CMakeFiles/test_core.dir/test_scheduler.cc.o.d"
  "CMakeFiles/test_core.dir/test_scoreboard.cc.o"
  "CMakeFiles/test_core.dir/test_scoreboard.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
