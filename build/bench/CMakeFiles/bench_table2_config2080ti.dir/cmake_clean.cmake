file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_config2080ti.dir/bench_table2_config2080ti.cpp.o"
  "CMakeFiles/bench_table2_config2080ti.dir/bench_table2_config2080ti.cpp.o.d"
  "bench_table2_config2080ti"
  "bench_table2_config2080ti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_config2080ti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
