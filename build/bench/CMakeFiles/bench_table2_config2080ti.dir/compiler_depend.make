# Empty compiler generated dependencies file for bench_table2_config2080ti.
# This may be replaced when dependencies are built.
