# Empty compiler generated dependencies file for bench_ablation_dse.
# This may be replaced when dependencies are built.
