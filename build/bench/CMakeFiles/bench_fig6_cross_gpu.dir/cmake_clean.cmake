file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cross_gpu.dir/bench_fig6_cross_gpu.cpp.o"
  "CMakeFiles/bench_fig6_cross_gpu.dir/bench_fig6_cross_gpu.cpp.o.d"
  "bench_fig6_cross_gpu"
  "bench_fig6_cross_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cross_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
