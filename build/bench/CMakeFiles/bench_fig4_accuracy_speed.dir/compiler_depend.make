# Empty compiler generated dependencies file for bench_fig4_accuracy_speed.
# This may be replaced when dependencies are built.
