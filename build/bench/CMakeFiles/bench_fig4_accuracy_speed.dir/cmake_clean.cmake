file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_accuracy_speed.dir/bench_fig4_accuracy_speed.cpp.o"
  "CMakeFiles/bench_fig4_accuracy_speed.dir/bench_fig4_accuracy_speed.cpp.o.d"
  "bench_fig4_accuracy_speed"
  "bench_fig4_accuracy_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_accuracy_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
