file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_speedup_contribution.dir/bench_fig5_speedup_contribution.cpp.o"
  "CMakeFiles/bench_fig5_speedup_contribution.dir/bench_fig5_speedup_contribution.cpp.o.d"
  "bench_fig5_speedup_contribution"
  "bench_fig5_speedup_contribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_speedup_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
