
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_speedup_contribution.cpp" "bench/CMakeFiles/bench_fig5_speedup_contribution.dir/bench_fig5_speedup_contribution.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_speedup_contribution.dir/bench_fig5_speedup_contribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/swiftsim/CMakeFiles/swiftsim_swiftsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swiftsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/swiftsim_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swiftsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/swiftsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/swiftsim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/swiftsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/swiftsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
