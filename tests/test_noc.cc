#include "mem/noc.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

NocConfig SmallNoc() {
  NocConfig cfg;
  cfg.latency = 4;
  cfg.bytes_per_cycle = 32;
  cfg.input_queue_depth = 2;
  cfg.output_queue_depth = 4;
  return cfg;
}

MemRequest Req(Addr line, std::uint32_t sectors, bool store = false) {
  MemRequest r;
  r.line_addr = line;
  r.sector_mask = sectors;
  r.type = store ? MemAccessType::kStore : MemAccessType::kLoad;
  r.id = 1;
  return r;
}

TEST(Xbar, DeliversAfterSerializationPlusLatency) {
  XbarChannel<MemRequest> net(2, 2, SmallNoc(),
                              [](const MemRequest&) { return 8u; });
  ASSERT_TRUE(net.Inject(0, 1, Req(0x1000, 0x1)));
  Cycle now = 0;
  // 8 bytes at 32 B/cycle = 1 serialization cycle + 4 latency.
  for (; now < 5; ++now) {
    net.Tick(now);
    EXPECT_TRUE(net.ejected(1).empty()) << now;
  }
  net.Tick(now);
  ASSERT_EQ(net.ejected(1).size(), 1u);
  EXPECT_EQ(net.ejected(1).front().line_addr, 0x1000u);
}

TEST(Xbar, LargePacketsOccupyThePortLonger) {
  // 136-byte packets at 32 B/cycle serialize for 5 cycles each.
  XbarChannel<MemRequest> net(1, 1, SmallNoc(),
                              [](const MemRequest&) { return 136u; });
  ASSERT_TRUE(net.Inject(0, 0, Req(0x1000, 0xF)));
  ASSERT_TRUE(net.Inject(0, 0, Req(0x2000, 0xF)));
  Cycle now = 0;
  std::vector<Cycle> arrival;
  for (; now < 30 && arrival.size() < 2; ++now) {
    net.Tick(now);
    while (!net.ejected(0).empty()) {
      arrival.push_back(now);
      net.ejected(0).pop_front();
    }
  }
  ASSERT_EQ(arrival.size(), 2u);
  EXPECT_GE(arrival[1] - arrival[0], 5u);  // second waited for the port
}

TEST(Xbar, InjectionQueueBackpressure) {
  XbarChannel<MemRequest> net(1, 1, SmallNoc(),
                              [](const MemRequest&) { return 8u; });
  EXPECT_TRUE(net.Inject(0, 0, Req(0x1000, 0x1)));
  EXPECT_TRUE(net.Inject(0, 0, Req(0x2000, 0x1)));
  EXPECT_FALSE(net.Inject(0, 0, Req(0x3000, 0x1)));  // depth 2
  EXPECT_EQ(net.stats().inject_stalls, 1u);
}

TEST(Xbar, EjectionQueueBoundsInFlight) {
  NocConfig cfg = SmallNoc();
  cfg.output_queue_depth = 1;
  XbarChannel<MemRequest> net(2, 1, cfg,
                              [](const MemRequest&) { return 8u; });
  ASSERT_TRUE(net.Inject(0, 0, Req(0x1000, 0x1)));
  ASSERT_TRUE(net.Inject(1, 0, Req(0x2000, 0x1)));
  for (Cycle now = 0; now < 20; ++now) net.Tick(now);
  // Only one packet can sit in the ejection queue; the other waits until
  // the consumer pops.
  EXPECT_EQ(net.ejected(0).size(), 1u);
  net.ejected(0).pop_front();
  for (Cycle now = 20; now < 40; ++now) net.Tick(now);
  EXPECT_EQ(net.ejected(0).size(), 1u);
}

TEST(Xbar, RoundRobinIsFairAcrossInputs) {
  XbarChannel<MemRequest> net(2, 1, SmallNoc(),
                              [](const MemRequest&) { return 32u; });
  unsigned delivered_from[2] = {0, 0};
  Cycle now = 0;
  for (unsigned round = 0; round < 50; ++round) {
    net.Inject(0, 0, Req(0x1000, 0x1));
    net.Inject(1, 0, Req(0x2000, 0x1));
    net.Tick(now++);
    while (!net.ejected(0).empty()) {
      ++delivered_from[net.ejected(0).front().line_addr == 0x1000 ? 0 : 1];
      net.ejected(0).pop_front();
    }
  }
  for (Cycle extra = 0; extra < 20; ++extra) {
    net.Tick(now++);
    while (!net.ejected(0).empty()) {
      ++delivered_from[net.ejected(0).front().line_addr == 0x1000 ? 0 : 1];
      net.ejected(0).pop_front();
    }
  }
  EXPECT_GT(delivered_from[0], 10u);
  EXPECT_GT(delivered_from[1], 10u);
}

TEST(Interconnect, RequestAndResponsePaths) {
  Interconnect noc(2, 3, SmallNoc(), 32);
  ASSERT_TRUE(noc.InjectRequest(0, 2, Req(0x1000, 0x3)));
  MemResponse resp{7, 0x1000, 0x3, 1};
  ASSERT_TRUE(noc.InjectResponse(2, resp));
  EXPECT_FALSE(noc.quiescent());
  for (Cycle now = 0; now < 20; ++now) noc.Tick(now);
  ASSERT_EQ(noc.requests_at(2).size(), 1u);
  ASSERT_EQ(noc.responses_at(1).size(), 1u);
  EXPECT_EQ(noc.responses_at(1).front().id, 7u);
  noc.requests_at(2).pop_front();
  noc.responses_at(1).pop_front();
  EXPECT_TRUE(noc.quiescent());
}

TEST(Interconnect, StorePayloadCountsBytes) {
  Interconnect noc(1, 1, SmallNoc(), 32);
  noc.InjectRequest(0, 0, Req(0x1000, 0xF, /*store=*/true));
  for (Cycle now = 0; now < 20; ++now) noc.Tick(now);
  // Header (8) + 4 sectors x 32B payload.
  EXPECT_EQ(noc.request_stats().bytes, 8u + 128u);
}

}  // namespace
}  // namespace swiftsim
