// Tests for the GPUMech-style pure-analytical comparator.
#include "analytical/interval_model.h"

#include <gtest/gtest.h>

#include "analytical/cache_prepass.h"
#include "config/presets.h"
#include "sim/gpu_model.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

Application SmallApp(const std::string& name, double scale = 0.05) {
  WorkloadScale s;
  s.scale = scale;
  return BuildWorkload(name, s);
}

TEST(IntervalModel, ProducesPositiveEstimates) {
  const GpuConfig cfg = Rtx2080TiConfig();
  for (const char* name : {"GEMM", "SM", "BFS", "NW"}) {
    const Application app = SmallApp(name);
    const MemProfile profile = BuildMemProfile(app, cfg);
    const IntervalEstimate est = EstimateCycles(app, cfg, profile);
    EXPECT_GT(est.total_cycles, 0u) << name;
    EXPECT_GT(est.issue_cycles, 0.0) << name;
    EXPECT_GE(est.waves, app.kernels.size()) << name;
  }
}

TEST(IntervalModel, MoreCtasMoreWavesMoreCycles) {
  const GpuConfig cfg = Rtx2080TiConfig();
  // One chip wave holds 272 of these CTAs: the large grid needs more
  // waves than the small one.
  const Application small = SmallApp("GEMM", 0.1);
  const Application large = SmallApp("GEMM", 3.0);
  const MemProfile ps = BuildMemProfile(small, cfg);
  const MemProfile pl = BuildMemProfile(large, cfg);
  EXPECT_LT(EstimateCycles(small, cfg, ps).total_cycles,
            EstimateCycles(large, cfg, pl).total_cycles);
}

TEST(IntervalModel, WithinAFactorOfTheDetailedModel) {
  // A pure-analytical model is rough, but it must land within an order
  // of magnitude of cycle-accurate simulation.
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  cfg.Validate();
  for (const char* name : {"GEMM", "SM"}) {
    const Application app = SmallApp(name, 0.03);
    const MemProfile profile = BuildMemProfile(app, cfg);
    const IntervalEstimate est = EstimateCycles(app, cfg, profile);
    GpuModel model(cfg, SelectionFor(SimLevel::kDetailed));
    const Cycle detailed = model.RunApplication(app).total_cycles;
    const double ratio = static_cast<double>(est.total_cycles) /
                         static_cast<double>(detailed);
    EXPECT_GT(ratio, 0.1) << name;
    EXPECT_LT(ratio, 10.0) << name;
  }
}

TEST(IntervalModel, CannotSeeSchedulerPolicy) {
  // The paper's §II-B flexibility argument: a mathematical model has no
  // scheduler-policy parameter at all, so DSE on it is impossible — the
  // estimate is bit-identical across policies.
  const Application app = SmallApp("BFS");
  GpuConfig gto = Rtx2080TiConfig();
  GpuConfig lrr = Rtx2080TiConfig();
  gto.sched_policy = SchedPolicy::kGto;
  lrr.sched_policy = SchedPolicy::kLrr;
  const MemProfile pg = BuildMemProfile(app, gto);
  const MemProfile pl = BuildMemProfile(app, lrr);
  EXPECT_EQ(EstimateCycles(app, gto, pg).total_cycles,
            EstimateCycles(app, lrr, pl).total_cycles);
}

TEST(IntervalModel, BandwidthRooflineBindsStreamingApps) {
  const GpuConfig cfg = Rtx2080TiConfig();
  const Application app = SmallApp("SM", 0.2);  // streaming scan
  const MemProfile profile = BuildMemProfile(app, cfg);
  const IntervalEstimate est = EstimateCycles(app, cfg, profile);
  EXPECT_GT(est.bandwidth_cycles, 0.0);
}

}  // namespace
}  // namespace swiftsim
