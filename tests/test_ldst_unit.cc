#include "core/ldst_unit.h"

#include <gtest/gtest.h>

#include "workloads/patterns.h"

namespace swiftsim {
namespace {

CacheParams TestL1() {
  CacheParams p;
  p.size_bytes = 64 * 1024;
  p.assoc = 4;
  p.line_bytes = 128;
  p.sector_bytes = 32;
  p.banks = 4;
  p.mshr_entries = 32;
  p.mshr_max_merge = 8;
  p.write_policy = WritePolicy::kWriteThrough;
  p.streaming = true;
  p.latency = 4;
  return p;
}

LdstUnitConfig TestCfg() {
  LdstUnitConfig cfg;
  cfg.issue_interval = 8;
  cfg.queue_depth = 4;
  cfg.accesses_per_cycle = 4;
  cfg.smem_latency = 10;
  cfg.smem_banks = 32;
  cfg.const_latency = 6;
  return cfg;
}

struct Harness {
  SectorCache l1{"l1", TestL1(), 0};
  std::vector<std::pair<unsigned, std::uint8_t>> writebacks;
  LdstUnit ldst{TestCfg(), /*sm=*/0, /*instance=*/0, &l1,
                [this](unsigned slot, std::uint8_t dst) {
                  writebacks.emplace_back(slot, dst);
                }};
  Cycle now = 0;

  void Step() {
    ++now;
    l1.BeginCycle(now);
    auto& resp = l1.responses();
    while (!resp.empty()) {
      ldst.OnL1Response(resp.front(), now);
      resp.pop_front();
    }
    ldst.Tick(now);
  }

  /// Answers every outstanding L1 miss immediately (perfect next level).
  void ServeMisses() {
    auto& mq = l1.miss_queue();
    while (!mq.empty()) {
      const MemRequest& r = mq.front();
      if (!r.is_store()) {
        l1.Fill(MemResponse{r.id, r.line_addr, r.sector_mask, r.sm}, now);
      }
      mq.pop_front();
    }
  }
};

/// Splits an AoS instruction into the (record, addrs) pair LdstUnit::Issue
/// takes since the columnar trace refactor.
void IssueAoS(LdstUnit& u, unsigned slot, const TraceInstr& ins, Cycle now) {
  CompactInstr c;
  c.pc = static_cast<std::uint32_t>(ins.pc);
  c.op = ins.op;
  c.dst = ins.dst;
  c.src = ins.src;
  c.active = ins.active;
  u.Issue(slot, c, ins.addrs, now);
}

TraceInstr GlobalLoad(std::uint8_t dst, LaneAddrs addrs,
                      LaneMask mask = kFullMask) {
  TraceInstr ins;
  ins.op = Opcode::kLdGlobal;
  ins.dst = dst;
  ins.active = mask;
  ins.addrs = std::move(addrs);
  return ins;
}

TEST(LdstUnit, CoalescedLoadCompletesOnce) {
  Harness h;
  ASSERT_TRUE(h.ldst.CanAccept(h.now));
  IssueAoS(h.ldst, 2, GlobalLoad(9, CoalescedAddrs(0x1000, 4)), h.now);
  for (int i = 0; i < 20 && h.writebacks.empty(); ++i) {
    h.Step();
    h.ServeMisses();
  }
  ASSERT_EQ(h.writebacks.size(), 1u);
  EXPECT_EQ(h.writebacks[0].first, 2u);
  EXPECT_EQ(h.writebacks[0].second, 9);
  EXPECT_TRUE(h.ldst.quiescent());
  EXPECT_EQ(h.ldst.stats().global_accesses, 1u);  // one coalesced request
}

TEST(LdstUnit, ScatteredLoadInjectsManyAccesses) {
  Harness h;
  LaneAddrs addrs;
  for (unsigned i = 0; i < 32; ++i) addrs.push_back(i * 0x1000);
  IssueAoS(h.ldst, 0, GlobalLoad(9, addrs), h.now);
  for (int i = 0; i < 100 && h.writebacks.empty(); ++i) {
    h.Step();
    h.ServeMisses();
  }
  ASSERT_EQ(h.writebacks.size(), 1u);
  EXPECT_EQ(h.ldst.stats().global_accesses, 32u);
}

TEST(LdstUnit, StoreCompletesOnAcceptance) {
  Harness h;
  TraceInstr st;
  st.op = Opcode::kStGlobal;
  st.dst = kNoReg;
  st.active = kFullMask;
  st.addrs = CoalescedAddrs(0x2000, 4);
  IssueAoS(h.ldst, 1, st, h.now);
  for (int i = 0; i < 10 && h.writebacks.empty(); ++i) h.Step();
  ASSERT_EQ(h.writebacks.size(), 1u);
  EXPECT_EQ(h.writebacks[0].second, kNoReg);
  // The store reached the L1's downstream queue (write-through).
  EXPECT_FALSE(h.l1.miss_queue().empty());
  EXPECT_TRUE(h.l1.miss_queue().front().is_store());
}

TEST(LdstUnit, SharedMemoryFixedLatency) {
  Harness h;
  TraceInstr lds;
  lds.op = Opcode::kLdShared;
  lds.dst = 5;
  lds.active = kFullMask;
  lds.addrs = CoalescedAddrs(0, 4);  // conflict-free across 32 banks
  IssueAoS(h.ldst, 3, lds, h.now);
  Cycle done = 0;
  for (int i = 0; i < 30 && h.writebacks.empty(); ++i) {
    h.Step();
    if (!h.writebacks.empty()) done = h.now;
  }
  EXPECT_EQ(done, TestCfg().smem_latency);  // latency 10, no conflicts
}

TEST(LdstUnit, SharedMemoryBankConflictsSerialize) {
  Harness h;
  TraceInstr lds;
  lds.op = Opcode::kLdShared;
  lds.dst = 5;
  lds.active = kFullMask;
  // Stride of 128 bytes: every lane hits bank 0 -> 32-way conflict.
  lds.addrs = StridedAddrs(0, 128);
  IssueAoS(h.ldst, 0, lds, h.now);
  Cycle done = 0;
  for (int i = 0; i < 100 && h.writebacks.empty(); ++i) {
    h.Step();
    if (!h.writebacks.empty()) done = h.now;
  }
  EXPECT_EQ(done, TestCfg().smem_latency + 31);
  EXPECT_EQ(h.ldst.stats().smem_bank_conflicts, 31u);
}

TEST(LdstUnit, BroadcastSharedAccessIsConflictFree) {
  Harness h;
  TraceInstr lds;
  lds.op = Opcode::kLdShared;
  lds.dst = 5;
  lds.active = kFullMask;
  lds.addrs = BroadcastAddrs(0x40);  // same word: broadcast, 1 cycle
  IssueAoS(h.ldst, 0, lds, h.now);
  for (int i = 0; i < 30 && h.writebacks.empty(); ++i) h.Step();
  EXPECT_EQ(h.ldst.stats().smem_bank_conflicts, 0u);
}

TEST(LdstUnit, ConstantLoadUsesConstLatency) {
  Harness h;
  TraceInstr ldc;
  ldc.op = Opcode::kLdConst;
  ldc.dst = 7;
  ldc.active = kFullMask;
  ldc.addrs = BroadcastAddrs(0x100);
  IssueAoS(h.ldst, 0, ldc, h.now);
  Cycle done = 0;
  for (int i = 0; i < 30 && h.writebacks.empty(); ++i) {
    h.Step();
    if (!h.writebacks.empty()) done = h.now;
  }
  EXPECT_EQ(done, TestCfg().const_latency);
}

TEST(LdstUnit, IssueIntervalGatesAcceptance) {
  Harness h;
  IssueAoS(h.ldst, 0, GlobalLoad(9, CoalescedAddrs(0x1000, 4)), h.now);
  EXPECT_FALSE(h.ldst.CanAccept(h.now));      // same cycle
  EXPECT_FALSE(h.ldst.CanAccept(h.now + 7));  // interval 8
  EXPECT_TRUE(h.ldst.CanAccept(h.now + 8));
}

TEST(LdstUnit, QueueDepthGatesAcceptance) {
  Harness h;
  Cycle t = 0;
  for (unsigned i = 0; i < TestCfg().queue_depth; ++i) {
    t += 8;
    ASSERT_TRUE(h.ldst.CanAccept(t));
    IssueAoS(h.ldst, i, GlobalLoad(9, CoalescedAddrs(0x1000 + i * 0x1000, 4)),
                 t);
  }
  EXPECT_FALSE(h.ldst.CanAccept(t + 8));  // queue full
}

TEST(LdstUnit, OwnsRequestDistinguishesInstances) {
  SectorCache l1("l1", TestL1(), 0);
  LdstUnit a(TestCfg(), 0, /*instance=*/0, &l1, [](unsigned, std::uint8_t) {});
  LdstUnit b(TestCfg(), 0, /*instance=*/1, &l1, [](unsigned, std::uint8_t) {});
  Cycle now = 0;
  l1.BeginCycle(now);
  IssueAoS(a, 0, GlobalLoad(9, CoalescedAddrs(0x1000, 4)), now);
  ++now;
  l1.BeginCycle(now);
  a.Tick(now);
  ASSERT_FALSE(l1.miss_queue().empty());
  // The id the LDST minted is recoverable from the waiting response path:
  // check ownership through an artificial response id from each unit.
  // Unit a minted an id with its tag; unit b must not claim it.
  // (We reconstruct the id via the L1 MSHR waiter -> use Fill.)
  const MemRequest down = l1.miss_queue().front();
  l1.miss_queue().pop_front();
  l1.Fill(MemResponse{down.id, down.line_addr, down.sector_mask, 0}, now);
  ++now;
  l1.BeginCycle(now);
  ASSERT_FALSE(l1.responses().empty());
  const MemResponse resp = l1.responses().front();
  EXPECT_TRUE(a.OwnsRequest(resp.id));
  EXPECT_FALSE(b.OwnsRequest(resp.id));
}

}  // namespace
}  // namespace swiftsim
