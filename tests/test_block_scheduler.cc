#include "sim/block_scheduler.h"

#include <gtest/gtest.h>

#include "config/presets.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  return cfg;
}

std::vector<std::unique_ptr<SmCore>> MakeSms(const GpuConfig& cfg,
                                             BlockScheduler* sched) {
  const ModelSelection sel = SelectionFor(SimLevel::kSwiftSimBasic);
  std::vector<std::unique_ptr<SmCore>> sms;
  for (unsigned s = 0; s < cfg.num_sms; ++s) {
    sms.push_back(std::make_unique<SmCore>(
        cfg, sel, s, nullptr, [sched](SmId) { sched->OnCtaComplete(); }));
  }
  return sms;
}

std::shared_ptr<KernelTrace> FirstKernel(const std::string& name,
                                         double scale = 0.05) {
  WorkloadScale s;
  s.scale = scale;
  return BuildWorkload(name, s).kernels[0];
}

TEST(BlockScheduler, BreadthFirstDistribution) {
  const GpuConfig cfg = SmallGpu();
  BlockScheduler sched;
  auto sms = MakeSms(cfg, &sched);
  const auto kernel = FirstKernel("GEMM");
  sched.StartKernel(kernel.get());
  const unsigned launched = sched.AssignPending(sms);
  EXPECT_GT(launched, 0u);
  // Breadth-first: with >= num_sms CTAs, every SM gets at least one.
  if (kernel->info().num_ctas >= cfg.num_sms) {
    for (const auto& sm : sms) {
      EXPECT_GE(sm->allocator().resident_ctas(), 1u) << sm->id();
    }
    // And the spread is even (within one CTA).
    unsigned lo = ~0u, hi = 0;
    for (const auto& sm : sms) {
      lo = std::min(lo, sm->allocator().resident_ctas());
      hi = std::max(hi, sm->allocator().resident_ctas());
    }
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(BlockScheduler, TracksLaunchedAndCompleted) {
  const GpuConfig cfg = SmallGpu();
  BlockScheduler sched;
  auto sms = MakeSms(cfg, &sched);
  const auto kernel = FirstKernel("SM");
  sched.StartKernel(kernel.get());
  EXPECT_FALSE(sched.Done());
  sched.AssignPending(sms);
  EXPECT_GT(sched.launched(), 0u);
  EXPECT_EQ(sched.completed(), 0u);
}

TEST(BlockScheduler, SecondKernelRequiresFirstDone) {
  BlockScheduler sched;
  const auto kernel = FirstKernel("SM");
  sched.StartKernel(kernel.get());
  EXPECT_THROW(sched.StartKernel(kernel.get()), SimError);
}

TEST(BlockScheduler, AssignStopsWhenSmsFull) {
  const GpuConfig cfg = SmallGpu();
  BlockScheduler sched;
  auto sms = MakeSms(cfg, &sched);
  // 4 SMs hold at most 16 of these CTAs at once; launch far more.
  const auto kernel = FirstKernel("GEMM", 0.5);
  ASSERT_GT(kernel->info().num_ctas, 16u);
  sched.StartKernel(kernel.get());
  sched.AssignPending(sms);
  // Nothing more fits right now: a second call launches nothing.
  EXPECT_EQ(sched.AssignPending(sms), 0u);
  EXPECT_FALSE(sched.AllLaunched());
}

TEST(BlockScheduler, EmptySchedulerIsDone) {
  BlockScheduler sched;
  EXPECT_TRUE(sched.Done());
  EXPECT_TRUE(sched.AllLaunched());
}

}  // namespace
}  // namespace swiftsim
