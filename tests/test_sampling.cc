#include "swiftsim/sampling.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "config/presets.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  return cfg;
}

Application App(const std::string& name, double scale) {
  WorkloadScale s;
  s.scale = scale;
  return BuildWorkload(name, s);
}

TEST(Sampling, FullFractionMatchesFullRun) {
  const GpuConfig cfg = SmallGpu();
  const Application app = App("SM", 0.05);
  const SampledResult sampled =
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimBasic, 1.0);
  const SimResult full = RunSimulation(app, cfg, SimLevel::kSwiftSimBasic);
  EXPECT_EQ(sampled.sampled_ctas, sampled.total_ctas);
  EXPECT_EQ(sampled.estimated_cycles, full.total_cycles);
}

TEST(Sampling, SmallFractionStaysAccurateOnHomogeneousGrids) {
  // SM's CTAs are statistically identical, the friendly case for CTA
  // sampling: a one-wave sample must extrapolate within ~20%.
  const GpuConfig cfg = SmallGpu();
  const Application app = App("SM", 0.4);
  const SampledResult sampled =
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimBasic, 0.1);
  const SimResult full = RunSimulation(app, cfg, SimLevel::kSwiftSimBasic);
  EXPECT_LT(sampled.sampled_ctas, sampled.total_ctas);
  const double rel =
      std::abs(static_cast<double>(sampled.estimated_cycles) -
               static_cast<double>(full.total_cycles)) /
      static_cast<double>(full.total_cycles);
  EXPECT_LT(rel, 0.20);
}

TEST(Sampling, SimulatesLessWork) {
  const GpuConfig cfg = SmallGpu();
  const Application app = App("GEMM", 0.5);
  const SampledResult sampled =
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimBasic, 0.05);
  EXPECT_LT(sampled.simulated_cycles, sampled.estimated_cycles);
  EXPECT_LT(sampled.sample_fraction(), 0.6);
}

TEST(Sampling, AlwaysCoversOneFullWave) {
  // Even an extreme fraction keeps one chip wave (contention realism).
  // SM's CTAs use no shared memory: 4 SMs x 4 CTAs = a 16-CTA wave.
  const GpuConfig cfg = SmallGpu();
  const Application app = App("SM", 0.5);
  ASSERT_GT(app.kernels[0]->info().num_ctas, 16u);
  const SampledResult sampled =
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimBasic, 0.0001);
  EXPECT_GE(sampled.sampled_ctas, 16u);
  EXPECT_LT(sampled.sampled_ctas, app.kernels[0]->info().num_ctas);
}

TEST(Sampling, ComposesWithAnalyticalMemory) {
  // The paper's point: sampling is orthogonal — it stacks on either the
  // cycle-accurate or the analytical memory path.
  const GpuConfig cfg = SmallGpu();
  const Application app = App("NW", 0.2);
  const SampledResult basic =
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimBasic, 0.2);
  const SampledResult memory =
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimMemory, 0.2);
  EXPECT_GT(basic.estimated_cycles, 0u);
  EXPECT_GT(memory.estimated_cycles, 0u);
}

TEST(Sampling, RejectsBadFraction) {
  const GpuConfig cfg = SmallGpu();
  const Application app = App("SM", 0.05);
  EXPECT_THROW(
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimBasic, 0.0),
      SimError);
  EXPECT_THROW(
      RunSampledSimulation(app, cfg, SimLevel::kSwiftSimBasic, 1.5),
      SimError);
}

}  // namespace
}  // namespace swiftsim
