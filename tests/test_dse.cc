// DSE sweep-engine gates (DESIGN.md §13): sweep expansion determinism,
// Pareto/early-stopping decisions that are bit-identical across worker
// counts and independent of point enumeration order, memo-warm vs cold
// equality (including the on-disk round trip), the promoted-points-match-
// reference guarantee, and the never-silent-pruning invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/journal.h"
#include "common/status.h"
#include "config/ini.h"
#include "config/presets.h"
#include "config/sweep_spec.h"
#include "swiftsim/dse_engine.h"
#include "swiftsim/memo_cache.h"
#include "swiftsim/simulator.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

GpuConfig SmallGpu() {
  GpuConfig cfg = Rtx2080TiConfig();
  cfg.num_sms = 4;
  cfg.num_mem_partitions = 2;
  return cfg;
}

Application SmallApp(const std::string& name, double scale = 0.02) {
  WorkloadScale s;
  s.scale = scale;
  return BuildWorkload(name, s);
}

void ClearGlobalCaches() {
  MemoCache::Global().Clear();
  ProfileCache::Global().Clear();
}

/// The small grid the engine tests sweep: 2 x 2 x 2 = 8 points, mixing
/// axes the analytical screen sees (L1 size, SM count) with one it does
/// not (scheduler policy).
SweepSpec::Expansion SmallSweep() {
  SweepSpec spec;
  spec.AddAxis("l1.size_bytes", {"32768", "65536"});
  spec.AddAxis("gpu.num_sms", {"2", "4"});
  spec.AddAxis("core.sched_policy", {"gto", "lrr"});
  return spec.Expand(SmallGpu());
}

// ---------------------------------------------------------------------------
// SweepSpec

TEST(SweepSpec, RejectsEmptyAndDuplicateAxes) {
  SweepSpec spec;
  EXPECT_THROW(spec.AddAxis("l1.size_bytes", {}), SimError);
  EXPECT_THROW(spec.AddAxis("", {"1"}), SimError);
  spec.AddAxis("l1.size_bytes", {"32768"});
  EXPECT_THROW(spec.AddAxis("l1.size_bytes", {"65536"}), SimError);
}

TEST(SweepSpec, ExpansionIsDeterministicAndDeclarationOrderFree) {
  SweepSpec a;
  a.AddAxis("l1.size_bytes", {"32768", "65536"});
  a.AddAxis("gpu.num_sms", {"2", "4"});
  SweepSpec b;  // same axes, opposite declaration order
  b.AddAxis("gpu.num_sms", {"2", "4"});
  b.AddAxis("l1.size_bytes", {"32768", "65536"});

  const auto ea = a.Expand(SmallGpu());
  const auto eb = b.Expand(SmallGpu());
  ASSERT_EQ(ea.points.size(), 4u);
  ASSERT_EQ(ea.points.size(), eb.points.size());
  for (std::size_t i = 0; i < ea.points.size(); ++i) {
    EXPECT_EQ(ea.points[i].label, eb.points[i].label);
    EXPECT_EQ(ea.points[i].cfg_hash, eb.points[i].cfg_hash);
    EXPECT_EQ(ea.points[i].index, i);
  }
  // Distinct configs hash distinctly; re-expansion is bit-identical.
  const auto ea2 = a.Expand(SmallGpu());
  for (std::size_t i = 0; i < ea.points.size(); ++i) {
    EXPECT_EQ(ea.points[i].cfg_hash, ea2.points[i].cfg_hash);
    for (std::size_t j = i + 1; j < ea.points.size(); ++j) {
      EXPECT_NE(ea.points[i].cfg_hash, ea.points[j].cfg_hash);
    }
  }
}

TEST(SweepSpec, FromIniParsesAxisEntries) {
  const IniFile ini = IniFile::ParseString(
      "[sweep]\n"
      "axis.l1.size_bytes = 32768, 65536\n"
      "axis.core.sched_policy = gto, lrr\n");
  const SweepSpec spec = SweepSpec::FromIni(ini);
  ASSERT_EQ(spec.axes().size(), 2u);
  EXPECT_EQ(spec.NumPoints(), 4u);
  // Axes come back sorted by key.
  EXPECT_EQ(spec.axes()[0].key, "core.sched_policy");
  EXPECT_EQ(spec.axes()[1].key, "l1.size_bytes");
  EXPECT_THROW(SweepSpec::FromIni(IniFile::ParseString("[gpu]\nnum_sms=4\n")),
               SimError);
}

TEST(SweepSpec, UnknownAxisKeyThrowsUpFront) {
  SweepSpec spec;
  spec.AddAxis("l1.size_bites", {"32768"});  // typo'd key
  EXPECT_THROW(spec.Expand(SmallGpu()), SimError);
}

TEST(SweepSpec, InvalidCombinationsAreCountedOrThrow) {
  SweepSpec spec;
  // 48000 is not a multiple of line_bytes * assoc -> Validate() fails.
  spec.AddAxis("l1.size_bytes", {"32768", "48000"});
  const auto exp = spec.Expand(SmallGpu(), /*skip_invalid=*/true);
  EXPECT_EQ(exp.points.size(), 1u);
  EXPECT_EQ(exp.skipped_invalid, 1u);
  EXPECT_THROW(spec.Expand(SmallGpu(), /*skip_invalid=*/false), SimError);
}

TEST(SweepSpec, ExpandCappedStridesEvenlyAndDeterministically) {
  SweepSpec spec;
  spec.AddAxis("l1.size_bytes", {"32768", "65536"});
  spec.AddAxis("gpu.num_sms", {"2", "4"});
  spec.AddAxis("core.sched_policy", {"gto", "lrr"});
  const auto full = spec.Expand(SmallGpu());
  const auto capped = spec.ExpandCapped(SmallGpu(), 4);
  ASSERT_EQ(full.points.size(), 8u);
  ASSERT_EQ(capped.points.size(), 4u);
  // Even stride over the canonical order, indices rewritten contiguous.
  for (std::size_t i = 0; i < capped.points.size(); ++i) {
    EXPECT_EQ(capped.points[i].index, i);
    EXPECT_EQ(capped.points[i].cfg_hash, full.points[i * 2].cfg_hash);
    EXPECT_EQ(capped.points[i].label, full.points[i * 2].label);
  }
  // Cap >= size is a no-op; cap 0 means uncapped.
  EXPECT_EQ(spec.ExpandCapped(SmallGpu(), 100).points.size(), 8u);
  EXPECT_EQ(spec.ExpandCapped(SmallGpu(), 0).points.size(), 8u);
}

// ---------------------------------------------------------------------------
// Pareto frontier and area proxy

TEST(Pareto, FrontierIsOrderIndependentAndKeepsTies) {
  const std::vector<dse::Objective> objs = {
      {10, 5}, {5, 10}, {10, 10}, {7, 7}, {10, 5}};
  const auto front = dse::ParetoFrontier(objs);
  EXPECT_TRUE(front[0]);   // best area
  EXPECT_TRUE(front[1]);   // best cycles
  EXPECT_FALSE(front[2]);  // dominated by {10,5} and {7,7}
  EXPECT_TRUE(front[3]);   // trade-off point
  EXPECT_TRUE(front[4]);   // exact tie of [0]: both stay
  // Reversed input marks the same objective values as frontier members.
  std::vector<dse::Objective> rev(objs.rbegin(), objs.rend());
  const auto rfront = dse::ParetoFrontier(rev);
  for (std::size_t i = 0; i < objs.size(); ++i) {
    EXPECT_EQ(front[i], rfront[objs.size() - 1 - i]) << i;
  }
}

TEST(Pareto, AreaProxyRanksResourceGrowth) {
  const GpuConfig base = SmallGpu();
  GpuConfig big_l1 = base;
  big_l1.l1.size_bytes = 2 * base.l1.size_bytes;
  GpuConfig more_sms = base;
  more_sms.num_sms = 2 * base.num_sms;
  GpuConfig big_l2 = base;
  big_l2.l2.size_bytes = 2 * base.l2.size_bytes;
  EXPECT_GT(dse::AreaProxy(big_l1), dse::AreaProxy(base));
  EXPECT_GT(dse::AreaProxy(more_sms), dse::AreaProxy(base));
  EXPECT_GT(dse::AreaProxy(big_l2), dse::AreaProxy(base));
  // Cycle-accurate-only knobs do not change silicon cost.
  GpuConfig lrr = base;
  lrr.sched_policy = SchedPolicy::kLrr;
  EXPECT_EQ(dse::AreaProxy(lrr), dse::AreaProxy(base));
}

// ---------------------------------------------------------------------------
// Screen-rung dedup soundness: the analytical memory model must be
// invariant under the knobs ScreenSignature normalizes away.

TEST(DseEngine, AnalyticalScreenIgnoresCycleAccurateOnlyKnobs) {
  ClearGlobalCaches();
  const Application app = SmallApp("SM");
  const GpuConfig base = SmallGpu();
  const Cycle ref =
      Simulator(app, base, SimLevel::kSwiftSimMemory).Run().total_cycles;

  GpuConfig variant = base;
  variant.sched_policy = SchedPolicy::kLrr;
  variant.l1.replacement = ReplacementPolicy::kFifo;
  variant.l2.replacement = ReplacementPolicy::kRandom;
  ASSERT_NE(variant.CanonicalHash(), base.CanonicalHash());
  EXPECT_EQ(
      Simulator(app, variant, SimLevel::kSwiftSimMemory).Run().total_cycles,
      ref);
  // And a knob the screen does see moves the estimate.
  GpuConfig fewer_sms = base;
  fewer_sms.num_sms = 2;
  EXPECT_NE(
      Simulator(app, fewer_sms, SimLevel::kSwiftSimMemory).Run().total_cycles,
      ref);
}

// ---------------------------------------------------------------------------
// Engine decision gates

dse::DseOptions FastOptions() {
  dse::DseOptions opt;
  opt.threads = 1;
  opt.refine_rung = false;
  opt.min_keep = 1;
  opt.keep_fraction = 0.25;
  opt.max_promote = 2;
  // Basic as the final level keeps the decision-matrix tests quick; the
  // reference-match gate below exercises kDetailed.
  opt.final_level = SimLevel::kSwiftSimBasic;
  return opt;
}

/// Decision fingerprint of a sweep outcome, keyed by cfg_hash so it can
/// be compared across enumeration orders.
std::map<std::uint64_t, std::string> DecisionMap(
    const dse::SweepReport& rep) {
  std::map<std::uint64_t, std::string> out;
  for (const auto& po : rep.points) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "s=%llu f=%llu p=%d fr=%d ",
                  static_cast<unsigned long long>(po.screen_cycles),
                  static_cast<unsigned long long>(po.final_cycles),
                  po.promoted ? 1 : 0, po.frontier ? 1 : 0);
    out[po.cfg_hash] = buf + po.retired_by;
  }
  return out;
}

TEST(DseEngine, DecisionsAreWorkerCountIndependent) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  std::map<std::uint64_t, std::string> ref;
  for (const unsigned threads : {1u, 2u, 4u}) {
    ClearGlobalCaches();
    dse::DseOptions opt = FastOptions();
    opt.threads = threads;
    const auto rep = dse::RunSweep(apps, exp.points, opt);
    const auto dec = DecisionMap(rep);
    if (ref.empty()) {
      ref = dec;
    } else {
      EXPECT_EQ(dec, ref) << "threads=" << threads;
    }
  }
}

TEST(DseEngine, DecisionsAreEnumerationOrderIndependent) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  ClearGlobalCaches();
  const auto ref = DecisionMap(dse::RunSweep(apps, exp.points, FastOptions()));

  // Reverse the points (and reindex, as a caller would).
  std::vector<SweepPoint> reversed(exp.points.rbegin(), exp.points.rend());
  for (std::size_t i = 0; i < reversed.size(); ++i) reversed[i].index = i;
  ClearGlobalCaches();
  const auto rev = DecisionMap(dse::RunSweep(apps, reversed, FastOptions()));
  EXPECT_EQ(rev, ref);
}

TEST(DseEngine, DedupMatchesNoDedupDecisions) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  ClearGlobalCaches();
  dse::DseOptions opt = FastOptions();
  const auto with_dedup = dse::RunSweep(apps, exp.points, opt);
  // Half the 8 points differ only in scheduler policy: 4 sims cover them.
  EXPECT_EQ(with_dedup.screen_sims, 4u);
  EXPECT_EQ(with_dedup.screen_deduped, 4u);

  ClearGlobalCaches();
  opt.dedup_screen = false;
  const auto without = dse::RunSweep(apps, exp.points, opt);
  EXPECT_EQ(without.screen_sims, exp.points.size());
  EXPECT_EQ(without.screen_deduped, 0u);
  EXPECT_EQ(DecisionMap(with_dedup), DecisionMap(without));
}

TEST(DseEngine, MemoWarmSweepIsBitIdenticalToCold) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("BFS")};
  ClearGlobalCaches();
  const auto cold = dse::RunSweep(apps, exp.points, FastOptions());
  EXPECT_EQ(cold.memo_hits, 0u);
  EXPECT_GT(cold.memo_misses, 0u);
  EXPECT_GT(cold.prepass_built, 0u);

  // Same process, warm global caches: every launch replays, every
  // pre-pass is shared, and the decisions do not move.
  const auto warm = dse::RunSweep(apps, exp.points, FastOptions());
  EXPECT_GT(warm.memo_hits, 0u);
  EXPECT_EQ(warm.memo_misses, 0u);
  EXPECT_EQ(warm.prepass_built, 0u);
  EXPECT_EQ(DecisionMap(warm), DecisionMap(cold));

  // On-disk round trip: a fresh cache loaded from the save replays too.
  const std::string path = testing::TempDir() + "dse_memo_roundtrip.bin";
  MemoCache::Global().SaveToFile(path);
  ClearGlobalCaches();
  MemoCache::Global().LoadFromFile(path);
  const auto loaded = dse::RunSweep(apps, exp.points, FastOptions());
  EXPECT_GT(loaded.memo_hits, 0u);
  EXPECT_EQ(loaded.memo_misses, 0u);
  EXPECT_EQ(DecisionMap(loaded), DecisionMap(cold));
  std::remove(path.c_str());
}

TEST(DseEngine, PromotedPointsMatchNoEarlyStoppingReference) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  dse::DseOptions opt = FastOptions();
  opt.final_level = SimLevel::kDetailed;  // the acceptance-level gate

  ClearGlobalCaches();
  const auto pruned = dse::RunSweep(apps, exp.points, opt);
  ClearGlobalCaches();
  dse::DseOptions ref_opt = opt;
  ref_opt.early_stopping = false;
  const auto reference = dse::RunSweep(apps, exp.points, ref_opt);
  ASSERT_EQ(reference.promoted, exp.points.size());

  std::map<std::uint64_t, Cycle> ref_cycles;
  for (const auto& po : reference.points) {
    ref_cycles[po.cfg_hash] = po.final_cycles;
  }
  ASSERT_GT(pruned.promoted, 0u);
  EXPECT_LE(pruned.promoted, opt.max_promote);
  for (const auto& po : pruned.points) {
    if (!po.promoted) continue;
    EXPECT_EQ(po.final_cycles, ref_cycles.at(po.cfg_hash)) << po.label;
    EXPECT_EQ(po.level_reached, SimLevel::kDetailed);
  }
}

// ---------------------------------------------------------------------------
// Crash-consistency gates (DESIGN.md §16): the sweep journal must make a
// killed-and-resumed sweep bit-identical to an uninterrupted one, and must
// refuse journals that do not describe this exact sweep.

/// Truncates `path` to its first `keep` journal records (head included),
/// emulating the prefix a crash at that append boundary leaves behind.
void RewriteJournalPrefix(const std::string& path, std::size_t keep) {
  const JournalRecovery rec = ReadJournal(path);
  SS_CHECK(keep <= rec.records.size(), "prefix longer than journal");
  Journal j;
  j.Open(path, /*truncate=*/true, {});
  for (std::size_t i = 0; i < keep; ++i) j.Append(rec.records[i]);
  j.Close();
}

TEST(DseEngine, FullyJournaledSweepResumesWithoutRecomputing) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  const std::string path = testing::TempDir() + "/dse_resume_full.journal";
  std::remove(path.c_str());

  ClearGlobalCaches();
  dse::DseOptions opt = FastOptions();
  opt.journal_path = path;
  const auto cold = dse::RunSweep(apps, exp.points, opt);
  EXPECT_GT(cold.journal_appends, 0u);
  EXPECT_GT(cold.journal_bytes, 0u);
  EXPECT_EQ(cold.points_resumed, 0u);

  // A complete journal replays every rung result: no new simulations, no
  // new appends, identical decisions.
  ClearGlobalCaches();
  opt.resume = true;
  const auto resumed = dse::RunSweep(apps, exp.points, opt);
  EXPECT_GT(resumed.points_resumed, 0u);
  EXPECT_EQ(resumed.journal_appends, 0u);
  EXPECT_EQ(resumed.memo_misses, 0u);
  EXPECT_EQ(DecisionMap(resumed), DecisionMap(cold));
  std::remove(path.c_str());
}

TEST(DseEngine, ResumeFromEveryCrashPrefixIsBitIdentical) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  const std::string path = testing::TempDir() + "/dse_resume_prefix.journal";
  std::remove(path.c_str());

  ClearGlobalCaches();
  dse::DseOptions opt = FastOptions();
  opt.journal_path = path;
  const auto reference = dse::RunSweep(apps, exp.points, opt);
  const std::size_t records = ReadJournal(path).records.size();
  ASSERT_GT(records, 2u);
  const std::string full = testing::TempDir() + "/dse_resume_prefix.ref";
  std::filesystem::copy_file(path, full,
                             std::filesystem::copy_options::overwrite_existing);

  // Appends are fsync'd in order, so a SIGKILL leaves some record-boundary
  // prefix (plus a torn tail recovery drops). Resume from every one of
  // them — including the empty file a kill-before-head leaves — must
  // reproduce the uninterrupted decisions bit-for-bit.
  dse::DseOptions ropt = opt;
  ropt.resume = true;
  for (std::size_t keep = 0; keep <= records; ++keep) {
    std::filesystem::copy_file(
        full, path, std::filesystem::copy_options::overwrite_existing);
    RewriteJournalPrefix(path, keep);
    ClearGlobalCaches();
    const auto resumed = dse::RunSweep(apps, exp.points, ropt);
    EXPECT_EQ(DecisionMap(resumed), DecisionMap(reference))
        << "resume from " << keep << "/" << records << " records diverged";
  }
  std::remove(path.c_str());
  std::remove(full.c_str());
}

TEST(DseEngine, ResumeRejectsJournalOfADifferentSweep) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  const std::string path = testing::TempDir() + "/dse_resume_foreign.journal";
  std::remove(path.c_str());

  ClearGlobalCaches();
  dse::DseOptions opt = FastOptions();
  opt.journal_path = path;
  dse::RunSweep(apps, exp.points, opt);

  // Same journal, different sweep shape: a pruning knob moved. The head
  // identity pins every decision input, so resume must refuse instead of
  // splicing foreign results into this sweep.
  dse::DseOptions other = opt;
  other.resume = true;
  other.keep_fraction = 0.5;
  ClearGlobalCaches();
  EXPECT_THROW(dse::RunSweep(apps, exp.points, other), SimError);

  // Dropping a point changes the identity too.
  std::vector<SweepPoint> fewer(exp.points.begin(), exp.points.end() - 1);
  dse::DseOptions ropt = opt;
  ropt.resume = true;
  ClearGlobalCaches();
  EXPECT_THROW(dse::RunSweep(apps, fewer, ropt), SimError);
  std::remove(path.c_str());
}

TEST(DseEngine, ResumeRejectsTamperedPruneAndUnknownRecords) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  const std::string path = testing::TempDir() + "/dse_resume_tamper.journal";
  std::remove(path.c_str());

  ClearGlobalCaches();
  dse::DseOptions opt = FastOptions();
  opt.journal_path = path;
  dse::RunSweep(apps, exp.points, opt);
  const JournalRecovery rec = ReadJournal(path);

  // Flip the screen prune decision: drop its last survivor. Replay
  // recomputes the decision from the journaled rung results, so the
  // mismatch is detected, not silently adopted.
  {
    Journal j;
    j.Open(path, /*truncate=*/true, {});
    for (const std::string& r : rec.records) {
      if (r.rfind("prune screen ", 0) == 0) {
        const std::size_t cut = r.find_last_of(' ');
        std::string bent = r.substr(0, cut);
        // Decrement the survivor count to keep the record well-formed.
        const std::size_t n_at = std::string("prune screen ").size();
        const std::size_t n_end = bent.find(' ', n_at);
        const unsigned long n = std::stoul(bent.substr(n_at, n_end - n_at));
        SS_CHECK(n >= 2, "test sweep pruned to fewer than two survivors");
        bent = "prune screen " + std::to_string(n - 1) +
               bent.substr(n_end);
        j.Append(bent);
      } else {
        j.Append(r);
      }
    }
  }
  dse::DseOptions ropt = opt;
  ropt.resume = true;
  ClearGlobalCaches();
  EXPECT_THROW(dse::RunSweep(apps, exp.points, ropt), SimError);

  // An unknown record kind is a version/corruption problem, never skipped.
  {
    Journal j;
    j.Open(path, /*truncate=*/true, {});
    for (const std::string& r : rec.records) j.Append(r);
    j.Append("checkpoint 42");
  }
  ClearGlobalCaches();
  EXPECT_THROW(dse::RunSweep(apps, exp.points, ropt), SimError);
  std::remove(path.c_str());
}

TEST(DseEngine, PruningIsNeverSilent) {
  const auto exp = SmallSweep();
  const std::vector<Application> apps = {SmallApp("SM")};
  ClearGlobalCaches();
  const auto rep = dse::RunSweep(apps, exp.points, FastOptions());
  EXPECT_GT(rep.retired, 0u);
  EXPECT_EQ(rep.retired + rep.promoted, rep.points.size());
  for (const auto& po : rep.points) {
    if (po.promoted) {
      EXPECT_TRUE(po.retired_by.empty()) << po.label;
    } else {
      EXPECT_FALSE(po.retired_by.empty()) << po.label;
      EXPECT_EQ(po.final_cycles, 0u) << po.label;
    }
  }
}

}  // namespace
}  // namespace swiftsim
