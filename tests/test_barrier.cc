#include "core/barrier.h"

#include <gtest/gtest.h>

namespace swiftsim {
namespace {

TEST(Barrier, LastArrivalReleases) {
  BarrierManager bm(4);
  bm.InitCta(0, 3);
  EXPECT_FALSE(bm.Arrive(0));
  EXPECT_EQ(bm.waiting(0), 1u);
  EXPECT_FALSE(bm.Arrive(0));
  EXPECT_TRUE(bm.Arrive(0));  // third arrival releases
  EXPECT_EQ(bm.waiting(0), 0u);
}

TEST(Barrier, ReusableAcrossGenerations) {
  BarrierManager bm(2);
  bm.InitCta(1, 2);
  EXPECT_FALSE(bm.Arrive(1));
  EXPECT_TRUE(bm.Arrive(1));
  // Second barrier round works identically.
  EXPECT_FALSE(bm.Arrive(1));
  EXPECT_TRUE(bm.Arrive(1));
}

TEST(Barrier, SingleWarpCtaReleasesImmediately) {
  BarrierManager bm(1);
  bm.InitCta(0, 1);
  EXPECT_TRUE(bm.Arrive(0));
}

TEST(Barrier, WarpExitShrinksParticipation) {
  BarrierManager bm(1);
  bm.InitCta(0, 3);
  EXPECT_FALSE(bm.Arrive(0));      // 1 of 3
  EXPECT_FALSE(bm.OnWarpExit(0));  // 1 of 2 still short
  EXPECT_TRUE(bm.Arrive(0));       // 2 of 2 releases
}

TEST(Barrier, ExitOfLastMissingWarpReleases) {
  BarrierManager bm(1);
  bm.InitCta(0, 3);
  EXPECT_FALSE(bm.Arrive(0));
  EXPECT_FALSE(bm.Arrive(0));      // 2 of 3 waiting
  EXPECT_TRUE(bm.OnWarpExit(0));   // the third exits: release the two
}

TEST(Barrier, IndependentCtaSlots) {
  BarrierManager bm(2);
  bm.InitCta(0, 2);
  bm.InitCta(1, 2);
  EXPECT_FALSE(bm.Arrive(0));
  EXPECT_FALSE(bm.Arrive(1));
  EXPECT_TRUE(bm.Arrive(1));
  EXPECT_EQ(bm.waiting(0), 1u);  // slot 0 untouched by slot 1's release
}

TEST(Barrier, SlotReuseAfterInit) {
  BarrierManager bm(1);
  bm.InitCta(0, 2);
  EXPECT_FALSE(bm.Arrive(0));
  bm.InitCta(0, 3);  // new CTA in the same slot
  EXPECT_EQ(bm.waiting(0), 0u);
  EXPECT_FALSE(bm.Arrive(0));
  EXPECT_FALSE(bm.Arrive(0));
  EXPECT_TRUE(bm.Arrive(0));
}

}  // namespace
}  // namespace swiftsim
