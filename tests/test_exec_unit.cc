#include "core/exec_unit.h"

#include <gtest/gtest.h>

#include "common/status.h"

#include "config/presets.h"

namespace swiftsim {
namespace {

TEST(ExecPipeline, CompletesAfterLatencyPlusInterval) {
  ExecUnitConfig cfg{16, 4, 0};  // latency 4, issue interval 2
  ExecPipeline pipe(UnitClass::kInt, cfg);
  Cycle now = 0;
  ASSERT_TRUE(pipe.CanIssue(now));
  pipe.Issue(3, 7, now);
  unsigned done_at = 0;
  for (now = 1; now < 20 && pipe.completions().empty(); ++now) {
    pipe.Tick(now);
    if (!pipe.completions().empty()) done_at = static_cast<unsigned>(now);
  }
  // depth = latency + interval - 1 = 5 stages -> writeback on tick 5.
  EXPECT_EQ(done_at, 5u);
  EXPECT_EQ(pipe.completions().front().slot, 3u);
  EXPECT_EQ(pipe.completions().front().dst, 7);
}

TEST(ExecPipeline, IssueIntervalBlocksBackToBack) {
  ExecUnitConfig cfg{16, 4, 0};  // interval 2
  ExecPipeline pipe(UnitClass::kInt, cfg);
  pipe.Issue(0, 1, 0);
  EXPECT_FALSE(pipe.CanIssue(1));
  EXPECT_TRUE(pipe.CanIssue(2));
}

TEST(ExecPipeline, FullThroughputAtFullLanes) {
  ExecUnitConfig cfg{32, 4, 0};  // interval 1
  ExecPipeline pipe(UnitClass::kSp, cfg);
  Cycle now = 0;
  unsigned completed = 0;
  for (; now < 100; ++now) {
    pipe.Tick(now);
    completed += pipe.completions().size();
    pipe.completions().clear();
    if (pipe.CanIssue(now)) pipe.Issue(0, 1, now);
  }
  // Steady state: ~1 completion per cycle after warmup.
  EXPECT_GE(completed, 90u);
}

TEST(ExecPipeline, DpHalfRateInterval) {
  const GpuConfig gpu = Rtx2080TiConfig();
  ExecPipeline pipe(UnitClass::kDp, gpu.dp_unit);
  pipe.Issue(0, 1, 0);
  EXPECT_FALSE(pipe.CanIssue(63));
  EXPECT_TRUE(pipe.CanIssue(64));
}

TEST(ExecPipeline, TracksInFlight) {
  ExecUnitConfig cfg{32, 8, 0};
  ExecPipeline pipe(UnitClass::kSp, cfg);
  EXPECT_FALSE(pipe.busy());
  pipe.Issue(0, 1, 0);
  EXPECT_TRUE(pipe.busy());
  for (Cycle now = 1; now <= pipe.depth(); ++now) pipe.Tick(now);
  pipe.completions().clear();
  EXPECT_FALSE(pipe.busy());
}

TEST(HybridAlu, MatchesPipelineCompletionPlusCollectorConstant) {
  const GpuConfig gpu = Rtx2080TiConfig();
  HybridAluModel hybrid(gpu);
  // ExecPipeline completes at issue + latency + interval - 1 (plus one
  // operand-collection cycle in the detailed path); the hybrid model folds
  // the collection constant in: complete = issue + latency + interval.
  const auto r = hybrid.Issue(UnitClass::kInt, 10);
  EXPECT_EQ(r.complete,
            10 + gpu.int_unit.latency + gpu.int_unit.issue_interval());
}

TEST(HybridAlu, ContentionTrackedCycleAccurately) {
  const GpuConfig gpu = Rtx2080TiConfig();
  HybridAluModel hybrid(gpu);
  EXPECT_TRUE(hybrid.CanIssue(UnitClass::kSfu, 0));
  hybrid.Issue(UnitClass::kSfu, 0);
  // SFU: 4 lanes -> 8-cycle interval.
  EXPECT_FALSE(hybrid.CanIssue(UnitClass::kSfu, 7));
  EXPECT_EQ(hybrid.NextFree(UnitClass::kSfu), 8u);
  EXPECT_TRUE(hybrid.CanIssue(UnitClass::kSfu, 8));
  // Other classes are independent units.
  EXPECT_TRUE(hybrid.CanIssue(UnitClass::kInt, 1));
}

TEST(HybridAlu, PerClassIssueCounters) {
  const GpuConfig gpu = Rtx2080TiConfig();
  HybridAluModel hybrid(gpu);
  hybrid.Issue(UnitClass::kInt, 0);
  hybrid.Issue(UnitClass::kInt, 10);
  hybrid.Issue(UnitClass::kSp, 0);
  EXPECT_EQ(hybrid.issued(UnitClass::kInt), 2u);
  EXPECT_EQ(hybrid.issued(UnitClass::kSp), 1u);
  EXPECT_EQ(hybrid.issued(UnitClass::kDp), 0u);
}

TEST(HybridAlu, RejectsNonAluClasses) {
  const GpuConfig gpu = Rtx2080TiConfig();
  HybridAluModel hybrid(gpu);
  EXPECT_THROW(hybrid.Issue(UnitClass::kLdSt, 0), SimError);
  EXPECT_THROW(hybrid.CanIssue(UnitClass::kControl, 0), SimError);
}

}  // namespace
}  // namespace swiftsim
