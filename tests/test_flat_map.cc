#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace swiftsim {
namespace {

TEST(FlatMap, EmptyMapFindsNothing) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(42), nullptr);
  EXPECT_FALSE(m.contains(42));
  EXPECT_FALSE(m.erase(42));
  EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  m[7] = 70;
  m[9] = 90;
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 70);
  EXPECT_EQ(*m.Find(9), 90);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(7));
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(9), 90);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultInsertsOnce) {
  FlatMap<int, int> m;
  EXPECT_EQ(m[5], 0);  // default-constructed
  m[5] = 3;
  EXPECT_EQ(m[5], 3);  // existing entry returned, not reset
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ClearKeepsCapacityAndDropsEntries) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = static_cast<int>(k);
  m.clear();
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(m.Find(k), nullptr);
  m[3] = 33;
  EXPECT_EQ(*m.Find(3), 33);
}

TEST(FlatMap, ReserveAvoidsRehashUpToN) {
  FlatMap<std::uint64_t, int> m;
  m.Reserve(1000);
  int* p = &m[0];
  for (std::uint64_t k = 1; k < 1000; ++k) m[k] = 1;
  // No rehash happened, so the first entry's address is stable.
  EXPECT_EQ(p, m.Find(0));
}

TEST(FlatMap, BackwardShiftDeletionKeepsChainsIntact) {
  // Force colliding keys through a pigeonhole: more keys than the minimum
  // capacity guarantees probe chains, then erase from the middle of them.
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 64; ++k) keys.push_back(k * 1024);
  for (std::uint64_t k : keys) m[k] = k + 1;
  for (std::size_t i = 0; i < keys.size(); i += 2) m.erase(keys[i]);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(m.Find(keys[i]), nullptr);
    } else {
      ASSERT_NE(m.Find(keys[i]), nullptr) << keys[i];
      EXPECT_EQ(*m.Find(keys[i]), keys[i] + 1);
    }
  }
}

TEST(FlatMap, IterationVisitsEveryLiveEntryOnce) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 1; k <= 50; ++k) m[k] = k;
  std::uint64_t sum = 0;
  std::size_t count = 0;
  for (const auto& [key, value] : m) {
    EXPECT_EQ(key, value);
    sum += value;
    ++count;
  }
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(sum, 50u * 51u / 2u);
}

TEST(FlatMap, RandomChurnMatchesUnorderedMap) {
  FlatMap<std::uint32_t, std::uint32_t> flat;
  std::unordered_map<std::uint32_t, std::uint32_t> ref;
  Rng rng(12345);
  for (int step = 0; step < 20000; ++step) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng.Next() % 512);
    switch (rng.Next() % 3) {
      case 0: {
        const auto val = static_cast<std::uint32_t>(rng.Next());
        flat[key] = val;
        ref[key] = val;
        break;
      }
      case 1:
        EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      default: {
        const auto* f = flat.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(f != nullptr, it != ref.end());
        if (f != nullptr) EXPECT_EQ(*f, it->second);
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    const auto* f = flat.Find(k);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(*f, v);
  }
}

}  // namespace
}  // namespace swiftsim
