#include "core/operand_collector.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

CompactInstr Instr(std::uint8_t dst,
                   std::initializer_list<std::uint8_t> srcs) {
  CompactInstr ins;
  ins.op = Opcode::kFFma;
  ins.dst = dst;
  unsigned i = 0;
  for (std::uint8_t r : srcs) ins.src[i++] = r;
  return ins;
}

OperandCollectorConfig Small() {
  OperandCollectorConfig cfg;
  cfg.units = 2;
  cfg.banks = 4;
  cfg.ports_per_bank = 1;
  return cfg;
}

TEST(OperandCollector, CollectsInOneCycleWithoutConflicts) {
  OperandCollector oc(Small());
  // Sources 1,2,3 map to distinct banks of 4.
  oc.Accept(0, Instr(10, {1, 2, 3}), UnitClass::kSp);
  EXPECT_TRUE(oc.busy());
  oc.Tick(0);
  ASSERT_EQ(oc.ready().size(), 1u);
  EXPECT_EQ(oc.ready().front().slot, 0u);
  EXPECT_EQ(oc.ready().front().dst, 10);
  EXPECT_EQ(oc.ready().front().cls, UnitClass::kSp);
  EXPECT_EQ(oc.bank_conflict_cycles(), 0u);
}

TEST(OperandCollector, BankConflictSerializesReads) {
  OperandCollector oc(Small());
  // r1 and r5 both map to bank 1: two cycles to collect.
  oc.Accept(0, Instr(10, {1, 5}), UnitClass::kSp);
  oc.Tick(0);
  EXPECT_TRUE(oc.ready().empty());
  EXPECT_EQ(oc.bank_conflict_cycles(), 1u);
  oc.Tick(1);
  ASSERT_EQ(oc.ready().size(), 1u);
}

TEST(OperandCollector, CrossUnitBankContention) {
  OperandCollector oc(Small());
  oc.Accept(0, Instr(10, {1}), UnitClass::kSp);
  oc.Accept(1, Instr(11, {5}), UnitClass::kInt);  // same bank as r1
  oc.Tick(0);
  // Only one of the two reads can use bank 1 this cycle.
  EXPECT_EQ(oc.ready().size(), 1u);
  oc.Tick(1);
  EXPECT_EQ(oc.ready().size(), 2u);
}

TEST(OperandCollector, CapacityGatesAccept) {
  OperandCollector oc(Small());
  EXPECT_TRUE(oc.CanAccept());
  oc.Accept(0, Instr(10, {1, 5}), UnitClass::kSp);  // conflicts: stays
  oc.Accept(1, Instr(11, {2, 6}), UnitClass::kSp);
  EXPECT_FALSE(oc.CanAccept());
  oc.Tick(0);  // partial progress, units still held
  EXPECT_FALSE(oc.CanAccept());
  oc.Tick(1);
  EXPECT_TRUE(oc.CanAccept());  // both ready, units released
}

TEST(OperandCollector, ZeroOperandInstrReadyNextTick) {
  OperandCollector oc(Small());
  oc.Accept(2, Instr(9, {}), UnitClass::kInt);
  oc.Tick(0);
  ASSERT_EQ(oc.ready().size(), 1u);
  EXPECT_EQ(oc.ready().front().slot, 2u);
}

TEST(OperandCollector, MultiplePortsRemoveConflicts) {
  OperandCollectorConfig cfg = Small();
  cfg.ports_per_bank = 2;
  OperandCollector oc(cfg);
  oc.Accept(0, Instr(10, {1, 5}), UnitClass::kSp);  // same bank, 2 ports
  oc.Tick(0);
  ASSERT_EQ(oc.ready().size(), 1u);
  EXPECT_EQ(oc.bank_conflict_cycles(), 0u);
}

TEST(OperandCollector, RejectsBadConfig) {
  OperandCollectorConfig cfg;
  cfg.units = 0;
  EXPECT_THROW(OperandCollector oc(cfg), SimError);
}

}  // namespace
}  // namespace swiftsim
