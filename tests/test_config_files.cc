// The shipped configs/ files must stay in sync with the built-in presets
// and the sparse-override workflow must work end to end.
#include <gtest/gtest.h>

#include <fstream>

#include "config/ini.h"
#include "config/presets.h"

namespace swiftsim {
namespace {

std::string ConfigDir() {
  // Tests run from build/tests; the files live in <repo>/configs. Probe a
  // few relative locations so the test works from any build layout.
  for (const char* candidate :
       {"../../configs", "../configs", "configs", "../../../configs"}) {
    std::ifstream probe(std::string(candidate) + "/rtx2080ti.ini");
    if (probe.good()) return candidate;
  }
  return "";
}

class ConfigFiles : public ::testing::TestWithParam<std::string> {};

TEST_P(ConfigFiles, FileMatchesBuiltInPreset) {
  const std::string dir = ConfigDir();
  if (dir.empty()) GTEST_SKIP() << "configs/ not found from test cwd";
  const GpuConfig preset = PresetByName(GetParam());
  const GpuConfig loaded =
      GpuConfig::FromIni(IniFile::ParseFile(dir + "/" + GetParam() + ".ini"));
  EXPECT_EQ(loaded.ToIniString(), preset.ToIniString());
}

INSTANTIATE_TEST_SUITE_P(Presets, ConfigFiles,
                         ::testing::Values("rtx2080ti", "rtx3060",
                                           "rtx3090"));

TEST(ConfigFiles, SparseOverrideOnPreset) {
  const std::string dir = ConfigDir();
  if (dir.empty()) GTEST_SKIP() << "configs/ not found from test cwd";
  const GpuConfig cfg = GpuConfig::FromIni(
      IniFile::ParseFile(dir + "/example_override.ini"),
      Rtx2080TiConfig());
  EXPECT_EQ(cfg.sched_policy, SchedPolicy::kLrr);
  EXPECT_EQ(cfg.l1.size_bytes, 128u * 1024);
  // Everything else keeps the preset values.
  EXPECT_EQ(cfg.num_sms, 68u);
  EXPECT_EQ(cfg.dram.latency, 227u);
}

}  // namespace
}  // namespace swiftsim
