// Table I / Table II conformance tests for the GPU presets.
#include "config/presets.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(Presets, Table1Rtx2080Ti) {
  const GpuConfig c = Rtx2080TiConfig();
  EXPECT_EQ(c.num_sms, 68u);          // Table I: 68 SMs
  EXPECT_EQ(c.cuda_cores(), 4352u);   // Table I: 4352 CUDA cores
  EXPECT_EQ(c.total_l2_bytes(), 5632u * 1024);  // Table I: 5.5MB L2
}

TEST(Presets, Table1Rtx3060) {
  const GpuConfig c = Rtx3060Config();
  EXPECT_EQ(c.num_sms, 28u);          // Table I: 28 SMs
  EXPECT_EQ(c.cuda_cores(), 3584u);   // Table I: 3584 CUDA cores
  EXPECT_EQ(c.total_l2_bytes(), 3u * 1024 * 1024);  // Table I: 3MB L2
}

TEST(Presets, Table1Rtx3090) {
  const GpuConfig c = Rtx3090Config();
  EXPECT_EQ(c.num_sms, 82u);          // Table I: 82 SMs
  EXPECT_EQ(c.cuda_cores(), 10496u);  // Table I: 10496 CUDA cores
  EXPECT_EQ(c.total_l2_bytes(), 6u * 1024 * 1024);  // Table I: 6MB L2
}

TEST(Presets, Table2Rtx2080TiDetail) {
  const GpuConfig c = Rtx2080TiConfig();
  // Table II rows.
  EXPECT_EQ(c.sub_cores_per_sm, 4u);
  EXPECT_EQ(c.schedulers_per_sub_core, 1u);
  EXPECT_EQ(c.sched_policy, SchedPolicy::kGto);
  EXPECT_EQ(c.int_unit.lanes, 16u);
  EXPECT_EQ(c.sp_unit.lanes, 16u);
  EXPECT_EQ(c.dp_unit.issue_interval(), 64u);  // DP:0.5x
  EXPECT_EQ(c.sfu_unit.lanes, 4u);
  EXPECT_EQ(c.ldst_units_per_sub_core, 4u);
  // L1: sectored, write-through, 4 banks, 128B/32B, 256 MSHR, merge 8,
  // LRU, 32 cycles.
  EXPECT_EQ(c.l1.banks, 4u);
  EXPECT_EQ(c.l1.line_bytes, 128u);
  EXPECT_EQ(c.l1.sector_bytes, 32u);
  EXPECT_EQ(c.l1.mshr_entries, 256u);
  EXPECT_EQ(c.l1.mshr_max_merge, 8u);
  EXPECT_EQ(c.l1.replacement, ReplacementPolicy::kLru);
  EXPECT_EQ(c.l1.write_policy, WritePolicy::kWriteThrough);
  EXPECT_EQ(c.l1.latency, 32u);
  // L2: sectored, write-back, 192 MSHR, merge 4, LRU; 188-cycle
  // load-to-use = 32 (L1 path) + 156 (L2 slice).
  EXPECT_EQ(c.l2.write_policy, WritePolicy::kWriteBack);
  EXPECT_EQ(c.l2.mshr_entries, 192u);
  EXPECT_EQ(c.l2.mshr_max_merge, 4u);
  EXPECT_EQ(c.l1.latency + c.l2.latency, 188u);
  // Memory: 22 partitions, 227 cycles.
  EXPECT_EQ(c.num_mem_partitions, 22u);
  EXPECT_EQ(c.dram.latency, 227u);
}

TEST(Presets, AmpereDiffersFromTuring) {
  const GpuConfig turing = Rtx2080TiConfig();
  const GpuConfig ampere = Rtx3060Config();
  EXPECT_GT(ampere.sp_unit.lanes, turing.sp_unit.lanes);  // 2x FP32
  EXPECT_GT(ampere.max_warps_per_sm, turing.max_warps_per_sm);
  EXPECT_GT(ampere.l1.size_bytes, turing.l1.size_bytes);
}

TEST(Presets, LookupByName) {
  EXPECT_EQ(PresetByName("rtx2080ti").num_sms, 68u);
  EXPECT_EQ(PresetByName("RTX3090").num_sms, 82u);  // case-insensitive
  EXPECT_THROW(PresetByName("rtx9999"), SimError);
  EXPECT_EQ(PresetNames().size(), 3u);
}

TEST(Presets, AllValidate) {
  for (const auto& name : PresetNames()) {
    EXPECT_NO_THROW(PresetByName(name).Validate()) << name;
  }
}

}  // namespace
}  // namespace swiftsim
