#include "workloads/patterns.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/status.h"

namespace swiftsim {
namespace {

TEST(Patterns, CoalescedAddrs) {
  const auto a = CoalescedAddrs(0x1000, 4);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a[0], 0x1000u);
  EXPECT_EQ(a[31], 0x1000u + 31 * 4);
}

TEST(Patterns, CoalescedRespectsMask) {
  const LaneMask m = 0b1010;
  const auto a = CoalescedAddrs(0x1000, 8, m);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 0x1000u + 1 * 8);  // lane 1
  EXPECT_EQ(a[1], 0x1000u + 3 * 8);  // lane 3
}

TEST(Patterns, StridedAddrs) {
  const auto a = StridedAddrs(0x0, 2048);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a[5], 5u * 2048);
}

TEST(Patterns, BroadcastAddrs) {
  const auto a = BroadcastAddrs(0x42, LowLanes(7));
  ASSERT_EQ(a.size(), 7u);
  for (Addr x : a) EXPECT_EQ(x, 0x42u);
}

TEST(Patterns, RandomAddrsInRegionAndAligned) {
  Rng rng(5);
  const Addr base = 0x10000000;
  const auto a = RandomAddrs(rng, base, 1 << 20, 8);
  ASSERT_EQ(a.size(), 32u);
  for (Addr x : a) {
    EXPECT_GE(x, base);
    EXPECT_LT(x, base + (1 << 20));
    EXPECT_EQ(x % 8, 0u);
  }
}

TEST(Patterns, RandomAddrsRejectsTinyRegion) {
  Rng rng(5);
  EXPECT_THROW(RandomAddrs(rng, 0, 4, 8), SimError);
}

TEST(Patterns, LowLanes) {
  EXPECT_EQ(LowLanes(1), 0x1u);
  EXPECT_EQ(LowLanes(8), 0xffu);
  EXPECT_EQ(LowLanes(32), kFullMask);
  EXPECT_THROW(LowLanes(0), SimError);
  EXPECT_THROW(LowLanes(33), SimError);
}

TEST(Patterns, RandomMaskNeverEmptyAndDensity) {
  Rng rng(9);
  std::uint64_t bits = 0;
  for (int i = 0; i < 2000; ++i) {
    const LaneMask m = RandomMask(rng, 0.5);
    EXPECT_NE(m, 0u);
    bits += PopCount(m);
  }
  EXPECT_NEAR(bits / (2000.0 * 32.0), 0.5, 0.03);
  // Degenerate density still yields a nonempty mask (lane 0 forced).
  for (int i = 0; i < 10; ++i) EXPECT_EQ(RandomMask(rng, 0.0), 1u);
}

TEST(Patterns, EmitterAluAndMem) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.Alu(0x10, Opcode::kIMad, 7, {2, 3});
  e.Mem(0x18, Opcode::kLdGlobal, 8, {7}, LowLanes(4),
        CoalescedAddrs(0x1000, 4, LowLanes(4)));
  e.Bar(0x20);
  e.Exit(0x28);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0].dst, 7);
  EXPECT_EQ(w[0].src[0], 2);
  EXPECT_EQ(w[0].src[1], 3);
  EXPECT_EQ(w[0].src[2], kNoReg);
  EXPECT_EQ(w.Decode(1).addrs.size(), 4u);
  EXPECT_TRUE(IsBarrier(w[2].op));
  EXPECT_TRUE(IsExit(w[3].op));
}

TEST(Patterns, FmaChainIsDependent) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.FmaChain(0x100, 5, 10, 2, 3);
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(w[i].pc, 0x100u + 8 * i);
    EXPECT_EQ(w[i].dst, 10);
    EXPECT_EQ(w[i].src[0], 10);  // reads its own previous value
  }
}

TEST(Patterns, IntBlockCyclesRegisters) {
  WarpTrace w;
  WarpEmitter e(&w);
  e.IntBlock(0x200, 4, {20, 21});
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0].dst, 20);
  EXPECT_EQ(w[1].dst, 21);
  EXPECT_EQ(w[2].dst, 20);
}

TEST(Patterns, PcAllocSequential) {
  PcAlloc pa(0x1000);
  EXPECT_EQ(pa.Next(), 0x1000u);
  EXPECT_EQ(pa.Next(), 0x1008u);
  EXPECT_EQ(pa.Next(), 0x1010u);
}

}  // namespace
}  // namespace swiftsim
