#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/status.h"
#include "workloads/workload.h"

namespace swiftsim {
namespace {

bool TracesEqual(const KernelTrace& a, const KernelTrace& b) {
  if (a.info().name != b.info().name ||
      a.info().num_ctas != b.info().num_ctas ||
      a.num_variants() != b.num_variants()) {
    return false;
  }
  for (std::size_t v = 0; v < a.num_variants(); ++v) {
    if (a.variant(v).warps != b.variant(v).warps) return false;
  }
  return true;
}

class TraceIoRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceIoRoundTrip, KernelSurvivesWriteRead) {
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload(GetParam(), s);
  for (const auto& kernel : app.kernels) {
    std::stringstream buf;
    WriteKernelTrace(*kernel, buf);
    const auto reloaded = ReadKernelTrace(buf);
    EXPECT_TRUE(TracesEqual(*kernel, *reloaded)) << kernel->info().name;
  }
}

// A representative subset keeps the suite fast; the workload-generator
// tests cover all 18 apps structurally.
INSTANTIATE_TEST_SUITE_P(Workloads, TraceIoRoundTrip,
                         ::testing::Values("BFS", "NW", "GEMM", "SM", "GRU",
                                           "PAGERANK"));

TEST(TraceIo, ApplicationRoundTrip) {
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload("ATAX", s);  // two kernels
  std::stringstream buf;
  WriteApplication(app, buf);
  const Application reloaded = ReadApplication(buf);
  EXPECT_EQ(reloaded.name, app.name);
  ASSERT_EQ(reloaded.kernels.size(), app.kernels.size());
  for (std::size_t i = 0; i < app.kernels.size(); ++i) {
    EXPECT_TRUE(TracesEqual(*app.kernels[i], *reloaded.kernels[i]));
  }
}

TEST(TraceIo, FileRoundTrip) {
  WorkloadScale s;
  s.scale = 0.05;
  const Application app = BuildWorkload("LU", s);
  const std::string path = ::testing::TempDir() + "/lu.sstrace";
  WriteKernelTraceFile(*app.kernels[0], path);
  const auto reloaded = ReadKernelTraceFile(path);
  EXPECT_TRUE(TracesEqual(*app.kernels[0], *reloaded));
}

TEST(TraceIo, ParseErrorsNameTheLine) {
  std::stringstream buf("kernel k id=0 ctas=1 warps_per_cta=1 "
                        "threads_per_cta=32 smem=0 regs=16 variants=1\n"
                        "variant 0\n"
                        "warp 0 n=1\n"
                        "this is not an instruction\n");
  try {
    ReadKernelTrace(buf);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(TraceIo, RejectsTruncatedInput) {
  std::stringstream buf("kernel k id=0 ctas=1 warps_per_cta=1 "
                        "threads_per_cta=32 smem=0 regs=16 variants=1\n"
                        "variant 0\n");
  EXPECT_THROW(ReadKernelTrace(buf), SimError);
}

TEST(TraceIo, RejectsMissingHeaderField) {
  std::stringstream buf("kernel k id=0 ctas=1\n");
  EXPECT_THROW(ReadKernelTrace(buf), SimError);
}

TEST(TraceIo, RejectsBadMemoryAddressCount) {
  std::stringstream buf(
      "kernel k id=0 ctas=1 warps_per_cta=1 threads_per_cta=32 smem=0 "
      "regs=16 variants=1\n"
      "variant 0\n"
      "warp 0 n=2\n"
      "i 10 LDG d=5 s=4 m=ffffffff a=1000\n"  // 1 addr, 32 lanes
      "i 18 EXIT d=- s=- m=ffffffff\n"
      "end_warp\nend_variant\nend_kernel\n");
  EXPECT_THROW(ReadKernelTrace(buf), SimError);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(ReadKernelTraceFile("/no/such/file.sstrace"), SimError);
  EXPECT_THROW(ReadApplicationFile("/no/such/app.sstrace"), SimError);
}

}  // namespace
}  // namespace swiftsim
