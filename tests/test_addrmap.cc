#include "mem/addrmap.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace swiftsim {
namespace {

TEST(AddrMap, Deterministic) {
  AddrMap map(22, 128);
  for (Addr a = 0; a < 100 * 128; a += 128) {
    EXPECT_EQ(map.PartitionOf(a), map.PartitionOf(a));
  }
}

TEST(AddrMap, InRange) {
  AddrMap map(22, 128);
  for (Addr a = 0; a < 1000 * 128; a += 128) {
    EXPECT_LT(map.PartitionOf(a), 22u);
  }
}

TEST(AddrMap, SameLineSamePartition) {
  AddrMap map(22, 128);
  EXPECT_EQ(map.PartitionOf(0x1000), map.PartitionOf(0x1000));
  // Addresses within a line (after alignment) map identically.
  EXPECT_EQ(map.PartitionOf(0x1000), map.PartitionOf(0x1000 + 127 - 127));
}

TEST(AddrMap, SequentialLinesSpreadEvenly) {
  AddrMap map(22, 128);
  std::vector<unsigned> counts(22, 0);
  const unsigned n = 22000;
  for (unsigned i = 0; i < n; ++i) {
    ++counts[map.PartitionOf(static_cast<Addr>(i) * 128)];
  }
  for (unsigned c : counts) {
    EXPECT_GT(c, n / 22 * 8 / 10);
    EXPECT_LT(c, n / 22 * 12 / 10);
  }
}

TEST(AddrMap, PowerOfTwoStridesDoNotCamp) {
  // The hash must decorrelate 4KB-strided lines (the classic pathology of
  // modulo-only mapping).
  AddrMap map(22, 128);
  std::vector<unsigned> counts(22, 0);
  const unsigned n = 4400;
  for (unsigned i = 0; i < n; ++i) {
    ++counts[map.PartitionOf(static_cast<Addr>(i) * 4096)];
  }
  for (unsigned c : counts) {
    EXPECT_GT(c, n / 22 / 2);
  }
}

TEST(AddrMap, RejectsBadConstruction) {
  EXPECT_THROW(AddrMap(0, 128), SimError);
  EXPECT_THROW(AddrMap(22, 100), SimError);  // non-pow2 line
}

}  // namespace
}  // namespace swiftsim
